#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve.

Scans every tracked *.md file for [text](target) links, skips external
(http/https/mailto) and pure-anchor targets, strips #fragments, and
verifies the remaining paths exist relative to the linking file. Exits
non-zero listing every broken link. CI runs this in the doc-lint job; run
locally as `python3 scripts/check_doc_links.py` from anywhere in the repo.
"""

import os
import re
import subprocess
import sys

# Inline links only; reference-style links are not used in this repo.
# Matches [text](target) but not images' surrounding ! (images are links
# too for existence purposes, so no need to distinguish).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def repo_root() -> str:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        check=True,
        capture_output=True,
        text=True,
    )
    return out.stdout.strip()


def tracked_markdown(root: str) -> list[str]:
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        check=True,
        capture_output=True,
        text=True,
        cwd=root,
    )
    return [line for line in out.stdout.splitlines() if line]


def main() -> int:
    root = repo_root()
    broken = []
    for md in tracked_markdown(root):
        md_path = os.path.join(root, md)
        with open(md_path, encoding="utf-8") as f:
            text = f.read()
        # Drop fenced code blocks: shell snippets legitimately contain
        # [text](target)-shaped strings (e.g. awk, test expressions).
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for target in LINK_RE.findall(text):
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(md_path), path))
            if not os.path.exists(resolved):
                broken.append(f"{md}: ({target}) -> {os.path.relpath(resolved, root)}")
    if broken:
        print("broken markdown links:")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"doc links OK across {len(tracked_markdown(root))} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
