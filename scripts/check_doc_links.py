#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve.

Scans every tracked *.md file for [text](target) links, skips external
(http/https/mailto) targets, strips #fragments for the existence check,
and verifies the remaining paths exist relative to the linking file. For
intra-doc anchors — pure `#fragment` links and `path.md#fragment` links
whose target is a tracked markdown file — it additionally verifies the
fragment names a real heading, using GitHub's slugification (lowercase,
punctuation stripped, spaces to hyphens, `-1`/`-2`… suffixes for
duplicate headings). Exits non-zero listing every broken link or anchor.
CI runs this in the doc-lint job; run locally as
`python3 scripts/check_doc_links.py` from anywhere in the repo.
"""

import os
import re
import subprocess
import sys

# Inline links only; reference-style links are not used in this repo.
# Matches [text](target) but not images' surrounding ! (images are links
# too for existence purposes, so no need to distinguish).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$", re.MULTILINE)

SKIP_PREFIXES = ("http://", "https://", "mailto:")


def repo_root() -> str:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        check=True,
        capture_output=True,
        text=True,
    )
    return out.stdout.strip()


def tracked_markdown(root: str) -> list[str]:
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        check=True,
        capture_output=True,
        text=True,
        cwd=root,
    )
    return [line for line in out.stdout.splitlines() if line]


def strip_fences(text: str) -> str:
    # Drop fenced code blocks: shell snippets legitimately contain
    # [text](target)-shaped strings (e.g. awk, test expressions) and
    # #-prefixed comment lines that would otherwise look like headings.
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: strip inline markup, lowercase,
    drop everything but word characters/spaces/hyphens, spaces to hyphens."""
    # Inline code/emphasis markers contribute their text, not their markup.
    heading = re.sub(r"[`*_]", "", heading)
    # Markdown links in headings anchor on the link text.
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(text: str) -> set[str]:
    """All heading anchors in a markdown document, with GitHub's -N
    deduplication for repeated headings."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    for match in HEADING_RE.finditer(strip_fences(text)):
        slug = github_slug(match.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def main() -> int:
    root = repo_root()
    files = tracked_markdown(root)
    contents: dict[str, str] = {}
    for md in files:
        with open(os.path.join(root, md), encoding="utf-8") as f:
            contents[md] = f.read()
    anchors = {
        os.path.normpath(os.path.join(root, md)): anchors_of(text)
        for md, text in contents.items()
    }

    broken = []
    for md in files:
        md_path = os.path.join(root, md)
        text = strip_fences(contents[md])
        for target in LINK_RE.findall(text):
            if target.startswith(SKIP_PREFIXES):
                continue
            path, _, frag = target.partition("#")
            if path:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(md_path), path)
                )
                if not os.path.exists(resolved):
                    broken.append(
                        f"{md}: ({target}) -> {os.path.relpath(resolved, root)}"
                    )
                    continue
            else:
                resolved = os.path.normpath(md_path)  # pure #anchor: this file
            if frag and resolved in anchors:
                if frag not in anchors[resolved]:
                    broken.append(
                        f"{md}: ({target}) -> no heading with anchor "
                        f"#{frag} in {os.path.relpath(resolved, root)}"
                    )
    if broken:
        print("broken markdown links:")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"doc links OK across {len(files)} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
