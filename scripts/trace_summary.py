#!/usr/bin/env python3
"""Validate and summarize a hybrids Chrome trace-event JSON file.

Checks that the file is valid JSON in the trace-event "object" form the
tracing layer emits (schema "hybrids.trace.v1", see docs/TRACING.md):
a `traceEvents` list of metadata ("M"), complete-span ("X"), and instant
("i") events with the expected fields. Then recomputes the per-phase
latency breakdown the benches print at exit — per-phase count / total /
mean — plus *coverage*: the fraction of sampled offloaded-op time the leaf
phases account for (leaf = everything except the enclosing `op` and
`scan_chunk` spans and instants).

Usage:
  python3 scripts/trace_summary.py trace.json [--min-coverage=0.95]

Exits non-zero on a malformed trace, or (with --min-coverage) when
coverage falls below the bound — CI runs this on every smoke trace.
Stdlib only.
"""

import json
import sys

SCHEMA = "hybrids.trace.v1"

# Phases whose spans structurally enclose other phases; they are excluded
# from coverage attribution (mirrors trace::breakdown in
# src/hybrids/trace/export.cpp).
ENCLOSING = {"op", "scan_chunk"}

KNOWN_PHASES = [
    "op",
    "host_descend",
    "publish",
    "queue_wait",
    "batch_sort",
    "apply",
    "reply",
    "wake",
    "scan_chunk",
    "retry",
    "failover",
    "cache_lookup",
]


def fail(msg: str) -> None:
    print(f"trace_summary: error: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_event(i: int, ev) -> None:
    if not isinstance(ev, dict):
        fail(f"traceEvents[{i}] is not an object")
    ph = ev.get("ph")
    if ph not in ("M", "X", "i"):
        fail(f"traceEvents[{i}] has unexpected ph {ph!r}")
    if ph == "M":
        return
    for field, kinds in (("ts", (int, float)), ("name", (str,)),
                         ("pid", (int,)), ("tid", (int,))):
        if not isinstance(ev.get(field), kinds):
            fail(f"traceEvents[{i}] missing/mistyped {field!r}")
    if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
        fail(f"traceEvents[{i}] is ph=X without a numeric dur")
    args = ev.get("args")
    if not isinstance(args, dict) or not isinstance(args.get("op_id"), int):
        fail(f"traceEvents[{i}] missing args.op_id")
    if ev["name"] not in KNOWN_PHASES:
        fail(f"traceEvents[{i}] has unknown phase {ev['name']!r}")


def main(argv) -> int:
    path = None
    min_coverage = None
    for arg in argv[1:]:
        if arg.startswith("--min-coverage="):
            min_coverage = float(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            fail(f"unknown option {arg!r}")
        elif path is None:
            path = arg
        else:
            fail("more than one trace file given")
    if path is None:
        fail("usage: trace_summary.py trace.json [--min-coverage=0.95]")

    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents list")
    other = doc.get("otherData", {})
    if other.get("schema") != SCHEMA:
        fail(f"otherData.schema is {other.get('schema')!r}, want {SCHEMA!r}")

    for i, ev in enumerate(events):
        validate_event(i, ev)

    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]

    # Per-phase stats; ts/dur are fractional microseconds with ns precision.
    phases = {}
    for ev in spans:
        count, total_us = phases.get(ev["name"], (0, 0.0))
        phases[ev["name"]] = (count + 1, total_us + ev["dur"])
    for ev in instants:
        count, total_us = phases.get(ev["name"], (0, 0.0))
        phases[ev["name"]] = (count + 1, total_us)

    offloaded_ids = set()
    offloaded_us = 0.0
    for ev in spans:
        if ev["name"] == "op" and ev["args"].get("offloaded") == 1:
            offloaded_ids.add(ev["args"]["op_id"])
            offloaded_us += ev["dur"]
    attributed_us = sum(
        ev["dur"]
        for ev in spans
        if ev["name"] not in ENCLOSING and ev["args"]["op_id"] in offloaded_ids
    )
    coverage = attributed_us / offloaded_us if offloaded_us > 0 else 0.0

    print(f"{path}: {len(spans)} spans, {len(instants)} instants, "
          f"{other.get('sampled_ops', 0)} sampled ops, "
          f"{other.get('dropped_events', 0)} dropped events")
    print(f"  {'phase':<14}{'count':>9}{'total_us':>14}{'mean_ns':>12}")
    for name in KNOWN_PHASES:
        if name not in phases:
            continue
        count, total_us = phases[name]
        mean_ns = total_us * 1000.0 / count if count else 0.0
        print(f"  {name:<14}{count:>9}{total_us:>14.1f}{mean_ns:>12.0f}")
    print(f"  offloaded ops sampled: {len(offloaded_ids)}, "
          f"phase coverage of offloaded-op latency: {coverage * 100.0:.1f}%")

    if min_coverage is not None:
        if not offloaded_ids:
            fail("no sampled offloaded ops — cannot check coverage")
        if coverage < min_coverage:
            fail(f"coverage {coverage:.3f} below bound {min_coverage:.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
