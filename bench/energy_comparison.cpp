// Energy comparison (paper §1 / dissertation [15]): estimated memory-system
// energy per operation for every design under YCSB-C. The hybrid's savings
// come from (i) fewer DRAM accesses and (ii) replacing host<->memory block
// transfers over the serial link with NMP-local accesses.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "hybrids/sim/exp/energy.hpp"
#include "hybrids/sim/exp/experiment.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hs = hybrids::sim;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  const std::uint64_t sl_keys = opt.keys ? opt.keys : 1ull << 19;
  const std::uint64_t bt_keys = opt.keys ? opt.keys : 1ull << 20;
  const std::uint32_t threads = opt.threads.empty() ? 8 : opt.threads.front();
  const hs::EnergyModel energy;

  std::cout << "Memory-system energy per operation, YCSB-C, " << threads
            << " threads\n\n";

  hybrids::util::Table table({"design", "nJ/op", "Mops/s", "idx DRAM reads/op"});
  auto add = [&](const char* name, const hs::ExperimentResult& r) {
    table.new_row()
        .add_cell(name)
        .add_num(energy.nj_per_op(r.mem, r.ops), 1)
        .add_num(r.mops, 3)
        .add_num(r.dram_reads_per_op, 1);
  };

  for (auto kind : {hs::SkiplistKind::kLockFree, hs::SkiplistKind::kNmp,
                    hs::SkiplistKind::kHybridBlocking,
                    hs::SkiplistKind::kHybridNonBlocking}) {
    hs::ExperimentConfig cfg;
    cfg.workload = hw::ycsb_c(sl_keys);
    cfg.threads = threads;
    cfg.ops_per_thread = opt.ops;
    cfg.warmup_per_thread = opt.warmup;
    add((std::string("skiplist ") + hs::to_string(kind)).c_str(),
        hs::run_skiplist_experiment(kind, cfg));
  }
  for (auto kind : {hs::BTreeKind::kHostOnly, hs::BTreeKind::kHybridBlocking,
                    hs::BTreeKind::kHybridNonBlocking}) {
    hs::ExperimentConfig cfg;
    cfg.workload = hw::ycsb_c(bt_keys);
    cfg.threads = threads;
    cfg.ops_per_thread = opt.ops;
    cfg.warmup_per_thread = opt.warmup;
    add((std::string("btree ") + hs::to_string(kind)).c_str(),
        hs::run_btree_experiment(kind, cfg));
  }
  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);
  return 0;
}
