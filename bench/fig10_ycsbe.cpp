// Figure 10 — range-scan evaluation with YCSB-E (95% scans / 5% inserts,
// zipfian scan lengths) against the real runtime (not the simulator, which
// does not model scans).
//
// Both hybrid structures run the same per-thread OpStream: scans start at a
// scrambled-zipfian loaded key and request a zipfian length in
// [1, --scan-max]; inserts draw uniform unloaded (odd) keys. Scans are
// stitched from kScan chunks by HybridSkipList::scan / HybridBTree::scan, so
// this bench exercises the continuation protocol, partition hopping, and
// stale-begin/seqnum retries under concurrent structural change.
//
// Reported per thread count: operation throughput, scan throughput, and
// returned entries/s (scan throughput x average scan length). With
// --stats-json the exported snapshot carries `served_scan`, `nmp.scan_len`,
// `host.scan_partition_hops`, and `host.scan_retry` for post-processing.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hd = hybrids::ds;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;

namespace {

constexpr std::size_t kLlcBytes = 1 << 20;  // §3.3 / §3.4 sizing target

using hybrids::bench::now_ns;

struct RunResult {
  double mops = 0;        // all operations
  double scans_per_s = 0; // completed scan calls
  double entries_per_s = 0;
  double avg_scan_len = 0;
};

/// Drives `threads` OpStreams against `ds` (HybridSkipList or HybridBTree —
/// both expose insert/scan with the same shape). Warmup ops are run first and
/// not timed.
template <typename DS>
RunResult run_threads(DS& ds, const hw::WorkloadSpec& spec,
                      std::uint32_t threads, std::uint64_t warmup_per_thread,
                      std::uint64_t ops_per_thread) {
  std::atomic<std::uint64_t> scans{0};
  std::atomic<std::uint64_t> entries{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  std::uint64_t t0 = 0;
  std::atomic<std::uint32_t> ready{0};
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      hw::OpStream stream(spec, t);
      std::vector<hybrids::ScanEntry> buf(spec.max_scan_len);
      std::uint64_t my_scans = 0;
      std::uint64_t my_entries = 0;
      auto run_one = [&](bool measured) {
        const hw::Op op = stream.next();
        switch (op.type) {
          case hw::OpType::kScan: {
            const std::size_t n = ds.scan(op.key, op.scan_len, buf.data(), t);
            if (measured) {
              ++my_scans;
              my_entries += n;
            }
            break;
          }
          case hw::OpType::kInsert:
            (void)ds.insert(op.key, op.value, t);
            break;
          case hw::OpType::kRemove:
            (void)ds.remove(op.key, t);
            break;
          default: {
            hybrids::Value v = 0;
            (void)ds.read(op.key, v, t);
            break;
          }
        }
      };
      for (std::uint64_t i = 0; i < warmup_per_thread; ++i) run_one(false);
      // Rough start barrier: thread 0 stamps t0 once everyone finished warmup.
      ready.fetch_add(1);
      while (ready.load() < threads) std::this_thread::yield();
      if (t == 0) t0 = now_ns();
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) run_one(true);
      scans.fetch_add(my_scans);
      entries.fetch_add(my_entries);
    });
  }
  for (std::thread& w : workers) w.join();
  const double secs = static_cast<double>(now_ns() - t0) * 1e-9;
  RunResult r;
  r.mops = static_cast<double>(threads) * static_cast<double>(ops_per_thread) /
           secs / 1e6;
  r.scans_per_s = static_cast<double>(scans.load()) / secs;
  r.entries_per_s = static_cast<double>(entries.load()) / secs;
  r.avg_scan_len = scans.load() > 0 ? static_cast<double>(entries.load()) /
                                          static_cast<double>(scans.load())
                                    : 0.0;
  return r;
}

RunResult run_skiplist(const hw::WorkloadSpec& spec, std::uint32_t threads,
                       std::uint64_t warmup, std::uint64_t ops) {
  hw::KeyLayout layout(spec.initial_keys, spec.partitions);
  hd::HybridSkipList::Config cfg;
  int total = 1;
  while ((1ull << total) < spec.initial_keys) ++total;
  cfg.nmp_height = hd::HybridSkipList::nmp_height_for_cache(spec.initial_keys,
                                                            kLlcBytes);
  cfg.total_height = total > cfg.nmp_height ? total : cfg.nmp_height + 1;
  cfg.partitions = spec.partitions;
  cfg.partition_width = layout.partition_width();
  cfg.max_threads = threads;
  hd::HybridSkipList list(cfg);
  for (hybrids::Key k : layout.initial_key_set()) (void)list.insert(k, k, 0);
  return run_threads(list, spec, threads, warmup, ops);
}

RunResult run_btree(const hw::WorkloadSpec& spec, std::uint32_t threads,
                    std::uint64_t warmup, std::uint64_t ops) {
  hw::KeyLayout layout(spec.initial_keys, spec.partitions);
  hd::HybridBTree::Config cfg;
  cfg.nmp_levels = hd::HybridBTree::nmp_levels_for_cache(spec.initial_keys,
                                                         kLlcBytes);
  cfg.partitions = spec.partitions;
  cfg.max_threads = threads;
  const std::vector<hybrids::Key> keys = layout.initial_key_set();
  const std::vector<hybrids::Value> vals(keys.begin(), keys.end());
  hd::HybridBTree tree(cfg, keys, vals);
  return run_threads(tree, spec, threads, warmup, ops);
}

}  // namespace

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  const std::uint64_t keys =
      opt.keys ? opt.keys : (opt.full ? 1ull << 20 : 1ull << 16);
  if (opt.threads.empty()) opt.threads = {1, 2, 4, 8};

  hw::WorkloadSpec spec = hw::ycsb_e(keys, /*partitions=*/8, /*seed=*/42,
                                     opt.scan_max);

  std::cout << "Figure 10: range scans, YCSB-E (" << keys
            << " keys, 95% scans / 5% inserts, zipfian scan lengths <= "
            << opt.scan_max << ")\n\n";

  hybrids::util::Table table({"structure", "threads", "Mops/s", "scans/s",
                              "entries/s", "avg scan len"});
  for (std::uint32_t t : opt.threads) {
    const RunResult sl = run_skiplist(spec, t, opt.warmup, opt.ops);
    table.new_row()
        .add_cell("hybrid-skiplist")
        .add_int(t)
        .add_num(sl.mops, 3)
        .add_num(sl.scans_per_s, 0)
        .add_num(sl.entries_per_s, 0)
        .add_num(sl.avg_scan_len, 2);
    const RunResult bt = run_btree(spec, t, opt.warmup, opt.ops);
    table.new_row()
        .add_cell("hybrid-btree")
        .add_int(t)
        .add_num(bt.mops, 3)
        .add_num(bt.scans_per_s, 0)
        .add_num(bt.entries_per_s, 0)
        .add_num(bt.avg_scan_len, 2);
  }
  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);
  return 0;
}
