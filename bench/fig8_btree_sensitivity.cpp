// Figure 8 — B+ tree sensitivity to concurrent modifications and node
// splits: normalized operation throughput (host-only 100-0-0 = 1.0) for the
// split-heavy mixes and the 50-25-25 fully-uniform (no splits) variant.
#include <iostream>

#include "btree_sensitivity_common.hpp"
#include "hybrids/util/table.hpp"

namespace hb = hybrids::bench;

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  const std::uint64_t keys = opt.keys ? opt.keys : (opt.full ? 1ull << 24 : 1ull << 21);
  const std::uint32_t threads = opt.threads.empty() ? 8 : opt.threads.front();

  std::cout << "Figure 8: B+ tree sensitivity, " << threads << " threads ("
            << keys << " keys)\n"
            << "normalized operation throughput (host-only 100-0-0 = 1.0)\n\n";

  auto points = hb::run_btree_sensitivity(opt, keys, threads);
  const double baseline = points.front().host_only.mops;

  hybrids::util::Table table({"mix", "host-only", "hybrid-blocking",
                              "hybrid-nonblocking4"});
  hybrids::util::Table raw({"mix", "host-only", "hybrid-blocking",
                            "hybrid-nonblocking4"});
  for (const auto& p : points) {
    table.new_row()
        .add_cell(p.mix)
        .add_num(p.host_only.mops / baseline, 2)
        .add_num(p.hybrid_blocking.mops / baseline, 2)
        .add_num(p.hybrid_nonblocking.mops / baseline, 2);
    raw.new_row()
        .add_cell(p.mix)
        .add_num(p.host_only.mops, 3)
        .add_num(p.hybrid_blocking.mops, 3)
        .add_num(p.hybrid_nonblocking.mops, 3);
  }
  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);
  std::cout << "\nraw throughput [Mops/s]\n";
  if (opt.csv) raw.print_csv(std::cout); else raw.print(std::cout);
  return 0;
}
