// Ablation — fat-node host index layout (fat nodes × software prefetch).
//
// The 2x2 sweep behind the fat-node tentpole: host index layout
// (pointer-node LfSkipList vs fat-node B-link FatSkipList, flipped per arm
// with hd::set_fatnode_enabled and sampled by HostIndex at construction)
// crossed with the memory layer's prefetch toggle. Both engines sit behind
// the same HostIndex facade, are preloaded with the identical (shuffled odd)
// key set, and replay identical pre-generated access streams:
//
//   reads  — zipfian point lookups (theta 0.99), all host threads hammering
//            the structure concurrently; the fat layout's claim is fewer,
//            fatter nodes per descent (one two-line node per level instead
//            of one line per key).
//   scans  — range scans of --scan-max entries from zipfian start keys; the
//            fat layout stitches 8-key sorted runs and prefetches the whole
//            run before touching the first value (memory-level parallelism),
//            the pointer layout chases one node per entry.
//
// Checksums must agree bit-exactly across every arm (same residents, same
// streams) — a mismatch is a correctness bug and exits nonzero, so this
// bench doubles as an end-to-end cross-layout oracle. The summary lines name
// the fat-vs-pointer speedup at equal prefetch setting — the numbers
// EXPERIMENTS.md records for the fat-node ablation.
//
// Under -DHYBRIDS_NO_FATNODE the fat arms are compiled out and only the
// pointer-node column runs (the bench stays a valid smoke test).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iostream>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "hybrids/ds/host_index.hpp"
#include "hybrids/mem/memlayer.hpp"
#include "hybrids/util/table.hpp"

namespace hd = hybrids::ds;
namespace hb = hybrids::bench;
namespace hm = hybrids::mem;

namespace {

using hybrids::bench::now_ns;
using hybrids::bench::RunResult;

struct Arm {
  bool fat;
  bool prefetch;
};

const char* onoff(bool b) { return b ? "on" : "off"; }
const char* layout_name(bool fat) { return fat ? "fat" : "pointer"; }

/// Builds a HostIndex under the requested layout, preloaded with `preload`
/// odd keys (value == key) in shuffled order — shuffled so fat leaves settle
/// at realistic mid-occupancy instead of the ascending-insert worst case,
/// identically for every arm.
std::unique_ptr<hd::HostIndex> build_index(bool fat, std::uint64_t preload) {
  hd::set_fatnode_enabled(fat);
  std::vector<hybrids::Key> keys = hb::odd_preload_keys(preload);
  std::mt19937 shuffle_rng(0xF47);
  std::shuffle(keys.begin(), keys.end(), shuffle_rng);
  // Height: log2 for the pointer towers, log_{kFatKeys/2} + slack for the
  // B-link levels (splits leave nodes half full in the worst case).
  int height = 1;
  if (fat) {
    while (std::uint64_t(1) << (2 * height) < preload) ++height;
    height += 2;
  } else {
    while (std::uint64_t(1) << height < preload) ++height;
  }
  auto idx = std::make_unique<hd::HostIndex>(height);
  hybrids::util::Xoshiro256 rng(7);
  for (hybrids::Key k : keys) {
    hd::HostIndex::Node* n = idx->make_node(
        k, k, hd::random_height(rng, height));
    if (!idx->insert_node(n)) {
      std::cerr << "BUG: preload collision on key " << k << "\n";
      std::exit(1);
    }
  }
  return idx;
}

/// Timed multi-threaded point reads: thread t replays probes[t]; the found
/// values fold into the checksum. Mops/s across all threads.
RunResult run_reads(hd::HostIndex& idx,
                    const std::vector<std::vector<hybrids::Key>>& probes,
                    std::uint64_t warmup_per_thread) {
  const std::uint32_t threads = static_cast<std::uint32_t>(probes.size());
  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::uint32_t> ready{0};
  std::uint64_t t0 = 0;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::vector<hybrids::Key>& mine = probes[t];
      const std::uint64_t warm = std::min<std::uint64_t>(
          warmup_per_thread, mine.size());
      std::uint64_t my_sum = 0;
      for (std::uint64_t i = 0; i < warm; ++i) {
        (void)idx.get_node(mine[i]);
      }
      ready.fetch_add(1);
      while (ready.load() < threads) std::this_thread::yield();
      if (t == 0) t0 = now_ns();
      for (const hybrids::Key k : mine) {
        hd::HostIndex::Node* n = idx.get_node(k);
        if (n != nullptr) my_sum += n->value_now();
      }
      checksum.fetch_add(my_sum, std::memory_order_relaxed);
    });
  }
  for (std::thread& w : workers) w.join();
  const double secs = static_cast<double>(now_ns() - t0) * 1e-9;
  RunResult r;
  std::uint64_t total = 0;
  for (const auto& p : probes) total += p.size();
  r.mops = static_cast<double>(total) / secs / 1e6;
  r.checksum = checksum.load();
  return r;
}

/// Timed multi-threaded range scans of `scan_len` entries from each start
/// key; folded scan keys are the checksum. Throughput is million scanned
/// entries per second (the quantity the stitching serves).
RunResult run_scans(hd::HostIndex& idx,
                    const std::vector<std::vector<hybrids::Key>>& starts,
                    std::uint32_t scan_len, std::uint64_t warmup_per_thread) {
  const std::uint32_t threads = static_cast<std::uint32_t>(starts.size());
  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::uint64_t> entries{0};
  std::atomic<std::uint32_t> ready{0};
  std::uint64_t t0 = 0;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::vector<hybrids::Key>& mine = starts[t];
      std::vector<hybrids::ScanEntry> buf(scan_len);
      const std::uint64_t warm = std::min<std::uint64_t>(
          warmup_per_thread, mine.size());
      for (std::uint64_t i = 0; i < warm; ++i) {
        (void)idx.scan(mine[i], scan_len, buf.data());
      }
      ready.fetch_add(1);
      while (ready.load() < threads) std::this_thread::yield();
      if (t == 0) t0 = now_ns();
      std::uint64_t my_sum = 0;
      std::uint64_t my_entries = 0;
      for (const hybrids::Key k : mine) {
        const std::size_t n = idx.scan(k, scan_len, buf.data());
        my_entries += n;
        for (std::size_t j = 0; j < n; ++j) my_sum += buf[j].key;
      }
      checksum.fetch_add(my_sum, std::memory_order_relaxed);
      entries.fetch_add(my_entries, std::memory_order_relaxed);
    });
  }
  for (std::thread& w : workers) w.join();
  const double secs = static_cast<double>(now_ns() - t0) * 1e-9;
  RunResult r;
  r.mops = static_cast<double>(entries.load()) / secs / 1e6;
  r.checksum = checksum.load();
  return r;
}

struct ArmResult {
  RunResult reads;
  RunResult scans;
};

}  // namespace

int main(int argc, char** argv) {
  const hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);

  const std::uint64_t keys = opt.keys != 0 ? opt.keys
                             : (opt.full ? (1ull << 22) : (1ull << 18));
  const std::uint64_t preload = keys / 2;  // every other key loaded
  // Default to the hardware, capped at 4: the sweep measures layout, not
  // scheduler time-slicing, so never oversubscribe the machine.
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t threads =
      opt.threads.empty() ? std::min(4u, hw) : opt.threads.back();
  const std::uint64_t reads_per_thread =
      std::max<std::uint64_t>(opt.ops * 16, 1ull << 17);
  const std::uint64_t scans_per_thread =
      std::max<std::uint64_t>(reads_per_thread / 64, 256);
  const std::uint64_t warmup = opt.warmup;
  const int reps = 3;

  // Pre-generated per-thread streams, shared by every arm.
  std::vector<std::vector<hybrids::Key>> probes(threads);
  std::vector<std::vector<hybrids::Key>> starts(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    probes[t] = hb::zipfian_probe_keys(reads_per_thread, 2 * preload,
                                       /*seed=*/0x5EED + t);
    starts[t] = hb::zipfian_probe_keys(scans_per_thread, 2 * preload,
                                       /*seed=*/0x5CA4 + t);
  }

  std::vector<Arm> arms;
  for (const bool fat : {false, true}) {
    if (fat && !hd::kFatnodeCompiledIn) continue;
    for (const bool prefetch : {false, true}) arms.push_back({fat, prefetch});
  }
  if (!hd::kFatnodeCompiledIn) {
    std::cout << "note: built with -DHYBRIDS_NO_FATNODE, fat arms skipped\n";
  }

  std::cout << "Ablation: fat-node host index (layout x prefetch)\n\n"
            << preload << " loaded keys, " << threads << " threads, "
            << reads_per_thread << " zipfian reads + " << scans_per_thread
            << " scans of " << opt.scan_max
            << " per thread, best of " << reps << " reps\n\n";

  // Build per arm (layout is sampled at construction), interleave the timed
  // reps rep-major so machine drift hits every arm equally.
  std::vector<std::unique_ptr<hd::HostIndex>> indexes;
  indexes.reserve(arms.size());
  for (const Arm& arm : arms) indexes.push_back(build_index(arm.fat, preload));
  hd::set_fatnode_enabled(true);

  std::vector<ArmResult> results(arms.size());
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t a = 0; a < arms.size(); ++a) {
      hm::set_prefetch_enabled(arms[a].prefetch);
      const RunResult rr = run_reads(*indexes[a], probes, warmup);
      const RunResult rs = run_scans(*indexes[a], starts, opt.scan_max, warmup);
      if (rr.mops > results[a].reads.mops) results[a].reads = rr;
      results[a].reads.checksum = rr.checksum;
      if (rs.mops > results[a].scans.mops) results[a].scans = rs;
      results[a].scans.checksum = rs.checksum;
    }
  }
  hm::set_prefetch_enabled(true);

  // Checksum parity: identical residents + identical streams, every arm and
  // every rep must fold to the same sums.
  for (std::size_t a = 1; a < arms.size(); ++a) {
    if (results[a].reads.checksum != results[0].reads.checksum ||
        results[a].scans.checksum != results[0].scans.checksum) {
      std::cerr << "BUG: checksum differs between arms (layout="
                << layout_name(arms[a].fat)
                << ", prefetch=" << onoff(arms[a].prefetch) << ")\n";
      return 1;
    }
  }

  hybrids::util::Table table({"layout", "prefetch", "reads Mops/s",
                              "scan Mentries/s", "read x", "scan x"});
  const auto baseline = [&](bool prefetch) -> const ArmResult& {
    for (std::size_t a = 0; a < arms.size(); ++a) {
      if (!arms[a].fat && arms[a].prefetch == prefetch) return results[a];
    }
    return results[0];
  };
  for (std::size_t a = 0; a < arms.size(); ++a) {
    const ArmResult& base = baseline(arms[a].prefetch);
    table.new_row()
        .add_cell(layout_name(arms[a].fat))
        .add_cell(onoff(arms[a].prefetch))
        .add_num(results[a].reads.mops)
        .add_num(results[a].scans.mops)
        .add_num(results[a].reads.mops / base.reads.mops)
        .add_num(results[a].scans.mops / base.scans.mops);
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (hd::kFatnodeCompiledIn) {
    const ArmResult& ptr_on = baseline(true);
    const ArmResult* fat_on = nullptr;
    for (std::size_t a = 0; a < arms.size(); ++a) {
      if (arms[a].fat && arms[a].prefetch) fat_on = &results[a];
    }
    char line[128];
    std::snprintf(line, sizeof(line),
                  "\nfat-node read speedup: %.2fx\n"
                  "fat-node scan speedup: %.2fx\n",
                  fat_on->reads.mops / ptr_on.reads.mops,
                  fat_on->scans.mops / ptr_on.scans.mops);
    std::cout << line;
  }
  return 0;
}
