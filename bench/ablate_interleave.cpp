// Ablation — coroutine-interleaved host traversals (host/interleave.hpp).
//
// Sweeps the per-thread frame depth k (--depths, default 1,2,4,8,16) on the
// hybrid skiplist under YCSB-C (100% zipfian point reads) and YCSB-E (95%
// stitched scans / 5% inserts), plus the hybrid B+tree under YCSB-C. Depth 1
// is the blocking baseline — the exact code paths every figure bench runs —
// and each k>1 arm drives k traversal coroutines per thread through a
// host::Frame, overlapping publication-slot round-trips (and, on machines
// with a real cache hierarchy, the prefetch-shadowed descents).
//
// Expected shape: throughput per thread grows monotonically from depth 1 to
// a knee (typically 4-8: once every combiner pass finds the thread's slots
// full, more depth only adds switch overhead), then flattens. On the zipfian
// read arms, checksums cross-check the depths: interleaving reorders ops in
// flight but must never change what a read returns against static contents.
//
// Every arm builds its structures fresh (same seeds, slots_per_thread pinned
// at the maximum frame depth) so placement and preload are identical; only
// the scheduling differs. docs/INTERLEAVING.md#depth-tuning reads the knee.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <optional>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/host/interleave.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hd = hybrids::ds;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;
namespace hh = hybrids::host;

namespace {

constexpr std::size_t kLlcBytes = 1 << 20;  // §3.3 / §3.4 sizing target

using hybrids::bench::now_ns;

struct RunResult {
  double mops = 0;
  std::uint64_t checksum = 0;  // folded results: cross-checks arms, defeats DCE
};

/// One blocking op from the stream: the depth-1 baseline body, identical to
/// the figure benches.
template <typename DS>
std::uint64_t run_blocking_op(DS& ds, const hw::Op& op,
                              std::vector<hybrids::ScanEntry>& buf,
                              std::uint32_t t) {
  switch (op.type) {
    case hw::OpType::kScan: {
      const std::size_t n = ds.scan(op.key, op.scan_len, buf.data(), t);
      std::uint64_t sum = 0;
      for (std::size_t j = 0; j < n; ++j) sum += buf[j].key;
      return sum;
    }
    case hw::OpType::kInsert:
      return ds.insert(op.key, op.value, t);
    case hw::OpType::kRemove:
      return ds.remove(op.key, t);
    default: {
      hybrids::Value v = 0;
      return ds.read(op.key, v, t) ? v : 0;
    }
  }
}

#if !defined(HYBRIDS_NO_INTERLEAVE)

/// One coroutine op: same dispatch as run_blocking_op but through the _co
/// entry points, so descents yield at prefetch points and publication waits
/// park the traversal. `buf` is per-slot — interleaved scans on one thread
/// must not share a result buffer.
template <typename DS>
hh::CoTask<std::uint64_t> run_co_op(DS& ds, const hw::Op op,
                                    std::vector<hybrids::ScanEntry>& buf,
                                    std::uint32_t t) {
  switch (op.type) {
    case hw::OpType::kScan: {
      const std::size_t n =
          co_await ds.scan_co(op.key, op.scan_len, buf.data(), t);
      std::uint64_t sum = 0;
      for (std::size_t j = 0; j < n; ++j) sum += buf[j].key;
      co_return sum;
    }
    case hw::OpType::kInsert:
      co_return co_await ds.insert_co(op.key, op.value, t);
    case hw::OpType::kRemove:
      co_return co_await ds.remove_co(op.key, t);
    default: {
      hybrids::Value v = 0;
      const bool ok = co_await ds.read_co(op.key, &v, t);
      co_return ok ? v : 0;
    }
  }
}

/// Pump loop: keep up to `depth` ops in flight through one Frame. Fills free
/// slots from the stream, steps the frame (one resume or one bounded futex
/// wait per call), and harvests completed tasks.
template <typename DS>
std::uint64_t pump(DS& ds, hw::OpStream& stream, std::uint32_t depth,
                   std::uint64_t total_ops, std::uint32_t scan_buf_len,
                   std::uint32_t t) {
  hh::Frame frame(depth);
  std::vector<std::optional<hh::CoTask<std::uint64_t>>> inflight(depth);
  std::vector<std::vector<hybrids::ScanEntry>> bufs(depth);
  for (auto& b : bufs) b.resize(scan_buf_len);
  std::uint64_t issued = 0, completed = 0, sum = 0;
  while (completed < total_ops) {
    for (std::uint32_t i = 0; i < depth && issued < total_ops; ++i) {
      if (inflight[i]) continue;
      inflight[i].emplace(run_co_op(ds, stream.next(), bufs[i], t));
      if (!frame.submit(inflight[i]->handle())) {
        inflight[i].reset();  // frame full (impossible at depth slots)
        break;
      }
      ++issued;
    }
    frame.step();
    for (std::uint32_t i = 0; i < depth; ++i) {
      if (inflight[i] && inflight[i]->done()) {
        sum += inflight[i]->result();
        inflight[i].reset();
        ++completed;
      }
    }
  }
  return sum;
}

#endif  // !HYBRIDS_NO_INTERLEAVE

/// One timed multi-threaded run at the given frame depth. Depth 1 runs the
/// blocking paths (the baseline); deeper arms run the coroutine pump.
template <typename DS>
RunResult run_threads(DS& ds, const hw::WorkloadSpec& spec,
                      std::uint32_t threads, std::uint32_t depth,
                      std::uint64_t warmup_per_thread,
                      std::uint64_t ops_per_thread) {
  std::atomic<std::uint64_t> checksum{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  std::uint64_t t0 = 0;
  std::atomic<std::uint32_t> ready{0};
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      hw::OpStream stream(spec, t);
      std::vector<hybrids::ScanEntry> buf(spec.max_scan_len);
      // Warmup is always blocking: it only exists to populate caches and
      // YCSB-E's insert frontier, and keeping it identical across arms keeps
      // the measured streams aligned.
      for (std::uint64_t i = 0; i < warmup_per_thread; ++i) {
        (void)run_blocking_op(ds, stream.next(), buf, t);
      }
      ready.fetch_add(1);
      while (ready.load() < threads) std::this_thread::yield();
      if (t == 0) t0 = now_ns();
      std::uint64_t my_sum = 0;
      if (depth <= 1) {
        for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
          my_sum += run_blocking_op(ds, stream.next(), buf, t);
        }
      } else {
#if !defined(HYBRIDS_NO_INTERLEAVE)
        my_sum = pump(ds, stream, depth, ops_per_thread, spec.max_scan_len, t);
#endif
      }
      checksum.fetch_add(my_sum, std::memory_order_relaxed);
    });
  }
  for (std::thread& w : workers) w.join();
  const double secs = static_cast<double>(now_ns() - t0) * 1e-9;
  RunResult r;
  r.mops = static_cast<double>(threads) * static_cast<double>(ops_per_thread) /
           secs / 1e6;
  r.checksum = checksum.load();
  return r;
}

template <typename DS>
RunResult best_of(DS& ds, const hw::WorkloadSpec& spec, std::uint32_t threads,
                  std::uint32_t depth, std::uint64_t warmup, std::uint64_t ops,
                  int reps) {
  RunResult best;
  for (int r = 0; r < reps; ++r) {
    const RunResult run = run_threads(ds, spec, threads, depth, warmup, ops);
    if (run.mops > best.mops) best.mops = run.mops;
    best.checksum = run.checksum;
  }
  return best;
}

struct Arm {
  RunResult sl_c;  // hybrid-skiplist YCSB-C
  RunResult sl_e;  // hybrid-skiplist YCSB-E
  RunResult bt_c;  // hybrid-btree   YCSB-C
};

}  // namespace

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);

  if (!hh::kInterleaveCompiledIn) {
    std::cerr << "note: built with HYBRIDS_NO_INTERLEAVE — only the depth-1 "
                 "(blocking) arm can run; deeper arms are skipped\n";
  }

  const std::uint64_t keys =
      opt.keys ? opt.keys : (opt.full ? 1ull << 20 : 1ull << 16);
  const std::uint32_t threads = opt.threads.empty() ? 1 : opt.threads.front();
  const int reps = 3;
  std::uint32_t max_depth = 1;
  for (const std::uint32_t d : opt.depths) max_depth = std::max(max_depth, d);

  const hw::WorkloadSpec spec_c = hw::ycsb_c(keys);
  const hw::WorkloadSpec spec_e = hw::ycsb_e(keys, /*partitions=*/8,
                                             /*seed=*/42, opt.scan_max);
  hw::KeyLayout layout(spec_c.initial_keys, spec_c.partitions);

  std::cout << "Ablation: coroutine interleaving depth (" << keys << " keys, "
            << threads << " thread(s), " << opt.ops
            << " ops/thread, best of " << reps << ")\n\n";

  std::vector<Arm> arms;
  for (const std::uint32_t depth : opt.depths) {
    if (depth > 1 && !hh::kInterleaveCompiledIn) {
      arms.emplace_back();  // zero row: printed as skipped below
      continue;
    }
    Arm arm;
    {
      hd::HybridSkipList::Config cfg;
      int total = 1;
      while ((1ull << total) < spec_c.initial_keys) ++total;
      cfg.nmp_height =
          hd::HybridSkipList::nmp_height_for_cache(spec_c.initial_keys,
                                                   kLlcBytes);
      cfg.total_height = total > cfg.nmp_height ? total : cfg.nmp_height + 1;
      cfg.partitions = spec_c.partitions;
      cfg.partition_width = layout.partition_width();
      cfg.max_threads = threads;
      cfg.slots_per_thread = max_depth;  // identical across arms
      hd::HybridSkipList list(cfg);
      for (hybrids::Key k : layout.initial_key_set()) {
        (void)list.insert(k, k, 0);
      }
      arm.sl_c = best_of(list, spec_c, threads, depth, opt.warmup, opt.ops,
                         reps);
      arm.sl_e = best_of(list, spec_e, threads, depth, opt.warmup, opt.ops,
                         reps);
    }
    {
      hd::HybridBTree::Config cfg;
      cfg.nmp_levels = hd::HybridBTree::nmp_levels_for_cache(
          spec_c.initial_keys, kLlcBytes);
      cfg.partitions = spec_c.partitions;
      cfg.max_threads = threads;
      cfg.slots_per_thread = max_depth;
      const std::vector<hybrids::Key> ks = layout.initial_key_set();
      const std::vector<hybrids::Value> vs(ks.begin(), ks.end());
      hd::HybridBTree tree(cfg, ks, vs);
      arm.bt_c = best_of(tree, spec_c, threads, depth, opt.warmup, opt.ops,
                         reps);
    }
    arms.push_back(arm);
  }

  // Zipfian reads against static contents: interleaving must not change
  // results, whatever order the frame completes them in.
  std::size_t base_idx = arms.size();
  for (std::size_t i = 0; i < arms.size(); ++i) {
    if (opt.depths[i] == 1) {
      base_idx = i;
      break;
    }
  }
  if (base_idx < arms.size()) {
    for (std::size_t i = 0; i < arms.size(); ++i) {
      if (opt.depths[i] > 1 && !hh::kInterleaveCompiledIn) continue;
      if (arms[i].sl_c.checksum != arms[base_idx].sl_c.checksum ||
          arms[i].bt_c.checksum != arms[base_idx].bt_c.checksum) {
        std::cerr << "BUG: YCSB-C checksum differs between depth "
                  << opt.depths[base_idx] << " and depth " << opt.depths[i]
                  << "\n";
        return 1;
      }
    }
  }

  hybrids::util::Table table({"depth", "sl ycsb-c Mops/s", "c speedup",
                              "sl ycsb-e Mops/s", "e speedup",
                              "bt ycsb-c Mops/s", "bt speedup"});
  const Arm& base = base_idx < arms.size() ? arms[base_idx] : arms.front();
  for (std::size_t i = 0; i < arms.size(); ++i) {
    if (opt.depths[i] > 1 && !hh::kInterleaveCompiledIn) {
      table.new_row().add_cell(std::to_string(opt.depths[i]) +
                               " (skipped: compiled out)");
      continue;
    }
    const Arm& a = arms[i];
    table.new_row()
        .add_cell(std::to_string(opt.depths[i]))
        .add_num(a.sl_c.mops, 3)
        .add_num(base.sl_c.mops > 0 ? a.sl_c.mops / base.sl_c.mops : 0, 3)
        .add_num(a.sl_e.mops, 3)
        .add_num(base.sl_e.mops > 0 ? a.sl_e.mops / base.sl_e.mops : 0, 3)
        .add_num(a.bt_c.mops, 3)
        .add_num(base.bt_c.mops > 0 ? a.bt_c.mops / base.bt_c.mops : 0, 3);
  }
  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);

  if (base_idx < arms.size()) {
    for (std::size_t i = 0; i < arms.size(); ++i) {
      if (opt.depths[i] == 8 && hh::kInterleaveCompiledIn) {
        std::cout << "\ndepth-8 zipfian-read speedup vs blocking: "
                  << arms[i].sl_c.mops / base.sl_c.mops << "x (skiplist), "
                  << arms[i].bt_c.mops / base.bt_c.mops << "x (btree)\n";
      }
    }
  }
  return 0;
}
