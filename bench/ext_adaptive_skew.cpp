// Extension bench — adaptive promotion under skew (§7 future work).
//
// The paper's stated limitation: under highly skewed workloads, a
// conventional structure keeps its hot nodes in the on-chip cache, while the
// hybrid forces all lower-level nodes into NMP memory. §7 proposes
// self-adjusting hybrids that promote hot keys into the host-managed region
// (biased skiplists / splay-lists / CBTree). This bench evaluates our
// implementation of that idea: zipfian YCSB-C against lock-free, plain
// hybrid, and adaptive hybrid (threshold 8, budget 400 promotions).
//
// Known limitation (tracked in EXPERIMENTS.md): beyond roughly 2x this
// budget at this scale, simulated NMP traversals lengthen sharply and the
// benefit inverts; keep budgets a small fraction of the key count.
// A second section closes the loop online: a real HybridSkipList with a
// hot-key cache runs a zipfian read stream whose hot set SHIFTS halfway
// through, while a control thread feeds HotCache::stats() deltas (and the
// trace layer's queue-wait share, when armed) into cache::SplitController
// and applies the knobs it moves — set_value_ratio() on the cache and
// set_promote_budget() on the structure. The printed trajectory shows the
// hit rate collapsing at the shift and recovering as refills repopulate
// the tiers, with every knob move spaced by the controller's hysteresis.
#include <atomic>
#include <cstdint>
#include <iostream>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "hybrids/cache/controller.hpp"
#include "hybrids/cache/hot_cache.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/sim/exp/experiment.hpp"
#include "hybrids/telemetry/registry.hpp"
#include "hybrids/trace/trace.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/workload.hpp"
#include "hybrids/workload/ycsb.hpp"
#include "hybrids/workload/zipf.hpp"

namespace hs = hybrids::sim;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;
namespace hc = hybrids::cache;
namespace hd = hybrids::ds;

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Online closed loop: SplitController steering a live HybridSkipList cache
/// through a mid-run hot-set shift.
void run_online_controller(const hb::Options& opt) {
  const std::uint64_t keys = 1ull << 15;
  const std::uint32_t threads = 4;
  const std::uint64_t reads_per_thread =
      std::max<std::uint64_t>(opt.ops * 8, 96000);
  const std::uint64_t window_ops = threads * reads_per_thread / 16;

  hd::HybridSkipList::Config cfg;
  cfg.nmp_height = hd::HybridSkipList::nmp_height_for_cache(keys, 1 << 20);
  cfg.total_height = 15 > cfg.nmp_height ? 15 : cfg.nmp_height + 1;
  cfg.partitions = 8;
  hw::KeyLayout layout(keys, cfg.partitions);
  cfg.partition_width = layout.partition_width();
  cfg.max_threads = threads;
  cfg.cache_budget_bytes = 16 * 1024;
  hd::HybridSkipList list(cfg);
  for (hybrids::Key k : layout.initial_key_set()) (void)list.insert(k, k, 0);
  if (list.hot_cache() == nullptr) {
    std::cout << "\n(online controller section skipped: cache compiled out)\n";
    return;
  }

  hc::SplitController::Config ctl_cfg;
  ctl_cfg.promote_budget = 64;  // mid-range so queue pressure can move it
  hc::SplitController ctl(ctl_cfg);
  list.hot_cache()->set_value_ratio(ctl.value_ratio());
  list.set_promote_budget(ctl.promote_budget());

  std::atomic<std::uint64_t> ops_done{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      hybrids::util::Xoshiro256 rng(0xADA7 + t);
      hw::ZipfianGenerator zipf(keys, 0.9);
      for (std::uint64_t i = 0; i < reads_per_thread; ++i) {
        // Halfway through, re-salt the rank scramble: a brand-new hot set,
        // so every cached entry for the old head goes cold at once.
        const std::uint64_t salt = i < reads_per_thread / 2 ? 0 : 0x5EED;
        const hybrids::Key k =
            layout.key_at(mix64(zipf.next(rng) ^ salt) % keys);
        hybrids::Value v = 0;
        (void)list.read(k, v, t);
        ops_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  hybrids::util::Table traj({"window", "hit rate", "value hits",
                             "shortcut hits", "misses", "value ratio",
                             "promote", "moved"});
  std::thread controller([&] {
    namespace tn = hybrids::telemetry::names;
    hc::HotCache::Stats prev = list.hot_cache()->stats();
    std::uint64_t prev_qw = 0, prev_svc = 0, last_ops = 0;
    int window = 0;
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      const std::uint64_t now_ops = ops_done.load(std::memory_order_relaxed);
      if (now_ops - last_ops < window_ops && !done.load()) continue;
      last_ops = now_ops;
      const hc::HotCache::Stats cur = list.hot_cache()->stats();
      hc::SplitController::Sample s;
      s.value_hits = cur.value_hits - prev.value_hits;
      s.shortcut_hits = cur.shortcut_hits - prev.shortcut_hits;
      s.misses = cur.misses - prev.misses;
      // Modeled per-hit savings: a value hit skips the whole read
      // (host descent + partition round-trip), a shortcut hit only the
      // descent. Matches the cost split ablate_cache measures.
      s.value_save_ns = 900;
      s.shortcut_save_ns = 300;
      // Queue-wait share from the trace layer when armed; neutral
      // (in-deadband) otherwise so the promote knob holds still.
      s.queue_wait_share = 0.4;
      if (hybrids::trace::kCompiledIn && hybrids::trace::sample_every() > 0) {
        std::uint64_t qw = 0, svc = 0;
        for (const auto& c : hybrids::telemetry::snapshot().counters) {
          if (c.name == tn::kTraceQueueWaitNs) qw += c.value;
          if (c.name == tn::kTraceServiceNs) svc += c.value;
        }
        const std::uint64_t dq = qw - prev_qw, dv = svc - prev_svc;
        prev_qw = qw;
        prev_svc = svc;
        if (dq + dv > 0) {
          s.queue_wait_share =
              static_cast<double>(dq) / static_cast<double>(dq + dv);
        }
      }
      prev = cur;
      const bool moved = ctl.observe(s);
      if (moved) {
        list.hot_cache()->set_value_ratio(ctl.value_ratio());
        list.set_promote_budget(ctl.promote_budget());
      }
      const std::uint64_t total = s.value_hits + s.shortcut_hits + s.misses;
      traj.new_row()
          .add_cell(std::to_string(window++))
          .add_num(total ? static_cast<double>(s.value_hits + s.shortcut_hits) /
                               static_cast<double>(total)
                         : 0.0,
                   3)
          .add_cell(std::to_string(s.value_hits))
          .add_cell(std::to_string(s.shortcut_hits))
          .add_cell(std::to_string(s.misses))
          .add_num(ctl.value_ratio(), 2)
          .add_cell(std::to_string(ctl.promote_budget()))
          .add_cell(moved ? "yes" : "");
    }
  });
  for (std::thread& w : workers) w.join();
  done.store(true);
  controller.join();

  std::cout << "\nOnline controller trajectory (hot-set shift at the midpoint; "
            << window_ops << "-op windows, hysteresis "
            << ctl_cfg.hysteresis << "):\n";
  traj.print(std::cout);
  std::cout << "ratio moves: " << ctl.ratio_moves()
            << ", promote moves: " << ctl.promote_moves()
            << ", final ratio: " << ctl.value_ratio()
            << ", final promote budget: " << ctl.promote_budget() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  if (opt.warmup < 8000) opt.warmup = 8000;  // let promotions settle before measuring
  const std::uint64_t keys = opt.keys ? opt.keys : 1ull << 18;
  const std::uint32_t threads = opt.threads.empty() ? 8 : opt.threads.front();

  std::cout << "Extension: adaptive hot-key promotion under zipfian skew ("
            << keys << " keys, " << threads << " threads)\n\n";

  hybrids::util::Table table(
      {"design", "Mops/s", "idx DRAM reads/op", "NMP reads/op"});
  auto run_skiplist = [&](const char* name, hs::SkiplistKind kind,
                          std::uint32_t threshold, std::uint32_t budget) {
    hs::ExperimentConfig cfg;
    cfg.workload = hw::ycsb_c(keys);
    cfg.threads = threads;
    cfg.ops_per_thread = opt.ops;
    cfg.warmup_per_thread = opt.warmup;
    cfg.promote_threshold = threshold;
    cfg.promote_budget = budget;
    hs::ExperimentResult r = hs::run_skiplist_experiment(kind, cfg);
    table.new_row()
        .add_cell(name)
        .add_num(r.mops, 3)
        .add_num(r.dram_reads_per_op, 1)
        .add_num(r.nmp_dram_reads_per_op, 1);
  };

  run_skiplist("lock-free", hs::SkiplistKind::kLockFree, 0, 0);
  run_skiplist("hybrid-blocking", hs::SkiplistKind::kHybridBlocking, 0, 0);
  run_skiplist("hybrid-adaptive", hs::SkiplistKind::kHybridBlocking, 8, 200);
  run_skiplist("hybrid-nonblocking4", hs::SkiplistKind::kHybridNonBlocking, 0, 0);
  run_skiplist("hybrid-nonblocking4-adaptive", hs::SkiplistKind::kHybridNonBlocking,
               8, 200);

  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);

  // Per-partition queueing-vs-service attribution from the tracing layer
  // (arm with --trace-sample=N). Under skew the hot partition's queue-wait
  // share climbs long before its service time does — exactly the signal an
  // adaptive split/promotion policy should key off, as opposed to uniform
  // overload where every partition's queue share rises together.
  if (hybrids::trace::kCompiledIn && hybrids::trace::sample_every() > 0) {
    namespace tn = hybrids::telemetry::names;
    const hybrids::telemetry::Snapshot snap = hybrids::telemetry::snapshot();
    // partition -> (queue_wait_ns, service_ns), traced ops only
    std::map<std::int32_t, std::pair<std::uint64_t, std::uint64_t>> parts;
    for (const auto& c : snap.counters) {
      if (c.partition == hybrids::telemetry::Registry::kGlobal) continue;
      if (c.name == tn::kTraceQueueWaitNs) {
        parts[c.partition].first += c.value;
      } else if (c.name == tn::kTraceServiceNs) {
        parts[c.partition].second += c.value;
      }
    }
    bool any = false;
    for (const auto& [p, t] : parts) any |= (t.first + t.second) > 0;
    if (any) {
      std::cout << "\nPer-partition latency attribution (traced ops, all "
                   "designs pooled):\n";
      hybrids::util::Table attr(
          {"partition", "queue_wait_us", "service_us", "queue share"});
      for (const auto& [p, t] : parts) {
        const auto [qw, svc] = t;
        if (qw + svc == 0) continue;
        attr.new_row()
            .add_cell(std::to_string(p))
            .add_num(static_cast<double>(qw) / 1000.0, 1)
            .add_num(static_cast<double>(svc) / 1000.0, 1)
            .add_num(static_cast<double>(qw) /
                         static_cast<double>(qw + svc),
                     2);
      }
      attr.print(std::cout);
    }
  }

  run_online_controller(opt);

  std::cout << "\n(Adaptive promotion raises hot NMP-only keys into the "
               "host-managed portion,\nrecovering the skew advantage the "
               "paper's §7 identifies as future work.)\n";
  return 0;
}
