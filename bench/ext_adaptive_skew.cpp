// Extension bench — adaptive promotion under skew (§7 future work).
//
// The paper's stated limitation: under highly skewed workloads, a
// conventional structure keeps its hot nodes in the on-chip cache, while the
// hybrid forces all lower-level nodes into NMP memory. §7 proposes
// self-adjusting hybrids that promote hot keys into the host-managed region
// (biased skiplists / splay-lists / CBTree). This bench evaluates our
// implementation of that idea: zipfian YCSB-C against lock-free, plain
// hybrid, and adaptive hybrid (threshold 8, budget 400 promotions).
//
// Known limitation (tracked in EXPERIMENTS.md): beyond roughly 2x this
// budget at this scale, simulated NMP traversals lengthen sharply and the
// benefit inverts; keep budgets a small fraction of the key count.
#include <cstdint>
#include <iostream>
#include <map>
#include <utility>

#include "bench_common.hpp"
#include "hybrids/sim/exp/experiment.hpp"
#include "hybrids/telemetry/registry.hpp"
#include "hybrids/trace/trace.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hs = hybrids::sim;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  if (opt.warmup < 8000) opt.warmup = 8000;  // let promotions settle before measuring
  const std::uint64_t keys = opt.keys ? opt.keys : 1ull << 18;
  const std::uint32_t threads = opt.threads.empty() ? 8 : opt.threads.front();

  std::cout << "Extension: adaptive hot-key promotion under zipfian skew ("
            << keys << " keys, " << threads << " threads)\n\n";

  hybrids::util::Table table(
      {"design", "Mops/s", "idx DRAM reads/op", "NMP reads/op"});
  auto run_skiplist = [&](const char* name, hs::SkiplistKind kind,
                          std::uint32_t threshold, std::uint32_t budget) {
    hs::ExperimentConfig cfg;
    cfg.workload = hw::ycsb_c(keys);
    cfg.threads = threads;
    cfg.ops_per_thread = opt.ops;
    cfg.warmup_per_thread = opt.warmup;
    cfg.promote_threshold = threshold;
    cfg.promote_budget = budget;
    hs::ExperimentResult r = hs::run_skiplist_experiment(kind, cfg);
    table.new_row()
        .add_cell(name)
        .add_num(r.mops, 3)
        .add_num(r.dram_reads_per_op, 1)
        .add_num(r.nmp_dram_reads_per_op, 1);
  };

  run_skiplist("lock-free", hs::SkiplistKind::kLockFree, 0, 0);
  run_skiplist("hybrid-blocking", hs::SkiplistKind::kHybridBlocking, 0, 0);
  run_skiplist("hybrid-adaptive", hs::SkiplistKind::kHybridBlocking, 8, 200);
  run_skiplist("hybrid-nonblocking4", hs::SkiplistKind::kHybridNonBlocking, 0, 0);
  run_skiplist("hybrid-nonblocking4-adaptive", hs::SkiplistKind::kHybridNonBlocking,
               8, 200);

  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);

  // Per-partition queueing-vs-service attribution from the tracing layer
  // (arm with --trace-sample=N). Under skew the hot partition's queue-wait
  // share climbs long before its service time does — exactly the signal an
  // adaptive split/promotion policy should key off, as opposed to uniform
  // overload where every partition's queue share rises together.
  if (hybrids::trace::kCompiledIn && hybrids::trace::sample_every() > 0) {
    namespace tn = hybrids::telemetry::names;
    const hybrids::telemetry::Snapshot snap = hybrids::telemetry::snapshot();
    // partition -> (queue_wait_ns, service_ns), traced ops only
    std::map<std::int32_t, std::pair<std::uint64_t, std::uint64_t>> parts;
    for (const auto& c : snap.counters) {
      if (c.partition == hybrids::telemetry::Registry::kGlobal) continue;
      if (c.name == tn::kTraceQueueWaitNs) {
        parts[c.partition].first += c.value;
      } else if (c.name == tn::kTraceServiceNs) {
        parts[c.partition].second += c.value;
      }
    }
    bool any = false;
    for (const auto& [p, t] : parts) any |= (t.first + t.second) > 0;
    if (any) {
      std::cout << "\nPer-partition latency attribution (traced ops, all "
                   "designs pooled):\n";
      hybrids::util::Table attr(
          {"partition", "queue_wait_us", "service_us", "queue share"});
      for (const auto& [p, t] : parts) {
        const auto [qw, svc] = t;
        if (qw + svc == 0) continue;
        attr.new_row()
            .add_cell(std::to_string(p))
            .add_num(static_cast<double>(qw) / 1000.0, 1)
            .add_num(static_cast<double>(svc) / 1000.0, 1)
            .add_num(static_cast<double>(qw) /
                         static_cast<double>(qw + svc),
                     2);
      }
      attr.print(std::cout);
    }
  }

  std::cout << "\n(Adaptive promotion raises hot NMP-only keys into the "
               "host-managed portion,\nrecovering the skew advantage the "
               "paper's §7 identifies as future work.)\n";
  return 0;
}
