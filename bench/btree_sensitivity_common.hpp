// Shared runner for the B+ tree sensitivity study (Figures 8 and 9): the
// same five workloads — 100-0-0 / 90-5-5 / 70-15-15 / 50-25-25 with
// split-heavy partition-tail inserts, plus 50-25-25 "fully uniform" (no
// node splits) — against host-only, hybrid-blocking and
// hybrid-nonblocking4.
#pragma once

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "hybrids/sim/exp/experiment.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hybrids::bench {

struct BTreeSensitivityPoint {
  std::string mix;
  sim::ExperimentResult host_only;
  sim::ExperimentResult hybrid_blocking;
  sim::ExperimentResult hybrid_nonblocking;
};

inline std::vector<BTreeSensitivityPoint> run_btree_sensitivity(
    const Options& opt, std::uint64_t keys, std::uint32_t threads) {
  struct Mix {
    int read, insert, remove;
    bool split_heavy;
    const char* suffix;
  };
  const Mix mixes[] = {
      {100, 0, 0, true, ""},
      {90, 5, 5, true, ""},
      {70, 15, 15, true, ""},
      {50, 25, 25, true, ""},
      {50, 25, 25, false, " fully-uniform"},
  };

  std::vector<BTreeSensitivityPoint> points;
  for (const Mix& mix : mixes) {
    workload::WorkloadSpec wl =
        workload::sensitivity(keys, mix.read, mix.insert, mix.remove, mix.split_heavy);
    BTreeSensitivityPoint point;
    point.mix = wl.mix.name() + std::string(mix.suffix);
    for (auto kind : {sim::BTreeKind::kHostOnly, sim::BTreeKind::kHybridBlocking,
                      sim::BTreeKind::kHybridNonBlocking}) {
      sim::ExperimentConfig cfg;
      cfg.workload = wl;
      cfg.threads = threads;
      cfg.ops_per_thread = opt.ops;
      cfg.warmup_per_thread = opt.warmup;
      sim::ExperimentResult r = sim::run_btree_experiment(kind, cfg);
      switch (kind) {
        case sim::BTreeKind::kHostOnly: point.host_only = r; break;
        case sim::BTreeKind::kHybridBlocking: point.hybrid_blocking = r; break;
        case sim::BTreeKind::kHybridNonBlocking: point.hybrid_nonblocking = r; break;
      }
    }
    points.push_back(point);
  }
  return points;
}

}  // namespace hybrids::bench
