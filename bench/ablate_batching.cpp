// Ablation — key-sorted combiner batching.
//
// Two modes, both printed on every run:
//
//  A. Combiner-level sweep (deterministic): replicates NmpCore's two serve
//     paths exactly — per-op cost accounting included — over batch sizes
//     (combiner scan occupancy) {1,2,4,8,16,32,64} and three key workloads.
//     The unbatched arm is the legacy loop: per op, a timestamp pair around
//     a std::function handler dispatch plus a service-latency record, with a
//     fresh top-down descent inside. The batched arm is the batch path: the
//     collected ops are key-sorted (stable_sort of BatchOp, charged to the
//     arm, as NmpCore pays it), dispatched once, applied through a shared
//     traversal finger, and timed with one timestamp pair for the whole
//     batch. Both arms replay byte-identical request streams; reads only, so
//     the list never changes between arms or reps. Timing is min-of-reps and
//     the response streams are cross-checked. At occupancy 1 NmpCore falls
//     back to the one-at-a-time handler, so the arms are the same code path
//     by construction and the row is measured once and reported for both.
//
//     Workloads: "sorted" (ascending probe windows — the key-sorted best
//     case), "zipf" (rank-ordered zipfian: a range partition's hot keys are
//     adjacent, so sorted batches have small gaps; YCSB's *scrambled*
//     zipfian deliberately destroys exactly this key locality and behaves
//     like uniform here), "uniform" (worst case: batch gaps as large as the
//     key space allows).
//
//  B. End-to-end check: NmpSkipList with Config::batching on vs off, host
//     threads issuing blocking calls over a zipfian mix, served Mops/s,
//     best of 3 runs per arm. This includes runtime overheads (publication
//     protocol, parking) and scheduling noise; mode A is the controlled
//     measurement.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <limits>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "hybrids/ds/nmp_skiplist.hpp"
#include "hybrids/ds/seq_skiplist.hpp"
#include "hybrids/telemetry/counters.hpp"
#include "hybrids/util/rng.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/zipf.hpp"

namespace hd = hybrids::ds;
namespace hn = hybrids::nmp;
namespace hu = hybrids::util;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;

namespace {

using hybrids::bench::now_ns;

enum class KeyPattern { kSortedWindow, kZipf, kUniform };

const char* pattern_name(KeyPattern p) {
  switch (p) {
    case KeyPattern::kSortedWindow: return "sorted";
    case KeyPattern::kZipf: return "zipf";
    default: return "uniform";
  }
}

/// All requests for one sweep point, pre-generated so both arms replay the
/// exact same stream. Keys are in generation (slot) order; the batched arm
/// sorts per batch, as the combiner does.
std::vector<hn::Request> make_requests(KeyPattern pattern, std::uint64_t count,
                                       hybrids::Key key_space,
                                       std::uint64_t batch_size) {
  hu::Xoshiro256 rng(0xB47C0DE * (batch_size + 1) +
                     static_cast<std::uint64_t>(pattern));
  hw::ZipfianGenerator zipf(key_space);
  std::vector<hn::Request> reqs;
  reqs.reserve(count);
  hybrids::Key cursor = 1;
  for (std::uint64_t i = 0; i < count; ++i) {
    hybrids::Key key = 0;
    switch (pattern) {
      case KeyPattern::kSortedWindow:
        // Ascending probe sequence with small random gaps; re-randomize the
        // window at each batch boundary so batches don't correlate.
        if (i % batch_size == 0) {
          cursor = 1 + static_cast<hybrids::Key>(rng.next_below(key_space));
        }
        cursor = 1 + (cursor - 1 + 1 + static_cast<hybrids::Key>(
                                           rng.next_below(4))) % key_space;
        key = cursor;
        break;
      case KeyPattern::kZipf:
        key = 1 + static_cast<hybrids::Key>(zipf.next(rng));
        break;
      case KeyPattern::kUniform:
        key = 1 + static_cast<hybrids::Key>(rng.next_below(key_space));
        break;
    }
    hn::Request r;
    r.op = hn::OpCode::kRead;
    r.key = key;
    reqs.push_back(r);
  }
  return reqs;
}

struct ArmResult {
  double ns_per_op = 0;
  double finger_hit_rate = 0;  // batched arm only
  std::uint64_t checksum = 0;  // folded responses — cross-checks the arms
                               // and defeats dead-code elimination
};

std::uint64_t fold_responses(const std::vector<hn::Request>& reqs,
                             const std::vector<hn::Response>& resps) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    sum += resps[i].ok ? resps[i].value + reqs[i].key : 0;
  }
  return sum;
}

struct PointResult {
  ArmResult unbatched;
  ArmResult batched;
};

/// Measures both arms for one sweep point, interleaving their reps so any
/// machine-load drift hits both equally; keeps each arm's min.
PointResult run_point(hd::SeqSkipList& list,
                      const std::vector<hn::Request>& reqs,
                      std::uint64_t batch_size, int reps) {
  // Legacy arm — NmpCore's one-at-a-time loop: per op, a timestamp pair
  // around a std::function dispatch plus a service record.
  const hn::NmpCore::Handler handler =
      [&list](const hn::Request& req, hn::Response& resp) {
        hd::NmpSkipList::apply(list, req, resp);
      };
  // Batch arm — NmpCore's batch path: collect BatchOps, key-sort, dispatch
  // once, record the evenly-split service time per op.
  std::uint64_t hits = 0;
  const hn::NmpCore::BatchHandler batch_handler =
      [&list, &hits](hn::BatchOp* ops, std::size_t n) {
        hd::SeqSkipList::Finger fg;
        for (std::size_t i = 0; i < n; ++i) {
          hd::NmpSkipList::apply(list, *ops[i].req, *ops[i].resp, &fg);
        }
        hits += fg.hits;
      };

  hybrids::telemetry::LatencyRecorder service;
  std::vector<hn::Response> un_resps(reqs.size());
  std::vector<hn::Response> ba_resps(reqs.size());
  std::vector<hn::BatchOp> batch;
  batch.reserve(batch_size);
  std::uint64_t un_best = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t ba_best = std::numeric_limits<std::uint64_t>::max();
  for (int r = 0; r < reps; ++r) {
    {
      const std::uint64_t t0 = now_ns();
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        const std::uint64_t h0 = now_ns();
        handler(reqs[i], un_resps[i]);
        service.record(static_cast<double>(now_ns() - h0));
      }
      un_best = std::min(un_best, now_ns() - t0);
    }
    {
      hits = 0;
      const std::uint64_t t0 = now_ns();
      for (std::size_t base = 0; base + batch_size <= reqs.size();
           base += batch_size) {
        batch.clear();
        for (std::size_t i = base; i < base + batch_size; ++i) {
          batch.push_back(hn::BatchOp{&reqs[i], &ba_resps[i]});
        }
        // Same sort as NmpCore: pointer tiebreak = collection order, so the
        // sort is stable without stable_sort's per-call allocation.
        std::sort(batch.begin(), batch.end(),
                  [](const hn::BatchOp& a, const hn::BatchOp& b) {
                    return a.req->key != b.req->key ? a.req->key < b.req->key
                                                    : a.req < b.req;
                  });
        const std::uint64_t apply0 = now_ns();
        batch_handler(batch.data(), batch.size());
        const std::uint64_t per_op = (now_ns() - apply0) / batch.size();
        for (std::size_t i = 0; i < batch.size(); ++i) {
          service.record(static_cast<double>(per_op));
        }
      }
      ba_best = std::min(ba_best, now_ns() - t0);
    }
  }
  const double n = static_cast<double>(reqs.size());
  return {{static_cast<double>(un_best) / n, 0.0,
           fold_responses(reqs, un_resps)},
          {static_cast<double>(ba_best) / n,
           static_cast<double>(hits) / n, fold_responses(reqs, ba_resps)}};
}

/// Mode B: wall-clock served throughput of the full NmpSkipList stack.
double run_end_to_end(bool batching, std::uint32_t threads, std::uint64_t keys,
                      std::uint64_t ops_per_thread) {
  hd::NmpSkipList::Config cfg;
  cfg.total_height = 16;
  // Few partitions so the combiners actually observe multi-op occupancy:
  // with T blocking host threads over P partitions, a combiner's scan sees
  // at most ~T/P pending ops.
  cfg.partitions = 2;
  cfg.partition_width = static_cast<hybrids::Key>(2 * keys / cfg.partitions + 1);
  cfg.max_threads = threads;
  cfg.slots_per_thread = 2;
  cfg.batching = batching;
  hd::NmpSkipList list(cfg);
  for (std::uint64_t k = 0; k < keys; ++k) {
    list.insert(static_cast<hybrids::Key>(2 * k + 1), 1, 0);
  }

  std::vector<std::thread> workers;
  const std::uint64_t t0 = now_ns();
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      hu::Xoshiro256 rng(0xE2E + t);
      hw::ZipfianGenerator zipf(2 * keys);
      hybrids::Value out;
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
        const hybrids::Key k = 1 + static_cast<hybrids::Key>(zipf.next(rng));
        if (rng.next_below(10) == 0) {
          list.update(k, static_cast<hybrids::Value>(i), t);
        } else {
          list.read(k, out, t);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double secs = static_cast<double>(now_ns() - t0) * 1e-9;
  return static_cast<double>(threads) * static_cast<double>(ops_per_thread) /
         secs / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);

  const std::uint64_t preload = opt.keys ? opt.keys : (opt.full ? 1ull << 19
                                                                : 1ull << 16);
  const hybrids::Key key_space = static_cast<hybrids::Key>(2 * preload);
  const std::uint64_t sweep_ops =
      std::max<std::uint64_t>(opt.ops * 8, 1ull << 16);
  const int reps = 7;

  // One partition's worth of list, preloaded with every other key so half of
  // the probes hit.
  hd::SeqSkipList list(18);
  {
    hu::Xoshiro256 rng(42);
    hn::Response resp;
    for (std::uint64_t k = 0; k < preload; ++k) {
      hn::Request req;
      req.op = hn::OpCode::kInsert;
      req.key = static_cast<hybrids::Key>(2 * k + 1);
      req.value = 1;
      req.aux = static_cast<std::uint64_t>(hd::random_height(rng, 18));
      hd::NmpSkipList::apply(list, req, resp);
    }
  }

  std::cout << "Ablation: key-sorted combiner batching (mode A: combiner-level"
               ", " << preload << " keys, " << sweep_ops << " ops/point, min of "
            << reps << " reps)\n\n";

  hu::Table table({"workload", "batch", "unbatched ns/op", "batched ns/op",
                   "speedup", "finger hit rate"});
  for (KeyPattern pattern : {KeyPattern::kSortedWindow, KeyPattern::kZipf,
                             KeyPattern::kUniform}) {
    for (std::uint64_t b : {1ull, 2ull, 4ull, 8ull, 16ull, 32ull, 64ull}) {
      const std::vector<hn::Request> reqs =
          make_requests(pattern, sweep_ops - sweep_ops % b, key_space, b);
      // Occupancy 1: NmpCore serves through the one-at-a-time handler, so
      // both arms are literally the same code — measure once, report for
      // both.
      const PointResult pr = run_point(list, reqs, b, reps);
      const ArmResult un = pr.unbatched;
      const ArmResult ba = b == 1 ? un : pr.batched;
      if (un.checksum != ba.checksum) {
        std::cerr << "BUG: batched and unbatched arms disagree ("
                  << pattern_name(pattern) << ", batch=" << b << ")\n";
        return 1;
      }
      table.new_row()
          .add_cell(pattern_name(pattern))
          .add_int(static_cast<long long>(b))
          .add_num(un.ns_per_op, 1)
          .add_num(ba.ns_per_op, 1)
          .add_num(un.ns_per_op / ba.ns_per_op, 3)
          .add_num(ba.finger_hit_rate, 3);
    }
  }
  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);

  const std::uint32_t threads = opt.threads.empty() ? 8 : opt.threads.front();
  const std::uint64_t e2e_keys = opt.full ? 1ull << 16 : 1ull << 13;
  std::cout << "\nMode B: end-to-end NmpSkipList, " << threads
            << " host threads, zipfian 90/10 read/update, best of 3\n\n";
  hu::Table e2e({"batching", "Mops/s"});
  double off = 0, on = 0;
  for (int r = 0; r < 3; ++r) {
    off = std::max(off, run_end_to_end(false, threads, e2e_keys, opt.ops));
    on = std::max(on, run_end_to_end(true, threads, e2e_keys, opt.ops));
  }
  e2e.new_row().add_cell("off").add_num(off, 3);
  e2e.new_row().add_cell("on").add_num(on, 3);
  if (opt.csv) e2e.print_csv(std::cout); else e2e.print(std::cout);
  std::cout << "\nend-to-end speedup: " << (on / off) << "x\n";
  return 0;
}
