// Google-benchmark microbenchmarks of the *real* (threaded) concurrent
// library. These measure wall-clock costs of the software structures on the
// build machine — useful for regression tracking of the implementations
// themselves. (Architecture claims are evaluated on the simulator benches;
// on a single-CPU CI box, thread scaling here is not meaningful.)
//
// In addition to google-benchmark's own flags, accepts
//   --pool=arena|malloc   back structure nodes with the memory layer's
//                         arenas/pools (default) or plain aligned
//                         operator new/delete (see bench_common.hpp)
// which is stripped before benchmark::Initialize sees the argument list.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>

#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/ds/lockfree_skiplist.hpp"
#include "hybrids/ds/seqlock_btree.hpp"
#include "hybrids/mem/memlayer.hpp"
#include "hybrids/util/rng.hpp"
#include "hybrids/workload/workload.hpp"

namespace hd = hybrids::ds;
namespace hu = hybrids::util;
using hybrids::Key;
using hybrids::Value;

namespace {

constexpr std::uint64_t kKeys = 1 << 16;

void BM_LockFreeSkipList_Get(benchmark::State& state) {
  hd::LfSkipList list(17);
  hu::Xoshiro256 rng(1);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    list.insert(static_cast<Key>(i * 2), 1, hd::random_height(rng, 17));
  }
  Value v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.get(static_cast<Key>(rng.next_below(kKeys)) * 2, v));
  }
}
BENCHMARK(BM_LockFreeSkipList_Get);

void BM_LockFreeSkipList_InsertRemove(benchmark::State& state) {
  hd::LfSkipList list(17);
  hu::Xoshiro256 rng(2);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    list.insert(static_cast<Key>(i * 2), 1, hd::random_height(rng, 17));
  }
  for (auto _ : state) {
    Key k = static_cast<Key>(rng.next_below(kKeys)) * 2 + 1;
    benchmark::DoNotOptimize(list.insert(k, 1, hd::random_height(rng, 17)));
    benchmark::DoNotOptimize(list.remove(k));
  }
}
BENCHMARK(BM_LockFreeSkipList_InsertRemove);

void BM_HybridSkipList_Read(benchmark::State& state) {
  hd::HybridSkipList::Config cfg;
  cfg.total_height = 17;
  cfg.nmp_height = 8;
  cfg.partitions = 4;
  cfg.partition_width = static_cast<Key>((2 * kKeys) / 4);
  cfg.max_threads = 2;
  auto list = std::make_unique<hd::HybridSkipList>(cfg);
  hu::Xoshiro256 rng(3);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    list->insert(static_cast<Key>(i * 2), 1, 0);
  }
  Value v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        list->read(static_cast<Key>(rng.next_below(kKeys)) * 2, v, 0));
  }
}
BENCHMARK(BM_HybridSkipList_Read);

void BM_SeqLockBTree_Read(benchmark::State& state) {
  hd::SeqLockBTree tree;
  std::vector<Key> keys;
  std::vector<Value> vals;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    keys.push_back(static_cast<Key>(i * 2));
    vals.push_back(1);
  }
  tree.build_from_sorted(keys, vals);
  hu::Xoshiro256 rng(4);
  Value v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.read(static_cast<Key>(rng.next_below(kKeys)) * 2, v));
  }
}
BENCHMARK(BM_SeqLockBTree_Read);

void BM_SeqLockBTree_InsertRemove(benchmark::State& state) {
  hd::SeqLockBTree tree;
  for (std::uint64_t i = 0; i < kKeys; ++i) tree.insert(static_cast<Key>(i * 2), 1);
  hu::Xoshiro256 rng(5);
  for (auto _ : state) {
    Key k = static_cast<Key>(rng.next_below(kKeys)) * 2 + 1;
    benchmark::DoNotOptimize(tree.insert(k, 1));
    benchmark::DoNotOptimize(tree.remove(k));
  }
}
BENCHMARK(BM_SeqLockBTree_InsertRemove);

void BM_HybridBTree_Read(benchmark::State& state) {
  std::vector<Key> keys;
  std::vector<Value> vals;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    keys.push_back(static_cast<Key>(i * 2));
    vals.push_back(1);
  }
  hd::HybridBTree::Config cfg;
  cfg.nmp_levels = 3;
  cfg.partitions = 4;
  cfg.max_threads = 2;
  auto tree = std::make_unique<hd::HybridBTree>(cfg, keys, vals);
  hu::Xoshiro256 rng(6);
  Value v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree->read(static_cast<Key>(rng.next_below(kKeys)) * 2, v, 0));
  }
}
BENCHMARK(BM_HybridBTree_Read);

/// Consumes a leading --pool=arena|malloc argument (anywhere in argv) and
/// applies it to the runtime arena toggle; every structure constructed by the
/// benches above then captures the chosen mode. Exits with status 2 on a
/// malformed value, matching bench_common's hard-error policy.
int handle_pool_flag(int argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pool=", 7) == 0) {
      const char* v = argv[i] + 7;
      if (std::strcmp(v, "arena") == 0) {
        hybrids::mem::set_arena_enabled(true);
      } else if (std::strcmp(v, "malloc") == 0) {
        hybrids::mem::set_arena_enabled(false);
      } else {
        std::cerr << "error: --pool must be 'arena' or 'malloc', got '" << v
                  << "'\n";
        std::exit(2);
      }
      continue;  // strip: google-benchmark must not see it
    }
    argv[out++] = argv[i];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  argc = handle_pool_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
