// Figure 9 — B+ tree sensitivity: average memory reads per operation across
// the same workloads as Figure 8. The paper's observation: host-only's
// reads per op *decrease* with more split-heavy insertions (the targeted
// leaves stay cache-hot), while the fully-uniform variant removes that
// advantage; the hybrids stay flat and low.
#include <iostream>

#include "btree_sensitivity_common.hpp"
#include "hybrids/util/table.hpp"

namespace hb = hybrids::bench;

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  const std::uint64_t keys = opt.keys ? opt.keys : (opt.full ? 1ull << 24 : 1ull << 21);
  const std::uint32_t threads = opt.threads.empty() ? 8 : opt.threads.front();

  std::cout << "Figure 9: B+ tree sensitivity, average DRAM reads per "
               "operation, "
            << threads << " threads (" << keys << " keys)\n\n";

  auto points = hb::run_btree_sensitivity(opt, keys, threads);

  hybrids::util::Table table({"mix", "host-only", "hybrid-blocking",
                              "hybrid-nonblocking4"});
  for (const auto& p : points) {
    table.new_row()
        .add_cell(p.mix)
        .add_num(p.host_only.dram_reads_per_op, 2)
        .add_num(p.hybrid_blocking.dram_reads_per_op, 2)
        .add_num(p.hybrid_nonblocking.dram_reads_per_op, 2);
  }
  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);
  return 0;
}
