// Figure 6 — B+ tree baseline evaluation with YCSB-C (read-only, zipfian).
//
//   6a: operation throughput vs host threads for host-only, hybrid-blocking
//       and hybrid-nonblocking4;
//   6b: average DRAM reads per operation (paper: host-only ~9, hybrid ~3).
//
// Default scale: 2^21 keys loaded sorted at 50% node occupancy (paper: ~30M
// keys, 9 levels; pass --full for 2^24). The top levels are auto-sized to
// the LLC as in §3.4.
#include <iostream>

#include "bench_common.hpp"
#include "hybrids/sim/exp/experiment.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hs = hybrids::sim;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  const std::uint64_t keys = opt.keys ? opt.keys : (opt.full ? 1ull << 24 : 1ull << 21);
  if (opt.threads.empty()) opt.threads = {1, 2, 4, 8};

  const hs::BTreeKind kinds[] = {hs::BTreeKind::kHostOnly,
                                 hs::BTreeKind::kHybridBlocking,
                                 hs::BTreeKind::kHybridNonBlocking};

  std::cout << "Figure 6: B+ tree baseline evaluation, YCSB-C (" << keys
            << " keys, zipfian reads)\n\n";

  hybrids::util::Table tput({"threads", "host-only", "hybrid-blocking",
                             "hybrid-nonblocking4"});
  hybrids::util::Table reads({"threads", "host-only", "hybrid-blocking",
                              "hybrid-nonblocking4"});
  for (std::uint32_t t : opt.threads) {
    tput.new_row().add_int(t);
    reads.new_row().add_int(t);
    for (hs::BTreeKind kind : kinds) {
      hs::ExperimentConfig cfg;
      cfg.workload = hw::ycsb_c(keys);
      cfg.threads = t;
      cfg.ops_per_thread = opt.ops;
      cfg.warmup_per_thread = opt.warmup;
      hs::ExperimentResult r = hs::run_btree_experiment(kind, cfg);
      tput.add_num(r.mops, 3);
      reads.add_num(r.dram_reads_per_op, 1);
    }
  }

  std::cout << "(6a) operation throughput [Mops/s]\n";
  if (opt.csv) tput.print_csv(std::cout); else tput.print(std::cout);
  std::cout << "\n(6b) average DRAM reads per operation\n";
  if (opt.csv) reads.print_csv(std::cout); else reads.print(std::cout);
  return 0;
}
