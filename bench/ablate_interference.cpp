// Ablation — full-system cache interference.
//
// The paper evaluates in gem5 full-system mode, where instruction fetches,
// OS activity and the application's own record accesses compete with index
// nodes for the caches. Our simulator models this as `app_blocks_per_op`
// uniformly-random background touches per operation. This bench sweeps the
// interference level and shows the crossover: with an unrealistically quiet
// machine the conventional lock-free skiplist caches its zipfian hot paths
// and matches the hybrid; realistic interference erodes that and the hybrid
// pulls ahead (DRAM read columns report index traffic only).
#include <iostream>

#include "bench_common.hpp"
#include "hybrids/sim/exp/experiment.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hs = hybrids::sim;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  const std::uint64_t keys = opt.keys ? opt.keys : 1ull << 19;
  const std::uint32_t threads = opt.threads.empty() ? 8 : opt.threads.front();

  std::cout << "Ablation: full-system interference (skiplist, YCSB-C, "
            << threads << " threads, " << keys << " keys)\n\n";

  hybrids::util::Table table({"app blocks/op", "lock-free Mops/s",
                              "hybrid-blocking Mops/s", "hybrid/LF",
                              "LF idx reads/op", "hybrid idx reads/op"});
  for (std::uint32_t app : {0u, 2u, 4u, 8u, 16u}) {
    hs::ExperimentConfig cfg;
    cfg.workload = hw::ycsb_c(keys);
    cfg.threads = threads;
    cfg.ops_per_thread = opt.ops;
    cfg.warmup_per_thread = opt.warmup;
    cfg.app_blocks_per_op = app;
    auto lf = hs::run_skiplist_experiment(hs::SkiplistKind::kLockFree, cfg);
    auto hy = hs::run_skiplist_experiment(hs::SkiplistKind::kHybridBlocking, cfg);
    table.new_row()
        .add_int(app)
        .add_num(lf.mops, 3)
        .add_num(hy.mops, 3)
        .add_num(hy.mops / lf.mops, 2)
        .add_num(lf.dram_reads_per_op, 1)
        .add_num(hy.dram_reads_per_op, 1);
  }
  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);
  return 0;
}
