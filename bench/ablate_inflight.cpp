// Ablation — non-blocking NMP call depth (§3.5).
//
// Sweeps the number of in-flight NMP calls per host thread (the paper uses
// 4, "hybrid-nonblocking4") for both hybrid structures.
#include <iostream>

#include "bench_common.hpp"
#include "hybrids/sim/exp/experiment.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hs = hybrids::sim;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  const std::uint64_t sl_keys = opt.keys ? opt.keys : 1ull << 19;
  const std::uint64_t bt_keys = opt.keys ? opt.keys : 1ull << 20;
  const std::uint32_t threads = opt.threads.empty() ? 8 : opt.threads.front();

  std::cout << "Ablation: non-blocking in-flight depth, YCSB-C, " << threads
            << " threads\n\n";

  hybrids::util::Table table({"in-flight", "skiplist Mops/s", "B+ tree Mops/s"});
  for (std::uint32_t k : {1u, 2u, 4u, 8u}) {
    hs::ExperimentConfig scfg;
    scfg.workload = hw::ycsb_c(sl_keys);
    scfg.threads = threads;
    scfg.ops_per_thread = opt.ops;
    scfg.warmup_per_thread = opt.warmup;
    scfg.inflight = k;
    hs::ExperimentResult sr =
        hs::run_skiplist_experiment(hs::SkiplistKind::kHybridNonBlocking, scfg);

    hs::ExperimentConfig bcfg;
    bcfg.workload = hw::ycsb_c(bt_keys);
    bcfg.threads = threads;
    bcfg.ops_per_thread = opt.ops;
    bcfg.warmup_per_thread = opt.warmup;
    bcfg.inflight = k;
    hs::ExperimentResult br =
        hs::run_btree_experiment(hs::BTreeKind::kHybridNonBlocking, bcfg);

    table.new_row().add_int(k).add_num(sr.mops, 3).add_num(br.mops, 3);
  }
  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);
  return 0;
}
