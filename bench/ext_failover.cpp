// Extension bench — partition failover availability under YCSB-C.
//
// Runs the hybrid skiplist under a read-only YCSB-C stream while a killer
// thread forces one combiner failover every --kill-every-ms (round-robin
// over the partitions), exercising the fence/bounce/respawn machinery a real
// combiner death would take — trigger_failover drives the identical path, so
// this works in default (no -DHYBRIDS_FAULTS) builds too.
//
// Three timed runs of --duration-ms each:
//   baseline   no kills (availability reference)
//   respawn    FailoverPolicy::kRespawn, killer active
//   host-lease FailoverPolicy::kHostLease, killer active
//
// Reported per mode: throughput, read-latency p50/p99, kill count, mean
// detect latency (trigger -> degraded observed), mean and max time-to-recover
// (trigger -> degraded cleared under traffic), and the availability ratio
// vs. baseline. A per-interval ops/s + p99 timeline is printed for the killed
// runs so the dip-and-recover shape is visible; --stats-series additionally
// writes the full telemetry timeline (partition_failover, partition_recovered,
// failover_bounced_ops, served_total, ...) as CSV.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/nmp/partition_set.hpp"
#include "hybrids/telemetry/registry.hpp"
#include "hybrids/util/histogram.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hd = hybrids::ds;
namespace hn = hybrids::nmp;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;

namespace {

constexpr std::size_t kLlcBytes = 1 << 20;  // §3.3 sizing target
constexpr std::uint32_t kTimelineIntervalMs = 250;

using hybrids::bench::now_ns;

/// Per-thread latency sink. The histogram is single-writer; the mutex only
/// synchronizes the timeline sampler's periodic snapshot against the owner.
struct alignas(64) LatencySink {
  std::mutex mu;
  hybrids::util::Histogram hist;
  std::atomic<std::uint64_t> ops{0};
};

struct KillRecord {
  std::uint32_t partition = 0;
  double detect_ms = 0;   // trigger -> degraded(p) observed
  double recover_ms = 0;  // trigger -> degraded(p) cleared again
  bool recovered = false;
};

struct ModeResult {
  double mops = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::vector<KillRecord> kills;
  std::vector<std::string> timeline;
  std::uint64_t bounced = 0;
};

ModeResult run_mode(const hw::WorkloadSpec& spec, std::uint32_t threads,
                    hn::FailoverPolicy policy, bool kill,
                    std::uint32_t duration_ms, std::uint32_t kill_every_ms) {
  hw::KeyLayout layout(spec.initial_keys, spec.partitions);
  hd::HybridSkipList::Config cfg;
  int total = 1;
  while ((1ull << total) < spec.initial_keys) ++total;
  cfg.nmp_height = hd::HybridSkipList::nmp_height_for_cache(spec.initial_keys,
                                                            kLlcBytes);
  cfg.total_height = total > cfg.nmp_height ? total : cfg.nmp_height + 1;
  cfg.partitions = spec.partitions;
  cfg.partition_width = layout.partition_width();
  cfg.max_threads = threads;
  // Fast supervisor so each kill's outage window is milliseconds, keeping
  // many kill/recover cycles inside one timed run.
  cfg.watchdog_interval_ms = 2;
  cfg.watchdog_misses_to_degrade = 2;
  cfg.watchdog_misses_to_recover = 2;
  cfg.failover = policy;
  hd::HybridSkipList list(cfg);
  for (hybrids::Key k : layout.initial_key_set()) (void)list.insert(k, k, 0);
  hn::PartitionSet& set = list.partition_set();

  const std::uint64_t bounced_before =
      hybrids::telemetry::kEnabled
          ? hybrids::telemetry::snapshot().counter_total(
                hybrids::telemetry::names::kFailoverBouncedOps)
          : 0;

  std::atomic<bool> stop{false};
  std::vector<LatencySink> sinks(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      hw::OpStream stream(spec, t);
      LatencySink& sink = sinks[t];
      while (!stop.load(std::memory_order_relaxed)) {
        const hw::Op op = stream.next();
        hybrids::Value v = 0;
        const std::uint64_t t0 = now_ns();
        (void)list.read(op.key, v, t);
        const std::uint64_t t1 = now_ns();
        {
          std::lock_guard<std::mutex> lk(sink.mu);
          sink.hist.record(static_cast<double>(t1 - t0));
        }
        sink.ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  ModeResult res;
  std::thread killer;
  if (kill) {
    killer = std::thread([&] {
      std::uint32_t next = 0;
      // Let the workers settle before the first kill.
      std::this_thread::sleep_for(std::chrono::milliseconds(kill_every_ms));
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint32_t p = next++ % set.partitions();
        KillRecord rec;
        rec.partition = p;
        const std::uint64_t k0 = now_ns();
        set.trigger_failover(p);
        while (!set.degraded(p) && !stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        rec.detect_ms = static_cast<double>(now_ns() - k0) * 1e-6;
        // The worker read stream supplies the progressing intervals the
        // hysteresis gate needs; recovery is bounded by the next kill slot.
        while (set.degraded(p) && !stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        rec.recovered = !set.degraded(p);
        rec.recover_ms = static_cast<double>(now_ns() - k0) * 1e-6;
        res.kills.push_back(rec);
        const auto next_slot =
            std::chrono::milliseconds(kill_every_ms) -
            std::chrono::nanoseconds(now_ns() - k0);
        if (next_slot.count() > 0) std::this_thread::sleep_for(next_slot);
      }
    });
  }

  // Timeline sampler: per-interval ops/s and p99 across all threads.
  std::thread sampler([&] {
    std::uint64_t prev_ops = 0;
    hybrids::util::Histogram prev_hist;
    std::uint64_t prev_ns = now_ns();
    std::uint32_t elapsed = 0;
    while (!stop.load(std::memory_order_relaxed) && elapsed < duration_ms) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(kTimelineIntervalMs));
      // A slice that straddles the stop flag measures a draining run; skip it.
      if (stop.load(std::memory_order_relaxed)) break;
      elapsed += kTimelineIntervalMs;
      std::uint64_t ops = 0;
      hybrids::util::Histogram merged;
      for (LatencySink& s : sinks) {
        ops += s.ops.load(std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(s.mu);
        merged.merge(s.hist);
      }
      const std::uint64_t t = now_ns();
      const double secs = static_cast<double>(t - prev_ns) * 1e-9;
      const hybrids::util::Histogram delta = merged.delta_since(prev_hist);
      const double kops = static_cast<double>(ops - prev_ops) / secs / 1e3;
      char line[96];
      std::snprintf(line, sizeof(line), "  t=%5ums  %8.0f kops/s  p99 %6.1f us",
                    elapsed, kops, delta.quantile(0.99) / 1000.0);
      res.timeline.emplace_back(line);
      prev_ops = ops;
      prev_hist = merged;
      prev_ns = t;
    }
  });

  const std::uint64_t run0 = now_ns();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  sampler.join();
  if (killer.joinable()) killer.join();
  for (std::thread& w : workers) w.join();
  const double secs = static_cast<double>(now_ns() - run0) * 1e-9;

  std::uint64_t total_ops = 0;
  hybrids::util::Histogram merged;
  for (LatencySink& s : sinks) {
    total_ops += s.ops.load(std::memory_order_relaxed);
    merged.merge(s.hist);
  }
  res.mops = static_cast<double>(total_ops) / secs / 1e6;
  res.p50_us = merged.quantile(0.50) / 1000.0;
  res.p99_us = merged.quantile(0.99) / 1000.0;
  if (hybrids::telemetry::kEnabled) {
    res.bounced = hybrids::telemetry::snapshot().counter_total(
                      hybrids::telemetry::names::kFailoverBouncedOps) -
                  bounced_before;
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  const std::uint64_t keys = opt.keys ? opt.keys : 1ull << 16;
  const std::uint32_t threads = opt.threads.empty() ? 4 : opt.threads.front();

  const hw::WorkloadSpec spec = hw::ycsb_c(keys, /*partitions=*/8, /*seed=*/42);

  std::cout << "Extension: partition failover availability, YCSB-C (" << keys
            << " keys, " << threads << " threads, kill every "
            << opt.kill_every_ms << " ms, " << opt.duration_ms
            << " ms per mode)\n\n";

  struct Mode {
    const char* name;
    hn::FailoverPolicy policy;
    bool kill;
  };
  const Mode modes[] = {
      {"baseline", hn::FailoverPolicy::kRespawn, false},
      {"respawn", hn::FailoverPolicy::kRespawn, true},
      {"host-lease", hn::FailoverPolicy::kHostLease, true},
  };

  hybrids::util::Table table({"mode", "Mops/s", "p50 us", "p99 us", "avail",
                              "kills", "recovered", "detect ms", "recover ms",
                              "max rec ms", "bounced"});
  double baseline_mops = 0;
  for (const Mode& m : modes) {
    const ModeResult r = run_mode(spec, threads, m.policy, m.kill,
                                  opt.duration_ms, opt.kill_every_ms);
    if (!m.kill) baseline_mops = r.mops;
    double detect = 0, recover = 0, max_recover = 0;
    std::uint32_t recovered = 0;
    for (const KillRecord& k : r.kills) {
      detect += k.detect_ms;
      recover += k.recover_ms;
      if (k.recover_ms > max_recover) max_recover = k.recover_ms;
      recovered += k.recovered ? 1 : 0;
    }
    const double n = r.kills.empty() ? 1.0 : static_cast<double>(r.kills.size());
    table.new_row()
        .add_cell(m.name)
        .add_num(r.mops, 3)
        .add_num(r.p50_us, 1)
        .add_num(r.p99_us, 1)
        .add_num(baseline_mops > 0 ? r.mops / baseline_mops : 1.0, 3)
        .add_int(static_cast<int>(r.kills.size()))
        .add_int(static_cast<int>(recovered))
        .add_num(detect / n, 2)
        .add_num(recover / n, 2)
        .add_num(max_recover, 2)
        .add_int(static_cast<int>(r.bounced));
    if (m.kill && !r.timeline.empty()) {
      std::cout << m.name << " timeline:\n";
      for (const std::string& line : r.timeline) std::cout << line << "\n";
      std::cout << "\n";
    }
  }
  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);

  std::cout << "\n(Every kill fences the lane, bounces in-flight ops with "
               "failed_over, and\nre-integrates after the hysteresis gate; "
               "time-to-recover is trigger-to-healthy\nunder live traffic.)\n";
  return 0;
}
