// Figure 5 — skiplist baseline evaluation with YCSB-C (read-only, zipfian).
//
// Reproduces both panels:
//   5a: operation throughput vs number of host threads for lock-free,
//       NMP-based, hybrid-blocking and hybrid-nonblocking4;
//   5b: average DRAM reads per operation.
//
// Default scale: 2^20 keys (paper: 2^22; pass --full). The host-managed
// portion is auto-sized to the 1MB LLC as in §3.3.
#include <iostream>

#include "bench_common.hpp"
#include "hybrids/sim/exp/experiment.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hs = hybrids::sim;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  const std::uint64_t keys = opt.keys ? opt.keys : (opt.full ? 1ull << 22 : 1ull << 20);
  if (opt.threads.empty()) opt.threads = {1, 2, 4, 8};

  const hs::SkiplistKind kinds[] = {
      hs::SkiplistKind::kLockFree, hs::SkiplistKind::kNmp,
      hs::SkiplistKind::kHybridBlocking, hs::SkiplistKind::kHybridNonBlocking};

  std::cout << "Figure 5: skiplist baseline evaluation, YCSB-C (" << keys
            << " keys, zipfian reads)\n\n";

  hybrids::util::Table tput({"threads", "lock-free", "NMP-based",
                             "hybrid-blocking", "hybrid-nonblocking4"});
  hybrids::util::Table reads({"threads", "lock-free", "NMP-based",
                              "hybrid-blocking", "hybrid-nonblocking4"});
  for (std::uint32_t t : opt.threads) {
    tput.new_row().add_int(t);
    reads.new_row().add_int(t);
    for (hs::SkiplistKind kind : kinds) {
      hs::ExperimentConfig cfg;
      cfg.workload = hw::ycsb_c(keys);
      cfg.threads = t;
      cfg.ops_per_thread = opt.ops;
      cfg.warmup_per_thread = opt.warmup;
      hs::ExperimentResult r = hs::run_skiplist_experiment(kind, cfg);
      tput.add_num(r.mops, 3);
      reads.add_num(r.dram_reads_per_op, 1);
    }
  }

  std::cout << "(5a) operation throughput [Mops/s]\n";
  if (opt.csv) tput.print_csv(std::cout); else tput.print(std::cout);
  std::cout << "\n(5b) average DRAM reads per operation\n";
  if (opt.csv) reads.print_csv(std::cout); else reads.print(std::cout);
  return 0;
}
