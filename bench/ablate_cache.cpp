// Ablation — host-side hot-key value/shortcut cache (src/hybrids/cache/).
//
// Sweeps the cache byte budget (--budgets) against zipfian skew (--thetas)
// on the hybrid skiplist and hybrid B+ tree under 100% point reads over
// preloaded contents. Budget 0 is the cache-off baseline — the exact read
// paths every figure bench runs — and each budgeted arm serves hot keys
// from the value tier (no host descent, no partition round-trip) or the
// shortcut tier (descent skipped, offload posted directly).
//
// Default budgets are 1/64, 1/16, and 1/4 of the KEYSPACE FOOTPRINT
// (initial_keys x 8 bytes: 4-byte key + 4-byte value, the paper's record
// shape), so the headline arm caches far fewer entries than there are keys
// and earns its throughput purely from skew. Expected shape: at low theta
// the cache is ballast (hit rate ~budget/keys, speedup ~1x); as theta
// rises, the hit rate tracks the zipf head mass and the budgeted arms pull
// away — at theta 0.99 the 1/16-footprint arm must clear >= 1.3x on the
// skiplist (checked in EXPERIMENTS.md, not enforced here).
//
// Contents are static during the timed runs, so per-theta checksums must
// match EXACTLY across budgets: a cache serving a wrong/stale value exits 1
// rather than printing a fast number.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "hybrids/cache/hot_cache.hpp"
#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/workload.hpp"
#include "hybrids/workload/zipf.hpp"

namespace hd = hybrids::ds;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;
namespace hc = hybrids::cache;

namespace {

constexpr std::size_t kLlcBytes = 1 << 20;  // §3.3 / §3.4 sizing target

using hybrids::bench::now_ns;

using hybrids::bench::scramble;

struct RunResult {
  double mops = 0;
  std::uint64_t checksum = 0;  // folded read results: cross-checks arms
  std::uint64_t hits = 0;      // value + shortcut hits during the timed run
  std::uint64_t lookups = 0;   // hits + misses (value-tier lookups)
};

/// One timed multi-threaded 100%-read run at the given theta. The hot-key
/// cache (if any) belongs to `ds`; warmup reads fill it before timing.
template <typename DS>
RunResult run_reads(DS& ds, const hw::KeyLayout& layout, double theta,
                    std::uint32_t threads, std::uint64_t warmup_per_thread,
                    std::uint64_t ops_per_thread) {
  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::uint32_t> ready{0};
  std::uint64_t t0 = 0;
  hc::HotCache::Stats before;
  if (ds.hot_cache() != nullptr) before = ds.hot_cache()->stats();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      hybrids::util::Xoshiro256 rng(0xCACE + t);
      hw::ZipfianGenerator zipf(layout.initial_keys(), theta);
      auto next_key = [&] {
        const std::uint64_t rank = zipf.next(rng);
        return layout.key_at(scramble(rank) % layout.initial_keys());
      };
      for (std::uint64_t i = 0; i < warmup_per_thread; ++i) {
        hybrids::Value v = 0;
        (void)ds.read(next_key(), v, t);
      }
      ready.fetch_add(1);
      while (ready.load() < threads) std::this_thread::yield();
      if (t == 0) t0 = now_ns();
      std::uint64_t my_sum = 0;
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
        hybrids::Value v = 0;
        if (ds.read(next_key(), v, t)) my_sum += v;
      }
      checksum.fetch_add(my_sum, std::memory_order_relaxed);
    });
  }
  for (std::thread& w : workers) w.join();
  const double secs = static_cast<double>(now_ns() - t0) * 1e-9;
  RunResult r;
  r.mops = static_cast<double>(threads) * static_cast<double>(ops_per_thread) /
           secs / 1e6;
  r.checksum = checksum.load();
  if (ds.hot_cache() != nullptr) {
    const hc::HotCache::Stats after = ds.hot_cache()->stats();
    r.hits = (after.value_hits - before.value_hits) +
             (after.shortcut_hits - before.shortcut_hits);
    r.lookups = r.hits + (after.misses - before.misses);
  }
  return r;
}

template <typename DS>
RunResult best_of(DS& ds, const hw::KeyLayout& layout, double theta,
                  std::uint32_t threads, std::uint64_t warmup,
                  std::uint64_t ops, int reps) {
  RunResult best;
  for (int r = 0; r < reps; ++r) {
    const RunResult run = run_reads(ds, layout, theta, threads, warmup, ops);
    if (run.mops > best.mops) best.mops = run.mops;
    best.checksum = run.checksum;
    best.hits += run.hits;
    best.lookups += run.lookups;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);

  if (!hc::kCacheCompiledIn) {
    std::cerr << "note: built with HYBRIDS_NO_CACHE — every arm runs "
                 "cache-off; budgeted rows measure the same baseline\n";
  }

  const std::uint64_t keys =
      opt.keys ? opt.keys : (opt.full ? 1ull << 20 : 1ull << 16);
  const std::uint32_t threads = opt.threads.empty() ? 4 : opt.threads.front();
  const int reps = 3;
  const std::uint64_t footprint =
      keys * (sizeof(hybrids::Key) + sizeof(hybrids::Value));
  std::vector<std::uint64_t> budgets = opt.budgets;
  if (budgets.empty()) {
    budgets = {footprint / 64, footprint / 16, footprint / 4};
  }

  const std::uint32_t partitions = 8;
  hw::KeyLayout layout(keys, partitions);

  std::cout << "Ablation: hot-key cache budget x zipf theta (" << keys
            << " keys, footprint " << footprint / 1024 << " KiB, " << threads
            << " threads, " << opt.ops << " ops/thread, best of " << reps
            << ")\n\n";

  hybrids::util::Table table({"theta", "budget", "budget/footprint",
                              "sl Mops/s", "sl speedup", "sl hit rate",
                              "bt Mops/s", "bt speedup", "bt hit rate"});
  double headline = 0;  // theta-0.99 skiplist speedup at budget <= 1/16
  bool checksum_bug = false;

  for (const double theta : opt.thetas) {
    RunResult sl_base, bt_base;
    for (std::size_t bi = 0; bi < budgets.size() + 1; ++bi) {
      const std::uint64_t budget = bi == 0 ? 0 : budgets[bi - 1];

      RunResult sl;
      {
        hd::HybridSkipList::Config cfg;
        int total = 1;
        while ((1ull << total) < keys) ++total;
        cfg.nmp_height =
            hd::HybridSkipList::nmp_height_for_cache(keys, kLlcBytes);
        cfg.total_height = total > cfg.nmp_height ? total : cfg.nmp_height + 1;
        cfg.partitions = partitions;
        cfg.partition_width = layout.partition_width();
        cfg.max_threads = threads;
        cfg.cache_budget_bytes = budget;
        hd::HybridSkipList list(cfg);
        for (hybrids::Key k : layout.initial_key_set()) {
          (void)list.insert(k, k, 0);
        }
        sl = best_of(list, layout, theta, threads, opt.warmup, opt.ops, reps);
      }

      RunResult bt;
      {
        hd::HybridBTree::Config cfg;
        cfg.nmp_levels = hd::HybridBTree::nmp_levels_for_cache(keys, kLlcBytes);
        cfg.partitions = partitions;
        cfg.max_threads = threads;
        cfg.cache_budget_bytes = budget;
        const std::vector<hybrids::Key> ks = layout.initial_key_set();
        const std::vector<hybrids::Value> vs(ks.begin(), ks.end());
        hd::HybridBTree tree(cfg, ks, vs);
        bt = best_of(tree, layout, theta, threads, opt.warmup, opt.ops, reps);
      }

      if (bi == 0) {
        sl_base = sl;
        bt_base = bt;
      } else {
        // Static contents: a budgeted arm returning different read results
        // than cache-off means the cache served a wrong value.
        if (sl.checksum != sl_base.checksum || bt.checksum != bt_base.checksum) {
          std::cerr << "BUG: checksum differs from cache-off at theta " << theta
                    << " budget " << budget << " (skiplist "
                    << sl_base.checksum << " vs " << sl.checksum << ", btree "
                    << bt_base.checksum << " vs " << bt.checksum << ")\n";
          checksum_bug = true;
        }
        if (theta >= 0.99 && budget * 16 <= footprint) {
          const double sp = sl_base.mops > 0 ? sl.mops / sl_base.mops : 0;
          if (sp > headline) headline = sp;
        }
      }

      table.new_row()
          .add_cell(std::to_string(theta).substr(0, 4))
          .add_cell(budget == 0 ? "off" : std::to_string(budget / 1024) + " KiB")
          .add_cell(budget == 0
                        ? "-"
                        : "1/" + std::to_string(footprint / budget))
          .add_num(sl.mops, 3)
          .add_num(sl_base.mops > 0 ? sl.mops / sl_base.mops : 1.0, 3)
          .add_num(sl.lookups > 0 ? static_cast<double>(sl.hits) /
                                        static_cast<double>(sl.lookups)
                                  : 0.0,
                   3)
          .add_num(bt.mops, 3)
          .add_num(bt_base.mops > 0 ? bt.mops / bt_base.mops : 1.0, 3)
          .add_num(bt.lookups > 0 ? static_cast<double>(bt.hits) /
                                        static_cast<double>(bt.lookups)
                                  : 0.0,
                   3);
    }
  }

  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);
  if (checksum_bug) return 1;

  if (headline > 0) {
    std::cout << "\ntheta-0.99 skiplist speedup at budget <= 1/16 footprint: "
              << headline << "x\n";
  }
  std::cout << "\n(The value tier serves hot reads without touching the "
               "structure; the shortcut\ntier posts warm descents straight "
               "to the owning partition. Both live under one\nbyte budget — "
               "see docs/EXPERIMENTS.md#ablate_cache.)\n";
  return 0;
}
