// Table 2 — delay components of offloading one operation to an NMP core,
// measured on an otherwise idle simulated machine (same setting as the
// paper's B+ tree baseline). The paper's observation: the communication
// delays alone sum to roughly 1-2 LLC miss delays, which is why blocking
// hybrid structures gain little when an operation touches only a few
// DRAM blocks — and why non-blocking NMP calls matter (§3.5).
#include <iostream>

#include "bench_common.hpp"
#include "hybrids/sim/exp/experiment.hpp"
#include "hybrids/util/table.hpp"

namespace hs = hybrids::sim;
namespace hb = hybrids::bench;

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  hs::MachineConfig machine;
  hs::OffloadDelays d = hs::measure_offload_delays(machine);

  std::cout << "Table 2: NMP operation offload delay components\n\n";
  hybrids::util::Table table({"component", "delay [ns]", "[cycles @2GHz]"});
  auto row = [&](const char* name, hs::Tick t) {
    table.new_row().add_cell(name).add_num(hs::ticks_to_ns(t), 2).add_num(
        hs::ticks_to_ns(t) * 2.0, 1);
  };
  row("host posts request (MMIO write)", d.post);
  row("NMP core notices request", d.nmp_notice);
  row("NMP core processes (no-op)", d.nmp_process);
  row("host notices completion (poll)", d.host_notice);
  row("host reads response (MMIO read)", d.response);
  row("total offload round trip", d.total);
  row("one LLC miss (for comparison)", d.llc_miss);
  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);

  std::cout << "\nround trip = "
            << static_cast<double>(d.total) / static_cast<double>(d.llc_miss)
            << "x one LLC miss delay (paper: comparable to 1-2 LLC misses)\n";
  return 0;
}
