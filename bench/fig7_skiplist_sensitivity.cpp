// Figure 7 — skiplist sensitivity to concurrent modifications.
//
// Read-insert-remove mixes 100-0-0 / 90-5-5 / 70-15-15 / 50-25-25 with
// uniform keys at 8 host threads; throughput normalized to lock-free at
// 100-0-0. The paper's claims: all implementations slow down with more
// modifications, but the hybrids degrade *less* (lock-free drops to 80%,
// hybrid-blocking to 90%, hybrid-nonblocking4 to 93% at 50-25-25).
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "hybrids/sim/exp/experiment.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hs = hybrids::sim;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  const std::uint64_t keys = opt.keys ? opt.keys : (opt.full ? 1ull << 22 : 1ull << 20);
  const std::uint32_t threads = opt.threads.empty() ? 8 : opt.threads.front();

  struct Mix {
    int read, insert, remove;
  };
  const std::array<Mix, 4> mixes = {{{100, 0, 0}, {90, 5, 5}, {70, 15, 15}, {50, 25, 25}}};
  const hs::SkiplistKind kinds[] = {hs::SkiplistKind::kLockFree,
                                    hs::SkiplistKind::kNmp,
                                    hs::SkiplistKind::kHybridBlocking,
                                    hs::SkiplistKind::kHybridNonBlocking};

  std::cout << "Figure 7: skiplist sensitivity, uniform keys, " << threads
            << " threads (" << keys << " keys)\n"
            << "normalized operation throughput (lock-free 100-0-0 = 1.0)\n\n";

  double baseline = 0.0;
  hybrids::util::Table table({"mix", "lock-free", "NMP-based", "hybrid-blocking",
                              "hybrid-nonblocking4"});
  hybrids::util::Table raw({"mix", "lock-free", "NMP-based", "hybrid-blocking",
                            "hybrid-nonblocking4"});
  for (const Mix& mix : mixes) {
    hw::WorkloadSpec wl = hw::sensitivity(keys, mix.read, mix.insert, mix.remove);
    table.new_row().add_cell(wl.mix.name());
    raw.new_row().add_cell(wl.mix.name());
    for (hs::SkiplistKind kind : kinds) {
      hs::ExperimentConfig cfg;
      cfg.workload = wl;
      cfg.threads = threads;
      cfg.ops_per_thread = opt.ops;
      cfg.warmup_per_thread = opt.warmup;
      hs::ExperimentResult r = hs::run_skiplist_experiment(kind, cfg);
      if (baseline == 0.0) baseline = r.mops;  // lock-free @ 100-0-0
      table.add_num(r.mops / baseline, 2);
      raw.add_num(r.mops, 3);
    }
  }

  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);
  std::cout << "\nraw throughput [Mops/s]\n";
  if (opt.csv) raw.print_csv(std::cout); else raw.print(std::cout);
  return 0;
}
