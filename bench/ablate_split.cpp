// Ablation — host-NMP split point (§3.3's sizing rule).
//
// Sweeps the number of NMP-managed skiplist levels around the LLC-sized
// split and reports throughput + DRAM reads. The paper's rule picks the
// split so the host portion just fits the LLC; too few host levels waste
// cache (more NMP serialization), too many overflow it (host DRAM misses).
#include <iostream>

#include "bench_common.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/sim/exp/experiment.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hs = hybrids::sim;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  const std::uint64_t keys = opt.keys ? opt.keys : 1ull << 19;
  const std::uint32_t threads = opt.threads.empty() ? 8 : opt.threads.front();

  int total = 1;
  while ((1ull << total) < keys) ++total;
  hs::MachineConfig machine;
  const int auto_nmp = hybrids::ds::HybridSkipList::nmp_height_for_cache(
      keys, machine.l2_bytes, machine.block_bytes);

  std::cout << "Ablation: hybrid skiplist split point (" << keys << " keys, "
            << total << " levels; LLC-sized rule picks " << auto_nmp
            << " NMP levels)\n\n";

  hybrids::util::Table table(
      {"nmp-levels", "host-levels", "Mops/s", "DRAM reads/op", "host reads/op"});
  for (int nmp = auto_nmp - 3; nmp <= auto_nmp + 3; ++nmp) {
    if (nmp < 1 || nmp >= total) continue;
    hs::ExperimentConfig cfg;
    cfg.workload = hw::ycsb_c(keys);
    cfg.threads = threads;
    cfg.ops_per_thread = opt.ops;
    cfg.warmup_per_thread = opt.warmup;
    cfg.total_height = total;
    cfg.nmp_height = nmp;
    hs::ExperimentResult r =
        hs::run_skiplist_experiment(hs::SkiplistKind::kHybridBlocking, cfg);
    table.new_row()
        .add_int(nmp)
        .add_int(total - nmp)
        .add_num(r.mops, 3)
        .add_num(r.dram_reads_per_op, 1)
        .add_num(r.host_dram_reads_per_op, 1);
  }
  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);
  return 0;
}
