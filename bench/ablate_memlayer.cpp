// Ablation — cache-conscious memory layer (arenas/pools × software prefetch).
//
// Sweeps the two runtime toggles in src/hybrids/mem/memlayer.hpp:
//
//   arena    off/on — partition arenas + host node pools vs plain aligned
//            operator new/delete. Consulted once per structure construction,
//            so every arm builds its structures fresh.
//   prefetch off/on — the __builtin_prefetch hints on skiplist descents, B+
//            inner searches, scan continuations, and the combiner's slot
//            scan. Consulted per site, but toggled per arm anyway.
//
// Two modes, both printed on every run:
//
//  A. Structure-level sweep (deterministic, single-threaded): the traversal
//     paths the memory layer actually touches, measured in isolation —
//     SeqSkipList (partition arena + descent/scan prefetch) under zipfian
//     point reads and range scans, and SeqLockBTree (host node pool +
//     whole-node prefetch) under zipfian reads. Every arm replays identical
//     pre-generated key streams against identically-loaded structures;
//     timing is min-of-reps ns/op and checksums cross-check the arms. This
//     is the controlled measurement: no publication protocol, no scheduler.
//
//  B. End-to-end check (YCSB-C: 100% zipfian reads; YCSB-E: 95% stitched
//     scans / 5% inserts): the full hybrid stack — host threads, publication
//     slots, combiners — with best-of-reps wall-clock Mops/s. This includes
//     every runtime overhead; on machines with fewer cores than
//     host+combiner threads it is dominated by time-slicing, so mode A is
//     the number to read for the memory layer itself.
//
// The off/off arm is the baseline; tables print every arm's speedup against
// it, and the summary lines at the bottom name the arena+prefetch speedup —
// the numbers EXPERIMENTS.md records.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/ds/lockfree_skiplist.hpp"
#include "hybrids/ds/seq_skiplist.hpp"
#include "hybrids/ds/seqlock_btree.hpp"
#include "hybrids/mem/memlayer.hpp"
#include "hybrids/util/rng.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/ycsb.hpp"
#include "hybrids/workload/zipf.hpp"

namespace hd = hybrids::ds;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;
namespace hm = hybrids::mem;

namespace {

constexpr std::size_t kLlcBytes = 1 << 20;  // §3.3 / §3.4 sizing target

using hybrids::bench::now_ns;

struct Arm {
  bool arena;
  bool prefetch;
};

constexpr Arm kArms[] = {
    {false, false}, {true, false}, {false, true}, {true, true}};

const char* onoff(bool b) { return b ? "on" : "off"; }

// The timed op-mix harness and RunResult now live in bench_common.hpp
// (hb::run_op_mix), shared with the other structure ablations.
using hybrids::bench::RunResult;

struct ArmResult {
  RunResult ycsb_c;
  RunResult ycsb_e;
};

template <typename DS>
ArmResult measure(DS& ds, const hw::WorkloadSpec& spec_c,
                  const hw::WorkloadSpec& spec_e, std::uint32_t threads,
                  std::uint64_t warmup, std::uint64_t ops, int reps) {
  ArmResult best;
  for (int r = 0; r < reps; ++r) {
    const RunResult c = hb::run_op_mix(ds, spec_c, threads, warmup, ops);
    if (c.mops > best.ycsb_c.mops) best.ycsb_c = c;
    // YCSB-C is read-only, so every rep replays the identical stream against
    // identical contents: checksums must agree exactly across reps and arms.
    if (r > 0 && c.checksum != best.ycsb_c.checksum) {
      std::cerr << "BUG: YCSB-C checksum varies across reps\n";
      std::exit(1);
    }
  }
  for (int r = 0; r < reps; ++r) {
    // YCSB-E inserts mutate the structure, so only throughput is kept; every
    // arm runs the same number of E reps, keeping the arms comparable.
    const RunResult e = hb::run_op_mix(ds, spec_e, threads, warmup, ops);
    if (e.mops > best.ycsb_e.mops) best.ycsb_e = e;
  }
  return best;
}

ArmResult run_skiplist_arm(const Arm& arm, const hw::WorkloadSpec& spec_c,
                           const hw::WorkloadSpec& spec_e,
                           std::uint32_t threads, std::uint64_t warmup,
                           std::uint64_t ops, int reps) {
  hm::set_arena_enabled(arm.arena);  // captured by the ctors below
  hm::set_prefetch_enabled(arm.prefetch);
  hw::KeyLayout layout(spec_c.initial_keys, spec_c.partitions);
  hd::HybridSkipList::Config cfg;
  int total = 1;
  while ((1ull << total) < spec_c.initial_keys) ++total;
  cfg.nmp_height = hd::HybridSkipList::nmp_height_for_cache(
      spec_c.initial_keys, kLlcBytes);
  cfg.total_height = total > cfg.nmp_height ? total : cfg.nmp_height + 1;
  cfg.partitions = spec_c.partitions;
  cfg.partition_width = layout.partition_width();
  cfg.max_threads = threads;
  hd::HybridSkipList list(cfg);
  for (hybrids::Key k : layout.initial_key_set()) (void)list.insert(k, k, 0);
  const ArmResult r = measure(list, spec_c, spec_e, threads, warmup, ops, reps);
  hm::set_arena_enabled(true);
  hm::set_prefetch_enabled(true);
  return r;
}

ArmResult run_btree_arm(const Arm& arm, const hw::WorkloadSpec& spec_c,
                        const hw::WorkloadSpec& spec_e, std::uint32_t threads,
                        std::uint64_t warmup, std::uint64_t ops, int reps) {
  hm::set_arena_enabled(arm.arena);
  hm::set_prefetch_enabled(arm.prefetch);
  hw::KeyLayout layout(spec_c.initial_keys, spec_c.partitions);
  hd::HybridBTree::Config cfg;
  cfg.nmp_levels = hd::HybridBTree::nmp_levels_for_cache(spec_c.initial_keys,
                                                         kLlcBytes);
  cfg.partitions = spec_c.partitions;
  cfg.max_threads = threads;
  const std::vector<hybrids::Key> keys = layout.initial_key_set();
  const std::vector<hybrids::Value> vals(keys.begin(), keys.end());
  hd::HybridBTree tree(cfg, keys, vals);
  const ArmResult r = measure(tree, spec_c, spec_e, threads, warmup, ops, reps);
  hm::set_arena_enabled(true);
  hm::set_prefetch_enabled(true);
  return r;
}

// ---------------------------------------------------------------------------
// Mode A: structure-level sweep

struct SweepResult {
  double ns_per_op = 0;
  std::uint64_t checksum = 0;
};

/// min-of-reps timing of `body(i)` over `count` iterations; the fold of the
/// last rep is the checksum (reps are read-only, so every rep folds alike).
template <typename Body>
SweepResult time_sweep(std::uint64_t count, int reps, Body body) {
  SweepResult r;
  std::uint64_t best = ~0ull;
  for (int rep = 0; rep < reps; ++rep) {
    std::uint64_t sum = 0;
    const std::uint64_t t0 = now_ns();
    for (std::uint64_t i = 0; i < count; ++i) sum += body(i);
    best = std::min(best, now_ns() - t0);
    r.checksum = sum;
  }
  r.ns_per_op = static_cast<double>(best) / static_cast<double>(count);
  return r;
}

struct ModeAArm {
  SweepResult sl_read;
  SweepResult sl_scan;
  SweepResult bt_read;
};

struct ModeATargets {
  std::unique_ptr<hd::SeqSkipList> list;
  std::unique_ptr<hd::SeqLockBTree> tree;
};

/// Builds the two structure-level targets under the given arena mode. The
/// node sequence (keys, heights) is deterministic and identical across
/// modes, so only placement differs between builds.
ModeATargets build_mode_a(bool arena, std::uint64_t preload) {
  hm::set_arena_enabled(arena);
  int height = 1;
  while ((1ull << height) < preload) ++height;
  ModeATargets t;
  // SeqSkipList: loaded with every other key (odd).
  t.list = std::make_unique<hd::SeqSkipList>(height);
  {
    hybrids::util::Xoshiro256 rng(7);
    for (std::uint64_t k = 0; k < preload; ++k) {
      const auto key = static_cast<hybrids::Key>(2 * k + 1);
      (void)t.list->insert(key, key, hd::random_height(rng, height), nullptr,
                           t.list->head());
    }
  }
  // SeqLockBTree: bulk-built from the same sorted key set.
  t.tree = std::make_unique<hd::SeqLockBTree>();
  {
    const std::vector<hybrids::Key> keys = hb::odd_preload_keys(preload);
    const std::vector<hybrids::Value> vals(keys.begin(), keys.end());
    t.tree->build_from_sorted(keys, vals);
  }
  hm::set_arena_enabled(true);
  return t;
}

/// Runs all four mode-A arms with their reps interleaved (rep-major, arm
/// minor), so machine-load drift hits every arm equally; per arm the min is
/// kept. `probes` / `scan_starts` are shared so every arm replays
/// byte-identical streams. out[arena][prefetch].
void run_mode_a(const ModeATargets targets[2],
                const std::vector<hybrids::Key>& probes,
                const std::vector<hybrids::Key>& scan_starts,
                std::uint32_t scan_len, int reps, ModeAArm out[2][2]) {
  std::vector<hybrids::ScanEntry> buf(scan_len);
  for (int rep = 0; rep < reps; ++rep) {
    for (int ar = 0; ar < 2; ++ar) {
      hd::SeqSkipList& list = *targets[ar].list;
      hd::SeqLockBTree& tree = *targets[ar].tree;
      for (int pf = 0; pf < 2; ++pf) {
        hm::set_prefetch_enabled(pf == 1);
        ModeAArm& o = out[ar][pf];
        const SweepResult r1 =
            time_sweep(probes.size(), 1, [&](std::uint64_t i) {
              const hd::SeqSkipList::Node* n =
                  list.read(probes[i], list.head());
              return n != nullptr ? static_cast<std::uint64_t>(n->value)
                                  : 0ull;
            });
        const SweepResult r2 =
            time_sweep(scan_starts.size(), 1, [&](std::uint64_t i) {
              hybrids::Key next = 0;
              bool more = false;
              const std::uint32_t n =
                  list.scan(scan_starts[i], scan_len, list.head(), buf.data(),
                            &next, &more);
              std::uint64_t sum = n;
              for (std::uint32_t j = 0; j < n; ++j) sum += buf[j].key;
              return sum;
            });
        const SweepResult r3 =
            time_sweep(probes.size(), 1, [&](std::uint64_t i) {
              hybrids::Value v = 0;
              return tree.read(probes[i], v) ? static_cast<std::uint64_t>(v)
                                             : 0ull;
            });
        auto keep = [rep](SweepResult& best, const SweepResult& r) {
          if (rep == 0 || r.ns_per_op < best.ns_per_op) {
            best.ns_per_op = r.ns_per_op;
          }
          best.checksum = r.checksum;
        };
        keep(o.sl_read, r1);
        keep(o.sl_scan, r2);
        keep(o.bt_read, r3);
      }
    }
  }
  hm::set_prefetch_enabled(true);
}

}  // namespace

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);

  if (!hm::kArenaCompiledIn) {
    std::cerr << "note: built with HYBRIDS_NO_ARENA — the arena=on arms "
                 "degenerate to passthrough\n";
  }
  if (!hm::kPrefetchCompiledIn) {
    std::cerr << "note: built with HYBRIDS_NO_PREFETCH — the prefetch=on "
                 "arms are no-ops\n";
  }

  const std::uint64_t keys =
      opt.keys ? opt.keys : (opt.full ? 1ull << 20 : 1ull << 18);
  const std::uint32_t threads = opt.threads.empty() ? 8 : opt.threads.front();
  const int reps = 3;

  const hw::WorkloadSpec spec_c = hw::ycsb_c(keys);
  const hw::WorkloadSpec spec_e = hw::ycsb_e(keys, /*partitions=*/8,
                                             /*seed=*/42, opt.scan_max);

  // ----- Mode A: structure-level sweep ------------------------------------
  const std::uint64_t preload = keys / 2;  // every other key loaded
  const std::uint64_t sweep_ops =
      std::max<std::uint64_t>(opt.ops * 8, 1ull << 17);
  const std::uint64_t sweep_scans = std::max<std::uint64_t>(sweep_ops / 64, 64);
  const int sweep_reps = 5;
  const std::vector<hybrids::Key> probes =
      hb::zipfian_probe_keys(sweep_ops, 2 * preload, /*seed=*/0x5EED);
  const std::vector<hybrids::Key> scan_starts =
      hb::zipfian_probe_keys(sweep_scans, 2 * preload, /*seed=*/0x5CA4);

  std::cout << "Ablation: memory layer (arena x prefetch)\n\nMode A: "
               "structure-level sweep (" << preload << " loaded keys, "
            << sweep_ops << " zipfian reads / " << sweep_scans
            << " scans of " << opt.scan_max << ", min of " << sweep_reps
            << " reps, single-threaded)\n\n";

  ModeATargets targets[2] = {build_mode_a(false, preload),
                             build_mode_a(true, preload)};
  ModeAArm a[2][2];  // [arena][prefetch]
  run_mode_a(targets, probes, scan_starts, opt.scan_max, sweep_reps, a);
  for (int ar = 0; ar < 2; ++ar) {
    for (int pf = 0; pf < 2; ++pf) {
      if (a[ar][pf].sl_read.checksum != a[0][0].sl_read.checksum ||
          a[ar][pf].sl_scan.checksum != a[0][0].sl_scan.checksum ||
          a[ar][pf].bt_read.checksum != a[0][0].bt_read.checksum) {
        std::cerr << "BUG: mode A checksum differs between arms (arena="
                  << onoff(ar) << ", prefetch=" << onoff(pf) << ")\n";
        return 1;
      }
    }
  }
  hybrids::util::Table ta({"target", "arena", "prefetch", "ns/op", "speedup"});
  struct Row {
    const char* name;
    SweepResult ModeAArm::* field;
  };
  const Row rows[] = {{"seq-skiplist read", &ModeAArm::sl_read},
                      {"seq-skiplist scan", &ModeAArm::sl_scan},
                      {"seqlock-btree read", &ModeAArm::bt_read}};
  for (const Row& row : rows) {
    const double base = (a[0][0].*row.field).ns_per_op;
    for (int ar = 0; ar < 2; ++ar) {
      for (int pf = 0; pf < 2; ++pf) {
        const double ns = (a[ar][pf].*row.field).ns_per_op;
        ta.new_row()
            .add_cell(row.name)
            .add_cell(onoff(ar))
            .add_cell(onoff(pf))
            .add_num(ns, 1)
            .add_num(base / ns, 3);
      }
    }
  }
  if (opt.csv) ta.print_csv(std::cout); else ta.print(std::cout);
  std::cout << "\n";
  for (const Row& row : rows) {
    std::cout << row.name << " arena+prefetch speedup: "
              << (a[0][0].*row.field).ns_per_op /
                     (a[1][1].*row.field).ns_per_op
              << "x\n";
  }

  // ----- Mode B: end-to-end hybrids ---------------------------------------
  std::cout << "\nMode B: end-to-end hybrids, " << keys << " keys, "
            << threads << " threads, YCSB-C (zipfian reads) and YCSB-E "
               "(scans), best of " << reps << "\n\n";

  hybrids::util::Table table({"structure", "arena", "prefetch", "ycsb-c Mops/s",
                              "c speedup", "ycsb-e Mops/s", "e speedup"});
  double speedup_c[2] = {0, 0};  // arena+prefetch vs baseline, per structure
  double speedup_e[2] = {0, 0};
  const char* names[2] = {"hybrid-skiplist", "hybrid-btree"};
  for (int s = 0; s < 2; ++s) {
    ArmResult base;
    std::uint64_t base_checksum_c = 0;
    for (const Arm& arm : kArms) {
      const ArmResult r =
          s == 0 ? run_skiplist_arm(arm, spec_c, spec_e, threads, opt.warmup,
                                    opt.ops, reps)
                 : run_btree_arm(arm, spec_c, spec_e, threads, opt.warmup,
                                 opt.ops, reps);
      if (!arm.arena && !arm.prefetch) {
        base = r;
        base_checksum_c = r.ycsb_c.checksum;
      } else if (r.ycsb_c.checksum != base_checksum_c) {
        // Identical streams over identical preloads: the toggles must never
        // change what the reads return.
        std::cerr << "BUG: YCSB-C checksum differs between arms ("
                  << names[s] << ", arena=" << onoff(arm.arena)
                  << ", prefetch=" << onoff(arm.prefetch) << ")\n";
        return 1;
      }
      const double sc = r.ycsb_c.mops / base.ycsb_c.mops;
      const double se = r.ycsb_e.mops / base.ycsb_e.mops;
      if (arm.arena && arm.prefetch) {
        speedup_c[s] = sc;
        speedup_e[s] = se;
      }
      table.new_row()
          .add_cell(names[s])
          .add_cell(onoff(arm.arena))
          .add_cell(onoff(arm.prefetch))
          .add_num(r.ycsb_c.mops, 3)
          .add_num(sc, 3)
          .add_num(r.ycsb_e.mops, 3)
          .add_num(se, 3);
    }
  }
  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);

  std::cout << "\n";
  for (int s = 0; s < 2; ++s) {
    std::cout << names[s] << " arena+prefetch speedup: ycsb-c "
              << speedup_c[s] << "x, ycsb-e " << speedup_e[s] << "x\n";
  }
  return 0;
}
