// Ablation — partition skew (§5.2 footnote 4 / §7 limitation).
//
// When operations concentrate on one NMP partition's key range, that
// partition's single combiner serializes them. We compare a uniform
// workload against one whose keys all fall in partition 0's range by
// shrinking the key space (keys uniform over 1/8 of the space).
#include <iostream>

#include "bench_common.hpp"
#include "hybrids/sim/exp/experiment.hpp"
#include "hybrids/util/table.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hs = hybrids::sim;
namespace hw = hybrids::workload;
namespace hb = hybrids::bench;

int main(int argc, char** argv) {
  hb::Options opt = hb::parse_options(argc, argv);
  hb::StatsSession stats(opt);
  const std::uint64_t keys = opt.keys ? opt.keys : 1ull << 19;
  const std::uint32_t threads = opt.threads.empty() ? 8 : opt.threads.front();

  std::cout << "Ablation: partition-skew serialization (hybrid skiplist, "
            << threads << " threads)\n\n";

  hybrids::util::Table table({"workload", "Mops/s", "DRAM reads/op"});

  // Uniform over all 8 partitions.
  {
    hs::ExperimentConfig cfg;
    cfg.workload = hw::sensitivity(keys, 100, 0, 0);
    cfg.threads = threads;
    cfg.ops_per_thread = opt.ops;
    cfg.warmup_per_thread = opt.warmup;
    auto r = hs::run_skiplist_experiment(hs::SkiplistKind::kHybridBlocking, cfg);
    table.new_row().add_cell("uniform over 8 partitions").add_num(r.mops, 3).add_num(
        r.dram_reads_per_op, 1);
  }
  // All keys inside one partition's range: the structure still has 8
  // partitions, but with 1/8 of the keys every lookup goes to partition 0.
  {
    hs::ExperimentConfig cfg;
    cfg.workload = hw::sensitivity(keys / 8, 100, 0, 0);
    cfg.workload.partitions = 1;  // key layout confined to one range
    cfg.threads = threads;
    cfg.ops_per_thread = opt.ops;
    cfg.warmup_per_thread = opt.warmup;
    auto r = hs::run_skiplist_experiment(hs::SkiplistKind::kHybridBlocking, cfg);
    table.new_row().add_cell("all ops to 1 partition").add_num(r.mops, 3).add_num(
        r.dram_reads_per_op, 1);
  }
  if (opt.csv) table.print_csv(std::cout); else table.print(std::cout);
  std::cout << "\n(One combiner serializes all offloads: the paper notes this "
               "limitation for highly skewed partitioning.)\n";
  return 0;
}
