// Shared command-line handling and run helpers for the figure/table benches.
//
// Every bench accepts:
//   --keys=N             initial key count (default: scaled-down from the paper)
//   --ops=N              measured operations per host thread
//   --warmup=N           warmup operations per host thread
//   --threads=CSV        host-thread counts to sweep (default per bench)
//   --full               paper-scale sizes (long running)
//   --csv                machine-readable output
//   --stats-json=FILE    write a telemetry snapshot (JSON) on exit
//   --stats-interval=MS  print a one-line telemetry summary to stderr
//                        every MS milliseconds while the bench runs
//   --fault-seed=N       arm the fault injector with seed N (needs a build
//                        with -DHYBRIDS_FAULTS=ON; rejected otherwise)
//   --fault-rate=P       per-kind injection probability (default 0.01;
//                        only meaningful together with --fault-seed)
//   --scan-max=N         maximum requested range-scan length (scan benches)
//
// micro_library_bench (google-benchmark, not parse_options) additionally
// accepts --pool=arena|malloc: `arena` (the default) backs structure nodes
// with the memory layer's partition arenas and sharded node pools, `malloc`
// flips mem::set_arena_enabled(false) before any structure is built so every
// node comes from plain aligned operator new/delete. The 2x2 arena/prefetch
// sweep lives in ablate_memlayer.
//
// Unknown options are a hard error (exit 2), so a typo like --trheads=8
// can't silently run the bench with defaults.
#pragma once

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "hybrids/nmp/fault.hpp"
#include "hybrids/telemetry/export.hpp"
#include "hybrids/telemetry/timeline.hpp"

namespace hybrids::bench {

struct Options {
  std::uint64_t keys = 0;  // 0: use the bench default
  std::uint64_t ops = 4000;
  std::uint64_t warmup = 2000;
  std::vector<std::uint32_t> threads;
  std::uint32_t scan_max = 100;  // max requested range-scan length (YCSB-E)
  bool full = false;
  bool csv = false;
  std::string stats_json;               // empty: no JSON export
  std::uint32_t stats_interval_ms = 0;  // 0: no periodic reporter
  std::optional<std::uint64_t> fault_seed;  // set: arm the fault injector
  double fault_rate = 0.01;                 // per-kind probability
};

/// Parses "1,2,4" into `out`. Rejects empty lists, empty elements ("1,,2",
/// trailing comma), zero, and trailing garbage ("4x").
inline bool parse_thread_list(const char* v, std::vector<std::uint32_t>& out) {
  out.clear();
  const char* p = v;
  if (*p == '\0') return false;
  while (true) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
    char* end = nullptr;
    const unsigned long n = std::strtoul(p, &end, 10);
    if (n == 0 || n > 0xFFFFFFFFul) return false;
    out.push_back(static_cast<std::uint32_t>(n));
    if (*end == '\0') return true;
    if (*end != ',') return false;
    p = end + 1;
  }
}

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--keys=")) {
      opt.keys = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--ops=")) {
      opt.ops = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--warmup=")) {
      opt.warmup = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--threads=")) {
      if (!parse_thread_list(v, opt.threads)) {
        std::cerr << "error: malformed --threads list '" << v
                  << "' (expected comma-separated positive integers, e.g. "
                     "--threads=1,2,4,8)\n";
        std::exit(2);
      }
    } else if (const char* v = value_of("--scan-max=")) {
      opt.scan_max = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      if (opt.scan_max == 0) {
        std::cerr << "error: --scan-max must be a positive integer, got '" << v
                  << "'\n";
        std::exit(2);
      }
    } else if (const char* v = value_of("--stats-json=")) {
      opt.stats_json = v;
    } else if (const char* v = value_of("--stats-interval=")) {
      opt.stats_interval_ms =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--fault-seed=")) {
      if (!nmp::fault::kCompiledIn) {
        std::cerr << "error: --fault-seed requires a build with "
                     "-DHYBRIDS_FAULTS=ON (the fault injector is compiled "
                     "out of this binary)\n";
        std::exit(2);
      }
      opt.fault_seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--fault-rate=")) {
      if (!nmp::fault::kCompiledIn) {
        std::cerr << "error: --fault-rate requires a build with "
                     "-DHYBRIDS_FAULTS=ON (the fault injector is compiled "
                     "out of this binary)\n";
        std::exit(2);
      }
      opt.fault_rate = std::strtod(v, nullptr);
      if (opt.fault_rate < 0.0 || opt.fault_rate > 1.0) {
        std::cerr << "error: --fault-rate must be in [0, 1], got '" << v
                  << "'\n";
        std::exit(2);
      }
    } else if (arg == "--full") {
      opt.full = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options:\n"
                   "  --keys=N             initial key count\n"
                   "  --ops=N              measured ops per host thread\n"
                   "  --warmup=N           warmup ops per host thread\n"
                   "  --threads=1,2,4,8    host-thread counts to sweep\n"
                   "  --full               paper-scale sizes (long running)\n"
                   "  --csv                machine-readable output\n"
                   "  --stats-json=FILE    write telemetry snapshot (JSON) on "
                   "exit\n"
                   "  --stats-interval=MS  periodic one-line telemetry summary "
                   "on stderr\n"
                   "  --fault-seed=N       arm the fault injector with seed N "
                   "(HYBRIDS_FAULTS builds only)\n"
                   "  --scan-max=N         max range-scan length (scan "
                   "benches, default 100)\n"
                   "  --fault-rate=P       per-kind injection probability "
                   "(default 0.01)\n";
      std::exit(0);
    } else {
      std::cerr << "error: unknown option '" << arg
                << "' (see --help for the supported flags)\n";
      std::exit(2);
    }
  }
  return opt;
}

/// RAII wiring of the telemetry flags: constructs a periodic stderr reporter
/// if --stats-interval was given, and exports the final registry snapshot to
/// --stats-json on destruction (i.e. after the bench body ran).
class StatsSession {
 public:
  explicit StatsSession(const Options& opt) : json_path_(opt.stats_json) {
    if (opt.stats_interval_ms > 0) {
      reporter_.emplace(std::chrono::milliseconds(opt.stats_interval_ms),
                        [](const telemetry::Snapshot& snap) {
                          std::cerr << telemetry::one_line_summary(snap)
                                    << "\n";
                        });
    }
    if (opt.fault_seed) {
      // Duration faults only: spurious protocol responses would make the
      // measured op mix depend on the seed, whereas stalls/delays/lost
      // wakeups perturb timing while leaving every op's result intact.
      nmp::fault::Config fc;
      fc.seed = *opt.fault_seed;
      fc.enable(nmp::fault::Kind::kCombinerStall, opt.fault_rate)
          .enable(nmp::fault::Kind::kDelayedResponse, opt.fault_rate)
          .enable(nmp::fault::Kind::kLostWakeup, opt.fault_rate);
      nmp::fault::FaultInjector::arm(fc);
      armed_ = true;
      std::cerr << "faults: armed seed=" << *opt.fault_seed
                << " rate=" << opt.fault_rate << "\n";
    }
  }

  ~StatsSession() {
    if (armed_) nmp::fault::FaultInjector::disarm();
    if (reporter_) reporter_->stop();
    if (!json_path_.empty()) {
      if (telemetry::export_json(json_path_)) {
        std::cerr << "telemetry: wrote " << json_path_ << "\n";
      } else {
        std::cerr << "telemetry: failed to write " << json_path_ << "\n";
      }
    }
  }

  StatsSession(const StatsSession&) = delete;
  StatsSession& operator=(const StatsSession&) = delete;

 private:
  std::string json_path_;
  std::optional<telemetry::PeriodicReporter> reporter_;
  bool armed_ = false;
};

}  // namespace hybrids::bench
