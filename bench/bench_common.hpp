// Shared command-line handling and run helpers for the figure/table benches.
//
// Every bench accepts:
//   --keys=N      initial key count (default: scaled-down from the paper)
//   --ops=N       measured operations per host thread
//   --warmup=N    warmup operations per host thread
//   --threads=CSV host-thread counts to sweep (default per bench)
//   --full        paper-scale sizes (long running)
//   --csv         machine-readable output
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

namespace hybrids::bench {

struct Options {
  std::uint64_t keys = 0;  // 0: use the bench default
  std::uint64_t ops = 4000;
  std::uint64_t warmup = 2000;
  std::vector<std::uint32_t> threads;
  bool full = false;
  bool csv = false;
};

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--keys=")) {
      opt.keys = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--ops=")) {
      opt.ops = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--warmup=")) {
      opt.warmup = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--threads=")) {
      opt.threads.clear();
      const char* p = v;
      while (*p != '\0') {
        char* end = nullptr;
        opt.threads.push_back(static_cast<std::uint32_t>(std::strtoul(p, &end, 10)));
        p = *end == ',' ? end + 1 : end;
      }
    } else if (arg == "--full") {
      opt.full = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --keys=N --ops=N --warmup=N --threads=1,2,4,8 "
                   "--full --csv\n";
      std::exit(0);
    }
  }
  return opt;
}

}  // namespace hybrids::bench
