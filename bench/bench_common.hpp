// Shared command-line handling and run helpers for the figure/table benches.
//
// Every bench accepts:
//   --keys=N             initial key count (default: scaled-down from the paper)
//   --ops=N              measured operations per host thread
//   --warmup=N           warmup operations per host thread
//   --threads=CSV        host-thread counts to sweep (default per bench)
//   --full               paper-scale sizes (long running)
//   --csv                machine-readable output
//   --stats-json=FILE    write a telemetry snapshot (JSON) on exit
//   --stats-interval=MS  print a one-line telemetry summary to stderr
//                        every MS milliseconds while the bench runs
//   --stats-delta        make the periodic summary report per-interval
//                        deltas/rates instead of run-cumulative totals
//   --stats-series=FILE  append a telemetry snapshot to a timeline every
//                        interval (default 500 ms if --stats-interval is
//                        not given) and write it as CSV on exit, one block
//                        of rows per snapshot behind a t_ms column
//   --trace-json=FILE    write sampled operation traces as Chrome
//                        trace-event JSON on exit (chrome://tracing,
//                        ui.perfetto.dev) and print a per-phase latency
//                        breakdown to stderr (needs a build without
//                        -DHYBRIDS_NO_TRACE / -DHYBRIDS_NO_TELEMETRY)
//   --trace-sample=N     trace 1 in N operations (default 1 when
//                        --trace-json is given; 0 disables tracing)
//   --fault-seed=N       arm the fault injector with seed N (needs a build
//                        with -DHYBRIDS_FAULTS=ON; rejected otherwise)
//   --fault-rate=P       per-kind injection probability (default 0.01;
//                        only meaningful together with --fault-seed)
//   --scan-max=N         maximum requested range-scan length (scan benches)
//   --kill-every-ms=N    (ext_failover) force one combiner failover every
//                        N ms during the timed run
//   --duration-ms=N      (ext_failover) timed-run length per mode, in ms
//   --depths=CSV         (ablate_interleave) coroutine frame depths to
//                        sweep, each in [1, 16]; depth 1 is the blocking
//                        baseline (default 1,2,4,8,16)
//   --budgets=CSV        (ablate_cache) hot-key cache byte budgets to sweep
//                        (default: 1/64, 1/16, 1/4 of the keyspace
//                        footprint; a cache-off arm is always included)
//   --thetas=CSV         (ablate_cache) zipfian theta values to sweep,
//                        each in (0, 1) (default 0.5,0.8,0.99)
//
// micro_library_bench (google-benchmark, not parse_options) additionally
// accepts --pool=arena|malloc: `arena` (the default) backs structure nodes
// with the memory layer's partition arenas and sharded node pools, `malloc`
// flips mem::set_arena_enabled(false) before any structure is built so every
// node comes from plain aligned operator new/delete. The 2x2 arena/prefetch
// sweep lives in ablate_memlayer.
//
// Unknown options are a hard error (exit 2), so a typo like --trheads=8
// can't silently run the bench with defaults.
#pragma once

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "hybrids/nmp/fault.hpp"
#include "hybrids/telemetry/export.hpp"
#include "hybrids/telemetry/timeline.hpp"
#include "hybrids/trace/export.hpp"
#include "hybrids/trace/trace.hpp"
#include "hybrids/types.hpp"
#include "hybrids/util/rng.hpp"
#include "hybrids/workload/workload.hpp"
#include "hybrids/workload/zipf.hpp"

namespace hybrids::bench {

struct Options {
  std::uint64_t keys = 0;  // 0: use the bench default
  std::uint64_t ops = 4000;
  std::uint64_t warmup = 2000;
  std::vector<std::uint32_t> threads;
  std::uint32_t scan_max = 100;  // max requested range-scan length (YCSB-E)
  std::uint32_t kill_every_ms = 500;  // ext_failover: kill cadence
  std::uint32_t duration_ms = 3000;   // ext_failover: timed-run length
  std::vector<std::uint32_t> depths = {1, 2, 4, 8, 16};  // ablate_interleave
  std::vector<std::uint64_t> budgets;                    // ablate_cache: bytes
  std::vector<double> thetas = {0.5, 0.8, 0.99};         // ablate_cache
  bool full = false;
  bool csv = false;
  std::string stats_json;               // empty: no JSON export
  std::uint32_t stats_interval_ms = 0;  // 0: no periodic reporter
  std::string stats_series;             // set: write timeline CSV on exit
  bool stats_delta = false;             // periodic summary shows deltas
  std::string trace_json;               // set: write Chrome trace JSON
  std::optional<std::uint32_t> trace_sample;  // 1-in-N; 0 disables tracing
  std::optional<std::uint64_t> fault_seed;  // set: arm the fault injector
  double fault_rate = 0.01;                 // per-kind probability
};

/// Parses "1,2,4" into `out`. Rejects empty lists, empty elements ("1,,2",
/// trailing comma), zero, and trailing garbage ("4x").
inline bool parse_thread_list(const char* v, std::vector<std::uint32_t>& out) {
  out.clear();
  const char* p = v;
  if (*p == '\0') return false;
  while (true) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
    char* end = nullptr;
    const unsigned long n = std::strtoul(p, &end, 10);
    if (n == 0 || n > 0xFFFFFFFFul) return false;
    out.push_back(static_cast<std::uint32_t>(n));
    if (*end == '\0') return true;
    if (*end != ',') return false;
    p = end + 1;
  }
}

/// Parses "1024,65536" into `out` (64-bit, positive). Same rejection rules
/// as parse_thread_list.
inline bool parse_u64_list(const char* v, std::vector<std::uint64_t>& out) {
  out.clear();
  const char* p = v;
  if (*p == '\0') return false;
  while (true) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
    char* end = nullptr;
    const unsigned long long n = std::strtoull(p, &end, 10);
    if (n == 0) return false;
    out.push_back(static_cast<std::uint64_t>(n));
    if (*end == '\0') return true;
    if (*end != ',') return false;
    p = end + 1;
  }
}

/// Parses "0.5,0.99" into `out`; every element must be a finite double in
/// (lo, hi).
inline bool parse_double_list(const char* v, double lo, double hi,
                              std::vector<double>& out) {
  out.clear();
  const char* p = v;
  if (*p == '\0') return false;
  while (true) {
    char* end = nullptr;
    const double d = std::strtod(p, &end);
    if (end == p || !(d > lo) || !(d < hi)) return false;
    out.push_back(d);
    if (*end == '\0') return true;
    if (*end != ',') return false;
    p = end + 1;
  }
}

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--keys=")) {
      opt.keys = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--ops=")) {
      opt.ops = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--warmup=")) {
      opt.warmup = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--threads=")) {
      if (!parse_thread_list(v, opt.threads)) {
        std::cerr << "error: malformed --threads list '" << v
                  << "' (expected comma-separated positive integers, e.g. "
                     "--threads=1,2,4,8)\n";
        std::exit(2);
      }
    } else if (const char* v = value_of("--scan-max=")) {
      opt.scan_max = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      if (opt.scan_max == 0) {
        std::cerr << "error: --scan-max must be a positive integer, got '" << v
                  << "'\n";
        std::exit(2);
      }
    } else if (const char* v = value_of("--kill-every-ms=")) {
      opt.kill_every_ms =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      if (opt.kill_every_ms == 0) {
        std::cerr << "error: --kill-every-ms must be a positive integer, got '"
                  << v << "'\n";
        std::exit(2);
      }
    } else if (const char* v = value_of("--duration-ms=")) {
      opt.duration_ms =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      if (opt.duration_ms == 0) {
        std::cerr << "error: --duration-ms must be a positive integer, got '"
                  << v << "'\n";
        std::exit(2);
      }
    } else if (const char* v = value_of("--depths=")) {
      if (!parse_thread_list(v, opt.depths)) {
        std::cerr << "error: malformed --depths list '" << v
                  << "' (expected comma-separated positive integers, e.g. "
                     "--depths=1,4,8)\n";
        std::exit(2);
      }
      for (const std::uint32_t d : opt.depths) {
        if (d > 16) {  // host::Frame::kMaxSlots
          std::cerr << "error: --depths entries must be in [1, 16], got " << d
                    << "\n";
          std::exit(2);
        }
      }
    } else if (const char* v = value_of("--budgets=")) {
      if (!parse_u64_list(v, opt.budgets)) {
        std::cerr << "error: malformed --budgets list '" << v
                  << "' (expected comma-separated positive byte counts, "
                     "e.g. --budgets=4096,65536)\n";
        std::exit(2);
      }
    } else if (const char* v = value_of("--thetas=")) {
      // theta = 1 is a pole of the zipfian formulas; stay inside (0, 1).
      if (!parse_double_list(v, 0.0, 1.0, opt.thetas)) {
        std::cerr << "error: malformed --thetas list '" << v
                  << "' (expected comma-separated values in (0, 1), e.g. "
                     "--thetas=0.5,0.99)\n";
        std::exit(2);
      }
    } else if (const char* v = value_of("--stats-json=")) {
      opt.stats_json = v;
    } else if (const char* v = value_of("--stats-interval=")) {
      opt.stats_interval_ms =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--stats-series=")) {
      opt.stats_series = v;
    } else if (arg == "--stats-delta") {
      opt.stats_delta = true;
    } else if (const char* v = value_of("--trace-json=")) {
      if (!trace::kCompiledIn) {
        std::cerr << "error: --trace-json requires a build without "
                     "-DHYBRIDS_NO_TRACE / -DHYBRIDS_NO_TELEMETRY (the "
                     "tracing layer is compiled out of this binary)\n";
        std::exit(2);
      }
      opt.trace_json = v;
    } else if (const char* v = value_of("--trace-sample=")) {
      if (!trace::kCompiledIn) {
        std::cerr << "error: --trace-sample requires a build without "
                     "-DHYBRIDS_NO_TRACE / -DHYBRIDS_NO_TELEMETRY (the "
                     "tracing layer is compiled out of this binary)\n";
        std::exit(2);
      }
      opt.trace_sample =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--fault-seed=")) {
      if (!nmp::fault::kCompiledIn) {
        std::cerr << "error: --fault-seed requires a build with "
                     "-DHYBRIDS_FAULTS=ON (the fault injector is compiled "
                     "out of this binary)\n";
        std::exit(2);
      }
      opt.fault_seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--fault-rate=")) {
      if (!nmp::fault::kCompiledIn) {
        std::cerr << "error: --fault-rate requires a build with "
                     "-DHYBRIDS_FAULTS=ON (the fault injector is compiled "
                     "out of this binary)\n";
        std::exit(2);
      }
      opt.fault_rate = std::strtod(v, nullptr);
      if (opt.fault_rate < 0.0 || opt.fault_rate > 1.0) {
        std::cerr << "error: --fault-rate must be in [0, 1], got '" << v
                  << "'\n";
        std::exit(2);
      }
    } else if (arg == "--full") {
      opt.full = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options:\n"
                   "  --keys=N             initial key count\n"
                   "  --ops=N              measured ops per host thread\n"
                   "  --warmup=N           warmup ops per host thread\n"
                   "  --threads=1,2,4,8    host-thread counts to sweep\n"
                   "  --full               paper-scale sizes (long running)\n"
                   "  --csv                machine-readable output\n"
                   "  --stats-json=FILE    write telemetry snapshot (JSON) on "
                   "exit\n"
                   "  --stats-interval=MS  periodic one-line telemetry summary "
                   "on stderr\n"
                   "  --stats-delta        periodic summary shows per-interval "
                   "deltas/rates\n"
                   "  --stats-series=FILE  write the telemetry timeline as CSV "
                   "on exit\n"
                   "  --trace-json=FILE    write sampled op traces as Chrome "
                   "trace JSON on exit\n"
                   "  --trace-sample=N     trace 1 in N ops (default 1 with "
                   "--trace-json; 0 = off)\n"
                   "  --fault-seed=N       arm the fault injector with seed N "
                   "(HYBRIDS_FAULTS builds only)\n"
                   "  --scan-max=N         max range-scan length (scan "
                   "benches, default 100)\n"
                   "  --kill-every-ms=N    (ext_failover) kill cadence "
                   "(default 500)\n"
                   "  --duration-ms=N      (ext_failover) timed-run length "
                   "(default 3000)\n"
                   "  --depths=1,4,8       (ablate_interleave) frame depths "
                   "to sweep, each in [1, 16]\n"
                   "  --budgets=4096,65536 (ablate_cache) cache byte budgets "
                   "to sweep\n"
                   "  --thetas=0.5,0.99    (ablate_cache) zipfian thetas to "
                   "sweep, each in (0, 1)\n"
                   "  --fault-rate=P       per-kind injection probability "
                   "(default 0.01)\n";
      std::exit(0);
    } else {
      std::cerr << "error: unknown option '" << arg
                << "' (see --help for the supported flags)\n";
      std::exit(2);
    }
  }
  return opt;
}

// ---------------------------------------------------------------------------
// Shared measurement helpers. Every bench used to carry private copies of
// these; they live here so the arms of different ablations are timed and
// keyed identically.

/// Monotonic wall clock for throughput math (steady_clock, ns).
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Scatters zipf ranks over a key set (the ScrambledZipfian idea, done
/// locally so theta stays a free parameter): rank r -> scramble(r) % space.
inline std::uint64_t scramble(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// The odd keys {1, 3, 5, ...}: the standard structure-level preload. Leaves
/// the even keys free so probe misses and churn inserts land between
/// residents instead of past the tail.
inline std::vector<Key> odd_preload_keys(std::uint64_t count) {
  std::vector<Key> keys;
  keys.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    keys.push_back(static_cast<Key>(2 * k + 1));
  }
  return keys;
}

/// A deterministic zipfian probe sequence over [1, key_space]: the shared
/// key-gen for structure-level read/scan sweeps, so every arm replays the
/// same skewed accesses.
inline std::vector<Key> zipfian_probe_keys(std::size_t count,
                                           std::uint64_t key_space,
                                           std::uint64_t seed = 0x5EED,
                                           double theta = 0.99) {
  util::Xoshiro256 rng(seed);
  workload::ZipfianGenerator zipf(key_space, theta);
  std::vector<Key> probes(count);
  for (Key& k : probes) k = 1 + static_cast<Key>(zipf.next(rng));
  return probes;
}

/// Folded results of one timed run: throughput plus a checksum that
/// cross-checks the arms of an ablation and defeats dead-code elimination.
struct RunResult {
  double mops = 0;
  std::uint64_t checksum = 0;
};

/// One timed multi-threaded run of `spec` against `ds` (any structure with
/// the read/insert/remove/scan(part) shape of the hybrid lists). Same shape
/// as the figure benches: per-thread deterministic OpStreams, warmup untimed,
/// rough start barrier, wall-clock Mops/s, results folded into the checksum.
template <typename DS>
RunResult run_op_mix(DS& ds, const workload::WorkloadSpec& spec,
                     std::uint32_t threads, std::uint64_t warmup_per_thread,
                     std::uint64_t ops_per_thread) {
  std::atomic<std::uint64_t> checksum{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  std::uint64_t t0 = 0;
  std::atomic<std::uint32_t> ready{0};
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t, threads, warmup_per_thread, ops_per_thread] {
      workload::OpStream stream(spec, t);
      std::vector<ScanEntry> buf(spec.max_scan_len);
      std::uint64_t my_sum = 0;
      auto run_one = [&] {
        const workload::Op op = stream.next();
        switch (op.type) {
          case workload::OpType::kScan: {
            const std::size_t n = ds.scan(op.key, op.scan_len, buf.data(), t);
            for (std::size_t j = 0; j < n; ++j) my_sum += buf[j].key;
            break;
          }
          case workload::OpType::kInsert:
            my_sum += ds.insert(op.key, op.value, t);
            break;
          case workload::OpType::kRemove:
            my_sum += ds.remove(op.key, t);
            break;
          default: {
            Value v = 0;
            if (ds.read(op.key, v, t)) my_sum += v;
            break;
          }
        }
      };
      for (std::uint64_t i = 0; i < warmup_per_thread; ++i) run_one();
      ready.fetch_add(1);
      while (ready.load() < threads) std::this_thread::yield();
      if (t == 0) t0 = now_ns();
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) run_one();
      checksum.fetch_add(my_sum, std::memory_order_relaxed);
    });
  }
  for (std::thread& w : workers) w.join();
  const double secs = static_cast<double>(now_ns() - t0) * 1e-9;
  RunResult r;
  r.mops = static_cast<double>(threads) * static_cast<double>(ops_per_thread) /
           secs / 1e6;
  r.checksum = checksum.load();
  return r;
}

/// The machine's L1D line size as the OS reports it, or 0 when unknowable.
/// The node layouts hard-code 64-byte lines (see ds/fat_skiplist.hpp's
/// static_asserts); StatsSession logs a mismatch so a surprising perf result
/// on exotic hardware is explainable from the bench output alone.
inline std::size_t runtime_cache_line_bytes() {
#if defined(_SC_LEVEL1_DCACHE_LINESIZE)
  const long sc = sysconf(_SC_LEVEL1_DCACHE_LINESIZE);
  if (sc > 0) return static_cast<std::size_t>(sc);
#endif
#if defined(__linux__)
  std::ifstream f(
      "/sys/devices/system/cpu/cpu0/cache/index0/coherency_line_size");
  std::size_t v = 0;
  if (f && (f >> v) && v > 0) return v;
#endif
  return 0;
}

/// RAII wiring of the telemetry/tracing flags: constructs a periodic stderr
/// reporter if --stats-interval was given (per-interval deltas with
/// --stats-delta), accumulates a snapshot timeline for --stats-series,
/// arms operation tracing for --trace-json/--trace-sample, and on
/// destruction (i.e. after the bench body ran) exports --stats-json,
/// the series CSV, and the Chrome trace JSON + per-phase breakdown.
class StatsSession {
 public:
  explicit StatsSession(const Options& opt)
      : json_path_(opt.stats_json),
        series_path_(opt.stats_series),
        trace_path_(opt.trace_json) {
    // One line of layout provenance per run: the fat-node/B+tree layouts are
    // tuned to 64-byte lines, so flag hardware where that constant is wrong.
    if (const std::size_t line = runtime_cache_line_bytes(); line != 0) {
      std::cerr << "cache: L1D line " << line << " B (layouts assume 64 B"
                << (line == 64 ? ")" : " -- MISMATCH, node sizing is off)")
                << "\n";
    }
    if (trace::kCompiledIn &&
        (!opt.trace_json.empty() || opt.trace_sample.has_value())) {
      // --trace-json alone samples every op; an explicit --trace-sample=0
      // turns tracing off even when a JSON path was given.
      const std::uint32_t every = opt.trace_sample.value_or(1);
      trace::set_sample_every(every);
      tracing_ = every > 0;
      if (tracing_) {
        std::cerr << "trace: sampling 1 in " << every << " ops\n";
      }
    }
    const bool print = opt.stats_interval_ms > 0;
    if (print || !series_path_.empty()) {
      if (opt.stats_delta) prev_ = telemetry::snapshot();
      const std::uint32_t ms =
          print ? opt.stats_interval_ms : kDefaultSeriesIntervalMs;
      reporter_.emplace(
          std::chrono::milliseconds(ms),
          [this, print, delta = opt.stats_delta](
              const telemetry::Snapshot& snap) {
            if (print) {
              std::cerr << (delta
                                ? telemetry::one_line_delta_summary(prev_,
                                                                    snap)
                                : telemetry::one_line_summary(snap))
                        << "\n";
            }
            if (delta) prev_ = snap;
            if (!series_path_.empty()) timeline_.append(snap);
          });
    }
    if (opt.fault_seed) {
      // Duration faults only: spurious protocol responses would make the
      // measured op mix depend on the seed, whereas stalls/delays/lost
      // wakeups perturb timing while leaving every op's result intact.
      nmp::fault::Config fc;
      fc.seed = *opt.fault_seed;
      fc.enable(nmp::fault::Kind::kCombinerStall, opt.fault_rate)
          .enable(nmp::fault::Kind::kDelayedResponse, opt.fault_rate)
          .enable(nmp::fault::Kind::kLostWakeup, opt.fault_rate);
      nmp::fault::FaultInjector::arm(fc);
      armed_ = true;
      std::cerr << "faults: armed seed=" << *opt.fault_seed
                << " rate=" << opt.fault_rate << "\n";
    }
  }

  ~StatsSession() {
    if (armed_) nmp::fault::FaultInjector::disarm();
    if (reporter_) reporter_->stop();
    if (!series_path_.empty()) {
      if (telemetry::export_series_csv(timeline_.entries(), series_path_)) {
        std::cerr << "telemetry: wrote " << series_path_ << " ("
                  << timeline_.size() << " snapshots)\n";
      } else {
        std::cerr << "telemetry: failed to write " << series_path_ << "\n";
      }
    }
    if (!json_path_.empty()) {
      if (telemetry::export_json(json_path_)) {
        std::cerr << "telemetry: wrote " << json_path_ << "\n";
      } else {
        std::cerr << "telemetry: failed to write " << json_path_ << "\n";
      }
    }
    if (tracing_) {
      const trace::TraceData data = trace::drain();
      if (!trace_path_.empty()) {
        if (trace::write_chrome_json(trace_path_, data)) {
          std::cerr << "trace: wrote " << trace_path_ << " ("
                    << data.events.size() << " events, " << data.sampled_ops
                    << " sampled ops, " << data.dropped << " dropped)\n";
        } else {
          std::cerr << "trace: failed to write " << trace_path_ << "\n";
        }
      }
      std::cerr << trace::breakdown_table(trace::breakdown(data)) << "\n";
    }
  }

  StatsSession(const StatsSession&) = delete;
  StatsSession& operator=(const StatsSession&) = delete;

 private:
  static constexpr std::uint32_t kDefaultSeriesIntervalMs = 500;

  std::string json_path_;
  std::string series_path_;
  std::string trace_path_;
  telemetry::Timeline timeline_;
  telemetry::Snapshot prev_;  // delta baseline; touched only by the reporter
  std::optional<telemetry::PeriodicReporter> reporter_;
  bool tracing_ = false;
  bool armed_ = false;
};

}  // namespace hybrids::bench
