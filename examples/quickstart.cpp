// Quickstart: create a hybrid skiplist, run the basic operations from a few
// threads, and try the non-blocking call API.
//
//   $ ./examples/quickstart
//
// On real NMP hardware the "NMP cores" would be in-memory processors; in
// this software runtime each one is a dedicated combiner thread owning its
// partition (same programming model, §3.2 of the paper).
#include <cstdio>
#include <thread>
#include <vector>

#include "hybrids/ds/hybrid_skiplist.hpp"

using hybrids::Key;
using hybrids::Value;

int main() {
  // A hybrid skiplist with 16 levels: the top 8 managed by host threads
  // (lock-free), the bottom 8 by 4 NMP partitions (flat combining).
  hybrids::ds::HybridSkipList::Config config;
  config.total_height = 16;
  config.nmp_height = 8;
  config.partitions = 4;
  config.partition_width = 1u << 16;  // keys [p*2^16, (p+1)*2^16) -> partition p
  config.max_threads = 4;

  hybrids::ds::HybridSkipList index(config);

  // --- basic operations (thread id identifies the publication-list slot) ---
  const std::uint32_t tid = 0;
  index.insert(/*key=*/42, /*value=*/4242, tid);
  Value v = 0;
  if (index.read(42, v, tid)) std::printf("key 42 -> %u\n", v);
  index.update(42, 999, tid);
  index.read(42, v, tid);
  std::printf("key 42 updated -> %u\n", v);
  index.remove(42, tid);
  std::printf("key 42 present after remove? %s\n",
              index.read(42, v, tid) ? "yes" : "no");

  // --- concurrent usage: each thread passes its own id ---
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&index, t] {
      for (Key k = 0; k < 1000; ++k) {
        index.insert(k * 4 + t, k, t);  // disjoint keys per thread
      }
    });
  }
  for (auto& th : threads) th.join();
  std::printf("after concurrent inserts: %zu keys, valid=%s\n", index.size(),
              index.validate() ? "true" : "false");

  // --- non-blocking NMP calls (§3.5): up to 4 operations in flight ---
  std::vector<hybrids::ds::HybridSkipList::Ticket> pending;
  std::uint64_t hits = 0;
  for (Key k = 0; k < 4000; ++k) {
    auto ticket = index.read_async(k, tid);
    if (ticket.state == hybrids::ds::HybridSkipList::Ticket::State::kRejected) {
      hits += index.finish(pending.front(), &v) ? 1 : 0;  // drain the oldest
      pending.erase(pending.begin());
      ticket = index.read_async(k, tid);
    }
    if (ticket.state == hybrids::ds::HybridSkipList::Ticket::State::kImmediate) {
      hits += ticket.ok ? 1 : 0;  // served from the host-managed portion
    } else {
      pending.push_back(ticket);
    }
  }
  for (auto& t : pending) hits += index.finish(t, &v) ? 1 : 0;
  std::printf("non-blocking reads found %llu of 4000 keys\n",
              static_cast<unsigned long long>(hits));
  return 0;
}
