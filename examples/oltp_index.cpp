// OLTP index scenario: a hybrid B+ tree as the primary-key index of an
// in-memory table (the paper's motivating use case, §1).
//
// A small "orders" table is bulk-loaded in sorted order (as OLTP systems do
// when building an index over an existing table, §3.4), then serves a mix
// of point lookups, new-order inserts, and cancellations from multiple
// worker threads — the shape of an OLTP transaction workload.
//
//   $ ./examples/oltp_index
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/util/rng.hpp"

using hybrids::Key;
using hybrids::Value;

namespace {

// Order rows live in a plain table; the index maps order id -> row slot.
struct OrderRow {
  Key order_id;
  std::uint32_t customer;
  std::uint32_t amount_cents;
};

}  // namespace

int main() {
  constexpr std::uint32_t kWorkers = 4;
  constexpr Key kInitialOrders = 50000;

  // Bulk-load the table and build the index over it.
  std::vector<OrderRow> table;
  std::vector<Key> ids;
  std::vector<Value> slots;
  table.reserve(kInitialOrders);
  for (Key id = 0; id < kInitialOrders; ++id) {
    table.push_back({id * 2, id % 997, (id * 37) % 100000});
    ids.push_back(id * 2);
    slots.push_back(id);  // index value = row slot in the table
  }

  hybrids::ds::HybridBTree::Config config;
  config.nmp_levels = 3;   // leaves + 2 levels near memory
  config.partitions = 8;   // one NMP core per partition
  config.max_threads = kWorkers;
  hybrids::ds::HybridBTree index(config, ids, slots);
  std::printf("index built: %zu keys, height %d (top %d levels host-managed)\n",
              index.size(), index.height(),
              index.height() - index.last_host_level());

  // OLTP-style workload: 80% lookups, 10% new orders, 10% cancellations.
  std::atomic<std::uint64_t> lookups{0}, found{0}, inserts{0}, removes{0};
  std::vector<std::thread> workers;
  for (std::uint32_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      hybrids::util::Xoshiro256 rng(1234 + w);
      for (int txn = 0; txn < 20000; ++txn) {
        const std::uint64_t dice = rng.next_below(10);
        if (dice < 8) {
          // Point lookup: order id -> row.
          const Key id = static_cast<Key>(rng.next_below(kInitialOrders)) * 2;
          Value slot = 0;
          lookups.fetch_add(1, std::memory_order_relaxed);
          if (index.read(id, slot, w)) {
            found.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (dice == 8) {
          // New order: odd ids are unused in the initial load.
          const Key id = static_cast<Key>(rng.next_below(kInitialOrders)) * 2 + 1;
          if (index.insert(id, id, w)) {
            inserts.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          // Cancellation.
          const Key id = static_cast<Key>(rng.next_below(kInitialOrders)) * 2 + 1;
          if (index.remove(id, w)) {
            removes.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  std::printf("lookups: %llu (%llu found)\n",
              static_cast<unsigned long long>(lookups.load()),
              static_cast<unsigned long long>(found.load()));
  std::printf("new orders: %llu, cancellations: %llu\n",
              static_cast<unsigned long long>(inserts.load()),
              static_cast<unsigned long long>(removes.load()));
  std::printf("final index size: %zu (expected %llu), valid=%s\n", index.size(),
              static_cast<unsigned long long>(kInitialOrders + inserts.load() -
                                              removes.load()),
              index.validate() ? "true" : "false");
  return 0;
}
