// YCSB runner: drive any of the simulated data-structure designs with a
// YCSB core workload or a custom read-insert-remove mix on the simulated
// NMP machine, and print throughput + memory statistics.
//
//   $ ./examples/ycsb_runner                      # defaults
//   $ ./examples/ycsb_runner skiplist hybrid-nonblocking ycsb-a
//   $ ./examples/ycsb_runner btree host-only 50-25-25
//
// Arguments: [skiplist|btree] [design] [workload]
//   skiplist designs: lock-free | nmp | hybrid-blocking | hybrid-nonblocking
//   btree designs:    host-only | hybrid-blocking | hybrid-nonblocking
//   workloads:        ycsb-a | ycsb-b | ycsb-c | X-Y-Z (read-insert-remove %)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "hybrids/sim/exp/experiment.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hs = hybrids::sim;
namespace hw = hybrids::workload;

namespace {

hw::WorkloadSpec parse_workload(const std::string& name, std::uint64_t keys) {
  if (name == "ycsb-a") return hw::ycsb_a(keys);
  if (name == "ycsb-b") return hw::ycsb_b(keys);
  if (name == "ycsb-c") return hw::ycsb_c(keys);
  // "X-Y-Z" mix.
  int r = 100, i = 0, d = 0;
  if (std::sscanf(name.c_str(), "%d-%d-%d", &r, &i, &d) == 3) {
    return hw::sensitivity(keys, r, i, d);
  }
  std::fprintf(stderr, "unknown workload '%s', using ycsb-c\n", name.c_str());
  return hw::ycsb_c(keys);
}

void print_result(const char* structure, const char* design,
                  const std::string& workload, const hs::ExperimentResult& r) {
  std::printf("%s / %s / %s\n", structure, design, workload.c_str());
  std::printf("  throughput:        %.3f Mops/s (simulated)\n", r.mops);
  std::printf("  DRAM reads/op:     %.2f (host %.2f + NMP %.2f)\n",
              r.dram_reads_per_op, r.host_dram_reads_per_op,
              r.nmp_dram_reads_per_op);
  std::printf("  L1 hit rate:       %.1f%%\n",
              100.0 * static_cast<double>(r.mem.l1_hits) /
                  static_cast<double>(r.mem.l1_hits + r.mem.l1_misses + 1));
  std::printf("  MMIO traffic:      %llu writes, %llu reads\n",
              static_cast<unsigned long long>(r.mem.mmio_writes),
              static_cast<unsigned long long>(r.mem.mmio_reads));
  std::printf("  simulated time:    %.2f us for %llu ops\n",
              hs::ticks_to_ns(r.duration) / 1000.0,
              static_cast<unsigned long long>(r.ops));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string structure = argc > 1 ? argv[1] : "skiplist";
  const std::string design = argc > 2 ? argv[2] : "hybrid-nonblocking";
  const std::string workload = argc > 3 ? argv[3] : "ycsb-c";

  hs::ExperimentConfig cfg;
  cfg.threads = 8;
  cfg.ops_per_thread = 3000;
  cfg.warmup_per_thread = 1500;

  if (structure == "btree") {
    cfg.workload = parse_workload(workload, 1ull << 20);
    hs::BTreeKind kind = hs::BTreeKind::kHybridNonBlocking;
    if (design == "host-only") kind = hs::BTreeKind::kHostOnly;
    else if (design == "hybrid-blocking") kind = hs::BTreeKind::kHybridBlocking;
    print_result("btree", hs::to_string(kind), workload,
                 hs::run_btree_experiment(kind, cfg));
  } else {
    cfg.workload = parse_workload(workload, 1ull << 19);
    hs::SkiplistKind kind = hs::SkiplistKind::kHybridNonBlocking;
    if (design == "lock-free") kind = hs::SkiplistKind::kLockFree;
    else if (design == "nmp") kind = hs::SkiplistKind::kNmp;
    else if (design == "hybrid-blocking") kind = hs::SkiplistKind::kHybridBlocking;
    print_result("skiplist", hs::to_string(kind), workload,
                 hs::run_skiplist_experiment(kind, cfg));
  }
  return 0;
}
