// Non-blocking pipeline scenario (§3.5): a single host thread keeps several
// NMP calls in flight against a hybrid B+ tree and overlaps their latency,
// exactly the pattern of Figure 4b. Compares wall-clock time of the same
// batch executed with blocking vs non-blocking calls through the real
// (threaded) library.
//
//   $ ./examples/nonblocking_pipeline
#include <chrono>
#include <cstdio>
#include <deque>
#include <vector>

#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/util/rng.hpp"

using hybrids::Key;
using hybrids::Value;
namespace hd = hybrids::ds;

namespace {

double run_blocking(hd::HybridBTree& tree, const std::vector<Key>& keys) {
  const auto t0 = std::chrono::steady_clock::now();
  Value v = 0;
  std::uint64_t found = 0;
  for (Key k : keys) found += tree.read(k, v, 0) ? 1 : 0;
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("  blocking:     found %llu\n", static_cast<unsigned long long>(found));
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double run_nonblocking(hd::HybridBTree& tree, const std::vector<Key>& keys) {
  const auto t0 = std::chrono::steady_clock::now();
  std::deque<hd::HybridBTree::Ticket> window;
  std::uint64_t found = 0;
  for (Key k : keys) {
    auto ticket = tree.read_async(k, 0);
    while (ticket.state == hd::HybridBTree::Ticket::State::kRejected) {
      // All four slots in flight: retire the oldest, then retry.
      found += tree.finish(window.front()) ? 1 : 0;
      window.pop_front();
      ticket = tree.read_async(k, 0);
    }
    window.push_back(ticket);
  }
  while (!window.empty()) {
    found += tree.finish(window.front()) ? 1 : 0;
    window.pop_front();
  }
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("  non-blocking: found %llu\n", static_cast<unsigned long long>(found));
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  constexpr Key kKeys = 100000;
  std::vector<Key> ids;
  std::vector<Value> vals;
  for (Key i = 0; i < kKeys; ++i) {
    ids.push_back(i * 2);
    vals.push_back(i);
  }
  hd::HybridBTree::Config config;
  config.nmp_levels = 3;
  config.partitions = 4;
  config.max_threads = 1;
  config.slots_per_thread = 4;  // up to 4 calls in flight (paper's setting)
  hd::HybridBTree tree(config, ids, vals);

  hybrids::util::Xoshiro256 rng(7);
  std::vector<Key> lookups;
  for (int i = 0; i < 50000; ++i) {
    lookups.push_back(static_cast<Key>(rng.next_below(kKeys)) * 2);
  }

  std::printf("pipelining %zu lookups through 4 NMP partitions:\n",
              lookups.size());
  const double blocking_ms = run_blocking(tree, lookups);
  const double nonblocking_ms = run_nonblocking(tree, lookups);
  std::printf("  blocking:     %.1f ms\n", blocking_ms);
  std::printf("  non-blocking: %.1f ms\n", nonblocking_ms);
  std::printf(
      "\n(On this software runtime the win comes from overlapping combiner\n"
      "work; on real NMP hardware it additionally hides the offload round\n"
      "trip — see bench/table2_offload_delay and bench/ablate_inflight.)\n");
  return 0;
}
