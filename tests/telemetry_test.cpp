// Tests for hybrids/telemetry: sharded counters under concurrent writers,
// snapshot-during-write consistency, registry identity/reset semantics, and
// JSON/CSV export round-trips.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "hybrids/telemetry/counters.hpp"
#include "hybrids/telemetry/export.hpp"
#include "hybrids/telemetry/registry.hpp"
#include "hybrids/telemetry/timeline.hpp"

namespace ht = hybrids::telemetry;

namespace {

/// Minimal structural JSON check: balanced braces/brackets outside strings,
/// and the document is a single object. Not a full parser, but catches the
/// classes of bugs a handwritten emitter produces (unbalanced nesting,
/// unterminated strings, trailing garbage).
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool seen_any = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; seen_any = true; break;
      case '}':
      case ']':
        --depth;
        if (depth < 0) return false;
        if (depth == 0) {
          // Nothing but whitespace may follow the closing brace.
          for (std::size_t j = i + 1; j < s.size(); ++j) {
            if (s[j] != ' ' && s[j] != '\n' && s[j] != '\t') return false;
          }
        }
        break;
      default: break;
    }
  }
  return seen_any && depth == 0 && !in_string;
}

}  // namespace

TEST(Counter, ConcurrentIncrementsAreLossless) {
  ht::Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  if constexpr (ht::kEnabled) {
    EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
  } else {
    EXPECT_EQ(c.value(), 0u);
  }
}

TEST(Counter, AddTakesArbitraryDeltas) {
  ht::Counter c;
  c.add(5);
  c.add(37);
  if constexpr (ht::kEnabled) { EXPECT_EQ(c.value(), 42u); }
}

TEST(LatencyRecorder, SnapshotDuringConcurrentWritesIsConsistent) {
  if constexpr (!ht::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  ht::LatencyRecorder rec;
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&rec, &stop] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        rec.record(static_cast<double>(1 + (i++ % 1000)));
      }
    });
  }
  // Snapshots taken while writers run must be internally consistent: every
  // recorded value is in [1, 1000], so mean/min/max of any snapshot must be
  // too, and counts must be monotone between consecutive snapshots.
  std::uint64_t last_count = 0;
  for (int round = 0; round < 50; ++round) {
    hybrids::util::Histogram h = rec.snapshot();
    if (h.count() > 0) {
      EXPECT_GE(h.min(), 1.0);
      EXPECT_LE(h.max(), 1000.0);
      EXPECT_GE(h.mean(), 1.0);
      EXPECT_LE(h.mean(), 1000.0);
      EXPECT_GE(h.count(), last_count);
      last_count = h.count();
    }
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  hybrids::util::Histogram final = rec.snapshot();
  EXPECT_GE(final.count(), last_count);
}

TEST(Registry, SameNameAndScopeReturnsSameInstrument) {
  ht::Registry reg;
  ht::Counter& a = reg.counter("x", 0);
  ht::Counter& b = reg.counter("x", 0);
  ht::Counter& other_scope = reg.counter("x", 1);
  ht::Counter& global = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other_scope);
  EXPECT_NE(&a, &global);
  ht::LatencyRecorder& l1 = reg.latency("y", 2);
  ht::LatencyRecorder& l2 = reg.latency("y", 2);
  EXPECT_EQ(&l1, &l2);
}

TEST(Registry, SnapshotAndResetCoverEveryInstrument) {
  if constexpr (!ht::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  ht::Registry reg;
  reg.counter("served_total", 0).add(10);
  reg.counter("served_total", 1).add(32);
  reg.counter("host.posted").add(7);
  reg.latency("queue_wait_ns", 0).record(128.0);

  ht::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_total("served_total"), 42u);
  EXPECT_EQ(snap.counter_total("host.posted"), 7u);
  EXPECT_EQ(snap.histogram_total("queue_wait_ns").count(), 1u);
  EXPECT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.histograms.size(), 1u);

  reg.reset();
  snap = reg.snapshot();
  EXPECT_EQ(snap.counter_total("served_total"), 0u);
  EXPECT_EQ(snap.histogram_total("queue_wait_ns").count(), 0u);
  // Instruments stay registered after a reset (zero-valued, not dropped).
  EXPECT_EQ(snap.counters.size(), 3u);
}

TEST(Registry, ConcurrentRegistrationIsSafe) {
  ht::Registry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < 100; ++i) {
        reg.counter("shared", i % 4).inc();
      }
    });
  }
  for (auto& w : workers) w.join();
  if constexpr (ht::kEnabled) {
    EXPECT_EQ(reg.snapshot().counter_total("shared"), kThreads * 100u);
  }
}

TEST(Export, JsonRoundTripContainsRegisteredMetrics) {
  if constexpr (!ht::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  ht::reset_all();
  ht::counter(ht::names::kServedTotal, 0).add(11);
  ht::counter(ht::names::kServedTotal, 1).add(31);
  ht::counter(ht::names::kRetryStaleBeginNode, 0).add(3);
  ht::counter(ht::names::kOffloadPosted).add(42);
  ht::latency(ht::names::kQueueWaitNs, 0).record(100.0);
  ht::latency(ht::names::kQueueWaitNs, 0).record(200.0);

  const std::string json = ht::to_json(ht::snapshot());
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"schema\":\"hybrids.telemetry.v1\""), std::string::npos);
  // Global scope.
  EXPECT_NE(json.find("\"host.offload_posted\":42"), std::string::npos);
  // Totals across partitions.
  EXPECT_NE(json.find("\"served_total\":42"), std::string::npos);
  // Per-partition sections with their own values.
  EXPECT_NE(json.find("\"partition\":0"), std::string::npos);
  EXPECT_NE(json.find("\"partition\":1"), std::string::npos);
  EXPECT_NE(json.find("\"served_total\":11"), std::string::npos);
  EXPECT_NE(json.find("\"served_total\":31"), std::string::npos);
  EXPECT_NE(json.find("\"retry_stale_begin_node\":3"), std::string::npos);
  // Histogram block with its stats.
  EXPECT_NE(json.find("\"queue_wait_ns\":{\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":300"), std::string::npos);
  ht::reset_all();
}

TEST(Export, CsvHasHeaderAndOneRowPerInstrument) {
  if constexpr (!ht::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  ht::Registry reg;
  reg.counter("a", 0).add(1);
  reg.counter("b").add(2);
  reg.latency("c", 1).record(5.0);
  const std::string csv = ht::to_csv(reg.snapshot());
  EXPECT_NE(csv.find("type,name,partition,value,count"), std::string::npos);
  EXPECT_NE(csv.find("counter,a,0,1,"), std::string::npos);
  EXPECT_NE(csv.find("counter,b,,2,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,c,1,,1,5"), std::string::npos);
}

TEST(Export, WritesJsonFile) {
  const std::string path = ::testing::TempDir() + "hybrids_telemetry_test.json";
  ht::counter("file_marker").inc();
  ASSERT_TRUE(ht::export_json(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(json_balanced(content)) << content;
  EXPECT_NE(content.find("hybrids.telemetry.v1"), std::string::npos);
  if constexpr (ht::kEnabled) {
    EXPECT_NE(content.find("\"file_marker\":1"), std::string::npos);
  }
}

TEST(Timeline, AccumulatesSnapshots) {
  ht::Timeline tl;
  EXPECT_EQ(tl.size(), 0u);
  tl.append(ht::snapshot());
  tl.append(ht::snapshot());
  EXPECT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl.entries().size(), 2u);
}

TEST(PeriodicReporter, DeliversAtLeastOneFinalSnapshot) {
  std::atomic<int> delivered{0};
  {
    ht::PeriodicReporter reporter(std::chrono::milliseconds(5),
                                  [&delivered](const ht::Snapshot&) {
                                    delivered.fetch_add(1);
                                  });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  // At least the final stop() snapshot, likely several periodic ones.
  EXPECT_GE(delivered.load(), 1);
}

TEST(ThreadOrdinal, StableWithinThreadDistinctAcrossThreads) {
  const unsigned mine = ht::this_thread_ordinal();
  EXPECT_EQ(ht::this_thread_ordinal(), mine);
  unsigned other = mine;
  std::thread([&other] { other = ht::this_thread_ordinal(); }).join();
  EXPECT_NE(other, mine);
}
