// Tests for the skiplist family: sequential partition skiplist, lock-free
// skiplist (baseline), NMP-based flat-combining skiplist (prior work), and
// the hybrid skiplist (paper §3.3).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/ds/lockfree_skiplist.hpp"
#include "hybrids/ds/nmp_skiplist.hpp"
#include "hybrids/ds/seq_skiplist.hpp"
#include "hybrids/util/rng.hpp"

namespace hd = hybrids::ds;
namespace hu = hybrids::util;
using hybrids::Key;
using hybrids::Value;

// ---------- SeqSkipList ----------

TEST(SeqSkipList, InsertReadRemove) {
  hd::SeqSkipList list(4);
  hu::Xoshiro256 rng(1);
  for (Key k = 10; k <= 100; k += 10) {
    auto [node, existed] = list.insert(k, k * 2, hd::random_height(rng, 4), nullptr, list.head());
    EXPECT_FALSE(existed);
    EXPECT_EQ(node->key, k);
  }
  EXPECT_EQ(list.size(), 10u);
  EXPECT_TRUE(list.validate());
  for (Key k = 10; k <= 100; k += 10) {
    hd::SeqSkipList::Node* n = list.read(k, list.head());
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->value, k * 2);
  }
  EXPECT_EQ(list.read(15, list.head()), nullptr);
  EXPECT_TRUE(list.remove(50, list.head()));
  EXPECT_FALSE(list.remove(50, list.head()));
  EXPECT_EQ(list.read(50, list.head()), nullptr);
  EXPECT_EQ(list.size(), 9u);
  EXPECT_TRUE(list.validate());
}

TEST(SeqSkipList, DuplicateInsertFails) {
  hd::SeqSkipList list(4);
  auto r1 = list.insert(7, 1, 2, nullptr, list.head());
  EXPECT_FALSE(r1.existed);
  auto r2 = list.insert(7, 9, 3, nullptr, list.head());
  EXPECT_TRUE(r2.existed);
  EXPECT_EQ(r2.node, r1.node);
  EXPECT_EQ(list.read(7, list.head())->value, 1u);
}

TEST(SeqSkipList, RemovedNodeIsStaleButInspectable) {
  hd::SeqSkipList list(4);
  auto [node, existed] = list.insert(5, 50, 4, nullptr, list.head());
  ASSERT_FALSE(existed);
  EXPECT_FALSE(hd::SeqSkipList::is_stale(node));
  EXPECT_TRUE(list.remove(5, list.head()));
  // The paper's stale-begin detection: memory is retained, mark visible.
  EXPECT_TRUE(hd::SeqSkipList::is_stale(node));
}

TEST(SeqSkipList, BeginNodeTraversalFindsSuffix) {
  hd::SeqSkipList list(3);
  hd::SeqSkipList::Node* begin = nullptr;
  for (Key k = 1; k <= 50; ++k) {
    auto [node, existed] = list.insert(k, k, 3, nullptr, list.head());
    if (k == 25) begin = node;  // full-height node usable as begin
  }
  ASSERT_NE(begin, nullptr);
  // Traversal from the shortcut must find all keys strictly beyond the begin
  // node (the hybrid protocol always supplies a strict predecessor).
  for (Key k = 26; k <= 50; ++k) {
    EXPECT_NE(list.read(k, begin), nullptr) << k;
  }
  EXPECT_EQ(list.read(26, begin)->value, 26u);
}

TEST(SeqSkipList, MatchesReferenceModel) {
  hd::SeqSkipList list(8);
  std::map<Key, Value> model;
  hu::Xoshiro256 rng(42);
  for (int i = 0; i < 20000; ++i) {
    Key k = static_cast<Key>(rng.next_below(2000));
    switch (rng.next_below(3)) {
      case 0: {
        Value v = static_cast<Value>(rng.next());
        bool inserted = !list.insert(k, v, hd::random_height(rng, 8), nullptr, list.head()).existed;
        EXPECT_EQ(inserted, model.emplace(k, v).second);
        break;
      }
      case 1:
        EXPECT_EQ(list.remove(k, list.head()), model.erase(k) > 0);
        break;
      default: {
        hd::SeqSkipList::Node* n = list.read(k, list.head());
        auto it = model.find(k);
        ASSERT_EQ(n != nullptr, it != model.end());
        if (n != nullptr) { EXPECT_EQ(n->value, it->second); }
      }
    }
  }
  EXPECT_EQ(list.size(), model.size());
  EXPECT_TRUE(list.validate());
}

TEST(SeqSkipList, FingerFindMatchesPlainFind) {
  // find_finger must return exactly what find returns — same found node and
  // the same preds/succs arrays — across ascending-key sequences, which is
  // the access pattern the combiner's key-sorted batches produce.
  constexpr int kHeight = 8;
  hd::SeqSkipList list(kHeight);
  hu::Xoshiro256 rng(7);
  for (int i = 0; i < 500; ++i) {
    const Key k = static_cast<Key>(rng.next_below(5000));
    list.insert(k, k, hd::random_height(rng, kHeight), nullptr, list.head());
  }
  for (int round = 0; round < 200; ++round) {
    hd::SeqSkipList::Finger fg;
    // Ascending probe sequence with repeats (equal keys stay legal).
    std::vector<Key> probes;
    Key k = 0;
    for (int i = 0; i < 32; ++i) {
      k += static_cast<Key>(rng.next_below(300));
      probes.push_back(k);
      if (rng.next_below(4) == 0) probes.push_back(k);
    }
    for (Key probe : probes) {
      hd::SeqSkipList::Node* preds[hd::SeqSkipList::kMaxLevels];
      hd::SeqSkipList::Node* succs[hd::SeqSkipList::kMaxLevels];
      hd::SeqSkipList::Node* fpreds[hd::SeqSkipList::kMaxLevels];
      hd::SeqSkipList::Node* fsuccs[hd::SeqSkipList::kMaxLevels];
      hd::SeqSkipList::Node* plain = list.find(probe, list.head(), preds, succs);
      hd::SeqSkipList::Node* fingered =
          list.find_finger(probe, list.head(), fpreds, fsuccs, fg);
      ASSERT_EQ(fingered, plain) << "key " << probe;
      for (int lvl = 0; lvl < kHeight; ++lvl) {
        ASSERT_EQ(fpreds[lvl], preds[lvl]) << "pred lvl " << lvl << " key " << probe;
        ASSERT_EQ(fsuccs[lvl], succs[lvl]) << "succ lvl " << lvl << " key " << probe;
      }
    }
    EXPECT_GT(fg.hits, 0u);  // long ascending runs must actually reuse it
  }
}

TEST(NmpSkipList, BatchApplyMatchesSequentialApply) {
  // The combiner's batch path (apply_batch: ascending order + finger) must
  // produce exactly the responses and final structure of the one-at-a-time
  // handler applied in the same order. Mixed ops, duplicate keys included.
  constexpr int kHeight = 8;
  hd::SeqSkipList batched(kHeight);
  hd::SeqSkipList sequential(kHeight);
  hu::Xoshiro256 rng(11);
  for (int pass = 0; pass < 400; ++pass) {
    const std::size_t n = 2 + rng.next_below(15);
    std::vector<hybrids::nmp::Request> reqs(n);
    std::vector<hybrids::nmp::Response> resp_a(n), resp_b(n);
    for (std::size_t i = 0; i < n; ++i) {
      reqs[i].op = static_cast<hybrids::nmp::OpCode>(rng.next_below(4));
      reqs[i].key = static_cast<Key>(rng.next_below(3000));
      reqs[i].value = static_cast<Value>(rng.next());
      reqs[i].aux = 1 + rng.next_below(kHeight);  // insert tower height
    }
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return reqs[a].key < reqs[b].key;
    });
    std::vector<hybrids::nmp::BatchOp> ops(n);
    for (std::size_t i = 0; i < n; ++i) {
      ops[i] = {&reqs[idx[i]], &resp_a[idx[i]]};
    }
    hd::NmpSkipList::apply_batch(batched, ops.data(), n, nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      hd::NmpSkipList::apply(sequential, reqs[idx[i]], resp_b[idx[i]]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(resp_a[i].ok, resp_b[i].ok) << "pass " << pass << " op " << i;
      ASSERT_EQ(resp_a[i].value, resp_b[i].value) << "pass " << pass << " op " << i;
    }
    ASSERT_EQ(batched.size(), sequential.size()) << "pass " << pass;
  }
  EXPECT_TRUE(batched.validate());
  EXPECT_TRUE(sequential.validate());
  // Identical level-0 contents.
  const hd::SeqSkipList::Node* a = batched.head()->next[0];
  const hd::SeqSkipList::Node* b = sequential.head()->next[0];
  while (a != nullptr && b != nullptr) {
    ASSERT_EQ(a->key, b->key);
    ASSERT_EQ(a->value, b->value);
    a = a->next[0];
    b = b->next[0];
  }
  EXPECT_EQ(a, nullptr);
  EXPECT_EQ(b, nullptr);
}

// ---------- LfSkipList ----------

TEST(LfSkipList, SequentialMatchesReferenceModel) {
  hd::LfSkipList list(12);
  std::map<Key, Value> model;
  hu::Xoshiro256 rng(7);
  for (int i = 0; i < 30000; ++i) {
    Key k = static_cast<Key>(1 + rng.next_below(3000));
    switch (rng.next_below(4)) {
      case 0: {
        Value v = static_cast<Value>(rng.next());
        int h = hd::random_height(rng, 12);
        EXPECT_EQ(list.insert(k, v, h), model.emplace(k, v).second);
        break;
      }
      case 1:
        EXPECT_EQ(list.remove(k), model.erase(k) > 0);
        break;
      case 2: {
        Value v = static_cast<Value>(rng.next());
        bool present = model.count(k) > 0;
        EXPECT_EQ(list.update(k, v), present);
        if (present) model[k] = v;
        break;
      }
      default: {
        Value v = 0;
        auto it = model.find(k);
        ASSERT_EQ(list.get(k, v), it != model.end());
        if (it != model.end()) { EXPECT_EQ(v, it->second); }
      }
    }
  }
  EXPECT_EQ(list.size(), model.size());
  EXPECT_TRUE(list.validate());
}

TEST(LfSkipList, ConcurrentStripedInsertsAllLand) {
  hd::LfSkipList list(16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      hu::Xoshiro256 rng(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        Key k = static_cast<Key>(1 + i * kThreads + t);  // disjoint stripes
        ASSERT_TRUE(list.insert(k, k, hd::random_height(rng, 16)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(list.size(), std::size_t{kThreads} * kPerThread);
  EXPECT_TRUE(list.validate());
  Value v = 0;
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    ASSERT_TRUE(list.get(static_cast<Key>(1 + i), v));
  }
}

TEST(LfSkipList, ConcurrentInsertRemoveContention) {
  // All threads fight over the same small key range; afterwards the list
  // must equal the set of keys whose net effect was an insert.
  hd::LfSkipList list(12);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<long long> net[64] = {};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      hu::Xoshiro256 rng(500 + t);
      for (int i = 0; i < 5000; ++i) {
        Key k = static_cast<Key>(1 + rng.next_below(64));
        if (rng.next() & 1) {
          if (list.insert(k, k, hd::random_height(rng, 12))) net[k - 1].fetch_add(1);
        } else {
          if (list.remove(k)) net[k - 1].fetch_sub(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(list.validate());
  for (Key k = 1; k <= 64; ++k) {
    const long long n = net[k - 1].load();
    ASSERT_TRUE(n == 0 || n == 1) << "net effect must be 0 or 1";
    EXPECT_EQ(list.contains(k), n == 1) << "key " << k;
  }
}

TEST(LfSkipList, VersionedUpdateKeepsNewestValue) {
  hd::LfSkipList list(4);
  ASSERT_TRUE(list.insert(1, 10, 2));
  hd::LfSkipList::Node* n = list.get_node(1);
  ASSERT_NE(n, nullptr);
  hd::LfSkipList::update_versioned(n, 2, 222);
  hd::LfSkipList::update_versioned(n, 1, 111);  // stale version: ignored
  EXPECT_EQ(n->value_now(), 222u);
  hd::LfSkipList::update_versioned(n, 3, 333);
  EXPECT_EQ(n->value_now(), 333u);
}

// ---------- NmpSkipList ----------

namespace {
hd::NmpSkipList::Config nmp_config(std::uint32_t threads = 4) {
  hd::NmpSkipList::Config cfg;
  cfg.total_height = 12;
  cfg.partitions = 4;
  cfg.partition_width = 1 << 16;
  cfg.max_threads = threads;
  return cfg;
}
}  // namespace

TEST(NmpSkipList, BasicOps) {
  hd::NmpSkipList list(nmp_config());
  EXPECT_TRUE(list.insert(100, 1, 0));
  EXPECT_FALSE(list.insert(100, 2, 0));
  Value v = 0;
  EXPECT_TRUE(list.read(100, v, 0));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(list.update(100, 9, 0));
  EXPECT_TRUE(list.read(100, v, 0));
  EXPECT_EQ(v, 9u);
  EXPECT_TRUE(list.remove(100, 0));
  EXPECT_FALSE(list.read(100, v, 0));
  EXPECT_TRUE(list.validate());
}

TEST(NmpSkipList, KeysLandInCorrectPartitions) {
  hd::NmpSkipList list(nmp_config());
  // One key per partition range.
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(list.insert(p * (1u << 16) + 5, p, 0));
  }
  EXPECT_EQ(list.size(), 4u);
  Value v = 0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(list.read(p * (1u << 16) + 5, v, 0));
    EXPECT_EQ(v, p);
  }
}

TEST(NmpSkipList, ConcurrentMixedWorkload) {
  hd::NmpSkipList list(nmp_config(4));
  std::vector<std::thread> threads;
  std::atomic<long long> net[128] = {};
  for (std::uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      hu::Xoshiro256 rng(t);
      for (int i = 0; i < 2000; ++i) {
        Key k = static_cast<Key>(rng.next_below(128)) * 1024;
        if (rng.next() & 1) {
          if (list.insert(k, k, t)) net[k / 1024].fetch_add(1);
        } else {
          if (list.remove(k, t)) net[k / 1024].fetch_sub(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(list.validate());
  Value v = 0;
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(list.read(static_cast<Key>(i) * 1024, v, 0), net[i].load() == 1);
  }
}

TEST(NmpSkipList, AsyncPipeline) {
  hd::NmpSkipList list(nmp_config());
  std::vector<hybrids::nmp::OpHandle> handles;
  for (Key k = 0; k < 64; ++k) {
    auto h = list.insert_async(k * 7, k, 0);
    if (!h.valid) {
      ASSERT_FALSE(handles.empty());
      EXPECT_TRUE(list.retrieve(handles.front()).ok);
      handles.erase(handles.begin());
      h = list.insert_async(k * 7, k, 0);
      ASSERT_TRUE(h.valid);
    }
    handles.push_back(h);
  }
  for (auto& h : handles) EXPECT_TRUE(list.retrieve(h).ok);
  EXPECT_EQ(list.size(), 64u);
}

// ---------- HybridSkipList ----------

namespace {
hd::HybridSkipList::Config hybrid_config(std::uint32_t threads = 4) {
  hd::HybridSkipList::Config cfg;
  cfg.total_height = 12;
  cfg.nmp_height = 6;
  cfg.partitions = 4;
  cfg.partition_width = 1 << 16;
  cfg.max_threads = threads;
  return cfg;
}
}  // namespace

TEST(HybridSkipList, SplitSizingRule) {
  // 2^20 keys, 1MB LLC, 128B nodes: host holds levels with 2^x * 128 <= 1MB
  // -> x = 13 host levels, 20 - 13 = 7 NMP levels.
  EXPECT_EQ(hd::HybridSkipList::nmp_height_for_cache(1ull << 20, 1 << 20, 128), 7);
  // Tiny cache: nearly everything NMP-managed, at least 1 host level.
  EXPECT_GE(hd::HybridSkipList::nmp_height_for_cache(1ull << 20, 256, 128), 18);
}

TEST(HybridSkipList, BasicOps) {
  hd::HybridSkipList list(hybrid_config());
  EXPECT_TRUE(list.insert(1000, 1, 0));
  EXPECT_FALSE(list.insert(1000, 2, 0));
  Value v = 0;
  EXPECT_TRUE(list.read(1000, v, 0));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(list.update(1000, 5, 0));
  EXPECT_TRUE(list.read(1000, v, 0));
  EXPECT_EQ(v, 5u);
  EXPECT_FALSE(list.read(999, v, 0));
  EXPECT_TRUE(list.remove(1000, 0));
  EXPECT_FALSE(list.remove(1000, 0));
  EXPECT_FALSE(list.read(1000, v, 0));
  EXPECT_TRUE(list.validate());
}

TEST(HybridSkipList, ManyKeysAcrossPartitionsWithTallAndShortNodes) {
  hd::HybridSkipList list(hybrid_config());
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(list.insert(static_cast<Key>(i * 37), static_cast<Value>(i), 0));
  }
  EXPECT_EQ(list.size(), static_cast<std::size_t>(kN));
  // With 6 host levels over 5000 keys, a meaningful host subset must exist.
  EXPECT_GT(list.host_size(), 0u);
  EXPECT_LT(list.host_size(), static_cast<std::size_t>(kN));
  EXPECT_TRUE(list.validate());
  Value v = 0;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(list.read(static_cast<Key>(i * 37), v, 0)) << i;
    ASSERT_EQ(v, static_cast<Value>(i));
  }
}

TEST(HybridSkipList, SequentialMatchesReferenceModel) {
  hd::HybridSkipList list(hybrid_config());
  std::map<Key, Value> model;
  hu::Xoshiro256 rng(11);
  for (int i = 0; i < 20000; ++i) {
    Key k = static_cast<Key>(rng.next_below(4000) * 19);
    switch (rng.next_below(4)) {
      case 0: {
        Value v = static_cast<Value>(rng.next());
        EXPECT_EQ(list.insert(k, v, 0), model.emplace(k, v).second);
        break;
      }
      case 1:
        EXPECT_EQ(list.remove(k, 0), model.erase(k) > 0);
        break;
      case 2: {
        Value v = static_cast<Value>(rng.next());
        bool present = model.count(k) > 0;
        EXPECT_EQ(list.update(k, v, 0), present);
        if (present) model[k] = v;
        break;
      }
      default: {
        Value v = 0;
        auto it = model.find(k);
        ASSERT_EQ(list.read(k, v, 0), it != model.end()) << "key " << k;
        if (it != model.end()) { ASSERT_EQ(v, it->second); }
      }
    }
  }
  EXPECT_EQ(list.size(), model.size());
  EXPECT_TRUE(list.validate());
}

TEST(HybridSkipList, ConcurrentMixedWorkload) {
  hd::HybridSkipList list(hybrid_config(4));
  std::vector<std::thread> threads;
  std::atomic<long long> net[256] = {};
  for (std::uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      hu::Xoshiro256 rng(900 + t);
      for (int i = 0; i < 4000; ++i) {
        Key k = static_cast<Key>(rng.next_below(256)) * 769;
        switch (rng.next_below(3)) {
          case 0:
            if (list.insert(k, k, t)) net[k / 769].fetch_add(1);
            break;
          case 1:
            if (list.remove(k, t)) net[k / 769].fetch_sub(1);
            break;
          default: {
            Value v = 0;
            (void)list.read(k, v, t);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(list.validate());
  Value v = 0;
  for (int i = 0; i < 256; ++i) {
    const long long n = net[i].load();
    ASSERT_TRUE(n == 0 || n == 1);
    EXPECT_EQ(list.read(static_cast<Key>(i) * 769, v, 0), n == 1) << i;
  }
}

TEST(HybridSkipList, NonBlockingTicketsCompleteCorrectly) {
  hd::HybridSkipList list(hybrid_config());
  // Insert a batch non-blockingly, draining when slots are exhausted.
  std::vector<hd::HybridSkipList::Ticket> pending;
  auto drain_one = [&] {
    ASSERT_FALSE(pending.empty());
    EXPECT_TRUE(list.finish(pending.front()));
    pending.erase(pending.begin());
  };
  for (Key k = 1; k <= 200; ++k) {
    auto t = list.insert_async(k * 11, k, 0);
    while (t.state == hd::HybridSkipList::Ticket::State::kRejected) {
      drain_one();
      t = list.insert_async(k * 11, k, 0);
    }
    pending.push_back(t);
  }
  while (!pending.empty()) drain_one();
  EXPECT_EQ(list.size(), 200u);
  EXPECT_TRUE(list.validate());

  // Non-blocking reads return the inserted values.
  for (Key k = 1; k <= 200; ++k) {
    auto t = list.read_async(k * 11, 0);
    while (t.state == hd::HybridSkipList::Ticket::State::kRejected) {
      t = list.read_async(k * 11, 0);
    }
    Value v = 0;
    EXPECT_TRUE(list.finish(t, &v));
    EXPECT_EQ(v, k);
  }
  // Non-blocking removes drain the structure.
  for (Key k = 1; k <= 200; ++k) {
    auto t = list.remove_async(k * 11, 0);
    while (t.state == hd::HybridSkipList::Ticket::State::kRejected) {
      t = list.remove_async(k * 11, 0);
    }
    EXPECT_TRUE(list.finish(t));
  }
  EXPECT_EQ(list.size(), 0u);
}

TEST(HybridSkipList, UpdateRefreshesHostMirror) {
  // Insert until at least one tall node exists, then update all keys and
  // confirm reads (which may be served from the host mirror) see new values.
  hd::HybridSkipList list(hybrid_config());
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(list.insert(k * 3, 1, 0));
  ASSERT_GT(list.host_size(), 0u);
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(list.update(k * 3, 2, 0));
  Value v = 0;
  for (Key k = 1; k <= 500; ++k) {
    ASSERT_TRUE(list.read(k * 3, v, 0));
    ASSERT_EQ(v, 2u) << "host mirror must reflect updates (key " << k * 3 << ")";
  }
}
