// Tests for the fat-node host index (ds/fat_skiplist.hpp) and the HostIndex
// facade that selects between it and the pointer-node LfSkipList:
//  - oracle-exact single-thread behaviour (point ops, churn, scans, splits,
//    node death and re-insertion into a dead node's range),
//  - the seqlock/B-link concurrency story (split-during-descent readers,
//    disjoint-range churn, removal races) — these double as the TSan targets,
//  - EBR retirement bounds and quiescent drain for both entries and fat nodes,
//  - HostIndex facade parity across both engines and shortcut-token
//    freshness semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include <random>

#include "hybrids/ds/host_index.hpp"
#include "hybrids/mem/ebr.hpp"
#include "hybrids/telemetry/registry.hpp"
#include "hybrids/util/rng.hpp"

namespace hd = hybrids::ds;
namespace hu = hybrids::util;
using hybrids::Key;
using hybrids::ScanEntry;
using hybrids::Value;

namespace {
// Pushes the global EBR epoch forward a couple of steps; with every thread
// quiescent this makes previously retired nodes reclaimable.
void mem_advance() {
  hybrids::mem::Ebr::try_advance();
  hybrids::mem::Ebr::try_advance();
}
}  // namespace

#if !defined(HYBRIDS_NO_FATNODE)

// ---------- FatSkipList: single-threaded, oracle-exact ----------

TEST(FatSkipList, InsertFindRemove) {
  hd::FatSkipList list(8);
  EXPECT_TRUE(list.validate());
  for (Key k = 10; k <= 100; k += 10) {
    EXPECT_TRUE(list.insert(k, k * 2));
  }
  EXPECT_FALSE(list.insert(50, 999)) << "duplicate insert must fail";
  EXPECT_EQ(list.size(), 10u);
  EXPECT_TRUE(list.validate());
  for (Key k = 10; k <= 100; k += 10) {
    Value v = 0;
    ASSERT_TRUE(list.get(k, v)) << "key " << k;
    EXPECT_EQ(v, k * 2);
  }
  EXPECT_FALSE(list.contains(15));
  EXPECT_TRUE(list.remove(50));
  EXPECT_FALSE(list.remove(50));
  EXPECT_FALSE(list.contains(50));
  EXPECT_EQ(list.size(), 9u);
  EXPECT_TRUE(list.validate());
}

TEST(FatSkipList, ViewPredSemantics) {
  hd::FatSkipList list(8);
  for (Key k : {20u, 40u, 60u}) ASSERT_TRUE(list.insert(k, k));
  hd::FatSkipList::View w;
  // Exact hit.
  EXPECT_TRUE(list.find(40, w));
  ASSERT_NE(w.match, nullptr);
  EXPECT_EQ(w.match->key, 40u);
  ASSERT_NE(w.leaf, nullptr);
  EXPECT_TRUE(list.node_version_is(w.leaf, w.leaf_version));
  // Miss in the middle: pred is the largest key below.
  EXPECT_FALSE(list.find(41, w));
  EXPECT_EQ(w.match, nullptr);
  ASSERT_NE(w.pred, nullptr);
  EXPECT_EQ(w.pred->key, 40u);
  // Miss before everything: no pred.
  EXPECT_FALSE(list.find(5, w));
  EXPECT_EQ(w.match, nullptr);
  EXPECT_EQ(w.pred, nullptr);
}

TEST(FatSkipList, SplitsKeepOrderAndRouting) {
  hd::FatSkipList list(8);
  // Way past one node's 8 slots on several levels; interleave ascending and
  // descending runs so splits land in the middle and at the edges.
  std::vector<Key> keys;
  for (Key k = 1; k <= 512; ++k) keys.push_back(k * 3);
  std::mt19937 shuffle_rng(42);
  std::shuffle(keys.begin(), keys.end(), shuffle_rng);
  for (Key k : keys) ASSERT_TRUE(list.insert(k, k + 1));
  EXPECT_EQ(list.size(), keys.size());
  ASSERT_TRUE(list.validate());
  // Every key resident and in order under for_each_entry.
  std::vector<Key> seen;
  list.for_each_entry([&](hd::FatSkipList::Entry* e) { seen.push_back(e->key); });
  ASSERT_EQ(seen.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(seen, keys);
}

TEST(FatSkipList, SplitCounterAdvances) {
  const std::uint64_t before = hybrids::telemetry::snapshot().counter_total(
      hybrids::telemetry::names::kMemFatnodeSplits);
  hd::FatSkipList list(8);
  for (Key k = 1; k <= 256; ++k) ASSERT_TRUE(list.insert(k, k));
  const std::uint64_t after = hybrids::telemetry::snapshot().counter_total(
      hybrids::telemetry::names::kMemFatnodeSplits);
#if !defined(HYBRIDS_NO_TELEMETRY)
  // 256 keys through 8-slot leaves must split many times (leaf level alone
  // needs ~256/4 steady-state splits).
  EXPECT_GE(after - before, 30u);
#else
  EXPECT_EQ(after, before);
#endif
}

TEST(FatSkipList, RemoveEmptiesNodesAndRangeStaysInsertable) {
  hd::FatSkipList list(8);
  for (Key k = 1; k <= 256; ++k) ASSERT_TRUE(list.insert(k, k));
  // Carve out a whole middle band: every fat node covering it empties and
  // dies, routing entries above must follow.
  for (Key k = 65; k <= 192; ++k) ASSERT_TRUE(list.remove(k));
  EXPECT_EQ(list.size(), 128u);
  ASSERT_TRUE(list.validate());
  for (Key k = 65; k <= 192; ++k) EXPECT_FALSE(list.contains(k));
  EXPECT_TRUE(list.contains(64));
  EXPECT_TRUE(list.contains(193));
  // The dead band accepts fresh inserts (descents route around corpses).
  for (Key k = 65; k <= 192; ++k) ASSERT_TRUE(list.insert(k, k * 7));
  EXPECT_EQ(list.size(), 256u);
  ASSERT_TRUE(list.validate());
  Value v = 0;
  ASSERT_TRUE(list.get(100, v));
  EXPECT_EQ(v, 700u);
}

TEST(FatSkipList, OracleChurn) {
  hd::FatSkipList list(8);
  std::map<Key, Value> oracle;
  hu::Xoshiro256 rng(0xFA7);
  for (int i = 0; i < 20000; ++i) {
    const Key k = static_cast<Key>(rng.next() % 2048) + 1;
    switch (rng.next() % 3) {
      case 0: {  // insert
        const Value v = static_cast<Value>(rng.next());
        const bool fresh = oracle.emplace(k, v).second;
        EXPECT_EQ(list.insert(k, v), fresh) << "key " << k;
        break;
      }
      case 1: {  // remove
        const bool present = oracle.erase(k) != 0;
        EXPECT_EQ(list.remove(k), present) << "key " << k;
        break;
      }
      default: {  // read
        Value v = 0;
        auto it = oracle.find(k);
        if (it != oracle.end()) {
          ASSERT_TRUE(list.get(k, v)) << "key " << k;
          EXPECT_EQ(v, it->second);
        } else {
          EXPECT_FALSE(list.get(k, v)) << "key " << k;
        }
        break;
      }
    }
  }
  EXPECT_EQ(list.size(), oracle.size());
  ASSERT_TRUE(list.validate());
  std::vector<std::pair<Key, Value>> seen;
  list.for_each_entry([&](hd::FatSkipList::Entry* e) {
    seen.emplace_back(e->key, e->value.load(std::memory_order_relaxed));
  });
  ASSERT_EQ(seen.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : seen) {
    EXPECT_EQ(k, it->first);
    ++it;
  }
}

TEST(FatSkipList, ScanMatchesOracle) {
  hd::FatSkipList list(8);
  std::map<Key, Value> oracle;
  hu::Xoshiro256 rng(0x5CA9);
  for (int i = 0; i < 1500; ++i) {
    const Key k = static_cast<Key>(rng.next() % 10000) + 1;
    const Value v = static_cast<Value>(rng.next());
    if (oracle.emplace(k, v).second) {
      ASSERT_TRUE(list.insert(k, v));
    }
  }
  std::vector<ScanEntry> out(256);
  for (int probe = 0; probe < 200; ++probe) {
    const Key start = static_cast<Key>(rng.next() % 11000);
    const std::size_t want = 1 + rng.next() % 200;
    const std::size_t got = list.scan(start, want, out.data());
    auto it = oracle.lower_bound(start);
    std::size_t expect = 0;
    for (; it != oracle.end() && expect < want; ++it, ++expect) {
      ASSERT_LT(expect, got) << "scan(" << start << ") short";
      EXPECT_EQ(out[expect].key, it->first);
      EXPECT_EQ(out[expect].value, it->second);
    }
    EXPECT_EQ(got, expect) << "scan(" << start << ") long";
  }
  // Scan over a freshly emptied band stitches across dead leaves.
  auto cut_lo = oracle.lower_bound(3000);
  auto cut_hi = oracle.lower_bound(6000);
  for (auto itc = cut_lo; itc != cut_hi; ++itc) ASSERT_TRUE(list.remove(itc->first));
  oracle.erase(oracle.lower_bound(3000), oracle.lower_bound(6000));
  const std::size_t got = list.scan(2900, 64, out.data());
  auto it = oracle.lower_bound(2900);
  std::size_t expect = 0;
  for (; it != oracle.end() && expect < 64; ++it, ++expect) {
    ASSERT_LT(expect, got);
    EXPECT_EQ(out[expect].key, it->first);
  }
  EXPECT_EQ(got, expect);
}

// ---------- FatSkipList: EBR retirement ----------

TEST(FatSkipList, RetireBoundedAndDrainsQuiescent) {
  hd::FatSkipList list(8);
  std::size_t high_water = 0;
  for (int round = 0; round < 8; ++round) {
    for (Key k = 1; k <= 512; ++k) ASSERT_TRUE(list.insert(k, k));
    for (Key k = 1; k <= 512; ++k) ASSERT_TRUE(list.remove(k));
    high_water = std::max(high_water, list.retired_count());
  }
  // maybe_reclaim's periodic drain keeps the backlog bounded even though we
  // retired 4096 entries plus every emptied fat node.
  EXPECT_LE(high_water, 2048u) << "retire backlog grew without bound";
  for (int i = 0; i < 6 && list.retired_count() > 0; ++i) {
    mem_advance();
    (void)list.reclaim_retired();
  }
  EXPECT_EQ(list.retired_count(), 0u);
  EXPECT_EQ(list.size(), 0u);
  ASSERT_TRUE(list.validate());
  // The drained structure is fully reusable.
  for (Key k = 1; k <= 64; ++k) ASSERT_TRUE(list.insert(k, k));
  EXPECT_EQ(list.size(), 64u);
  ASSERT_TRUE(list.validate());
}

// ---------- FatSkipList: concurrency (TSan targets) ----------

TEST(FatSkipList, SplitDuringDescentReadersStaySound) {
  hd::FatSkipList list(12);
  // Stable odd keys the readers assert on; the writer pumps even keys in and
  // out to force splits (and node deaths) under the readers' feet.
  constexpr Key kStable = 2048;
  for (Key k = 1; k < 2 * kStable; k += 2) ASSERT_TRUE(list.insert(k, k + 1));
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  const int reader_count = 3;
  for (int t = 0; t < reader_count; ++t) {
    readers.emplace_back([&, t] {
      hu::Xoshiro256 rng(100 + t);
      std::vector<ScanEntry> out(64);
      while (!stop.load(std::memory_order_relaxed)) {
        const Key k = (static_cast<Key>(rng.next() % kStable)) * 2 + 1;
        Value v = 0;
        if (!list.get(k, v) || v != k + 1) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        // Scans must be strictly increasing and must not skip any stable
        // (odd) key inside the range they claim to cover.
        const std::size_t got = list.scan(k, 16, out.data());
        Key prev = 0;
        std::size_t odd_seen = 0;
        for (std::size_t i = 0; i < got; ++i) {
          if (i > 0 && out[i].key <= prev) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          prev = out[i].key;
          if ((out[i].key & 1u) != 0 && out[i].value != out[i].key + 1) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          if ((out[i].key & 1u) != 0) ++odd_seen;
        }
        if (got > 0) {
          const auto odds_upto = [](Key x) {
            return static_cast<std::size_t>((x + 1) / 2);
          };
          if (odd_seen != odds_upto(prev) - odds_upto(k - 1)) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::thread writer([&] {
    hu::Xoshiro256 rng(7);
    for (int round = 0; round < 200; ++round) {
      for (Key k = 2; k < 2 * kStable; k += 2) {
        if ((rng.next() & 3u) == 0) list.insert(k, k);
      }
      for (Key k = 2; k < 2 * kStable; k += 2) {
        if ((rng.next() & 1u) == 0) list.remove(k);
      }
    }
    stop.store(true, std::memory_order_relaxed);
  });
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);
  for (Key k = 1; k < 2 * kStable; k += 2) {
    ASSERT_TRUE(list.contains(k)) << "stable key " << k << " lost";
  }
  ASSERT_TRUE(list.validate());
}

TEST(FatSkipList, DisjointRangeChurnValidates) {
  hd::FatSkipList list(12);
  const int threads = 4;
  const Key span = 4096;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const Key lo = static_cast<Key>(t) * span + 1;
      hu::Xoshiro256 rng(900 + t);
      std::set<Key> mine;
      for (int i = 0; i < 12000; ++i) {
        const Key k = lo + static_cast<Key>(rng.next() % span);
        if (mine.count(k) != 0) {
          const bool removed = list.remove(k);
          if (!removed) std::abort();  // disjoint ranges: only we touch k
          mine.erase(k);
        } else {
          if (!list.insert(k, k)) std::abort();
          mine.insert(k);
        }
      }
      for (Key k : mine) {
        if (!list.contains(k)) std::abort();
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_TRUE(list.validate());
  for (int i = 0; i < 6 && list.retired_count() > 0; ++i) {
    mem_advance();
    (void)list.reclaim_retired();
  }
  EXPECT_EQ(list.retired_count(), 0u);
}

TEST(FatSkipList, ContendedSameKeyInsertRemove) {
  hd::FatSkipList list(8);
  // All threads fight over one small key set: exercises locked-owner retries,
  // dup detection, remove-of-replaced-incarnation, and node death/revival.
  const int threads = 4;
  constexpr Key kKeys = 32;
  std::atomic<long> net[kKeys] = {};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      hu::Xoshiro256 rng(3000 + t);
      for (int i = 0; i < 20000; ++i) {
        const Key k = static_cast<Key>(rng.next() % kKeys) + 1;
        if ((rng.next() & 1u) != 0) {
          if (list.insert(k, k)) net[k - 1].fetch_add(1);
        } else {
          if (list.remove(k)) net[k - 1].fetch_sub(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_TRUE(list.validate());
  std::size_t resident = 0;
  for (Key k = 1; k <= kKeys; ++k) {
    const long n = net[k - 1].load();
    ASSERT_TRUE(n == 0 || n == 1) << "key " << k << " net " << n;
    EXPECT_EQ(list.contains(k), n == 1) << "key " << k;
    resident += static_cast<std::size_t>(n);
  }
  EXPECT_EQ(list.size(), resident);
}

#endif  // !HYBRIDS_NO_FATNODE

// ---------- HostIndex facade ----------

namespace {

// Restores the process-wide layout toggle on scope exit so test order
// never leaks a mode change.
struct LayoutToggle {
  explicit LayoutToggle(bool on) : prev(hd::fatnode_enabled()) {
    hd::set_fatnode_enabled(on);
  }
  ~LayoutToggle() { hd::set_fatnode_enabled(prev); }
  bool prev;
};

void exercise_host_index(bool want_fat) {
  LayoutToggle toggle(want_fat);
  hd::HostIndex idx(8);
  EXPECT_EQ(idx.fat(), want_fat && hd::kFatnodeCompiledIn);
  std::map<Key, Value> oracle;
  hu::Xoshiro256 rng(want_fat ? 0xF00D : 0xBEEF);
  for (int i = 0; i < 4000; ++i) {
    const Key k = static_cast<Key>(rng.next() % 512) + 1;
    if ((rng.next() & 1u) != 0) {
      hd::HostIndex::Node* n = idx.make_node(k, k * 2, 1);
      const bool fresh = idx.insert_node(n);
      if (!fresh) idx.free_unlinked(n);
      EXPECT_EQ(fresh, oracle.emplace(k, k * 2).second);
    } else {
      EXPECT_EQ(idx.remove(k), oracle.erase(k) != 0);
    }
  }
  EXPECT_EQ(idx.size(), oracle.size());
  EXPECT_TRUE(idx.validate());
  // Window semantics agree with the oracle in both engines.
  for (Key k = 1; k <= 513; ++k) {
    hd::HostIndex::Window w;
    const bool hit = idx.find(k, w);
    auto it = oracle.find(k);
    EXPECT_EQ(hit, it != oracle.end()) << "key " << k;
    if (hit) {
      ASSERT_NE(w.match, nullptr);
      EXPECT_EQ(w.match->key, k);
    } else {
      EXPECT_EQ(w.match, nullptr);
      auto lb = oracle.lower_bound(k);
      if (lb == oracle.begin()) {
        EXPECT_EQ(w.pred, nullptr) << "key " << k;
      } else {
        ASSERT_NE(w.pred, nullptr) << "key " << k;
        EXPECT_EQ(w.pred->key, std::prev(lb)->first) << "key " << k;
      }
    }
    // Whatever token the engine handed out must read fresh while untouched.
    EXPECT_TRUE(idx.shortcut_fresh(w.leaf, w.leaf_version)) << "key " << k;
  }
  // Ordered visitation.
  std::vector<Key> seen;
  idx.for_each_entry([&](hd::HostIndex::Node* n) { seen.push_back(n->key); });
  ASSERT_EQ(seen.size(), oracle.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  for (int i = 0; i < 6 && idx.retired_count() > 0; ++i) {
    mem_advance();
    (void)idx.reclaim_retired();
  }
  EXPECT_EQ(idx.retired_count(), 0u);
}

}  // namespace

TEST(HostIndex, PointerNodeEngineMatchesOracle) { exercise_host_index(false); }

TEST(HostIndex, FatEngineMatchesOracle) { exercise_host_index(true); }

#if !defined(HYBRIDS_NO_FATNODE)

TEST(HostIndex, ShortcutTokenGoesStaleOnLeafMutation) {
  LayoutToggle toggle(true);
  hd::HostIndex idx(8);
  for (Key k = 10; k <= 40; k += 10) {
    hd::HostIndex::Node* n = idx.make_node(k, k, 1);
    ASSERT_TRUE(idx.insert_node(n));
  }
  hd::HostIndex::Window w;
  ASSERT_TRUE(idx.find(20, w));
  ASSERT_NE(w.leaf, nullptr);
  ASSERT_TRUE(idx.shortcut_fresh(w.leaf, w.leaf_version));
  // Unrelated reads leave the token fresh.
  hd::HostIndex::Window w2;
  ASSERT_TRUE(idx.find(30, w2));
  EXPECT_TRUE(idx.shortcut_fresh(w.leaf, w.leaf_version));
  // Any mutation of that leaf — here an insert landing beside key 20 —
  // bumps the seqlock and retires the token.
  hd::HostIndex::Node* n = idx.make_node(21, 21, 1);
  ASSERT_TRUE(idx.insert_node(n));
  EXPECT_FALSE(idx.shortcut_fresh(w.leaf, w.leaf_version));
  // A re-descent mints a fresh token.
  ASSERT_TRUE(idx.find(20, w));
  EXPECT_TRUE(idx.shortcut_fresh(w.leaf, w.leaf_version));
}

#endif  // !HYBRIDS_NO_FATNODE
