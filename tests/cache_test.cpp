// Hot-key value/shortcut cache: unit semantics, structure integration, and
// a seeded multi-thread chaos sweep.
//
// The unit half pins the invalidation protocol in isolation:
//  * stale fills — a fill below the partition's write floor, or carrying a
//    pre-bounce generation, is discarded exactly like a stale
//    update_versioned (never installed, counted as an invalidation);
//  * budget — capacity is fixed when a tier is built, so resident bytes can
//    never exceed the configured byte budget, across fills, eviction churn,
//    and knob-driven rebuilds;
//  * failover — bump_generation() stops every hit filled under the old
//    generation, for both tiers, immediately.
//
// The integration half drives all three wired structures against std::map
// oracles with the cache deliberately tiny (eviction churn on every run):
// a cached read that ever disagrees with the oracle — after updates,
// removes, async writes, EBR reclaim cycles, or (with HYBRIDS_FAULTS) a
// bounced partition — fails exactly, not statistically.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "hybrids/cache/hot_cache.hpp"
#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/ds/nmp_skiplist.hpp"
#include "hybrids/types.hpp"
#include "hybrids/util/rng.hpp"

#if defined(HYBRIDS_FAULTS)
#include "hybrids/nmp/fault.hpp"
#endif

namespace hc = hybrids::cache;
namespace hd = hybrids::ds;
namespace hu = hybrids::util;

// The unit half constructs HotCache directly and runs in every build; the
// integration half needs the structures to own a cache, which
// -DHYBRIDS_NO_CACHE compiles out.
#define SKIP_IF_CACHE_COMPILED_OUT() \
  if (!hc::kCacheCompiledIn) GTEST_SKIP() << "built with HYBRIDS_NO_CACHE"
using hybrids::Key;
using hybrids::Value;

namespace {

hc::HotCache::Config unit_config(std::size_t budget, double ratio = 0.5,
                                 std::uint32_t partitions = 4) {
  hc::HotCache::Config c;
  c.budget_bytes = budget;
  c.value_ratio = ratio;
  c.partitions = partitions;
  return c;
}

// ---------------------------------------------------------------------------
// Unit: version floor (write invalidation) semantics
// ---------------------------------------------------------------------------

TEST(HotCacheUnit, FillLookupRoundtrip) {
  hc::HotCache cache(unit_config(16 * 1024));
  const std::uint64_t gen = cache.generation(0);
  cache.fill_value(7, /*part=*/0, 700, /*version=*/1, gen);
  Value v = 0;
  EXPECT_TRUE(cache.lookup_value(7, v));
  EXPECT_EQ(v, 700u);
  EXPECT_FALSE(cache.lookup_value(8, v)) << "absent key must miss";
  const hc::HotCache::Stats s = cache.stats();
  EXPECT_EQ(s.value_hits, 1u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(HotCacheUnit, WriteInvalidationErasesAndRaisesFloor) {
  hc::HotCache cache(unit_config(16 * 1024));
  const std::uint64_t gen = cache.generation(2);
  cache.fill_value(40, /*part=*/2, 1, /*version=*/1, gen);
  Value v = 0;
  ASSERT_TRUE(cache.lookup_value(40, v));

  // A write acknowledgment at version 5 erases the entry and raises the
  // partition's fill floor.
  cache.invalidate_value(40, /*part=*/2, /*version=*/5);
  EXPECT_FALSE(cache.lookup_value(40, v)) << "invalidated entry still hits";

  // An in-flight read that was served BEFORE the write now tries to fill
  // with its stale version: discarded, exactly like a stale
  // update_versioned.
  cache.fill_value(40, /*part=*/2, 2, /*version=*/3, gen);
  EXPECT_FALSE(cache.lookup_value(40, v)) << "stale fill was installed";

  // A fill at (or above) the floor is fresh and lands.
  cache.fill_value(40, /*part=*/2, 3, /*version=*/5, gen);
  ASSERT_TRUE(cache.lookup_value(40, v));
  EXPECT_EQ(v, 3u);

  // The floor is per-partition: partition 0 fills at low versions still land.
  cache.fill_value(41, /*part=*/0, 4, /*version=*/1, cache.generation(0));
  ASSERT_TRUE(cache.lookup_value(41, v));
  EXPECT_EQ(v, 4u);
}

TEST(HotCacheUnit, RacingOlderFillForSameKeyDiscarded) {
  hc::HotCache cache(unit_config(16 * 1024));
  const std::uint64_t gen = cache.generation(0);
  cache.fill_value(9, 0, 90, /*version=*/10, gen);
  cache.fill_value(9, 0, 50, /*version=*/7, gen);  // older racer arrives late
  Value v = 0;
  ASSERT_TRUE(cache.lookup_value(9, v));
  EXPECT_EQ(v, 90u) << "older racing fill overwrote a newer value";
}

// ---------------------------------------------------------------------------
// Unit: generation (failover) semantics
// ---------------------------------------------------------------------------

TEST(HotCacheUnit, GenerationBumpStopsValueHits) {
  hc::HotCache cache(unit_config(16 * 1024));
  const std::uint64_t gen = cache.generation(1);
  cache.fill_value(5, /*part=*/1, 55, /*version=*/1, gen);
  Value v = 0;
  ASSERT_TRUE(cache.lookup_value(5, v));

  cache.bump_generation(1);
  EXPECT_FALSE(cache.lookup_value(5, v))
      << "cached value survived a bounced partition";

  // Entries of OTHER partitions are untouched.
  cache.fill_value(6, /*part=*/3, 66, /*version=*/1, cache.generation(3));
  cache.bump_generation(1);
  ASSERT_TRUE(cache.lookup_value(6, v));
  EXPECT_EQ(v, 66u);
}

TEST(HotCacheUnit, StaleGenerationFillDiscarded) {
  hc::HotCache cache(unit_config(16 * 1024));
  const std::uint64_t gen0 = cache.generation(1);
  cache.bump_generation(1);  // partition bounced after the caller captured gen0
  cache.fill_value(12, /*part=*/1, 1, /*version=*/1, gen0);
  Value v = 0;
  EXPECT_FALSE(cache.lookup_value(12, v)) << "pre-bounce fill was installed";

  int node = 0;
  cache.fill_shortcut(12, /*part=*/1, &node, /*aux=*/0, gen0);
  hc::HotCache::Shortcut sc;
  EXPECT_FALSE(cache.lookup_shortcut(12, sc))
      << "pre-bounce shortcut fill was installed";
}

TEST(HotCacheUnit, ShortcutRoundtripEraseAndGenerationBump) {
  hc::HotCache cache(unit_config(16 * 1024));
  int node_a = 0;
  cache.fill_shortcut(21, /*part=*/3, &node_a, /*aux=*/0xABCD,
                      cache.generation(3));
  hc::HotCache::Shortcut sc;
  ASSERT_TRUE(cache.lookup_shortcut(21, sc));
  EXPECT_EQ(sc.node, &node_a);
  EXPECT_EQ(sc.aux, 0xABCDu);
  EXPECT_EQ(sc.partition, 3u) << "shortcut must name its owning partition";

  // The combiner reported the reference stale: erase drops it.
  cache.erase_shortcut(21);
  EXPECT_FALSE(cache.lookup_shortcut(21, sc));

  // Refill, then bounce the partition: the shortcut stops hitting too.
  cache.fill_shortcut(21, 3, &node_a, 1, cache.generation(3));
  ASSERT_TRUE(cache.lookup_shortcut(21, sc));
  cache.bump_generation(3);
  EXPECT_FALSE(cache.lookup_shortcut(21, sc))
      << "cached shortcut survived a bounced partition";
}

// ---------------------------------------------------------------------------
// Unit: budget is a hard byte ceiling
// ---------------------------------------------------------------------------

TEST(HotCacheUnit, BudgetNeverExceededAcrossFillChurn) {
  for (const std::size_t budget :
       {std::size_t{0}, std::size_t{64}, std::size_t{1024},
        std::size_t{16 * 1024}, std::size_t{256 * 1024}}) {
    hc::HotCache cache(unit_config(budget, 0.5));
    EXPECT_LE(cache.capacity_bytes(), budget) << "budget " << budget;
    int node = 0;
    // Far more keys than slots: every bucket sees eviction churn.
    for (Key k = 1; k <= 10000; ++k) {
      cache.fill_value(k, k % 4, k, /*version=*/1, cache.generation(k % 4));
      cache.fill_shortcut(k, k % 4, &node, 0, cache.generation(k % 4));
      if ((k & 255u) == 0) {
        EXPECT_LE(cache.bytes(), cache.capacity_bytes()) << "budget " << budget;
      }
    }
    EXPECT_LE(cache.bytes(), cache.capacity_bytes()) << "budget " << budget;
    EXPECT_LE(cache.capacity_bytes(), budget) << "budget " << budget;
  }
}

TEST(HotCacheUnit, ZeroBudgetAlwaysMisses) {
  hc::HotCache cache(unit_config(0));
  cache.fill_value(1, 0, 1, 1, cache.generation(0));
  Value v = 0;
  EXPECT_FALSE(cache.lookup_value(1, v));
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.capacity_bytes(), 0u);
}

TEST(HotCacheUnit, KnobRebuildsRespectNewBudgetAndDropEntries) {
  hc::HotCache cache(unit_config(64 * 1024, 0.5));
  for (Key k = 1; k <= 200; ++k) {
    cache.fill_value(k, 0, k, 1, cache.generation(0));
  }
  EXPECT_GT(cache.bytes(), 0u);

  // Shrink: the fresh tiers must fit the new budget; old entries are gone
  // (correct by construction — and concurrent readers of the superseded
  // tiers stay safe, exercised by the chaos runs below).
  cache.set_budget(4 * 1024);
  EXPECT_EQ(cache.budget(), 4u * 1024u);
  EXPECT_LE(cache.capacity_bytes(), 4u * 1024u);
  EXPECT_EQ(cache.bytes(), 0u);

  cache.set_value_ratio(0.9);
  EXPECT_DOUBLE_EQ(cache.value_ratio(), 0.9);
  EXPECT_LE(cache.capacity_bytes(), 4u * 1024u);
  // Ratio shifts capacity toward the value tier.
  EXPECT_GT(cache.value_capacity(), cache.shortcut_capacity());

  // The rebuilt tiers serve normally.
  cache.fill_value(7, 0, 70, 1, cache.generation(0));
  Value v = 0;
  ASSERT_TRUE(cache.lookup_value(7, v));
  EXPECT_EQ(v, 70u);
}

// ---------------------------------------------------------------------------
// Integration: NMP skiplist (value tier only)
// ---------------------------------------------------------------------------

hd::NmpSkipList::Config nmp_config(std::size_t cache_budget) {
  hd::NmpSkipList::Config cfg;
  cfg.total_height = 12;
  cfg.partitions = 4;
  cfg.partition_width = 1024;
  cfg.max_threads = 4;
  cfg.slots_per_thread = 2;
  cfg.cache_budget_bytes = cache_budget;
  return cfg;
}

TEST(CacheNmpSkipList, MixedChurnOracleExact) {
  SKIP_IF_CACHE_COMPILED_OUT();
  // Small budget: the hot set does not fit, so fills and evictions churn
  // while the oracle checks stay exact.
  hd::NmpSkipList list(nmp_config(2 * 1024));
  ASSERT_NE(list.hot_cache(), nullptr);
  std::map<Key, Value> oracle;
  hu::Xoshiro256 rng(11);
  for (int i = 0; i < 20000; ++i) {
    // Zipf-ish: half the traffic on 1/8 of the keyspace, so repeats hit.
    const Key k = 1 + ((rng.next() & 1) ? rng.next_below(256)
                                        : rng.next_below(2048));
    const auto v = static_cast<Value>(rng.next()) | 1u;
    switch (rng.next_below(10)) {
      case 0 ... 4: {  // read-heavy so the value tier earns hits
        Value out = 0;
        auto it = oracle.find(k);
        ASSERT_EQ(list.read(k, out, 0), it != oracle.end()) << k;
        if (it != oracle.end()) { ASSERT_EQ(out, it->second) << k; }
        break;
      }
      case 5 ... 6:
        ASSERT_EQ(list.insert(k, v, 0), oracle.emplace(k, v).second) << k;
        break;
      case 7 ... 8: {
        const bool present = oracle.count(k) > 0;
        ASSERT_EQ(list.update(k, v, 0), present) << k;
        if (present) oracle[k] = v;
        break;
      }
      default:
        ASSERT_EQ(list.remove(k, 0), oracle.erase(k) > 0) << k;
        break;
    }
  }
  EXPECT_EQ(list.size(), oracle.size());
  EXPECT_TRUE(list.validate());
  const hc::HotCache::Stats s = list.hot_cache()->stats();
  EXPECT_GT(s.value_hits, 0u) << "cache never served a read";
  EXPECT_GT(s.invalidations, 0u) << "writes never invalidated";
  EXPECT_LE(list.hot_cache()->capacity_bytes(), 2u * 1024u);
}

TEST(CacheNmpSkipList, AsyncWriteInvalidatesCachedValue) {
  SKIP_IF_CACHE_COMPILED_OUT();
  hd::NmpSkipList list(nmp_config(8 * 1024));
  ASSERT_NE(list.hot_cache(), nullptr);
  ASSERT_TRUE(list.insert(100, 1, 0));
  Value v = 0;
  ASSERT_TRUE(list.read(100, v, 0));  // fills the value tier
  ASSERT_TRUE(list.read(100, v, 0));
  EXPECT_GT(list.hot_cache()->stats().value_hits, 0u)
      << "second read did not hit — fill path broken, test would be vacuous";

  // Async remove: the ack path must bump the partition generation so the
  // cached value stops hitting even though no synchronous invalidate ran.
  hybrids::nmp::OpHandle h = list.remove_async(100, 0);
  ASSERT_TRUE(h.valid);
  ASSERT_TRUE(list.retrieve(h).ok);
  EXPECT_FALSE(list.read(100, v, 0))
      << "read served a value the async remove already deleted";

  // Async insert of a fresh key: subsequent reads see it (and may re-cache).
  h = list.insert_async(100, 2, 0);
  ASSERT_TRUE(h.valid);
  ASSERT_TRUE(list.retrieve(h).ok);
  ASSERT_TRUE(list.read(100, v, 0));
  EXPECT_EQ(v, 2u);
  ASSERT_TRUE(list.read(100, v, 0));
  EXPECT_EQ(v, 2u);
}

// ---------------------------------------------------------------------------
// Integration: hybrid skiplist (both tiers)
// ---------------------------------------------------------------------------

hd::HybridSkipList::Config hsl_config(std::size_t cache_budget,
                                      double ratio = 0.5) {
  hd::HybridSkipList::Config cfg;
  cfg.total_height = 12;
  cfg.nmp_height = 6;
  cfg.partitions = 4;
  cfg.partition_width = 1024;
  cfg.max_threads = 4;
  cfg.slots_per_thread = 2;
  cfg.cache_budget_bytes = cache_budget;
  cfg.cache_value_ratio = ratio;
  return cfg;
}

TEST(CacheHybridSkipList, MixedChurnOracleExactBothTiersHit) {
  SKIP_IF_CACHE_COMPILED_OUT();
  // Tiny value tier + roomy shortcut tier: round-robin reads over a set
  // larger than the value tier keep missing values and hitting shortcuts.
  hd::HybridSkipList list(hsl_config(8 * 1024, /*ratio=*/0.2));
  ASSERT_NE(list.hot_cache(), nullptr);
  std::map<Key, Value> oracle;
  hu::Xoshiro256 rng(23);
  for (Key k = 1; k <= 400; ++k) {
    const auto v = static_cast<Value>(rng.next()) | 1u;
    ASSERT_TRUE(list.insert(k, v, 0));
    oracle.emplace(k, v);
  }
  for (int round = 0; round < 6; ++round) {
    for (Key k = 1; k <= 400; ++k) {
      Value out = 0;
      auto it = oracle.find(k);
      ASSERT_EQ(list.read(k, out, 0), it != oracle.end()) << k;
      if (it != oracle.end()) { ASSERT_EQ(out, it->second) << k; }
      // An immediate re-read hits the value tier (the first read just
      // filled it) — round-robin over 400 keys alone would thrash a value
      // tier this small into zero hits.
      if ((k % 13) == 0) {
        Value again = 0;
        ASSERT_EQ(list.read(k, again, 0), it != oracle.end()) << k;
        if (it != oracle.end()) { ASSERT_EQ(again, it->second) << k; }
      }
      // Interleave writes so versions advance and invalidations flow.
      if ((k % 17) == static_cast<Key>(round)) {
        const auto v = static_cast<Value>(rng.next()) | 1u;
        if (oracle.count(k) != 0) {
          ASSERT_TRUE(list.update(k, v, 0));
          oracle[k] = v;
        }
      }
      if ((k % 29) == static_cast<Key>(round)) {
        ASSERT_EQ(list.remove(k, 0), oracle.erase(k) > 0) << k;
      }
    }
  }
  EXPECT_EQ(list.size(), oracle.size());
  EXPECT_TRUE(list.validate());
  const hc::HotCache::Stats s = list.hot_cache()->stats();
  EXPECT_GT(s.value_hits, 0u);
  EXPECT_GT(s.shortcut_hits, 0u) << "shortcut tier never served a descent";
  EXPECT_GT(s.invalidations, 0u);
}

TEST(CacheHybridSkipList, ShortcutsStayValidAcrossEbrReclaimCycles) {
  SKIP_IF_CACHE_COMPILED_OUT();
  // Shortcut targets are begin-NMP candidates the structure never frees
  // individually; host-level churn retires towers through EBR. After full
  // reclaim cycles every cached read must still be oracle-exact — a freed
  // or recycled shortcut target would serve garbage here.
  hd::HybridSkipList list(hsl_config(16 * 1024, /*ratio=*/0.2));
  ASSERT_NE(list.hot_cache(), nullptr);
  std::map<Key, Value> oracle;
  for (Key k = 1; k <= 600; ++k) {
    ASSERT_TRUE(list.insert(k, k * 3, 0));
    oracle.emplace(k, k * 3);
  }
  // Warm the shortcut tier.
  Value v = 0;
  for (Key k = 1; k <= 600; ++k) ASSERT_TRUE(list.read(k, v, 0));

  // Heavy remove/re-insert churn retires host towers, then drain them.
  hu::Xoshiro256 rng(31);
  for (int i = 0; i < 4000; ++i) {
    const Key k = 1 + rng.next_below(600);
    if (oracle.count(k) != 0 && (rng.next() & 1)) {
      ASSERT_TRUE(list.remove(k, 0));
      oracle.erase(k);
    } else if (oracle.count(k) == 0) {
      ASSERT_TRUE(list.insert(k, k * 5, 0));
      oracle.emplace(k, k * 5);
    }
  }
  for (int i = 0; i < 8; ++i) list.host_reclaim();

  // Every read — cached-value, cached-shortcut, or cold — stays exact.
  for (Key k = 1; k <= 600; ++k) {
    auto it = oracle.find(k);
    ASSERT_EQ(list.read(k, v, 0), it != oracle.end()) << k;
    if (it != oracle.end()) { ASSERT_EQ(v, it->second) << k; }
  }
  EXPECT_TRUE(list.validate());
}

// ---------------------------------------------------------------------------
// Integration: hybrid B+ tree (both tiers + ticket fast path)
// ---------------------------------------------------------------------------

hd::HybridBTree::Config btree_config(std::size_t cache_budget, double ratio) {
  hd::HybridBTree::Config cfg;
  cfg.nmp_levels = 2;
  cfg.partitions = 4;
  cfg.max_threads = 4;
  cfg.slots_per_thread = 2;
  cfg.cache_budget_bytes = cache_budget;
  cfg.cache_value_ratio = ratio;
  return cfg;
}

void btree_load(std::vector<Key>& keys, std::vector<Value>& vals,
                std::map<Key, Value>& oracle) {
  for (std::uint32_t i = 1; i <= 1200; i += 2) {  // odd slots: even are
    keys.push_back(4 * i);                        // insertion targets
    vals.push_back(4 * i * 7 + 1);
    oracle.emplace(keys.back(), vals.back());
  }
}

TEST(CacheHybridBTree, MixedChurnOracleExact) {
  SKIP_IF_CACHE_COMPILED_OUT();
  std::vector<Key> keys;
  std::vector<Value> vals;
  std::map<Key, Value> oracle;
  btree_load(keys, vals, oracle);
  hd::HybridBTree tree(btree_config(4 * 1024, 0.5), keys, vals);
  ASSERT_NE(tree.hot_cache(), nullptr);
  hu::Xoshiro256 rng(47);
  for (int i = 0; i < 20000; ++i) {
    // Skewed toward a hot prefix so cached reads actually repeat.
    const Key k = 4 * (1 + ((rng.next() & 1) ? rng.next_below(64)
                                             : rng.next_below(1200)));
    const auto v = static_cast<Value>(rng.next()) | 1u;
    switch (rng.next_below(10)) {
      case 0 ... 4: {
        Value out = 0;
        auto it = oracle.find(k);
        ASSERT_EQ(tree.read(k, out, 0), it != oracle.end()) << k;
        if (it != oracle.end()) { ASSERT_EQ(out, it->second) << k; }
        break;
      }
      case 5 ... 6:  // inserts land on even multiples too → splits flow
        ASSERT_EQ(tree.insert(k, v, 0), oracle.emplace(k, v).second) << k;
        break;
      case 7 ... 8: {
        const bool present = oracle.count(k) > 0;
        ASSERT_EQ(tree.update(k, v, 0), present) << k;
        if (present) oracle[k] = v;
        break;
      }
      default:
        ASSERT_EQ(tree.remove(k, 0), oracle.erase(k) > 0) << k;
        break;
    }
  }
  EXPECT_EQ(tree.size(), oracle.size());
  EXPECT_TRUE(tree.validate());
  const hc::HotCache::Stats s = tree.hot_cache()->stats();
  EXPECT_GT(s.value_hits, 0u);
  EXPECT_GT(s.invalidations, 0u);
  EXPECT_LE(tree.hot_cache()->capacity_bytes(), 4u * 1024u);
}

TEST(CacheHybridBTree, TicketServesCachedReadWithoutRoundTrip) {
  SKIP_IF_CACHE_COMPILED_OUT();
  std::vector<Key> keys;
  std::vector<Value> vals;
  std::map<Key, Value> oracle;
  btree_load(keys, vals, oracle);
  hd::HybridBTree tree(btree_config(16 * 1024, 0.8), keys, vals);
  ASSERT_NE(tree.hot_cache(), nullptr);
  const Key hot = 4 * 9;
  ASSERT_EQ(oracle.count(hot), 1u);
  Value v = 0;
  ASSERT_TRUE(tree.read(hot, v, 0));  // fills the value tier
  const std::uint64_t hits_before = tree.hot_cache()->stats().value_hits;

  // The non-blocking ticket must serve the hot key from the cache (kDone:
  // no publication round-trip) and return the oracle value.
  hd::HybridBTree::Ticket t = tree.read_async(hot, 0);
  EXPECT_TRUE(tree.poll(t));
  Value out = 0;
  ASSERT_TRUE(tree.finish(t, &out));
  EXPECT_EQ(out, oracle[hot]);
  EXPECT_GT(tree.hot_cache()->stats().value_hits, hits_before);

  // A write then makes the next ticket read the fresh value, not the cache.
  ASSERT_TRUE(tree.update(hot, 4242, 0));
  hd::HybridBTree::Ticket t2 = tree.read_async(hot, 0);
  Value out2 = 0;
  ASSERT_TRUE(tree.finish(t2, &out2));
  EXPECT_EQ(out2, 4242u);
}

// ---------------------------------------------------------------------------
// Chaos: 4 threads, disjoint stripes, seeded, cache tiny enough to evict
// constantly. Any stale cached value is an exact oracle divergence.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kChaosThreads = 4;
constexpr std::uint32_t kChaosKeysPerThread = 400;

template <typename Structure, typename KeyFn>
void run_cache_chaos(Structure& s, std::vector<std::map<Key, Value>>& oracles,
                     std::uint64_t seed, std::uint32_t ops_per_thread,
                     KeyFn key_of) {
  std::vector<std::thread> workers;
  workers.reserve(kChaosThreads);
  for (std::uint32_t t = 0; t < kChaosThreads; ++t) {
    workers.emplace_back([&, t] {
      hu::Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL + 0xCAC4E + t);
      std::map<Key, Value>& oracle = oracles[t];
      for (std::uint32_t i = 0; i < ops_per_thread; ++i) {
        // Skew within the stripe so the same keys are read repeatedly
        // (cache hits) while other threads churn their own stripes.
        const std::uint32_t r = rng.next_below(kChaosKeysPerThread);
        const Key key = key_of(rng.next_below(4) != 0 ? r / 8 : r, t);
        const auto val = static_cast<Value>(rng.next_below(1u << 30)) | 1u;
        switch (rng.next_below(100)) {
          case 0 ... 49: {  // read-heavy: the tier under test
            Value out = 0;
            const bool ok = s.read(key, out, t);
            const auto it = oracle.find(key);
            EXPECT_EQ(ok, it != oracle.end()) << "read presence, key " << key;
            if (ok && it != oracle.end()) {
              EXPECT_EQ(out, it->second) << "read value, key " << key;
            }
            break;
          }
          case 50 ... 69: {
            const bool ok = s.insert(key, val, t);
            EXPECT_EQ(ok, oracle.emplace(key, val).second)
                << "insert, key " << key;
            break;
          }
          case 70 ... 84: {
            const bool ok = s.remove(key, t);
            EXPECT_EQ(ok, oracle.erase(key) != 0) << "remove, key " << key;
            break;
          }
          default: {
            const bool ok = s.update(key, val, t);
            const auto it = oracle.find(key);
            EXPECT_EQ(ok, it != oracle.end()) << "update, key " << key;
            if (it != oracle.end()) it->second = val;
            break;
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
}

TEST(CacheChaos, HybridSkipListThreeSeeds) {
  SKIP_IF_CACHE_COMPILED_OUT();
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE(seed);
    hd::HybridSkipList list(hsl_config(2 * 1024, 0.5));
    ASSERT_NE(list.hot_cache(), nullptr);
    std::vector<std::map<Key, Value>> oracles(kChaosThreads);
    run_cache_chaos(list, oracles, seed, /*ops_per_thread=*/4000,
                    [](std::uint32_t r, std::uint32_t t) {
                      return static_cast<Key>(1 + kChaosThreads * r + t);
                    });
    std::size_t expected = 0;
    for (const auto& o : oracles) expected += o.size();
    EXPECT_EQ(list.size(), expected);
    EXPECT_TRUE(list.validate());
    const hc::HotCache::Stats s = list.hot_cache()->stats();
    EXPECT_GT(s.value_hits + s.shortcut_hits, 0u) << "chaos never hit cache";
    EXPECT_GT(s.invalidations, 0u);
  }
}

TEST(CacheChaos, HybridBTreeThreeSeeds) {
  SKIP_IF_CACHE_COMPILED_OUT();
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE(seed);
    std::vector<Key> keys;
    std::vector<Value> vals;
    std::vector<std::map<Key, Value>> oracles(kChaosThreads);
    for (std::uint32_t j = 1; j <= kChaosKeysPerThread; j += 2) {
      for (std::uint32_t t = 0; t < kChaosThreads; ++t) {
        const Key k = 4 * j + t;
        keys.push_back(k);
        vals.push_back(k * 7 + 1);
        oracles[t].emplace(k, k * 7 + 1);
      }
    }
    hd::HybridBTree tree(btree_config(2 * 1024, 0.5), keys, vals);
    ASSERT_NE(tree.hot_cache(), nullptr);
    run_cache_chaos(tree, oracles, seed, /*ops_per_thread=*/3000,
                    [](std::uint32_t r, std::uint32_t t) {
                      return static_cast<Key>(4 * (1 + r) + t);
                    });
    std::size_t expected = 0;
    for (const auto& o : oracles) expected += o.size();
    EXPECT_EQ(tree.size(), expected);
    EXPECT_TRUE(tree.validate());
    const hc::HotCache::Stats s = tree.hot_cache()->stats();
    EXPECT_GT(s.value_hits + s.shortcut_hits, 0u) << "chaos never hit cache";
    EXPECT_GT(s.invalidations, 0u);
  }
}

#if defined(HYBRIDS_FAULTS)
// ---------------------------------------------------------------------------
// Failover: combiners are killed mid-run; the supervisor fences the lane and
// bounces in-flight slots; every bounced partition's cached entries must
// stop hitting (generation bump). Oracle exactness across the whole run IS
// the "no cached value survives a bounce" property — a surviving entry
// would serve a pre-failover value to the exact-match reads.
// ---------------------------------------------------------------------------

TEST(CacheChaos, FailoverBouncedPartitionDropsCachedValues) {
  SKIP_IF_CACHE_COMPILED_OUT();
  namespace fault = hybrids::nmp::fault;
  static_assert(fault::kCompiledIn);
  fault::Config fc;
  fc.seed = 9;
  fc.enable(fault::Kind::kCombinerAbort, 0.004);

  hd::HybridSkipList::Config cfg = hsl_config(4 * 1024, 0.5);
  cfg.watchdog_interval_ms = 2;
  cfg.watchdog_misses_to_degrade = 2;
  cfg.watchdog_misses_to_recover = 2;
  cfg.retry_budget = 4;
  hd::HybridSkipList list(cfg);
  ASSERT_NE(list.hot_cache(), nullptr);

  std::vector<std::map<Key, Value>> oracles(kChaosThreads);
  {
    fault::FaultInjector::arm(fc);
    run_cache_chaos(list, oracles, fc.seed, /*ops_per_thread=*/4000,
                    [](std::uint32_t r, std::uint32_t t) {
                      return static_cast<Key>(1 + kChaosThreads * r + t);
                    });
    fault::FaultInjector::disarm();
  }

  hybrids::nmp::PartitionSet& set = list.partition_set();
  std::uint64_t kills = 0;
  for (std::uint32_t p = 0; p < set.partitions(); ++p) {
    kills += set.failovers(p);
  }
  EXPECT_GT(kills, 0u) << "run produced no failovers — bounce path untested";
  EXPECT_GT(list.hot_cache()->stats().invalidations, 0u);

  // After the storm: every key reads oracle-exact through whatever the
  // cache retained. (Failed-over reads bumped the generation, so nothing
  // filled before a bounce can hit now.)
  Value v = 0;
  for (std::uint32_t t = 0; t < kChaosThreads; ++t) {
    for (std::uint32_t r = 0; r < kChaosKeysPerThread; ++r) {
      const Key key = 1 + kChaosThreads * r + t;
      const auto it = oracles[t].find(key);
      ASSERT_EQ(list.read(key, v, 0), it != oracles[t].end()) << key;
      if (it != oracles[t].end()) { ASSERT_EQ(v, it->second) << key; }
    }
  }
  std::size_t expected = 0;
  for (const auto& o : oracles) expected += o.size();
  EXPECT_EQ(list.size(), expected);
  EXPECT_TRUE(list.validate());
}
#endif  // HYBRIDS_FAULTS

}  // namespace
