// Keeps docs/METRICS.md and telemetry/registry.hpp's canonical name list in
// lock-step, in both directions:
//
//  * every name constant declared in telemetry::names must appear as a
//    metric row in docs/METRICS.md (prefix constants like `served_` must
//    appear in templated form, e.g. `served_<op>`);
//  * every metric row in docs/METRICS.md must correspond to a declared name
//    constant (exactly, or as an instantiation of a declared prefix).
//
// The files are read from the source tree via HYBRIDS_SOURCE_DIR (a compile
// definition set in tests/CMakeLists.txt), so the check runs wherever the
// tests run — locally and in CI's doc-lint job — with no extra tooling.
#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

const std::string kRegistryPath =
    std::string(HYBRIDS_SOURCE_DIR) + "/src/hybrids/telemetry/registry.hpp";
const std::string kDocPath =
    std::string(HYBRIDS_SOURCE_DIR) + "/docs/METRICS.md";

/// Metric name constants from the `names` namespace in registry.hpp.
/// Constants whose value ends in '_' are name *prefixes* (completed at
/// registration time with an opcode / fault-kind suffix).
struct RegistryNames {
  std::set<std::string> exact;
  std::set<std::string> prefixes;
};

RegistryNames registry_names() {
  RegistryNames out;
  const std::string src = read_file(kRegistryPath);
  const std::regex decl(R"(inline constexpr const char\* k\w+ = \"([^\"]+)\";)");
  for (auto it = std::sregex_iterator(src.begin(), src.end(), decl);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (!name.empty() && name.back() == '_') {
      out.prefixes.insert(name);
    } else {
      out.exact.insert(name);
    }
  }
  return out;
}

/// Metric names documented in METRICS.md: the backticked first cell of every
/// table row (lines shaped `| `name` | ...`).
std::vector<std::string> documented_names() {
  std::vector<std::string> out;
  const std::string doc = read_file(kDocPath);
  const std::regex row(R"(^\| `([^`]+)` \|)");
  std::istringstream lines(doc);
  std::string line;
  while (std::getline(lines, line)) {
    std::smatch m;
    if (std::regex_search(line, m, row)) out.push_back(m[1].str());
  }
  return out;
}

/// `served_<op>` documents the prefix `served_`.
bool is_template_of(const std::string& doc_name, const std::string& prefix) {
  return doc_name.size() > prefix.size() + 1 &&
         doc_name.compare(0, prefix.size(), prefix) == 0 &&
         doc_name[prefix.size()] == '<' && doc_name.back() == '>';
}

TEST(MetricsDoc, EveryRegistryNameIsDocumented) {
  const RegistryNames names = registry_names();
  ASSERT_GT(names.exact.size(), 10u) << "registry parse failed: " << kRegistryPath;
  const std::vector<std::string> doc = documented_names();
  ASSERT_FALSE(doc.empty()) << "no metric table rows found in " << kDocPath;
  for (const std::string& name : names.exact) {
    bool found = false;
    for (const std::string& d : doc) found |= d == name;
    EXPECT_TRUE(found) << "metric `" << name
                       << "` (registry.hpp) missing from docs/METRICS.md";
  }
  for (const std::string& prefix : names.prefixes) {
    bool found = false;
    for (const std::string& d : doc) found |= is_template_of(d, prefix);
    EXPECT_TRUE(found) << "metric prefix `" << prefix
                       << "` (registry.hpp) has no templated row (e.g. `"
                       << prefix << "<suffix>`) in docs/METRICS.md";
  }
}

TEST(MetricsDoc, EveryDocumentedNameExistsInRegistry) {
  const RegistryNames names = registry_names();
  for (const std::string& d : documented_names()) {
    bool known = names.exact.count(d) > 0;
    for (const std::string& prefix : names.prefixes) {
      known |= is_template_of(d, prefix);
    }
    EXPECT_TRUE(known) << "docs/METRICS.md documents `" << d
                       << "`, which registry.hpp does not declare";
  }
}

TEST(MetricsDoc, NoDuplicateRows) {
  const std::vector<std::string> doc = documented_names();
  std::set<std::string> seen;
  for (const std::string& d : doc) {
    EXPECT_TRUE(seen.insert(d).second)
        << "docs/METRICS.md documents `" << d << "` twice";
  }
}

}  // namespace
