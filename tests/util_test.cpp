// Unit tests for hybrids/util: RNG determinism and distribution sanity,
// marked/tagged pointers, histogram, table rendering, backoff.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "hybrids/util/backoff.hpp"
#include "hybrids/util/cache_aligned.hpp"
#include "hybrids/util/histogram.hpp"
#include "hybrids/util/marked_ptr.hpp"
#include "hybrids/util/rng.hpp"
#include "hybrids/util/table.hpp"

namespace hu = hybrids::util;

TEST(Rng, DeterministicForSameSeed) {
  hu::Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  hu::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowStaysInRange) {
  hu::Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  hu::Xoshiro256 rng(99);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = double(kDraws) / kBuckets;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.1);
}

TEST(Rng, NextDoubleInUnitInterval) {
  hu::Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, SplitMixExpandsSeeds) {
  hu::SplitMix64 sm(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(sm.next());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Rng, Fnv1aMatchesKnownVector) {
  // FNV-1a of 8 zero bytes (computed independently from the FNV constants).
  EXPECT_EQ(hu::fnv1a64(0), 0xA8C7F832281A39C5ULL);
  EXPECT_NE(hu::fnv1a64(1), hu::fnv1a64(2));
}

TEST(MarkedPtr, RoundTripsPointerAndMark) {
  int x = 0;
  hu::MarkedPtr<int> p(&x, false);
  EXPECT_EQ(p.ptr(), &x);
  EXPECT_FALSE(p.marked());
  hu::MarkedPtr<int> q(&x, true);
  EXPECT_EQ(q.ptr(), &x);
  EXPECT_TRUE(q.marked());
  EXPECT_NE(p.bits(), q.bits());
  EXPECT_EQ(hu::MarkedPtr<int>::from_bits(q.bits()), q);
}

TEST(TaggedPtr, RoundTripsPointerAndTag) {
  alignas(128) static int node;
  for (unsigned tag = 0; tag < 8; ++tag) {
    hu::TaggedPtr<int, 3> p(&node, tag);
    EXPECT_EQ(p.ptr(), &node);
    EXPECT_EQ(p.tag(), tag);
  }
  hu::TaggedPtr<int, 3> null;
  EXPECT_FALSE(null);
}

TEST(Histogram, TracksMeanMinMax) {
  hu::Histogram h;
  for (double v : {1.0, 2.0, 3.0, 10.0}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(Histogram, MergeCombines) {
  hu::Histogram a, b;
  a.record(1.0);
  a.record(3.0);
  b.record(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Histogram, QuantileIsMonotone) {
  hu::Histogram h;
  hu::Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) h.record(double(rng.next_below(1000)));
  double last = 0;
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    double v = h.quantile(q);
    EXPECT_GE(v, last);
    last = v;
  }
  EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(Histogram, QuantileOneReturnsExactMaxForSingleBucket) {
  // Regression: the bucket walk used to return the bucket's upper edge for
  // q=1.0, so a single-sample histogram reported e.g. 8 instead of 7.
  hu::Histogram h;
  h.record(7.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);
  h.record(7.0);
  h.record(7.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);
}

TEST(Histogram, QuantileClampsOutOfRangeArguments) {
  hu::Histogram h;
  for (double v : {1.0, 2.0, 4.0, 100.0}) h.record(v);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.5), h.max());
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(std::nan("")), h.quantile(0.0));
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero) {
  hu::Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileStaysWithinObservedRange) {
  hu::Histogram h;
  for (double v : {3.0, 3.5, 3.9}) h.record(v);  // all land in one bucket
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double val = h.quantile(q);
    EXPECT_GE(val, h.min());
    EXPECT_LE(val, h.max());
  }
}

TEST(Table, RendersAlignedColumnsAndCsv) {
  hu::Table t({"threads", "mops"});
  t.new_row().add_int(1).add_num(1.25);
  t.new_row().add_int(8).add_num(10.5, 1);
  std::string s = t.to_string();
  EXPECT_NE(s.find("threads"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("10.5"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("threads,mops"), std::string::npos);
  EXPECT_NE(csv.str().find("8,10.5"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Backoff, SpinsWithoutCrashingAndResets) {
  hu::Backoff b(4);
  for (int i = 0; i < 100; ++i) b.spin();
  b.reset();
  b.spin();
  SUCCEED();
}

TEST(CacheAligned, PreventsFalseSharing) {
  hu::CacheAligned<int> arr[2];
  auto a = reinterpret_cast<std::uintptr_t>(&arr[0]);
  auto b = reinterpret_cast<std::uintptr_t>(&arr[1]);
  EXPECT_GE(b - a, hu::kCacheLineSize);
  EXPECT_EQ(a % hu::kCacheLineSize, 0u);
}
