// Cross-module integration tests: library structures driven by the workload
// generators (the composition the benches and examples rely on), plus
// failure-injection on the NMP runtime.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/nmp/nmp_core.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hd = hybrids::ds;
namespace hn = hybrids::nmp;
namespace hw = hybrids::workload;
using hybrids::Key;
using hybrids::Value;

TEST(Integration, HybridSkipListUnderYcsbAStream) {
  // YCSB-A (50/50 read/update, zipfian) through the real structure.
  hw::WorkloadSpec spec = hw::ycsb_a(1 << 12, /*partitions=*/4);
  hw::KeyLayout layout(spec.initial_keys, spec.partitions);

  hd::HybridSkipList::Config cfg;
  cfg.total_height = 12;
  cfg.nmp_height = 6;
  cfg.partitions = spec.partitions;
  cfg.partition_width = layout.partition_width();
  cfg.max_threads = 2;
  hd::HybridSkipList list(cfg);
  for (Key k : layout.initial_key_set()) ASSERT_TRUE(list.insert(k, k, 0));

  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> reads{0}, read_hits{0}, updates{0}, update_hits{0};
  for (std::uint32_t t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      hw::OpStream stream(spec, t);
      for (int i = 0; i < 5000; ++i) {
        hw::Op op = stream.next();
        if (op.type == hw::OpType::kRead) {
          Value v = 0;
          reads.fetch_add(1);
          read_hits.fetch_add(list.read(op.key, v, t) ? 1 : 0);
        } else {
          updates.fetch_add(1);
          update_hits.fetch_add(list.update(op.key, op.value, t) ? 1 : 0);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // The generator only draws loaded keys for reads/updates: all must hit.
  EXPECT_EQ(reads.load(), read_hits.load());
  EXPECT_EQ(updates.load(), update_hits.load());
  EXPECT_TRUE(list.validate());
  EXPECT_EQ(list.size(), spec.initial_keys);
}

TEST(Integration, HybridBTreeUnderSensitivityStream) {
  // The Figure 8 split-heavy 50-25-25 mix against the real hybrid B+ tree.
  hw::WorkloadSpec spec =
      hw::sensitivity(1 << 13, 50, 25, 25, /*split_heavy=*/true, /*parts=*/4);
  hw::KeyLayout layout(spec.initial_keys, spec.partitions);

  hd::HybridBTree::Config cfg;
  cfg.nmp_levels = 2;
  cfg.partitions = spec.partitions;
  cfg.max_threads = 2;
  auto keys = layout.initial_key_set();
  std::vector<Value> vals(keys.begin(), keys.end());
  hd::HybridBTree tree(cfg, keys, vals);

  std::vector<std::thread> threads;
  std::atomic<long long> net{0};
  for (std::uint32_t t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      hw::OpStream stream(spec, t);
      for (int i = 0; i < 4000; ++i) {
        hw::Op op = stream.next();
        switch (op.type) {
          case hw::OpType::kInsert:
            if (tree.insert(op.key, op.value, t)) net.fetch_add(1);
            break;
          case hw::OpType::kRemove:
            if (tree.remove(op.key, t)) net.fetch_sub(1);
            break;
          default: {
            Value v = 0;
            (void)tree.read(op.key, v, t);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(tree.validate());
  EXPECT_EQ(tree.size(),
            static_cast<std::size_t>(static_cast<long long>(spec.initial_keys) +
                                     net.load()));
}

TEST(Integration, RetryInjectionThroughRuntime) {
  // A handler that demands retries for the first attempts of each request
  // exercises the host-side retry discipline end to end.
  std::map<Key, int> attempts;
  hn::NmpCore core(0, 2, [&attempts](const hn::Request& req, hn::Response& resp) {
    if (++attempts[req.key] % 3 != 0) {
      resp.retry = true;  // fail twice, succeed on the third attempt
      return;
    }
    resp.ok = true;
    resp.value = req.key + 1;
  });
  core.start();
  for (Key k = 1; k <= 20; ++k) {
    hn::Response r;
    do {
      hn::Request req;
      req.op = hn::OpCode::kRead;
      req.key = k;
      core.post(0, req);
      core.wait_done(0);
      r = core.slot(0).take();
    } while (r.retry);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.value, k + 1);
    EXPECT_EQ(attempts[k], 3);
  }
  core.stop();
}

TEST(Integration, SkiplistSplitSizingConsistentWithBTreeSizing) {
  // Both sizing helpers must react the same way to cache growth: more cache
  // -> fewer NMP-managed levels (more pinned host levels).
  int prev_sl = 100, prev_bt = 100;
  for (std::size_t llc = 64 * 1024; llc <= 16 * 1024 * 1024; llc *= 4) {
    const int sl = hd::HybridSkipList::nmp_height_for_cache(1ull << 22, llc, 128);
    const int bt = hd::HybridBTree::nmp_levels_for_cache(1ull << 22, llc, 0.5);
    EXPECT_LE(sl, prev_sl);
    EXPECT_LE(bt, prev_bt);
    EXPECT_GE(sl, 1);
    EXPECT_GE(bt, 1);
    prev_sl = sl;
    prev_bt = bt;
  }
}
