// Tests for the software NMP runtime: publication-list handshake, combiner
// serialization, partition routing, blocking and non-blocking calls.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "hybrids/nmp/nmp_core.hpp"
#include "hybrids/nmp/partition_set.hpp"
#include "hybrids/telemetry/registry.hpp"

namespace hn = hybrids::nmp;
namespace ht = hybrids::telemetry;

TEST(PubSlot, HandshakeRoundTrip) {
  hn::PubSlot slot;
  EXPECT_FALSE(slot.done());
  hn::Request r;
  r.op = hn::OpCode::kRead;
  r.key = 42;
  slot.post(r);
  EXPECT_EQ(slot.status.load(), hn::PubSlot::kPending);
  slot.resp.ok = true;
  slot.resp.value = 7;
  slot.status.store(hn::PubSlot::kDone);
  EXPECT_TRUE(slot.done());
  hn::Response resp = slot.take();
  EXPECT_TRUE(resp.ok);
  EXPECT_EQ(resp.value, 7u);
  EXPECT_EQ(slot.status.load(), hn::PubSlot::kEmpty);
}

TEST(NmpCore, ServesSingleRequest) {
  hn::NmpCore core(0, 4, [](const hn::Request& req, hn::Response& resp) {
    resp.ok = true;
    resp.value = req.key * 2;
  });
  core.start();
  hn::Request r;
  r.op = hn::OpCode::kNop;
  r.key = 21;
  core.post(0, r);
  core.wait_done(0);
  hn::Response resp = core.slot(0).take();
  EXPECT_TRUE(resp.ok);
  EXPECT_EQ(resp.value, 42u);
  core.stop();
  EXPECT_EQ(core.served(), 1u);
}

TEST(NmpCore, HandlerRunsSingleThreaded) {
  // The combiner must never run the handler concurrently with itself.
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  hn::NmpCore core(0, 16, [&](const hn::Request&, hn::Response& resp) {
    if (inside.fetch_add(1) != 0) overlapped.store(true);
    inside.fetch_sub(1);
    resp.ok = true;
  });
  core.start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        hn::Request r;
        r.op = hn::OpCode::kNop;
        r.key = static_cast<hn::Key>(i);
        core.post(static_cast<std::uint32_t>(t), r);
        core.wait_done(static_cast<std::uint32_t>(t));
        (void)core.slot(static_cast<std::uint32_t>(t)).take();
      }
    });
  }
  for (auto& th : threads) th.join();
  core.stop();
  EXPECT_FALSE(overlapped.load());
  EXPECT_EQ(core.served(), 800u);
}

TEST(NmpCore, StopDrainsOutstandingWork) {
  hn::NmpCore core(0, 2, [](const hn::Request&, hn::Response& resp) { resp.ok = true; });
  core.start();
  hn::Request r;
  core.post(0, r);
  core.post(1, r);
  core.stop();  // must not lose the posted requests
  EXPECT_TRUE(core.slot(0).done());
  EXPECT_TRUE(core.slot(1).done());
}

TEST(NmpCore, StopDrainsPendingBehindSlowHandler) {
  // Requests already posted when stop() is called must complete even when
  // the handler is slow — stop() may only join after the drain pass.
  hn::NmpCore core(0, 4, [](const hn::Request&, hn::Response& resp) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    resp.ok = true;
  });
  core.start();
  hn::Request r;
  for (std::uint32_t i = 0; i < 4; ++i) core.post(i, r);
  core.stop();
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(core.slot(i).done()) << "slot " << i << " lost at stop()";
  }
  EXPECT_EQ(core.served(), 4u);
}

TEST(NmpCore, WaitDoneForTimesOutAgainstStalledHandler) {
  // A handler wedged on an external condition must surface as a bounded-wait
  // timeout at the host, never as a hang.
  std::atomic<bool> release{false};
  hn::NmpCore core(0, 2, [&](const hn::Request&, hn::Response& resp) {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    resp.ok = true;
  });
  core.start();
  hn::Request r;
  core.post(0, r);
  EXPECT_FALSE(core.wait_done_for(0, std::chrono::milliseconds(20)));
  EXPECT_FALSE(core.slot(0).done());
  if constexpr (ht::kEnabled) {
    EXPECT_GT(ht::snapshot().counter_total(ht::names::kWaitTimeoutTotal), 0u);
  }
  // Unwedge: the same slot must now complete through the normal wait.
  release.store(true, std::memory_order_release);
  core.wait_done(0);
  EXPECT_TRUE(core.slot(0).take().ok);
  core.stop();
}

TEST(NmpCore, BatchHandlerSeesKeySortedOpsAndRoutesResponsesBySlot) {
  // Posting before start() is the deterministic way to form a batch: all
  // slots are kPending when the combiner's first scan pass runs, so it must
  // collect them into a single batch-handler call.
  std::vector<hn::Key> order;
  std::size_t calls = 0;
  hn::NmpCore core(0, 4, [](const hn::Request&, hn::Response& resp) {
    resp.ok = true;  // legacy handler must not run in this test
    resp.value = 0xDEAD;
  });
  core.set_batch_handler([&](hn::BatchOp* ops, std::size_t n) {
    ++calls;
    for (std::size_t i = 0; i < n; ++i) {
      order.push_back(ops[i].req->key);
      ops[i].resp->ok = true;
      ops[i].resp->value = ops[i].req->key * 2;
      // Mid-batch, every collected slot must still be kPending: completions
      // are only published after the whole batch is applied.
      for (std::uint32_t s = 0; s < core.slot_count(); ++s) {
        EXPECT_NE(core.slot(s).status.load(), hn::PubSlot::kDone);
      }
    }
  });
  const hn::Key keys[4] = {30, 10, 40, 20};
  for (std::uint32_t s = 0; s < 4; ++s) {
    hn::Request r;
    r.op = hn::OpCode::kNop;
    r.key = keys[s];
    core.post(s, r);
  }
  core.start();
  for (std::uint32_t s = 0; s < 4; ++s) core.wait_done(s);
  core.stop();
  // The batch was applied in ascending key order...
  ASSERT_EQ(calls, 1u);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<hn::Key>{10, 20, 30, 40}));
  // ...but each response landed in its op's original slot.
  for (std::uint32_t s = 0; s < 4; ++s) {
    hn::Response resp = core.slot(s).take();
    EXPECT_TRUE(resp.ok);
    EXPECT_EQ(resp.value, keys[s] * 2);
  }
  if constexpr (ht::kEnabled) {
    EXPECT_GE(ht::snapshot().histogram_total(ht::names::kBatchSize).count(), 1u);
  }
}

TEST(NmpCore, SinglePendingRequestUsesLegacyHandler) {
  // A pass with exactly one pending request must go through the plain
  // handler, with or without a batch handler installed.
  std::atomic<bool> batch_ran{false};
  hn::NmpCore core(0, 4, [](const hn::Request& req, hn::Response& resp) {
    resp.ok = true;
    resp.value = req.key + 1;
  });
  core.set_batch_handler([&](hn::BatchOp*, std::size_t) {
    batch_ran.store(true);
  });
  hn::Request r;
  r.op = hn::OpCode::kNop;
  r.key = 7;
  core.post(0, r);
  core.start();
  core.wait_done(0);
  hn::Response resp = core.slot(0).take();
  EXPECT_TRUE(resp.ok);
  EXPECT_EQ(resp.value, 8u);
  core.stop();
  EXPECT_FALSE(batch_ran.load());
}

TEST(NmpCore, EqualKeysKeepSlotOrderInBatch) {
  // stable_sort: ops on the same key must reach the batch handler in
  // publication-list (slot) order, so a same-key insert/remove pair keeps
  // its host-observable semantics.
  std::vector<hn::Value> order;
  hn::NmpCore core(0, 4,
                   [](const hn::Request&, hn::Response& resp) { resp.ok = true; });
  core.set_batch_handler([&](hn::BatchOp* ops, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      order.push_back(ops[i].req->value);
      ops[i].resp->ok = true;
    }
  });
  for (std::uint32_t s = 0; s < 4; ++s) {
    hn::Request r;
    r.op = hn::OpCode::kNop;
    r.key = s < 2 ? 5u : 3u;  // slots 2,3 sort before slots 0,1
    r.value = s;              // slot index, to observe ordering
    core.post(s, r);
  }
  core.start();
  for (std::uint32_t s = 0; s < 4; ++s) core.wait_done(s);
  core.stop();
  EXPECT_EQ(order, (std::vector<hn::Value>{2, 3, 0, 1}));
}

TEST(NmpCore, RestartAfterStop) {
  hn::NmpCore core(3, 2, [](const hn::Request&, hn::Response& resp) { resp.ok = true; });
  core.start();
  core.stop();
  core.start();
  hn::Request r;
  core.post(0, r);
  core.wait_done(0);
  EXPECT_TRUE(core.slot(0).take().ok);
  core.stop();
}

namespace {
hn::PartitionSet make_set(std::uint32_t partitions, std::uint32_t threads,
                          std::uint32_t inflight) {
  hn::PartitionConfig cfg;
  cfg.partitions = partitions;
  cfg.max_threads = threads;
  cfg.slots_per_thread = inflight;
  cfg.partition_width = 1000;
  return hn::PartitionSet(cfg);
}
}  // namespace

TEST(PartitionSet, RejectsInvalidConfig) {
  // partition_of divides by partition_width and the slot layout needs at
  // least one slot; a zero in any dimension must fail fast at construction
  // with a clear message, not SIGFPE or misroute later.
  {
    hn::PartitionConfig cfg;
    cfg.partition_width = 0;
    EXPECT_THROW(hn::PartitionSet set(cfg), std::invalid_argument);
  }
  {
    hn::PartitionConfig cfg;
    cfg.partition_width = 1000;
    cfg.partitions = 0;
    EXPECT_THROW(hn::PartitionSet set(cfg), std::invalid_argument);
  }
  {
    hn::PartitionConfig cfg;
    cfg.partition_width = 1000;
    cfg.max_threads = 0;
    EXPECT_THROW(hn::PartitionSet set(cfg), std::invalid_argument);
  }
  {
    hn::PartitionConfig cfg;
    cfg.partition_width = 1000;
    cfg.slots_per_thread = 0;
    EXPECT_THROW(hn::PartitionSet set(cfg), std::invalid_argument);
  }
  // An enabled watchdog with a zero threshold would fence a partition on its
  // first tick (degrade) or never re-integrate it (recover).
  {
    hn::PartitionConfig cfg;
    cfg.partition_width = 1000;
    cfg.watchdog_interval_ms = 2;
    cfg.watchdog_misses_to_degrade = 0;
    EXPECT_THROW(hn::PartitionSet set(cfg), std::invalid_argument);
  }
  {
    hn::PartitionConfig cfg;
    cfg.partition_width = 1000;
    cfg.watchdog_interval_ms = 2;
    cfg.watchdog_misses_to_recover = 0;
    EXPECT_THROW(hn::PartitionSet set(cfg), std::invalid_argument);
  }
  // With the watchdog disabled the thresholds are inert and may be zero.
  {
    hn::PartitionConfig cfg;
    cfg.partitions = 2;  // small: construction registers per-partition metrics
    cfg.max_threads = 1;
    cfg.partition_width = 1000;
    cfg.watchdog_interval_ms = 0;
    cfg.watchdog_misses_to_degrade = 0;
    cfg.watchdog_misses_to_recover = 0;
    EXPECT_NO_THROW(hn::PartitionSet set(cfg));
  }
}

TEST(PartitionSet, WatchdogDegradesStalledPartitionAndRecovers) {
  hn::PartitionConfig cfg;
  cfg.partitions = 1;
  cfg.max_threads = 1;
  cfg.slots_per_thread = 2;
  cfg.partition_width = 1000;
  cfg.watchdog_interval_ms = 2;
  cfg.watchdog_misses_to_degrade = 3;
  cfg.watchdog_misses_to_recover = 2;
  // kNone isolates the degraded-mark semantics from fencing/recovery (those
  // have their own tests below).
  cfg.failover = hn::FailoverPolicy::kNone;
  hn::PartitionSet set(cfg);
  std::atomic<bool> release{false};
  set.set_handler(0, [&](const hn::Request&, hn::Response& resp) {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    resp.ok = true;
  });
  set.start();
  EXPECT_FALSE(set.degraded(0));

  hn::Request r;
  hn::OpHandle h = set.call_async(0, 0, r);
  ASSERT_TRUE(h.valid);
  // The stalled handler blocks served() progress with an outstanding post;
  // after misses_to_degrade watchdog intervals the partition must be marked.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!set.degraded(0) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(set.degraded(0));

  // Unwedge and drain the stalled op.
  release.store(true, std::memory_order_release);
  EXPECT_TRUE(set.retrieve(h).ok);

  // The mark is sticky while the partition is idle: one progressing
  // interval (the drained op) is below the hysteresis threshold, and idle
  // intervals must not count as clean. No flap back to healthy.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(set.degraded(0));

  // Only sustained progress re-integrates: pump traffic until the watchdog
  // has seen misses_to_recover consecutive progressing intervals.
  const auto recover_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (set.degraded(0) && std::chrono::steady_clock::now() < recover_deadline) {
    EXPECT_TRUE(set.call(0, 0, r).ok);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(set.degraded(0));
  set.stop();

  if constexpr (ht::kEnabled) {
    const ht::Snapshot snap = ht::snapshot();
    EXPECT_GT(snap.counter_total(ht::names::kWatchdogFired), 0u);
    EXPECT_GT(snap.counter_total(ht::names::kPartitionDegraded), 0u);
  }
}

TEST(NmpCore, FencedCombinerStillDeliversInFlightReply) {
  // A fence raised while the combiner is inside a handler retires the
  // incarnation at the next pass top, but the op it already ran must still
  // be answered: the supervisor only bounces after try_reap() joins the
  // zombie, so its completion CAS is ordered before any takeover. Dropping
  // the reply instead would make the host's failed_over retry re-execute an
  // already-applied op.
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  hn::NmpCore core(0, 2, [&](const hn::Request&, hn::Response& resp) {
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    resp.ok = true;
  });
  core.start();
  hn::Request r;
  core.post(0, r);
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  core.fence_raise();  // the in-flight handler is now a zombie's last act
  release.store(true, std::memory_order_release);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!core.exited() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  ASSERT_TRUE(core.exited());
  ASSERT_TRUE(core.try_reap());
  // The zombie's reply landed before the (join-gated) takeover window: the
  // slot is done with the real response, and nothing is left to bounce.
  EXPECT_TRUE(core.slot(0).done());
  EXPECT_TRUE(core.slot(0).take().ok);
  EXPECT_EQ(core.served(), 1u);
  // Respawn over the same slots: the fresh combiner serves new posts.
  core.start();
  core.post(0, r);
  core.wait_done(0);
  EXPECT_TRUE(core.slot(0).take().ok);
  core.stop();
}

TEST(NmpCore, StaleReplyRejectedAfterSlotTakeover) {
  // Defense in depth for the lost-CAS arm of complete(): if a fenced
  // combiner's reply arrives after the slot has already been taken over
  // (bounced to kDone by a new owner), the late publish must be rejected
  // rather than overwrite protocol state it no longer owns. The real
  // supervisor can never reach this arm — it bounces only after joining the
  // zombie — so the takeover is simulated directly on the slot.
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  hn::NmpCore core(0, 2, [&](const hn::Request&, hn::Response& resp) {
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    resp.ok = true;
  });
  core.start();
  hn::Request r;
  core.post(0, r);
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  core.fence_raise();
  // Simulated takeover while the zombie is still inside the handler: the
  // slot is answered failed_over and marked done by its "new owner".
  core.slot(0).resp.failed_over = true;
  core.slot(0).status.store(hn::PubSlot::kDone, std::memory_order_release);
  release.store(true, std::memory_order_release);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!core.exited() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  ASSERT_TRUE(core.exited());
  ASSERT_TRUE(core.try_reap());
  // The zombie's completion CAS lost: the takeover response survives and
  // the zombie counted nothing as served.
  const hn::Response out = core.slot(0).take();
  EXPECT_TRUE(out.failed_over);
  EXPECT_EQ(core.served(), 0u);
}

namespace {
// Shared scaffolding for the failover tests: one partition whose handler can
// be wedged on demand, plus a helper that waits for a predicate.
struct WedgeableSet {
  std::atomic<bool> wedge{false};
  std::atomic<bool> in_handler{false};
  hn::PartitionSet set;

  explicit WedgeableSet(hn::FailoverPolicy policy)
      : set(config(policy)) {
    set.set_handler(0, [this](const hn::Request& req, hn::Response& resp) {
      in_handler.store(true, std::memory_order_release);
      while (wedge.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      resp.ok = true;
      resp.value = req.key + 1;
    });
    set.start();
  }

  static hn::PartitionConfig config(hn::FailoverPolicy policy) {
    hn::PartitionConfig cfg;
    cfg.partitions = 1;
    cfg.max_threads = 2;
    cfg.slots_per_thread = 2;
    cfg.partition_width = 1000;
    cfg.watchdog_interval_ms = 2;
    cfg.watchdog_misses_to_degrade = 2;
    cfg.watchdog_misses_to_recover = 2;
    cfg.failover = policy;
    return cfg;
  }
};

template <typename Pred>
bool wait_for(Pred pred, std::chrono::seconds limit = std::chrono::seconds(5)) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return true;
}
}  // namespace

TEST(PartitionSet, FailoverRespawnsAndBouncesInFlight) {
  WedgeableSet w(hn::FailoverPolicy::kRespawn);
  hn::PartitionSet& set = w.set;

  // Wedge the combiner inside a handler with an op in flight.
  w.wedge.store(true, std::memory_order_release);
  hn::Request r;
  r.key = 7;
  hn::OpHandle h = set.call_async(0, 0, r);
  ASSERT_TRUE(h.valid);
  ASSERT_TRUE(wait_for([&] { return w.in_handler.load(std::memory_order_acquire); }));

  // A second op the wedged pass has NOT picked up: it will still be pending
  // when the lane is fenced, so the supervisor must bounce it.
  hn::Request r2;
  r2.key = 9;
  hn::OpHandle h2 = set.call_async(0, 1, r2);
  ASSERT_TRUE(h2.valid);

  // Force the failover path and wait until the supervisor has fenced.
  set.trigger_failover(0);
  ASSERT_TRUE(wait_for([&] { return set.failovers(0) >= 1; }));
  EXPECT_TRUE(set.degraded(0));

  // While fenced, blocking calls bounce immediately instead of blocking on
  // the dead lane (bounded-wait guarantee).
  EXPECT_TRUE(set.call(0, 1, r).failed_over);

  // Release the zombie. It finishes the op it already ran and delivers the
  // real reply — an executed op must never read failed_over, or the host's
  // retry would double-apply it. The supervisor then reaps the zombie,
  // bounces the never-picked-up op, and respawns a fresh combiner.
  w.wedge.store(false, std::memory_order_release);
  hn::Response done = set.retrieve(h);
  EXPECT_TRUE(done.ok);
  EXPECT_FALSE(done.failed_over);
  EXPECT_EQ(done.value, r.key + 1);
  hn::Response bounced = set.retrieve(h2);
  EXPECT_TRUE(bounced.failed_over);

  // The respawned combiner serves again; sustained progress clears the mark.
  ASSERT_TRUE(wait_for([&] {
    hn::Response resp = set.call(0, 0, r);
    return !resp.failed_over && resp.ok && resp.value == r.key + 1;
  }));
  ASSERT_TRUE(wait_for([&] {
    (void)set.call(0, 0, r);
    return !set.degraded(0);
  }));
  EXPECT_GE(set.recoveries(0), 1u);
  set.stop();
}

TEST(PartitionSet, HostLeaseServesUnderFence) {
  WedgeableSet w(hn::FailoverPolicy::kHostLease);
  hn::PartitionSet& set = w.set;

  w.wedge.store(true, std::memory_order_release);
  hn::Request r;
  r.key = 41;
  hn::OpHandle h = set.call_async(0, 0, r);
  ASSERT_TRUE(h.valid);
  ASSERT_TRUE(wait_for([&] { return w.in_handler.load(std::memory_order_acquire); }));

  // A second, never-picked-up op that must be bounced under the fence.
  hn::Request r2;
  r2.key = 43;
  hn::OpHandle h2 = set.call_async(0, 1, r2);
  ASSERT_TRUE(h2.valid);

  set.trigger_failover(0);
  ASSERT_TRUE(wait_for([&] { return set.failovers(0) >= 1; }));

  // Release the zombie so the supervisor can reap and hand the lane to the
  // hosts. The op the zombie already ran is delivered; the pending one is
  // bounced.
  w.wedge.store(false, std::memory_order_release);
  hn::Response done = set.retrieve(h);
  EXPECT_TRUE(done.ok);
  EXPECT_FALSE(done.failed_over);
  EXPECT_TRUE(set.retrieve(h2).failed_over);

  // Under the lease, host threads drive combiner passes themselves: calls
  // are served (not bounced) even though no combiner thread exists yet.
  ASSERT_TRUE(wait_for([&] {
    hn::Response resp = set.call(0, 1, r);
    return !resp.failed_over && resp.ok && resp.value == r.key + 1;
  }));

  // Sustained progress re-spawns a combiner under the lease lock and then
  // clears the mark.
  ASSERT_TRUE(wait_for([&] {
    (void)set.call(0, 0, r);
    return !set.degraded(0);
  }));
  EXPECT_GE(set.recoveries(0), 1u);

  // Fully healthy again: a plain blocking call round-trips via the combiner.
  hn::Response resp = set.call(0, 0, r);
  EXPECT_TRUE(resp.ok);
  EXPECT_FALSE(resp.failed_over);
  set.stop();

  if constexpr (ht::kEnabled) {
    const ht::Snapshot snap = ht::snapshot();
    EXPECT_GT(snap.counter_total(ht::names::kPartitionFailover), 0u);
    EXPECT_GT(snap.counter_total(ht::names::kPartitionRecovered), 0u);
    EXPECT_GT(snap.counter_total(ht::names::kFailoverBouncedOps), 0u);
  }
}

TEST(PartitionSet, BlockingAndAsyncInterleaveOnOneThread) {
  // A single host thread with an async op in flight must still be able to
  // issue blocking calls: the two paths use distinct slots of the thread's
  // row and neither may steal or clobber the other's response.
  auto set = make_set(1, 1, 2);
  set.set_handler(0, [](const hn::Request& req, hn::Response& resp) {
    if (req.op == hn::OpCode::kUpdate) {
      // Give the async op a measurable service time so the blocking call
      // genuinely overlaps it.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    resp.ok = true;
    resp.value = req.key + 1;
  });
  set.start();
  for (int round = 0; round < 100; ++round) {
    hn::Request slow;
    slow.op = hn::OpCode::kUpdate;
    slow.key = static_cast<hn::Key>(2 * round);
    hn::OpHandle h = set.call_async(0, 0, slow);
    ASSERT_TRUE(h.valid);

    hn::Request fast;
    fast.op = hn::OpCode::kRead;
    fast.key = static_cast<hn::Key>(2 * round + 1);
    hn::Response br = set.call(0, 0, fast);
    EXPECT_TRUE(br.ok);
    EXPECT_EQ(br.value, fast.key + 1);

    hn::Response ar = set.retrieve(h);
    EXPECT_TRUE(ar.ok);
    EXPECT_EQ(ar.value, slow.key + 1);
  }
  set.stop();
}

TEST(PartitionSet, RoutesByKeyRange) {
  auto set = make_set(4, 2, 2);
  EXPECT_EQ(set.partition_of(0), 0u);
  EXPECT_EQ(set.partition_of(999), 0u);
  EXPECT_EQ(set.partition_of(1000), 1u);
  EXPECT_EQ(set.partition_of(3999), 3u);
  EXPECT_EQ(set.partition_of(400000), 3u);  // clamped to last partition
}

TEST(PartitionSet, BlockingCallsHitCorrectPartition) {
  auto set = make_set(4, 2, 2);
  for (std::uint32_t p = 0; p < 4; ++p) {
    set.set_handler(p, [p](const hn::Request& req, hn::Response& resp) {
      resp.ok = true;
      resp.value = p * 1000 + req.key % 1000;
    });
  }
  set.start();
  hn::Request r;
  r.op = hn::OpCode::kRead;
  r.key = 2345;
  hn::Response resp = set.call(set.partition_of(r.key), /*thread=*/0, r);
  EXPECT_TRUE(resp.ok);
  EXPECT_EQ(resp.value, 2345u);
  set.stop();
}

TEST(PartitionSet, AsyncCallsCompleteAndRespectInflightLimit) {
  auto set = make_set(1, 1, 4);
  std::atomic<int> handled{0};
  set.set_handler(0, [&](const hn::Request& req, hn::Response& resp) {
    handled.fetch_add(1);
    resp.ok = true;
    resp.value = req.key + 1;
  });
  set.start();

  std::vector<hn::OpHandle> handles;
  hn::Request r;
  r.op = hn::OpCode::kNop;
  // A 5th in-flight call must be rejected before any retrieve.
  int accepted = 0;
  for (int i = 0; i < 5; ++i) {
    r.key = static_cast<hn::Key>(i);
    hn::OpHandle h = set.call_async(0, 0, r);
    if (h.valid) {
      handles.push_back(h);
      ++accepted;
    }
  }
  EXPECT_LE(accepted, 4);
  for (auto& h : handles) {
    hn::Response resp = set.retrieve(h);
    EXPECT_TRUE(resp.ok);
  }
  // Slots freed: a new async call must be accepted again.
  hn::OpHandle h = set.call_async(0, 0, r);
  EXPECT_TRUE(h.valid);
  (void)set.retrieve(h);
  set.stop();
  EXPECT_EQ(handled.load(), accepted + 1);
}

TEST(PartitionSet, TelemetryServedCountsSumToTotalOps) {
  if constexpr (!ht::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  // The registry is process-wide; clear residue from earlier tests in this
  // binary so the per-partition sums are attributable to this run.
  ht::reset_all();
  auto set = make_set(4, 4, 2);
  for (std::uint32_t p = 0; p < 4; ++p) {
    set.set_handler(p, [](const hn::Request&, hn::Response& resp) {
      resp.ok = true;
    });
  }
  set.start();
  constexpr std::uint64_t kOpsPerThread = 300;
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        hn::Request r;
        r.op = hn::OpCode::kRead;
        r.key = static_cast<hn::Key>((t * kOpsPerThread + i) * 7 % 4000);
        (void)set.call(set.partition_of(r.key), t, r);
      }
    });
  }
  for (auto& th : threads) th.join();
  set.stop();

  const ht::Snapshot snap = ht::snapshot();
  constexpr std::uint64_t kTotalOps = 4 * kOpsPerThread;
  // Per-partition served counts must sum to the total issued operations...
  EXPECT_EQ(snap.counter_total(ht::names::kServedTotal), kTotalOps);
  // ...and agree with the runtime's own served() accounting per partition.
  std::uint64_t nonzero_partitions = 0;
  for (const auto& c : snap.counters) {
    if (c.name != ht::names::kServedTotal) continue;
    ASSERT_GE(c.partition, 0);
    // The registry is process-wide: other tests in this binary may have
    // registered (now zeroed) instruments for partitions this set lacks.
    if (static_cast<std::uint32_t>(c.partition) >= set.partitions()) {
      EXPECT_EQ(c.value, 0u);
      continue;
    }
    EXPECT_EQ(c.value, set.core(static_cast<std::uint32_t>(c.partition)).served());
    nonzero_partitions += c.value > 0;
  }
  EXPECT_EQ(nonzero_partitions, 4u);  // the key pattern hits every partition
  // All offloads were blocking; queue-wait samples match the op count.
  EXPECT_EQ(snap.counter_total(ht::names::kOffloadPosted), kTotalOps);
  EXPECT_EQ(snap.histogram_total(ht::names::kQueueWaitNs).count(), kTotalOps);
  EXPECT_EQ(snap.counter_total(ht::names::kCallBlocking), kTotalOps);
  ht::reset_all();
}

TEST(PartitionSet, BatchHandlerSurvivesHandlerRebuild) {
  // set_handler() rebuilds the NmpCore; a batch handler installed *before*
  // that rebuild must still be in effect afterwards (and vice versa).
  auto set = make_set(1, 1, 4);
  std::atomic<std::uint64_t> batched_ops{0};
  set.set_batch_handler(0, [&](hn::BatchOp* ops, std::size_t n) {
    batched_ops.fetch_add(n);
    for (std::size_t i = 0; i < n; ++i) {
      ops[i].resp->ok = true;
      ops[i].resp->value = ops[i].req->key * 10;
    }
  });
  set.set_handler(0, [](const hn::Request& req, hn::Response& resp) {
    resp.ok = true;
    resp.value = req.key * 10;
  });
  // Fill the thread's async window before start() so the first scan pass
  // serves all four requests as one batch.
  std::vector<hn::OpHandle> handles;
  for (int i = 0; i < 4; ++i) {
    hn::Request r;
    r.op = hn::OpCode::kNop;
    r.key = static_cast<hn::Key>(4 - i);
    hn::OpHandle h = set.call_async(0, 0, r);
    ASSERT_TRUE(h.valid);
    handles.push_back(h);
  }
  set.start();
  for (int i = 0; i < 4; ++i) {
    hn::Response resp = set.retrieve(handles[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(resp.ok);
    EXPECT_EQ(resp.value, static_cast<hn::Value>((4 - i) * 10));
  }
  set.stop();
  EXPECT_EQ(batched_ops.load(), 4u);
}

TEST(PartitionSet, ConcurrentMixedBlockingAndAsync) {
  auto set = make_set(2, 4, 2);
  std::atomic<std::uint64_t> sum{0};
  for (std::uint32_t p = 0; p < 2; ++p) {
    set.set_handler(p, [&](const hn::Request& req, hn::Response& resp) {
      sum.fetch_add(req.key);
      resp.ok = true;
    });
  }
  set.start();
  std::atomic<std::uint64_t> expected{0};
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::vector<hn::OpHandle> pending;
      for (int i = 0; i < 500; ++i) {
        hn::Request r;
        r.key = t * 1000 + static_cast<hn::Key>(i);
        expected.fetch_add(r.key);
        std::uint32_t p = set.partition_of(r.key);
        if (i % 3 == 0) {
          (void)set.call(p, t, r);
        } else {
          hn::OpHandle h = set.call_async(p, t, r);
          if (!h.valid) {
            // Drain one pending handle and retry.
            ASSERT_FALSE(pending.empty());
            (void)set.retrieve(pending.front());
            pending.erase(pending.begin());
            h = set.call_async(p, t, r);
            ASSERT_TRUE(h.valid);
          }
          pending.push_back(h);
        }
      }
      for (auto& h : pending) (void)set.retrieve(h);
    });
  }
  for (auto& th : threads) th.join();
  set.stop();
  EXPECT_EQ(sum.load(), expected.load());
}
