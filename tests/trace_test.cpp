// Tests for the sampled operation-tracing layer (trace.hpp / export.hpp):
// ring wrap/overflow drop accounting, sampling determinism under a fixed
// seed, Chrome trace-event JSON validity, and the per-phase latency
// breakdown's attribution/coverage arithmetic.
//
// Sampler and Ring are always compiled, so their tests run even in
// -DHYBRIDS_NO_TRACE builds; tests of the global recording API skip there
// (the API collapses to empty inlines).

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "hybrids/trace/export.hpp"
#include "hybrids/trace/trace.hpp"

namespace {

using namespace hybrids;

trace::Event make_event(std::uint64_t op_id, trace::Phase phase,
                        std::uint64_t start_ns, std::uint64_t dur_ns,
                        std::uint8_t flags = 0, std::uint32_t track = 0,
                        std::int16_t partition = -1) {
  trace::Event e;
  e.op_id = op_id;
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  e.track = track;
  e.partition = partition;
  e.phase = phase;
  e.op = 0;
  e.flags = flags;
  return e;
}

// ---------------------------------------------------------------------------
// Ring

TEST(Ring, RetainsEverythingBeforeWrap) {
  trace::Ring ring(8);
  for (std::uint64_t i = 0; i < 3; ++i) {
    ring.push(make_event(i + 1, trace::Phase::kOp, /*start_ns=*/i, 1));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<trace::Event> events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(events[i].start_ns, i);
}

TEST(Ring, WrapOverwritesOldestAndCountsDropped) {
  trace::Ring ring(8);
  for (std::uint64_t i = 0; i < 11; ++i) {
    ring.push(make_event(i + 1, trace::Phase::kOp, /*start_ns=*/i, 1));
  }
  EXPECT_EQ(ring.pushed(), 11u);
  EXPECT_EQ(ring.size(), 8u);    // capacity retained
  EXPECT_EQ(ring.dropped(), 3u);  // the 3 oldest were overwritten
  const std::vector<trace::Event> events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first: events 3..10 survive, 0..2 were overwritten.
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(events[i].start_ns, i + 3);
}

TEST(Ring, ClearResets) {
  trace::Ring ring(4);
  for (int i = 0; i < 9; ++i) {
    ring.push(make_event(1, trace::Phase::kOp, 0, 1));
  }
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

// ---------------------------------------------------------------------------
// Sampler

std::vector<bool> fire_sequence(trace::Sampler& s, int n) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(s.fire());
  return out;
}

TEST(Sampler, DeterministicForSeedStreamEvery) {
  trace::Sampler a(/*seed=*/42, /*stream=*/7, /*every=*/4);
  trace::Sampler b(/*seed=*/42, /*stream=*/7, /*every=*/4);
  const std::vector<bool> sa = fire_sequence(a, 256);
  const std::vector<bool> sb = fire_sequence(b, 256);
  EXPECT_EQ(sa, sb);
  // After the initial offset, every 4th op fires: 256/4 = 64 +/- 1.
  const auto fired =
      static_cast<int>(std::count(sa.begin(), sa.end(), true));
  EXPECT_GE(fired, 63);
  EXPECT_LE(fired, 65);
  // Consecutive fires are exactly `every` apart.
  int last = -1;
  for (int i = 0; i < 256; ++i) {
    if (!sa[static_cast<std::size_t>(i)]) continue;
    if (last >= 0) {
      EXPECT_EQ(i - last, 4);
    }
    last = i;
  }
}

TEST(Sampler, StreamsDecorrelate) {
  // Different streams (thread ordinals) must not all sample in lockstep:
  // at least two of a handful of streams start at different offsets.
  trace::Sampler base(/*seed=*/42, /*stream=*/0, /*every=*/64);
  const std::vector<bool> s0 = fire_sequence(base, 64);
  bool any_different = false;
  for (std::uint64_t stream = 1; stream <= 8 && !any_different; ++stream) {
    trace::Sampler s(/*seed=*/42, stream, /*every=*/64);
    any_different = fire_sequence(s, 64) != s0;
  }
  EXPECT_TRUE(any_different);
}

TEST(Sampler, ZeroDisables) {
  trace::Sampler s(/*seed=*/1, /*stream=*/1, /*every=*/0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(s.fire());
}

// ---------------------------------------------------------------------------
// Global recording API (compiled-out builds skip)

class TraceApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if constexpr (!trace::kCompiledIn) {
      GTEST_SKIP() << "tracing compiled out";
    }
    trace::set_sample_every(0);
    trace::reset();
  }
  void TearDown() override {
    trace::set_sample_every(0);
    trace::set_ring_capacity(trace::Ring::kDefaultCapacity);
    trace::reset();
  }
};

TEST_F(TraceApiTest, BeginOpUnsampledWhenDisabled) {
  trace::set_sample_every(0);
  const trace::OpToken tok = trace::begin_op();
  EXPECT_FALSE(tok.sampled());
  EXPECT_EQ(tok.id, 0u);
  // Records keyed by an unsampled token are dropped without branching at
  // the call site.
  trace::record_span(tok.id, trace::Phase::kHostDescend, 0, 10);
  EXPECT_TRUE(trace::drain().events.empty());
}

TEST_F(TraceApiTest, SamplingDeterministicAcrossRuns) {
  auto run_mask = [] {
    trace::reset();
    trace::set_sample_seed(42);
    trace::set_sample_every(4);
    std::vector<bool> mask;
    for (int i = 0; i < 128; ++i) {
      mask.push_back(trace::begin_op().sampled());
    }
    return mask;
  };
  const std::vector<bool> first = run_mask();
  const std::vector<bool> second = run_mask();
  EXPECT_EQ(first, second);
  const auto fired =
      static_cast<int>(std::count(first.begin(), first.end(), true));
  EXPECT_GE(fired, 31);  // 128/4, +/- the initial offset
  EXPECT_LE(fired, 33);
}

TEST_F(TraceApiTest, DrainSortsByStartAndCountsSampledOps) {
  // SetUp already GTEST_SKIPs when compiled out; the compile-time return
  // additionally discards the body so gcc doesn't const-fold drain() to an
  // empty vector and flag the element accesses (-Warray-bounds).
  if constexpr (!trace::kCompiledIn) return;
  trace::set_sample_every(1);
  const trace::OpToken a = trace::begin_op_at(100);
  const trace::OpToken b = trace::begin_op_at(200);
  ASSERT_TRUE(a.sampled());
  ASSERT_TRUE(b.sampled());
  // Record out of start order; drain must sort.
  trace::record_span(b.id, trace::Phase::kHostDescend, 200, 230);
  trace::record_span(a.id, trace::Phase::kHostDescend, 100, 120);
  trace::end_op(b, 260, 0, -1, /*offloaded=*/true);
  trace::end_op(a, 150, 0, -1, /*offloaded=*/true);
  const trace::TraceData data = trace::drain();
  ASSERT_EQ(data.events.size(), 4u);
  for (std::size_t i = 1; i < data.events.size(); ++i) {
    EXPECT_LE(data.events[i - 1].start_ns, data.events[i].start_ns);
  }
  EXPECT_EQ(data.sampled_ops, 2u);
  EXPECT_EQ(data.dropped, 0u);
}

TEST_F(TraceApiTest, DrainReportsRingOverflowAsDropped) {
  if constexpr (!trace::kCompiledIn) return;  // see above
  // Capacity applies to rings created afterwards, so record from a fresh
  // thread (its ring is created at its first record).
  trace::set_ring_capacity(8);
  trace::set_sample_every(1);
  std::thread recorder([] {
    const trace::OpToken tok = trace::begin_op_at(0);
    ASSERT_TRUE(tok.sampled());
    for (std::uint64_t i = 0; i < 20; ++i) {
      trace::record_span(tok.id, trace::Phase::kRetry, i, i + 1);
    }
  });
  recorder.join();
  const trace::TraceData data = trace::drain();
  EXPECT_EQ(data.dropped, 12u);  // 20 pushed into a capacity-8 ring
  // The retained events are the newest 8.
  ASSERT_EQ(data.events.size(), 8u);
  EXPECT_EQ(data.events.front().start_ns, 12u);
  EXPECT_EQ(data.events.back().start_ns, 19u);
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON exporter

// Minimal recursive-descent JSON validator: structure only, no data model.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\\') { pos_ += 2; continue; }
      if (c == '"') { ++pos_; return true; }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

trace::TraceData synthetic_trace() {
  trace::TraceData data;
  // One offloaded op whose leaf phases tile it exactly.
  data.events.push_back(make_event(1, trace::Phase::kOp, 0, 1000,
                                   trace::kFlagOffloaded, /*track=*/0));
  data.events.push_back(
      make_event(1, trace::Phase::kHostDescend, 0, 100, 0, 0));
  data.events.push_back(make_event(1, trace::Phase::kPublish, 100, 50, 0, 0));
  data.events.push_back(make_event(1, trace::Phase::kQueueWait, 150, 250, 0,
                                   trace::kCombinerTrackBase + 2, 2));
  data.events.push_back(make_event(1, trace::Phase::kApply, 400, 400, 0,
                                   trace::kCombinerTrackBase + 2, 2));
  data.events.push_back(make_event(1, trace::Phase::kReply, 800, 50, 0,
                                   trace::kCombinerTrackBase + 2, 2));
  data.events.push_back(make_event(1, trace::Phase::kWake, 850, 150, 0, 0));
  // A retry instant and a host-only (non-offloaded) op.
  data.events.push_back(
      make_event(1, trace::Phase::kRetry, 40, 0, trace::kFlagInstant, 0));
  data.events.push_back(make_event(2, trace::Phase::kOp, 2000, 300, 0, 1));
  data.sampled_ops = 2;
  data.dropped = 5;
  return data;
}

TEST(TraceExport, ChromeJsonIsValid) {
  const trace::TraceData data = synthetic_trace();
  const std::string json = trace::to_chrome_json(data);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("hybrids.trace.v1"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete spans
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // retry instant
}

TEST(TraceExport, ChromeJsonOfEmptyTraceIsValid) {
  const std::string json = trace::to_chrome_json(trace::TraceData{});
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceExport, BreakdownAttributesLeafPhases) {
  const trace::Breakdown b = trace::breakdown(synthetic_trace());
  // Only op 1 is flagged offloaded; op 2 stays out of the denominator.
  EXPECT_EQ(b.offloaded_ops, 1u);
  EXPECT_EQ(b.offloaded_op_ns, 1000u);
  // The six leaf phases tile the op exactly: coverage 1.0.
  EXPECT_EQ(b.attributed_ns, 1000u);
  EXPECT_DOUBLE_EQ(b.coverage(), 1.0);
  auto stat = [&](trace::Phase p) {
    return b.phases[static_cast<std::size_t>(p)];
  };
  EXPECT_EQ(stat(trace::Phase::kQueueWait).count, 1u);
  EXPECT_EQ(stat(trace::Phase::kQueueWait).total_ns, 250u);
  EXPECT_EQ(stat(trace::Phase::kApply).total_ns, 400u);
  EXPECT_EQ(stat(trace::Phase::kRetry).count, 1u);
  EXPECT_EQ(stat(trace::Phase::kRetry).total_ns, 0u);  // instant
}

TEST(TraceExport, BreakdownTableIsHumanReadable) {
  const std::string table =
      trace::breakdown_table(trace::breakdown(synthetic_trace()));
  EXPECT_NE(table.find("coverage"), std::string::npos);
  EXPECT_NE(table.find("queue_wait"), std::string::npos);
  EXPECT_NE(table.find("apply"), std::string::npos);
}

}  // namespace
