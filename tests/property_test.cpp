// Parameterized property tests: reference-model equivalence and structural
// invariants swept across configuration space (heights, partition counts,
// fill factors, cache geometries).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>

#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/ds/lockfree_skiplist.hpp"
#include "hybrids/ds/seqlock_btree.hpp"
#include "hybrids/sim/mem/cache.hpp"
#include "hybrids/util/rng.hpp"
#include "hybrids/workload/zipf.hpp"

namespace hd = hybrids::ds;
namespace hu = hybrids::util;
namespace hs = hybrids::sim;
namespace hw = hybrids::workload;
using hybrids::Key;
using hybrids::Value;

// ---------------------------------------------------------------------------
// Hybrid skiplist: model equivalence across split geometries
// ---------------------------------------------------------------------------

// (total_height, nmp_height, partitions)
using SkiplistGeometry = std::tuple<int, int, std::uint32_t>;

class HybridSkipListGeometry : public ::testing::TestWithParam<SkiplistGeometry> {};

TEST_P(HybridSkipListGeometry, MatchesReferenceModel) {
  auto [total, nmp, partitions] = GetParam();
  hd::HybridSkipList::Config cfg;
  cfg.total_height = total;
  cfg.nmp_height = nmp;
  cfg.partitions = partitions;
  cfg.partition_width = static_cast<Key>((1u << 16) / partitions);
  cfg.max_threads = 1;
  // Hot-key cache at a deliberately tiny budget: every sweep churns fills,
  // evictions, and write invalidations while the model check stays exact.
  cfg.cache_budget_bytes = 2 * 1024;
  hd::HybridSkipList list(cfg);

  std::map<Key, Value> model;
  std::vector<hybrids::ScanEntry> buf;
  hu::Xoshiro256 rng(total * 1000 + nmp * 10 + partitions);
  for (int i = 0; i < 6000; ++i) {
    Key k = static_cast<Key>(rng.next_below(1u << 14));
    switch (rng.next_below(5)) {
      case 0: {
        Value v = static_cast<Value>(rng.next());
        ASSERT_EQ(list.insert(k, v, 0), model.emplace(k, v).second);
        break;
      }
      case 1:
        ASSERT_EQ(list.remove(k, 0), model.erase(k) > 0);
        break;
      case 2: {
        Value v = static_cast<Value>(rng.next());
        bool present = model.count(k) > 0;
        ASSERT_EQ(list.update(k, v, 0), present);
        if (present) model[k] = v;
        break;
      }
      case 3: {
        // Stitched range scan vs the model's lower_bound slice, exact match.
        const std::size_t len = rng.next_below(40);
        buf.assign(len > 0 ? len : 1, {});
        const std::size_t n = list.scan(k, len, buf.data(), 0);
        auto it = model.lower_bound(k);
        for (std::size_t j = 0; j < n; ++j, ++it) {
          ASSERT_NE(it, model.end()) << "scan overran model at " << k;
          ASSERT_EQ(buf[j].key, it->first) << "start=" << k << " j=" << j;
          ASSERT_EQ(buf[j].value, it->second) << "start=" << k << " j=" << j;
        }
        ASSERT_TRUE(n == len || it == model.end())
            << "scan undershot: start=" << k << " got " << n << "/" << len;
        break;
      }
      default: {
        Value v = 0;
        auto it = model.find(k);
        ASSERT_EQ(list.read(k, v, 0), it != model.end());
        if (it != model.end()) { ASSERT_EQ(v, it->second); }
      }
    }
  }
  EXPECT_EQ(list.size(), model.size());
  EXPECT_TRUE(list.validate());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HybridSkipListGeometry,
    ::testing::Values(SkiplistGeometry{8, 4, 1}, SkiplistGeometry{8, 4, 2},
                      SkiplistGeometry{12, 6, 4}, SkiplistGeometry{12, 2, 4},
                      SkiplistGeometry{12, 10, 4}, SkiplistGeometry{16, 8, 8},
                      SkiplistGeometry{10, 9, 2}, SkiplistGeometry{10, 1, 8}));

// ---------------------------------------------------------------------------
// Hybrid B+ tree: model equivalence across split level / partitions / fill
// ---------------------------------------------------------------------------

// (nmp_levels, partitions, fill)
using BTreeGeometry = std::tuple<int, std::uint32_t, double>;

class HybridBTreeGeometry : public ::testing::TestWithParam<BTreeGeometry> {};

TEST_P(HybridBTreeGeometry, MatchesReferenceModel) {
  auto [nmp_levels, partitions, fill] = GetParam();
  std::vector<Key> keys;
  std::vector<Value> vals;
  std::map<Key, Value> model;
  for (int i = 0; i < 4000; ++i) {
    keys.push_back(static_cast<Key>(i * 4));
    vals.push_back(static_cast<Value>(i));
    model[keys.back()] = vals.back();
  }
  hd::HybridBTree::Config cfg;
  cfg.nmp_levels = nmp_levels;
  cfg.partitions = partitions;
  cfg.max_threads = 1;
  cfg.fill = fill;
  // Same tiny-budget hot-key cache as the skiplist sweep: eviction churn on
  // every geometry, exact-model equivalence unchanged.
  cfg.cache_budget_bytes = 2 * 1024;
  hd::HybridBTree tree(cfg, keys, vals);
  ASSERT_EQ(tree.size(), model.size());
  ASSERT_TRUE(tree.validate());

  hu::Xoshiro256 rng(nmp_levels * 100 + partitions);
  std::vector<hybrids::ScanEntry> buf;
  for (int i = 0; i < 8000; ++i) {
    Key k = static_cast<Key>(rng.next_below(20000));
    switch (rng.next_below(5)) {
      case 0: {
        Value v = static_cast<Value>(rng.next());
        ASSERT_EQ(tree.insert(k, v, 0), model.emplace(k, v).second) << k;
        break;
      }
      case 1:
        ASSERT_EQ(tree.remove(k, 0), model.erase(k) > 0) << k;
        break;
      case 2: {
        Value v = static_cast<Value>(rng.next());
        bool present = model.count(k) > 0;
        ASSERT_EQ(tree.update(k, v, 0), present) << k;
        if (present) model[k] = v;
        break;
      }
      case 3: {
        // Stitched range scan vs the model's lower_bound slice, exact match.
        const std::size_t len = rng.next_below(40);
        buf.assign(len > 0 ? len : 1, {});
        const std::size_t n = tree.scan(k, len, buf.data(), 0);
        auto it = model.lower_bound(k);
        for (std::size_t j = 0; j < n; ++j, ++it) {
          ASSERT_NE(it, model.end()) << "scan overran model at " << k;
          ASSERT_EQ(buf[j].key, it->first) << "start=" << k << " j=" << j;
          ASSERT_EQ(buf[j].value, it->second) << "start=" << k << " j=" << j;
        }
        ASSERT_TRUE(n == len || it == model.end())
            << "scan undershot: start=" << k << " got " << n << "/" << len;
        break;
      }
      default: {
        Value v = 0;
        auto it = model.find(k);
        ASSERT_EQ(tree.read(k, v, 0), it != model.end()) << k;
        if (it != model.end()) { ASSERT_EQ(v, it->second); }
      }
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  EXPECT_TRUE(tree.validate());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HybridBTreeGeometry,
    ::testing::Values(BTreeGeometry{1, 1, 0.5}, BTreeGeometry{1, 4, 0.5},
                      BTreeGeometry{2, 4, 0.5}, BTreeGeometry{3, 8, 0.5},
                      BTreeGeometry{2, 2, 0.9}, BTreeGeometry{2, 8, 0.3},
                      BTreeGeometry{4, 2, 0.5}));

// ---------------------------------------------------------------------------
// Lock-free skiplist: heights sweep
// ---------------------------------------------------------------------------

class LfSkipListHeight : public ::testing::TestWithParam<int> {};

TEST_P(LfSkipListHeight, InvariantsHoldAfterChurn) {
  const int height = GetParam();
  hd::LfSkipList list(height);
  hu::Xoshiro256 rng(height);
  std::map<Key, Value> model;
  for (int i = 0; i < 5000; ++i) {
    Key k = static_cast<Key>(1 + rng.next_below(500));
    if (rng.next() & 1) {
      Value v = static_cast<Value>(rng.next());
      ASSERT_EQ(list.insert(k, v, hd::random_height(rng, height)),
                model.emplace(k, v).second);
    } else {
      ASSERT_EQ(list.remove(k), model.erase(k) > 0);
    }
  }
  EXPECT_EQ(list.size(), model.size());
  EXPECT_TRUE(list.validate());
}

INSTANTIATE_TEST_SUITE_P(Heights, LfSkipListHeight,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 24, 32));

// ---------------------------------------------------------------------------
// Seqlock B+ tree: fill-factor sweep for sorted bulk loads
// ---------------------------------------------------------------------------

class BTreeFill : public ::testing::TestWithParam<double> {};

TEST_P(BTreeFill, BulkLoadValidAndSearchable) {
  const double fill = GetParam();
  std::vector<Key> keys;
  std::vector<Value> vals;
  for (int i = 0; i < 20000; ++i) {
    keys.push_back(static_cast<Key>(i * 3));
    vals.push_back(static_cast<Value>(i));
  }
  hd::SeqLockBTree tree;
  tree.build_from_sorted(keys, vals, fill);
  EXPECT_EQ(tree.size(), keys.size());
  EXPECT_TRUE(tree.validate());
  Value v = 0;
  hu::Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto idx = rng.next_below(keys.size());
    ASSERT_TRUE(tree.read(keys[idx], v));
    EXPECT_EQ(v, vals[idx]);
  }
  // Inserts still work on a bulk-loaded tree at any fill.
  for (Key k = 1; k < 100; k += 3) ASSERT_TRUE(tree.insert(k, k));
  EXPECT_TRUE(tree.validate());
}

INSTANTIATE_TEST_SUITE_P(Fills, BTreeFill,
                         ::testing::Values(0.2, 0.35, 0.5, 0.7, 0.9, 1.0));

// ---------------------------------------------------------------------------
// Cache model: geometry sweep
// ---------------------------------------------------------------------------

// (bytes, assoc)
using CacheGeometry = std::tuple<std::size_t, int>;

class CacheGeometrySweep : public ::testing::TestWithParam<CacheGeometry> {};

TEST_P(CacheGeometrySweep, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup) {
  auto [bytes, assoc] = GetParam();
  hs::CacheModel cache(bytes, assoc, 128);
  const std::uint64_t blocks = bytes / 128 / 2;  // half capacity
  for (std::uint64_t b = 0; b < blocks; ++b) cache.access(b, false);
  cache.reset_stats();
  hu::Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(cache.access(rng.next_below(blocks), false).hit);
  }
  EXPECT_EQ(cache.misses(), 0u);
}

TEST_P(CacheGeometrySweep, WorkingSetMuchLargerThanCacheMostlyMisses) {
  auto [bytes, assoc] = GetParam();
  hs::CacheModel cache(bytes, assoc, 128);
  const std::uint64_t blocks = (bytes / 128) * 64;
  hu::Xoshiro256 rng(2);
  for (int i = 0; i < 20000; ++i) cache.access(rng.next_below(blocks), false);
  const double miss_rate =
      static_cast<double>(cache.misses()) /
      static_cast<double>(cache.hits() + cache.misses());
  EXPECT_GT(miss_rate, 0.9);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometrySweep,
                         ::testing::Values(CacheGeometry{4096, 1},
                                           CacheGeometry{8192, 2},
                                           CacheGeometry{65536, 2},
                                           CacheGeometry{65536, 8},
                                           CacheGeometry{1 << 20, 8},
                                           CacheGeometry{1 << 20, 16}));

// ---------------------------------------------------------------------------
// Zipfian: skew increases with item count held fixed across theta
// ---------------------------------------------------------------------------

class ZipfianN : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZipfianN, HeadProbabilityMatchesZeta) {
  const std::uint64_t n = GetParam();
  hw::ZipfianGenerator z(n);
  hu::Xoshiro256 rng(n);
  constexpr int kDraws = 100000;
  int head = 0;
  for (int i = 0; i < kDraws; ++i) head += (z.next(rng) == 0);
  // p(rank 0) = 1 / zeta_0.99(n); compute zeta directly.
  double zeta = 0;
  for (std::uint64_t i = 1; i <= n; ++i) zeta += 1.0 / std::pow(double(i), 0.99);
  EXPECT_NEAR(head / double(kDraws), 1.0 / zeta, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ZipfianN,
                         ::testing::Values(16ull, 256ull, 4096ull, 65536ull));
