// Tests for the simulator substrate: event engine + coroutine tasks, cache
// model, DRAM vault timing, and the routed memory system.
#include <gtest/gtest.h>

#include <vector>

#include "hybrids/sim/core/event_queue.hpp"
#include "hybrids/sim/core/task.hpp"
#include "hybrids/sim/machine/config.hpp"
#include "hybrids/sim/mem/cache.hpp"
#include "hybrids/sim/mem/dram.hpp"
#include "hybrids/sim/mem/memory_system.hpp"
#include "hybrids/util/rng.hpp"

namespace hs = hybrids::sim;

// ---------- Engine + Task ----------

namespace {
hs::Task<void> record_at(hs::Engine& e, hs::Tick d, std::vector<hs::Tick>& out) {
  co_await e.delay(d);
  out.push_back(e.now());
}

hs::Task<int> add_later(hs::Engine& e, int a, int b) {
  co_await e.delay(100);
  co_return a + b;
}

hs::Task<void> parent(hs::Engine& e, int& result) {
  const int x = co_await add_later(e, 2, 3);
  co_await e.delay(50);
  const int y = co_await add_later(e, x, 10);
  result = y;
}
}  // namespace

TEST(Engine, DelaysResumeInTickOrder) {
  hs::Engine e;
  std::vector<hs::Tick> order;
  e.spawn(record_at(e, 300, order));
  e.spawn(record_at(e, 100, order));
  e.spawn(record_at(e, 200, order));
  e.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 100u);
  EXPECT_EQ(order[1], 200u);
  EXPECT_EQ(order[2], 300u);
}

TEST(Engine, NestedTasksReturnValuesAndAdvanceTime) {
  hs::Engine e;
  int result = 0;
  e.spawn(parent(e, result));
  const hs::Tick end = e.run();
  EXPECT_EQ(result, 15);
  EXPECT_EQ(end, 250u);  // 100 + 50 + 100
}

TEST(Engine, SameTickEventsRunFifo) {
  hs::Engine e;
  std::vector<hs::Tick> order;
  std::vector<int> ids;
  auto actor = [&](int id) -> hs::Task<void> {
    co_await e.delay(10);
    ids.push_back(id);
  };
  e.spawn(actor(1));
  e.spawn(actor(2));
  e.spawn(actor(3));
  e.run();
  EXPECT_EQ(ids, (std::vector<int>{1, 2, 3}));
}

// ---------- CacheModel ----------

TEST(CacheModel, HitAfterFill) {
  hs::CacheModel c(1024, 2, 128);  // 4 sets x 2 ways
  EXPECT_FALSE(c.access(1, false).hit);
  EXPECT_TRUE(c.access(1, false).hit);
  EXPECT_TRUE(c.contains(1));
}

TEST(CacheModel, LruEvictionWithinSet) {
  hs::CacheModel c(1024, 2, 128);  // 4 sets, 2-way: set = block % 4
  // Blocks 0, 4, 8 all map to set 0.
  c.access(0, false);
  c.access(4, false);
  c.access(0, false);              // 0 is MRU, 4 is LRU
  auto r = c.access(8, false);     // evicts 4
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted_valid);
  EXPECT_EQ(r.evicted, 4u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(4));
}

TEST(CacheModel, DirtyEvictionReportsWriteback) {
  hs::CacheModel c(1024, 2, 128);
  c.access(0, true);   // dirty
  c.access(4, false);
  c.access(8, false);  // evicts 0 (LRU) -> writeback
  // One of the two misses above must have evicted the dirty block 0.
  EXPECT_FALSE(c.contains(0));
}

TEST(CacheModel, InvalidateRemovesBlock) {
  hs::CacheModel c(1024, 2, 128);
  c.access(7, false);
  EXPECT_TRUE(c.invalidate(7));
  EXPECT_FALSE(c.contains(7));
  EXPECT_FALSE(c.invalidate(7));
}

TEST(CacheModel, StatsCountHitsAndMisses) {
  hs::CacheModel c(64 * 1024, 2, 128);
  for (int i = 0; i < 100; ++i) c.access(static_cast<std::uint64_t>(i), false);
  for (int i = 0; i < 100; ++i) c.access(static_cast<std::uint64_t>(i), false);
  EXPECT_EQ(c.misses(), 100u);
  EXPECT_EQ(c.hits(), 100u);
}

// ---------- DramVault ----------

TEST(DramVault, RowMissThenRowHitLatency) {
  hs::DramTiming t;
  hs::DramVault v(t, 8, 128, 16);
  // First access to a closed bank: activate + CAS + burst.
  const hs::Tick lat1 = v.access(0, false, 0);
  EXPECT_EQ(lat1, t.tRCD + t.tCL + t.tBURST);
  // Same row (next block in the same bank is +8 blocks away): row hit.
  const hs::Tick lat2 = v.access(8 * 128, false, lat1);
  EXPECT_EQ(lat2, t.tCL + t.tBURST);
  EXPECT_EQ(v.row_hits(), 1u);
  EXPECT_EQ(v.row_misses(), 1u);
}

TEST(DramVault, ConflictingRowRequiresPrecharge) {
  hs::DramTiming t;
  hs::DramVault v(t, 8, 128, 16);
  (void)v.access(0, false, 0);  // opens row 0 of bank 0
  // Same bank, different row: block index multiple of 8 (bank 0), beyond
  // 16 blocks/row -> row 1.
  const std::uint64_t far = 128ull * 8 * 16;  // bank 0, row 1
  const hs::Tick lat = v.access(far, false, 1'000'000);
  EXPECT_EQ(lat, t.tRP + t.tRCD + t.tCL + t.tBURST);
}

TEST(DramVault, BusyBankQueuesRequests) {
  hs::DramTiming t;
  hs::DramVault v(t, 8, 128, 16);
  const hs::Tick lat1 = v.access(0, false, 0);
  // Immediately issue another request to the same bank: it waits.
  const hs::Tick lat2 = v.access(0, false, 0);
  EXPECT_EQ(lat2, lat1 + t.tCL + t.tBURST);  // queue + row hit
  // A different bank is free in parallel.
  const hs::Tick lat3 = v.access(128, false, 0);
  EXPECT_EQ(lat3, t.tRCD + t.tCL + t.tBURST);
}

// ---------- MemorySystem ----------

TEST(MemorySystem, L1HitIsCheapRepeatAccess) {
  hs::MachineConfig cfg;
  hs::MemorySystem mem(cfg);
  const hs::Tick first = mem.host_access(0, 0x10000, false, 0);
  const hs::Tick second = mem.host_access(0, 0x10000, false, first);
  EXPECT_GT(first, cfg.l2_latency);  // cold: went to DRAM
  EXPECT_EQ(second, cfg.l1_latency);
  EXPECT_EQ(mem.stats().host_dram_reads, 1u);
  EXPECT_EQ(mem.stats().l1_hits, 1u);
}

TEST(MemorySystem, SecondCoreHitsInSharedL2) {
  hs::MachineConfig cfg;
  hs::MemorySystem mem(cfg);
  (void)mem.host_access(0, 0x20000, false, 0);
  const hs::Tick lat = mem.host_access(1, 0x20000, false, 100000);
  EXPECT_EQ(lat, cfg.l1_latency + cfg.l2_latency);
  EXPECT_EQ(mem.stats().host_dram_reads, 1u);
}

TEST(MemorySystem, WriteInvalidatesOtherCores) {
  hs::MachineConfig cfg;
  hs::MemorySystem mem(cfg);
  (void)mem.host_access(0, 0x30000, false, 0);
  (void)mem.host_access(1, 0x30000, false, 0);
  // Core 1 writes: core 0's copy must be invalidated -> core 0 re-fetches
  // from L2, not L1.
  (void)mem.host_access(1, 0x30000, true, 0);
  const hs::Tick lat = mem.host_access(0, 0x30000, false, 200000);
  EXPECT_EQ(lat, cfg.l1_latency + cfg.l2_latency);
}

TEST(MemorySystem, NmpAccessSkipsCachesAndLink) {
  hs::MachineConfig cfg;
  hs::MemorySystem mem(cfg);
  const hs::Tick lat = mem.nmp_access(0, 0x40000, false, 0);
  // Row miss on a closed bank + one NMP cycle, but no link/cache latency.
  EXPECT_EQ(lat, cfg.nmp_cycle + cfg.dram.tRCD + cfg.dram.tCL + cfg.dram.tBURST);
  EXPECT_EQ(mem.stats().nmp_dram_reads, 1u);
  EXPECT_EQ(mem.stats().host_dram_reads, 0u);
}

TEST(MemorySystem, MmioCostsMatchProtocol) {
  hs::MachineConfig cfg;
  hs::MemorySystem mem(cfg);
  EXPECT_EQ(mem.host_mmio(true, 0), cfg.link_latency + cfg.scratchpad_latency);
  EXPECT_EQ(mem.host_mmio(false, 0),
            2 * cfg.link_latency + cfg.scratchpad_latency);
  EXPECT_EQ(mem.stats().mmio_writes, 1u);
  EXPECT_EQ(mem.stats().mmio_reads, 1u);
}

TEST(MemorySystem, DramReadsEqualL2MissesForReads) {
  hs::MachineConfig cfg;
  hs::MemorySystem mem(cfg);
  hybrids::util::Xoshiro256 rng(9);
  for (int i = 0; i < 5000; ++i) {
    (void)mem.host_access(static_cast<std::uint32_t>(i % 8),
                          rng.next() % (1ull << 30), false, 0);
  }
  EXPECT_EQ(mem.stats().host_dram_reads, mem.stats().l2_misses);
  EXPECT_EQ(mem.stats().l1_hits + mem.stats().l1_misses, 5000u);
}
