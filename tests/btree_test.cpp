// Tests for the host-only seqlock B+ tree baseline.
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "hybrids/ds/seqlock_btree.hpp"
#include "hybrids/util/rng.hpp"

namespace hd = hybrids::ds;
namespace hu = hybrids::util;
using hybrids::Key;
using hybrids::Value;

TEST(SeqLockBTree, EmptyTreeBehaves) {
  hd::SeqLockBTree tree;
  Value v = 0;
  EXPECT_FALSE(tree.read(1, v));
  EXPECT_FALSE(tree.remove(1));
  EXPECT_FALSE(tree.update(1, 2));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.validate());
}

TEST(SeqLockBTree, InsertAndReadBack) {
  hd::SeqLockBTree tree;
  for (Key k = 1; k <= 100; ++k) EXPECT_TRUE(tree.insert(k * 2, k));
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.validate());
  Value v = 0;
  for (Key k = 1; k <= 100; ++k) {
    ASSERT_TRUE(tree.read(k * 2, v));
    EXPECT_EQ(v, k);
    EXPECT_FALSE(tree.read(k * 2 + 1, v));
  }
}

TEST(SeqLockBTree, DuplicateInsertFails) {
  hd::SeqLockBTree tree;
  EXPECT_TRUE(tree.insert(5, 1));
  EXPECT_FALSE(tree.insert(5, 2));
  Value v = 0;
  ASSERT_TRUE(tree.read(5, v));
  EXPECT_EQ(v, 1u);
}

TEST(SeqLockBTree, LeafSplitsPreserveOrder) {
  hd::SeqLockBTree tree;
  // More than one leaf's worth, inserted descending to stress shifting.
  for (int i = 100; i >= 1; --i) ASSERT_TRUE(tree.insert(static_cast<Key>(i), static_cast<Value>(i)));
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.validate());
  EXPECT_GE(tree.height(), 2);
}

TEST(SeqLockBTree, RootGrowthUnderSortedInserts) {
  hd::SeqLockBTree tree;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(tree.insert(static_cast<Key>(i + 1), 7));
  EXPECT_EQ(tree.size(), static_cast<std::size_t>(kN));
  // Sorted inserts leave leaves ~half full: 5000/7 leaves, fanout ~8.
  EXPECT_GE(tree.height(), 4);
  EXPECT_TRUE(tree.validate());
  Value v = 0;
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(tree.read(static_cast<Key>(i + 1), v));
}

TEST(SeqLockBTree, BuildFromSortedMatchesPaperShape) {
  std::vector<Key> keys;
  std::vector<Value> vals;
  for (int i = 0; i < 100000; ++i) {
    keys.push_back(static_cast<Key>(i * 2));
    vals.push_back(static_cast<Value>(i));
  }
  hd::SeqLockBTree tree;
  tree.build_from_sorted(keys, vals, 0.5);
  EXPECT_EQ(tree.size(), 100000u);
  EXPECT_TRUE(tree.validate());
  // Half-full: ~14286 leaves, inner fanout ~7..8 -> height ~6.
  EXPECT_GE(tree.height(), 5);
  EXPECT_LE(tree.height(), 8);
  Value v = 0;
  hu::Xoshiro256 rng(3);
  for (int i = 0; i < 2000; ++i) {
    Key k = static_cast<Key>(rng.next_below(100000)) * 2;
    ASSERT_TRUE(tree.read(k, v));
    EXPECT_EQ(v, k / 2);
    EXPECT_FALSE(tree.read(k + 1, v));
  }
}

TEST(SeqLockBTree, SequentialMatchesReferenceModel) {
  hd::SeqLockBTree tree;
  std::map<Key, Value> model;
  hu::Xoshiro256 rng(17);
  for (int i = 0; i < 30000; ++i) {
    Key k = static_cast<Key>(1 + rng.next_below(3000));
    switch (rng.next_below(4)) {
      case 0: {
        Value v = static_cast<Value>(rng.next());
        EXPECT_EQ(tree.insert(k, v), model.emplace(k, v).second);
        break;
      }
      case 1:
        EXPECT_EQ(tree.remove(k), model.erase(k) > 0);
        break;
      case 2: {
        Value v = static_cast<Value>(rng.next());
        bool present = model.count(k) > 0;
        EXPECT_EQ(tree.update(k, v), present);
        if (present) model[k] = v;
        break;
      }
      default: {
        Value v = 0;
        auto it = model.find(k);
        ASSERT_EQ(tree.read(k, v), it != model.end());
        if (it != model.end()) { EXPECT_EQ(v, it->second); }
      }
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  EXPECT_TRUE(tree.validate());
}

TEST(SeqLockBTree, ConcurrentStripedInserts) {
  hd::SeqLockBTree tree;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(tree.insert(static_cast<Key>(1 + i * kThreads + t),
                                static_cast<Value>(t)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tree.size(), std::size_t{kThreads} * kPerThread);
  EXPECT_TRUE(tree.validate());
}

TEST(SeqLockBTree, ConcurrentReadersDuringInserts) {
  hd::SeqLockBTree tree;
  for (Key k = 0; k < 2000; ++k) ASSERT_TRUE(tree.insert(k * 4, k));
  std::atomic<bool> stop{false};
  std::atomic<bool> read_error{false};
  std::thread reader([&] {
    hu::Xoshiro256 rng(5);
    while (!stop.load()) {
      Key k = static_cast<Key>(rng.next_below(2000)) * 4;
      Value v = 0;
      if (!tree.read(k, v) || v != k / 4) read_error.store(true);
    }
  });
  std::thread writer([&] {
    for (Key k = 0; k < 4000; ++k) tree.insert(k * 4 + 1, 1);
    stop.store(true);
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(read_error.load());
  EXPECT_TRUE(tree.validate());
  EXPECT_EQ(tree.size(), 6000u);
}

TEST(SeqLockBTree, ConcurrentMixedWorkload) {
  hd::SeqLockBTree tree;
  std::vector<std::thread> threads;
  std::atomic<long long> net[256] = {};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      hu::Xoshiro256 rng(2000 + t);
      for (int i = 0; i < 5000; ++i) {
        Key k = static_cast<Key>(1 + rng.next_below(256));
        if (rng.next() & 1) {
          if (tree.insert(k, k)) net[k - 1].fetch_add(1);
        } else {
          if (tree.remove(k)) net[k - 1].fetch_sub(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(tree.validate());
  Value v = 0;
  for (Key k = 1; k <= 256; ++k) {
    const long long n = net[k - 1].load();
    ASSERT_TRUE(n == 0 || n == 1);
    EXPECT_EQ(tree.read(k, v), n == 1) << "key " << k;
  }
}
