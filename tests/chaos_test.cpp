// Seeded chaos-stress harness (built only with -DHYBRIDS_FAULTS=ON).
//
// Runs both hybrid structures under every injected fault kind and
// cross-checks each operation's result against a per-thread std::map oracle.
// Threads operate on disjoint key stripes (key % kThreads == tid), so every
// op has exactly one correct answer and the oracle check is exact — any
// divergence (a lost insert, a phantom remove, a stale read) fails the test
// rather than hiding in a statistical tolerance. Stitched range scans ride
// in every mix: they cross stripes, so their results are checked
// structurally (ascending, in-range, bounded) plus exactly against the
// scanning thread's own stripe (see check_chaos_scan), and their completion
// under injected spurious retries proves the scan retry loop terminates.
//
// What each fault kind proves when the oracle still matches at the end:
//  * combiner_stall      — watchdog/bounded waits ride out a wedged core.
//  * delayed_response    — slow completions never tear the slot handshake.
//  * lost_wakeup         — wait_done_for's re-notify recovers the doorbell.
//  * spurious_retry      — host retry loops + budgets re-execute correctly.
//  * spurious_lock_path  — the LOCK_PATH fallback tolerates escalations the
//                          NMP side has no record of.
//  * combiner_abort      — a dead combiner is fenced, its in-flight slots
//                          bounced, and the lane respawned or host-leased
//                          (kill-recover scenarios at the bottom).
//  * combiner_wedge      — same, against a wedged-but-alive combiner that
//                          only exits once it observes the fence.
//
// The seed comes from $CHAOS_SEED (default 1) so CI can sweep seeds and a
// failing schedule can be replayed exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/ds/nmp_skiplist.hpp"
#include "hybrids/nmp/fault.hpp"
#include "hybrids/telemetry/registry.hpp"
#include "hybrids/trace/trace.hpp"
#include "hybrids/types.hpp"
#include "hybrids/util/rng.hpp"

namespace {

using namespace hybrids;
namespace fault = hybrids::nmp::fault;

static_assert(fault::kCompiledIn,
              "chaos_test must be built with -DHYBRIDS_FAULTS=ON");

constexpr std::uint32_t kThreads = 4;
constexpr std::uint32_t kKeysPerThread = 600;

std::uint64_t chaos_seed() {
  const char* env = std::getenv("CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1ull;
}

// $HYBRIDS_TRACE_SAMPLE=N turns on 1-in-N operation tracing for the whole
// run, so CI exercises the trace recorders (per-thread rings, cross-thread
// combiner attribution) under injected faults and TSan. The drained data is
// discarded — the point is racing the recording paths, not the output.
[[maybe_unused]] const bool g_tracing = [] {
  const char* env = std::getenv("HYBRIDS_TRACE_SAMPLE");
  if (env == nullptr) return false;
  hybrids::trace::set_sample_every(
      static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10)));
  return hybrids::trace::sample_every() > 0;
}();

fault::Config one_kind(std::uint64_t seed, fault::Kind k, double p) {
  fault::Config c;
  c.seed = seed;
  c.enable(k, p);
  return c;
}

std::uint64_t injected_count(fault::Kind k) {
  const std::string name =
      std::string(telemetry::names::kFaultInjectedPrefix) + fault::kind_name(k);
  return telemetry::snapshot().counter_total(name);
}

/// The resilience counters must be present in every telemetry export (they
/// are registered eagerly at construction, so dashboards see them even at
/// zero) — chaos runs additionally leave a live structure behind them.
void expect_resilience_counters_exported() {
  const telemetry::Snapshot snap = telemetry::snapshot();
  bool wait_timeout = false, watchdog = false, budget = false;
  for (const auto& c : snap.counters) {
    wait_timeout |= c.name == telemetry::names::kWaitTimeoutTotal;
    watchdog |= c.name == telemetry::names::kWatchdogFired;
    budget |= c.name == telemetry::names::kRetryBudgetExhausted;
  }
  EXPECT_TRUE(wait_timeout) << "wait_timeout_total not exported";
  EXPECT_TRUE(watchdog) << "watchdog_fired not exported";
  EXPECT_TRUE(budget) << "host.retry_budget_exhausted not exported";
}

/// Arms the injector for a scope; disarms on exit so teardown (stop(),
/// destructors) runs fault-free. Also records per-kind injection counts and
/// asserts every enabled kind actually fired — a scenario that injects
/// nothing proves nothing.
class ArmedScope {
 public:
  explicit ArmedScope(const fault::Config& config) : config_(config) {
    for (std::size_t k = 0; k < fault::kKindCount; ++k) {
      before_[k] = injected_count(static_cast<fault::Kind>(k));
    }
    fault::FaultInjector::arm(config);
  }

  ~ArmedScope() {
    fault::FaultInjector::disarm();
    for (std::size_t k = 0; k < fault::kKindCount; ++k) {
      if (config_.probability[k] <= 0.0) continue;
      const auto kind = static_cast<fault::Kind>(k);
      EXPECT_GT(injected_count(kind), before_[k])
          << "enabled fault never fired: " << fault::kind_name(kind);
    }
  }

 private:
  fault::Config config_;
  std::uint64_t before_[fault::kKindCount] = {};
};

/// Oracle check for a chaos scan. Cross-stripe churn means the full result
/// can't be compared against any single thread's oracle, but two classes of
/// checks stay exact: (a) structural — strictly ascending keys, all >= start,
/// at most the requested length; (b) the scanning thread's own stripe — no
/// other thread mutates it and the scanner itself is busy scanning, so own
/// stripe membership is frozen for the scan's whole duration. Within the
/// covered window ([start, last returned key] for a full result, [start, inf)
/// for a short one) every own-stripe oracle key must appear with its exact
/// value, and no unknown own-stripe key may appear. The scan returning at
/// all is itself part of the property: retry responses (stale begin nodes,
/// injected spurious retries) must not loop a chunk forever.
void check_chaos_scan(const std::vector<ScanEntry>& buf, std::size_t n,
                      std::size_t len, Key start,
                      const std::map<Key, Value>& oracle,
                      std::uint32_t stripe_mod, std::uint32_t stripe) {
  ASSERT_LE(n, len);
  for (std::size_t j = 0; j < n; ++j) {
    if (j > 0) {
      EXPECT_LT(buf[j - 1].key, buf[j].key) << "scan not ascending at " << j;
    }
    EXPECT_GE(buf[j].key, start) << "scan result below start key";
    if (buf[j].key % stripe_mod == stripe) {
      const auto it = oracle.find(buf[j].key);
      ASSERT_NE(it, oracle.end())
          << "scan returned unknown own-stripe key " << buf[j].key;
      EXPECT_EQ(buf[j].value, it->second) << "scan value, key " << buf[j].key;
    }
  }
  const Key end = (n == len && n > 0) ? buf[n - 1].key : ~Key{0};
  std::size_t j = 0;
  for (auto it = oracle.lower_bound(start);
       it != oracle.end() && it->first <= end; ++it) {
    while (j < n && buf[j].key < it->first) ++j;
    ASSERT_TRUE(j < n && buf[j].key == it->first)
        << "scan missed own-stripe key " << it->first;
  }
}

// ---------------------------------------------------------------------------
// Failover tuning for the kill-recover scenarios: a fast watchdog so several
// fence/bounce/respawn cycles complete within one chaos run.

struct FailoverTuning {
  std::uint32_t interval_ms = 2;
  std::uint32_t degrade = 2;
  std::uint32_t recover = 2;
  nmp::FailoverPolicy policy = nmp::FailoverPolicy::kRespawn;
};

/// Pumps `op` until every partition reports healthy again. The degraded mark
/// is sticky while idle (re-integration is hysteresis-gated on progressing
/// intervals), so coming back requires driving traffic — which also proves
/// the recovered lane serves again.
template <typename Op>
void pump_until_recovered(nmp::PartitionSet& set, Op op) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (std::uint32_t p = 0; p < set.partitions(); ++p) {
    while (set.degraded(p)) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "partition " << p << " never re-integrated";
      op();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

// ---------------------------------------------------------------------------
// Skiplist chaos

void run_skiplist_chaos(const fault::Config& fc, std::uint32_t ops_per_thread,
                        const FailoverTuning* ft = nullptr) {
  ds::HybridSkipList::Config cfg;
  cfg.total_height = 12;
  cfg.nmp_height = 6;
  cfg.partitions = 4;
  cfg.partition_width = 1024;  // keys stay < 4 * 1024
  cfg.max_threads = kThreads;
  cfg.slots_per_thread = 2;
  cfg.seed = fc.seed;
  cfg.retry_budget = 4;  // small, so chaos actually exhausts budgets
  // Tiny hot-key cache: injected faults race fills, invalidations, and
  // generation bumps; a stale cached value is an exact oracle divergence.
  cfg.cache_budget_bytes = 2 * 1024;
  if (ft != nullptr) {
    cfg.watchdog_interval_ms = ft->interval_ms;
    cfg.watchdog_misses_to_degrade = ft->degrade;
    cfg.watchdog_misses_to_recover = ft->recover;
    cfg.failover = ft->policy;
  }
  ds::HybridSkipList list(cfg);

  std::vector<std::map<Key, Value>> oracles(kThreads);
  {
    ArmedScope armed(fc);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        util::Xoshiro256 rng(fc.seed * 0x9E3779B97F4A7C15ULL + 0xC0FFEE + t);
        std::map<Key, Value>& oracle = oracles[t];
        for (std::uint32_t i = 0; i < ops_per_thread; ++i) {
          // Disjoint stripes: thread t owns keys congruent to t mod kThreads.
          const Key key = 1 + kThreads * rng.next_below(kKeysPerThread) + t;
          const auto val = static_cast<Value>(rng.next_below(1u << 30)) | 1u;
          switch (rng.next_below(100)) {
            case 0 ... 9: {  // stitched range scan
              const std::size_t len = 1 + rng.next_below(48);
              std::vector<ScanEntry> buf(len);
              const std::size_t n = list.scan(key, len, buf.data(), t);
              check_chaos_scan(buf, n, len, key, oracle, kThreads,
                               (1 + t) % kThreads);
              break;
            }
            case 10 ... 39: {  // read
              Value out = 0;
              const bool ok = list.read(key, out, t);
              const auto it = oracle.find(key);
              EXPECT_EQ(ok, it != oracle.end()) << "read presence, key " << key;
              if (ok && it != oracle.end()) {
                EXPECT_EQ(out, it->second) << "read value, key " << key;
              }
              break;
            }
            case 40 ... 64: {  // insert
              const bool ok = list.insert(key, val, t);
              const bool expect = oracle.emplace(key, val).second;
              EXPECT_EQ(ok, expect) << "insert, key " << key;
              break;
            }
            case 65 ... 84: {  // remove
              const bool ok = list.remove(key, t);
              EXPECT_EQ(ok, oracle.erase(key) != 0) << "remove, key " << key;
              break;
            }
            default: {  // update
              const bool ok = list.update(key, val, t);
              const auto it = oracle.find(key);
              EXPECT_EQ(ok, it != oracle.end()) << "update, key " << key;
              if (it != oracle.end()) it->second = val;
              break;
            }
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }

  if (ft != nullptr) {
    nmp::PartitionSet& set = list.partition_set();
    std::uint64_t kills = 0;
    for (std::uint32_t p = 0; p < set.partitions(); ++p) {
      kills += set.failovers(p);
    }
    EXPECT_GT(kills, 0u) << "kill-recover run produced no failovers";
    // Every fenced partition must return to service. Reads cycling all
    // partitions generate the progressing intervals the hysteresis gate
    // requires; they are served (not bounced), which is the serves-again
    // half of the property. Reads mutate nothing, so the oracle checks
    // below stay exact.
    std::uint64_t k = 0;
    pump_until_recovered(set, [&] {
      Value out = 0;
      (void)list.read((k++ % set.partitions()) * cfg.partition_width + 1, out,
                      0);
    });
    for (std::uint32_t p = 0; p < set.partitions(); ++p) {
      EXPECT_FALSE(set.degraded(p)) << "partition " << p;
    }
  }

  EXPECT_TRUE(list.validate());
  std::size_t expected = 0;
  for (const auto& oracle : oracles) expected += oracle.size();
  EXPECT_EQ(list.size(), expected);

  // Memory-layer invariant: retired host towers are drained back into the
  // node pool as epochs advance, so the retired set stays bounded under
  // churn instead of growing with the remove count. The periodic drain
  // (every kDrainInterval retires) keeps the backlog within a few drain
  // windows; 256 is far below the removes this run performs.
  EXPECT_LE(list.host_retired_count(), 256u)
      << "retired towers grew with churn — reclamation is not draining";
  // All threads are joined (quiescent), so each reclaim call advances the
  // epoch; after the two-epoch grace period everything must be reclaimed.
  for (int i = 0; i < 4 && list.host_retired_count() > 0; ++i) {
    list.host_reclaim();
  }
  EXPECT_EQ(list.host_retired_count(), 0u)
      << "quiescent drain left towers unreclaimed";
  expect_resilience_counters_exported();
}

// ---------------------------------------------------------------------------
// NMP skiplist chaos (key-sorted batch apply)
//
// The prior-work NMP skiplist serves scan passes as key-sorted finger
// batches (Config::batching), so this run stresses the batch-apply path
// specifically. Only the transport fault kinds apply: the baseline's host
// side implements no retry/LOCK_PATH protocol, so the spurious-response
// kinds (which *require* host recovery) are meaningless against it — those
// are covered with batching by the hybrid B+ tree runs below.

void run_nmp_skiplist_chaos(const fault::Config& fc,
                            std::uint32_t ops_per_thread) {
  ds::NmpSkipList::Config cfg;
  cfg.total_height = 12;
  cfg.partitions = 4;
  cfg.partition_width = 1024;  // keys stay < 4 * 1024
  cfg.max_threads = kThreads;
  cfg.slots_per_thread = 2;
  cfg.seed = fc.seed;
  cfg.batching = true;
  // Value-tier hot-key cache riding the batch-apply path under faults.
  cfg.cache_budget_bytes = 2 * 1024;
  ds::NmpSkipList list(cfg);

  std::vector<std::map<Key, Value>> oracles(kThreads);
  {
    ArmedScope armed(fc);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        util::Xoshiro256 rng(fc.seed * 0x9E3779B97F4A7C15ULL + 0xFACE + t);
        std::map<Key, Value>& oracle = oracles[t];
        for (std::uint32_t i = 0; i < ops_per_thread; ++i) {
          const Key key = 1 + kThreads * rng.next_below(kKeysPerThread) + t;
          const auto val = static_cast<Value>(rng.next_below(1u << 30)) | 1u;
          switch (rng.next_below(100)) {
            case 0 ... 9: {  // stitched range scan (batched with point ops)
              const std::size_t len = 1 + rng.next_below(48);
              std::vector<ScanEntry> buf(len);
              const std::size_t n = list.scan(key, len, buf.data(), t);
              check_chaos_scan(buf, n, len, key, oracle, kThreads,
                               (1 + t) % kThreads);
              break;
            }
            case 10 ... 39: {  // read
              Value out = 0;
              const bool ok = list.read(key, out, t);
              const auto it = oracle.find(key);
              EXPECT_EQ(ok, it != oracle.end()) << "read presence, key " << key;
              if (ok && it != oracle.end()) {
                EXPECT_EQ(out, it->second) << "read value, key " << key;
              }
              break;
            }
            case 40 ... 64: {  // insert
              const bool ok = list.insert(key, val, t);
              const bool expect = oracle.emplace(key, val).second;
              EXPECT_EQ(ok, expect) << "insert, key " << key;
              break;
            }
            case 65 ... 84: {  // remove
              const bool ok = list.remove(key, t);
              EXPECT_EQ(ok, oracle.erase(key) != 0) << "remove, key " << key;
              break;
            }
            default: {  // update
              const bool ok = list.update(key, val, t);
              const auto it = oracle.find(key);
              EXPECT_EQ(ok, it != oracle.end()) << "update, key " << key;
              if (it != oracle.end()) it->second = val;
              break;
            }
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }

  EXPECT_TRUE(list.validate());
  std::size_t expected = 0;
  for (const auto& oracle : oracles) expected += oracle.size();
  EXPECT_EQ(list.size(), expected);
}

// ---------------------------------------------------------------------------
// B+ tree chaos

void run_btree_chaos(const fault::Config& fc, std::uint32_t ops_per_thread,
                     const FailoverTuning* ft = nullptr) {
  // Initial sorted load: odd multiples j give keys 4j+t, residue t — so each
  // thread's oracle starts with its own stripe of the initial table. The
  // even multiples are left as insertion targets, keeping splits (and thus
  // LOCK_PATH escalations) flowing throughout the run.
  std::vector<Key> keys;
  std::vector<Value> values;
  std::vector<std::map<Key, Value>> oracles(kThreads);
  for (std::uint32_t j = 1; j <= kKeysPerThread; j += 2) {
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      const Key k = 4 * j + t;
      keys.push_back(k);
      values.push_back(k * 7 + 1);
      oracles[t].emplace(k, k * 7 + 1);
    }
  }

  ds::HybridBTree::Config cfg;
  cfg.nmp_levels = 2;
  cfg.partitions = 4;
  cfg.max_threads = kThreads;
  cfg.slots_per_thread = 2;
  cfg.retry_budget = 4;
  // Same tiny hot-key cache as the skiplist chaos runs (see above).
  cfg.cache_budget_bytes = 2 * 1024;
  if (ft != nullptr) {
    cfg.watchdog_interval_ms = ft->interval_ms;
    cfg.watchdog_misses_to_degrade = ft->degrade;
    cfg.watchdog_misses_to_recover = ft->recover;
    cfg.failover = ft->policy;
  }
  ds::HybridBTree tree(cfg, keys, values);

  {
    ArmedScope armed(fc);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        util::Xoshiro256 rng(fc.seed * 0x9E3779B97F4A7C15ULL + 0xBEEF + t);
        std::map<Key, Value>& oracle = oracles[t];
        for (std::uint32_t i = 0; i < ops_per_thread; ++i) {
          const Key key = 4 * (1 + rng.next_below(kKeysPerThread)) + t;
          const auto val = static_cast<Value>(rng.next_below(1u << 30)) | 1u;
          switch (rng.next_below(100)) {
            case 0 ... 9: {  // stitched range scan
              const std::size_t len = 1 + rng.next_below(48);
              std::vector<ScanEntry> buf(len);
              const std::size_t n = tree.scan(key, len, buf.data(), t);
              check_chaos_scan(buf, n, len, key, oracle, kThreads, t);
              break;
            }
            case 10 ... 39: {  // read
              Value out = 0;
              const bool ok = tree.read(key, out, t);
              const auto it = oracle.find(key);
              EXPECT_EQ(ok, it != oracle.end()) << "read presence, key " << key;
              if (ok && it != oracle.end()) {
                EXPECT_EQ(out, it->second) << "read value, key " << key;
              }
              break;
            }
            case 40 ... 64: {  // insert
              const bool ok = tree.insert(key, val, t);
              const bool expect = oracle.emplace(key, val).second;
              EXPECT_EQ(ok, expect) << "insert, key " << key;
              break;
            }
            case 65 ... 84: {  // remove
              const bool ok = tree.remove(key, t);
              EXPECT_EQ(ok, oracle.erase(key) != 0) << "remove, key " << key;
              break;
            }
            default: {  // update
              const bool ok = tree.update(key, val, t);
              const auto it = oracle.find(key);
              EXPECT_EQ(ok, it != oracle.end()) << "update, key " << key;
              if (it != oracle.end()) it->second = val;
              break;
            }
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }

  if (ft != nullptr) {
    nmp::PartitionSet& set = tree.partition_set();
    std::uint64_t kills = 0;
    for (std::uint32_t p = 0; p < set.partitions(); ++p) {
      kills += set.failovers(p);
    }
    EXPECT_GT(kills, 0u) << "kill-recover run produced no failovers";
    // The btree routes via tagged pointers, so partitions can't be targeted
    // by key; uniform reads over the initial table reach all of them.
    util::Xoshiro256 prng(fc.seed ^ 0xF417F417ULL);
    pump_until_recovered(set, [&] {
      Value out = 0;
      (void)tree.read(4 * (1 + prng.next_below(kKeysPerThread)) +
                          prng.next_below(kThreads),
                      out, 0);
    });
    for (std::uint32_t p = 0; p < set.partitions(); ++p) {
      EXPECT_FALSE(set.degraded(p)) << "partition " << p;
    }
  }

  EXPECT_TRUE(tree.validate());
  std::size_t expected = 0;
  for (const auto& oracle : oracles) expected += oracle.size();
  EXPECT_EQ(tree.size(), expected);
  expect_resilience_counters_exported();
}

// ---------------------------------------------------------------------------
// Scenarios: every fault kind in isolation, then all kinds at once.

constexpr fault::Kind kAllKinds[] = {
    fault::Kind::kCombinerStall,    fault::Kind::kDelayedResponse,
    fault::Kind::kLostWakeup,       fault::Kind::kSpuriousRetry,
    fault::Kind::kSpuriousLockPath,
};

TEST(ChaosSkipList, EachFaultKindInIsolation) {
  const std::uint64_t seed = chaos_seed();
  for (fault::Kind k : kAllKinds) {
    SCOPED_TRACE(fault::kind_name(k));
    run_skiplist_chaos(one_kind(seed, k, 0.05), /*ops_per_thread=*/600);
  }
}

TEST(ChaosSkipList, AllFaultKindsTogether) {
  run_skiplist_chaos(fault::Config::all(chaos_seed(), 0.02),
                     /*ops_per_thread=*/1200);
}

TEST(ChaosNmpSkipListBatching, TransportFaultKinds) {
  // Batch-apply path under the transport faults (see run_nmp_skiplist_chaos
  // for why the spurious-response kinds are excluded here).
  const std::uint64_t seed = chaos_seed();
  constexpr fault::Kind kTransportKinds[] = {
      fault::Kind::kCombinerStall,
      fault::Kind::kDelayedResponse,
      fault::Kind::kLostWakeup,
  };
  for (fault::Kind k : kTransportKinds) {
    SCOPED_TRACE(fault::kind_name(k));
    run_nmp_skiplist_chaos(one_kind(seed, k, 0.05), /*ops_per_thread=*/600);
  }
}

// Note: the hybrid B+ tree constructs with Config::batching = true, so every
// ChaosBTree scenario below — all five fault kinds, in isolation and
// together — runs with key-sorted combiner batching enabled.

TEST(ChaosBTree, EachFaultKindInIsolation) {
  const std::uint64_t seed = chaos_seed();
  for (fault::Kind k : kAllKinds) {
    SCOPED_TRACE(fault::kind_name(k));
    run_btree_chaos(one_kind(seed, k, 0.05), /*ops_per_thread=*/600);
  }
}

TEST(ChaosBTree, AllFaultKindsTogether) {
  run_btree_chaos(fault::Config::all(chaos_seed(), 0.02),
                  /*ops_per_thread=*/1200);
}

// ---------------------------------------------------------------------------
// Kill-recover: combiners die (kCombinerAbort) or wedge permanently
// (kCombinerWedge) and the failover supervisor must fence the lane, bounce
// in-flight slots, respawn (or lease to the hosts), and re-integrate under
// the hysteresis gate — while the oracle stays exact. A bounced op is
// retried by the host, never lost, and never double-applied, even when the
// watchdog false-positive-fences a live-but-descheduled combiner (common
// under TSan's ~10x slowdown with a 2 ms watchdog): a fenced combiner
// still delivers replies for ops it already ran (the supervisor bounces
// only after joining it), so every failed_over response the host retries
// belongs to a slot that was never picked up.

TEST(ChaosSkipList, KillRecoverCombinerAbort) {
  FailoverTuning ft;
  run_skiplist_chaos(
      one_kind(chaos_seed(), fault::Kind::kCombinerAbort, 0.004),
      /*ops_per_thread=*/800, &ft);
}

TEST(ChaosSkipList, KillRecoverCombinerWedge) {
  FailoverTuning ft;
  run_skiplist_chaos(
      one_kind(chaos_seed(), fault::Kind::kCombinerWedge, 0.004),
      /*ops_per_thread=*/800, &ft);
}

TEST(ChaosSkipList, KillRecoverHostLeaseTakeover) {
  FailoverTuning ft;
  ft.policy = nmp::FailoverPolicy::kHostLease;
  run_skiplist_chaos(
      one_kind(chaos_seed(), fault::Kind::kCombinerAbort, 0.004),
      /*ops_per_thread=*/800, &ft);
}

TEST(ChaosBTree, KillRecoverCombinerAbort) {
  FailoverTuning ft;
  run_btree_chaos(one_kind(chaos_seed(), fault::Kind::kCombinerAbort, 0.004),
                  /*ops_per_thread=*/800, &ft);
}

TEST(ChaosBTree, KillRecoverCombinerWedge) {
  FailoverTuning ft;
  run_btree_chaos(one_kind(chaos_seed(), fault::Kind::kCombinerWedge, 0.004),
                  /*ops_per_thread=*/800, &ft);
}

TEST(ChaosBTree, KillRecoverHostLeaseTakeover) {
  FailoverTuning ft;
  ft.policy = nmp::FailoverPolicy::kHostLease;
  run_btree_chaos(one_kind(chaos_seed(), fault::Kind::kCombinerAbort, 0.004),
                  /*ops_per_thread=*/800, &ft);
}

}  // namespace
