// Tests for the simulated machine layer: host/NMP execution contexts and
// the publication-list transport (sim_call / sim_post / sim_collect /
// sim_combiner).
#include <gtest/gtest.h>

#include <vector>

#include "hybrids/sim/core/arena.hpp"
#include "hybrids/sim/machine/system.hpp"

namespace hs = hybrids::sim;
namespace hn = hybrids::nmp;

namespace {

hs::Task<void> charge_nodes(hs::HostCtx c, const void* p, int times, hs::Tick& out) {
  const hs::Tick start = c.sys->engine().now();
  for (int i = 0; i < times; ++i) co_await c.node(p);
  out = c.sys->engine().now() - start;
}

}  // namespace

TEST(HostCtx, RepeatNodeAccessesHitL1) {
  hs::System sys(hs::MachineConfig{});
  alignas(128) static int node;
  hs::Tick elapsed = 0;
  sys.engine().spawn(charge_nodes(hs::HostCtx{&sys, 0}, &node, 10, elapsed));
  sys.engine().run();
  const auto& cfg = sys.config();
  // 1 cold access (DRAM) + 9 L1 hits.
  const hs::Tick hit_cost = cfg.l1_latency + cfg.host_node_cpu;
  EXPECT_GT(elapsed, 9 * hit_cost);
  EXPECT_LT(elapsed, 9 * hit_cost + 200 * hs::kNanosecond);
  EXPECT_EQ(sys.mem().stats().host_dram_reads, 1u);
  EXPECT_EQ(sys.mem().stats().l1_hits, 9u);
}

TEST(NmpCtx, NodeBufferCapturesRepeatAccess) {
  hs::System sys(hs::MachineConfig{});
  alignas(128) static int node;
  auto actor = [](hs::System& s) -> hs::Task<void> {
    hs::NmpCtx ctx{&s, 0};
    alignas(128) static int a, b;
    co_await ctx.node(&a);  // vault access
    co_await ctx.node(&a);  // buffer hit
    co_await ctx.node(&b);  // vault access (evicts buffer)
    co_await ctx.node(&a);  // vault access again
  };
  (void)node;
  sys.engine().spawn(actor(sys));
  sys.engine().run();
  EXPECT_EQ(sys.mem().stats().nmp_dram_reads, 3u);
}

namespace {

hs::Task<void> echo_handler(hs::NmpCtx& ctx, hs::SimSlot& slot) {
  co_await ctx.node(&slot);  // pretend to touch one node
  slot.resp.ok = true;
  slot.resp.value = slot.req.key * 2;
}

hs::Task<void> blocking_client(hs::System& sys, hs::SimPubList& pl,
                               std::vector<hybrids::Value>& out) {
  hs::HostCtx c{&sys, 0};
  for (hybrids::Key k = 1; k <= 5; ++k) {
    hn::Request r;
    r.op = hn::OpCode::kNop;
    r.key = k;
    hn::Response resp = co_await hs::sim_call(c, pl, 0, r);
    EXPECT_TRUE(resp.ok);
    out.push_back(resp.value);
  }
  sys.request_stop();
}

hs::Task<void> pipelined_client(hs::System& sys, hs::SimPubList& pl,
                                std::vector<hybrids::Value>& out) {
  hs::HostCtx c{&sys, 0};
  // Post 4 requests, then collect them in order (§3.5 pipelining).
  for (std::uint32_t s = 0; s < 4; ++s) {
    hn::Request r;
    r.op = hn::OpCode::kNop;
    r.key = s + 10;
    co_await hs::sim_post(c, pl, s, r);
  }
  for (std::uint32_t s = 0; s < 4; ++s) {
    hn::Response resp = co_await hs::sim_collect(c, pl, s);
    EXPECT_TRUE(resp.ok);
    out.push_back(resp.value);
  }
  sys.request_stop();
}

}  // namespace

TEST(SimPubList, BlockingCallRoundTrips) {
  hs::System sys(hs::MachineConfig{});
  hs::SimPubList pl(1);
  std::vector<hybrids::Value> out;
  sys.engine().spawn(hs::sim_combiner(sys, hs::NmpCtx{&sys, 0}, pl, echo_handler));
  sys.engine().spawn(blocking_client(sys, pl, out));
  sys.engine().run();
  ASSERT_EQ(out.size(), 5u);
  for (hybrids::Key k = 1; k <= 5; ++k) EXPECT_EQ(out[k - 1], k * 2);
  EXPECT_GE(sys.mem().stats().mmio_writes, 5u);
  EXPECT_GE(sys.mem().stats().mmio_reads, 10u);  // >= poll + payload per op
}

TEST(SimPubList, PipelinedPostsComplete) {
  hs::System sys(hs::MachineConfig{});
  hs::SimPubList pl(4);
  std::vector<hybrids::Value> out;
  sys.engine().spawn(hs::sim_combiner(sys, hs::NmpCtx{&sys, 0}, pl, echo_handler));
  sys.engine().spawn(pipelined_client(sys, pl, out));
  sys.engine().run();
  ASSERT_EQ(out.size(), 4u);
  for (std::uint32_t s = 0; s < 4; ++s) EXPECT_EQ(out[s], (s + 10) * 2);
}

TEST(SimPubList, PipeliningIsFasterThanBlocking) {
  // The essence of Figure 4: the same 4 operations complete sooner when
  // offloads overlap.
  hs::Tick blocking_time = 0;
  {
    hs::System sys(hs::MachineConfig{});
    hs::SimPubList pl(4);
    std::vector<hybrids::Value> out;
    sys.engine().spawn(hs::sim_combiner(sys, hs::NmpCtx{&sys, 0}, pl, echo_handler));
    auto client = [](hs::System& s, hs::SimPubList& p,
                     std::vector<hybrids::Value>& o) -> hs::Task<void> {
      hs::HostCtx c{&s, 0};
      for (std::uint32_t i = 0; i < 4; ++i) {
        hn::Request r;
        r.key = i;
        o.push_back((co_await hs::sim_call(c, p, 0, r)).value);
      }
      s.request_stop();
    };
    sys.engine().spawn(client(sys, pl, out));
    blocking_time = sys.engine().run();
  }
  hs::Tick pipelined_time = 0;
  {
    hs::System sys(hs::MachineConfig{});
    hs::SimPubList pl(4);
    std::vector<hybrids::Value> out;
    sys.engine().spawn(hs::sim_combiner(sys, hs::NmpCtx{&sys, 0}, pl, echo_handler));
    sys.engine().spawn(pipelined_client(sys, pl, out));
    pipelined_time = sys.engine().run();
  }
  EXPECT_LT(pipelined_time, blocking_time);
}

TEST(AlignedArena, AllocationsAreAlignedAndDistinct) {
  hs::AlignedArena arena;
  void* a = arena.allocate(128, 128);
  void* b = arena.allocate(128, 128);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 128, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 128, 0u);
  // Chunk bases are aligned to the L2 set period.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % hs::AlignedArena::kChunkAlign, 0u);
}

TEST(AlignedArena, GrowsAcrossChunks) {
  hs::AlignedArena arena;
  for (int i = 0; i < 10000; ++i) (void)arena.allocate(256, 128);
  EXPECT_GE(arena.chunk_count(), 2u);
}

TEST(AlignedArena, RelativeLayoutIsReproducible) {
  // Two arenas allocate the same sequence: the offsets of allocation i from
  // its chunk base must match, which is what makes simulations replayable.
  hs::AlignedArena a, b;
  for (int i = 0; i < 1000; ++i) {
    auto pa = reinterpret_cast<std::uintptr_t>(a.allocate(192, 128));
    auto pb = reinterpret_cast<std::uintptr_t>(b.allocate(192, 128));
    EXPECT_EQ(pa % hs::AlignedArena::kChunkAlign, pb % hs::AlignedArena::kChunkAlign);
  }
}

// ---------------------------------------------------------------------------
// Energy model
// ---------------------------------------------------------------------------

#include "hybrids/sim/exp/energy.hpp"

TEST(EnergyModel, NmpTrafficIsCheaperThanHostTraffic) {
  hs::EnergyModel model;
  hs::MemStats host_heavy;
  host_heavy.host_dram_reads = 1000;
  hs::MemStats nmp_heavy;
  nmp_heavy.nmp_dram_reads = 1000;
  // Host reads cross the serial link twice; NMP reads stay in the stack.
  EXPECT_GT(model.total_nj(host_heavy), model.total_nj(nmp_heavy));
}

TEST(EnergyModel, ScalesLinearlyWithOps) {
  hs::EnergyModel model;
  hs::MemStats s;
  s.host_dram_reads = 500;
  s.l1_hits = 2000;
  s.l2_hits = 700;
  s.mmio_reads = 100;
  const double total = model.total_nj(s);
  EXPECT_GT(total, 0.0);
  EXPECT_DOUBLE_EQ(model.nj_per_op(s, 100), total / 100.0);
  EXPECT_DOUBLE_EQ(model.nj_per_op(s, 0), 0.0);
}
