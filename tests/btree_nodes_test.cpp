// Unit tests for the B+ tree node primitives (Listing 3): sequence-lock
// handshake, racy-read accessors, child index search.
#include <gtest/gtest.h>

#include <thread>

#include "hybrids/ds/btree_nodes.hpp"
#include "hybrids/ds/nmp_btree.hpp"

namespace hd = hybrids::ds;
using hybrids::Key;

TEST(HostBNode, GeometryMatchesPaper) {
  // 128-byte architectural nodes: leaves hold up to 14 kv pairs; non-leaf
  // nodes up to 15 children.
  EXPECT_EQ(hd::kBTreeLeafSlots, 14);
  EXPECT_EQ(hd::kBTreeInnerSlots + 1, 15);
}

TEST(HostBNode, SeqLockBasicProtocol) {
  hd::HostBNode n;
  EXPECT_EQ(n.seq(), 0u);
  EXPECT_TRUE(n.try_lock_at(0));
  EXPECT_EQ(n.seqnum.load(), 1u);   // odd = locked
  EXPECT_FALSE(n.try_lock_at(0));   // stale recorded seq
  EXPECT_FALSE(n.try_lock_at(1));   // odd seq never locks
  n.unlock();
  EXPECT_EQ(n.seq(), 2u);           // even again
  EXPECT_TRUE(n.seq_unchanged(2));
  EXPECT_FALSE(n.seq_unchanged(0));
}

TEST(HostBNode, TryLockFailsOnChangedSeq) {
  hd::HostBNode n;
  const std::uint32_t recorded = n.seq();
  n.lock();
  n.unlock();  // seq advanced to 2
  EXPECT_FALSE(n.try_lock_at(recorded));
  EXPECT_TRUE(n.try_lock_at(2));
  n.unlock();
}

TEST(HostBNode, WaitEvenSeqSpinsOutWriters) {
  hd::HostBNode n;
  n.lock();
  std::thread writer([&n] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    n.unlock();
  });
  const std::uint32_t s = n.wait_even_seq();
  EXPECT_EQ(s % 2, 0u);
  writer.join();
}

TEST(HostBNode, FindChildIndexRespectsDividers) {
  hd::HostBNode n;
  n.level = 1;
  n.slotuse = 3;
  n.keys[0] = 10;
  n.keys[1] = 20;
  n.keys[2] = 30;
  // Keys <= divider go left: child i covers keys <= keys[i].
  EXPECT_EQ(n.find_child_index(5), 0);
  EXPECT_EQ(n.find_child_index(10), 0);
  EXPECT_EQ(n.find_child_index(11), 1);
  EXPECT_EQ(n.find_child_index(20), 1);
  EXPECT_EQ(n.find_child_index(25), 2);
  EXPECT_EQ(n.find_child_index(30), 2);
  EXPECT_EQ(n.find_child_index(31), 3);
}

TEST(HostBNode, RacyAccessorsRoundTrip) {
  hd::HostBNode n;
  n.store_slotuse(5);
  n.store_key(2, 42);
  n.store_value(3, 99);
  EXPECT_EQ(n.load_slotuse(), 5);
  EXPECT_EQ(n.load_key(2), 42u);
  EXPECT_EQ(n.load_value(3), 99u);
  hd::HostBNode child;
  n.store_child(1, &child);
  EXPECT_EQ(n.load_child(1), &child);
  // Tagged child bits survive the round trip (hybrid B+ tree NMP refs).
  n.store_child_bits(0, 0xF00Du);
  EXPECT_EQ(n.load_child_bits(0), 0xF00Du);
}

TEST(NmpBNode, LayoutDefaultsAndChildSearch) {
  hd::NmpBNode n;
  EXPECT_EQ(n.parent_seqnum, 0u);
  EXPECT_FALSE(n.locked);
  EXPECT_TRUE(n.is_leaf());
  n.level = 2;
  EXPECT_FALSE(n.is_leaf());
  n.slotuse = 2;
  n.keys[0] = 100;
  n.keys[1] = 200;
  EXPECT_EQ(n.find_child_index(100), 0);
  EXPECT_EQ(n.find_child_index(150), 1);
  EXPECT_EQ(n.find_child_index(201), 2);
}
