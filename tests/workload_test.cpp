// Tests for the YCSB-style workload generators: zipfian skew, key layout
// algebra, op-mix ratios, insert patterns, determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "hybrids/workload/workload.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hw = hybrids::workload;
namespace hu = hybrids::util;

TEST(Zipfian, RankZeroIsMostPopular) {
  hw::ZipfianGenerator z(1000);
  hu::Xoshiro256 rng(1);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[z.next(rng)];
  // Rank 0 should dominate and beat a mid-pack rank by a wide margin.
  EXPECT_GT(counts[0], counts[500] * 10);
  EXPECT_GT(counts[0], counts[1]);
}

TEST(Zipfian, StaysInRange) {
  hw::ZipfianGenerator z(64);
  hu::Xoshiro256 rng(2);
  for (int i = 0; i < 50000; ++i) EXPECT_LT(z.next(rng), 64u);
}

TEST(Zipfian, SkewMatchesTheory) {
  // With theta=0.99 over n=1000, the top item's probability is 1/zeta(n).
  hw::ZipfianGenerator z(1000);
  hu::Xoshiro256 rng(3);
  int hot = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) hot += (z.next(rng) == 0);
  // zeta_{0.99}(1000) ~ 7.52 -> p(0) ~ 0.133
  EXPECT_NEAR(hot / double(kDraws), 0.133, 0.02);
}

TEST(ScrambledZipfian, SpreadsHotKeysAcrossSpace) {
  hw::ScrambledZipfianGenerator z(1 << 16);
  hu::Xoshiro256 rng(4);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[z.next(rng)];
  // The hottest key should not be key 0 specifically (scrambling), and the
  // distribution must still be skewed: top key >> uniform expectation.
  auto hottest = std::max_element(counts.begin(), counts.end(),
                                  [](auto& a, auto& b) { return a.second < b.second; });
  EXPECT_GT(hottest->second, 100000 / (1 << 16) * 100);
  for (auto& [k, c] : counts) EXPECT_LT(k, 1u << 16);
}

TEST(KeyLayout, KeysAscendAndStayInPartition) {
  hw::KeyLayout layout(1000, 8);
  hw::Key prev = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    hw::Key k = layout.key_at(i);
    if (i > 0) {
      EXPECT_GT(k, prev);
    }
    prev = k;
    EXPECT_EQ(layout.partition_of(k), i / layout.per_partition());
  }
}

TEST(KeyLayout, TailBaseAboveLoadedRegion) {
  hw::KeyLayout layout(1024, 4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    hw::Key base = layout.tail_base(p);
    EXPECT_EQ(layout.partition_of(base), p);
    // Highest loaded key in partition p is below the tail base.
    hw::Key last_loaded = layout.key_at((p + 1) * layout.per_partition() - 1);
    EXPECT_GT(base, last_loaded);
  }
}

TEST(KeyLayout, InitialKeySetSortedUnique) {
  hw::KeyLayout layout(5000, 8);
  auto keys = layout.initial_key_set();
  ASSERT_EQ(keys.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(OpMix, NameMatchesPaperNotation) {
  hw::OpMix mix{0.5, 0.0, 0.25, 0.25};
  EXPECT_EQ(mix.name(), "50-25-25");
  hw::OpMix ro{1.0, 0.0, 0.0, 0.0};
  EXPECT_EQ(ro.name(), "100-0-0");
}

TEST(OpStream, DeterministicPerThread) {
  auto spec = hw::sensitivity(10000, 50, 25, 25);
  hw::OpStream a(spec, 3), b(spec, 3);
  for (int i = 0; i < 1000; ++i) {
    hw::Op oa = a.next(), ob = b.next();
    EXPECT_EQ(oa.type, ob.type);
    EXPECT_EQ(oa.key, ob.key);
  }
}

TEST(OpStream, ThreadsProduceDistinctStreams) {
  auto spec = hw::ycsb_c(10000);
  hw::OpStream a(spec, 0), b(spec, 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (a.next().key == b.next().key);
  EXPECT_LT(same, 400);  // zipfian hot keys collide sometimes, streams differ
}

TEST(OpStream, MixRatiosRespected) {
  auto spec = hw::sensitivity(10000, 70, 15, 15);
  hw::OpStream s(spec, 0);
  int counts[4] = {};
  constexpr int kOps = 100000;
  for (int i = 0; i < kOps; ++i) ++counts[static_cast<int>(s.next().type)];
  EXPECT_NEAR(counts[0] / double(kOps), 0.70, 0.01);  // read
  EXPECT_NEAR(counts[2] / double(kOps), 0.15, 0.01);  // insert
  EXPECT_NEAR(counts[3] / double(kOps), 0.15, 0.01);  // remove
}

TEST(OpStream, YcsbCIsReadOnly) {
  auto spec = hw::ycsb_c(1 << 14);
  hw::OpStream s(spec, 0);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(s.next().type, hw::OpType::kRead);
}

TEST(OpStream, UniformInsertsAreOddKeys) {
  auto spec = hw::sensitivity(10000, 0, 100, 0, /*split_heavy=*/false);
  hw::OpStream s(spec, 0);
  for (int i = 0; i < 5000; ++i) {
    hw::Op op = s.next();
    ASSERT_EQ(op.type, hw::OpType::kInsert);
    EXPECT_EQ(op.key % 2, 1u) << "uniform inserts must fall between loaded keys";
  }
}

TEST(OpStream, TailInsertsAscendWithinEachPartition) {
  auto spec = hw::sensitivity(1 << 14, 0, 100, 0, /*split_heavy=*/true);
  hw::OpStream s(spec, 0);
  hw::KeyLayout layout(spec.initial_keys, spec.partitions);
  std::vector<hw::Key> last(spec.partitions, 0);
  std::vector<int> per_part(spec.partitions, 0);
  for (int i = 0; i < 4000; ++i) {
    hw::Op op = s.next();
    std::uint32_t p = layout.partition_of(op.key);
    EXPECT_GE(op.key, layout.tail_base(p));
    if (per_part[p] > 0 && last[p] < op.key) {
      // ascending until wrap; allow wrap-arounds
    }
    last[p] = op.key;
    ++per_part[p];
  }
  // Round-robin: every partition gets its share.
  for (std::uint32_t p = 0; p < spec.partitions; ++p) {
    EXPECT_NEAR(per_part[p], 4000.0 / spec.partitions, 4000.0 * 0.02);
  }
}

TEST(Presets, YcsbMixes) {
  auto a = hw::ycsb_a(100);
  EXPECT_DOUBLE_EQ(a.mix.read, 0.5);
  EXPECT_DOUBLE_EQ(a.mix.update, 0.5);
  auto b = hw::ycsb_b(100);
  EXPECT_DOUBLE_EQ(b.mix.read, 0.95);
  auto c = hw::ycsb_c(100);
  EXPECT_DOUBLE_EQ(c.mix.read, 1.0);
  EXPECT_EQ(c.dist, hw::KeyDist::kScrambledZipfian);
}
