// Coroutine-interleaved host traversals (host/interleave.hpp +
// docs/INTERLEAVING.md): awaiter resume-exactly-once, frame drain on
// exception and on NMP-requested retries, suspension across a publication
// wait with a stalled combiner, and oracle-exact interleaved runs at depth 8
// (the configuration the TSan CI job hammers).
#include <gtest/gtest.h>

#include "hybrids/host/interleave.hpp"

#if defined(HYBRIDS_NO_INTERLEAVE)

TEST(Interleave, CompiledOut) {
  // The knob pins to 1 and the _co entry points do not exist; nothing else
  // to check in this configuration.
  EXPECT_FALSE(hybrids::host::kInterleaveCompiledIn);
  EXPECT_EQ(hybrids::host::interleave_depth(), 1u);
  hybrids::host::set_interleave_depth(16);
  EXPECT_EQ(hybrids::host::interleave_depth(), 1u);
}

#else  // !HYBRIDS_NO_INTERLEAVE

#include <atomic>
#include <chrono>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/ds/nmp_skiplist.hpp"
#include "hybrids/nmp/partition_set.hpp"
#include "hybrids/telemetry/registry.hpp"
#include "hybrids/util/rng.hpp"

namespace hh = hybrids::host;
namespace hn = hybrids::nmp;
namespace hd = hybrids::ds;
namespace tel = hybrids::telemetry;
using hybrids::Key;
using hybrids::ScanEntry;
using hybrids::Value;

namespace {

hn::PartitionSet make_set(std::uint32_t partitions, std::uint32_t threads,
                          std::uint32_t inflight) {
  hn::PartitionConfig cfg;
  cfg.partitions = partitions;
  cfg.max_threads = threads;
  cfg.slots_per_thread = inflight;
  cfg.partition_width = 1000;
  cfg.watchdog_interval_ms = 0;  // stalls here are deliberate, don't fence
  return hn::PartitionSet(cfg);
}

// A coroutine that yields `yields` times and counts its execution segments:
// exactly-once resume semantics mean segments == yields + 1 when a Frame
// drives it with a sibling present, and == 1 when every yield short-circuits
// (no frame / lone op).
hh::CoTask<int> yielding_op(int yields, int* segments) {
  ++*segments;
  for (int i = 0; i < yields; ++i) {
    int dummy = 0;
    co_await hh::prefetch_and_yield(&dummy);
    ++*segments;
  }
  co_return *segments;
}

hh::CoTask<int> doubling_child(int v) { co_return v * 2; }

hh::CoTask<int> awaits_child(int v) {
  // Nested awaits run inline via symmetric transfer; a yield inside the
  // child suspends the whole chain and resumes it exactly where it left off.
  int doubled = co_await doubling_child(v);
  int dummy = 0;
  co_await hh::prefetch_and_yield(&dummy);
  co_return doubled + 1;
}

hh::CoTask<int> throwing_op(int yields) {
  for (int i = 0; i < yields; ++i) {
    int dummy = 0;
    co_await hh::prefetch_and_yield(&dummy);
  }
  throw std::runtime_error("traversal failed");
}

}  // namespace

TEST(InterleaveKnob, DepthRoundTripAndClamp) {
  EXPECT_TRUE(hh::kInterleaveCompiledIn);
  const std::uint32_t before = hh::interleave_depth();
  hh::set_interleave_depth(8);
  EXPECT_EQ(hh::interleave_depth(), 8u);
  hh::set_interleave_depth(0);  // 0 would mean "no slots": clamps to 1
  EXPECT_EQ(hh::interleave_depth(), 1u);
  hh::set_interleave_depth(before);

  hh::Frame tiny(0);
  EXPECT_EQ(tiny.capacity(), 1u);
  hh::Frame huge(1000);
  EXPECT_EQ(huge.capacity(), hh::Frame::kMaxSlots);
}

TEST(InterleaveFrame, ResumesEachYieldExactlyOnce) {
  const std::uint64_t yields_before =
      tel::counter(tel::names::kInterleaveYields).value();
  hh::Frame frame(2);
  int seg_a = 0, seg_b = 0;
  hh::CoTask<int> a = yielding_op(3, &seg_a);
  hh::CoTask<int> b = yielding_op(5, &seg_b);
  ASSERT_TRUE(frame.submit(a.handle()));
  ASSERT_TRUE(frame.submit(b.handle()));
  frame.drain();
  ASSERT_TRUE(a.done());
  ASSERT_TRUE(b.done());
  // Each coroutine ran every segment exactly once: yields+1 segments, no
  // double-resume, no lost wakeup. (The op left alone after its sibling
  // finishes stops suspending — inflight()<=1 short-circuits — but its
  // segment count is unaffected.)
  EXPECT_EQ(a.result(), 4);
  EXPECT_EQ(b.result(), 6);
  EXPECT_EQ(seg_a, 4);
  EXPECT_EQ(seg_b, 6);
  EXPECT_TRUE(frame.empty());
  if (tel::kEnabled) {
    EXPECT_GT(tel::counter(tel::names::kInterleaveYields).value(),
              yields_before);
  }
}

TEST(InterleaveFrame, YieldOutsideFrameRunsStraightThrough) {
  // No Frame driving: prefetch_and_yield degrades to prefetch-only and the
  // coroutine runs to completion on the first resume.
  int segments = 0;
  hh::CoTask<int> t = yielding_op(4, &segments);
  t.handle().resume();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.result(), 5);
  EXPECT_EQ(segments, 5);
}

TEST(InterleaveFrame, NestedTaskPropagatesThroughYields) {
  hh::Frame frame(2);
  hh::CoTask<int> x = awaits_child(10);
  hh::CoTask<int> y = awaits_child(20);
  ASSERT_TRUE(frame.submit(x.handle()));
  ASSERT_TRUE(frame.submit(y.handle()));
  frame.drain();
  EXPECT_EQ(x.result(), 21);
  EXPECT_EQ(y.result(), 41);
}

TEST(InterleaveFrame, DrainsOnExceptionAndSiblingSurvives) {
  hh::Frame frame(2);
  int segments = 0;
  hh::CoTask<int> ok = yielding_op(4, &segments);
  hh::CoTask<int> bad = throwing_op(2);
  ASSERT_TRUE(frame.submit(ok.handle()));
  ASSERT_TRUE(frame.submit(bad.handle()));
  frame.drain();  // must terminate: the exception empties bad's slot
  EXPECT_TRUE(frame.empty());
  ASSERT_TRUE(ok.done());
  ASSERT_TRUE(bad.done());
  EXPECT_EQ(ok.result(), 5);
  EXPECT_THROW(bad.result(), std::runtime_error);
}

TEST(InterleaveFrame, SubmitRejectsWhenFull) {
  hh::Frame frame(1);
  int seg = 0;
  hh::CoTask<int> a = yielding_op(0, &seg);
  hh::CoTask<int> b = yielding_op(0, &seg);
  ASSERT_TRUE(frame.submit(a.handle()));
  EXPECT_FALSE(frame.has_capacity());
  EXPECT_FALSE(frame.submit(b.handle()));
  frame.drain();
  EXPECT_TRUE(frame.submit(b.handle()));
  frame.drain();
  EXPECT_EQ(seg, 2);
}

namespace {

// Post to `set`, park on the slot, retry while the combiner answers retry —
// the shape of every data-structure _co retry loop, reduced to the
// transport so the test controls the combiner's answers exactly.
hh::CoTask<int> retrying_op(hn::PartitionSet* set, std::uint32_t p, Key key,
                            int* attempts) {
  hn::Request r;
  r.op = hn::OpCode::kRead;
  r.key = key;
  while (true) {
    ++*attempts;
    hn::OpHandle h = set->call_async(p, /*thread_id=*/0, r);
    hn::Response resp;
    if (!h.valid) {
      resp = set->call(p, 0, r);
    } else {
      co_await hh::suspend_until_done(*set, h);
      resp = set->retrieve(h);
    }
    if (!resp.retry) co_return static_cast<int>(resp.value);
  }
}

}  // namespace

TEST(InterleavePublication, RetryLoopDrainsInsideFrame) {
  hn::PartitionSet set = make_set(1, 1, 4);
  std::atomic<int> denials{2};
  set.set_handler(0, [&](const hn::Request& rq, hn::Response& rs) {
    if (rq.op == hn::OpCode::kRead && denials.fetch_sub(1) > 0) {
      rs.retry = true;
      return;
    }
    rs.ok = true;
    rs.value = rq.key + 1;
  });
  set.start();
  {
    hh::Frame frame(2);
    int attempts = 0, segments = 0;
    hh::CoTask<int> op = retrying_op(&set, 0, 41, &attempts);
    hh::CoTask<int> sibling = yielding_op(2, &segments);
    ASSERT_TRUE(frame.submit(op.handle()));
    ASSERT_TRUE(frame.submit(sibling.handle()));
    frame.drain();
    EXPECT_EQ(op.result(), 42);
    EXPECT_EQ(attempts, 3);  // two retries + success, all inside one slot
    EXPECT_TRUE(frame.empty());
  }
  set.stop();
}

TEST(InterleavePublication, SuspendsAcrossStalledCombinerAndRunsSibling) {
  // Partition 0's combiner blocks in its handler until released — a
  // deterministic stand-in for the fault injector's combiner stall — while
  // partition 1 answers immediately. With both ops in one frame, the op
  // parked on the stalled partition must not hold the thread hostage: the
  // sibling completes first, then the release lets the parked op finish.
  hn::PartitionSet set = make_set(2, 1, 4);
  std::atomic<bool> gate{false};
  set.set_handler(0, [&](const hn::Request& rq, hn::Response& rs) {
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    rs.ok = true;
    rs.value = rq.key;
  });
  set.set_handler(1, [](const hn::Request& rq, hn::Response& rs) {
    rs.ok = true;
    rs.value = rq.key;
  });
  set.start();
  {
    hh::Frame frame(2);
    std::vector<int> completion_order;
    int attempts0 = 0, attempts1 = 0;
    hh::CoTask<int> stalled = retrying_op(&set, 0, 100, &attempts0);
    hh::CoTask<int> quick = retrying_op(&set, 1, 2200, &attempts1);
    ASSERT_TRUE(frame.submit(stalled.handle()));
    ASSERT_TRUE(frame.submit(quick.handle()));
    // Step until the quick op completes; the stalled one must still be in
    // flight (parked on its publication slot), proving the park actually
    // released the thread.
    while (!quick.done()) {
      frame.step();
    }
    EXPECT_FALSE(stalled.done());
    EXPECT_EQ(quick.result(), 2200);
    // Release the combiner; the frame is now down to parked-only ops, so
    // drain() exercises the bounded-futex fallback path.
    gate.store(true, std::memory_order_release);
    frame.drain();
    EXPECT_EQ(stalled.result(), 100);
  }
  set.stop();
}

// ---------- data-structure _co ops vs oracle ----------

namespace {

// Submit up to `frame.capacity()` coroutine ops and drain. Within one round
// all keys are distinct, so the interleaved ops commute and the oracle
// stays exact however the frame schedules them.
template <typename Task>
void drain_round(hh::Frame& frame, std::vector<Task>& tasks) {
  for (auto& t : tasks) {
    ASSERT_TRUE(frame.submit(t.handle()));
  }
  frame.drain();
  for (auto& t : tasks) {
    ASSERT_TRUE(t.done());
  }
}

}  // namespace

TEST(InterleaveHybridSkipList, CoOpsMatchOracleAtDepth4) {
  hd::HybridSkipList::Config cfg;
  cfg.total_height = 8;
  cfg.nmp_height = 4;
  cfg.partitions = 4;
  cfg.partition_width = 64;
  cfg.max_threads = 1;
  cfg.slots_per_thread = 4;
  hd::HybridSkipList list(cfg);
  std::map<Key, Value> oracle;
  hybrids::util::Xoshiro256 rng(7);

  hh::Frame frame(4);
  for (int round = 0; round < 200; ++round) {
    // Four distinct keys per round.
    Key keys[4];
    for (int i = 0; i < 4; ++i) {
      keys[i] = static_cast<Key>((rng.next() % 64) * 4 + i);
    }
    const std::uint64_t choice = rng.next();
    std::vector<hh::CoTask<bool>> tasks;
    std::vector<int> kinds;
    std::vector<Value> reads(4, 0);
    for (int i = 0; i < 4; ++i) {
      const int kind = static_cast<int>((choice >> (i * 2)) & 3);
      kinds.push_back(kind);
      switch (kind) {
        case 0:
          tasks.push_back(list.read_co(keys[i], &reads[i], 0));
          break;
        case 1:
          tasks.push_back(list.insert_co(keys[i], keys[i] * 3 + 1, 0));
          break;
        case 2:
          tasks.push_back(list.remove_co(keys[i], 0));
          break;
        default:
          tasks.push_back(list.update_co(keys[i], keys[i] * 5 + 2, 0));
          break;
      }
    }
    drain_round(frame, tasks);
    for (int i = 0; i < 4; ++i) {
      const bool ok = tasks[i].result();
      const auto it = oracle.find(keys[i]);
      switch (kinds[i]) {
        case 0:
          EXPECT_EQ(ok, it != oracle.end()) << "read key " << keys[i];
          if (it != oracle.end()) { EXPECT_EQ(reads[i], it->second); }
          break;
        case 1:
          EXPECT_EQ(ok, it == oracle.end()) << "insert key " << keys[i];
          if (ok) oracle[keys[i]] = keys[i] * 3 + 1;
          break;
        case 2:
          EXPECT_EQ(ok, it != oracle.end()) << "remove key " << keys[i];
          if (ok) oracle.erase(keys[i]);
          break;
        default:
          EXPECT_EQ(ok, it != oracle.end()) << "update key " << keys[i];
          if (ok) oracle[keys[i]] = keys[i] * 5 + 2;
          break;
      }
    }
  }

  // scan_co against the final oracle (reads only — exact).
  std::vector<ScanEntry> buf(64);
  Value probe_out = 0;
  hh::CoTask<std::size_t> scan = list.scan_co(0, buf.size(), buf.data(), 0);
  hh::CoTask<bool> probe = list.read_co(1, &probe_out, 0);
  // A scan interleaved with a read: both are read-only, so both are exact.
  hh::Frame f2(2);
  ASSERT_TRUE(f2.submit(scan.handle()));
  ASSERT_TRUE(f2.submit(probe.handle()));
  f2.drain();
  const std::size_t n = scan.result();
  std::size_t expect_n = 0;
  for (const auto& [k, v] : oracle) {
    if (expect_n == buf.size()) break;
    ASSERT_LT(expect_n, n) << "scan_co returned too few entries";
    EXPECT_EQ(buf[expect_n].key, k);
    EXPECT_EQ(buf[expect_n].value, v);
    ++expect_n;
  }
  EXPECT_EQ(n, expect_n);
}

TEST(InterleaveHybridBTree, CoOpsMatchOracleAtDepth4) {
  std::vector<Key> keys;
  std::vector<Value> vals;
  std::map<Key, Value> oracle;
  for (Key k = 0; k < 1024; k += 2) {
    keys.push_back(k);
    vals.push_back(k * 7);
    oracle[k] = k * 7;
  }
  hd::HybridBTree::Config cfg;
  cfg.nmp_levels = 2;
  cfg.partitions = 4;
  cfg.max_threads = 1;
  cfg.slots_per_thread = 4;
  hd::HybridBTree tree(cfg, keys, vals);
  hybrids::util::Xoshiro256 rng(11);

  hh::Frame frame(4);
  for (int round = 0; round < 150; ++round) {
    Key rk[4];
    for (int i = 0; i < 4; ++i) {
      rk[i] = static_cast<Key>((rng.next() % 300) * 4 + i);
    }
    const std::uint64_t choice = rng.next();
    std::vector<hh::CoTask<bool>> tasks;
    std::vector<int> kinds;
    std::vector<Value> reads(4, 0);
    for (int i = 0; i < 4; ++i) {
      const int kind = static_cast<int>((choice >> (i * 2)) & 3);
      kinds.push_back(kind);
      switch (kind) {
        case 0:
          tasks.push_back(tree.read_co(rk[i], &reads[i], 0));
          break;
        case 1:
          tasks.push_back(tree.insert_co(rk[i], rk[i] + 9, 0));
          break;
        case 2:
          tasks.push_back(tree.remove_co(rk[i], 0));
          break;
        default:
          tasks.push_back(tree.update_co(rk[i], rk[i] + 13, 0));
          break;
      }
    }
    drain_round(frame, tasks);
    for (int i = 0; i < 4; ++i) {
      const bool ok = tasks[i].result();
      const auto it = oracle.find(rk[i]);
      switch (kinds[i]) {
        case 0:
          EXPECT_EQ(ok, it != oracle.end()) << "read key " << rk[i];
          if (it != oracle.end()) { EXPECT_EQ(reads[i], it->second); }
          break;
        case 1:
          EXPECT_EQ(ok, it == oracle.end()) << "insert key " << rk[i];
          if (ok) oracle[rk[i]] = rk[i] + 9;
          break;
        case 2:
          EXPECT_EQ(ok, it != oracle.end()) << "remove key " << rk[i];
          if (ok) oracle.erase(rk[i]);
          break;
        default:
          EXPECT_EQ(ok, it != oracle.end()) << "update key " << rk[i];
          if (ok) oracle[rk[i]] = rk[i] + 13;
          break;
      }
    }
  }

  std::vector<ScanEntry> buf(48);
  hh::CoTask<std::size_t> scan = tree.scan_co(100, buf.size(), buf.data(), 0);
  Value dummy = 0;
  hh::CoTask<bool> probe = tree.read_co(2, &dummy, 0);
  hh::Frame f2(2);
  ASSERT_TRUE(f2.submit(scan.handle()));
  ASSERT_TRUE(f2.submit(probe.handle()));
  f2.drain();
  const std::size_t n = scan.result();
  auto it = oracle.lower_bound(100);
  for (std::size_t i = 0; i < n; ++i, ++it) {
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(buf[i].key, it->first);
    EXPECT_EQ(buf[i].value, it->second);
  }
  EXPECT_TRUE(n == buf.size() || it == oracle.end());
}

TEST(InterleaveNmpSkipList, CoOpsRoundTrip) {
  hd::NmpSkipList::Config cfg;
  cfg.total_height = 8;
  cfg.partitions = 2;
  cfg.partition_width = 128;
  cfg.max_threads = 1;
  cfg.slots_per_thread = 4;
  hd::NmpSkipList list(cfg);
  hh::Frame frame(4);
  {
    std::vector<hh::CoTask<bool>> ins;
    for (Key k : {Key{1}, Key{70}, Key{130}, Key{200}}) {
      ins.push_back(list.insert_co(k, k + 1, 0));
    }
    drain_round(frame, ins);
    for (auto& t : ins) EXPECT_TRUE(t.result());
  }
  {
    Value v1 = 0, v2 = 0;
    std::vector<ScanEntry> buf(8);
    std::vector<hh::CoTask<bool>> reads;
    reads.push_back(list.read_co(70, &v1, 0));
    reads.push_back(list.read_co(130, &v2, 0));
    drain_round(frame, reads);
    EXPECT_TRUE(reads[0].result());
    EXPECT_TRUE(reads[1].result());
    EXPECT_EQ(v1, 71u);
    EXPECT_EQ(v2, 131u);
    hh::CoTask<std::size_t> scan = list.scan_co(0, buf.size(), buf.data(), 0);
    hh::CoTask<bool> rm = list.remove_co(1, 0);
    // Distinct key ranges: the scan starts at 0 but the remove of key 1 may
    // land before or after the scan's first chunk; both results are legal,
    // so only check the scan's ordering invariants here.
    hh::Frame f2(2);
    ASSERT_TRUE(f2.submit(scan.handle()));
    ASSERT_TRUE(f2.submit(rm.handle()));
    f2.drain();
    EXPECT_TRUE(rm.result());
    const std::size_t n = scan.result();
    for (std::size_t i = 1; i < n; ++i) {
      EXPECT_LT(buf[i - 1].key, buf[i].key);
    }
  }
}

// The TSan CI target: four threads, disjoint key ranges, depth-8 frames.
// Distinct keys within each round keep every thread's std::map oracle exact
// while the frame interleaves descents and publication waits; cross-thread
// races (combiner slots, EBR epochs, node pool shards) are TSan's job.
TEST(InterleaveChaos, OracleExactAtDepth8FourThreads) {
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint32_t kDepth = 8;
  constexpr Key kRange = 96;  // keys per thread
  hd::HybridSkipList::Config cfg;
  cfg.total_height = 10;
  cfg.nmp_height = 5;
  cfg.partitions = 4;
  cfg.partition_width = 96;
  cfg.max_threads = kThreads;
  cfg.slots_per_thread = kDepth;
  hd::HybridSkipList list(cfg);

  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&list, t] {
      const Key base = static_cast<Key>(t) * kRange;
      std::map<Key, Value> oracle;
      hybrids::util::Xoshiro256 rng(1000 + t);
      hh::Frame frame(kDepth);
      for (int round = 0; round < 120; ++round) {
        Key keys[kDepth];
        for (std::uint32_t i = 0; i < kDepth; ++i) {
          // kDepth distinct keys inside this thread's range.
          keys[i] = base + static_cast<Key>((rng.next() % (kRange / kDepth)) *
                                                kDepth +
                                            i);
        }
        const std::uint64_t choice = rng.next();
        std::vector<hh::CoTask<bool>> tasks;
        std::vector<int> kinds;
        std::vector<Value> reads(kDepth, 0);
        for (std::uint32_t i = 0; i < kDepth; ++i) {
          const int kind = static_cast<int>((choice >> (i * 2)) & 3);
          kinds.push_back(kind);
          switch (kind) {
            case 0:
              tasks.push_back(list.read_co(keys[i], &reads[i], t));
              break;
            case 1:
              tasks.push_back(list.insert_co(keys[i], keys[i] + 7, t));
              break;
            case 2:
              tasks.push_back(list.remove_co(keys[i], t));
              break;
            default:
              tasks.push_back(list.update_co(keys[i], keys[i] + 3, t));
              break;
          }
        }
        for (auto& task : tasks) {
          ASSERT_TRUE(frame.submit(task.handle()));
        }
        frame.drain();
        for (std::uint32_t i = 0; i < kDepth; ++i) {
          ASSERT_TRUE(tasks[i].done());
          const bool ok = tasks[i].result();
          const auto it = oracle.find(keys[i]);
          switch (kinds[i]) {
            case 0:
              ASSERT_EQ(ok, it != oracle.end());
              if (it != oracle.end()) { ASSERT_EQ(reads[i], it->second); }
              break;
            case 1:
              ASSERT_EQ(ok, it == oracle.end());
              if (ok) oracle[keys[i]] = keys[i] + 7;
              break;
            case 2:
              ASSERT_EQ(ok, it != oracle.end());
              if (ok) oracle.erase(keys[i]);
              break;
            default:
              ASSERT_EQ(ok, it != oracle.end());
              if (ok) oracle[keys[i]] = keys[i] + 3;
              break;
          }
        }
      }
      // Final sweep: every oracle key readable with the exact value.
      for (const auto& [k, v] : oracle) {
        Value out = 0;
        ASSERT_TRUE(list.read(k, out, t));
        ASSERT_EQ(out, v);
      }
    });
  }
  for (auto& w : workers) w.join();
}

#endif  // HYBRIDS_NO_INTERLEAVE
