// Tests for the hybrid B+ tree (§3.4): construction/push-down, boundary
// synchronization, LOCK_PATH escalation, concurrent workloads, non-blocking
// calls, and the NMP-side partition structure in isolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/ds/nmp_btree.hpp"
#include "hybrids/util/rng.hpp"

namespace hd = hybrids::ds;
namespace hu = hybrids::util;
using hybrids::Key;
using hybrids::Value;

namespace {

std::vector<Key> even_keys(int n) {
  std::vector<Key> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) keys.push_back(static_cast<Key>(i * 2));
  return keys;
}

std::vector<Value> values_for(const std::vector<Key>& keys) {
  std::vector<Value> vals;
  vals.reserve(keys.size());
  for (Key k : keys) vals.push_back(k + 1);
  return vals;
}

hd::HybridBTree::Config config(int nmp_levels = 2, std::uint32_t partitions = 4,
                               std::uint32_t threads = 4) {
  hd::HybridBTree::Config cfg;
  cfg.nmp_levels = nmp_levels;
  cfg.partitions = partitions;
  cfg.max_threads = threads;
  return cfg;
}

}  // namespace

// ---------- NmpBTree in isolation ----------

TEST(NmpBTree, LeafOnlyPartitionInsertReadRemove) {
  hd::NmpBTree bt(0);  // top level == leaf
  hd::NmpBNode* leaf = bt.make_node(0);
  leaf->parent_seqnum = 0;
  // Fill below capacity.
  for (Key k = 1; k <= 10; ++k) {
    auto r = bt.insert(leaf, 0, k * 2, k);
    ASSERT_TRUE(r.ok);
  }
  auto r = bt.read(leaf, 0, 6);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, 3u);
  EXPECT_FALSE(bt.read(leaf, 0, 7).ok);
  EXPECT_TRUE(bt.remove(leaf, 0, 6).ok);
  EXPECT_FALSE(bt.read(leaf, 0, 6).ok);
  EXPECT_TRUE(bt.update(leaf, 0, 8, 99).ok);
  EXPECT_EQ(bt.read(leaf, 0, 8).value, 99u);
}

TEST(NmpBTree, BoundaryCheckDetectsStaleAndAdoptsNewer) {
  hd::NmpBTree bt(0);
  hd::NmpBNode* leaf = bt.make_node(0);
  leaf->parent_seqnum = 4;
  // Offloaded seq older than recorded: begin node was split -> retry.
  EXPECT_TRUE(bt.read(leaf, 2, 1).retry);
  // Offloaded seq newer: sibling split; adopt.
  auto r = bt.read(leaf, 6, 1);
  EXPECT_FALSE(r.retry);
  EXPECT_EQ(leaf->parent_seqnum, 6u);
}

TEST(NmpBTree, FullTopLevelEscalatesWithLockPath) {
  hd::NmpBTree bt(0);
  hd::NmpBNode* leaf = bt.make_node(0);
  for (int i = 0; i < hd::kBTreeLeafSlots; ++i) {
    ASSERT_TRUE(bt.insert(leaf, 0, static_cast<Key>(i * 2 + 2), 1).ok);
  }
  // Leaf (== top level) is full: escalation.
  auto r = bt.insert(leaf, 0, 5, 5);
  EXPECT_TRUE(r.lock_path);
  ASSERT_NE(r.handle, nullptr);
  EXPECT_TRUE(leaf->locked);
  // A remove hitting the locked leaf must be told to retry.
  EXPECT_TRUE(bt.remove(leaf, 0, 4).retry);
  // Reads are still allowed on the locked path.
  EXPECT_TRUE(bt.read(leaf, 0, 4).ok);
  // A concurrent insert into the locked path must also retry.
  EXPECT_TRUE(bt.insert(leaf, 0, 7, 7).retry);
  // RESUME completes the split and stamps parent_seqnum.
  auto res = bt.resume_insert(r.handle, 12);
  EXPECT_TRUE(res.ok);
  ASSERT_NE(res.new_top, nullptr);
  EXPECT_FALSE(leaf->locked);
  EXPECT_FALSE(res.new_top->locked);
  EXPECT_EQ(leaf->parent_seqnum, 12u);
  EXPECT_EQ(res.new_top->parent_seqnum, 12u);
  // The divider separates the two leaves.
  EXPECT_LE(leaf->keys[leaf->slotuse - 1], res.up_key);
  EXPECT_GT(res.new_top->keys[0], res.up_key);
  // The new key landed in exactly one of the leaves.
  bool in_left = bt.read(leaf, 12, 5).ok;
  bool in_right = bt.read(res.new_top, 12, 5).ok;
  EXPECT_TRUE(in_left != in_right);
}

TEST(NmpBTree, UnlockPathRollsBack) {
  hd::NmpBTree bt(0);
  hd::NmpBNode* leaf = bt.make_node(0);
  for (int i = 0; i < hd::kBTreeLeafSlots; ++i) {
    ASSERT_TRUE(bt.insert(leaf, 0, static_cast<Key>(i + 1), 1).ok);
  }
  auto r = bt.insert(leaf, 0, 100, 1);
  ASSERT_TRUE(r.lock_path);
  EXPECT_TRUE(bt.unlock_path(r.handle).ok);
  EXPECT_FALSE(leaf->locked);
  // The insert did not happen.
  EXPECT_FALSE(bt.read(leaf, 0, 100).ok);
}

TEST(NmpBTree, FingerBatchesMatchPlainDescent) {
  // Two identical two-level partitions; one served with a per-batch finger
  // (the combiner's key-sorted batch path), one with plain root descents.
  // Results and final contents must match op for op.
  hd::NmpBTree with_finger(1);
  hd::NmpBTree plain(1);
  hd::NmpBNode* roots[2];
  for (int i = 0; i < 2; ++i) {
    hd::NmpBTree& bt = i == 0 ? with_finger : plain;
    roots[i] = bt.make_node(1);
    roots[i]->children[0] = bt.make_node(0);
    roots[i]->slotuse = 0;
  }
  hu::Xoshiro256 rng(13);
  std::uint64_t total_hits = 0;
  for (int pass = 0; pass < 300; ++pass) {
    // Ascending-key batch of mixed ops, as NmpCore would present it.
    std::vector<std::pair<int, Key>> batch;  // (op, key)
    Key k = 0;
    const std::size_t n = 2 + rng.next_below(10);
    for (std::size_t i = 0; i < n; ++i) {
      k += 1 + static_cast<Key>(rng.next_below(40));
      // 80-key universe: leaves stop splitting once their range holds fewer
      // than a leaf's capacity of possible keys, so the root (14 slots)
      // never fills and no batch op ever escalates with LOCK_PATH.
      batch.emplace_back(static_cast<int>(rng.next_below(4)), k % 80 + 1);
    }
    std::sort(batch.begin(), batch.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    hd::NmpBTree::Finger fg;
    for (const auto& [op, key] : batch) {
      const Value val = key * 3 + 1;
      hd::NmpBTree::OpResult ra, rb;
      switch (op) {
        case 0:
          ra = with_finger.read(roots[0], 0, key, &fg);
          rb = plain.read(roots[1], 0, key);
          break;
        case 1:
          ra = with_finger.update(roots[0], 0, key, val, &fg);
          rb = plain.update(roots[1], 0, key, val);
          break;
        case 2:
          ra = with_finger.insert(roots[0], 0, key, val, &fg);
          rb = plain.insert(roots[1], 0, key, val);
          break;
        default:
          ra = with_finger.remove(roots[0], 0, key, &fg);
          rb = plain.remove(roots[1], 0, key);
          break;
      }
      ASSERT_EQ(ra.ok, rb.ok) << "pass " << pass << " op " << op << " key " << key;
      ASSERT_EQ(ra.retry, rb.retry) << "pass " << pass << " key " << key;
      ASSERT_EQ(ra.lock_path, rb.lock_path) << "pass " << pass << " key " << key;
      ASSERT_EQ(ra.value, rb.value) << "pass " << pass << " key " << key;
      // This test keeps the key universe small enough that the partition
      // top never splits; an escalation would diverge the twins.
      ASSERT_FALSE(ra.lock_path);
    }
    total_hits += fg.hits;
    ASSERT_EQ(with_finger.count_keys(roots[0]), plain.count_keys(roots[1]))
        << "pass " << pass;
  }
  EXPECT_GT(total_hits, 0u);
  EXPECT_TRUE(with_finger.validate_subtree(roots[0], 0, ~Key{0}, true));
  EXPECT_TRUE(plain.validate_subtree(roots[1], 0, ~Key{0}, true));
}

// ---------- HybridBTree ----------

TEST(HybridBTree, SplitSizingRule) {
  // 2^21 keys at fill 0.5: leaves ~300k, fanout 7 -> height ~8; a 1MB LLC
  // holds the top ~5-6 levels.
  int nmp = hd::HybridBTree::nmp_levels_for_cache(1ull << 21, 1 << 20, 0.5);
  EXPECT_GE(nmp, 2);
  EXPECT_LE(nmp, 4);
  // Tiny cache: almost everything NMP-managed.
  EXPECT_GE(hd::HybridBTree::nmp_levels_for_cache(1ull << 21, 4096, 0.5), 5);
}

TEST(HybridBTree, BuildAndReadBack) {
  auto keys = even_keys(10000);
  auto vals = values_for(keys);
  hd::HybridBTree tree(config(), keys, vals);
  EXPECT_EQ(tree.size(), keys.size());
  EXPECT_TRUE(tree.validate());
  Value v = 0;
  for (Key k : keys) {
    ASSERT_TRUE(tree.read(k, v, 0)) << k;
    ASSERT_EQ(v, k + 1);
  }
  EXPECT_FALSE(tree.read(1, v, 0));
  EXPECT_FALSE(tree.read(keys.back() + 2, v, 0));
}

TEST(HybridBTree, HostPortionIsSmallSubset) {
  auto keys = even_keys(20000);
  auto vals = values_for(keys);
  hd::HybridBTree tree(config(/*nmp_levels=*/3), keys, vals);
  // Leaves + 2 inner levels pushed down: the host holds far fewer nodes
  // than the ~2900 leaves.
  EXPECT_LT(tree.host_node_count(), 200u);
  EXPECT_TRUE(tree.validate());
}

TEST(HybridBTree, InsertUpdateRemoveRoundTrip) {
  auto keys = even_keys(2000);
  auto vals = values_for(keys);
  hd::HybridBTree tree(config(), keys, vals);
  EXPECT_TRUE(tree.insert(5, 55, 0));
  EXPECT_FALSE(tree.insert(5, 66, 0));
  Value v = 0;
  ASSERT_TRUE(tree.read(5, v, 0));
  EXPECT_EQ(v, 55u);
  EXPECT_TRUE(tree.update(5, 77, 0));
  ASSERT_TRUE(tree.read(5, v, 0));
  EXPECT_EQ(v, 77u);
  EXPECT_TRUE(tree.remove(5, 0));
  EXPECT_FALSE(tree.remove(5, 0));
  EXPECT_FALSE(tree.read(5, v, 0));
  EXPECT_TRUE(tree.validate());
  EXPECT_EQ(tree.size(), keys.size());
}

TEST(HybridBTree, SequentialMatchesReferenceModel) {
  auto keys = even_keys(5000);
  auto vals = values_for(keys);
  hd::HybridBTree tree(config(), keys, vals);
  std::map<Key, Value> model;
  for (std::size_t i = 0; i < keys.size(); ++i) model[keys[i]] = vals[i];
  hu::Xoshiro256 rng(23);
  for (int i = 0; i < 30000; ++i) {
    Key k = static_cast<Key>(rng.next_below(12000));
    switch (rng.next_below(4)) {
      case 0: {
        Value v = static_cast<Value>(rng.next());
        ASSERT_EQ(tree.insert(k, v, 0), model.emplace(k, v).second) << "key " << k;
        break;
      }
      case 1:
        ASSERT_EQ(tree.remove(k, 0), model.erase(k) > 0) << "key " << k;
        break;
      case 2: {
        Value v = static_cast<Value>(rng.next());
        bool present = model.count(k) > 0;
        ASSERT_EQ(tree.update(k, v, 0), present) << "key " << k;
        if (present) model[k] = v;
        break;
      }
      default: {
        Value v = 0;
        auto it = model.find(k);
        ASSERT_EQ(tree.read(k, v, 0), it != model.end()) << "key " << k;
        if (it != model.end()) { ASSERT_EQ(v, it->second); }
      }
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  EXPECT_TRUE(tree.validate());
}

TEST(HybridBTree, EscalatedSplitsEndToEnd) {
  // Tail-insert ascending keys force repeated splits that escalate through
  // the partitions' top-level nodes into host-side splits.
  auto keys = even_keys(4000);
  auto vals = values_for(keys);
  hd::HybridBTree tree(config(/*nmp_levels=*/2), keys, vals);
  const Key base = keys.back() + 2;
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(tree.insert(base + static_cast<Key>(i), 1, 0)) << i;
  }
  EXPECT_EQ(tree.size(), 8000u);
  EXPECT_TRUE(tree.validate());
  Value v = 0;
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(tree.read(base + static_cast<Key>(i), v, 0));
  }
}

TEST(HybridBTree, RootGrowthViaEscalations) {
  // Small initial tree + many inserts: the host root itself must split.
  auto keys = even_keys(200);
  auto vals = values_for(keys);
  hd::HybridBTree tree(config(/*nmp_levels=*/1, /*partitions=*/2), keys, vals);
  const int h0 = tree.height();
  for (Key k = 1; k < 8000; k += 2) ASSERT_TRUE(tree.insert(k, k, 0));
  EXPECT_GT(tree.height(), h0);
  EXPECT_EQ(tree.size(), 200u + 4000u);
  EXPECT_TRUE(tree.validate());
}

TEST(HybridBTree, ConcurrentStripedInserts) {
  auto keys = even_keys(2000);
  auto vals = values_for(keys);
  hd::HybridBTree tree(config(), keys, vals);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  const Key base = keys.back() + 2;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(tree.insert(base + static_cast<Key>(i * kThreads + t),
                                static_cast<Value>(t), static_cast<std::uint32_t>(t)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tree.size(), keys.size() + kThreads * kPerThread);
  EXPECT_TRUE(tree.validate());
}

TEST(HybridBTree, ConcurrentMixedWorkload) {
  auto keys = even_keys(4096);
  auto vals = values_for(keys);
  hd::HybridBTree tree(config(), keys, vals);
  std::vector<std::thread> threads;
  std::atomic<long long> net[256] = {};
  for (std::uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      hu::Xoshiro256 rng(3000 + t);
      for (int i = 0; i < 3000; ++i) {
        // Odd keys: absent initially; fight over 256 of them.
        Key k = static_cast<Key>(rng.next_below(256)) * 16 + 1;
        switch (rng.next_below(3)) {
          case 0:
            if (tree.insert(k, k, t)) net[k / 16].fetch_add(1);
            break;
          case 1:
            if (tree.remove(k, t)) net[k / 16].fetch_sub(1);
            break;
          default: {
            Value v = 0;
            (void)tree.read(k, v, t);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(tree.validate());
  Value v = 0;
  for (int i = 0; i < 256; ++i) {
    const long long n = net[i].load();
    ASSERT_TRUE(n == 0 || n == 1);
    EXPECT_EQ(tree.read(static_cast<Key>(i) * 16 + 1, v, 0), n == 1) << i;
  }
  // Initial even keys must all still be present.
  EXPECT_GE(tree.size(), keys.size());
}

TEST(HybridBTree, NonBlockingTicketsCompleteCorrectly) {
  auto keys = even_keys(3000);
  auto vals = values_for(keys);
  hd::HybridBTree tree(config(), keys, vals);
  std::vector<hd::HybridBTree::Ticket> pending;
  auto drain_one = [&] {
    ASSERT_FALSE(pending.empty());
    (void)tree.finish(pending.front());
    pending.erase(pending.begin());
  };
  const Key base = keys.back() + 2;
  for (int i = 0; i < 500; ++i) {
    auto t = tree.insert_async(base + static_cast<Key>(i), 1, 0);
    while (t.state == hd::HybridBTree::Ticket::State::kRejected) {
      drain_one();
      t = tree.insert_async(base + static_cast<Key>(i), 1, 0);
    }
    pending.push_back(t);
  }
  while (!pending.empty()) drain_one();
  EXPECT_EQ(tree.size(), keys.size() + 500);
  EXPECT_TRUE(tree.validate());
  // Async reads see all inserted keys.
  for (int i = 0; i < 500; ++i) {
    auto t = tree.read_async(base + static_cast<Key>(i), 0);
    while (t.state == hd::HybridBTree::Ticket::State::kRejected) {
      t = tree.read_async(base + static_cast<Key>(i), 0);
    }
    Value v = 0;
    EXPECT_TRUE(tree.finish(t, &v));
    EXPECT_EQ(v, 1u);
  }
}
