// End-to-end simulator tests: run scaled-down versions of the paper's
// experiments and check mechanics plus the qualitative relationships the
// paper reports (§5).
#include <gtest/gtest.h>

#include "hybrids/sim/exp/experiment.hpp"
#include "hybrids/workload/ycsb.hpp"

namespace hs = hybrids::sim;
namespace hw = hybrids::workload;

namespace {

hs::ExperimentConfig small_config(std::uint64_t keys, std::uint32_t threads) {
  hs::ExperimentConfig cfg;
  cfg.workload = hw::ycsb_c(keys);
  cfg.threads = threads;
  cfg.ops_per_thread = 600;
  cfg.warmup_per_thread = 300;
  // Scale the LLC down with the structure so the host portion sizing rule
  // stays meaningful at test scale.
  cfg.machine.l2_bytes = 64 * 1024;
  cfg.machine.l1_bytes = 8 * 1024;
  return cfg;
}

}  // namespace

TEST(SimSkiplistExperiment, AllKindsProduceThroughput) {
  auto cfg = small_config(1 << 14, 4);
  for (auto kind : {hs::SkiplistKind::kLockFree, hs::SkiplistKind::kNmp,
                    hs::SkiplistKind::kHybridBlocking,
                    hs::SkiplistKind::kHybridNonBlocking}) {
    hs::ExperimentResult r = hs::run_skiplist_experiment(kind, cfg);
    EXPECT_GT(r.mops, 0.0) << hs::to_string(kind);
    EXPECT_GT(r.duration, 0u) << hs::to_string(kind);
    EXPECT_EQ(r.ops, 4u * 600u) << hs::to_string(kind);
  }
}

TEST(SimSkiplistExperiment, HybridReducesDramReadsVsBaselines) {
  // Figure 5b's robust shape: the hybrid makes far fewer DRAM reads than the
  // prior-work NMP-based design (paper: 40%), and stays in the same band as
  // the lock-free baseline. (The paper additionally reports hybrid < lock-
  // free; in our index-only cache model the lock-free baseline retains its
  // hot paths better than a gem5 full-system run, so that margin shrinks to
  // parity — see EXPERIMENTS.md "known divergences" and the
  // ablate_interference bench.)
  auto cfg = small_config(1 << 16, 4);
  cfg.workload = hw::sensitivity(1 << 16, 100, 0, 0);
  cfg.machine.l2_bytes = 16 * 1024;  // ~200x smaller than the structure
  cfg.machine.l1_bytes = 4 * 1024;
  auto lf = hs::run_skiplist_experiment(hs::SkiplistKind::kLockFree, cfg);
  auto nmp = hs::run_skiplist_experiment(hs::SkiplistKind::kNmp, cfg);
  auto hy = hs::run_skiplist_experiment(hs::SkiplistKind::kHybridBlocking, cfg);
  // At this test scale the structural ratio is ~nmp_levels/total_levels
  // (~0.75); at the benches' default scale it reaches the paper's ~0.4.
  EXPECT_LT(hy.dram_reads_per_op, 0.9 * nmp.dram_reads_per_op);
  EXPECT_LT(lf.dram_reads_per_op, nmp.dram_reads_per_op);
  EXPECT_LT(hy.dram_reads_per_op, 1.25 * lf.dram_reads_per_op);
  // The hybrid's host portion is nearly cache-resident; nearly all of its
  // index reads come from the NMP side.
  EXPECT_LT(hy.host_dram_reads_per_op, 0.25 * hy.dram_reads_per_op);
}

TEST(SimSkiplistExperiment, NonBlockingBeatsBlocking) {
  auto cfg = small_config(1 << 14, 4);
  auto blocking =
      hs::run_skiplist_experiment(hs::SkiplistKind::kHybridBlocking, cfg);
  auto nonblocking =
      hs::run_skiplist_experiment(hs::SkiplistKind::kHybridNonBlocking, cfg);
  EXPECT_GT(nonblocking.mops, blocking.mops);
  // §5.1: memory reads stay roughly the same; only idle time is hidden.
  EXPECT_NEAR(nonblocking.dram_reads_per_op, blocking.dram_reads_per_op,
              0.35 * blocking.dram_reads_per_op + 1.0);
}

TEST(SimSkiplistExperiment, MixedWorkloadRuns) {
  auto cfg = small_config(1 << 14, 4);
  cfg.workload = hw::sensitivity(1 << 14, 50, 25, 25);
  for (auto kind : {hs::SkiplistKind::kLockFree, hs::SkiplistKind::kHybridBlocking,
                    hs::SkiplistKind::kHybridNonBlocking}) {
    hs::ExperimentResult r = hs::run_skiplist_experiment(kind, cfg);
    EXPECT_GT(r.mops, 0.0) << hs::to_string(kind);
  }
}

TEST(SimBTreeExperiment, AllKindsProduceThroughput) {
  auto cfg = small_config(1 << 15, 4);
  for (auto kind : {hs::BTreeKind::kHostOnly, hs::BTreeKind::kHybridBlocking,
                    hs::BTreeKind::kHybridNonBlocking}) {
    hs::ExperimentResult r = hs::run_btree_experiment(kind, cfg);
    EXPECT_GT(r.mops, 0.0) << hs::to_string(kind);
    EXPECT_EQ(r.ops, 4u * 600u) << hs::to_string(kind);
  }
}

TEST(SimBTreeExperiment, HybridReducesDramReads) {
  // Figure 6b: host-only ~3x the DRAM reads of the hybrid. Uniform keys for
  // the same reason as the skiplist test above.
  auto cfg = small_config(1 << 16, 4);
  cfg.workload = hw::sensitivity(1 << 16, 100, 0, 0);
  auto host = hs::run_btree_experiment(hs::BTreeKind::kHostOnly, cfg);
  auto hy = hs::run_btree_experiment(hs::BTreeKind::kHybridBlocking, cfg);
  EXPECT_LT(hy.dram_reads_per_op, host.dram_reads_per_op);
  EXPECT_LT(hy.host_dram_reads_per_op, 1.5);
}

TEST(SimBTreeExperiment, SplitHeavyWorkloadRuns) {
  auto cfg = small_config(1 << 14, 4);
  cfg.workload = hw::sensitivity(1 << 14, 50, 25, 25, /*split_heavy=*/true);
  for (auto kind : {hs::BTreeKind::kHostOnly, hs::BTreeKind::kHybridBlocking,
                    hs::BTreeKind::kHybridNonBlocking}) {
    hs::ExperimentResult r = hs::run_btree_experiment(kind, cfg);
    EXPECT_GT(r.mops, 0.0) << hs::to_string(kind);
  }
}

TEST(SimBTreeExperiment, NonBlockingBeatsBlocking) {
  auto cfg = small_config(1 << 15, 4);
  auto blocking = hs::run_btree_experiment(hs::BTreeKind::kHybridBlocking, cfg);
  auto nonblocking =
      hs::run_btree_experiment(hs::BTreeKind::kHybridNonBlocking, cfg);
  EXPECT_GT(nonblocking.mops, blocking.mops);
}

TEST(SimExperiment, DeterministicAcrossRuns) {
  auto cfg = small_config(1 << 14, 2);
  auto a = hs::run_skiplist_experiment(hs::SkiplistKind::kHybridBlocking, cfg);
  auto b = hs::run_skiplist_experiment(hs::SkiplistKind::kHybridBlocking, cfg);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.mem.dram_reads_total(), b.mem.dram_reads_total());
}

TEST(OffloadDelays, ComponentsSumAndCompareToLlcMiss) {
  hs::MachineConfig machine;
  hs::OffloadDelays d = hs::measure_offload_delays(machine);
  EXPECT_GT(d.post, 0u);
  EXPECT_GT(d.nmp_process, 0u);
  EXPECT_GT(d.response, 0u);
  EXPECT_EQ(d.total, d.post + d.nmp_notice + d.nmp_process + d.host_notice + d.response);
  // Table 2's observation: the communication round trip is comparable to
  // 1-2 LLC miss delays.
  EXPECT_GT(d.total, d.llc_miss / 2);
  EXPECT_LT(d.total, 4 * d.llc_miss);
}
