// Tests for the adaptive-promotion extension (§7 future work): hot NMP-only
// keys are raised into the host-managed portion — and for the SplitController
// that drives the cache value/shortcut ratio and the promote budget online
// (ext_adaptive_skew's closed loop).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <thread>

#include "hybrids/cache/controller.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/ds/seq_skiplist.hpp"
#include "hybrids/util/rng.hpp"

namespace hd = hybrids::ds;
namespace hu = hybrids::util;
using hybrids::Key;
using hybrids::Value;

namespace {
hd::HybridSkipList::Config adaptive_config(std::uint32_t threshold,
                                           std::uint32_t budget) {
  hd::HybridSkipList::Config cfg;
  cfg.total_height = 12;
  cfg.nmp_height = 6;
  cfg.partitions = 4;
  cfg.partition_width = 1 << 16;
  cfg.max_threads = 4;
  cfg.promote_threshold = threshold;
  cfg.promote_budget = budget;
  return cfg;
}
}  // namespace

TEST(SeqSkipListPromote, ReplacesShortNodeWithFullHeight) {
  hd::SeqSkipList list(6);
  for (Key k = 1; k <= 50; ++k) {
    (void)list.insert(k, k * 10, /*height=*/1, nullptr, list.head());
  }
  hd::SeqSkipList::Node* old_node = list.read(25, list.head());
  ASSERT_NE(old_node, nullptr);
  ASSERT_EQ(old_node->height, 1);
  int marker = 0;
  hd::SeqSkipList::Node* nn = list.promote(25, &marker);
  ASSERT_NE(nn, nullptr);
  EXPECT_EQ(nn->height, 6);
  EXPECT_EQ(nn->value, 250u);
  EXPECT_EQ(nn->host_ptr, &marker);
  EXPECT_GT(nn->version, old_node->version);
  // Old node is stale (begin-node detection) but inspectable.
  EXPECT_TRUE(hd::SeqSkipList::is_stale(old_node));
  // Structure remains a valid skiplist and the key is still reachable.
  EXPECT_TRUE(list.validate());
  EXPECT_EQ(list.read(25, list.head()), nn);
  EXPECT_EQ(list.size(), 50u);
  // Promoting again (already full height) is a no-op failure.
  EXPECT_EQ(list.promote(25, nullptr), nullptr);
  // Promoting an absent key fails.
  EXPECT_EQ(list.promote(1000, nullptr), nullptr);
}

TEST(AdaptiveHybridSkipList, HotKeyGetsPromoted) {
  hd::HybridSkipList list(adaptive_config(/*threshold=*/5, /*budget=*/16));
  // A key that lands NMP-only with overwhelming probability is hard to force
  // (heights are random), so insert many and hammer one of them.
  for (Key k = 1; k <= 200; ++k) ASSERT_TRUE(list.insert(k * 3, k, 0));
  const std::size_t host_before = list.host_size();
  Value v = 0;
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(list.read(33, v, 0));
  // 33 = 11*3 was inserted; after >= threshold reads it must be promoted
  // (unless its tower already reached the host, in which case nothing fires).
  EXPECT_TRUE(list.validate());
  EXPECT_GE(list.host_size(), host_before);
  // Reads still return the correct value after promotion.
  ASSERT_TRUE(list.read(33, v, 0));
  EXPECT_EQ(v, 11u);
}

TEST(AdaptiveHybridSkipList, PromotionPreservesSemanticsUnderChurn) {
  hd::HybridSkipList list(adaptive_config(3, 64));
  std::map<Key, Value> model;
  hu::Xoshiro256 rng(77);
  for (int i = 0; i < 20000; ++i) {
    Key k = static_cast<Key>(rng.next_below(300)) * 7;
    switch (rng.next_below(4)) {
      case 0: {
        Value v = static_cast<Value>(rng.next());
        ASSERT_EQ(list.insert(k, v, 0), model.emplace(k, v).second);
        break;
      }
      case 1:
        ASSERT_EQ(list.remove(k, 0), model.erase(k) > 0);
        break;
      case 2: {
        Value v = static_cast<Value>(rng.next());
        bool present = model.count(k) > 0;
        ASSERT_EQ(list.update(k, v, 0), present);
        if (present) model[k] = v;
        break;
      }
      default: {
        Value v = 0;
        auto it = model.find(k);
        ASSERT_EQ(list.read(k, v, 0), it != model.end()) << k;
        if (it != model.end()) { ASSERT_EQ(v, it->second); }
      }
    }
  }
  EXPECT_EQ(list.size(), model.size());
  EXPECT_TRUE(list.validate());
  EXPECT_GT(list.promoted(), 0u);  // hot keys exist in a 300-key space
}

TEST(AdaptiveHybridSkipList, BudgetBoundsPromotions) {
  hd::HybridSkipList list(adaptive_config(2, 4));
  for (Key k = 1; k <= 400; ++k) ASSERT_TRUE(list.insert(k, k, 0));
  Value v = 0;
  for (Key k = 1; k <= 400; ++k) {
    for (int i = 0; i < 5; ++i) (void)list.read(k, v, 0);
  }
  EXPECT_LE(list.promoted(), 4u);
  EXPECT_TRUE(list.validate());
}

TEST(AdaptiveHybridSkipList, ConcurrentReadersPromoteSafely) {
  hd::HybridSkipList list(adaptive_config(4, 128));
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(list.insert(k * 2, k, 0));
  std::vector<std::thread> threads;
  std::atomic<bool> error{false};
  for (std::uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      hu::Xoshiro256 rng(t);
      Value v = 0;
      for (int i = 0; i < 4000; ++i) {
        Key k = static_cast<Key>(1 + rng.next_below(50)) * 2;  // hot range
        if (!list.read(k, v, t) || v != k / 2) error.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(error.load());
  EXPECT_TRUE(list.validate());
  EXPECT_GT(list.promoted(), 0u);
}

TEST(AdaptiveHybridSkipList, DisabledByDefault) {
  hd::HybridSkipList list(adaptive_config(0, 0));
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(list.insert(k, k, 0));
  Value v = 0;
  for (int i = 0; i < 100; ++i) (void)list.read(10, v, 0);
  EXPECT_EQ(list.promoted(), 0u);
}

// ---------------------------------------------------------------------------
// SplitController: the closed-loop knob driver for the hot-key cache split
// and the host-managed split. Pure logic over synthetic samples, so skew
// shifts and noisy windows are driven exactly.
// ---------------------------------------------------------------------------

namespace hcc = hybrids::cache;

namespace {

/// A window where the value tier clearly earns more benefit per byte.
hcc::SplitController::Sample value_favoring() {
  hcc::SplitController::Sample s;
  s.value_hits = 1000;
  s.shortcut_hits = 100;
  s.misses = 200;
  s.value_save_ns = 900;
  s.shortcut_save_ns = 300;
  s.queue_wait_share = 0.4;  // inside the promote band: promote knob holds
  return s;
}

/// The mirror image: shortcuts dominate.
hcc::SplitController::Sample shortcut_favoring() {
  hcc::SplitController::Sample s;
  s.value_hits = 100;
  s.shortcut_hits = 1000;
  s.misses = 200;
  s.value_save_ns = 300;
  s.shortcut_save_ns = 900;
  s.queue_wait_share = 0.4;
  return s;
}

}  // namespace

TEST(SplitController, RatioConvergesUnderSustainedSkewShift) {
  hcc::SplitController::Config cfg;
  cfg.ratio = 0.5;
  cfg.hysteresis = 3;
  hcc::SplitController ctl(cfg);

  // Phase 1: value-dominated traffic. The ratio climbs toward ratio_max and
  // clamps there — never past it.
  for (int w = 0; w < 60; ++w) (void)ctl.observe(value_favoring());
  EXPECT_DOUBLE_EQ(ctl.value_ratio(), cfg.ratio_max)
      << "sustained value skew did not converge to the clamp";

  // Phase 2: the workload shifts — shortcuts now dominate. The controller
  // tracks the shift down to ratio_min.
  for (int w = 0; w < 120; ++w) (void)ctl.observe(shortcut_favoring());
  EXPECT_DOUBLE_EQ(ctl.value_ratio(), cfg.ratio_min)
      << "controller failed to track the skew shift";
}

TEST(SplitController, SingleNoisyWindowNeverMovesAKnob) {
  hcc::SplitController::Config cfg;
  cfg.hysteresis = 3;
  hcc::SplitController ctl(cfg);
  const double r0 = ctl.value_ratio();
  const std::uint32_t p0 = ctl.promote_budget();

  // Alternating directions: the streak resets every window, so hysteresis
  // never fires no matter how many windows flow.
  for (int w = 0; w < 100; ++w) {
    (void)ctl.observe((w & 1) ? value_favoring() : shortcut_favoring());
  }
  EXPECT_DOUBLE_EQ(ctl.value_ratio(), r0) << "flapping input moved the ratio";
  EXPECT_EQ(ctl.promote_budget(), p0);
  EXPECT_EQ(ctl.ratio_moves(), 0u);

  // Two agreeing windows (one short of hysteresis) then a hold: no move.
  // (The hold first clears the +1 streak the alternating phase left behind.)
  hcc::SplitController::Sample hold;  // zero traffic → direction 0
  (void)ctl.observe(hold);
  (void)ctl.observe(value_favoring());
  (void)ctl.observe(value_favoring());
  (void)ctl.observe(hold);
  (void)ctl.observe(value_favoring());
  (void)ctl.observe(value_favoring());
  EXPECT_EQ(ctl.ratio_moves(), 0u)
      << "a hold window failed to reset the streak";
}

TEST(SplitController, NeverOscillatesPastHysteresisBound) {
  // Worst-case adversarial input: always pulls against the last move. The
  // anti-flap bound says a knob moves at most once per `hysteresis`
  // consecutive agreeing windows, so N windows allow at most N/hysteresis
  // moves, and the excursion between direction changes is one step.
  hcc::SplitController::Config cfg;
  cfg.hysteresis = 4;
  hcc::SplitController ctl(cfg);
  constexpr int kWindows = 400;
  double prev = ctl.value_ratio();
  double max_excursion = 0;
  for (int w = 0; w < kWindows; ++w) {
    // Blocks of `hysteresis` agreeing windows with alternating direction:
    // the fastest legal flip-flop schedule.
    const bool up = (w / cfg.hysteresis) % 2 == 0;
    (void)ctl.observe(up ? value_favoring() : shortcut_favoring());
    max_excursion = std::max(max_excursion, std::abs(ctl.value_ratio() - prev));
    prev = ctl.value_ratio();
  }
  EXPECT_LE(ctl.ratio_moves(),
            static_cast<std::uint64_t>(kWindows / cfg.hysteresis))
      << "more moves than one per hysteresis period";
  EXPECT_LE(max_excursion, ctl.ratio_step() + 1e-12)
      << "a single window moved the ratio more than one step";
  // And the position stayed inside the clamp throughout (spot check end).
  EXPECT_GE(ctl.value_ratio(), cfg.ratio_min);
  EXPECT_LE(ctl.value_ratio(), cfg.ratio_max);
}

TEST(SplitController, PromoteBudgetFollowsQueueWaitShare) {
  hcc::SplitController::Config cfg;
  cfg.hysteresis = 2;
  cfg.promote_budget = 64;
  cfg.promote_step = 16;
  cfg.promote_max = 128;
  hcc::SplitController ctl(cfg);

  hcc::SplitController::Sample s = value_favoring();
  s.queue_wait_share = 0.9;  // queue-bound: NMP side is the bottleneck
  for (int w = 0; w < 20; ++w) (void)ctl.observe(s);
  EXPECT_EQ(ctl.promote_budget(), cfg.promote_max)
      << "queue-bound windows did not raise the promote budget to the clamp";

  s.queue_wait_share = 0.05;  // idle queues: host levels are pure overhead
  for (int w = 0; w < 40; ++w) (void)ctl.observe(s);
  EXPECT_EQ(ctl.promote_budget(), cfg.promote_min)
      << "idle-queue windows did not lower the promote budget";

  // Inside the [queue_low, queue_high] band the knob holds (the band is
  // itself hysteresis).
  const std::uint64_t moves = ctl.promote_moves();
  s.queue_wait_share = 0.4;
  for (int w = 0; w < 20; ++w) (void)ctl.observe(s);
  EXPECT_EQ(ctl.promote_moves(), moves) << "in-band windows moved the knob";
}
