// Tests for the kScan publication protocol and the stitched range scans:
// opcode/table coverage, the partition-local continuation protocol
// (SeqSkipList::scan and HybridSkipList::apply driven directly, without the
// runtime), chunk boundaries landing exactly on partition edges, scans that
// begin at a logically-deleted node, length edge cases (0 / 1 / kScanChunk /
// kScanChunk + 1), and batched scans interleaved with point ops.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/ds/nmp_skiplist.hpp"
#include "hybrids/ds/seq_skiplist.hpp"
#include "hybrids/nmp/publication.hpp"
#include "hybrids/telemetry/counters.hpp"
#include "hybrids/telemetry/registry.hpp"

namespace hd = hybrids::ds;
namespace nmp = hybrids::nmp;
namespace tel = hybrids::telemetry;
using hybrids::Key;
using hybrids::ScanEntry;
using hybrids::Value;

namespace {

/// The oracle slice: up to `count` (key, value) pairs with key >= start,
/// ascending — what every scan implementation must return exactly.
std::vector<ScanEntry> oracle_slice(const std::map<Key, Value>& m, Key start,
                                    std::size_t count) {
  std::vector<ScanEntry> out;
  for (auto it = m.lower_bound(start); it != m.end() && out.size() < count;
       ++it) {
    out.push_back(ScanEntry{it->first, it->second});
  }
  return out;
}

/// Runs ds.scan(start, count) and compares the filled prefix to the oracle.
template <typename DS>
void expect_scan_matches(DS& ds, const std::map<Key, Value>& oracle, Key start,
                         std::size_t count, std::uint32_t tid = 0) {
  std::vector<ScanEntry> buf(count > 0 ? count : 1);
  const std::size_t n = ds.scan(start, count, buf.data(), tid);
  const std::vector<ScanEntry> want = oracle_slice(oracle, start, count);
  ASSERT_EQ(n, want.size()) << "start=" << start << " count=" << count;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(buf[i].key, want[i].key) << "start=" << start << " i=" << i;
    EXPECT_EQ(buf[i].value, want[i].value) << "start=" << start << " i=" << i;
  }
}

const std::size_t kLenEdges[] = {0, 1, 2, nmp::kScanChunk - 1, nmp::kScanChunk,
                                 nmp::kScanChunk + 1, 3 * nmp::kScanChunk + 5,
                                 1000};

}  // namespace

// ---------- opcode table coverage ----------

// Every opcode must have a printable name: op_code_name is the suffix of the
// per-op served_<op> telemetry counters, so an "unknown" here would silently
// fold a new opcode's counts into a junk metric name.
TEST(ScanProtocol, EveryOpCodeHasAName) {
  for (std::size_t i = 0; i < nmp::kOpCodeCount; ++i) {
    const char* name = nmp::op_code_name(static_cast<nmp::OpCode>(i));
    EXPECT_STRNE(name, "unknown") << "opcode " << i;
    EXPECT_GT(std::strlen(name), 0u) << "opcode " << i;
  }
  // kScan specifically is in the table (and inside kOpCodeCount, so the
  // kOpCodeCount-sized per-op arrays pick it up).
  EXPECT_STREQ(nmp::op_code_name(nmp::OpCode::kScan), "scan");
  EXPECT_LT(static_cast<std::size_t>(nmp::OpCode::kScan), nmp::kOpCodeCount);
}

// ---------- partition-local continuation protocol (no runtime) ----------

TEST(ScanProtocol, SeqSkipListChunkAndContinuation) {
  hd::SeqSkipList list(4);
  for (Key k = 0; k < 64; k += 2) {
    (void)list.insert(k, k + 1, 2, nullptr, list.head());
  }
  std::vector<ScanEntry> buf(64);
  Key next = 0;
  bool more = false;
  // Exactly kScanChunk entries available from 0: 0,2,...,30.
  std::uint32_t n = list.scan(0, nmp::kScanChunk, list.head(), buf.data(),
                              &next, &more);
  ASSERT_EQ(n, nmp::kScanChunk);
  EXPECT_EQ(buf[0].key, 0u);
  EXPECT_EQ(buf[n - 1].key, 30u);
  EXPECT_TRUE(more);
  EXPECT_EQ(next, 32u);  // first key NOT returned
  // Continue from the continuation key: the rest, then exhaustion.
  n = list.scan(next, nmp::kScanChunk, list.head(), buf.data(), &next, &more);
  ASSERT_EQ(n, nmp::kScanChunk);
  EXPECT_EQ(buf[0].key, 32u);
  EXPECT_EQ(buf[n - 1].key, 62u);
  EXPECT_FALSE(more);
  // Start past every key: empty, no continuation.
  n = list.scan(100, 8, list.head(), buf.data(), &next, &more);
  EXPECT_EQ(n, 0u);
  EXPECT_FALSE(more);
  // Zero-length request: writes nothing but still reports the continuation.
  n = list.scan(10, 0, list.head(), buf.data(), &next, &more);
  EXPECT_EQ(n, 0u);
  EXPECT_TRUE(more);
  EXPECT_EQ(next, 10u);
}

// A kScan whose begin-NMP-traversal node was logically deleted must come
// back as a retry (Listing 2 lines 7-10 applied to scans), not as a scan
// from freed/unlinked state.
TEST(ScanProtocol, ScanFromStaleBeginNodeRetries) {
  hd::SeqSkipList list(4);
  (void)list.insert(10, 100, 4, nullptr, list.head());
  (void)list.insert(20, 200, 4, nullptr, list.head());
  (void)list.insert(30, 300, 4, nullptr, list.head());
  hd::SeqSkipList::Node* begin = list.read(10, list.head());
  ASSERT_NE(begin, nullptr);
  ASSERT_TRUE(list.remove(10, list.head()));
  ASSERT_TRUE(hd::SeqSkipList::is_stale(begin));

  tel::Counter stale;
  tel::Counter from_head;
  ScanEntry buf[8] = {};
  nmp::Request req;
  req.op = nmp::OpCode::kScan;
  req.key = 12;
  req.value = 8;
  req.node = begin;  // stale shortcut from the host's (outdated) view
  req.host_node = buf;
  nmp::Response resp;
  hd::HybridSkipList::apply(list, 4, 0, stale, from_head, req, resp);
  EXPECT_TRUE(resp.retry);
  EXPECT_EQ(stale.value(), 1u);
  EXPECT_EQ(from_head.value(), 0u);

  // The host's retry drops the shortcut: same request from the partition
  // head succeeds and returns the surviving keys.
  req.node = nullptr;
  resp = nmp::Response{};
  hd::HybridSkipList::apply(list, 4, 0, stale, from_head, req, resp);
  EXPECT_FALSE(resp.retry);
  EXPECT_TRUE(resp.ok);
  EXPECT_EQ(from_head.value(), 1u);
  ASSERT_EQ(resp.value, 2u);
  EXPECT_EQ(buf[0].key, 20u);
  EXPECT_EQ(buf[1].key, 30u);
  EXPECT_FALSE(resp.has_more);
}

// The combiner clamps oversized chunk requests to kScanChunk instead of
// overrunning the host's buffer.
TEST(ScanProtocol, CombinerClampsChunkToScanChunk) {
  hd::SeqSkipList list(4);
  for (Key k = 0; k < 2 * nmp::kScanChunk; ++k) {
    (void)list.insert(k, k, 2, nullptr, list.head());
  }
  tel::Counter stale;
  tel::Counter from_head;
  ScanEntry buf[nmp::kScanChunk + 1] = {};
  buf[nmp::kScanChunk].key = ~Key{0};  // canary past the legal chunk
  nmp::Request req;
  req.op = nmp::OpCode::kScan;
  req.key = 0;
  req.value = 10 * nmp::kScanChunk;  // way beyond the per-chunk cap
  req.host_node = buf;
  nmp::Response resp;
  hd::HybridSkipList::apply(list, 4, 0, stale, from_head, req, resp);
  EXPECT_TRUE(resp.ok);
  EXPECT_EQ(resp.value, nmp::kScanChunk);
  EXPECT_TRUE(resp.has_more);
  EXPECT_EQ(resp.aux, static_cast<std::uint64_t>(nmp::kScanChunk));
  EXPECT_EQ(buf[nmp::kScanChunk].key, ~Key{0});  // canary intact
}

// ---------- NMP skiplist: stitched scans over the real runtime ----------

TEST(NmpSkipListScan, LengthEdgesMatchOracle) {
  hd::NmpSkipList::Config cfg;
  cfg.total_height = 8;
  cfg.partitions = 4;
  cfg.partition_width = 64;
  cfg.max_threads = 2;
  hd::NmpSkipList list(cfg);
  std::map<Key, Value> oracle;
  for (Key k = 0; k < 256; k += 2) {
    ASSERT_TRUE(list.insert(k, k * 3, 0));
    oracle[k] = k * 3;
  }
  for (Key start : {Key{0}, Key{1}, Key{5}, Key{62}, Key{63}, Key{64},
                    Key{127}, Key{128}, Key{200}, Key{254}, Key{255}}) {
    for (std::size_t count : kLenEdges) {
      expect_scan_matches(list, oracle, start, count);
    }
  }
}

// A chunk that fills exactly at the last key of a partition must hand off
// cleanly: no duplicated edge key, no skipped first key of the next
// partition, and has_more must not claim a continuation in the drained
// partition.
TEST(NmpSkipListScan, ChunkBoundaryExactlyAtPartitionEdge) {
  hd::NmpSkipList::Config cfg;
  cfg.total_height = 8;
  cfg.partitions = 4;
  cfg.partition_width = 64;
  cfg.max_threads = 1;
  hd::NmpSkipList list(cfg);
  std::map<Key, Value> oracle;
  // Dense keys straddling the p0/p1 edge at 64: 48..63 is exactly one
  // kScanChunk-sized chunk ending on the partition's last key.
  for (Key k = 48; k < 80; ++k) {
    ASSERT_TRUE(list.insert(k, k, 0));
    oracle[k] = k;
  }
  static_assert(nmp::kScanChunk == 16, "edge geometry assumes 16-entry chunks");
  expect_scan_matches(list, oracle, 48, 16);  // stops exactly on key 63
  expect_scan_matches(list, oracle, 48, 17);  // one entry into p1
  expect_scan_matches(list, oracle, 48, 32);  // spans the edge entirely
  expect_scan_matches(list, oracle, 60, 8);   // crosses the edge mid-chunk
  expect_scan_matches(list, oracle, 63, 2);   // begins on the edge key
  expect_scan_matches(list, oracle, 64, 4);   // begins on p1's first key
}

// Batched combiner passes (key-sorted apply with a traversal finger) must
// leave each slot's completion intact: point ops posted asynchronously around
// a blocking scan all return their own results, and the scan sees a
// consistent ascending slice.
TEST(NmpSkipListScan, BatchedScansInterleavedWithPointOps) {
  hd::NmpSkipList::Config cfg;
  cfg.total_height = 8;
  cfg.partitions = 2;
  cfg.partition_width = 128;
  cfg.max_threads = 2;
  cfg.batching = true;
  hd::NmpSkipList list(cfg);
  std::map<Key, Value> oracle;
  for (Key k = 0; k < 256; k += 2) {
    ASSERT_TRUE(list.insert(k, k, 0));
    oracle[k] = k;
  }
  // Rounds of: post async point ops (inserts of fresh odd keys + reads),
  // run a blocking scan while they are in flight, then retrieve. The async
  // ops and the scan share a combiner pass whenever the timing lines up, so
  // repeated rounds exercise the batched path; correctness must not depend
  // on whether a given round actually batched.
  for (Key round = 0; round < 16; ++round) {
    const Key fresh = 2 * round + 1;  // odd: not yet present
    nmp::OpHandle ins = list.insert_async(fresh, fresh * 7, 0);
    nmp::OpHandle rd = list.read_async(2 * round, 0);
    std::vector<ScanEntry> buf(40);
    const std::size_t n = list.scan(round * 8, buf.size(), buf.data(), 0);
    nmp::Response ri = list.retrieve(ins);
    nmp::Response rr = list.retrieve(rd);
    EXPECT_TRUE(ri.ok) << "fresh insert of " << fresh;
    EXPECT_TRUE(rr.ok);
    EXPECT_EQ(rr.value, 2 * round);
    oracle[fresh] = fresh * 7;
    // The scan ran concurrently with the two async ops, so its result is
    // some consistent slice: strictly ascending, in-range, and every entry
    // matches a value the key held at some point (all values here are
    // written once, so any returned pair must match the oracle exactly).
    ASSERT_LE(n, buf.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0) { EXPECT_LT(buf[i - 1].key, buf[i].key); }
      EXPECT_GE(buf[i].key, round * 8);
      auto it = oracle.find(buf[i].key);
      ASSERT_NE(it, oracle.end()) << "scan returned unknown key " << buf[i].key;
      EXPECT_EQ(buf[i].value, it->second);
    }
  }
  // Quiescent: the stitched scan must now reproduce the oracle exactly.
  for (std::size_t count : kLenEdges) {
    expect_scan_matches(list, oracle, 0, count);
  }
}

// ---------- hybrid structures: oracle slices + telemetry ----------

TEST(HybridSkipListScan, OracleSlicesAndPartitionHops) {
  hd::HybridSkipList::Config cfg;
  cfg.total_height = 8;
  cfg.nmp_height = 4;
  cfg.partitions = 4;
  cfg.partition_width = 64;
  cfg.max_threads = 2;
  hd::HybridSkipList list(cfg);
  std::map<Key, Value> oracle;
  for (Key k = 0; k < 256; k += 2) {
    ASSERT_TRUE(list.insert(k, k + 1, 0));
    oracle[k] = k + 1;
  }
  // Mutate so scans run against post-churn structure: drop a band spanning
  // the p1/p2 edge, add odd keys around it.
  for (Key k = 120; k < 140; k += 2) {
    ASSERT_TRUE(list.remove(k, 0));
    oracle.erase(k);
  }
  for (Key k = 121; k < 139; k += 4) {
    ASSERT_TRUE(list.insert(k, k, 0));
    oracle[k] = k;
  }
  const std::uint64_t hops_before =
      tel::counter(tel::names::kScanPartitionHops).value();
  for (Key start : {Key{0}, Key{63}, Key{64}, Key{119}, Key{128}, Key{139},
                    Key{250}, Key{255}}) {
    for (std::size_t count : kLenEdges) {
      expect_scan_matches(list, oracle, start, count);
    }
  }
  // The full-range scans above crossed all 4 partitions repeatedly.
  EXPECT_GT(tel::counter(tel::names::kScanPartitionHops).value(), hops_before);
}

TEST(HybridBTreeScan, OracleSlicesAfterChurn) {
  std::vector<Key> keys;
  std::vector<Value> vals;
  std::map<Key, Value> oracle;
  for (Key k = 0; k < 2048; k += 2) {
    keys.push_back(k);
    vals.push_back(k * 5);
    oracle[k] = k * 5;
  }
  hd::HybridBTree::Config cfg;
  cfg.nmp_levels = 2;
  cfg.partitions = 4;
  cfg.max_threads = 2;
  hd::HybridBTree tree(cfg, keys, vals);
  for (Key start : {Key{0}, Key{1}, Key{500}, Key{1023}, Key{1024}, Key{2046},
                    Key{2047}, Key{4000}}) {
    for (std::size_t count : kLenEdges) {
      expect_scan_matches(tree, oracle, start, count);
    }
  }
  // Churn: inserts force leaf splits (and possibly seqnum retries for later
  // scans), removes punch holes scans must skip.
  for (Key k = 1; k < 400; k += 2) {
    ASSERT_TRUE(tree.insert(k, k, 0));
    oracle[k] = k;
  }
  for (Key k = 600; k < 700; k += 2) {
    ASSERT_TRUE(tree.remove(k, 0));
    oracle.erase(k);
  }
  for (Key start : {Key{0}, Key{399}, Key{599}, Key{601}, Key{699}, Key{700}}) {
    for (std::size_t count : kLenEdges) {
      expect_scan_matches(tree, oracle, start, count);
    }
  }
}

// Concurrent writers churn the key space while scanners stitch ranges; every
// scan must return a strictly ascending in-range slice whose (key, value)
// pairs were legal at some point, and must terminate (the retry budget bounds
// stale-begin loops).
TEST(HybridSkipListScan, ScansUnderConcurrentChurn) {
  hd::HybridSkipList::Config cfg;
  cfg.total_height = 8;
  cfg.nmp_height = 4;
  cfg.partitions = 4;
  cfg.partition_width = 64;
  cfg.max_threads = 3;
  hd::HybridSkipList list(cfg);
  for (Key k = 0; k < 256; k += 2) {
    ASSERT_TRUE(list.insert(k, k, 0));
  }
  std::thread writer([&list] {
    // Odd keys flap in and out; even keys (value == key) stay put.
    for (int round = 0; round < 40; ++round) {
      for (Key k = 1; k < 256; k += 8) {
        (void)list.insert(k, k, 1);
      }
      for (Key k = 1; k < 256; k += 8) {
        (void)list.remove(k, 1);
      }
    }
  });
  std::vector<ScanEntry> buf(64);
  for (int round = 0; round < 60; ++round) {
    const Key start = static_cast<Key>((round * 37) % 256);
    const std::size_t n = list.scan(start, buf.size(), buf.data(), 2);
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0) { EXPECT_LT(buf[i - 1].key, buf[i].key); }
      EXPECT_GE(buf[i].key, start);
      EXPECT_EQ(buf[i].value, buf[i].key);  // every live key's value
    }
  }
  writer.join();
}
