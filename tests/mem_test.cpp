// Memory-layer unit tests: partition arenas, the sharded host node pool,
// epoch-based reclamation, and the structures' recycle paths.
//
// Several tests assert recycling behaviour that only exists when the arena
// machinery is compiled in AND runtime-enabled; those skip themselves under
// -DHYBRIDS_NO_ARENA so the no-arena CI build still runs the rest (alignment
// and passthrough guarantees hold in every mode). The multi-thread hammer at
// the bottom is the TSan target for the pool + EBR interplay.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "hybrids/ds/lockfree_skiplist.hpp"
#include "hybrids/ds/seq_skiplist.hpp"
#include "hybrids/mem/arena.hpp"
#include "hybrids/mem/ebr.hpp"
#include "hybrids/mem/memlayer.hpp"
#include "hybrids/mem/node_pool.hpp"
#include "hybrids/types.hpp"
#include "hybrids/util/rng.hpp"

namespace {

using namespace hybrids;

bool aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % mem::kMemAlign == 0;
}

/// Restores the runtime arena toggle on scope exit so a failing test cannot
/// poison the rest of the binary.
struct ArenaToggleGuard {
  ~ArenaToggleGuard() { mem::set_arena_enabled(true); }
};

// ---------------------------------------------------------------------------
// Size classes

TEST(MemSizeClass, Mapping) {
  EXPECT_EQ(mem::size_class(1), 0u);
  EXPECT_EQ(mem::size_class(64), 0u);
  EXPECT_EQ(mem::size_class(65), 1u);
  EXPECT_EQ(mem::size_class(128), 1u);
  EXPECT_EQ(mem::size_class(1024), mem::kMemClasses - 1);
  // One past the largest class falls through to operator new.
  EXPECT_GE(mem::size_class(1025), mem::kMemClasses);
}

// ---------------------------------------------------------------------------
// PartitionArena

TEST(PartitionArena, AlignmentEveryClass) {
  mem::PartitionArena arena;
  std::vector<std::pair<void*, std::size_t>> blocks;
  for (std::size_t bytes : {1ul, 63ul, 64ul, 65ul, 192ul, 1024ul, 4096ul}) {
    void* p = arena.allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(aligned64(p)) << "bytes=" << bytes;
    blocks.emplace_back(p, bytes);
  }
  for (auto [p, bytes] : blocks) arena.deallocate(p, bytes);
}

TEST(PartitionArena, FreelistReusesSameBlock) {
  if (!mem::kArenaCompiledIn) GTEST_SKIP() << "built with HYBRIDS_NO_ARENA";
  mem::PartitionArena arena;
  void* a = arena.allocate(192);
  void* b = arena.allocate(192);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.recycled(), 0u);
  arena.deallocate(a, 192);
  // LIFO freelist: the very next same-class allocation gets `a` back.
  void* c = arena.allocate(192);
  EXPECT_EQ(c, a);
  EXPECT_EQ(arena.recycled(), 1u);
  // A different size class does not touch the 192-byte list.
  void* d = arena.allocate(64);
  EXPECT_NE(d, b);
  EXPECT_EQ(arena.recycled(), 1u);
  arena.deallocate(b, 192);
  arena.deallocate(c, 192);
  arena.deallocate(d, 64);
}

TEST(PartitionArena, OversizeFallsThroughToNew) {
  if (!mem::kArenaCompiledIn) GTEST_SKIP() << "built with HYBRIDS_NO_ARENA";
  mem::PartitionArena arena;
  const std::size_t before = arena.chunk_count();
  void* p = arena.allocate(8192);  // > kMemClasses * 64
  EXPECT_TRUE(aligned64(p));
  EXPECT_EQ(arena.chunk_count(), before);  // no chunk mapped for it
  arena.deallocate(p, 8192);
}

TEST(PartitionArena, DestructionReleasesAllChunks) {
  if (!mem::kArenaCompiledIn) GTEST_SKIP() << "built with HYBRIDS_NO_ARENA";
  const std::int64_t before =
      mem::debug::live_chunks().load(std::memory_order_relaxed);
  {
    mem::PartitionArena arena;
    // Force several chunks: each allocation is one full top class block.
    const std::size_t per_chunk = mem::kMemChunkBytes / 1024;
    for (std::size_t i = 0; i < 2 * per_chunk + 3; ++i) {
      (void)arena.allocate(1024);
    }
    EXPECT_GE(arena.chunk_count(), 3u);
    EXPECT_EQ(arena.bytes_reserved(),
              arena.chunk_count() * mem::kMemChunkBytes);
    EXPECT_GT(mem::debug::live_chunks().load(std::memory_order_relaxed),
              before);
  }
  EXPECT_EQ(mem::debug::live_chunks().load(std::memory_order_relaxed), before);
}

TEST(PartitionArena, RuntimeDisabledIsPassthrough) {
  if (!mem::kArenaCompiledIn) GTEST_SKIP() << "built with HYBRIDS_NO_ARENA";
  ArenaToggleGuard restore;
  mem::set_arena_enabled(false);
  mem::PartitionArena arena;  // captures the toggle at construction
  mem::set_arena_enabled(true);
  EXPECT_FALSE(arena.enabled());
  void* p = arena.allocate(192);
  EXPECT_TRUE(aligned64(p));
  EXPECT_EQ(arena.chunk_count(), 0u);  // nothing reserved in passthrough
  arena.deallocate(p, 192);
  EXPECT_EQ(arena.recycled(), 0u);
  void* q = arena.allocate(192);
  arena.deallocate(q, 192);
  EXPECT_EQ(arena.recycled(), 0u);  // passthrough never recycles
}

// ---------------------------------------------------------------------------
// SeqSkipList retire classes on top of the arena

TEST(SeqSkipListMem, ShortNodeRecyclesAfterRemove) {
  if (!mem::kArenaCompiledIn) GTEST_SKIP() << "built with HYBRIDS_NO_ARENA";
  ds::SeqSkipList list(6);
  // Short node: host_ptr == nullptr, so unlink() hands it straight back.
  (void)list.insert(10, 100, 1, nullptr, list.head());
  const std::uint64_t before = list.arena().recycled();
  EXPECT_TRUE(list.remove(10, list.head()));
  // Same-height reinsert pops the freed node off the class freelist.
  (void)list.insert(20, 200, 1, nullptr, list.head());
  EXPECT_EQ(list.arena().recycled(), before + 1);
  EXPECT_TRUE(list.validate());
}

TEST(SeqSkipListMem, TallNodeParksUntilDestruction) {
  if (!mem::kArenaCompiledIn) GTEST_SKIP() << "built with HYBRIDS_NO_ARENA";
  ds::SeqSkipList list(6);
  int dummy_host = 0;
  // Tall node with a host counterpart: the never-reuse rule applies.
  (void)list.insert(10, 100, 6, &dummy_host, list.head());
  const std::uint64_t before = list.arena().recycled();
  EXPECT_TRUE(list.remove(10, list.head()));
  // Reinsert at the same height: the parked node must NOT be recycled.
  (void)list.insert(20, 200, 6, &dummy_host, list.head());
  EXPECT_EQ(list.arena().recycled(), before);
  EXPECT_TRUE(list.validate());
}

TEST(SeqSkipListMem, DestructionReleasesEverything) {
  if (!mem::kArenaCompiledIn) GTEST_SKIP() << "built with HYBRIDS_NO_ARENA";
  const std::int64_t before =
      mem::debug::live_chunks().load(std::memory_order_relaxed);
  {
    ds::SeqSkipList list(6);
    int dummy_host = 0;
    for (Key k = 1; k <= 2000; ++k) {
      (void)list.insert(k, k, 1 + static_cast<int>(k % 6),
                        (k % 64 == 0) ? &dummy_host : nullptr, list.head());
    }
    for (Key k = 1; k <= 2000; k += 2) (void)list.remove(k, list.head());
    EXPECT_TRUE(list.validate());
    EXPECT_GT(mem::debug::live_chunks().load(std::memory_order_relaxed),
              before);
  }
  EXPECT_EQ(mem::debug::live_chunks().load(std::memory_order_relaxed), before);
}

// ---------------------------------------------------------------------------
// NodePool

TEST(NodePool, RecycleAndAlignment) {
  if (!mem::kArenaCompiledIn) GTEST_SKIP() << "built with HYBRIDS_NO_ARENA";
  mem::NodePool pool;
  void* a = pool.allocate(192);
  EXPECT_TRUE(aligned64(a));
  EXPECT_EQ(pool.chunk_count(), 1u);
  pool.deallocate(a, 192);
  // Single thread: home shard is stable, so the freed block comes right back.
  void* b = pool.allocate(192);
  EXPECT_EQ(b, a);
  pool.deallocate(b, 192);
  void* big = pool.allocate(4096);  // passthrough class
  EXPECT_TRUE(aligned64(big));
  EXPECT_EQ(pool.chunk_count(), 1u);
  pool.deallocate(big, 4096);
}

TEST(NodePool, DestructionReleasesChunks) {
  if (!mem::kArenaCompiledIn) GTEST_SKIP() << "built with HYBRIDS_NO_ARENA";
  const std::int64_t before =
      mem::debug::live_chunks().load(std::memory_order_relaxed);
  {
    mem::NodePool pool;
    for (int i = 0; i < 100; ++i) (void)pool.allocate(256);
    EXPECT_GT(mem::debug::live_chunks().load(std::memory_order_relaxed),
              before);
  }
  EXPECT_EQ(mem::debug::live_chunks().load(std::memory_order_relaxed), before);
}

TEST(NodePool, RuntimeDisabledIsPassthrough) {
  if (!mem::kArenaCompiledIn) GTEST_SKIP() << "built with HYBRIDS_NO_ARENA";
  ArenaToggleGuard restore;
  mem::set_arena_enabled(false);
  mem::NodePool pool;
  mem::set_arena_enabled(true);
  EXPECT_FALSE(pool.enabled());
  void* p = pool.allocate(192);
  EXPECT_TRUE(aligned64(p));
  EXPECT_EQ(pool.chunk_count(), 0u);
  pool.deallocate(p, 192);
}

// ---------------------------------------------------------------------------
// EBR

TEST(Ebr, PinBlocksSecondAdvance) {
  std::mutex m;
  std::condition_variable cv;
  int stage = 0;  // 0: start, 1: pinned, 2: release requested
  std::uint64_t pin_epoch = 0;

  std::thread pinner([&] {
    mem::EbrGuard guard;
    {
      std::lock_guard<std::mutex> lk(m);
      pin_epoch = mem::Ebr::current();
      stage = 1;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return stage == 2; });
  });

  {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return stage == 1; });
  }
  // A guard pinned at epoch e permits one advance (e -> e+1: everyone pinned
  // sits at e) but blocks the next (it would need everyone at e+1).
  mem::Ebr::try_advance();
  mem::Ebr::try_advance();
  mem::Ebr::try_advance();
  EXPECT_LE(mem::Ebr::current(), pin_epoch + 1);
  EXPECT_FALSE(mem::Ebr::safe(pin_epoch));

  {
    std::lock_guard<std::mutex> lk(m);
    stage = 2;
  }
  cv.notify_all();
  pinner.join();

  // Guard dropped: advancement resumes and the grace period elapses.
  mem::Ebr::try_advance();
  mem::Ebr::try_advance();
  EXPECT_TRUE(mem::Ebr::safe(pin_epoch));
}

TEST(Ebr, GuardsAreReentrant) {
  mem::EbrGuard outer;
  {
    mem::EbrGuard inner;  // must not deadlock or unpin early
    mem::EbrGuard deeper;
  }
  // Still pinned here: the epoch cannot run two advances past our pin.
  const std::uint64_t pinned_at = mem::Ebr::current();
  mem::Ebr::try_advance();
  mem::Ebr::try_advance();
  EXPECT_LE(mem::Ebr::current(), pinned_at + 1);
}

// ---------------------------------------------------------------------------
// LfSkipList reclamation through the pool

TEST(LfSkipListMem, ChurnKeepsRetiredBoundedAndDrains) {
  ds::LfSkipList list(8);
  util::Xoshiro256 rng(42);
  // Churn: sustained insert/remove cycles. The periodic drain inside
  // remove() must keep the retired backlog within a few drain windows.
  for (int round = 0; round < 50; ++round) {
    for (Key k = 1; k <= 64; ++k) {
      EXPECT_TRUE(list.insert(k, k * 3, ds::random_height(rng, 8)));
    }
    for (Key k = 1; k <= 64; ++k) {
      EXPECT_TRUE(list.remove(k));
    }
    EXPECT_LE(list.retired_count(), 192u)
        << "retired towers growing with churn at round " << round;
  }
  EXPECT_EQ(list.size(), 0u);
  // Quiescent drain: each reclaim advances the epoch once, so the two-epoch
  // grace period elapses within a couple of calls.
  for (int i = 0; i < 4 && list.retired_count() > 0; ++i) {
    (void)list.reclaim_retired();
  }
  EXPECT_EQ(list.retired_count(), 0u);
  EXPECT_TRUE(list.validate());
}

TEST(LfSkipListMem, ReclaimedTowersAreRecycled) {
  if (!mem::kArenaCompiledIn) GTEST_SKIP() << "built with HYBRIDS_NO_ARENA";
  ds::LfSkipList list(8);
  // Fixed height so the freed towers land in one size class.
  for (Key k = 1; k <= 8; ++k) EXPECT_TRUE(list.insert(k, k, 4));
  for (Key k = 1; k <= 8; ++k) EXPECT_TRUE(list.remove(k));
  for (int i = 0; i < 4 && list.retired_count() > 0; ++i) {
    (void)list.reclaim_retired();
  }
  ASSERT_EQ(list.retired_count(), 0u);
  const std::size_t chunks = list.pool().chunk_count();
  // Reinserting the same towers must be served from the freed blocks: no new
  // chunk gets mapped.
  for (Key k = 1; k <= 8; ++k) EXPECT_TRUE(list.insert(k, k, 4));
  EXPECT_EQ(list.pool().chunk_count(), chunks);
  EXPECT_TRUE(list.validate());
}

// TSan target: pool allocation/reclamation raced from several threads, with
// the EBR grace period standing between a remove and the tower's reuse.
TEST(LfSkipListMem, MultiThreadChurnHammer) {
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint32_t kRounds = 300;
  constexpr Key kStripe = 128;
  ds::LfSkipList list(10);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(0xABCDEF + t);
      // Disjoint stripes so every op's expected result is deterministic.
      for (std::uint32_t round = 0; round < kRounds; ++round) {
        for (Key i = 1; i <= kStripe; ++i) {
          const Key k = i * kThreads + t;
          EXPECT_TRUE(list.insert(k, k, ds::random_height(rng, 10)));
        }
        for (Key i = 1; i <= kStripe; ++i) {
          const Key k = i * kThreads + t;
          Value out = 0;
          EXPECT_TRUE(list.get(k, out));
          EXPECT_EQ(out, k);
        }
        for (Key i = 1; i <= kStripe; ++i) {
          EXPECT_TRUE(list.remove(i * kThreads + t));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(list.size(), 0u);
  EXPECT_TRUE(list.validate());
  for (int i = 0; i < 4 && list.retired_count() > 0; ++i) {
    (void)list.reclaim_retired();
  }
  EXPECT_EQ(list.retired_count(), 0u);
}

// ---------------------------------------------------------------------------
// Prefetch hints: pure hints, must be safe on any pointer in any mode.

TEST(Prefetch, SafeOnAnyPointerAndToggleable) {
  mem::prefetch_read(nullptr);
  mem::prefetch_object(nullptr, 192);
  alignas(64) char buf[192] = {};
  mem::prefetch_read(buf);
  mem::prefetch_object(buf, sizeof(buf));
  mem::set_prefetch_enabled(false);
  mem::prefetch_read(buf);
  mem::prefetch_object(buf, sizeof(buf));
  mem::set_prefetch_enabled(true);
  if (mem::kPrefetchCompiledIn) {
    EXPECT_TRUE(mem::prefetch_enabled());
  } else {
    EXPECT_FALSE(mem::prefetch_enabled());
  }
}

}  // namespace
