// Energy accounting for simulated runs.
//
// The paper argues (§1) that reducing cache misses and data movement
// improves not only performance but also energy; the companion dissertation
// [15] evaluates energy in detail. We model energy as per-event costs over
// the memory-system counters: DRAM array accesses, off-chip link transfers
// (the dominant data-movement cost NMP avoids), cache accesses, and
// scratchpad/MMIO traffic. Default coefficients follow common
// HMC-generation estimates (~pJ/bit): DRAM ~13 pJ/bit, SerDes link
// ~6 pJ/bit, SRAM accesses well below either.
#pragma once

#include "hybrids/sim/mem/memory_system.hpp"

namespace hybrids::sim {

struct EnergyModel {
  // All values in picojoules per event (event granularity: one 128B block
  // or one publication-list word for MMIO).
  double dram_access_pj = 13.0 * 128 * 8;   // ~13 pJ/bit x 1024 bits
  double link_transfer_pj = 6.0 * 128 * 8;  // SerDes traversal, per block
  double l1_access_pj = 0.2 * 128 * 8;
  double l2_access_pj = 1.0 * 128 * 8;
  double mmio_word_pj = 6.0 * 16 * 8;       // 16B request/response words
  double scratchpad_pj = 0.1 * 16 * 8;

  /// Total energy in nanojoules for a run's memory activity.
  double total_nj(const MemStats& stats) const {
    const double dram_events = static_cast<double>(
        stats.host_dram_reads + stats.host_dram_writes + stats.nmp_dram_reads +
        stats.nmp_dram_writes);
    // Host DRAM traffic crosses the serial link both ways; NMP traffic does
    // not (that asymmetry is NMP's energy advantage).
    const double link_events = static_cast<double>(
        2 * (stats.host_dram_reads + stats.host_dram_writes));
    const double l1_events = static_cast<double>(stats.l1_hits + stats.l1_misses);
    const double l2_events = static_cast<double>(stats.l2_hits + stats.l2_misses);
    const double mmio_events =
        static_cast<double>(stats.mmio_reads + stats.mmio_writes);
    const double pj = dram_events * dram_access_pj +
                      link_events * link_transfer_pj +
                      l1_events * l1_access_pj + l2_events * l2_access_pj +
                      mmio_events * (mmio_word_pj + scratchpad_pj);
    return pj / 1000.0;
  }

  /// Energy per operation in nanojoules.
  double nj_per_op(const MemStats& stats, std::uint64_t ops) const {
    return ops == 0 ? 0.0 : total_nj(stats) / static_cast<double>(ops);
  }
};

}  // namespace hybrids::sim
