// Experiment harness: runs YCSB / sensitivity workloads over the simulated
// machine for each data-structure design and reports the paper's metrics
// (operation throughput, DRAM reads per operation).
#pragma once

#include <cstdint>

#include "hybrids/sim/machine/config.hpp"
#include "hybrids/sim/mem/memory_system.hpp"
#include "hybrids/workload/workload.hpp"

namespace hybrids::sim {

enum class SkiplistKind {
  kLockFree,          // host-only lock-free baseline
  kNmp,               // prior-work NMP flat-combining baseline
  kHybridBlocking,    // §3.3 with blocking NMP calls
  kHybridNonBlocking, // §3.5 non-blocking NMP calls
};

enum class BTreeKind {
  kHostOnly,          // host-only seqlock baseline
  kHybridBlocking,    // §3.4 with blocking NMP calls
  kHybridNonBlocking, // §3.5 non-blocking NMP calls
};

const char* to_string(SkiplistKind kind);
const char* to_string(BTreeKind kind);

struct ExperimentConfig {
  MachineConfig machine{};
  workload::WorkloadSpec workload{};
  std::uint32_t threads = 8;
  std::uint64_t ops_per_thread = 4000;
  std::uint64_t warmup_per_thread = 2000;
  std::uint32_t inflight = 4;  // non-blocking window (paper: 4)
  int total_height = 0;        // skiplist levels; 0 = log2(initial keys)
  int nmp_height = 0;          // skiplist NMP levels; 0 = size to LLC (§3.3)
  int nmp_levels = 0;          // B+ tree NMP levels; 0 = size to LLC (§3.4)
  double fill = 0.5;           // B+ tree initial occupancy (sorted load)

  // Full-system interference: blocks of application data (the record the
  // operation reads/writes, stack, key-generation state) touched per
  // operation on the host, drawn uniformly from a working set of
  // `app_ws_bytes`. gem5 full-system runs charge all of this traffic — it
  // both adds DRAM reads and erodes the host caches, which is a large part
  // of why the paper's non-NMP baselines miss so often. 0 disables.
  std::uint32_t app_blocks_per_op = 4;
  std::uint64_t app_ws_bytes = 32ull << 20;

  // Adaptive promotion (§7 extension; hybrid skiplist kinds only). 0 = off.
  std::uint32_t promote_threshold = 0;
  std::uint32_t promote_budget = 0;
};

struct ExperimentResult {
  double mops = 0.0;  // simulated throughput, million ops/s
  double dram_reads_per_op = 0.0;
  double host_dram_reads_per_op = 0.0;
  double nmp_dram_reads_per_op = 0.0;
  double app_dram_reads_per_op = 0.0;  // background traffic (reported apart)
  std::uint64_t ops = 0;
  Tick duration = 0;
  MemStats mem{};
};

ExperimentResult run_skiplist_experiment(SkiplistKind kind,
                                         const ExperimentConfig& config);
ExperimentResult run_btree_experiment(BTreeKind kind,
                                      const ExperimentConfig& config);

/// Table 2: delay components of a single operation offload, measured with
/// an otherwise idle machine (one host thread, one NMP core).
struct OffloadDelays {
  Tick post = 0;         // host writes the request into the publication list
  Tick nmp_notice = 0;   // post complete -> combiner picks the request up
  Tick nmp_process = 0;  // combiner executes the (no-op) request
  Tick host_notice = 0;  // response ready -> host observes the flag
  Tick response = 0;     // host reads the response payload
  Tick total = 0;
  Tick llc_miss = 0;     // one host LLC miss, for the paper's comparison
};

OffloadDelays measure_offload_delays(const MachineConfig& machine);

}  // namespace hybrids::sim
