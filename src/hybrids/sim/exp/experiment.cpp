#include "hybrids/sim/exp/experiment.hpp"

#include <deque>
#include <memory>

#include "hybrids/ds/hybrid_btree.hpp"
#include "hybrids/ds/hybrid_skiplist.hpp"
#include "hybrids/sim/ds/sim_btree.hpp"
#include "hybrids/sim/ds/sim_skiplist.hpp"
#include "hybrids/sim/machine/system.hpp"
#include "hybrids/util/rng.hpp"

namespace hybrids::sim {

namespace {

/// Shared run bookkeeping: a start barrier (stats reset when the last actor
/// arrives) and an end latch (the last actor records the duration and asks
/// combiners to stop).
struct RunControl {
  std::uint32_t waiting;
  std::uint32_t running;
  Tick t0 = 0;
  Tick t1 = 0;
  System* sys;

  Task<void> arrive_and_wait() {
    if (--waiting == 0) {
      sys->mem().reset_stats();
      t0 = sys->engine().now();
    }
    while (waiting > 0) co_await sys->engine().delay(2 * kNanosecond);
  }

  void finish_one() {
    if (--running == 0) {
      t1 = sys->engine().now();
      sys->request_stop();
    }
  }
};

int auto_total_height(std::uint64_t n) {
  int h = 1;
  while ((1ull << h) < n) ++h;
  return h;
}

/// Per-operation application traffic (see ExperimentConfig): uniformly
/// random blocks in a dedicated address region, charged through the host
/// hierarchy like any other access.
constexpr std::uint64_t kAppRegionBase = 1ull << 44;

Task<void> touch_app(HostCtx& c, const ExperimentConfig& cfg,
                     util::Xoshiro256& rng) {
  const std::uint64_t blocks = cfg.app_ws_bytes / 128;
  for (std::uint32_t i = 0; i < cfg.app_blocks_per_op; ++i) {
    const std::uint64_t addr = kAppRegionBase + rng.next_below(blocks) * 128;
    co_await c.app_access(addr);
  }
}

std::uint32_t slot_base(std::uint32_t thread, std::uint32_t inflight) {
  return thread * (1 + inflight);
}

ExperimentResult finalize(const RunControl& control, System& sys,
                          std::uint64_t ops) {
  // Advance the trace clock past this run's last tick so the next sim run
  // (restarting at tick 0) doesn't overlap it in the exported trace.
  trace::advance_time_base(trace::time_base() +
                           static_cast<std::uint64_t>(
                               ticks_to_ns(sys.engine().now())) +
                           1000);
  ExperimentResult r;
  r.ops = ops;
  r.duration = control.t1 - control.t0;
  r.mem = sys.mem().stats();
  if (r.duration > 0) {
    r.mops = static_cast<double>(ops) / (ticks_to_seconds(r.duration) * 1e6);
  }
  if (ops > 0) {
    // Index traffic only: application-interference reads are reported
    // separately so the figures measure what the paper's figures measure.
    r.dram_reads_per_op =
        static_cast<double>(r.mem.dram_reads_total() - r.mem.app_dram_reads) /
        static_cast<double>(ops);
    r.host_dram_reads_per_op =
        static_cast<double>(r.mem.host_dram_reads - r.mem.app_dram_reads) /
        static_cast<double>(ops);
    r.nmp_dram_reads_per_op =
        static_cast<double>(r.mem.nmp_dram_reads) / static_cast<double>(ops);
    r.app_dram_reads_per_op =
        static_cast<double>(r.mem.app_dram_reads) / static_cast<double>(ops);
  }
  return r;
}

// ---------------------------------------------------------------------------
// Skiplist actors
// ---------------------------------------------------------------------------

Task<void> lockfree_skiplist_actor(System& sys, RunControl& control,
                                   SimLockFreeSkipList& ds,
                                   const ExperimentConfig& cfg,
                                   std::uint32_t thread) {
  HostCtx c{&sys, thread};
  workload::OpStream stream(cfg.workload, thread);
  util::Xoshiro256 rng(cfg.workload.seed ^ (0xABCDu + thread));
  for (std::uint64_t i = 0; i < cfg.warmup_per_thread; ++i) {
    co_await touch_app(c, cfg, rng);
    co_await ds.run_op(c, stream.next(), rng);
  }
  co_await control.arrive_and_wait();
  for (std::uint64_t i = 0; i < cfg.ops_per_thread; ++i) {
    co_await touch_app(c, cfg, rng);
    co_await ds.run_op(c, stream.next(), rng);
  }
  control.finish_one();
}

Task<void> nmp_skiplist_actor(System& sys, RunControl& control,
                              SimNmpSkipList& ds, const ExperimentConfig& cfg,
                              std::uint32_t thread) {
  HostCtx c{&sys, thread};
  workload::OpStream stream(cfg.workload, thread);
  util::Xoshiro256 rng(cfg.workload.seed ^ (0xBCDEu + thread));
  const std::uint32_t slot = slot_base(thread, cfg.inflight);
  for (std::uint64_t i = 0; i < cfg.warmup_per_thread; ++i) {
    co_await touch_app(c, cfg, rng);
    co_await ds.run_op(c, slot, stream.next(), rng);
  }
  co_await control.arrive_and_wait();
  for (std::uint64_t i = 0; i < cfg.ops_per_thread; ++i) {
    co_await touch_app(c, cfg, rng);
    co_await ds.run_op(c, slot, stream.next(), rng);
  }
  control.finish_one();
}

Task<void> hybrid_skiplist_blocking_actor(System& sys, RunControl& control,
                                          SimHybridSkipList& ds,
                                          const ExperimentConfig& cfg,
                                          std::uint32_t thread) {
  HostCtx c{&sys, thread};
  workload::OpStream stream(cfg.workload, thread);
  util::Xoshiro256 rng(cfg.workload.seed ^ (0xCDEFu + thread));
  const std::uint32_t slot = slot_base(thread, cfg.inflight);
  for (std::uint64_t i = 0; i < cfg.warmup_per_thread; ++i) {
    co_await touch_app(c, cfg, rng);
    co_await ds.run_op_blocking(c, slot, stream.next(), rng);
  }
  co_await control.arrive_and_wait();
  for (std::uint64_t i = 0; i < cfg.ops_per_thread; ++i) {
    co_await touch_app(c, cfg, rng);
    co_await ds.run_op_blocking(c, slot, stream.next(), rng);
  }
  control.finish_one();
}

/// Non-blocking actor (§3.5): keeps up to `inflight` offloads pending,
/// completing the oldest when the window fills (Figure 4b).
Task<void> hybrid_skiplist_nonblocking_actor(System& sys, RunControl& control,
                                             SimHybridSkipList& ds,
                                             const ExperimentConfig& cfg,
                                             std::uint32_t thread) {
  HostCtx c{&sys, thread};
  workload::OpStream stream(cfg.workload, thread);
  util::Xoshiro256 rng(cfg.workload.seed ^ (0xDEF0u + thread));
  const std::uint32_t base = slot_base(thread, cfg.inflight);

  struct Pending {
    SimHybridSkipList::Prepared prep;
    std::uint32_t slot;
  };
  std::deque<Pending> window;
  std::uint64_t seq = 0;

  auto complete_oldest = [&]() -> Task<void> {
    Pending p = window.front();
    window.pop_front();
    nmp::Response resp =
        co_await sim_collect(c, ds.publist(p.prep.partition), p.slot);
    if (!co_await ds.complete(c, p.prep, resp, p.slot, rng)) {
      // NMP asked for a retry: fall back to the blocking path.
      co_await ds.run_op_blocking(c, base, p.prep.op, rng);
    }
  };
  auto issue = [&](const workload::Op& op) -> Task<void> {
    co_await touch_app(c, cfg, rng);
    // Async ops trace their transport phases but no enclosing kOp span:
    // their wall-clock overlaps other issued work. A retry fallback goes
    // through run_op_blocking, which traces as a fresh op.
    const trace::OpToken tok = trace::begin_op_at(sim_trace_ns(sys));
    const std::uint64_t d0 = tok.sampled() ? sim_trace_ns(sys) : 0;
    SimHybridSkipList::Prepared prep = co_await ds.prepare(c, op, rng);
    trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                       tok.sampled() ? sim_trace_ns(sys) : 0,
                       static_cast<std::uint8_t>(prep.req.op),
                       static_cast<std::int16_t>(prep.partition), 0, c.core);
    if (!prep.offload) co_return;  // completed host-side
    prep.req.trace_id = tok.id;
    if (window.size() == cfg.inflight) co_await complete_oldest();
    const std::uint32_t slot =
        base + 1 + static_cast<std::uint32_t>(seq++ % cfg.inflight);
    co_await sim_post(c, ds.publist(prep.partition), slot, prep.req);
    window.push_back(Pending{prep, slot});
  };

  for (std::uint64_t i = 0; i < cfg.warmup_per_thread; ++i) {
    co_await issue(stream.next());
  }
  while (!window.empty()) co_await complete_oldest();
  co_await control.arrive_and_wait();
  for (std::uint64_t i = 0; i < cfg.ops_per_thread; ++i) {
    co_await issue(stream.next());
  }
  while (!window.empty()) co_await complete_oldest();
  control.finish_one();
}

// ---------------------------------------------------------------------------
// B+ tree actors
// ---------------------------------------------------------------------------

Task<void> host_btree_actor(System& sys, RunControl& control, SimHostBTree& ds,
                            const ExperimentConfig& cfg, std::uint32_t thread) {
  HostCtx c{&sys, thread};
  workload::OpStream stream(cfg.workload, thread);
  util::Xoshiro256 rng(cfg.workload.seed ^ (0xE0F1u + thread));
  for (std::uint64_t i = 0; i < cfg.warmup_per_thread; ++i) {
    co_await touch_app(c, cfg, rng);
    co_await ds.run_op(c, stream.next());
  }
  co_await control.arrive_and_wait();
  for (std::uint64_t i = 0; i < cfg.ops_per_thread; ++i) {
    co_await touch_app(c, cfg, rng);
    co_await ds.run_op(c, stream.next());
  }
  control.finish_one();
}

Task<void> hybrid_btree_blocking_actor(System& sys, RunControl& control,
                                       SimHybridBTree& ds,
                                       const ExperimentConfig& cfg,
                                       std::uint32_t thread) {
  HostCtx c{&sys, thread};
  workload::OpStream stream(cfg.workload, thread);
  util::Xoshiro256 rng(cfg.workload.seed ^ (0xF1F2u + thread));
  const std::uint32_t slot = slot_base(thread, cfg.inflight);
  for (std::uint64_t i = 0; i < cfg.warmup_per_thread; ++i) {
    co_await touch_app(c, cfg, rng);
    co_await ds.run_op_blocking(c, slot, stream.next());
  }
  co_await control.arrive_and_wait();
  for (std::uint64_t i = 0; i < cfg.ops_per_thread; ++i) {
    co_await touch_app(c, cfg, rng);
    co_await ds.run_op_blocking(c, slot, stream.next());
  }
  control.finish_one();
}

Task<void> hybrid_btree_nonblocking_actor(System& sys, RunControl& control,
                                          SimHybridBTree& ds,
                                          const ExperimentConfig& cfg,
                                          std::uint32_t thread) {
  HostCtx c{&sys, thread};
  workload::OpStream stream(cfg.workload, thread);
  util::Xoshiro256 rng(cfg.workload.seed ^ (0xF2F3u + thread));
  const std::uint32_t base = slot_base(thread, cfg.inflight);

  struct Pending {
    SimHybridBTree::Prepared prep;
    std::uint32_t slot;
  };
  std::deque<Pending> window;
  std::uint64_t seq = 0;

  auto complete_oldest = [&]() -> Task<void> {
    Pending p = window.front();
    window.pop_front();
    nmp::Response resp =
        co_await sim_collect(c, ds.publist(p.prep.partition), p.slot);
    if (!co_await ds.complete(c, p.prep, resp, p.slot)) {
      co_await ds.run_op_blocking(c, base, p.prep.op);
    }
  };
  auto issue = [&](const workload::Op& op) -> Task<void> {
    co_await touch_app(c, cfg, rng);
    // See the skiplist non-blocking actor: transport phases only, no kOp.
    const trace::OpToken tok = trace::begin_op_at(sim_trace_ns(sys));
    const std::uint64_t d0 = tok.sampled() ? sim_trace_ns(sys) : 0;
    SimHybridBTree::Prepared prep = co_await ds.prepare(c, op);
    trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                       tok.sampled() ? sim_trace_ns(sys) : 0,
                       static_cast<std::uint8_t>(prep.req.op),
                       static_cast<std::int16_t>(prep.partition), 0, c.core);
    prep.req.trace_id = tok.id;
    if (window.size() == cfg.inflight) co_await complete_oldest();
    const std::uint32_t slot =
        base + 1 + static_cast<std::uint32_t>(seq++ % cfg.inflight);
    co_await sim_post(c, ds.publist(prep.partition), slot, prep.req);
    window.push_back(Pending{prep, slot});
  };

  for (std::uint64_t i = 0; i < cfg.warmup_per_thread; ++i) {
    co_await issue(stream.next());
  }
  while (!window.empty()) co_await complete_oldest();
  co_await control.arrive_and_wait();
  for (std::uint64_t i = 0; i < cfg.ops_per_thread; ++i) {
    co_await issue(stream.next());
  }
  while (!window.empty()) co_await complete_oldest();
  control.finish_one();
}

}  // namespace

const char* to_string(SkiplistKind kind) {
  switch (kind) {
    case SkiplistKind::kLockFree: return "lock-free";
    case SkiplistKind::kNmp: return "NMP-based";
    case SkiplistKind::kHybridBlocking: return "hybrid-blocking";
    case SkiplistKind::kHybridNonBlocking: return "hybrid-nonblocking";
  }
  return "?";
}

const char* to_string(BTreeKind kind) {
  switch (kind) {
    case BTreeKind::kHostOnly: return "host-only";
    case BTreeKind::kHybridBlocking: return "hybrid-blocking";
    case BTreeKind::kHybridNonBlocking: return "hybrid-nonblocking";
  }
  return "?";
}

ExperimentResult run_skiplist_experiment(SkiplistKind kind,
                                         const ExperimentConfig& config) {
  System sys(config.machine);
  const workload::WorkloadSpec& wl = config.workload;
  workload::KeyLayout layout(wl.initial_keys, wl.partitions);
  auto keys = layout.initial_key_set();
  util::Xoshiro256 populate_rng(wl.seed ^ 0x5EEDu);

  const int total_height =
      config.total_height > 0 ? config.total_height : auto_total_height(wl.initial_keys);
  int nmp_height = config.nmp_height;
  if (nmp_height <= 0) {
    nmp_height = ds::HybridSkipList::nmp_height_for_cache(
        wl.initial_keys, config.machine.l2_bytes, config.machine.block_bytes);
  }
  if (nmp_height >= total_height) nmp_height = total_height - 1;

  RunControl control{config.threads, config.threads, 0, 0, &sys};
  const std::uint32_t slots = config.threads * (1 + config.inflight);
  const std::uint64_t total_ops =
      static_cast<std::uint64_t>(config.threads) * config.ops_per_thread;

  switch (kind) {
    case SkiplistKind::kLockFree: {
      auto ds = std::make_unique<SimLockFreeSkipList>(total_height);
      ds->populate(keys, populate_rng);
      for (std::uint32_t t = 0; t < config.threads; ++t) {
        sys.engine().spawn(lockfree_skiplist_actor(sys, control, *ds, config, t));
      }
      sys.engine().run();
      return finalize(control, sys, total_ops);
    }
    case SkiplistKind::kNmp: {
      auto ds = std::make_unique<SimNmpSkipList>(sys, total_height, wl.partitions,
                                                 layout.partition_width(), slots);
      ds->populate(keys, populate_rng);
      ds->start_combiners();
      for (std::uint32_t t = 0; t < config.threads; ++t) {
        sys.engine().spawn(nmp_skiplist_actor(sys, control, *ds, config, t));
      }
      sys.engine().run();
      return finalize(control, sys, total_ops);
    }
    case SkiplistKind::kHybridBlocking:
    case SkiplistKind::kHybridNonBlocking: {
      auto ds = std::make_unique<SimHybridSkipList>(
          sys, total_height, nmp_height, wl.partitions, layout.partition_width(),
          slots, config.promote_threshold, config.promote_budget);
      ds->populate(keys, populate_rng);
      ds->start_combiners();
      for (std::uint32_t t = 0; t < config.threads; ++t) {
        if (kind == SkiplistKind::kHybridBlocking) {
          sys.engine().spawn(
              hybrid_skiplist_blocking_actor(sys, control, *ds, config, t));
        } else {
          sys.engine().spawn(
              hybrid_skiplist_nonblocking_actor(sys, control, *ds, config, t));
        }
      }
      sys.engine().run();
      return finalize(control, sys, total_ops);
    }
  }
  return {};
}

ExperimentResult run_btree_experiment(BTreeKind kind,
                                      const ExperimentConfig& config) {
  System sys(config.machine);
  const workload::WorkloadSpec& wl = config.workload;
  workload::KeyLayout layout(wl.initial_keys, wl.partitions);
  auto keys = layout.initial_key_set();

  int nmp_levels = config.nmp_levels;
  if (nmp_levels <= 0) {
    nmp_levels = ds::HybridBTree::nmp_levels_for_cache(
        wl.initial_keys, config.machine.l2_bytes, config.fill,
        config.machine.block_bytes);
  }

  RunControl control{config.threads, config.threads, 0, 0, &sys};
  const std::uint32_t slots = config.threads * (1 + config.inflight);
  const std::uint64_t total_ops =
      static_cast<std::uint64_t>(config.threads) * config.ops_per_thread;

  switch (kind) {
    case BTreeKind::kHostOnly: {
      auto ds = std::make_unique<SimHostBTree>(config.fill);
      ds->populate(keys);
      for (std::uint32_t t = 0; t < config.threads; ++t) {
        sys.engine().spawn(host_btree_actor(sys, control, *ds, config, t));
      }
      sys.engine().run();
      return finalize(control, sys, total_ops);
    }
    case BTreeKind::kHybridBlocking:
    case BTreeKind::kHybridNonBlocking: {
      auto ds = std::make_unique<SimHybridBTree>(sys, nmp_levels, wl.partitions,
                                                 slots, config.fill);
      ds->populate(keys);
      ds->start_combiners();
      for (std::uint32_t t = 0; t < config.threads; ++t) {
        if (kind == BTreeKind::kHybridBlocking) {
          sys.engine().spawn(
              hybrid_btree_blocking_actor(sys, control, *ds, config, t));
        } else {
          sys.engine().spawn(
              hybrid_btree_nonblocking_actor(sys, control, *ds, config, t));
        }
      }
      sys.engine().run();
      return finalize(control, sys, total_ops);
    }
  }
  return {};
}

namespace {

struct OffloadProbe {
  Tick posted = 0;
  Tick picked_up = 0;
  Tick processed = 0;
  Tick flag_seen = 0;
  Tick responded = 0;
  Tick started = 0;
};

Task<void> offload_probe_host(System& sys, OffloadProbe& probe, SimPubList& pl) {
  HostCtx c{&sys, 0};
  probe.started = sys.engine().now();
  co_await c.mmio_write();
  pl.slots[0].req = nmp::Request{};
  pl.slots[0].req.op = nmp::OpCode::kNop;
  pl.slots[0].status = SimSlot::kPending;
  probe.posted = sys.engine().now();
  while (true) {
    co_await c.mmio_read();
    if (pl.slots[0].status == SimSlot::kDone) break;
    co_await c.delay(sys.config().host_poll_gap);
  }
  probe.flag_seen = sys.engine().now();
  co_await c.mmio_read();
  probe.responded = sys.engine().now();
  pl.slots[0].status = SimSlot::kEmpty;
  sys.request_stop();
}

Task<void> offload_probe_combiner(System& sys, OffloadProbe& probe,
                                  SimPubList& pl) {
  NmpCtx ctx{&sys, 0};
  while (true) {
    co_await ctx.spad();
    if (pl.slots[0].status == SimSlot::kPending) {
      probe.picked_up = sys.engine().now();
      // A no-op request: just the handler dispatch cost.
      co_await ctx.delay(sys.config().nmp_node_cpu);
      co_await ctx.spad();
      pl.slots[0].status = SimSlot::kDone;
      probe.processed = sys.engine().now();
      continue;
    }
    if (sys.stop_requested()) co_return;
    co_await ctx.delay(sys.config().nmp_idle_gap);
  }
}

}  // namespace

OffloadDelays measure_offload_delays(const MachineConfig& machine) {
  System sys(machine);
  SimPubList pl(1);
  OffloadProbe probe;
  sys.engine().spawn(offload_probe_host(sys, probe, pl));
  sys.engine().spawn(offload_probe_combiner(sys, probe, pl));
  sys.engine().run();

  OffloadDelays d;
  d.post = probe.posted - probe.started;
  d.nmp_notice = probe.picked_up - probe.posted;
  d.nmp_process = probe.processed - probe.picked_up;
  d.host_notice = probe.flag_seen - probe.processed;
  d.response = probe.responded - probe.flag_seen;
  d.total = probe.responded - probe.started;

  // One LLC miss for comparison: L1 + L2 lookup + link round trip + a
  // row-miss DRAM access.
  d.llc_miss = machine.l1_latency + machine.l2_latency + 2 * machine.link_latency +
               machine.dram.tRCD + machine.dram.tCL + machine.dram.tBURST;
  return d;
}

}  // namespace hybrids::sim
