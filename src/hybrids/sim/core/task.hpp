// Coroutine task type for the discrete-event simulator.
//
// Simulated hardware threads (host cores, NMP cores) are coroutines that
// suspend whenever simulated time must pass (a memory access, a poll
// interval). `Task<T>` supports structured nesting with symmetric transfer:
// a parent `co_await`s a child, the child resumes the parent from its final
// suspend point. The event queue only ever holds top-level resume handles.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace hybrids::sim {

template <typename T>
class [[nodiscard]] Task;

namespace detail {

template <typename T>
struct PromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { std::terminate(); }
};

}  // namespace detail

/// A lazily-started coroutine returning T. Move-only; owns the frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase<T> {
    T value{};
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task() = default;
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  ~Task() { destroy(); }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  bool valid() const { return h_ != nullptr; }
  bool done() const { return h_ == nullptr || h_.done(); }

  /// Detaches the raw handle (caller takes ownership, e.g. the scheduler).
  std::coroutine_handle<promise_type> release() { return std::exchange(h_, nullptr); }
  std::coroutine_handle<promise_type> handle() const { return h_; }

  // Awaiting a Task starts it (symmetric transfer) and yields its value.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  T await_resume() { return std::move(h_.promise().value); }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase<void> {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task() = default;
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  ~Task() { destroy(); }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  bool valid() const { return h_ != nullptr; }
  bool done() const { return h_ == nullptr || h_.done(); }
  std::coroutine_handle<promise_type> release() { return std::exchange(h_, nullptr); }
  std::coroutine_handle<promise_type> handle() const { return h_; }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  void await_resume() noexcept {}

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_;
};

}  // namespace hybrids::sim
