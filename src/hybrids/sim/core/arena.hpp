// Aligned bump arena for simulated data-structure nodes.
//
// The cache/DRAM models map nodes to sets and banks by address, so node
// placement must be reproducible: chunks are aligned to the largest
// set-mapping period (L2: 1024 sets x 128B = 128KB), making every node's
// set/bank assignment a pure function of its allocation order. This gives
// bit-identical simulations across runs and processes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace hybrids::sim {

class AlignedArena {
 public:
  static constexpr std::size_t kChunkBytes = 1 << 20;   // 1MB chunks
  static constexpr std::size_t kChunkAlign = 128 * 1024;  // L2 set period

  AlignedArena() = default;
  ~AlignedArena() {
    for (void* c : chunks_) std::free(c);
  }
  AlignedArena(const AlignedArena&) = delete;
  AlignedArena& operator=(const AlignedArena&) = delete;

  /// Allocates `bytes` with the given alignment. Objects are never freed
  /// individually; the arena releases everything at destruction (simulated
  /// structures keep removed-node memory alive anyway, mirroring the
  /// libraries' deferred reclamation).
  void* allocate(std::size_t bytes, std::size_t align) {
    offset_ = (offset_ + align - 1) & ~(align - 1);
    if (chunks_.empty() || offset_ + bytes > kChunkBytes) {
      void* chunk = std::aligned_alloc(kChunkAlign, kChunkBytes);
      if (chunk == nullptr) throw std::bad_alloc();
      chunks_.push_back(chunk);
      offset_ = 0;
    }
    void* p = static_cast<std::byte*>(chunks_.back()) + offset_;
    offset_ += bytes;
    return p;
  }

  template <typename T, typename... Args>
  T* make(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    return new (p) T(static_cast<Args&&>(args)...);
  }

  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  std::vector<void*> chunks_;
  std::size_t offset_ = kChunkBytes;
};

}  // namespace hybrids::sim
