// Discrete-event engine: a tick-ordered queue of coroutine resumptions.
//
// Single-threaded and deterministic: events at the same tick run in FIFO
// order of scheduling, so a given seed always produces the same simulation.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "hybrids/sim/core/task.hpp"
#include "hybrids/sim/core/time.hpp"

namespace hybrids::sim {

class Engine {
 public:
  Tick now() const { return now_; }

  /// Schedules `h` to resume at absolute tick `at` (clamped to now).
  void schedule(Tick at, std::coroutine_handle<> h) {
    if (at < now_) at = now_;
    queue_.push(Event{at, next_seq_++, h});
  }

  /// Awaitable: suspend the current coroutine for `d` ticks.
  struct DelayAwaiter {
    Engine& engine;
    Tick d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      engine.schedule(engine.now_ + d, h);
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(Tick d) { return DelayAwaiter{*this, d}; }

  /// Spawns a root coroutine, starting it at the current tick. The engine
  /// owns the task frame until the simulation is destroyed.
  void spawn(Task<void> task) {
    roots_.push_back(std::move(task));
    schedule(now_, roots_.back().handle());
  }

  /// Runs until the event queue drains or `max_tick` passes. Returns the
  /// final simulation time.
  Tick run(Tick max_tick = ~Tick{0}) {
    while (!queue_.empty()) {
      Event e = queue_.top();
      if (e.at > max_tick) break;
      queue_.pop();
      now_ = e.at;
      e.handle.resume();
    }
    return now_;
  }

  bool idle() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return next_seq_; }

 private:
  struct Event {
    Tick at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Event& other) const {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<Task<void>> roots_;
};

}  // namespace hybrids::sim
