// Simulation time base.
//
// The simulator tracks time in picoseconds so DRAM timings (13.75ns) and CPU
// cycles (500ps at 2GHz) are both exact integers.
#pragma once

#include <cstdint>

namespace hybrids::sim {

using Tick = std::uint64_t;

inline constexpr Tick kPicosecond = 1;
inline constexpr Tick kNanosecond = 1000;

/// Converts cycles at `ghz` to ticks.
constexpr Tick cycles_to_ticks(double cycles, double ghz = 2.0) {
  return static_cast<Tick>(cycles * 1000.0 / ghz);
}

constexpr double ticks_to_seconds(Tick t) { return static_cast<double>(t) * 1e-12; }
constexpr double ticks_to_ns(Tick t) { return static_cast<double>(t) * 1e-3; }

}  // namespace hybrids::sim
