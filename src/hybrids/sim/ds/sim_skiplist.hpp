// Simulator-side skiplists: cooperative (coroutine) versions of the three
// skiplist designs the paper evaluates, running on the simulated machine.
//
//  * SimLockFreeSkipList — host-only baseline; every node visit goes through
//    the host cache hierarchy. Optimistic traversal + validate-and-apply
//    mutations mirror the lock-free algorithm's retry behaviour (mutations
//    are applied atomically between co_await points, which is exactly the
//    atomicity a CAS provides).
//  * SimNmpSkipList — prior-work baseline [16,44]: the whole structure lives
//    in NMP vaults; hosts only post publication-list requests.
//  * SimHybridSkipList — §3.3: host-managed top levels (cache-resident) +
//    NMP-managed lower levels with begin-node shortcuts, stale-begin retry,
//    and blocking or non-blocking offload.
#pragma once

#include <cassert>
#include <memory>
#include <new>
#include <vector>

#include "hybrids/nmp/publication.hpp"
#include "hybrids/sim/core/arena.hpp"
#include "hybrids/sim/machine/system.hpp"
#include "hybrids/types.hpp"
#include "hybrids/util/rng.hpp"
#include "hybrids/workload/workload.hpp"

namespace hybrids::sim {

/// Diagnostic counters for the hybrid skiplist (reset by tests/benches).
struct SimHybridCounters {
  std::uint64_t promote_calls = 0;
  std::uint64_t stale_retries = 0;
  std::uint64_t offloads = 0;
  std::uint64_t begin_from_head = 0;  // offloads without a begin shortcut
};
inline SimHybridCounters g_hybrid_counters;

struct SimSkipNode {
  Key key;
  Value value;
  std::uint32_t hits;  // accesses observed (adaptive promotion, §7)
  std::uint16_t height;
  bool marked;
  void* xref;  // counterpart across the host/NMP boundary (hybrid only)
  SimSkipNode* next[1];  // flexible, `height` slots

  static SimSkipNode* make(AlignedArena& arena, Key key, Value value,
                           int height, void* xref) {
    // One node per 128B block, as the paper assumes (node-size accesses):
    // nodes must not share cache blocks or the baselines gain spatial
    // locality the modeled machine does not have.
    std::size_t bytes =
        sizeof(SimSkipNode) + static_cast<std::size_t>(height - 1) * sizeof(SimSkipNode*);
    bytes = (bytes + 127) & ~std::size_t{127};
    auto* n = static_cast<SimSkipNode*>(arena.allocate(bytes, 128));
    n->key = key;
    n->value = value;
    n->hits = 0;
    n->height = static_cast<std::uint16_t>(height);
    n->marked = false;
    n->xref = xref;
    for (int i = 0; i < height; ++i) n->next[i] = nullptr;
    return n;
  }
};

/// A skiplist region (one NMP partition, or the host-managed portion).
/// Structure mutations are instantaneous (applied between co_await points);
/// traversal and write costs are charged through the given context.
class SimSkipRegion {
 public:
  explicit SimSkipRegion(int max_height) : max_height_(max_height) {
    head_ = SimSkipNode::make(arena_, 0, 0, max_height, nullptr);
  }
  SimSkipRegion(const SimSkipRegion&) = delete;
  SimSkipRegion& operator=(const SimSkipRegion&) = delete;

  int max_height() const { return max_height_; }
  SimSkipNode* head() const { return head_; }
  std::size_t size() const { return size_; }

  /// Untimed population (initialization is not part of the measurement).
  bool insert_quiet(Key key, Value value, int height, void* xref = nullptr,
                    SimSkipNode** out = nullptr) {
    SimSkipNode* preds[kMaxLevels];
    SimSkipNode* succs[kMaxLevels];
    if (find_now(key, head_, preds, succs) != nullptr) return false;
    if (height > max_height_) height = max_height_;
    SimSkipNode* n = SimSkipNode::make(arena_, key, value, height, xref);
    for (int l = 0; l < height; ++l) {
      n->next[l] = succs[l];
      preds[l]->next[l] = n;
    }
    ++size_;
    if (out != nullptr) *out = n;
    return true;
  }

  /// Charged traversal: returns the node for `key` (or null), touching one
  /// block per visited node. `begin` must span all levels and be unmarked.
  template <typename Ctx>
  Task<SimSkipNode*> read(Ctx& c, SimSkipNode* begin, Key key) {
    SimSkipNode* pred = begin;
    co_await c.node(pred);
    SimSkipNode* found = nullptr;
    for (int lvl = max_height_ - 1; lvl >= 0; --lvl) {
      SimSkipNode* curr = pred->next[lvl];
      while (curr != nullptr) {
        co_await c.node(curr);
        if (curr->marked) {  // skip logically deleted
          curr = curr->next[lvl];
          continue;
        }
        if (curr->key < key) {
          pred = curr;
          curr = curr->next[lvl];
          continue;
        }
        break;
      }
      if (curr != nullptr && curr->key == key && !curr->marked) {
        found = curr;
        break;
      }
    }
    co_return found;
  }

  /// Charged traversal collecting the full window; also returns the found
  /// node. preds/succs have max_height entries.
  template <typename Ctx>
  Task<SimSkipNode*> find(Ctx& c, SimSkipNode* begin, Key key,
                          SimSkipNode** preds, SimSkipNode** succs) {
    SimSkipNode* pred = begin;
    co_await c.node(pred);
    SimSkipNode* found = nullptr;
    for (int lvl = max_height_ - 1; lvl >= 0; --lvl) {
      SimSkipNode* curr = pred->next[lvl];
      while (curr != nullptr) {
        co_await c.node(curr);
        if (curr->marked) {
          curr = curr->next[lvl];
          continue;
        }
        if (curr->key < key) {
          pred = curr;
          curr = curr->next[lvl];
          continue;
        }
        break;
      }
      preds[lvl] = pred;
      succs[lvl] = curr;
      if (found == nullptr && curr != nullptr && curr->key == key) found = curr;
    }
    co_return found;
  }

  /// Validate-and-apply insert: retries the traversal if the window went
  /// stale during the charged awaits (mirrors CAS-failure retries).
  template <typename Ctx>
  Task<SimSkipNode*> insert(Ctx& c, SimSkipNode* begin, Key key, Value value,
                            int height, void* xref, bool& existed) {
    if (height > max_height_) height = max_height_;
    SimSkipNode* preds[kMaxLevels];
    SimSkipNode* succs[kMaxLevels];
    while (true) {
      SimSkipNode* found = co_await find(c, begin, key, preds, succs);
      if (found != nullptr) {
        existed = true;
        co_return found;
      }
      if (!window_valid(key, preds, succs, height)) continue;
      SimSkipNode* n = SimSkipNode::make(arena_, key, value, height, xref);
      for (int l = 0; l < height; ++l) {
        n->next[l] = succs[l];
        preds[l]->next[l] = n;
      }
      ++size_;
      // Charge the link writes (new node + one pred per level).
      co_await c.node(n, /*write=*/true);
      for (int l = 0; l < height; ++l) co_await c.node(preds[l], /*write=*/true);
      existed = false;
      co_return n;
    }
  }

  template <typename Ctx>
  Task<bool> remove(Ctx& c, SimSkipNode* begin, Key key) {
    SimSkipNode* preds[kMaxLevels];
    SimSkipNode* succs[kMaxLevels];
    while (true) {
      SimSkipNode* found = co_await find(c, begin, key, preds, succs);
      if (found == nullptr) co_return false;
      if (!window_valid(key, preds, succs, found->height) || succs[0] != found) {
        continue;
      }
      found->marked = true;  // logical deletion first (§3.3)
      for (int l = found->height - 1; l >= 0; --l) {
        if (preds[l]->next[l] == found) preds[l]->next[l] = found->next[l];
      }
      retired_.push_back(found);
      --size_;
      co_await c.node(found, /*write=*/true);
      for (int l = 0; l < found->height; ++l) co_await c.node(preds[l], /*write=*/true);
      co_return true;
    }
  }

  /// Adaptive promotion (§7 extension): replace the short node holding
  /// `key` with a full-height node (same value, bumped version semantics are
  /// host-side in the sim). Charged like a find plus the relink writes.
  template <typename Ctx>
  Task<SimSkipNode*> promote(Ctx& c, Key key) {
    SimSkipNode* preds[kMaxLevels];
    SimSkipNode* succs[kMaxLevels];
    SimSkipNode* found = co_await find(c, head_, key, preds, succs);
    if (found == nullptr || found->height == max_height_) co_return nullptr;
    SimSkipNode* nn = SimSkipNode::make(arena_, key, found->value, max_height_,
                                        nullptr);
    nn->hits = found->hits;
    found->marked = true;
    for (int l = found->height - 1; l >= 0; --l) {
      if (preds[l]->next[l] == found) preds[l]->next[l] = found->next[l];
    }
    retired_.push_back(found);
    for (int l = 0; l < max_height_; ++l) {
      nn->next[l] = l < found->height ? found->next[l] : succs[l];
      preds[l]->next[l] = nn;
    }
    co_await c.node(nn, /*write=*/true);
    for (int l = 0; l < max_height_; ++l) co_await c.node(preds[l], /*write=*/true);
    co_return nn;
  }

  static constexpr int kMaxLevels = 32;

 private:
  SimSkipNode* find_now(Key key, SimSkipNode* begin, SimSkipNode** preds,
                        SimSkipNode** succs) const {
    SimSkipNode* pred = begin;
    SimSkipNode* found = nullptr;
    for (int lvl = max_height_ - 1; lvl >= 0; --lvl) {
      SimSkipNode* curr = pred->next[lvl];
      while (curr != nullptr && (curr->marked || curr->key < key)) {
        if (!curr->marked) pred = curr;
        curr = curr->next[lvl];
      }
      preds[lvl] = pred;
      succs[lvl] = curr;
      if (found == nullptr && curr != nullptr && curr->key == key) found = curr;
    }
    return found;
  }

  bool window_valid(Key key, SimSkipNode* const* preds, SimSkipNode* const* succs,
                    int height) const {
    for (int l = 0; l < height; ++l) {
      if (preds[l]->marked) return false;
      if (preds[l]->next[l] != succs[l]) return false;
      if (succs[l] != nullptr && succs[l]->marked) return false;
      if (preds[l] != head_ && preds[l]->key >= key) return false;
    }
    return true;
  }

  AlignedArena arena_;  // owns every node; freed with the region
  int max_height_;
  SimSkipNode* head_;
  std::size_t size_ = 0;
  std::vector<SimSkipNode*> retired_;  // logically deleted (stale-begin marks)
};

// ---------------------------------------------------------------------------
// Host-only lock-free baseline
// ---------------------------------------------------------------------------

class SimLockFreeSkipList {
 public:
  explicit SimLockFreeSkipList(int total_height) : region_(total_height) {}

  void populate(const std::vector<Key>& keys, util::Xoshiro256& rng) {
    for (Key k : keys) {
      region_.insert_quiet(k, k, random_sim_height(rng, region_.max_height()));
    }
  }

  Task<void> run_op(HostCtx& c, const workload::Op& op, util::Xoshiro256& rng) {
    switch (op.type) {
      case workload::OpType::kRead:
      case workload::OpType::kScan: {  // simulator models scans as reads
        (void)co_await region_.read(c, region_.head(), op.key);
        break;
      }
      case workload::OpType::kUpdate: {
        SimSkipNode* n = co_await region_.read(c, region_.head(), op.key);
        if (n != nullptr) {
          n->value = op.value;
          co_await c.node(n, /*write=*/true);
        }
        break;
      }
      case workload::OpType::kInsert: {
        bool existed = false;
        (void)co_await region_.insert(c, region_.head(), op.key, op.value,
                                      random_sim_height(rng, region_.max_height()),
                                      nullptr, existed);
        break;
      }
      case workload::OpType::kRemove:
        (void)co_await region_.remove(c, region_.head(), op.key);
        break;
    }
  }

  std::size_t size() const { return region_.size(); }

  static int random_sim_height(util::Xoshiro256& rng, int max_height) {
    int h = 1;
    while (h < max_height && (rng.next() & 1) != 0) ++h;
    return h;
  }

 private:
  SimSkipRegion region_;
};

// ---------------------------------------------------------------------------
// NMP-based flat-combining baseline (prior work)
// ---------------------------------------------------------------------------

class SimNmpSkipList {
 public:
  SimNmpSkipList(System& sys, int total_height, std::uint32_t partitions,
                 Key partition_width, std::uint32_t slots_per_list)
      : sys_(sys), partition_width_(partition_width) {
    for (std::uint32_t p = 0; p < partitions; ++p) {
      regions_.push_back(std::make_unique<SimSkipRegion>(total_height));
      publists_.push_back(std::make_unique<SimPubList>(
          slots_per_list, static_cast<std::int16_t>(p)));
    }
  }

  std::uint32_t partitions() const { return static_cast<std::uint32_t>(regions_.size()); }
  std::uint32_t partition_of(Key key) const {
    const auto p = static_cast<std::uint32_t>(key / partition_width_);
    return p >= partitions() ? partitions() - 1 : p;
  }
  SimPubList& publist(std::uint32_t p) { return *publists_[p]; }

  void populate(const std::vector<Key>& keys, util::Xoshiro256& rng) {
    for (Key k : keys) {
      regions_[partition_of(k)]->insert_quiet(
          k, k, SimLockFreeSkipList::random_sim_height(
                    rng, regions_[0]->max_height()));
    }
  }

  /// Spawns one combiner actor per partition.
  void start_combiners() {
    for (std::uint32_t p = 0; p < partitions(); ++p) {
      SimSkipRegion* region = regions_[p].get();
      sys_.engine().spawn(sim_combiner(
          sys_, NmpCtx{&sys_, p}, *publists_[p],
          [region](NmpCtx& ctx, SimSlot& slot) {
            return apply(*region, ctx, slot);
          }));
    }
  }

  nmp::Request make_request(const workload::Op& op, util::Xoshiro256& rng) {
    nmp::Request r;
    r.key = op.key;
    r.value = op.value;
    switch (op.type) {
      case workload::OpType::kRead: r.op = nmp::OpCode::kRead; break;
      case workload::OpType::kUpdate: r.op = nmp::OpCode::kUpdate; break;
      case workload::OpType::kInsert:
        r.op = nmp::OpCode::kInsert;
        r.aux = static_cast<std::uint64_t>(SimLockFreeSkipList::random_sim_height(
            rng, regions_[0]->max_height()));
        break;
      case workload::OpType::kRemove: r.op = nmp::OpCode::kRemove; break;
      // The simulator does not model range scans; charge a point read.
      case workload::OpType::kScan: r.op = nmp::OpCode::kRead; break;
    }
    return r;
  }

  Task<void> run_op(HostCtx& c, std::uint32_t slot, const workload::Op& op,
                    util::Xoshiro256& rng) {
    const std::uint32_t p = partition_of(op.key);
    const trace::OpToken tok = trace::begin_op_at(sim_trace_ns(sys_));
    nmp::Request r = make_request(op, rng);
    r.trace_id = tok.id;
    (void)co_await sim_call(c, *publists_[p], slot, r);
    if (tok.sampled()) {
      trace::end_op(tok, sim_trace_ns(sys_), static_cast<std::uint8_t>(r.op),
                    static_cast<std::int16_t>(p), /*offloaded=*/true, c.core);
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& r : regions_) n += r->size();
    return n;
  }

 private:
  static Task<void> apply(SimSkipRegion& region, NmpCtx& ctx, SimSlot& slot) {
    const nmp::Request req = slot.req;
    switch (req.op) {
      case nmp::OpCode::kRead: {
        SimSkipNode* n = co_await region.read(ctx, region.head(), req.key);
        slot.resp.ok = n != nullptr;
        if (n != nullptr) slot.resp.value = n->value;
        break;
      }
      case nmp::OpCode::kUpdate: {
        SimSkipNode* n = co_await region.read(ctx, region.head(), req.key);
        slot.resp.ok = n != nullptr;
        if (n != nullptr) {
          n->value = req.value;
          co_await ctx.node(n, /*write=*/true);
        }
        break;
      }
      case nmp::OpCode::kInsert: {
        bool existed = false;
        (void)co_await region.insert(ctx, region.head(), req.key, req.value,
                                     static_cast<int>(req.aux), nullptr, existed);
        slot.resp.ok = !existed;
        break;
      }
      case nmp::OpCode::kRemove:
        slot.resp.ok = co_await region.remove(ctx, region.head(), req.key);
        break;
      default:
        break;
    }
  }

  System& sys_;
  Key partition_width_;
  std::vector<std::unique_ptr<SimSkipRegion>> regions_;
  std::vector<std::unique_ptr<SimPubList>> publists_;
};

// ---------------------------------------------------------------------------
// Hybrid skiplist (§3.3)
// ---------------------------------------------------------------------------

class SimHybridSkipList {
 public:
  SimHybridSkipList(System& sys, int total_height, int nmp_height,
                    std::uint32_t partitions, Key partition_width,
                    std::uint32_t slots_per_list,
                    std::uint32_t promote_threshold = 0,
                    std::uint32_t promote_budget = 0)
      : sys_(sys),
        nmp_height_(nmp_height),
        host_(total_height - nmp_height),
        partition_width_(partition_width),
        promote_threshold_(promote_threshold),
        promote_budget_(promote_budget) {
    assert(total_height > nmp_height);
    for (std::uint32_t p = 0; p < partitions; ++p) {
      regions_.push_back(std::make_unique<SimSkipRegion>(nmp_height));
      publists_.push_back(std::make_unique<SimPubList>(
          slots_per_list, static_cast<std::int16_t>(p)));
    }
  }

  std::uint32_t partitions() const { return static_cast<std::uint32_t>(regions_.size()); }
  std::uint32_t partition_of(Key key) const {
    const auto p = static_cast<std::uint32_t>(key / partition_width_);
    return p >= partitions() ? partitions() - 1 : p;
  }

  void populate(const std::vector<Key>& keys, util::Xoshiro256& rng) {
    const int total = host_.max_height() + nmp_height_;
    for (Key k : keys) {
      const int h = SimLockFreeSkipList::random_sim_height(rng, total);
      SimSkipNode* nmp_node = nullptr;
      regions_[partition_of(k)]->insert_quiet(k, k, h, nullptr, &nmp_node);
      if (h > nmp_height_ && nmp_node != nullptr) {
        SimSkipNode* host_node = nullptr;
        host_.insert_quiet(k, k, h - nmp_height_, nmp_node, &host_node);
        nmp_node->xref = host_node;
      }
    }
  }

  void start_combiners() {
    namespace tn = telemetry::names;
    for (std::uint32_t p = 0; p < partitions(); ++p) {
      SimSkipRegion* region = regions_[p].get();
      const int nmp_height = nmp_height_;
      const std::uint32_t threshold = promote_threshold_;
      // Per-partition retry-cause counters, registered here so they appear
      // in exports even when they stay zero.
      auto* stale = &telemetry::counter(tn::kRetryStaleBeginNode,
                                        static_cast<std::int32_t>(p));
      auto* from_head = &telemetry::counter(tn::kBeginFromHead,
                                            static_cast<std::int32_t>(p));
      sys_.engine().spawn(sim_combiner(
          sys_, NmpCtx{&sys_, p}, *publists_[p],
          [region, nmp_height, threshold, stale, from_head](NmpCtx& ctx,
                                                            SimSlot& slot) {
            return apply(*region, nmp_height, threshold, *stale, *from_head,
                         ctx, slot);
          }));
    }
  }

  /// A prepared offload (host traversal done, request built) or an
  /// operation that completed host-side.
  struct Prepared {
    bool offload = false;
    std::uint32_t partition = 0;
    nmp::Request req{};
    workload::Op op{};
  };

  /// Host-side phase: traverse the host levels; serve cache-resident reads
  /// directly; otherwise build the publication-list request.
  Task<Prepared> prepare(HostCtx& c, const workload::Op& op,
                         util::Xoshiro256& rng) {
    Prepared prep;
    prep.op = op;
    SimSkipNode* preds[SimSkipRegion::kMaxLevels];
    SimSkipNode* succs[SimSkipRegion::kMaxLevels];
    SimSkipNode* found = co_await host_.find(c, host_.head(), op.key, preds, succs);
    if (op.type == workload::OpType::kRead && found != nullptr) {
      static telemetry::Counter& hits =
          telemetry::counter(telemetry::names::kHostReadHits);
      hits.inc();
      co_return prep;  // tall node: served from the host (cache) portion
    }
    if (op.type == workload::OpType::kInsert && found != nullptr) {
      co_return prep;  // duplicate detected host-side
    }
    if (op.type == workload::OpType::kRemove && found != nullptr) {
      // Host portion first: unlink the host part of the tall node.
      (void)co_await host_.remove(c, host_.head(), op.key);
    }
    prep.offload = true;
    prep.partition = partition_of(op.key);
    prep.req.key = op.key;
    prep.req.value = op.value;
    switch (op.type) {
      case workload::OpType::kRead: prep.req.op = nmp::OpCode::kRead; break;
      case workload::OpType::kUpdate: prep.req.op = nmp::OpCode::kUpdate; break;
      case workload::OpType::kInsert:
        prep.req.op = nmp::OpCode::kInsert;
        prep.req.aux = static_cast<std::uint64_t>(
            SimLockFreeSkipList::random_sim_height(
                rng, host_.max_height() + nmp_height_));
        break;
      case workload::OpType::kRemove: prep.req.op = nmp::OpCode::kRemove; break;
      // The simulator does not model range scans; charge a point read.
      case workload::OpType::kScan: prep.req.op = nmp::OpCode::kRead; break;
    }
    // Begin-NMP-traversal shortcut (Listing 1 lines 14-15).
    if (preds[0] != host_.head() && partition_of(preds[0]->key) == prep.partition &&
        !preds[0]->marked) {
      prep.req.node = preds[0]->xref;
    }
    co_return prep;
  }

  /// Host-side completion after the NMP response; returns true when done,
  /// false when the operation must be retried from the start. `slot` is the
  /// (now free) publication slot, reused for the promotion follow-up.
  Task<bool> complete(HostCtx& c, const Prepared& prep, const nmp::Response& resp,
                      std::uint32_t slot, util::Xoshiro256& rng) {
    if (resp.retry) {
      static telemetry::Counter& retries =
          telemetry::counter(telemetry::names::kHostRetryTotal);
      retries.inc();
      co_return false;
    }
    if (resp.promote_hint) co_await maybe_promote(c, slot, prep.op.key, rng);
    if (prep.req.op == nmp::OpCode::kInsert && resp.ok &&
        static_cast<int>(prep.req.aux) > nmp_height_) {
      // Link the host part of a tall insert (NMP portion first, then host).
      bool existed = false;
      SimSkipNode* host_node = co_await host_.insert(
          c, host_.head(), prep.op.key, prep.op.value,
          static_cast<int>(prep.req.aux) - nmp_height_, resp.node, existed);
      if (!existed && resp.node != nullptr) {
        static_cast<SimSkipNode*>(resp.node)->xref = host_node;
      }
    }
    if (prep.req.op == nmp::OpCode::kUpdate && resp.ok && resp.node != nullptr) {
      // Refresh the host value mirror.
      auto* host_node = static_cast<SimSkipNode*>(resp.node);
      host_node->value = prep.op.value;
      co_await c.node(host_node, /*write=*/true);
    }
    co_return true;
  }

  Task<void> run_op_blocking(HostCtx& c, std::uint32_t slot,
                             const workload::Op& op, util::Xoshiro256& rng) {
    const trace::OpToken tok = trace::begin_op_at(sim_trace_ns(sys_));
    while (true) {
      const std::uint64_t d0 = tok.sampled() ? sim_trace_ns(sys_) : 0;
      Prepared prep = co_await prepare(c, op, rng);
      const auto op8 = static_cast<std::uint8_t>(prep.req.op);
      const auto part16 = static_cast<std::int16_t>(prep.partition);
      trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                         tok.sampled() ? sim_trace_ns(sys_) : 0, op8, part16,
                         0, c.core);
      if (!prep.offload) {
        if (tok.sampled()) {
          trace::end_op(tok, sim_trace_ns(sys_), op8, part16,
                        /*offloaded=*/false, c.core);
        }
        co_return;
      }
      prep.req.trace_id = tok.id;
      nmp::Response resp =
          co_await sim_call(c, *publists_[prep.partition], slot, prep.req);
      if (co_await complete(c, prep, resp, slot, rng)) {
        if (tok.sampled()) {
          trace::end_op(tok, sim_trace_ns(sys_), op8, part16,
                        /*offloaded=*/true, c.core);
        }
        co_return;
      }
      trace::record_instant(tok.id, trace::Phase::kRetry,
                            tok.sampled() ? sim_trace_ns(sys_) : 0, op8,
                            part16, c.core);
    }
  }

  SimPubList& publist(std::uint32_t p) { return *publists_[p]; }

  /// Adaptive promotion follow-up (§7): pull the hot key into the host
  /// portion through a kPromote offload, then link a host counterpart.
  Task<void> maybe_promote(HostCtx& c, std::uint32_t slot, Key key,
                           util::Xoshiro256& rng) {
    if (promote_threshold_ == 0 || promoted_ >= promote_budget_) co_return;
    ++promoted_;
    nmp::Request r;
    r.op = nmp::OpCode::kPromote;
    r.key = key;
    const std::uint32_t part = partition_of(key);
    nmp::Response resp = co_await sim_call(c, *publists_[part], slot, r);
    if (!resp.ok) {
      --promoted_;
      co_return;
    }
    const int host_h = SimLockFreeSkipList::random_sim_height(
        rng, host_.max_height());
    bool existed = false;
    SimSkipNode* hn = co_await host_.insert(c, host_.head(), key, resp.value,
                                            host_h, resp.node, existed);
    if (!existed && resp.node != nullptr) {
      static_cast<SimSkipNode*>(resp.node)->xref = hn;
    } else if (existed) {
      --promoted_;
    }
  }

  std::uint32_t promoted() const { return promoted_; }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& r : regions_) n += r->size();
    return n;
  }
  std::size_t host_size() const { return host_.size(); }

  /// Test/diagnostic access to the regions.
  SimSkipRegion& debug_region(std::uint32_t p) { return *regions_[p]; }
  SimSkipRegion& debug_host() { return host_; }
  std::uint32_t debug_promoted() const { return promoted_; }

 private:
  static Task<void> apply(SimSkipRegion& region, int nmp_height,
                          std::uint32_t threshold,
                          telemetry::Counter& stale_retries,
                          telemetry::Counter& begin_from_head, NmpCtx& ctx,
                          SimSlot& slot) {
    const nmp::Request req = slot.req;
    SimSkipNode* begin = region.head();
    ++g_hybrid_counters.offloads;
    if (req.node != nullptr) {
      auto* candidate = static_cast<SimSkipNode*>(req.node);
      co_await ctx.node(candidate);
      if (candidate->marked) {
        ++g_hybrid_counters.stale_retries;
        stale_retries.inc();
        slot.resp.retry = true;  // stale begin node: host retries (§3.3)
        co_return;
      }
      begin = candidate;
    } else {
      ++g_hybrid_counters.begin_from_head;
      begin_from_head.inc();
    }
    auto note_access = [&](SimSkipNode* n) {
      if (threshold == 0 || n == nullptr) return;
      ++n->hits;
      if (n->hits == threshold && n->xref == nullptr) {
        slot.resp.promote_hint = true;
      }
    };
    switch (req.op) {
      case nmp::OpCode::kRead: {
        SimSkipNode* n = co_await region.read(ctx, begin, req.key);
        slot.resp.ok = n != nullptr;
        if (n != nullptr) slot.resp.value = n->value;
        note_access(n);
        break;
      }
      case nmp::OpCode::kUpdate: {
        SimSkipNode* n = co_await region.read(ctx, begin, req.key);
        slot.resp.ok = n != nullptr;
        if (n != nullptr) {
          n->value = req.value;
          co_await ctx.node(n, /*write=*/true);
          slot.resp.node = n->xref;  // host mirror to refresh
        }
        note_access(n);
        break;
      }
      case nmp::OpCode::kPromote: {
        ++g_hybrid_counters.promote_calls;
        SimSkipNode* n = co_await region.promote(ctx, req.key);
        slot.resp.ok = n != nullptr;
        if (n != nullptr) {
          slot.resp.node = n;
          slot.resp.value = n->value;
        }
        break;
      }
      case nmp::OpCode::kInsert: {
        int h = static_cast<int>(req.aux);
        if (h > nmp_height) h = nmp_height;
        bool existed = false;
        SimSkipNode* n = co_await region.insert(ctx, begin, req.key, req.value,
                                                h, req.host_node, existed);
        slot.resp.ok = !existed;
        slot.resp.node = n;
        break;
      }
      case nmp::OpCode::kRemove:
        slot.resp.ok = co_await region.remove(ctx, begin, req.key);
        break;
      default:
        break;
    }
  }

  System& sys_;
  int nmp_height_;
  SimSkipRegion host_;
  Key partition_width_;
  std::uint32_t promote_threshold_ = 0;
  std::uint32_t promote_budget_ = 0;
  std::uint32_t promoted_ = 0;
  std::vector<std::unique_ptr<SimSkipRegion>> regions_;
  std::vector<std::unique_ptr<SimPubList>> publists_;
};

}  // namespace hybrids::sim
