// Simulator-side B+ trees: the host-only seqlock baseline and the hybrid
// B+ tree (§3.4), as cooperative coroutines over the simulated machine.
//
// Mutations are applied instantaneously between co_await points (the same
// atomicity a locked critical section provides); the protocols' costs —
// traversal reads, lock/unlock and node writes, publication-list round
// trips, LOCK_PATH escalations — are charged through the contexts. Sequence
// numbers and lock flags are kept with the paper's semantics so concurrent
// actors retry exactly where the real algorithms would.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "hybrids/nmp/publication.hpp"
#include "hybrids/sim/core/arena.hpp"
#include "hybrids/sim/machine/system.hpp"
#include "hybrids/types.hpp"
#include "hybrids/workload/workload.hpp"

namespace hybrids::sim {

inline constexpr int kSimLeafSlots = 14;
inline constexpr int kSimInnerSlots = 14;
inline constexpr int kSimBTreeLevels = 24;

/// One B+ tree node (architecturally 128 bytes; Table 1 / §3.4). Used on
/// both sides of the hybrid split. Aligned so no two nodes share a cache
/// block (one node visit = one block access, as the paper counts).
struct alignas(128) SimBNode {
  std::uint32_t seq = 0;         // host side: bumped on every mutation
  std::uint32_t parent_seq = 0;  // NMP side: host parent's seqnum mirror
  std::uint16_t level = 0;
  std::uint16_t slotuse = 0;
  bool locked = false;
  std::uint8_t partition = 0;  // NMP side: owning partition
  Key keys[kSimInnerSlots] = {};
  union {
    SimBNode* children[kSimInnerSlots + 1];
    Value values[kSimLeafSlots];
  };

  SimBNode() { for (auto& c : children) c = nullptr; }
  SimBNode(const SimBNode&) = delete;
  SimBNode& operator=(const SimBNode&) = delete;

  bool is_leaf() const { return level == 0; }
  int find_child_index(Key key) const {
    int i = 0;
    while (i < slotuse && keys[i] < key) ++i;
    return i;
  }
  int find_key_index(Key key) const {
    for (int i = 0; i < slotuse; ++i) {
      if (keys[i] == key) return i;
    }
    return -1;
  }
};

/// Node arena with stable, reproducibly-mapped addresses; one per partition
/// plus one for the host portion.
class SimBNodeArena {
 public:
  SimBNode* make(int level) {
    SimBNode* n = arena_.make<SimBNode>();
    n->level = static_cast<std::uint16_t>(level);
    ++count_;
    return n;
  }
  std::size_t size() const { return count_; }

 private:
  AlignedArena arena_;
  std::size_t count_ = 0;
};

/// Shared single-threaded split chain: inserts (key,value) at the leaf of
/// `path` (path[l] = node at level l, valid for levels 0..top). Splits
/// propagate upward; if the node at `top` splits, the new sibling and
/// divider are reported. All nodes that are modified get their seq bumped.
/// Returns the number of nodes modified/created (for cost charging).
struct SplitOutcome {
  int touched = 0;
  bool top_split = false;
  SimBNode* new_top = nullptr;
  Key up_key = 0;
  bool absorbed = true;  // false if propagation passed `top`
};

inline SplitOutcome sim_btree_insert_chain(SimBNode* const* path, int top,
                                           Key key, Value value,
                                           SimBNodeArena& arena) {
  SplitOutcome out;
  SimBNode* leaf = path[0];
  Key up_key = 0;
  SimBNode* up_child = nullptr;
  {
    int pos = 0;
    while (pos < leaf->slotuse && leaf->keys[pos] < key) ++pos;
    if (leaf->slotuse < kSimLeafSlots) {
      for (int j = leaf->slotuse; j > pos; --j) {
        leaf->keys[j] = leaf->keys[j - 1];
        leaf->values[j] = leaf->values[j - 1];
      }
      leaf->keys[pos] = key;
      leaf->values[pos] = value;
      ++leaf->slotuse;
      ++leaf->seq;
      out.touched = 1;
      return out;
    }
    Key ak[kSimLeafSlots + 1];
    Value av[kSimLeafSlots + 1];
    int n = 0;
    for (int i = 0; i < leaf->slotuse; ++i) {
      if (i == pos) { ak[n] = key; av[n] = value; ++n; }
      ak[n] = leaf->keys[i];
      av[n] = leaf->values[i];
      ++n;
    }
    if (pos == leaf->slotuse) { ak[n] = key; av[n] = value; ++n; }
    const int left = n / 2;
    SimBNode* right = arena.make(0);
    right->partition = leaf->partition;
    for (int i = 0; i < left; ++i) {
      leaf->keys[i] = ak[i];
      leaf->values[i] = av[i];
    }
    leaf->slotuse = static_cast<std::uint16_t>(left);
    ++leaf->seq;
    right->seq = leaf->seq;  // footnote 3: sibling replicates the seqnum
    for (int i = left; i < n; ++i) {
      right->keys[i - left] = ak[i];
      right->values[i - left] = av[i];
    }
    right->slotuse = static_cast<std::uint16_t>(n - left);
    out.touched = 2;
    up_key = ak[left - 1];
    up_child = right;
    if (top == 0) {
      out.top_split = true;
      out.new_top = right;
      out.up_key = up_key;
      return out;
    }
  }
  int lvl = 1;
  while (true) {
    SimBNode* node = path[lvl];
    int pos = 0;
    while (pos < node->slotuse && node->keys[pos] < up_key) ++pos;
    if (node->slotuse < kSimInnerSlots) {
      for (int j = node->slotuse; j > pos; --j) {
        node->keys[j] = node->keys[j - 1];
        node->children[j + 1] = node->children[j];
      }
      node->keys[pos] = up_key;
      node->children[pos + 1] = up_child;
      ++node->slotuse;
      ++node->seq;
      ++out.touched;
      return out;
    }
    Key ak[kSimInnerSlots + 1];
    SimBNode* ac[kSimInnerSlots + 2];
    int n = 0;
    ac[0] = node->children[0];
    for (int i = 0; i < node->slotuse; ++i) {
      if (i == pos) { ak[n] = up_key; ac[n + 1] = up_child; ++n; }
      ak[n] = node->keys[i];
      ac[n + 1] = node->children[i + 1];
      ++n;
    }
    if (pos == node->slotuse) { ak[n] = up_key; ac[n + 1] = up_child; ++n; }
    const int mid = n / 2;
    SimBNode* right = arena.make(node->level);
    right->partition = node->partition;
    for (int i = 0; i < mid; ++i) {
      node->keys[i] = ak[i];
      node->children[i] = ac[i];
    }
    node->children[mid] = ac[mid];
    node->slotuse = static_cast<std::uint16_t>(mid);
    ++node->seq;
    right->seq = node->seq;  // footnote 3
    int rn = 0;
    for (int i = mid + 1; i < n; ++i) {
      right->keys[rn] = ak[i];
      right->children[rn] = ac[i];
      ++rn;
    }
    right->children[rn] = ac[n];
    right->slotuse = static_cast<std::uint16_t>(rn);
    out.touched += 2;
    up_key = ak[mid];
    up_child = right;
    if (lvl == top) {
      out.top_split = true;
      out.new_top = right;
      out.up_key = up_key;
      return out;
    }
    ++lvl;
  }
}

/// Builds a level of a tree bottom-up at the given fill; helper shared by
/// both sim B+ trees.
struct SimBuiltLevel {
  std::vector<SimBNode*> nodes;
  std::vector<Key> max_keys;
};

// ---------------------------------------------------------------------------
// Host-only seqlock B+ tree baseline
// ---------------------------------------------------------------------------

class SimHostBTree {
 public:
  explicit SimHostBTree(double fill = 0.5) : fill_(fill) {}

  void populate(const std::vector<Key>& keys) {
    int leaf_fill = static_cast<int>(kSimLeafSlots * fill_);
    if (leaf_fill < 1) leaf_fill = 1;
    int inner_fill = static_cast<int>((kSimInnerSlots + 1) * fill_);
    if (inner_fill < 2) inner_fill = 2;
    SimBuiltLevel level;
    std::size_t i = 0;
    while (i < keys.size()) {
      SimBNode* leaf = arena_.make(0);
      int n = 0;
      while (n < leaf_fill && i < keys.size()) {
        leaf->keys[n] = keys[i];
        leaf->values[n] = static_cast<Value>(keys[i] + 1);
        ++n;
        ++i;
      }
      leaf->slotuse = static_cast<std::uint16_t>(n);
      level.nodes.push_back(leaf);
      level.max_keys.push_back(leaf->keys[n - 1]);
    }
    if (level.nodes.empty()) level.nodes.push_back(arena_.make(0));
    int lvl = 1;
    while (level.nodes.size() > 1) {
      SimBuiltLevel upper;
      std::size_t j = 0;
      while (j < level.nodes.size()) {
        SimBNode* inner = arena_.make(lvl);
        int c = 0;
        while (c < inner_fill && j < level.nodes.size()) {
          inner->children[c] = level.nodes[j];
          if (c > 0) inner->keys[c - 1] = level.max_keys[j - 1];
          ++c;
          ++j;
        }
        if (j == level.nodes.size() - 1 && c <= kSimInnerSlots) {
          inner->children[c] = level.nodes[j];
          inner->keys[c - 1] = level.max_keys[j - 1];
          ++c;
          ++j;
        }
        inner->slotuse = static_cast<std::uint16_t>(c - 1);
        upper.nodes.push_back(inner);
        upper.max_keys.push_back(level.max_keys[j - 1]);
      }
      level = std::move(upper);
      ++lvl;
    }
    root_ = level.nodes.front();
  }

  int height() const { return root_->level + 1; }

  /// Charged optimistic traversal to the leaf for `key`; waits out writers
  /// (locked nodes) and restarts if an ancestor changed underneath it.
  /// `root_level_out` receives the root level observed by this traversal.
  Task<bool> traverse(HostCtx& c, Key key, SimBNode** path, std::uint32_t* seqs,
                      int& root_level_out) {
    while (true) {
      SimBNode* root = root_;
      co_await c.node(root);
      while (root->locked) co_await c.delay(c.sys->config().host_poll_gap);
      if (root != root_) continue;  // root switched while waiting
      int lvl = root->level;
      root_level_out = root->level;
      path[lvl] = root;
      seqs[lvl] = root->seq;
      SimBNode* curr = root;
      bool restart = false;
      while (lvl > 0) {
        SimBNode* child = curr->children[curr->find_child_index(key)];
        co_await c.node(child);
        while (child->locked) co_await c.delay(c.sys->config().host_poll_gap);
        if (curr->seq != seqs[lvl]) {
          // Ancestor changed: climb to the lowest unchanged one.
          while (lvl <= root->level && path[lvl]->seq != seqs[lvl]) ++lvl;
          if (lvl > root->level) { restart = true; break; }
          curr = path[lvl];
          continue;
        }
        --lvl;
        path[lvl] = child;
        seqs[lvl] = child->seq;
        curr = child;
      }
      if (!restart) co_return true;
    }
  }

  Task<void> run_op(HostCtx& c, const workload::Op& op) {
    SimBNode* path[kSimBTreeLevels];
    std::uint32_t seqs[kSimBTreeLevels];
    int root_level = 0;
    while (true) {
      (void)co_await traverse(c, op.key, path, seqs, root_level);
      SimBNode* leaf = path[0];
      switch (op.type) {
        case workload::OpType::kRead:
        case workload::OpType::kScan: {  // simulator models scans as reads
          if (leaf->seq != seqs[0]) continue;  // leaf changed: retry
          (void)leaf->find_key_index(op.key);
          co_return;
        }
        case workload::OpType::kUpdate: {
          if (leaf->locked || leaf->seq != seqs[0]) continue;
          const int i = leaf->find_key_index(op.key);
          if (i >= 0) {
            leaf->values[i] = op.value;
            ++leaf->seq;
            co_await c.node(leaf, /*write=*/true);
          }
          co_return;
        }
        case workload::OpType::kRemove: {
          if (leaf->locked || leaf->seq != seqs[0]) continue;
          const int i = leaf->find_key_index(op.key);
          if (i >= 0) {
            for (int j = i; j + 1 < leaf->slotuse; ++j) {
              leaf->keys[j] = leaf->keys[j + 1];
              leaf->values[j] = leaf->values[j + 1];
            }
            --leaf->slotuse;
            ++leaf->seq;
            co_await c.node(leaf, /*write=*/true);
          }
          co_return;
        }
        case workload::OpType::kInsert: {
          if (leaf->find_key_index(op.key) >= 0) {
            if (leaf->seq != seqs[0]) continue;
            co_return;  // duplicate
          }
          // Lock the suffix bottom-up while full (validating seqs).
          int locked_top = -1;
          bool ok = true;
          for (int lvl = 0; lvl <= root_level; ++lvl) {
            SimBNode* node = path[lvl];
            if (node->locked || node->seq != seqs[lvl]) { ok = false; break; }
            node->locked = true;
            locked_top = lvl;
            const int cap = lvl == 0 ? kSimLeafSlots : kSimInnerSlots;
            if (node->slotuse < cap) break;
          }
          if (!ok) {
            for (int lvl = 0; lvl <= locked_top; ++lvl) path[lvl]->locked = false;
            continue;
          }
          // Charge lock + write traffic, then apply the split chain.
          for (int lvl = 0; lvl <= locked_top; ++lvl) {
            co_await c.node(path[lvl], /*write=*/true);
          }
          SplitOutcome outcome = sim_btree_insert_chain(
              path, locked_top < 0 ? 0 : locked_top, op.key, op.value, arena_);
          if (outcome.top_split) {
            // Root split: grow the tree.
            grow_root(path[locked_top], outcome.up_key, outcome.new_top);
            co_await c.node(root_, /*write=*/true);
          }
          for (int lvl = 0; lvl <= locked_top; ++lvl) path[lvl]->locked = false;
          co_return;
        }
      }
    }
  }

  std::size_t count_keys() const { return count(root_); }

 private:
  void grow_root(SimBNode* old_root, Key up_key, SimBNode* right) {
    SimBNode* nr = arena_.make(old_root->level + 1);
    nr->slotuse = 1;
    nr->keys[0] = up_key;
    nr->children[0] = old_root;
    nr->children[1] = right;
    root_ = nr;
  }

  std::size_t count(const SimBNode* n) const {
    if (n->is_leaf()) return n->slotuse;
    std::size_t total = 0;
    for (int i = 0; i <= n->slotuse; ++i) total += count(n->children[i]);
    return total;
  }

  double fill_;
  SimBNodeArena arena_;
  SimBNode* root_ = nullptr;
};

// ---------------------------------------------------------------------------
// Hybrid B+ tree (§3.4)
// ---------------------------------------------------------------------------

class SimHybridBTree {
 public:
  SimHybridBTree(System& sys, int nmp_levels, std::uint32_t partitions,
                 std::uint32_t slots_per_list, double fill = 0.5)
      : sys_(sys), nmp_levels_(nmp_levels), fill_(fill) {
    for (std::uint32_t p = 0; p < partitions; ++p) {
      arenas_.push_back(std::make_unique<SimBNodeArena>());
      publists_.push_back(std::make_unique<SimPubList>(
          slots_per_list, static_cast<std::int16_t>(p)));
    }
  }

  std::uint32_t partitions() const { return static_cast<std::uint32_t>(arenas_.size()); }
  int last_host_level() const { return nmp_levels_; }

  void populate(const std::vector<Key>& keys) {
    int leaf_fill = static_cast<int>(kSimLeafSlots * fill_);
    if (leaf_fill < 1) leaf_fill = 1;
    int inner_fill = static_cast<int>((kSimInnerSlots + 1) * fill_);
    if (inner_fill < 2) inner_fill = 2;
    const int top = nmp_levels_ - 1;
    std::uint64_t cap = static_cast<std::uint64_t>(leaf_fill);
    for (int l = 0; l < top; ++l) cap *= static_cast<std::uint64_t>(inner_fill);
    const std::uint64_t n = keys.size();
    const std::uint64_t subtrees = n == 0 ? 1 : (n + cap - 1) / cap;
    const std::uint64_t per_part = (subtrees + partitions() - 1) / partitions();

    SimBuiltLevel level;
    std::uint64_t i = 0;
    for (std::uint64_t s = 0; s < subtrees; ++s) {
      const auto raw_p = static_cast<std::uint32_t>(s / (per_part ? per_part : 1));
      const std::uint32_t p = raw_p >= partitions() ? partitions() - 1 : raw_p;
      const std::uint64_t take = n - i < cap ? n - i : cap;
      SimBNode* root = build_subtree(*arenas_[p], p, top, keys, i, take,
                                     leaf_fill, inner_fill);
      level.nodes.push_back(root);
      level.max_keys.push_back(take > 0 ? keys[i + take - 1] : 0);
      i += take;
    }
    // Host levels on top.
    int lvl = nmp_levels_;
    while (level.nodes.size() > 1 || lvl == nmp_levels_) {
      SimBuiltLevel upper;
      std::size_t j = 0;
      while (j < level.nodes.size()) {
        SimBNode* inner = host_arena_.make(lvl);
        int c = 0;
        while (c < inner_fill && j < level.nodes.size()) {
          inner->children[c] = level.nodes[j];
          if (c > 0) inner->keys[c - 1] = level.max_keys[j - 1];
          ++c;
          ++j;
        }
        if (j == level.nodes.size() - 1 && c <= kSimInnerSlots) {
          inner->children[c] = level.nodes[j];
          inner->keys[c - 1] = level.max_keys[j - 1];
          ++c;
          ++j;
        }
        inner->slotuse = static_cast<std::uint16_t>(c - 1);
        upper.nodes.push_back(inner);
        upper.max_keys.push_back(level.max_keys[j - 1]);
      }
      level = std::move(upper);
      if (level.nodes.size() == 1) break;
      ++lvl;
    }
    root_ = level.nodes.front();
  }

  void start_combiners() {
    for (std::uint32_t p = 0; p < partitions(); ++p) {
      SimBNodeArena* arena = arenas_[p].get();
      const int top = nmp_levels_ - 1;
      // Per-partition retry-cause counter (parent_seqnum mismatch / lock
      // conflict), registered here so it exports even when zero.
      auto* seq_retries =
          &telemetry::counter(telemetry::names::kRetryParentSeqnum,
                              static_cast<std::int32_t>(p));
      sys_.engine().spawn(sim_combiner(
          sys_, NmpCtx{&sys_, p}, *publists_[p],
          [this, arena, top, seq_retries](NmpCtx& ctx, SimSlot& slot) {
            return apply(*arena, top, *seq_retries, ctx, slot);
          }));
    }
  }

  SimPubList& publist(std::uint32_t p) { return *publists_[p]; }

  /// Host traversal to the last host level; fills path/seqs and the begin
  /// node reference. Returns the partition id.
  Task<std::uint32_t> traverse(HostCtx& c, Key key, SimBNode** path,
                               std::uint32_t* seqs, SimBNode** begin,
                               int& root_level_out) {
    while (true) {
      SimBNode* root = root_;
      co_await c.node(root);
      while (root->locked) co_await c.delay(c.sys->config().host_poll_gap);
      if (root != root_) continue;
      int lvl = root->level;
      root_level_out = root->level;
      path[lvl] = root;
      seqs[lvl] = root->seq;
      SimBNode* curr = root;
      bool restart = false;
      while (lvl > nmp_levels_) {
        SimBNode* child = curr->children[curr->find_child_index(key)];
        co_await c.node(child);
        while (child->locked) co_await c.delay(c.sys->config().host_poll_gap);
        if (curr->seq != seqs[lvl]) {
          while (lvl <= root->level && path[lvl]->seq != seqs[lvl]) ++lvl;
          if (lvl > root->level) { restart = true; break; }
          curr = path[lvl];
          continue;
        }
        --lvl;
        path[lvl] = child;
        seqs[lvl] = child->seq;
        curr = child;
      }
      if (restart) continue;
      *begin = curr->children[curr->find_child_index(key)];
      if (curr->seq != seqs[lvl]) continue;
      co_return (*begin)->partition;
    }
  }

  struct Prepared {
    std::uint32_t partition = 0;
    nmp::Request req{};
    workload::Op op{};
    SimBNode* path[kSimBTreeLevels] = {};
    std::uint32_t seqs[kSimBTreeLevels] = {};
    int root_level = 0;
  };

  Task<Prepared> prepare(HostCtx& c, const workload::Op& op) {
    Prepared prep;
    prep.op = op;
    SimBNode* begin = nullptr;
    prep.partition =
        co_await traverse(c, op.key, prep.path, prep.seqs, &begin, prep.root_level);
    prep.req.key = op.key;
    prep.req.value = op.value;
    prep.req.node = begin;
    prep.req.aux = prep.seqs[nmp_levels_];  // offloaded parent seqnum
    switch (op.type) {
      case workload::OpType::kRead: prep.req.op = nmp::OpCode::kRead; break;
      case workload::OpType::kUpdate: prep.req.op = nmp::OpCode::kUpdate; break;
      case workload::OpType::kInsert: prep.req.op = nmp::OpCode::kInsert; break;
      case workload::OpType::kRemove: prep.req.op = nmp::OpCode::kRemove; break;
      // The simulator does not model range scans; charge a point read.
      case workload::OpType::kScan: prep.req.op = nmp::OpCode::kRead; break;
    }
    co_return prep;
  }

  /// Host-side completion; returns false if the whole operation must retry.
  Task<bool> complete(HostCtx& c, Prepared& prep, const nmp::Response& resp,
                      std::uint32_t slot) {
    namespace tn = telemetry::names;
    if (resp.retry) {
      static telemetry::Counter& retries = telemetry::counter(tn::kHostRetryTotal);
      retries.inc();
      co_return false;
    }
    if (!resp.lock_path) co_return true;
    static telemetry::Counter& lock_path = telemetry::counter(tn::kLockPathTotal);
    lock_path.inc();
    // LOCK_PATH: lock the host path bottom-up (Listing 4 lines 26-43).
    int locked_top = -1;
    bool ok = true;
    for (int lvl = nmp_levels_; lvl <= prep.root_level; ++lvl) {
      SimBNode* node = prep.path[lvl];
      if (node->locked || node->seq != prep.seqs[lvl]) { ok = false; break; }
      node->locked = true;
      locked_top = lvl;
      if (node->slotuse < kSimInnerSlots) break;
    }
    if (!ok) {
      for (int lvl = nmp_levels_; lvl <= locked_top; ++lvl) {
        prep.path[lvl]->locked = false;
      }
      nmp::Request r;
      r.op = nmp::OpCode::kUnlockPath;
      r.node = resp.node;
      r.trace_id = prep.req.trace_id;
      static telemetry::Counter& unlock = telemetry::counter(tn::kUnlockPathTotal);
      unlock.inc();
      (void)co_await sim_call(c, *publists_[prep.partition], slot, r);
      co_return false;
    }
    for (int lvl = nmp_levels_; lvl <= locked_top; ++lvl) {
      co_await c.node(prep.path[lvl], /*write=*/true);  // seqnum CAS traffic
    }
    nmp::Request rr;
    rr.op = nmp::OpCode::kResumeInsert;
    rr.node = resp.node;
    rr.trace_id = prep.req.trace_id;
    static telemetry::Counter& resume = telemetry::counter(tn::kResumeInsertTotal);
    resume.inc();
    // The seqnum the last host node will hold once we complete the link
    // (sim seqnums advance by one per mutation; the real library's seqlocks
    // advance by two, lock + unlock).
    rr.aux = prep.seqs[nmp_levels_] + 1;
    nmp::Response rresp = co_await sim_call(c, *publists_[prep.partition], slot, rr);
    auto* new_top = static_cast<SimBNode*>(rresp.node);
    const Key up_key = static_cast<Key>(rresp.value);
    // Link the new NMP top node into the locked host path.
    SimBNode* link_path[kSimBTreeLevels];
    for (int lvl = nmp_levels_; lvl <= locked_top; ++lvl) {
      link_path[lvl - nmp_levels_] = prep.path[lvl];
    }
    // Reuse the generic chain with the host arena; level offset is fine
    // because the chain only uses relative positions.
    SplitOutcome outcome;
    {
      // Temporarily treat the last-host-level node as an "inner holding
      // children": insert (up_key, new_top) as a child reference.
      outcome = sim_btree_inner_chain(link_path, locked_top - nmp_levels_,
                                      up_key, new_top, host_arena_);
    }
    for (int lvl = nmp_levels_; lvl <= locked_top; ++lvl) {
      co_await c.node(prep.path[lvl], /*write=*/true);
    }
    if (outcome.top_split) {
      grow_root(prep.path[prep.root_level], outcome.up_key, outcome.new_top);
      co_await c.node(root_, /*write=*/true);
    }
    for (int lvl = nmp_levels_; lvl <= locked_top; ++lvl) {
      prep.path[lvl]->locked = false;
    }
    co_return true;
  }

  Task<void> run_op_blocking(HostCtx& c, std::uint32_t slot,
                             const workload::Op& op) {
    const trace::OpToken tok = trace::begin_op_at(sim_trace_ns(sys_));
    while (true) {
      const std::uint64_t d0 = tok.sampled() ? sim_trace_ns(sys_) : 0;
      Prepared prep = co_await prepare(c, op);
      const auto op8 = static_cast<std::uint8_t>(prep.req.op);
      const auto part16 = static_cast<std::int16_t>(prep.partition);
      trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                         tok.sampled() ? sim_trace_ns(sys_) : 0, op8, part16,
                         0, c.core);
      prep.req.trace_id = tok.id;
      nmp::Response resp =
          co_await sim_call(c, *publists_[prep.partition], slot, prep.req);
      if (co_await complete(c, prep, resp, slot)) {
        if (tok.sampled()) {
          trace::end_op(tok, sim_trace_ns(sys_), op8, part16,
                        /*offloaded=*/true, c.core);
        }
        co_return;
      }
      trace::record_instant(tok.id, trace::Phase::kRetry,
                            tok.sampled() ? sim_trace_ns(sys_) : 0, op8,
                            part16, c.core);
    }
  }

  std::size_t count_keys() const { return count(root_); }
  int height() const { return root_->level + 1; }

 private:
  /// Inner-node-only split chain used for host-side linking of escalated
  /// inserts: inserts (up_key, child) at rel_path[0], propagating to
  /// rel_path[top]. Mirrors sim_btree_insert_chain for inner nodes.
  static SplitOutcome sim_btree_inner_chain(SimBNode* const* rel_path, int top,
                                            Key up_key, SimBNode* up_child,
                                            SimBNodeArena& arena) {
    SplitOutcome out;
    int lvl = 0;
    while (true) {
      SimBNode* node = rel_path[lvl];
      int pos = 0;
      while (pos < node->slotuse && node->keys[pos] < up_key) ++pos;
      if (node->slotuse < kSimInnerSlots) {
        for (int j = node->slotuse; j > pos; --j) {
          node->keys[j] = node->keys[j - 1];
          node->children[j + 1] = node->children[j];
        }
        node->keys[pos] = up_key;
        node->children[pos + 1] = up_child;
        ++node->slotuse;
        ++node->seq;
        ++out.touched;
        return out;
      }
      Key ak[kSimInnerSlots + 1];
      SimBNode* ac[kSimInnerSlots + 2];
      int n = 0;
      ac[0] = node->children[0];
      for (int i = 0; i < node->slotuse; ++i) {
        if (i == pos) { ak[n] = up_key; ac[n + 1] = up_child; ++n; }
        ak[n] = node->keys[i];
        ac[n + 1] = node->children[i + 1];
        ++n;
      }
      if (pos == node->slotuse) { ak[n] = up_key; ac[n + 1] = up_child; ++n; }
      const int mid = n / 2;
      SimBNode* right = arena.make(node->level);
      for (int i = 0; i < mid; ++i) {
        node->keys[i] = ak[i];
        node->children[i] = ac[i];
      }
      node->children[mid] = ac[mid];
      node->slotuse = static_cast<std::uint16_t>(mid);
      ++node->seq;
      right->seq = node->seq;  // footnote 3
      int rn = 0;
      for (int i = mid + 1; i < n; ++i) {
        right->keys[rn] = ak[i];
        right->children[rn] = ac[i];
        ++rn;
      }
      right->children[rn] = ac[n];
      right->slotuse = static_cast<std::uint16_t>(rn);
      out.touched += 2;
      up_key = ak[mid];
      up_child = right;
      if (lvl == top) {
        out.top_split = true;
        out.new_top = right;
        out.up_key = up_key;
        return out;
      }
      ++lvl;
    }
  }

  void grow_root(SimBNode* old_root, Key up_key, SimBNode* right) {
    SimBNode* nr = host_arena_.make(old_root->level + 1);
    nr->slotuse = 1;
    nr->keys[0] = up_key;
    nr->children[0] = old_root;
    nr->children[1] = right;
    root_ = nr;
  }

  SimBNode* build_subtree(SimBNodeArena& arena, std::uint32_t partition,
                          int level, const std::vector<Key>& keys,
                          std::uint64_t offset, std::uint64_t count,
                          int leaf_fill, int inner_fill) {
    SimBNode* node = arena.make(level);
    node->partition = static_cast<std::uint8_t>(partition);
    if (level == 0) {
      const int take = static_cast<int>(
          count < static_cast<std::uint64_t>(leaf_fill) ? count : leaf_fill);
      for (int k = 0; k < take; ++k) {
        node->keys[k] = keys[offset + k];
        node->values[k] = static_cast<Value>(keys[offset + k] + 1);
      }
      node->slotuse = static_cast<std::uint16_t>(take);
      return node;
    }
    std::uint64_t child_cap = static_cast<std::uint64_t>(leaf_fill);
    for (int l = 1; l < level; ++l) child_cap *= static_cast<std::uint64_t>(inner_fill);
    int c = 0;
    std::uint64_t consumed = 0;
    while (consumed < count || c == 0) {
      const std::uint64_t take =
          count - consumed < child_cap ? count - consumed : child_cap;
      SimBNode* child = build_subtree(arena, partition, level - 1, keys,
                                      offset + consumed, take, leaf_fill,
                                      inner_fill);
      node->children[c] = child;
      if (c > 0) node->keys[c - 1] = keys[offset + consumed - 1];
      consumed += take;
      ++c;
      if (c == kSimInnerSlots + 1) break;
    }
    node->slotuse = static_cast<std::uint16_t>(c - 1);
    return node;
  }

  // --- NMP-side dispatch (Listing 5) ---------------------------------------

  struct PendingInsert {
    SimBNode* path[kSimBTreeLevels] = {};
    Key key = 0;
    Value value = 0;
  };

  Task<void> apply(SimBNodeArena& arena, int top,
                   telemetry::Counter& seq_retries, NmpCtx& ctx,
                   SimSlot& slot) {
    const nmp::Request req = slot.req;
    if (req.op == nmp::OpCode::kResumeInsert) {
      auto* p = static_cast<PendingInsert*>(req.node);
      SplitOutcome out =
          sim_btree_insert_chain(p->path, top, p->key, p->value, arena);
      for (int lvl = 0; lvl <= top; ++lvl) {
        co_await ctx.node(p->path[lvl], /*write=*/true);
        p->path[lvl]->locked = false;
      }
      p->path[top]->parent_seq = static_cast<std::uint32_t>(req.aux);
      out.new_top->parent_seq = static_cast<std::uint32_t>(req.aux);
      slot.resp.ok = true;
      slot.resp.node = out.new_top;
      slot.resp.value = out.up_key;
      delete p;
      co_return;
    }
    if (req.op == nmp::OpCode::kUnlockPath) {
      auto* p = static_cast<PendingInsert*>(req.node);
      for (int lvl = 0; lvl <= top; ++lvl) p->path[lvl]->locked = false;
      slot.resp.ok = true;
      delete p;
      co_return;
    }

    auto* begin = static_cast<SimBNode*>(req.node);
    co_await ctx.node(begin);
    // Boundary synchronization (Listing 5 lines 2-8).
    const auto offloaded = static_cast<std::uint32_t>(req.aux);
    if (begin->parent_seq > offloaded) {
      seq_retries.inc();
      slot.resp.retry = true;
      co_return;
    }
    if (begin->parent_seq < offloaded) begin->parent_seq = offloaded;

    // Descend, recording the path.
    SimBNode* path[kSimBTreeLevels];
    SimBNode* curr = begin;
    path[curr->level] = curr;
    while (curr->level > 0) {
      curr = curr->children[curr->find_child_index(req.key)];
      co_await ctx.node(curr);
      path[curr->level] = curr;
    }
    SimBNode* leaf = curr;

    switch (req.op) {
      case nmp::OpCode::kRead: {
        const int i = leaf->find_key_index(req.key);
        slot.resp.ok = i >= 0;
        if (i >= 0) slot.resp.value = leaf->values[i];
        break;
      }
      case nmp::OpCode::kUpdate: {
        const int i = leaf->find_key_index(req.key);
        slot.resp.ok = i >= 0;
        if (i >= 0) {
          leaf->values[i] = req.value;
          co_await ctx.node(leaf, /*write=*/true);
        }
        break;
      }
      case nmp::OpCode::kRemove: {
        if (leaf->locked) {
          seq_retries.inc();
          slot.resp.retry = true;  // pending escalated insert owns this leaf
          break;
        }
        const int i = leaf->find_key_index(req.key);
        slot.resp.ok = i >= 0;
        if (i >= 0) {
          for (int j = i; j + 1 < leaf->slotuse; ++j) {
            leaf->keys[j] = leaf->keys[j + 1];
            leaf->values[j] = leaf->values[j + 1];
          }
          --leaf->slotuse;
          ++leaf->seq;
          co_await ctx.node(leaf, /*write=*/true);
        }
        break;
      }
      case nmp::OpCode::kInsert: {
        if (leaf->find_key_index(req.key) >= 0) {
          slot.resp.ok = false;
          break;
        }
        // Lock bottom-up while full (Listing 5 lines 13-24).
        bool locked_all = false;
        int locked_top = -1;
        bool conflict = false;
        for (int lvl = 0; lvl <= top; ++lvl) {
          SimBNode* node = path[lvl];
          if (node->locked) {
            for (int u = 0; u < lvl; ++u) path[u]->locked = false;
            conflict = true;
            break;
          }
          node->locked = true;
          locked_top = lvl;
          const int cap = lvl == 0 ? kSimLeafSlots : kSimInnerSlots;
          if (node->slotuse < cap) {
            locked_all = true;
            break;
          }
        }
        if (conflict) {
          seq_retries.inc();
          slot.resp.retry = true;
          break;
        }
        if (locked_all) {
          for (int lvl = 0; lvl <= locked_top; ++lvl) {
            co_await ctx.node(path[lvl], /*write=*/true);
          }
          (void)sim_btree_insert_chain(path, locked_top, req.key, req.value,
                                       arena);
          for (int lvl = 0; lvl <= locked_top; ++lvl) path[lvl]->locked = false;
          slot.resp.ok = true;
          break;
        }
        // Escalate: leave the path locked and ask the host to lock its side.
        auto* p = new PendingInsert();
        for (int lvl = 0; lvl <= top; ++lvl) p->path[lvl] = path[lvl];
        p->key = req.key;
        p->value = req.value;
        slot.resp.lock_path = true;
        slot.resp.node = p;
        break;
      }
      default:
        break;
    }
  }

  System& sys_;
  int nmp_levels_;
  double fill_;
  SimBNodeArena host_arena_;
  std::vector<std::unique_ptr<SimBNodeArena>> arenas_;
  std::vector<std::unique_ptr<SimPubList>> publists_;
  SimBNode* root_ = nullptr;

  std::size_t count(const SimBNode* n) const {
    if (n->is_leaf()) return n->slotuse;
    std::size_t total = 0;
    for (int i = 0; i <= n->slotuse; ++i) total += count(n->children[i]);
    return total;
  }
};

}  // namespace hybrids::sim
