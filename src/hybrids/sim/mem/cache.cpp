#include "hybrids/sim/mem/cache.hpp"

#include <cassert>

namespace hybrids::sim {

namespace {
std::size_t round_down_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p * 2 <= x) p *= 2;
  return p;
}
}  // namespace

CacheModel::CacheModel(std::size_t bytes, int assoc, std::size_t block_bytes,
                       Replacement replacement)
    : assoc_(assoc), block_bytes_(block_bytes), replacement_(replacement) {
  assert(bytes >= block_bytes * static_cast<std::size_t>(assoc));
  sets_ = round_down_pow2(bytes / block_bytes / static_cast<std::size_t>(assoc));
  ways_.assign(sets_ * static_cast<std::size_t>(assoc_), Way{});
}

CacheModel::Result CacheModel::access(std::uint64_t block, bool write) {
  Result r;
  const std::size_t base = set_of(block) * static_cast<std::size_t>(assoc_);
  ++tick_;
  // Hit path.
  for (int w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + static_cast<std::size_t>(w)];
    if (way.valid && way.block == block) {
      way.lru = tick_;
      way.dirty = way.dirty || write;
      ++hits_;
      r.hit = true;
      return r;
    }
  }
  // Miss: allocate into an invalid way, else evict per the policy.
  ++misses_;
  int victim = -1;
  std::uint64_t best = ~std::uint64_t{0};
  for (int w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + static_cast<std::size_t>(w)];
    if (!way.valid) {
      victim = w;
      break;
    }
    if (replacement_ == Replacement::kLru && way.lru < best) {
      best = way.lru;
      victim = w;
    }
  }
  if (victim < 0 || (replacement_ == Replacement::kRandom &&
                     ways_[base + static_cast<std::size_t>(victim)].valid)) {
    if (victim < 0 || replacement_ == Replacement::kRandom) {
      // xorshift64*: deterministic pseudo-random victim (A15-style L2).
      prng_ ^= prng_ >> 12;
      prng_ ^= prng_ << 25;
      prng_ ^= prng_ >> 27;
      victim = static_cast<int>((prng_ * 0x2545F4914F6CDD1Dull >> 33) %
                                static_cast<std::uint64_t>(assoc_));
    }
  }
  Way& way = ways_[base + static_cast<std::size_t>(victim)];
  if (way.valid) {
    r.evicted = way.block;
    r.evicted_valid = true;
    r.writeback = way.dirty;
  }
  way.valid = true;
  way.block = block;
  way.lru = tick_;
  way.dirty = write;
  return r;
}

bool CacheModel::invalidate(std::uint64_t block) {
  const std::size_t base = set_of(block) * static_cast<std::size_t>(assoc_);
  for (int w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + static_cast<std::size_t>(w)];
    if (way.valid && way.block == block) {
      way.valid = false;
      way.dirty = false;
      return true;
    }
  }
  return false;
}

bool CacheModel::contains(std::uint64_t block) const {
  const std::size_t base = set_of(block) * static_cast<std::size_t>(assoc_);
  for (int w = 0; w < assoc_; ++w) {
    const Way& way = ways_[base + static_cast<std::size_t>(w)];
    if (way.valid && way.block == block) return true;
  }
  return false;
}

}  // namespace hybrids::sim
