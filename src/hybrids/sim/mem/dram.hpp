// DRAM vault timing model (Table 1): per-vault banks with open-row policy
// and tRP / tRCD / tCL / tBURST timing.
#pragma once

#include <cstdint>
#include <vector>

#include "hybrids/sim/core/time.hpp"

namespace hybrids::sim {

struct DramTiming {
  Tick tRP = 13750;    // precharge (ps)
  Tick tRCD = 13750;   // activate-to-CAS
  Tick tCL = 13750;    // CAS latency
  Tick tBURST = 3200;  // 128B burst
};

/// One HMC memory vault: 8 banks, block-interleaved, open-row policy.
/// `access` advances bank state and returns the latency from `now` until the
/// data burst completes (requests to a busy bank queue behind it).
class DramVault {
 public:
  DramVault(const DramTiming& timing, int banks, std::size_t block_bytes,
            int blocks_per_row)
      : timing_(timing),
        banks_(static_cast<std::size_t>(banks)),
        block_bytes_(block_bytes),
        blocks_per_row_(static_cast<std::uint64_t>(blocks_per_row)) {}

  Tick access(std::uint64_t addr, bool write, Tick now) {
    const std::uint64_t block = addr / block_bytes_;
    Bank& bank = banks_[block % banks_.size()];
    const std::uint64_t row = block / banks_.size() / blocks_per_row_;
    const Tick start = now > bank.ready ? now : bank.ready;
    Tick lat;
    if (bank.open && bank.row == row) {
      lat = timing_.tCL + timing_.tBURST;  // row-buffer hit
      ++row_hits_;
    } else if (!bank.open) {
      lat = timing_.tRCD + timing_.tCL + timing_.tBURST;
      ++row_misses_;
    } else {
      lat = timing_.tRP + timing_.tRCD + timing_.tCL + timing_.tBURST;
      ++row_misses_;
    }
    bank.open = true;
    bank.row = row;
    bank.ready = start + lat;
    if (write) ++writes_; else ++reads_;
    return bank.ready - now;
  }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t row_hits() const { return row_hits_; }
  std::uint64_t row_misses() const { return row_misses_; }

 private:
  struct Bank {
    Tick ready = 0;
    std::uint64_t row = 0;
    bool open = false;
  };

  DramTiming timing_;
  std::vector<Bank> banks_;
  std::size_t block_bytes_;
  std::uint64_t blocks_per_row_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
};

}  // namespace hybrids::sim
