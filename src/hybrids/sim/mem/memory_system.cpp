#include "hybrids/sim/mem/memory_system.hpp"

#include <cassert>

namespace hybrids::sim {

MemorySystem::MemorySystem(const MachineConfig& config)
    : config_(config),
      l2_(config.l2_bytes, config.l2_assoc, config.block_bytes,
          config.l2_random_replacement ? CacheModel::Replacement::kRandom
                                       : CacheModel::Replacement::kLru) {
  l1_.reserve(config.host_cores);
  for (std::uint32_t c = 0; c < config.host_cores; ++c) {
    l1_.emplace_back(config.l1_bytes, config.l1_assoc, config.block_bytes);
  }
  for (std::uint32_t v = 0; v < config.main_vaults; ++v) {
    main_vaults_.emplace_back(config.dram, config.banks_per_vault,
                              config.block_bytes, config.blocks_per_row);
  }
  for (std::uint32_t v = 0; v < config.nmp_vaults; ++v) {
    nmp_vaults_.emplace_back(config.dram, config.banks_per_vault,
                             config.block_bytes, config.blocks_per_row);
  }
}

Tick MemorySystem::host_access(std::uint32_t core, std::uint64_t addr,
                               bool write, Tick now, bool app) {
  assert(core < l1_.size());
  const std::uint64_t block = block_of(addr);
  // Writes invalidate other cores' private copies (simple coherence: the
  // writer gets the block exclusive; sharers re-fetch from L2).
  if (write) {
    for (std::uint32_t c = 0; c < l1_.size(); ++c) {
      if (c != core) l1_[c].invalidate(block);
    }
  }
  CacheModel::Result r1 = l1_[core].access(block, write);
  if (r1.hit) {
    ++stats_.l1_hits;
    return config_.l1_latency;
  }
  ++stats_.l1_misses;
  Tick lat = config_.l1_latency + config_.l2_latency;
  CacheModel::Result r2 = l2_.access(block, write);
  if (r2.hit) {
    ++stats_.l2_hits;
    return lat;
  }
  ++stats_.l2_misses;
  // Off-chip: link out, vault access, link back.
  lat += config_.link_latency;
  DramVault& vault = main_vaults_[block % main_vaults_.size()];
  lat += vault.access(addr, /*write=*/false, now + lat);  // fill is a read
  lat += config_.link_latency;
  ++stats_.host_dram_reads;
  if (app) ++stats_.app_dram_reads;
  if (r2.writeback) {
    // Dirty eviction: writeback traffic is counted but performed off the
    // critical path (posted).
    DramVault& wb = main_vaults_[(r2.evicted % main_vaults_.size())];
    (void)wb.access(r2.evicted * config_.block_bytes, /*write=*/true, now + lat);
    ++stats_.host_dram_writes;
  }
  return lat;
}

Tick MemorySystem::nmp_access(std::uint32_t nmp_vault, std::uint64_t addr,
                              bool write, Tick now) {
  assert(nmp_vault < nmp_vaults_.size());
  const Tick lat =
      config_.nmp_cycle + nmp_vaults_[nmp_vault].access(addr, write, now);
  if (write) {
    ++stats_.nmp_dram_writes;
  } else {
    ++stats_.nmp_dram_reads;
  }
  return lat;
}

Tick MemorySystem::host_mmio(bool write, Tick now) {
  (void)now;
  if (write) {
    ++stats_.mmio_writes;
    // Posted write: traverse the link and deposit into the scratchpad.
    return config_.link_latency + config_.scratchpad_latency;
  }
  ++stats_.mmio_reads;
  // Uncached read: request out, scratchpad access, response back.
  return 2 * config_.link_latency + config_.scratchpad_latency;
}

Tick MemorySystem::nmp_scratchpad(Tick now) {
  (void)now;
  return config_.scratchpad_latency;
}

}  // namespace hybrids::sim
