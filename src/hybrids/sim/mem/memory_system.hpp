// Memory system: routes simulated accesses through the Table 1 hierarchy.
//
//   host core -> private L1d -> shared L2 -> serial link -> main-memory vault
//   NMP core  -> (node buffer, modeled by the core) -> its own NMP vault
//   host MMIO -> serial link -> NMP scratchpad (publication list)
//
// Each call computes the access latency, advances bank/cache state, and
// updates counters. Addresses are the host process's real pointers (stable,
// unique); vault assignment for host memory interleaves blocks across the
// main-memory vaults, while NMP accesses name their vault explicitly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hybrids/sim/core/time.hpp"
#include "hybrids/sim/machine/config.hpp"
#include "hybrids/sim/mem/cache.hpp"
#include "hybrids/sim/mem/dram.hpp"

namespace hybrids::sim {

struct MemStats {
  std::uint64_t host_dram_reads = 0;
  std::uint64_t host_dram_writes = 0;
  std::uint64_t nmp_dram_reads = 0;
  std::uint64_t nmp_dram_writes = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t mmio_reads = 0;
  std::uint64_t mmio_writes = 0;
  std::uint64_t nmp_buffer_hits = 0;
  std::uint64_t app_dram_reads = 0;  // subset of host_dram_reads from the
                                     // application-interference region

  std::uint64_t dram_reads_total() const { return host_dram_reads + nmp_dram_reads; }
};

class MemorySystem {
 public:
  explicit MemorySystem(const MachineConfig& config);

  /// Host load/store of the block containing `addr`. Returns the latency.
  /// `app` tags application-interference traffic so experiment metrics can
  /// separate index reads from background reads.
  Tick host_access(std::uint32_t core, std::uint64_t addr, bool write, Tick now,
                   bool app = false);

  /// NMP core access to its own vault (no caches, no link crossing).
  Tick nmp_access(std::uint32_t nmp_vault, std::uint64_t addr, bool write, Tick now);

  /// Host access to an NMP core's memory-mapped scratchpad (publication
  /// list): uncached, crosses the link. Reads need the round trip; writes
  /// are posted (one traversal + scratchpad write).
  Tick host_mmio(bool write, Tick now);

  /// NMP core access to its local scratchpad (single cycle).
  Tick nmp_scratchpad(Tick now);

  const MemStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MemStats{}; }

  const MachineConfig& config() const { return config_; }

 private:
  std::uint64_t block_of(std::uint64_t addr) const { return addr / config_.block_bytes; }

  MachineConfig config_;
  std::vector<CacheModel> l1_;       // per host core
  CacheModel l2_;
  std::vector<DramVault> main_vaults_;
  std::vector<DramVault> nmp_vaults_;
  MemStats stats_;
};

}  // namespace hybrids::sim
