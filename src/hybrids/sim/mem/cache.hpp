// Set-associative LRU cache model (L1 data caches and the shared L2).
#pragma once

#include <cstdint>
#include <vector>

namespace hybrids::sim {

class CacheModel {
 public:
  enum class Replacement {
    kLru,
    kRandom,  // Cortex-A15 L2 victim selection (Table 1's host CPU)
  };

  /// `bytes` capacity, `assoc` ways, `block_bytes` line size (Table 1:
  /// 128-byte blocks; L1d 64kB 2-way; L2 1MB 8-way).
  CacheModel(std::size_t bytes, int assoc, std::size_t block_bytes,
             Replacement replacement = Replacement::kLru);

  struct Result {
    bool hit = false;
    bool writeback = false;        // a dirty block was evicted
    std::uint64_t evicted = 0;     // block id of the eviction (if any)
    bool evicted_valid = false;
  };

  /// Looks up `block` (a block id, i.e. addr / block_bytes); allocates on
  /// miss (write-allocate), updates LRU, marks dirty on writes.
  Result access(std::uint64_t block, bool write);

  /// Invalidates `block` if present; returns true if it was.
  bool invalidate(std::uint64_t block);

  bool contains(std::uint64_t block) const;

  std::size_t sets() const { return sets_; }
  int assoc() const { return assoc_; }
  std::size_t block_bytes() const { return block_bytes_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  void reset_stats() { hits_ = misses_ = 0; }

 private:
  struct Way {
    std::uint64_t block = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::size_t set_of(std::uint64_t block) const { return block & (sets_ - 1); }

  std::size_t sets_;
  int assoc_;
  std::size_t block_bytes_;
  Replacement replacement_;
  std::uint64_t tick_ = 0;   // LRU clock
  std::uint64_t prng_ = 0x9E3779B97F4A7C15ull;  // deterministic victim picks
  std::vector<Way> ways_;   // sets_ * assoc_
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hybrids::sim
