// Machine configuration (Table 1 of the paper, with scaling knobs).
#pragma once

#include <cstddef>
#include <cstdint>

#include "hybrids/sim/core/time.hpp"
#include "hybrids/sim/mem/dram.hpp"

namespace hybrids::sim {

struct MachineConfig {
  // Host cores: 8 x 2GHz (paper: ARMv7 out-of-order; the simulator charges a
  // per-node-visit CPU cost instead of modeling the pipeline).
  std::uint32_t host_cores = 8;
  Tick host_cycle = 500;  // ps (2GHz)
  /// CPU work per data-structure node visited on the host (key compares,
  /// branch logic). Out-of-order cores overlap this with the memory access;
  /// kept small accordingly.
  Tick host_node_cpu = 2 * 500;

  // L1 data cache: 64kB, 2-way, 128B blocks, 2-cycle.
  std::size_t l1_bytes = 64 * 1024;
  int l1_assoc = 2;
  Tick l1_latency = 2 * 500;

  // L2 (last-level) cache: 1MB shared, 8-way, 128B blocks, 20-cycle.
  // The Cortex-A15 L2 (Table 1's host CPU) selects victims pseudo-randomly;
  // set false to model an idealized true-LRU LLC instead.
  std::size_t l2_bytes = 1024 * 1024;
  int l2_assoc = 8;
  Tick l2_latency = 20 * 500;
  bool l2_random_replacement = true;

  std::size_t block_bytes = 128;

  // HMC: 16 vaults (8 host main-memory + 8 NMP), 8 banks per vault.
  std::uint32_t main_vaults = 8;
  std::uint32_t nmp_vaults = 8;
  int banks_per_vault = 8;
  int blocks_per_row = 16;  // 2KB row buffer per bank
  DramTiming dram{};

  // Off-chip serial link between the host chip and the HMC (per direction).
  // Sized so an uncached MMIO round trip is comparable to 1-2 LLC misses,
  // the relationship the paper's Table 2 reports.
  Tick link_latency = 8 * kNanosecond;

  // NMP cores: in-order single-cycle, 2GHz, no caches; a node-size (128B)
  // buffer acts as a single-block cache. Scratchpad accesses take one cycle.
  Tick nmp_cycle = 500;
  Tick nmp_node_cpu = 4 * 500;  // in-order: key-scan work is exposed
  Tick scratchpad_latency = 500;

  /// Host poll gap while waiting for an NMP response (blocking calls) and
  /// NMP publication-list re-scan gap when idle.
  Tick host_poll_gap = 4 * 500;
  Tick nmp_idle_gap = 4 * 500;
};

}  // namespace hybrids::sim
