// Simulated machine: the event engine, the memory system, and the execution
// contexts (host hardware threads, NMP cores) that simulated data-structure
// code runs on. Also provides the simulated publication-list transport
// (§3.2) shared by all NMP-based structures.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hybrids/nmp/publication.hpp"
#include "hybrids/sim/core/event_queue.hpp"
#include "hybrids/sim/core/task.hpp"
#include "hybrids/sim/core/time.hpp"
#include "hybrids/sim/machine/config.hpp"
#include "hybrids/sim/mem/memory_system.hpp"
#include "hybrids/telemetry/registry.hpp"
#include "hybrids/trace/trace.hpp"

namespace hybrids::sim {

class System {
 public:
  explicit System(const MachineConfig& config)
      : config_(config), mem_(config) {}

  const MachineConfig& config() const { return config_; }
  Engine& engine() { return engine_; }
  MemorySystem& mem() { return mem_; }

  /// Set once all host workload actors finish; combiner actors then drain
  /// and exit.
  bool stop_requested() const { return stop_; }
  void request_stop() { stop_ = true; }

 private:
  MachineConfig config_;
  Engine engine_;
  MemorySystem mem_;
  bool stop_ = false;
};

/// Execution context of one host hardware thread.
struct HostCtx {
  System* sys;
  std::uint32_t core;

  Engine::DelayAwaiter delay(Tick d) { return sys->engine().delay(d); }

  /// Visit one data-structure node (<= one 128B block): memory latency plus
  /// the per-node CPU cost.
  Engine::DelayAwaiter node(const void* p, bool write = false) {
    const Tick lat = sys->mem().host_access(core,
                                            reinterpret_cast<std::uint64_t>(p),
                                            write, sys->engine().now()) +
                     sys->config().host_node_cpu;
    return delay(lat);
  }

  /// Application-interference access (tracked separately in the stats).
  Engine::DelayAwaiter app_access(std::uint64_t addr) {
    const Tick lat = sys->mem().host_access(core, addr, /*write=*/false,
                                            sys->engine().now(), /*app=*/true);
    return delay(lat);
  }

  Engine::DelayAwaiter mmio_write() {
    return delay(sys->mem().host_mmio(true, sys->engine().now()));
  }
  Engine::DelayAwaiter mmio_read() {
    return delay(sys->mem().host_mmio(false, sys->engine().now()));
  }
};

/// Execution context of one NMP core: accesses its own vault directly and
/// keeps a node-size single-block buffer (Choe et al. [16]).
struct NmpCtx {
  System* sys;
  std::uint32_t vault;  // NMP vault index (0-based among NMP vaults)
  std::uint64_t buffer_block = ~std::uint64_t{0};

  Engine::DelayAwaiter delay(Tick d) { return sys->engine().delay(d); }

  /// Visit one partition-local node through the node buffer.
  Engine::DelayAwaiter node(const void* p, bool write = false) {
    const auto addr = reinterpret_cast<std::uint64_t>(p);
    const std::uint64_t block = addr / sys->config().block_bytes;
    Tick lat = sys->config().nmp_node_cpu;
    if (block == buffer_block && !write) {
      lat += sys->config().nmp_cycle;
      // Buffer hit: no DRAM access.
      // (Writes go through to the vault and refresh the buffer.)
    } else {
      lat += sys->mem().nmp_access(vault, addr, write, sys->engine().now());
      buffer_block = block;
    }
    return delay(lat);
  }

  Engine::DelayAwaiter spad() {
    return delay(sys->mem().nmp_scratchpad(sys->engine().now()));
  }
};

/// Simulated publication-list slot: plain fields (the event engine
/// interleaves actors only at co_await points), latencies charged through
/// HostCtx::mmio_* and NmpCtx::spad.
struct SimSlot {
  enum Status : std::uint8_t { kEmpty, kPending, kDone };
  Status status = kEmpty;
  nmp::Request req{};
  nmp::Response resp{};
  Tick posted_at = 0;  // telemetry: simulated post time (queue wait)
  Tick done_at = 0;    // trace: combiner completion time (kWake start)
};

/// One NMP core's publication list plus the stop flag shared with its
/// combiner actor.
struct SimPubList {
  explicit SimPubList(std::uint32_t slots, std::int16_t part = -1)
      : slots(slots), part(part) {}
  std::vector<SimSlot> slots;
  std::int16_t part;  // owning partition, for trace attribution
};

/// Trace timestamp for simulated time: the run-global offset (so stacked
/// runs don't overlap at tick 0) plus the engine clock, in nanoseconds.
inline std::uint64_t sim_trace_ns(System& sys) {
  return trace::time_base() +
         static_cast<std::uint64_t>(ticks_to_ns(sys.engine().now()));
}
inline std::uint64_t sim_trace_ns_at(Tick t) {
  return trace::time_base() + static_cast<std::uint64_t>(ticks_to_ns(t));
}

/// Host side of a blocking NMP call: write the request (posted MMIO), poll
/// the valid flag, read back the response (§3.2; Table 2 measures exactly
/// this round trip).
inline Task<nmp::Response> sim_call(HostCtx& c, SimPubList& pl,
                                    std::uint32_t slot, nmp::Request req) {
  // Function-local statics: one registry lookup per process, not per call.
  static telemetry::Counter& posted =
      telemetry::counter(telemetry::names::kOffloadPosted);
  static telemetry::Counter& blocking =
      telemetry::counter(telemetry::names::kCallBlocking);
  const std::uint64_t p0 = req.trace_id ? sim_trace_ns(*c.sys) : 0;
  co_await c.mmio_write();
  pl.slots[slot].req = req;
  pl.slots[slot].resp = nmp::Response{};
  pl.slots[slot].posted_at = c.sys->engine().now();
  pl.slots[slot].done_at = 0;
  pl.slots[slot].status = SimSlot::kPending;
  posted.inc();
  blocking.inc();
  trace::record_span(req.trace_id, trace::Phase::kPublish, p0,
                     req.trace_id ? sim_trace_ns(*c.sys) : 0,
                     static_cast<std::uint8_t>(req.op), pl.part, 0, c.core);
  while (true) {
    co_await c.mmio_read();  // poll the flag
    if (pl.slots[slot].status == SimSlot::kDone) break;
    co_await c.delay(c.sys->config().host_poll_gap);
  }
  co_await c.mmio_read();  // fetch response payload
  trace::record_span(req.trace_id, trace::Phase::kWake,
                     sim_trace_ns_at(pl.slots[slot].done_at),
                     req.trace_id ? sim_trace_ns(*c.sys) : 0,
                     static_cast<std::uint8_t>(req.op), pl.part, 0, c.core);
  nmp::Response resp = pl.slots[slot].resp;
  pl.slots[slot].status = SimSlot::kEmpty;
  co_return resp;
}

/// Host side of a non-blocking post (§3.5): returns immediately after the
/// posted MMIO write; completion is collected with sim_collect.
inline Task<void> sim_post(HostCtx& c, SimPubList& pl, std::uint32_t slot,
                           nmp::Request req) {
  static telemetry::Counter& posted =
      telemetry::counter(telemetry::names::kOffloadPosted);
  static telemetry::Counter& async =
      telemetry::counter(telemetry::names::kCallAsync);
  const std::uint64_t p0 = req.trace_id ? sim_trace_ns(*c.sys) : 0;
  co_await c.mmio_write();
  pl.slots[slot].req = req;
  pl.slots[slot].resp = nmp::Response{};
  pl.slots[slot].posted_at = c.sys->engine().now();
  pl.slots[slot].done_at = 0;
  pl.slots[slot].status = SimSlot::kPending;
  posted.inc();
  async.inc();
  trace::record_span(req.trace_id, trace::Phase::kPublish, p0,
                     req.trace_id ? sim_trace_ns(*c.sys) : 0,
                     static_cast<std::uint8_t>(req.op), pl.part, 0, c.core);
}

inline Task<nmp::Response> sim_collect(HostCtx& c, SimPubList& pl,
                                       std::uint32_t slot) {
  while (true) {
    co_await c.mmio_read();
    if (pl.slots[slot].status == SimSlot::kDone) break;
    co_await c.delay(c.sys->config().host_poll_gap);
  }
  co_await c.mmio_read();
  trace::record_span(pl.slots[slot].req.trace_id, trace::Phase::kWake,
                     sim_trace_ns_at(pl.slots[slot].done_at),
                     pl.slots[slot].req.trace_id ? sim_trace_ns(*c.sys) : 0,
                     static_cast<std::uint8_t>(pl.slots[slot].req.op), pl.part,
                     0, c.core);
  nmp::Response resp = pl.slots[slot].resp;
  pl.slots[slot].status = SimSlot::kEmpty;
  co_return resp;
}

/// NMP combiner actor: scans the publication list (one scratchpad read per
/// slot), applies pending requests through `handler`, and writes responses.
/// Runs until the system requests a stop and the list is drained.
/// Per-partition telemetry instruments for one simulated combiner, resolved
/// once at actor start. All metric names match the real NmpCore runtime so
/// exports look identical regardless of which transport ran the workload.
struct SimCombinerMetrics {
  telemetry::Counter* served_total;
  telemetry::Counter* served_op[nmp::kOpCodeCount];  // indexed by OpCode
  telemetry::LatencyRecorder* queue_wait;
  telemetry::LatencyRecorder* service;
  telemetry::LatencyRecorder* occupancy;
  telemetry::LatencyRecorder* batch;
  telemetry::Counter* trace_queue_wait;  // traced ops: queue-wait ns total
  telemetry::Counter* trace_service;     // traced ops: service ns total

  explicit SimCombinerMetrics(std::uint32_t vault) {
    namespace tn = telemetry::names;
    const auto p = static_cast<std::int32_t>(vault);
    served_total = &telemetry::counter(tn::kServedTotal, p);
    for (std::size_t op = 0; op < nmp::kOpCodeCount; ++op) {
      served_op[op] = &telemetry::counter(
          std::string(tn::kServedPrefix) +
              nmp::op_code_name(static_cast<nmp::OpCode>(op)),
          p);
    }
    queue_wait = &telemetry::latency(tn::kQueueWaitNs, p);
    service = &telemetry::latency(tn::kServiceNs, p);
    occupancy = &telemetry::latency(tn::kScanOccupancy, p);
    batch = &telemetry::latency(tn::kCombinerBatch, p);
    trace_queue_wait = &telemetry::counter(tn::kTraceQueueWaitNs, p);
    trace_service = &telemetry::counter(tn::kTraceServiceNs, p);
  }
};

inline Task<void> sim_combiner(
    System& sys, NmpCtx ctx, SimPubList& pl,
    std::function<Task<void>(NmpCtx&, SimSlot&)> handler) {
  SimCombinerMetrics m(ctx.vault);
  while (true) {
    if constexpr (telemetry::kEnabled) {
      // Occupancy at scan start: free (uncharged) status reads, so telemetry
      // never perturbs the simulated timing.
      std::uint32_t occupied = 0;
      for (const auto& slot : pl.slots) {
        occupied += slot.status == SimSlot::kPending;
      }
      if (occupied > 0) m.occupancy->record(occupied);
    }
    std::uint32_t served_this_pass = 0;
    for (auto& slot : pl.slots) {
      co_await ctx.spad();  // read the valid flag
      if (slot.status == SimSlot::kPending) {
        const Tick t0 = sys.engine().now();
        const auto op = static_cast<std::size_t>(slot.req.op);
        const std::uint64_t trace_id = slot.req.trace_id;
        co_await handler(ctx, slot);
        const Tick t_applied = sys.engine().now();
        co_await ctx.spad();  // write response + clear flag
        slot.done_at = sys.engine().now();
        slot.status = SimSlot::kDone;
        ++served_this_pass;
        if constexpr (trace::kCompiledIn) {
          if (trace_id != 0) {
            // kQueueWait + kApply + kReply tile [posted_at, done_at] on the
            // combiner lane, mirroring the real NmpCore attribution.
            const auto op8 = static_cast<std::uint8_t>(op);
            const auto part = static_cast<std::int16_t>(ctx.vault);
            const std::uint32_t lane = trace::kCombinerTrackBase + ctx.vault;
            trace::record_span(trace_id, trace::Phase::kQueueWait,
                               sim_trace_ns_at(slot.posted_at),
                               sim_trace_ns_at(t0), op8, part, 0, lane);
            trace::record_span(trace_id, trace::Phase::kApply,
                               sim_trace_ns_at(t0), sim_trace_ns_at(t_applied),
                               op8, part, 0, lane);
            trace::record_span(trace_id, trace::Phase::kReply,
                               sim_trace_ns_at(t_applied),
                               sim_trace_ns_at(slot.done_at), op8, part, 0,
                               lane);
            m.trace_queue_wait->add(
                static_cast<std::uint64_t>(ticks_to_ns(t0 - slot.posted_at)));
            m.trace_service->add(
                static_cast<std::uint64_t>(ticks_to_ns(t_applied - t0)));
          }
        }
        if constexpr (telemetry::kEnabled) {
          m.queue_wait->record(ticks_to_ns(t0 - slot.posted_at));
          m.service->record(ticks_to_ns(sys.engine().now() - t0));
          m.served_total->inc();
          if (op < nmp::kOpCodeCount) m.served_op[op]->inc();
        }
      }
    }
    if (served_this_pass > 0) {
      if constexpr (telemetry::kEnabled) m.batch->record(served_this_pass);
    } else {
      if (sys.stop_requested()) co_return;
      co_await ctx.delay(sys.config().nmp_idle_gap);
    }
  }
}

}  // namespace hybrids::sim
