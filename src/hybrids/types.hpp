// Fundamental key/value types shared by the data structures, the NMP
// runtime, the workload generators, and the simulator.
//
// The paper's publication-list layout (§3.2) fixes lookup keys and values at
// 4 bytes each; we use the same widths throughout.
#pragma once

#include <cstdint>

namespace hybrids {

using Key = std::uint32_t;
using Value = std::uint32_t;

/// One (key, value) pair returned by a range scan. Scan responses are
/// written by the NMP combiner directly into a host-owned array of these
/// (see the kScan protocol notes in nmp/publication.hpp).
struct ScanEntry {
  Key key;
  Value value;
};

}  // namespace hybrids
