// Fundamental key/value types shared by the data structures, the NMP
// runtime, the workload generators, and the simulator.
//
// The paper's publication-list layout (§3.2) fixes lookup keys and values at
// 4 bytes each; we use the same widths throughout.
#pragma once

#include <cstdint>

namespace hybrids {

using Key = std::uint32_t;
using Value = std::uint32_t;

}  // namespace hybrids
