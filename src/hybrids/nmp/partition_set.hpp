// A set of NMP partitions with equal-width key-range routing, plus the
// per-thread slot bookkeeping used for blocking and non-blocking NMP calls.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "hybrids/nmp/nmp_core.hpp"

namespace hybrids::nmp {

/// Configuration for a PartitionSet. `slots_per_thread` bounds the number of
/// in-flight non-blocking calls a single host thread may have against one
/// partition (the paper's hybrid-nonblocking4 uses 4); the resulting
/// publication-list layout is documented once, at PartitionSet::thread_base.
///
/// The watchdog monitors per-core served() progress: a core with posted but
/// unserved requests and no progress across one interval is re-kicked (futex
/// re-notify) and `watchdog_fired` is bumped; after
/// `watchdog_misses_to_degrade` consecutive missed heartbeats the partition
/// is marked degraded (`partition_degraded`, queryable via degraded()) until
/// it makes progress again.
struct PartitionConfig {
  std::uint32_t partitions = 8;
  std::uint32_t max_threads = 8;
  std::uint32_t slots_per_thread = 4;
  Key partition_width = 0;  // keys in [p*width, (p+1)*width) -> partition p
  std::uint32_t watchdog_interval_ms = 10;    // 0 disables the watchdog
  std::uint32_t watchdog_misses_to_degrade = 5;
};

/// Identifies one in-flight non-blocking NMP call.
struct OpHandle {
  std::uint32_t partition = 0;
  std::uint32_t slot = 0;
  bool valid = false;
};

/// Owns the NMP cores of a hybrid data structure and routes operations to
/// them. Handlers are installed per partition before start().
class PartitionSet {
 public:
  /// Throws std::invalid_argument if the config is unusable (zero
  /// partitions, partition_width, max_threads, or slots_per_thread —
  /// partition_of divides by partition_width, so a zero width would fault).
  explicit PartitionSet(const PartitionConfig& config);
  ~PartitionSet();

  PartitionSet(const PartitionSet&) = delete;
  PartitionSet& operator=(const PartitionSet&) = delete;

  /// Installs the combiner handler for partition `p`. Must be called for all
  /// partitions before start().
  void set_handler(std::uint32_t p, NmpCore::Handler handler);

  /// Installs the optional key-sorted batch handler for partition `p` (see
  /// NmpCore::set_batch_handler). Must be called before start(); survives a
  /// later set_handler() on the same partition in either order.
  void set_batch_handler(std::uint32_t p, NmpCore::BatchHandler handler);

  void start();
  void stop();

  std::uint32_t partitions() const { return static_cast<std::uint32_t>(cores_.size()); }
  Key partition_width() const { return config_.partition_width; }

  /// Equal-width range routing, clamped to the last partition.
  std::uint32_t partition_of(Key key) const {
    const auto p = static_cast<std::uint32_t>(key / config_.partition_width);
    return p >= partitions() ? partitions() - 1 : p;
  }

  NmpCore& core(std::uint32_t p) { return *cores_[p]; }

  /// True while the watchdog considers partition `p` wedged (no served()
  /// progress for watchdog_misses_to_degrade consecutive intervals with
  /// requests outstanding). Clears as soon as the core serves again.
  bool degraded(std::uint32_t p) const {
    return degraded_[p].load(std::memory_order_acquire);
  }

  /// Blocking call: posts `r` to partition `p` on behalf of `thread_id` and
  /// waits for the response. Uses the thread's blocking slot (see thread_base
  /// for the layout), so blocking and non-blocking calls from the same thread
  /// cannot collide.
  Response call(std::uint32_t p, std::uint32_t thread_id, const Request& r);

  /// Non-blocking call: posts `r` and returns a handle, or an invalid handle
  /// if the thread already has all of its slots for `p` in flight.
  OpHandle call_async(std::uint32_t p, std::uint32_t thread_id, const Request& r);

  /// True once the response for `h` is available.
  bool poll(const OpHandle& h);
  /// Blocks until `h` completes and returns its response, releasing the slot.
  Response retrieve(const OpHandle& h);

 private:
  // Publication-list slot layout (the one canonical description; everything
  // else refers here). Each partition's list has
  //   max_threads * (1 + slots_per_thread)
  // slots. Host thread t owns the contiguous range
  //   [t * (1 + slots_per_thread), (t + 1) * (1 + slots_per_thread)).
  // The first slot of the range — index thread_base(t) — is the thread's
  // *blocking* slot, used exclusively by call(). The remaining
  // slots_per_thread slots are its *async* slots, handed out by call_async()
  // and tracked in async_busy_. Because every slot has exactly one owning
  // thread and the blocking slot is disjoint from the async window, a
  // thread's blocking and non-blocking calls never collide and no slot is
  // ever contended between host threads.
  std::uint32_t thread_base(std::uint32_t thread_id) const {
    return thread_id * (1 + config_.slots_per_thread);
  }

  void watchdog_loop();

  PartitionConfig config_;
  std::vector<std::unique_ptr<NmpCore>> cores_;
  // Batch handlers are kept here as well as in the cores: set_handler()
  // rebuilds a core from scratch, so its batch handler must be re-applied.
  std::vector<NmpCore::BatchHandler> batch_handlers_;
  // In-flight flags for async slots, indexed [partition][slot]; only the
  // owning host thread touches its entries.
  std::vector<std::vector<std::uint8_t>> async_busy_;
  bool started_ = false;

  // Watchdog thread state. `degraded_` is written by the watchdog and read
  // by any thread; the per-core progress snapshots are watchdog-private.
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  struct WatchState {
    std::uint64_t last_served = 0;
    std::uint32_t misses = 0;
  };
  std::vector<WatchState> watch_;
  std::unique_ptr<std::atomic<bool>[]> degraded_;
  std::vector<telemetry::Counter*> watchdog_fired_;     // per partition
  std::vector<telemetry::Counter*> degraded_counter_;   // per partition

  // Host-level telemetry (global scope; per-partition metrics live in the
  // cores). The recorder tracks the non-blocking in-flight depth observed
  // right after each successful async post.
  telemetry::Counter* calls_blocking_;
  telemetry::Counter* calls_async_;
  telemetry::Counter* async_rejected_;
  telemetry::LatencyRecorder* async_inflight_;
};

}  // namespace hybrids::nmp
