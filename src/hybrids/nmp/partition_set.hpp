// A set of NMP partitions with equal-width key-range routing, plus the
// per-thread slot bookkeeping used for blocking and non-blocking NMP calls.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "hybrids/nmp/nmp_core.hpp"

namespace hybrids::nmp {

/// What the supervisor does once a partition crosses the degrade threshold
/// (see PartitionSet::watchdog_loop for the full lane state machine).
enum class FailoverPolicy : std::uint8_t {
  /// Mark degraded only; no fencing or recovery (pre-failover behavior).
  kNone,
  /// Fence the lane, bounce in-flight slots with failed_over responses, and
  /// start a fresh combiner thread over the same partition state. Default.
  kRespawn,
  /// Fence and bounce as above, but instead of respawning immediately, host
  /// threads temporarily drive combiner passes themselves under a per-
  /// partition lease; a fresh combiner is started once the lane has shown
  /// `watchdog_misses_to_recover` progressing intervals.
  kHostLease,
};

/// Configuration for a PartitionSet. `slots_per_thread` bounds the number of
/// in-flight non-blocking calls a single host thread may have against one
/// partition (the paper's hybrid-nonblocking4 uses 4); the resulting
/// publication-list layout is documented once, at PartitionSet::thread_base.
///
/// The watchdog monitors per-core served() progress: a core with posted but
/// unserved requests and no progress across one interval is re-kicked (futex
/// re-notify) and `watchdog_fired` is bumped; after
/// `watchdog_misses_to_degrade` consecutive missed heartbeats (the counter
/// saturates and is sticky across idle intervals — only observed progress
/// clears it) the partition is marked degraded (`partition_degraded`,
/// queryable via degraded()) and, under a non-kNone failover policy, fenced
/// and recovered. The degraded flag clears only after
/// `watchdog_misses_to_recover` consecutive *progressing* intervals
/// (hysteresis — an idle partition cannot prove liveness, so it stays
/// degraded until traffic shows progress).
struct PartitionConfig {
  std::uint32_t partitions = 8;
  std::uint32_t max_threads = 8;
  std::uint32_t slots_per_thread = 4;
  Key partition_width = 0;  // keys in [p*width, (p+1)*width) -> partition p
  std::uint32_t watchdog_interval_ms = 10;    // 0 disables the watchdog
  std::uint32_t watchdog_misses_to_degrade = 5;
  std::uint32_t watchdog_misses_to_recover = 3;
  FailoverPolicy failover = FailoverPolicy::kRespawn;
};

/// Identifies one in-flight non-blocking NMP call.
struct OpHandle {
  std::uint32_t partition = 0;
  std::uint32_t slot = 0;
  bool valid = false;
};

/// Owns the NMP cores of a hybrid data structure and routes operations to
/// them. Handlers are installed per partition before start().
class PartitionSet {
 public:
  /// Throws std::invalid_argument if the config is unusable (zero
  /// partitions, partition_width, max_threads, or slots_per_thread —
  /// partition_of divides by partition_width, so a zero width would fault).
  explicit PartitionSet(const PartitionConfig& config);
  ~PartitionSet();

  PartitionSet(const PartitionSet&) = delete;
  PartitionSet& operator=(const PartitionSet&) = delete;

  /// Installs the combiner handler for partition `p`. Must be called for all
  /// partitions before start().
  void set_handler(std::uint32_t p, NmpCore::Handler handler);

  /// Installs the optional key-sorted batch handler for partition `p` (see
  /// NmpCore::set_batch_handler). Must be called before start(); survives a
  /// later set_handler() on the same partition in either order.
  void set_batch_handler(std::uint32_t p, NmpCore::BatchHandler handler);

  void start();
  void stop();

  std::uint32_t partitions() const { return static_cast<std::uint32_t>(cores_.size()); }
  Key partition_width() const { return config_.partition_width; }

  /// Equal-width range routing, clamped to the last partition.
  std::uint32_t partition_of(Key key) const {
    const auto p = static_cast<std::uint32_t>(key / config_.partition_width);
    return p >= partitions() ? partitions() - 1 : p;
  }

  NmpCore& core(std::uint32_t p) { return *cores_[p]; }

  /// True from the moment the watchdog considers partition `p` wedged (no
  /// served() progress for watchdog_misses_to_degrade consecutive intervals
  /// with requests outstanding) until the supervisor has re-integrated it:
  /// `watchdog_misses_to_recover` consecutive progressing intervals after
  /// recovery (hysteresis). Sticky while the partition is idle.
  bool degraded(std::uint32_t p) const {
    return degraded_[p].load(std::memory_order_acquire);
  }

  /// Forces the failover path on partition `p`: the next watchdog tick
  /// treats it as having crossed the degrade threshold (under kNone it is
  /// only marked degraded). Safe from any thread; used by kill-recover
  /// tests and the availability bench — it exercises the exact fence/
  /// bounce/recover machinery a real combiner death would, without needing
  /// the fault injector compiled in. No-op while the watchdog is disabled.
  void trigger_failover(std::uint32_t p) {
    force_failover_[p].store(true, std::memory_order_release);
  }

  /// Lifetime counts of failover events and supervisor-recovered lanes
  /// (tests; the telemetry counters carry the same values per partition).
  std::uint64_t failovers(std::uint32_t p) const {
    return failovers_[p].load(std::memory_order_acquire);
  }
  std::uint64_t recoveries(std::uint32_t p) const {
    return recoveries_[p].load(std::memory_order_acquire);
  }

  /// Blocking call: posts `r` to partition `p` on behalf of `thread_id` and
  /// waits for the response. Uses the thread's blocking slot (see thread_base
  /// for the layout), so blocking and non-blocking calls from the same thread
  /// cannot collide.
  Response call(std::uint32_t p, std::uint32_t thread_id, const Request& r);

  /// Non-blocking call: posts `r` and returns a handle, or an invalid handle
  /// if the thread already has all of its slots for `p` in flight.
  OpHandle call_async(std::uint32_t p, std::uint32_t thread_id, const Request& r);

  /// True once the response for `h` is available.
  bool poll(const OpHandle& h);
  /// Blocks until `h` completes and returns its response, releasing the slot.
  Response retrieve(const OpHandle& h);

 private:
  // Publication-list slot layout (the one canonical description; everything
  // else refers here). Each partition's list has
  //   max_threads * (1 + slots_per_thread)
  // slots. Host thread t owns the contiguous range
  //   [t * (1 + slots_per_thread), (t + 1) * (1 + slots_per_thread)).
  // The first slot of the range — index thread_base(t) — is the thread's
  // *blocking* slot, used exclusively by call(). The remaining
  // slots_per_thread slots are its *async* slots, handed out by call_async()
  // and tracked in async_busy_. Because every slot has exactly one owning
  // thread and the blocking slot is disjoint from the async window, a
  // thread's blocking and non-blocking calls never collide and no slot is
  // ever contended between host threads.
  std::uint32_t thread_base(std::uint32_t thread_id) const {
    return thread_id * (1 + config_.slots_per_thread);
  }

  // Failover lane state machine, advanced only by the watchdog thread
  // (supervisor); host threads read it to pick a call path. Transitions:
  //   kHealthy -> kDegraded           degrade threshold crossed
  //   kDegraded -> kFenced            policy != kNone: fence epoch raised
  //   kFenced -> kRecovering          zombie reaped, slots bounced, combiner
  //                                   respawned (kRespawn)
  //   kFenced -> kLeased              zombie reaped, slots bounced, hosts
  //                                   drive passes (kHostLease)
  //   kLeased -> kRecovering          hysteresis met: combiner respawned
  //                                   under the lease lock
  //   kRecovering -> kHealthy         hysteresis met: degraded_ cleared
  //   kRecovering/kLeased -> kFenced  stalled again: re-failover
  enum LaneState : std::uint8_t {
    kHealthy = 0,
    kDegraded,
    kFenced,
    kLeased,
    kRecovering,
  };

  LaneState lane(std::uint32_t p) const {
    return static_cast<LaneState>(lane_[p].load(std::memory_order_acquire));
  }

  void watchdog_loop();
  /// One supervisor step for partition `p` (called per watchdog tick).
  void supervise(std::uint32_t p);
  /// Fences partition `p` and moves its lane to kFenced.
  void fence(std::uint32_t p);
  /// kFenced tick: reap the zombie, bounce in-flight slots, hand the lane
  /// to a fresh combiner (kRespawn) or to the hosts (kHostLease).
  void recover(std::uint32_t p);
  /// Completes every still-kPending slot of `p` with a failed_over response.
  /// Only legal after the partition's combiner thread has been reaped.
  std::uint64_t bounce_pending(std::uint32_t p);
  /// Blocking call against a leased lane: post, then drive combiner passes
  /// under the lease lock until the response lands.
  Response call_leased(std::uint32_t p, std::uint32_t slot, const Request& r);
  /// Builds the immediate failed_over response used when a call arrives at
  /// a fenced lane (fast bounce: nothing is posted, so the host never waits
  /// on a dead combiner).
  Response bounce_response(std::uint32_t p, const Request& r);

  PartitionConfig config_;
  std::vector<std::unique_ptr<NmpCore>> cores_;
  // Batch handlers are kept here as well as in the cores: set_handler()
  // rebuilds a core from scratch, so its batch handler must be re-applied.
  std::vector<NmpCore::BatchHandler> batch_handlers_;
  // In-flight flags for async slots, indexed [partition][slot]; only the
  // owning host thread touches its entries.
  std::vector<std::vector<std::uint8_t>> async_busy_;
  bool started_ = false;

  // Watchdog thread state. `degraded_` is written by the watchdog and read
  // by any thread; the per-core progress snapshots are watchdog-private.
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  struct WatchState {
    std::uint64_t last_served = 0;
    std::uint32_t misses = 0;  // saturating; cleared only by progress
    std::uint32_t clean = 0;   // consecutive progressing intervals (hysteresis)
  };
  std::vector<WatchState> watch_;
  std::unique_ptr<std::atomic<bool>[]> degraded_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> lane_;   // LaneState per part.
  std::unique_ptr<std::atomic<bool>[]> force_failover_; // trigger_failover()
  std::unique_ptr<std::atomic<std::uint64_t>[]> failovers_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> recoveries_;
  // Host-takeover lease: whoever holds partition p's lease mutex is its sole
  // driver while the lane is kLeased (hosts and the supervisor drive passes
  // under it; the supervisor also holds it across the respawn transition, so
  // a fresh combiner never coexists with a lease driver).
  std::unique_ptr<std::mutex[]> lease_mu_;
  std::vector<telemetry::Counter*> watchdog_fired_;     // per partition
  std::vector<telemetry::Counter*> degraded_counter_;   // per partition
  std::vector<telemetry::Counter*> failover_counter_;   // per partition
  std::vector<telemetry::Counter*> recovered_counter_;  // per partition
  std::vector<telemetry::Counter*> bounced_counter_;    // per partition

  // Host-level telemetry (global scope; per-partition metrics live in the
  // cores). The recorder tracks the non-blocking in-flight depth observed
  // right after each successful async post.
  telemetry::Counter* calls_blocking_;
  telemetry::Counter* calls_async_;
  telemetry::Counter* async_rejected_;
  telemetry::LatencyRecorder* async_inflight_;
};

}  // namespace hybrids::nmp
