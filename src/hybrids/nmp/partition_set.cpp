#include "hybrids/nmp/partition_set.hpp"

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>

#include "hybrids/trace/trace.hpp"

namespace hybrids::nmp {

namespace {
void validate_config(const PartitionConfig& c) {
  std::string bad;
  auto require = [&](bool ok, const char* field) {
    if (!ok) {
      if (!bad.empty()) bad += ", ";
      bad += field;
    }
  };
  require(c.partitions > 0, "partitions");
  require(c.partition_width > 0, "partition_width");
  require(c.max_threads > 0, "max_threads");
  require(c.slots_per_thread > 0, "slots_per_thread");
  if (!bad.empty()) {
    throw std::invalid_argument(
        "PartitionConfig: " + bad +
        " must be nonzero (partition_of divides keys by partition_width; "
        "slot layout needs at least one thread with one async slot)");
  }
  if (c.watchdog_interval_ms > 0 &&
      (c.watchdog_misses_to_degrade == 0 ||
       c.watchdog_misses_to_recover == 0)) {
    // A zero degrade threshold used to pass validation but could never fire
    // (the miss counter is compared after incrementing), silently meaning
    // "never degrade"; a zero recover threshold would re-integrate a lane
    // with no evidence of progress.
    throw std::invalid_argument(
        "PartitionConfig: watchdog_misses_to_degrade and "
        "watchdog_misses_to_recover must be nonzero while the watchdog is "
        "enabled (watchdog_interval_ms > 0)");
  }
}
}  // namespace

PartitionSet::PartitionSet(const PartitionConfig& config) : config_(config) {
  validate_config(config_);
  const std::uint32_t slots =
      config_.max_threads * (1 + config_.slots_per_thread);
  cores_.reserve(config_.partitions);
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    cores_.push_back(std::make_unique<NmpCore>(p, slots, NmpCore::Handler{}));
  }
  batch_handlers_.resize(config_.partitions);
  async_busy_.assign(config_.partitions, std::vector<std::uint8_t>(slots, 0));
  watch_.assign(config_.partitions, WatchState{});
  degraded_ = std::make_unique<std::atomic<bool>[]>(config_.partitions);
  lane_ = std::make_unique<std::atomic<std::uint8_t>[]>(config_.partitions);
  force_failover_ = std::make_unique<std::atomic<bool>[]>(config_.partitions);
  failovers_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(config_.partitions);
  recoveries_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(config_.partitions);
  lease_mu_ = std::make_unique<std::mutex[]>(config_.partitions);
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    degraded_[p].store(false, std::memory_order_relaxed);
    lane_[p].store(kHealthy, std::memory_order_relaxed);
    force_failover_[p].store(false, std::memory_order_relaxed);
    failovers_[p].store(0, std::memory_order_relaxed);
    recoveries_[p].store(0, std::memory_order_relaxed);
  }
  namespace tn = telemetry::names;
  watchdog_fired_.reserve(config_.partitions);
  degraded_counter_.reserve(config_.partitions);
  failover_counter_.reserve(config_.partitions);
  recovered_counter_.reserve(config_.partitions);
  bounced_counter_.reserve(config_.partitions);
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    const auto scope = static_cast<std::int32_t>(p);
    watchdog_fired_.push_back(&telemetry::counter(tn::kWatchdogFired, scope));
    degraded_counter_.push_back(
        &telemetry::counter(tn::kPartitionDegraded, scope));
    failover_counter_.push_back(
        &telemetry::counter(tn::kPartitionFailover, scope));
    recovered_counter_.push_back(
        &telemetry::counter(tn::kPartitionRecovered, scope));
    bounced_counter_.push_back(
        &telemetry::counter(tn::kFailoverBouncedOps, scope));
  }
  calls_blocking_ = &telemetry::counter(tn::kCallBlocking);
  calls_async_ = &telemetry::counter(tn::kCallAsync);
  async_rejected_ = &telemetry::counter(tn::kAsyncRejected);
  async_inflight_ = &telemetry::latency(tn::kAsyncInflight);
}

PartitionSet::~PartitionSet() { stop(); }

void PartitionSet::set_handler(std::uint32_t p, NmpCore::Handler handler) {
  assert(!started_);
  // Rebuild the core with the handler installed (cores are cheap pre-start),
  // then re-apply any batch handler the rebuild discarded.
  const std::uint32_t slots = cores_[p]->slot_count();
  cores_[p] = std::make_unique<NmpCore>(p, slots, std::move(handler));
  if (batch_handlers_[p]) cores_[p]->set_batch_handler(batch_handlers_[p]);
}

void PartitionSet::set_batch_handler(std::uint32_t p,
                                     NmpCore::BatchHandler handler) {
  assert(!started_);
  batch_handlers_[p] = std::move(handler);
  cores_[p]->set_batch_handler(batch_handlers_[p]);
}

void PartitionSet::start() {
  if (started_) return;
  started_ = true;
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    degraded_[p].store(false, std::memory_order_relaxed);
    lane_[p].store(kHealthy, std::memory_order_relaxed);
    force_failover_[p].store(false, std::memory_order_relaxed);
  }
  for (auto& c : cores_) c->start();
  if (config_.watchdog_interval_ms > 0) {
    watchdog_stop_ = false;
    watch_.assign(config_.partitions, WatchState{});
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

void PartitionSet::stop() {
  if (!started_) return;
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
  for (auto& c : cores_) c->stop();
  started_ = false;
}

void PartitionSet::watchdog_loop() {
  std::unique_lock<std::mutex> lk(watchdog_mu_);
  const auto interval =
      std::chrono::milliseconds(config_.watchdog_interval_ms);
  while (!watchdog_cv_.wait_for(lk, interval, [this] { return watchdog_stop_; })) {
    for (std::uint32_t p = 0; p < config_.partitions; ++p) supervise(p);
  }
}

// One watchdog tick for partition p: progress accounting plus the failover
// lane state machine (see the transition table in partition_set.hpp).
//
// Stall/progress semantics (this is the watchdog-flap fix): the miss counter
// saturates instead of relying on exact equality, and neither it nor the
// degraded flag is cleared by an *idle* interval — a wedged-but-unposted
// combiner must not read healthy. Only observed served() progress clears
// misses, and the degraded flag clears only after
// watchdog_misses_to_recover consecutive progressing intervals.
void PartitionSet::supervise(std::uint32_t p) {
  NmpCore& core = *cores_[p];
  WatchState& w = watch_[p];
  // Read served before posted: if the core caught up in between we see
  // served >= posted and correctly count it as progress.
  const std::uint64_t served = core.served();
  const std::uint64_t posted = core.posted();
  const bool outstanding = posted > served;
  const bool progressed = served != w.last_served;
  const bool forced =
      force_failover_[p].exchange(false, std::memory_order_acq_rel);
  const LaneState state = lane(p);
  switch (state) {
    case kHealthy:
    case kDegraded:
    case kRecovering: {
      w.last_served = served;  // recover() re-baselines after a bounce
      if ((outstanding && !progressed) || forced) {
        // Missed heartbeat: re-wake the combiner (recovers lost wakeups and
        // nudges a descheduled thread) and escalate once the saturating miss
        // counter crosses the threshold (or a test forced the failover).
        watchdog_fired_[p]->inc();
        core.kick();
        w.clean = 0;  // a stall breaks any consecutive-progress streak
        if (w.misses != ~0u) ++w.misses;
        if (forced || w.misses >= config_.watchdog_misses_to_degrade) {
          if (state == kHealthy) {
            degraded_[p].store(true, std::memory_order_release);
            degraded_counter_[p]->inc();
            lane_[p].store(kDegraded, std::memory_order_release);
          }
          if (config_.failover != FailoverPolicy::kNone) fence(p);
        }
      } else if (progressed) {
        w.misses = 0;
        if (state != kHealthy &&
            ++w.clean >= config_.watchdog_misses_to_recover) {
          // Hysteresis met: re-integrate. (kDegraded reaches here only
          // under kNone, where the lane is never fenced.)
          w.clean = 0;
          lane_[p].store(kHealthy, std::memory_order_release);
          degraded_[p].store(false, std::memory_order_release);
          recovered_counter_[p]->inc();
          recoveries_[p].fetch_add(1, std::memory_order_relaxed);
        }
      }
      break;
    }
    case kFenced:
      // Waiting for the zombie to unwind; retry the reap every tick.
      recover(p);
      break;
    case kLeased: {
      w.last_served = served;
      if (progressed) {
        w.misses = 0;
        if (++w.clean >= config_.watchdog_misses_to_recover) {
          // Hand the lane back to a dedicated combiner. Holding the lease
          // lock across start() guarantees no host is mid-drive when the
          // fresh thread takes over, and hosts that subsequently acquire
          // the lock re-check the lane and stand down. The lane stays
          // degraded (kRecovering) until the combiner proves itself too.
          std::lock_guard<std::mutex> guard(lease_mu_[p]);
          w.clean = 0;
          core.start();
          lane_[p].store(kRecovering, std::memory_order_release);
          break;
        }
      }
      // Serve orphan posts (a post that landed between the bounce sweep and
      // its thread observing the lease) and keep an idle leased lane live.
      // Note a leased lane is never re-fenced: there is no combiner thread
      // to reap, and a blocking acquire of a lease held by a stuck host
      // handler would wedge the supervisor itself.
      if (lease_mu_[p].try_lock()) {
        core.drive_pass();
        lease_mu_[p].unlock();
      }
      break;
    }
  }
}

void PartitionSet::fence(std::uint32_t p) {
  cores_[p]->fence_raise();
  lane_[p].store(kFenced, std::memory_order_release);
  failover_counter_[p]->inc();
  failovers_[p].fetch_add(1, std::memory_order_relaxed);
  watch_[p].clean = 0;
  // A combiner that already exited (kCombinerAbort) reaps immediately, so
  // the common kill case completes fence -> bounce -> respawn in one tick.
  recover(p);
}

void PartitionSet::recover(std::uint32_t p) {
  NmpCore& core = *cores_[p];
  if (!core.try_reap()) return;  // zombie still unwinding; next tick
  // Sole-writer from here: the combiner thread is joined, hosts never write
  // a slot they have posted until it turns kDone.
  const std::uint64_t bounced = bounce_pending(p);
  if (bounced > 0) {
    bounced_counter_[p]->add(bounced);
    // Bounced ops never reached complete(): credit them as served so the
    // posted-vs-served progress check converges again.
    core.absorb_bounce(bounced);
  }
  WatchState& w = watch_[p];
  w.misses = 0;
  w.clean = 0;
  if (config_.failover == FailoverPolicy::kHostLease) {
    lane_[p].store(kLeased, std::memory_order_release);
  } else {
    core.start();
    lane_[p].store(kRecovering, std::memory_order_release);
  }
  // Progress baseline restarts from the post-bounce count, so the bounce
  // credit itself cannot masquerade as served progress next tick.
  w.last_served = core.served();
}

std::uint64_t PartitionSet::bounce_pending(std::uint32_t p) {
  NmpCore& core = *cores_[p];
  std::uint64_t bounced = 0;
  for (std::uint32_t i = 0; i < core.slot_count(); ++i) {
    PubSlot& s = core.slot(i);
    if (s.status.load(std::memory_order_acquire) != PubSlot::kPending) {
      continue;
    }
    Response r{};
    r.failed_over = true;
    s.resp = r;
    if constexpr (trace::kCompiledIn) {
      if (s.req.trace_id != 0) {
        s.done_ns = telemetry::now_ns();
        trace::record_instant(s.req.trace_id, trace::Phase::kFailover,
                              s.done_ns, static_cast<std::uint8_t>(s.req.op),
                              static_cast<std::int16_t>(p));
      }
    }
    s.status.store(PubSlot::kDone, std::memory_order_release);
    s.status.notify_all();
    ++bounced;
  }
  return bounced;
}

Response PartitionSet::call(std::uint32_t p, std::uint32_t thread_id,
                            const Request& r) {
  NmpCore& core = *cores_[p];
  const std::uint32_t slot = thread_base(thread_id);
  calls_blocking_->inc();
  // Failover paths. A fenced lane has no server at all: bounce immediately
  // rather than posting into a dead publication list (the host never blocks
  // on a fenced partition). A leased lane is served by whichever host holds
  // the lease — including, if need be, us. The lane can still flip right
  // after this check; in-flight posts caught by a fence are bounced by the
  // supervisor sweep, so every path converges to a failed_over response.
  switch (lane(p)) {
    case kFenced:
      return bounce_response(p, r);
    case kLeased:
      return call_leased(p, slot, r);
    default:
      break;
  }
  const auto part = static_cast<std::int16_t>(p);
  const auto op = static_cast<std::uint8_t>(r.op);
  const std::uint64_t t0 = r.trace_id ? telemetry::now_ns() : 0;
  core.post(slot, r);
  trace::record_span(r.trace_id, trace::Phase::kPublish, t0,
                     r.trace_id ? telemetry::now_ns() : 0, op, part);
  core.wait_done(slot);
  PubSlot& s = core.slot(slot);
  // done_ns was plain-written by the combiner before its kDone release
  // store, which wait_done's acquire load synchronized with.
  trace::record_span(r.trace_id, trace::Phase::kWake, s.done_ns,
                     r.trace_id ? telemetry::now_ns() : 0, op, part);
  return s.take();
}

Response PartitionSet::bounce_response(std::uint32_t p, const Request& r) {
  bounced_counter_[p]->inc();
  trace::record_instant(r.trace_id, trace::Phase::kFailover,
                        r.trace_id ? telemetry::now_ns() : 0,
                        static_cast<std::uint8_t>(r.op),
                        static_cast<std::int16_t>(p));
  Response resp{};
  resp.failed_over = true;
  return resp;
}

Response PartitionSet::call_leased(std::uint32_t p, std::uint32_t slot,
                                   const Request& r) {
  NmpCore& core = *cores_[p];
  const auto part = static_cast<std::int16_t>(p);
  const auto op = static_cast<std::uint8_t>(r.op);
  const std::uint64_t t0 = r.trace_id ? telemetry::now_ns() : 0;
  core.post(slot, r);
  trace::record_span(r.trace_id, trace::Phase::kPublish, t0,
                     r.trace_id ? telemetry::now_ns() : 0, op, part);
  PubSlot& s = core.slot(slot);
  // Host takeover: drive combiner passes ourselves under the lease lock
  // until our response lands. The pass serves every pending slot, ours
  // included, so concurrent leased callers make progress for each other.
  // If the supervisor hands the lane back to a combiner meanwhile (it holds
  // the lease across that transition and we re-check under the lock), fall
  // back to the ordinary bounded wait.
  while (!s.done()) {
    if (lane(p) != kLeased) {
      core.wait_done(slot);
      break;
    }
    if (lease_mu_[p].try_lock()) {
      if (lane(p) == kLeased) core.drive_pass();
      lease_mu_[p].unlock();
    } else {
      std::this_thread::yield();
    }
  }
  trace::record_span(r.trace_id, trace::Phase::kWake, s.done_ns,
                     r.trace_id ? telemetry::now_ns() : 0, op, part);
  return s.take();
}

OpHandle PartitionSet::call_async(std::uint32_t p, std::uint32_t thread_id,
                                  const Request& r) {
  // No async path across a failover: a fenced lane has no server and a
  // leased lane would require the poller to drive passes. Callers fall back
  // to the blocking call, which bounces or leases as appropriate.
  const LaneState ls = lane(p);
  if (ls == kFenced || ls == kLeased) {
    async_rejected_->inc();
    return OpHandle{};
  }
  auto& busy = async_busy_[p];
  const std::uint32_t base = thread_base(thread_id);
  for (std::uint32_t i = 1; i <= config_.slots_per_thread; ++i) {
    if (!busy[base + i]) {
      busy[base + i] = 1;
      const std::uint64_t t0 = r.trace_id ? telemetry::now_ns() : 0;
      cores_[p]->post(base + i, r);
      trace::record_span(r.trace_id, trace::Phase::kPublish, t0,
                         r.trace_id ? telemetry::now_ns() : 0,
                         static_cast<std::uint8_t>(r.op),
                         static_cast<std::int16_t>(p));
      calls_async_->inc();
      if constexpr (telemetry::kEnabled) {
        // In-flight depth of this thread's window against partition p,
        // including the post we just made (only the owner writes `busy`).
        std::uint32_t depth = 0;
        for (std::uint32_t j = 1; j <= config_.slots_per_thread; ++j) {
          depth += busy[base + j];
        }
        async_inflight_->record(depth);
      }
      return OpHandle{p, base + i, true};
    }
  }
  async_rejected_->inc();
  return OpHandle{};
}

bool PartitionSet::poll(const OpHandle& h) {
  assert(h.valid);
  return cores_[h.partition]->slot(h.slot).done();
}

Response PartitionSet::retrieve(const OpHandle& h) {
  assert(h.valid);
  NmpCore& core = *cores_[h.partition];
  core.wait_done(h.slot);
  PubSlot& s = core.slot(h.slot);
  // Read the trace fields before take() releases the slot for re-posting.
  // req is safe to read here: the combiner stopped touching the slot at its
  // kDone store, and only this (owning) thread can recycle it.
  trace::record_span(s.req.trace_id, trace::Phase::kWake, s.done_ns,
                     s.req.trace_id ? telemetry::now_ns() : 0,
                     static_cast<std::uint8_t>(s.req.op),
                     static_cast<std::int16_t>(h.partition));
  Response r = s.take();
  async_busy_[h.partition][h.slot] = 0;
  return r;
}

}  // namespace hybrids::nmp
