#include "hybrids/nmp/partition_set.hpp"

#include <cassert>

namespace hybrids::nmp {

PartitionSet::PartitionSet(const PartitionConfig& config) : config_(config) {
  assert(config_.partitions > 0);
  assert(config_.partition_width > 0);
  const std::uint32_t slots =
      config_.max_threads * (1 + config_.slots_per_thread);
  cores_.reserve(config_.partitions);
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    cores_.push_back(std::make_unique<NmpCore>(p, slots, NmpCore::Handler{}));
  }
  async_busy_.assign(config_.partitions, std::vector<std::uint8_t>(slots, 0));
  namespace tn = telemetry::names;
  calls_blocking_ = &telemetry::counter(tn::kCallBlocking);
  calls_async_ = &telemetry::counter(tn::kCallAsync);
  async_rejected_ = &telemetry::counter(tn::kAsyncRejected);
  async_inflight_ = &telemetry::latency(tn::kAsyncInflight);
}

PartitionSet::~PartitionSet() { stop(); }

void PartitionSet::set_handler(std::uint32_t p, NmpCore::Handler handler) {
  assert(!started_);
  // Rebuild the core with the handler installed (cores are cheap pre-start).
  const std::uint32_t slots = cores_[p]->slot_count();
  cores_[p] = std::make_unique<NmpCore>(p, slots, std::move(handler));
}

void PartitionSet::start() {
  if (started_) return;
  started_ = true;
  for (auto& c : cores_) c->start();
}

void PartitionSet::stop() {
  if (!started_) return;
  for (auto& c : cores_) c->stop();
  started_ = false;
}

Response PartitionSet::call(std::uint32_t p, std::uint32_t thread_id,
                            const Request& r) {
  NmpCore& core = *cores_[p];
  const std::uint32_t slot = thread_base(thread_id);
  calls_blocking_->inc();
  core.post(slot, r);
  core.wait_done(slot);
  return core.slot(slot).take();
}

OpHandle PartitionSet::call_async(std::uint32_t p, std::uint32_t thread_id,
                                  const Request& r) {
  auto& busy = async_busy_[p];
  const std::uint32_t base = thread_base(thread_id);
  for (std::uint32_t i = 1; i <= config_.slots_per_thread; ++i) {
    if (!busy[base + i]) {
      busy[base + i] = 1;
      cores_[p]->post(base + i, r);
      calls_async_->inc();
      if constexpr (telemetry::kEnabled) {
        // In-flight depth of this thread's window against partition p,
        // including the post we just made (only the owner writes `busy`).
        std::uint32_t depth = 0;
        for (std::uint32_t j = 1; j <= config_.slots_per_thread; ++j) {
          depth += busy[base + j];
        }
        async_inflight_->record(depth);
      }
      return OpHandle{p, base + i, true};
    }
  }
  async_rejected_->inc();
  return OpHandle{};
}

bool PartitionSet::poll(const OpHandle& h) {
  assert(h.valid);
  return cores_[h.partition]->slot(h.slot).done();
}

Response PartitionSet::retrieve(const OpHandle& h) {
  assert(h.valid);
  NmpCore& core = *cores_[h.partition];
  core.wait_done(h.slot);
  Response r = core.slot(h.slot).take();
  async_busy_[h.partition][h.slot] = 0;
  return r;
}

}  // namespace hybrids::nmp
