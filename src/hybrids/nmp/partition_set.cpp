#include "hybrids/nmp/partition_set.hpp"

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>

#include "hybrids/trace/trace.hpp"

namespace hybrids::nmp {

namespace {
void validate_config(const PartitionConfig& c) {
  std::string bad;
  auto require = [&](bool ok, const char* field) {
    if (!ok) {
      if (!bad.empty()) bad += ", ";
      bad += field;
    }
  };
  require(c.partitions > 0, "partitions");
  require(c.partition_width > 0, "partition_width");
  require(c.max_threads > 0, "max_threads");
  require(c.slots_per_thread > 0, "slots_per_thread");
  if (!bad.empty()) {
    throw std::invalid_argument(
        "PartitionConfig: " + bad +
        " must be nonzero (partition_of divides keys by partition_width; "
        "slot layout needs at least one thread with one async slot)");
  }
}
}  // namespace

PartitionSet::PartitionSet(const PartitionConfig& config) : config_(config) {
  validate_config(config_);
  const std::uint32_t slots =
      config_.max_threads * (1 + config_.slots_per_thread);
  cores_.reserve(config_.partitions);
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    cores_.push_back(std::make_unique<NmpCore>(p, slots, NmpCore::Handler{}));
  }
  batch_handlers_.resize(config_.partitions);
  async_busy_.assign(config_.partitions, std::vector<std::uint8_t>(slots, 0));
  watch_.assign(config_.partitions, WatchState{});
  degraded_ = std::make_unique<std::atomic<bool>[]>(config_.partitions);
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    degraded_[p].store(false, std::memory_order_relaxed);
  }
  namespace tn = telemetry::names;
  watchdog_fired_.reserve(config_.partitions);
  degraded_counter_.reserve(config_.partitions);
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    const auto scope = static_cast<std::int32_t>(p);
    watchdog_fired_.push_back(&telemetry::counter(tn::kWatchdogFired, scope));
    degraded_counter_.push_back(
        &telemetry::counter(tn::kPartitionDegraded, scope));
  }
  calls_blocking_ = &telemetry::counter(tn::kCallBlocking);
  calls_async_ = &telemetry::counter(tn::kCallAsync);
  async_rejected_ = &telemetry::counter(tn::kAsyncRejected);
  async_inflight_ = &telemetry::latency(tn::kAsyncInflight);
}

PartitionSet::~PartitionSet() { stop(); }

void PartitionSet::set_handler(std::uint32_t p, NmpCore::Handler handler) {
  assert(!started_);
  // Rebuild the core with the handler installed (cores are cheap pre-start),
  // then re-apply any batch handler the rebuild discarded.
  const std::uint32_t slots = cores_[p]->slot_count();
  cores_[p] = std::make_unique<NmpCore>(p, slots, std::move(handler));
  if (batch_handlers_[p]) cores_[p]->set_batch_handler(batch_handlers_[p]);
}

void PartitionSet::set_batch_handler(std::uint32_t p,
                                     NmpCore::BatchHandler handler) {
  assert(!started_);
  batch_handlers_[p] = std::move(handler);
  cores_[p]->set_batch_handler(batch_handlers_[p]);
}

void PartitionSet::start() {
  if (started_) return;
  started_ = true;
  for (auto& c : cores_) c->start();
  if (config_.watchdog_interval_ms > 0) {
    watchdog_stop_ = false;
    watch_.assign(config_.partitions, WatchState{});
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

void PartitionSet::stop() {
  if (!started_) return;
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
  for (auto& c : cores_) c->stop();
  started_ = false;
}

void PartitionSet::watchdog_loop() {
  std::unique_lock<std::mutex> lk(watchdog_mu_);
  const auto interval =
      std::chrono::milliseconds(config_.watchdog_interval_ms);
  while (!watchdog_cv_.wait_for(lk, interval, [this] { return watchdog_stop_; })) {
    for (std::uint32_t p = 0; p < config_.partitions; ++p) {
      NmpCore& core = *cores_[p];
      // Read served before posted: if the core caught up in between we see
      // served >= posted and correctly count it as progress.
      const std::uint64_t served = core.served();
      const std::uint64_t posted = core.posted();
      WatchState& w = watch_[p];
      const bool outstanding = posted > served;
      const bool stalled = outstanding && served == w.last_served;
      if (stalled) {
        // Missed heartbeat: re-wake the combiner (recovers lost wakeups and
        // nudges a descheduled thread) and escalate after K misses.
        watchdog_fired_[p]->inc();
        core.kick();
        if (++w.misses == config_.watchdog_misses_to_degrade) {
          degraded_[p].store(true, std::memory_order_release);
          degraded_counter_[p]->inc();
        }
      } else {
        w.misses = 0;
        degraded_[p].store(false, std::memory_order_release);
      }
      w.last_served = served;
    }
  }
}

Response PartitionSet::call(std::uint32_t p, std::uint32_t thread_id,
                            const Request& r) {
  NmpCore& core = *cores_[p];
  const std::uint32_t slot = thread_base(thread_id);
  calls_blocking_->inc();
  const auto part = static_cast<std::int16_t>(p);
  const auto op = static_cast<std::uint8_t>(r.op);
  const std::uint64_t t0 = r.trace_id ? telemetry::now_ns() : 0;
  core.post(slot, r);
  trace::record_span(r.trace_id, trace::Phase::kPublish, t0,
                     r.trace_id ? telemetry::now_ns() : 0, op, part);
  core.wait_done(slot);
  PubSlot& s = core.slot(slot);
  // done_ns was plain-written by the combiner before its kDone release
  // store, which wait_done's acquire load synchronized with.
  trace::record_span(r.trace_id, trace::Phase::kWake, s.done_ns,
                     r.trace_id ? telemetry::now_ns() : 0, op, part);
  return s.take();
}

OpHandle PartitionSet::call_async(std::uint32_t p, std::uint32_t thread_id,
                                  const Request& r) {
  auto& busy = async_busy_[p];
  const std::uint32_t base = thread_base(thread_id);
  for (std::uint32_t i = 1; i <= config_.slots_per_thread; ++i) {
    if (!busy[base + i]) {
      busy[base + i] = 1;
      const std::uint64_t t0 = r.trace_id ? telemetry::now_ns() : 0;
      cores_[p]->post(base + i, r);
      trace::record_span(r.trace_id, trace::Phase::kPublish, t0,
                         r.trace_id ? telemetry::now_ns() : 0,
                         static_cast<std::uint8_t>(r.op),
                         static_cast<std::int16_t>(p));
      calls_async_->inc();
      if constexpr (telemetry::kEnabled) {
        // In-flight depth of this thread's window against partition p,
        // including the post we just made (only the owner writes `busy`).
        std::uint32_t depth = 0;
        for (std::uint32_t j = 1; j <= config_.slots_per_thread; ++j) {
          depth += busy[base + j];
        }
        async_inflight_->record(depth);
      }
      return OpHandle{p, base + i, true};
    }
  }
  async_rejected_->inc();
  return OpHandle{};
}

bool PartitionSet::poll(const OpHandle& h) {
  assert(h.valid);
  return cores_[h.partition]->slot(h.slot).done();
}

Response PartitionSet::retrieve(const OpHandle& h) {
  assert(h.valid);
  NmpCore& core = *cores_[h.partition];
  core.wait_done(h.slot);
  PubSlot& s = core.slot(h.slot);
  // Read the trace fields before take() releases the slot for re-posting.
  // req is safe to read here: the combiner stopped touching the slot at its
  // kDone store, and only this (owning) thread can recycle it.
  trace::record_span(s.req.trace_id, trace::Phase::kWake, s.done_ns,
                     s.req.trace_id ? telemetry::now_ns() : 0,
                     static_cast<std::uint8_t>(s.req.op),
                     static_cast<std::int16_t>(h.partition));
  Response r = s.take();
  async_busy_[h.partition][h.slot] = 0;
  return r;
}

}  // namespace hybrids::nmp
