#include "hybrids/nmp/fault.hpp"

#if defined(HYBRIDS_FAULTS)

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "hybrids/telemetry/registry.hpp"

namespace hybrids::nmp::fault {

namespace {

// Streams per kind. A combiner-side kind indexed by partition id gets a
// private deterministic ticket sequence as long as partitions < kStreams;
// host-side streams fold together, which only mixes their tickets, not the
// per-seed reproducibility of the rate.
constexpr std::uint32_t kStreams = 16;

struct State {
  Config config;
  std::atomic<bool> armed{false};
  std::atomic<std::uint64_t> tickets[kKindCount][kStreams];
  // Resolved once at arm() time so fire() never touches the registry map.
  telemetry::Counter* injected[kKindCount] = {};
};

State& state() {
  static State s;
  return s;
}

std::uint64_t mix(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

void FaultInjector::arm(const Config& config) {
  State& s = state();
  s.armed.store(false, std::memory_order_release);
  s.config = config;
  for (std::size_t k = 0; k < kKindCount; ++k) {
    for (auto& t : s.tickets[k]) t.store(0, std::memory_order_relaxed);
    s.injected[k] = &telemetry::counter(
        std::string(telemetry::names::kFaultInjectedPrefix) +
        kind_name(static_cast<Kind>(k)));
  }
  s.armed.store(true, std::memory_order_release);
}

void FaultInjector::disarm() {
  state().armed.store(false, std::memory_order_release);
}

bool FaultInjector::armed() noexcept {
  return state().armed.load(std::memory_order_acquire);
}

bool FaultInjector::fire(Kind k, std::uint32_t stream) noexcept {
  State& s = state();
  if (!s.armed.load(std::memory_order_acquire)) return false;
  const auto kind = static_cast<std::size_t>(k);
  const double p = s.config.probability[kind];
  if (p <= 0.0) return false;
  const std::uint32_t lane = stream % kStreams;
  const std::uint64_t ticket =
      s.tickets[kind][lane].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h =
      mix(s.config.seed ^ (0x9E3779B97F4A7C15ULL * (kind + 1)) ^
          (static_cast<std::uint64_t>(lane) << 56) ^ ticket);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= p) return false;
  s.injected[kind]->inc();
  return true;
}

void FaultInjector::sleep_for(Kind k) noexcept {
  const State& s = state();
  const std::uint32_t us =
      k == Kind::kCombinerStall ? s.config.stall_us : s.config.delay_us;
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace hybrids::nmp::fault

#endif  // HYBRIDS_FAULTS
