#include "hybrids/nmp/nmp_core.hpp"

#include <cassert>

#include "hybrids/util/backoff.hpp"

namespace hybrids::nmp {

NmpCore::NmpCore(std::uint32_t id, std::uint32_t slot_count, Handler handler)
    : id_(id), handler_(std::move(handler)) {
  assert(slot_count > 0);
  slots_ = std::vector<util::CacheAligned<PubSlot>>(slot_count);
}

NmpCore::~NmpCore() { stop(); }

void NmpCore::start() {
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

void NmpCore::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  pending_.fetch_add(1, std::memory_order_release);
  pending_.notify_one();
  thread_.join();
  started_ = false;
}

void NmpCore::post(std::uint32_t index, const Request& r) {
  slots_[index]->post(r);
  pending_.fetch_add(1, std::memory_order_release);
  pending_.notify_one();
}

void NmpCore::wait_done(std::uint32_t index) {
  PubSlot& s = *slots_[index];
  util::Backoff backoff;
  for (int i = 0; i < 128; ++i) {
    if (s.done()) return;
    backoff.spin();
  }
  // Fall back to futex parking; the combiner notifies on completion.
  std::uint32_t observed = s.status.load(std::memory_order_acquire);
  while (observed != PubSlot::kDone) {
    s.status.wait(observed, std::memory_order_acquire);
    observed = s.status.load(std::memory_order_acquire);
  }
}

void NmpCore::run() {
  // Flat-combining loop: repeatedly scan the publication list in slot order
  // and serve pending requests. The NMP core is the *only* thread that runs
  // handler_, so everything it touches in the partition is race-free.
  while (true) {
    const std::uint64_t seen = pending_.load(std::memory_order_acquire);
    bool any = false;
    for (auto& wrapped : slots_) {
      PubSlot& s = *wrapped;
      if (s.status.load(std::memory_order_acquire) == PubSlot::kPending) {
        handler_(s.req, s.resp);
        s.status.store(PubSlot::kDone, std::memory_order_release);
        s.status.notify_all();
        served_.fetch_add(1, std::memory_order_relaxed);
        any = true;
      }
    }
    if (any) continue;
    if (stop_.load(std::memory_order_acquire)) {
      // One final scan already found nothing; safe to exit only if no new
      // posts arrived after we observed `seen`.
      if (pending_.load(std::memory_order_acquire) == seen) return;
      continue;
    }
    idle_passes_.fetch_add(1, std::memory_order_relaxed);
    // Park until someone posts (or stop() bumps the counter).
    pending_.wait(seen, std::memory_order_acquire);
  }
}

}  // namespace hybrids::nmp
