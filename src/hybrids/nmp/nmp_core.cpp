#include "hybrids/nmp/nmp_core.hpp"

#include <algorithm>
#include <cassert>

#include "hybrids/mem/memlayer.hpp"
#include "hybrids/nmp/fault.hpp"
#include "hybrids/trace/trace.hpp"
#include "hybrids/util/backoff.hpp"
#include "hybrids/util/futex.hpp"

namespace hybrids::nmp {

namespace {
// Bounded-wait window: how long a waiter parks before it re-notifies the
// combiner's pending counter. Long enough that the fault-free path never
// expires in practice (a combiner pass is microseconds), short enough that
// recovery from a lost wakeup is prompt.
constexpr std::chrono::milliseconds kWaitWindow{2};
}  // namespace

NmpCore::NmpCore(std::uint32_t id, std::uint32_t slot_count, Handler handler)
    : id_(id), handler_(std::move(handler)) {
  assert(slot_count > 0);
  slots_ = std::vector<util::CacheAligned<PubSlot>>(slot_count);
  const auto p = static_cast<std::int32_t>(id_);
  namespace tn = telemetry::names;
  metrics_.served_total = &telemetry::counter(tn::kServedTotal, p);
  for (std::size_t op = 0; op < kOpCodeCount; ++op) {
    metrics_.served_op[op] = &telemetry::counter(
        std::string(tn::kServedPrefix) + op_code_name(static_cast<OpCode>(op)),
        p);
  }
  metrics_.park = &telemetry::counter(tn::kParkTotal, p);
  metrics_.wake = &telemetry::counter(tn::kWakeTotal, p);
  metrics_.wait_timeout = &telemetry::counter(tn::kWaitTimeoutTotal, p);
  metrics_.queue_wait = &telemetry::latency(tn::kQueueWaitNs, p);
  metrics_.service = &telemetry::latency(tn::kServiceNs, p);
  metrics_.occupancy = &telemetry::latency(tn::kScanOccupancy, p);
  metrics_.batch = &telemetry::latency(tn::kCombinerBatch, p);
  metrics_.batch_size = &telemetry::latency(tn::kBatchSize, p);
  metrics_.trace_queue_wait = &telemetry::counter(tn::kTraceQueueWaitNs, p);
  metrics_.trace_service = &telemetry::counter(tn::kTraceServiceNs, p);
}

NmpCore::~NmpCore() { stop(); }

void NmpCore::set_batch_handler(BatchHandler handler) {
  assert(!started_);
  batch_handler_ = std::move(handler);
}

void NmpCore::start() {
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  // A respawn after try_reap() relaunches over the same slots/partition
  // state; the new thread captures the *current* fence epoch in run().
  exited_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

void NmpCore::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  pending_.fetch_add(1, std::memory_order_release);
  pending_.notify_one();
  metrics_.wake->inc();
  thread_.join();
  started_ = false;
}

void NmpCore::post(std::uint32_t index, const Request& r) {
  slots_[index]->post(r);
  // The release fetch_add orders after the slot's kPending store; see the
  // protocol comment in publication.hpp.
  pending_.fetch_add(1, std::memory_order_release);
  posts_.fetch_add(1, std::memory_order_relaxed);
  // Fault hook: a lost wakeup drops the futex notify (the doorbell) but not
  // the counter bump. A parked combiner stays parked until a bounded waiter
  // or the watchdog re-notifies — exactly the recovery paths under test.
  if (!fault::FaultInjector::fire(fault::Kind::kLostWakeup, id_)) {
    pending_.notify_one();
    metrics_.wake->inc();
  }
  telemetry::counter(telemetry::names::kOffloadPosted).add();
}

void NmpCore::kick() {
  // Waking on the current counter value: any parked combiner re-checks its
  // `seen` snapshot against the live counter and re-scans if they differ.
  pending_.notify_all();
  metrics_.wake->inc();
}

void NmpCore::fence_raise() {
  fence_.fetch_add(1, std::memory_order_release);
  // A parked combiner sits in pending_.wait(seen); a bare notify cannot wake
  // it if the counter value is unchanged, so bump it too. The woken thread
  // re-runs the pass top, sees the stale epoch, and exits.
  pending_.fetch_add(1, std::memory_order_release);
  pending_.notify_all();
  metrics_.wake->inc();
}

bool NmpCore::try_reap() {
  if (!started_) return false;
  if (!exited_.load(std::memory_order_acquire)) return false;
  thread_.join();
  started_ = false;
  return true;
}

std::uint32_t NmpCore::drive_pass() {
  std::vector<Picked> picked;
  std::vector<BatchOp> batch;
  picked.reserve(slots_.size());
  batch.reserve(slots_.size());
  // The lease driver runs under the *current* epoch: the fence only moves
  // when the supervisor hands ownership over, never while a lease pass is
  // in flight (the supervisor serializes on the lease lock).
  return scan_and_serve(picked, batch,
                        fence_.load(std::memory_order_acquire));
}

void NmpCore::wait_done(std::uint32_t index) {
  // Unbounded overall, but composed of bounded windows so a lost wakeup is
  // recovered instead of hanging the host thread forever.
  while (!wait_done_for(index, kWaitWindow)) {
  }
}

bool NmpCore::wait_done_for(std::uint32_t index,
                            std::chrono::nanoseconds timeout) {
  PubSlot& s = *slots_[index];
  util::Backoff backoff;
  for (int i = 0; i < 128; ++i) {
    if (s.done()) return true;
    backoff.spin();
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const std::uint32_t observed = s.status.load(std::memory_order_acquire);
    if (observed == PubSlot::kDone) return true;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      metrics_.wait_timeout->inc();
      kick();
      return s.done();
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::nanoseconds>(deadline - now);
    const auto window = remaining < kWaitWindow
                            ? remaining
                            : std::chrono::nanoseconds(kWaitWindow);
    if (!util::timed_wait(s.status, observed, window)) {
      // Window expired with the slot still pending: recover a possibly lost
      // combiner wakeup by re-notifying the pending counter.
      metrics_.wait_timeout->inc();
      kick();
    }
  }
}

void NmpCore::complete(const Picked& picked, std::uint64_t service_ns,
                       std::uint64_t epoch) {
  PubSlot& s = *picked.slot;
  // Fault hook: delayed response between handler and completion store.
  fault::maybe_stall(fault::Kind::kDelayedResponse, id_);
  // Fence check: this incarnation was fenced mid-pass, making it a zombie.
  // The op already ran, so the reply must still reach the host — dropping it
  // would turn the supervisor's failed_over bounce into a retry of an
  // already-applied op (double execution on a false-positive fence of a
  // live-but-slow combiner). Delivery is safe because the supervisor only
  // bounces after try_reap() joins this thread: a CAS that wins here is
  // ordered before any takeover. A lost CAS means the slot was already
  // bounced or reclaimed by its new owner — that late reply is rejected
  // (dropped) rather than overwriting protocol state that is no longer ours.
  // (Defense in depth: with the join gate the lost-CAS arm is unreachable.)
  if (fence_.load(std::memory_order_acquire) != epoch) {
    std::uint32_t expected = PubSlot::kPending;
    if (s.status.compare_exchange_strong(expected, PubSlot::kDone,
                                         std::memory_order_acq_rel)) {
      s.status.notify_all();
      served_.fetch_add(1, std::memory_order_relaxed);
      if constexpr (telemetry::kEnabled) metrics_.served_total->inc();
    }
    return;
  }
  std::uint64_t done = 0;
  if constexpr (trace::kCompiledIn) {
    if (picked.trace_id != 0) {
      // Plain-written before the kDone release store so the host's acquire
      // load may read it (kWake phase), exactly like `resp`.
      done = telemetry::now_ns();
      s.done_ns = done;
    }
  }
  s.status.store(PubSlot::kDone, std::memory_order_release);
  s.status.notify_all();
  served_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (telemetry::kEnabled) {
    metrics_.queue_wait->record(
        static_cast<double>(picked.pickup_ns - picked.posted_ns));
    metrics_.service->record(static_cast<double>(service_ns));
    metrics_.served_total->inc();
    if (picked.op < kOpCodeCount) metrics_.served_op[picked.op]->inc();
  }
  if constexpr (trace::kCompiledIn) {
    if (picked.trace_id != 0) {
      // Combiner-side phases, recorded from captured values only (the host
      // may already have re-posted the slot). kQueueWait + kApply + kReply
      // tile [posted_ns, done] exactly; for a batched op the amortized
      // apply span starts at pickup, so the sort window overlaps it.
      const auto op = static_cast<std::uint8_t>(picked.op);
      const auto part = static_cast<std::int16_t>(id_);
      const std::uint32_t track = trace::kCombinerTrackBase + id_;
      trace::record_span(picked.trace_id, trace::Phase::kQueueWait,
                         picked.posted_ns, picked.pickup_ns, op, part, 0,
                         track);
      trace::record_span(picked.trace_id, trace::Phase::kApply,
                         picked.pickup_ns, picked.pickup_ns + service_ns, op,
                         part, 0, track);
      trace::record_span(picked.trace_id, trace::Phase::kReply,
                         picked.pickup_ns + service_ns, done, op, part, 0,
                         track);
      // Attribution feed for ext_adaptive_skew / the adaptive-split loop:
      // how much of the traced ops' offloaded time this partition spent
      // queueing vs. serving.
      metrics_.trace_queue_wait->add(picked.pickup_ns - picked.posted_ns);
      metrics_.trace_service->add(service_ns);
    }
  }
}

void NmpCore::run() {
  // Flat-combining loop: repeatedly scan the publication list in slot order
  // and serve pending requests. The NMP core is the *only* thread that runs
  // handler_ / batch_handler_, so everything they touch in the partition is
  // race-free.
  std::vector<Picked> picked;
  std::vector<BatchOp> batch;
  picked.reserve(slots_.size());
  batch.reserve(slots_.size());
  // This incarnation is valid only for the fence epoch it was born under;
  // a raised fence (failover) retires it at the next pass top.
  const std::uint64_t epoch = fence_.load(std::memory_order_acquire);
  while (true) {
    if (fence_.load(std::memory_order_acquire) != epoch) break;
    // Lifecycle fault hooks: abort kills this thread outright; wedge pins it
    // at the pass top — runnable but not serving — until it is fenced (or
    // the core is stopped, so an unfenced wedge cannot hang shutdown).
    if (fault::kCompiledIn && fault::FaultInjector::armed()) {
      if (fault::FaultInjector::fire(fault::Kind::kCombinerAbort, id_)) break;
      if (fault::FaultInjector::fire(fault::Kind::kCombinerWedge, id_)) {
        while (fence_.load(std::memory_order_acquire) == epoch &&
               !stop_.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        continue;  // pass top re-checks: fence -> exit, stop -> drain
      }
    }
    // Fault hook: a stalled combiner sleeps before scanning, starving its
    // partition for the stall window (watchdog territory).
    fault::maybe_stall(fault::Kind::kCombinerStall, id_);
    const std::uint64_t seen = pending_.load(std::memory_order_acquire);
    const std::uint32_t served_this_pass = scan_and_serve(picked, batch, epoch);
    if (served_this_pass > 0) {
      if constexpr (telemetry::kEnabled) {
        metrics_.batch->record(served_this_pass);
      }
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // One final scan already found nothing; safe to exit only if no new
      // posts arrived after we observed `seen`.
      if (pending_.load(std::memory_order_acquire) == seen) break;
      continue;
    }
    idle_passes_.fetch_add(1, std::memory_order_relaxed);
    metrics_.park->inc();
    // Park until someone posts (or stop()/fence_raise() bumps the counter).
    pending_.wait(seen, std::memory_order_acquire);
  }
  // Last store of the service loop: after this, try_reap()'s join cannot
  // block more than the time it takes the thread to unwind.
  exited_.store(true, std::memory_order_release);
}

std::uint32_t NmpCore::scan_and_serve(std::vector<Picked>& picked,
                                      std::vector<BatchOp>& batch,
                                      std::uint64_t epoch) {
  if constexpr (telemetry::kEnabled) {
    // Publication-slot occupancy at scan time, observed before serving
    // (relaxed loads; the serving pass below re-checks with acquire).
    std::uint32_t occupied = 0;
    for (auto& wrapped : slots_) {
      occupied += wrapped->status.load(std::memory_order_relaxed) ==
                  PubSlot::kPending;
    }
    if (occupied > 0) metrics_.occupancy->record(occupied);
  }
  // Collection: pick up every kPending slot. Request metadata is captured
  // here, before any kDone store — once a slot is done its owning host
  // thread may take() and re-post, overwriting req/posted_ns concurrently.
  // A request stays exclusively combiner-owned from this acquire load
  // until its own completion store, so batch sorting and the batch handler
  // may read it with plain accesses.
  std::uint32_t served_this_pass = 0;
  picked.clear();
  for (std::size_t si = 0; si < slots_.size(); ++si) {
    PubSlot& s = *slots_[si];
    // Slots are cache-aligned and contiguous: pull the next slot's status
    // line in while this one's pending check (and possible pickup) runs.
    if (si + 1 < slots_.size()) {
      mem::prefetch_read(&slots_[si + 1]->status);
    }
    if (s.status.load(std::memory_order_acquire) != PubSlot::kPending) {
      continue;
    }
    const std::uint64_t t0 = telemetry::now_ns();
    Picked p{&s, t0, s.posted_ns, static_cast<std::size_t>(s.req.op),
             s.req.trace_id};
    // Fault hooks: spurious protocol responses are injected *instead of*
    // running the handler, so no partition state changes and the host's
    // mandated recovery (retry / LOCK_PATH fallback) re-executes the
    // operation from scratch — linearizability is preserved by
    // construction. Spurious lock_path is only meaningful for inserts
    // (the only op the host protocol answers with an escalation).
    // RESUME_INSERT / UNLOCK_PATH are exempt: they complete an escalation
    // whose NMP path is genuinely locked, so swallowing them would leave
    // the partition wedged forever rather than exercising a retry path.
    bool injected = false;
    const bool injectable = s.req.op != OpCode::kResumeInsert &&
                            s.req.op != OpCode::kUnlockPath;
    if (fault::kCompiledIn && injectable && fault::FaultInjector::armed()) {
      if (fault::FaultInjector::fire(fault::Kind::kSpuriousRetry, id_)) {
        s.resp.retry = true;
        injected = true;
      } else if (s.req.op == OpCode::kInsert &&
                 fault::FaultInjector::fire(fault::Kind::kSpuriousLockPath,
                                            id_)) {
        s.resp.lock_path = true;
        s.resp.node = nullptr;
        injected = true;
      }
    }
    if (injected) {
      // Injected responses complete immediately (no handler ran).
      complete(p, 0, epoch);
      ++served_this_pass;
    } else {
      picked.push_back(p);
    }
  }
  if (batch_handler_ && picked.size() > 1) {
    // Batch apply: sort the collected requests by key (stable, so equal
    // keys keep publication-list order), hand the whole span to the batch
    // handler, then publish completions in original slot order. Hosts see
    // exactly the one-at-a-time protocol; only the apply order inside the
    // pass changes, which is a valid linearization of concurrent ops.
    batch.clear();
    std::uint64_t traced_id = 0;
    for (const Picked& p : picked) {
      batch.push_back(BatchOp{&p.slot->req, &p.slot->resp});
      if (traced_id == 0) traced_id = p.trace_id;
    }
    // Sort window for the trace: attributed to the batch's first traced
    // op (the sort serves the whole batch; one span stands in for it).
    const std::uint64_t sort0 = traced_id ? telemetry::now_ns() : 0;
    // Equal keys tiebreak on the request address: ops were collected in
    // slot-index order and slots live in one array, so pointer order IS
    // publication-list order. This keeps the sort stable without
    // std::stable_sort's per-call temp-buffer allocation (combiner passes
    // are often only a handful of ops).
    std::sort(batch.begin(), batch.end(),
              [](const BatchOp& a, const BatchOp& b) {
                return a.req->key != b.req->key ? a.req->key < b.req->key
                                                : a.req < b.req;
              });
    const std::uint64_t apply0 = telemetry::now_ns();
    trace::record_span(traced_id, trace::Phase::kBatchSort, sort0, apply0,
                       0, static_cast<std::int16_t>(id_), 0,
                       trace::kCombinerTrackBase + id_);
    batch_handler_(batch.data(), batch.size());
    // Per-op service time is the batch apply amortized over its size —
    // the quantity the finger is meant to shrink.
    const std::uint64_t per_op =
        (telemetry::now_ns() - apply0) / picked.size();
    if constexpr (telemetry::kEnabled) {
      metrics_.batch_size->record(static_cast<double>(picked.size()));
    }
    for (const Picked& p : picked) complete(p, per_op, epoch);
    served_this_pass += static_cast<std::uint32_t>(picked.size());
  } else {
    for (const Picked& p : picked) {
      const std::uint64_t h0 = telemetry::now_ns();
      handler_(p.slot->req, p.slot->resp);
      complete(p, telemetry::now_ns() - h0, epoch);
      ++served_this_pass;
    }
  }
  return served_this_pass;
}

}  // namespace hybrids::nmp
