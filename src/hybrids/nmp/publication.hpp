// Publication-list protocol between host threads and NMP cores (§3.2).
//
// A host thread offloads an operation by filling its assigned slot in the
// target NMP core's publication list (in hardware: an 8kB region of the NMP
// core's scratchpad memory-mapped into the host address space) and raising
// the valid flag. The NMP core — the flat-combining combiner for its
// partition — scans the list, applies requests one at a time against its
// exclusively-owned partition, writes the response back into the slot, and
// clears the valid flag.
//
// Request fields mirror the paper's slot layout: lookup key (4B), associated
// value (4B), begin-NMP-traversal node pointer, operation type, valid flag —
// plus an auxiliary word used by the hybrid structures (skiplist: tower
// height & host node pointer; B+ tree: offloaded parent sequence number).
// Response fields: retry flag, success flag, read value, created-node
// pointer, plus the B+ tree's LOCK_PATH escalation flag.
#pragma once

#include <atomic>
#include <cstdint>

#include "hybrids/nmp/fault.hpp"
#include "hybrids/telemetry/counters.hpp"
#include "hybrids/types.hpp"
#include "hybrids/util/cache_aligned.hpp"

namespace hybrids::nmp {

using hybrids::Key;
using hybrids::Value;

/// Operation codes carried in a publication slot. kRead..kRemove are the
/// data structure operations; kResumeInsert / kUnlockPath are the hybrid
/// B+ tree's second-phase control commands (§3.4); kScan is one chunk of a
/// host-stitched range scan (see the field mapping below); kNop lets tests
/// exercise the transport alone.
enum class OpCode : std::uint8_t {
  kRead,
  kUpdate,
  kInsert,
  kRemove,
  kResumeInsert,
  kUnlockPath,
  kPromote,  // adaptive extension (§7): raise a hot key into the host portion
  kScan,     // partition-local range-scan chunk (up to kScanChunk entries)
  kNop,
};

/// Number of opcodes. Sized from the enum so per-op telemetry arrays
/// (NmpCore::Metrics::served_op and the simulator's equivalent) can never
/// silently drop a newly added opcode.
inline constexpr std::size_t kOpCodeCount =
    static_cast<std::size_t>(OpCode::kNop) + 1;

/// Human-readable opcode name, used as the suffix of the per-op telemetry
/// counters (`served_<name>`) by both the real runtime and the simulator.
inline const char* op_code_name(OpCode op) noexcept {
  switch (op) {
    case OpCode::kRead: return "read";
    case OpCode::kUpdate: return "update";
    case OpCode::kInsert: return "insert";
    case OpCode::kRemove: return "remove";
    case OpCode::kResumeInsert: return "resume_insert";
    case OpCode::kUnlockPath: return "unlock_path";
    case OpCode::kPromote: return "promote";
    case OpCode::kScan: return "scan";
    case OpCode::kNop: return "nop";
  }
  return "unknown";
}

/// Maximum number of ScanEntry pairs one kScan slot round-trip returns (the
/// per-chunk cap, sized so a chunk stays within one publication-slot-sized
/// transfer of the NMP core's scratchpad). Longer scans continue from the
/// response's continuation key; scans that span partitions are stitched by
/// the host (see the hybrid structures' scan()).
inline constexpr std::size_t kScanChunk = 16;

/// kScan field mapping (one chunk of a stitched range scan):
///   Request:  key       = chunk start key (inclusive)
///             value     = entries requested (combiner clamps to kScanChunk)
///             node      = begin-NMP-traversal node, as for point ops
///             host_node = host-owned ScanEntry output buffer; the combiner
///                         plain-writes it before its kDone release store,
///                         which the host's acquire load synchronizes with
///             aux       = B+ tree: offloaded parent seqnum
///   Response: value     = entries written to the buffer
///             aux       = continuation key (first key NOT returned; valid
///                         only when has_more)
///             has_more  = more matching keys remain in this partition at
///                         keys >= the continuation key
struct Request {
  OpCode op = OpCode::kNop;
  Key key = 0;
  Value value = 0;           // kScan: requested entry count for this chunk
  void* node = nullptr;      // begin-NMP-traversal node (null: partition head)
  void* host_node = nullptr; // host-side counterpart (skiplist insert/update);
                             // kScan: host-owned ScanEntry output buffer
  std::uint64_t aux = 0;     // skiplist: tower height; B+ tree: parent seqnum
  std::uint64_t trace_id = 0;  // sampled-op id (trace/trace.hpp); 0: untraced.
                               // Rides the request so the combiner can
                               // attribute queue-wait/apply/reply phases and
                               // per-partition trace.* counters to the op.
};

struct Response {
  bool ok = false;         // operation return value (found/inserted/removed)
  bool retry = false;      // begin-NMP-traversal node went stale: retry op
  bool lock_path = false;  // B+ tree: host must lock its path, then resume
  bool promote_hint = false;  // adaptive skiplist: key crossed the hotness
                              // threshold; host should issue kPromote
  bool has_more = false;   // kScan: partition holds further keys >= aux
  bool failed_over = false;  // partition was fenced while this op was in
                             // flight (or posted against a fenced lane): the
                             // op was NOT applied; the host must re-route /
                             // retry. Set only by the failover supervisor and
                             // the fast-bounce path, never by a combiner.
  Value value = 0;         // read result; kScan: entries written
  void* node = nullptr;    // skiplist insert: node created in the partition;
                           // skiplist update: host_ptr of the updated node
  std::uint64_t aux = 0;   // skiplist update: value version for host mirror;
                           // kScan: continuation key
};

/// One entry of a key-sorted combiner batch (see NmpCore::BatchHandler): a
/// view into a publication slot mid-service. The slot stays kPending for the
/// whole batch apply — the combiner owns `*req` and `*resp` exclusively until
/// it later publishes kDone — so a batch handler may read requests and write
/// responses through these pointers with plain (non-atomic) accesses.
struct BatchOp {
  const Request* req = nullptr;
  Response* resp = nullptr;
};

/// One publication-list slot. Padded to a cache line so host threads never
/// false-share; `status` carries the valid-flag handshake.
///
/// Slot-state protocol (audited 2026-08; every transition is a release
/// store matched by the consumer's acquire load):
///
///   kEmpty --post(), host--> kPending --combiner--> kDone --take(), host--> kEmpty
///
///  1. Only the owning host thread moves kEmpty -> kPending, and only after
///     plain-writing `req`/`resp`/`posted_ns`. The release store of
///     kPending is the publication fence: a combiner that acquire-loads
///     kPending therefore sees the complete request.
///  2. Only the combiner moves kPending -> kDone, after plain-writing
///     `resp`. Its release store (plus notify) publishes the response to
///     the host's acquire load in done()/wait_done(). With a batch handler
///     installed (NmpCore::set_batch_handler) the combiner may serve a whole
///     scan pass as one key-sorted batch: every collected slot's `resp` is
///     written during the batch apply, and only afterwards are the kDone
///     stores issued, one per slot in publication-list (slot-index) order.
///     The state machine is unchanged — each slot still goes kPending ->
///     kDone exactly once, via its own release store.
///  3. Only the owning host thread moves kDone -> kEmpty (take()). The
///     release store is what allows the *same* thread's next post() to
///     plain-write `req` without racing the combiner: the combiner never
///     touches a slot it has already marked kDone.
///
/// Failover exception to rule 2 (see partition_set.cpp's supervisor): when a
/// partition is *fenced*, the supervisor may move kPending -> kDone on the
/// dead combiner's behalf, writing a bounce response with `failed_over` set
/// ("not applied; retry elsewhere"). This is safe against the zombie only
/// because the supervisor first raises the fence epoch and *joins* the
/// exited combiner thread before touching any slot — after the join there
/// is exactly one writer again. A combiner that outlived its fence (a false
/// positive: it was slow, not dead) detects the stale epoch in complete()
/// and switches from a blind kDone store to a kPending -> kDone CAS: ops it
/// already ran are still answered (dropping them would double-execute on
/// the host's retry — the CAS is join-ordered before any bounce, so it
/// cannot race the supervisor), while a reply to a slot some new owner has
/// already moved on is rejected. Thus every failed_over response a host
/// ever sees belongs to a request that was never picked up.
///
/// NmpCore::post() additionally bumps the core's `pending_` futex word
/// *after* the kPending store, also with release order. That ordering is
/// load-bearing: a combiner woken by the futex acquire-loads `pending_`,
/// which synchronizes-with the post's fetch_add and hence transitively with
/// the slot write — the combiner can never observe the bumped counter yet
/// miss the pending slot on its next full scan. (The scan itself re-checks
/// each slot's status with acquire, so even an unrelated wake-up is safe.)
struct alignas(util::kCacheLineSize) PubSlot {
  enum Status : std::uint32_t {
    kEmpty = 0,    // free for the owning host thread to fill
    kPending = 1,  // request valid, waiting for the NMP core
    kDone = 2,     // response valid, waiting for the host thread to consume
  };

  std::atomic<std::uint32_t> status{kEmpty};
  Request req;
  Response resp;
  std::uint64_t posted_ns = 0;  // telemetry: post() timestamp (queue wait)
  std::uint64_t done_ns = 0;    // trace: combiner completion timestamp,
                                // plain-written before the kDone release
                                // store (the host reads it after its acquire
                                // load, like `resp`); feeds the kWake phase

  /// Host side: publish a request (slot must be kEmpty and owned by caller).
  void post(const Request& r) noexcept {
    req = r;
    resp = Response{};
    posted_ns = telemetry::now_ns();
    // Fault hook: emulate a slow host->NMP interconnect by delaying the
    // publication (between the request write and the kPending store).
    fault::maybe_stall(fault::Kind::kDelayedResponse, fault::kHostStream);
    status.store(kPending, std::memory_order_release);
  }

  bool done() const noexcept {
    return status.load(std::memory_order_acquire) == kDone;
  }

  /// Host side: consume the response and release the slot.
  Response take() noexcept {
    Response r = resp;
    status.store(kEmpty, std::memory_order_release);
    return r;
  }
};

static_assert(sizeof(PubSlot) % util::kCacheLineSize == 0);

}  // namespace hybrids::nmp
