// Publication-list protocol between host threads and NMP cores (§3.2).
//
// A host thread offloads an operation by filling its assigned slot in the
// target NMP core's publication list (in hardware: an 8kB region of the NMP
// core's scratchpad memory-mapped into the host address space) and raising
// the valid flag. The NMP core — the flat-combining combiner for its
// partition — scans the list, applies requests one at a time against its
// exclusively-owned partition, writes the response back into the slot, and
// clears the valid flag.
//
// Request fields mirror the paper's slot layout: lookup key (4B), associated
// value (4B), begin-NMP-traversal node pointer, operation type, valid flag —
// plus an auxiliary word used by the hybrid structures (skiplist: tower
// height & host node pointer; B+ tree: offloaded parent sequence number).
// Response fields: retry flag, success flag, read value, created-node
// pointer, plus the B+ tree's LOCK_PATH escalation flag.
#pragma once

#include <atomic>
#include <cstdint>

#include "hybrids/types.hpp"
#include "hybrids/util/cache_aligned.hpp"

namespace hybrids::nmp {

using hybrids::Key;
using hybrids::Value;

/// Operation codes carried in a publication slot. kRead..kRemove are the
/// data structure operations; kResumeInsert / kUnlockPath are the hybrid
/// B+ tree's second-phase control commands (§3.4); kNop lets tests exercise
/// the transport alone.
enum class OpCode : std::uint8_t {
  kRead,
  kUpdate,
  kInsert,
  kRemove,
  kResumeInsert,
  kUnlockPath,
  kPromote,  // adaptive extension (§7): raise a hot key into the host portion
  kNop,
};

struct Request {
  OpCode op = OpCode::kNop;
  Key key = 0;
  Value value = 0;
  void* node = nullptr;      // begin-NMP-traversal node (null: partition head)
  void* host_node = nullptr; // host-side counterpart (skiplist insert/update)
  std::uint64_t aux = 0;     // skiplist: tower height; B+ tree: parent seqnum
};

struct Response {
  bool ok = false;         // operation return value (found/inserted/removed)
  bool retry = false;      // begin-NMP-traversal node went stale: retry op
  bool lock_path = false;  // B+ tree: host must lock its path, then resume
  bool promote_hint = false;  // adaptive skiplist: key crossed the hotness
                              // threshold; host should issue kPromote
  Value value = 0;         // read result
  void* node = nullptr;    // skiplist insert: node created in the partition;
                           // skiplist update: host_ptr of the updated node
  std::uint64_t aux = 0;   // skiplist update: value version for host mirror
};

/// One publication-list slot. Padded to a cache line so host threads never
/// false-share; `status` carries the valid-flag handshake.
struct alignas(util::kCacheLineSize) PubSlot {
  enum Status : std::uint32_t {
    kEmpty = 0,    // free for the owning host thread to fill
    kPending = 1,  // request valid, waiting for the NMP core
    kDone = 2,     // response valid, waiting for the host thread to consume
  };

  std::atomic<std::uint32_t> status{kEmpty};
  Request req;
  Response resp;

  /// Host side: publish a request (slot must be kEmpty and owned by caller).
  void post(const Request& r) noexcept {
    req = r;
    resp = Response{};
    status.store(kPending, std::memory_order_release);
  }

  bool done() const noexcept {
    return status.load(std::memory_order_acquire) == kDone;
  }

  /// Host side: consume the response and release the slot.
  Response take() noexcept {
    Response r = resp;
    status.store(kEmpty, std::memory_order_release);
    return r;
  }
};

static_assert(sizeof(PubSlot) % util::kCacheLineSize == 0);

}  // namespace hybrids::nmp
