// Software emulation of an NMP core: one combiner thread with exclusive
// ownership of a memory partition, serving a publication list.
//
// This is the UPMEM-style software realization of the paper's NMP core
// (in-order processor coupled to a memory vault): a dedicated thread is the
// only one ever touching partition-local nodes, so partition-local code is
// single-threaded by construction — exactly the property the hybrid
// algorithms rely on (§3.2). The thread spins over the publication list and
// parks on a futex when idle, so the runtime behaves on oversubscribed
// machines.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "hybrids/nmp/publication.hpp"
#include "hybrids/telemetry/registry.hpp"

namespace hybrids::nmp {

/// A single emulated NMP core.
///
/// The `handler` is invoked on the combiner thread for every pending request,
/// in slot order (flat combining). It must only touch partition-local state
/// plus the request/response structs; it runs with no locks held.
///
/// With a batch handler additionally installed (set_batch_handler), a scan
/// pass that finds two or more pending requests is served as one key-sorted
/// batch instead: the combiner collects every kPending slot, sorts the
/// requests by key (stable, so equal keys keep slot order), and invokes the
/// batch handler once over the whole span. This lets partition-local
/// structures amortize traversal work across key-adjacent operations with a
/// finger (see NmpSkipList / NmpBTree) — the combiner loop is the throughput
/// ceiling of the hybrid design, so work saved here is end-to-end win.
/// Responses are then published (kDone + notify) in original slot order, so
/// hosts observe exactly the protocol of the one-at-a-time path. Passes with
/// a single pending request always use the plain handler; so do cores with
/// no batch handler registered.
class NmpCore {
 public:
  using Handler = std::function<void(const Request&, Response&)>;
  /// Invoked on the combiner thread with `count >= 2` operations sorted by
  /// ascending request key. Must write every `ops[i].resp` before returning;
  /// the core publishes them afterwards. Same restrictions as Handler.
  using BatchHandler = std::function<void(BatchOp* ops, std::size_t count)>;

  NmpCore(std::uint32_t id, std::uint32_t slot_count, Handler handler);
  ~NmpCore();

  NmpCore(const NmpCore&) = delete;
  NmpCore& operator=(const NmpCore&) = delete;

  /// Installs the optional batch handler. Must be called before start().
  void set_batch_handler(BatchHandler handler);

  /// Launches the combiner thread. Idempotent.
  void start();
  /// Drains outstanding requests and joins the combiner thread. Idempotent.
  void stop();

  std::uint32_t id() const { return id_; }
  std::uint32_t slot_count() const { return static_cast<std::uint32_t>(slots_.size()); }

  /// Direct slot access; slot ownership/assignment policy lives with the
  /// caller (see PartitionSet / SlotPool).
  PubSlot& slot(std::uint32_t index) { return *slots_[index]; }

  /// Host side: publish `r` into slot `index` and wake the combiner.
  void post(std::uint32_t index, const Request& r);

  /// Host side: block until slot `index` holds a response. Internally waits
  /// in bounded windows with lost-wakeup recovery (see wait_done_for), so it
  /// never hangs on a dropped futex notify.
  void wait_done(std::uint32_t index);

  /// Host side: bounded wait — spin, then yield, then park on a timed futex
  /// until slot `index` holds a response or `timeout` elapses. Returns true
  /// iff the response is available. After each expired wait window the
  /// pending counter is re-notified (lost-wakeup recovery: a combiner whose
  /// doorbell was dropped re-scans) and `wait_timeout_total` is bumped.
  bool wait_done_for(std::uint32_t index, std::chrono::nanoseconds timeout);

  /// Re-wakes the combiner if it is parked (watchdog / lost-wakeup
  /// recovery). Safe from any thread; a spurious kick costs one idle scan.
  void kick();

  // --- Failover support (see the supervisor in partition_set.cpp) ---------
  //
  // A *fence* invalidates the current combiner incarnation: the service loop
  // captures the fence epoch when it starts, re-checks it at every pass top
  // (stale -> the thread exits), and re-checks it in complete() (stale ->
  // the publish degrades from a blind kDone store to a kPending -> kDone
  // CAS: already-run ops are still answered, but a reply to a slot some new
  // owner has reclaimed is rejected). The supervisor then reaps the exited
  // thread, bounces still-kPending slots with failed_over responses, and
  // either start()s a fresh combiner over the same partition state or drives
  // passes itself via drive_pass() (host-takeover lease).

  /// Raises the fence epoch and wakes a parked combiner so it observes it.
  /// Safe from any thread; only the supervisor should call it.
  void fence_raise();

  /// Current fence epoch (tests / diagnostics).
  std::uint64_t fence_epoch() const {
    return fence_.load(std::memory_order_acquire);
  }

  /// True once the combiner thread has left its service loop (fence, abort
  /// fault, or wedge-until-fenced release) and a join would not block.
  bool exited() const { return exited_.load(std::memory_order_acquire); }

  /// Joins the combiner thread iff it has exited. Returns true when the
  /// thread was reaped (start() may then relaunch one). Must only be called
  /// from the supervisor, serialized with start()/stop().
  bool try_reap();

  /// Runs one full scan-and-serve pass on the *calling* thread (host-takeover
  /// lease). The caller must be the partition's sole driver (no combiner
  /// thread running, lease lock held) — the pass runs the handlers, so it
  /// inherits the combiner's exclusive-ownership contract.
  /// Returns the number of requests served.
  std::uint32_t drive_pass();

  /// Failover accounting: credit `n` supervisor-bounced slots as served so
  /// the watchdog's posted-vs-served progress check re-converges (bounced
  /// ops never reach complete()).
  void absorb_bounce(std::uint64_t n) {
    served_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Number of requests served so far (for tests / stats).
  std::uint64_t served() const { return served_.load(std::memory_order_relaxed); }
  /// Number of requests posted so far (watchdog progress accounting).
  std::uint64_t posted() const { return posts_.load(std::memory_order_relaxed); }
  /// Number of full scan passes that found no pending request.
  std::uint64_t idle_passes() const { return idle_passes_.load(std::memory_order_relaxed); }

 private:
  /// Telemetry instruments, registered per partition id at construction.
  /// All hot-path mutations are relaxed-atomic increments; they compile to
  /// no-ops under HYBRIDS_NO_TELEMETRY.
  struct Metrics {
    telemetry::Counter* served_total;
    telemetry::Counter* served_op[kOpCodeCount];  // indexed by OpCode
    telemetry::Counter* park;          // combiner futex parks
    telemetry::Counter* wake;          // host-side futex notifies (post/stop)
    telemetry::Counter* wait_timeout;  // expired bounded-wait windows
    telemetry::LatencyRecorder* queue_wait;  // post -> pickup, ns
    telemetry::LatencyRecorder* service;     // handler execution, ns
    telemetry::LatencyRecorder* occupancy;   // pending slots at scan start
    telemetry::LatencyRecorder* batch;       // requests served per scan pass
    telemetry::LatencyRecorder* batch_size;  // ops per batch-handler call
    telemetry::Counter* trace_queue_wait;    // traced ops: queue-wait ns total
    telemetry::Counter* trace_service;       // traced ops: service ns total
  };

  /// One request picked up by a scan pass, with the metadata that must be
  /// captured before the kDone store (the owning host thread may take() and
  /// re-post the slot the instant it observes completion).
  struct Picked {
    PubSlot* slot;
    std::uint64_t pickup_ns;  // telemetry::now_ns() at collection
    std::uint64_t posted_ns;
    std::size_t op;           // OpCode as index, captured pre-completion
    std::uint64_t trace_id;   // sampled-op id (0: untraced), ditto
  };

  void run();
  /// One scan-and-serve pass over the publication list: occupancy sample,
  /// collection, spurious-response fault hooks, batch or one-at-a-time
  /// apply. `epoch` is the fence epoch the pass runs under; see complete()
  /// for what happens to completions when it goes stale. Returns the number
  /// of requests served.
  std::uint32_t scan_and_serve(std::vector<Picked>& picked,
                               std::vector<BatchOp>& batch,
                               std::uint64_t epoch);
  /// Publishes one served slot: delayed-response fault hook, kDone release
  /// store + notify, served accounting, per-op telemetry. When `epoch` no
  /// longer matches the fence the publish becomes a kPending -> kDone CAS —
  /// the already-run op is still answered, but a late reply to a slot a new
  /// owner has reclaimed is rejected.
  void complete(const Picked& picked, std::uint64_t service_ns,
                std::uint64_t epoch);

  std::uint32_t id_;
  Handler handler_;
  BatchHandler batch_handler_;
  std::vector<util::CacheAligned<PubSlot>> slots_;
  std::atomic<std::uint64_t> pending_{0};  // monotone post counter (futex word)
  std::atomic<std::uint64_t> posts_{0};    // requests posted (excludes stop bumps)
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> fence_{0};    // failover fence epoch
  std::atomic<bool> exited_{false};        // combiner left its service loop
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> idle_passes_{0};
  Metrics metrics_;
  std::thread thread_;
  bool started_ = false;
};

}  // namespace hybrids::nmp
