// Deterministic, seed-driven fault injection for the software NMP runtime.
//
// The injector exists to prove, under adversarial scheduling, that the
// runtime's resilience machinery works: bounded waits fire instead of
// hanging, the watchdog re-wakes stalled combiners, and the hybrid
// structures' retry protocols (stale begin nodes, LOCK_PATH/RESUME_INSERT)
// stay linearizable when the transport misbehaves.
//
// Everything here compiles in only under -DHYBRIDS_FAULTS (CMake option
// HYBRIDS_FAULTS). In the default build every hook is an empty inline
// function, the implementation file contributes no symbols, and instrumented
// hot paths carry zero cost.
//
// Determinism: each fault kind draws from per-(kind, stream) ticket
// sequences hashed with the armed seed, so a single-threaded call site (a
// combiner, which is the only thread running its partition's hooks) sees an
// exactly reproducible fault sequence for a given seed. Host-side sites
// (post-wakeup loss, slot-publish delay) interleave across host threads, so
// for them the seed fixes the fault *rate* and the per-stream subsequences,
// not the global interleaving.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hybrids::nmp::fault {

/// Fault kinds the injector can produce. Sites:
///  * kCombinerStall    — combiner sleeps at the top of a scan pass
///                        (wedged NMP core; exercises the watchdog).
///  * kDelayedResponse  — combiner sleeps between running the handler and
///                        publishing kDone (slow response; exercises
///                        bounded waits), and host-side slot-publish delay.
///  * kLostWakeup       — post() skips the futex notify after bumping the
///                        pending counter (dropped doorbell; exercises
///                        wait_done_for's re-notify recovery and the
///                        watchdog kick).
///  * kSpuriousRetry    — the combiner replies retry *without running the
///                        handler* (exercises host retry loops and retry
///                        budgets; safe because no partition state changed).
///  * kSpuriousLockPath — for kInsert requests only, the combiner replies
///                        lock_path with a null pending handle and without
///                        running the handler (exercises the host's
///                        LOCK_PATH fallback when the NMP side has no record
///                        of the escalation).
///  * kCombinerAbort    — the combiner thread permanently exits its service
///                        loop at the top of a scan pass, before touching any
///                        slot (dead NMP core; exercises the failover
///                        supervisor: fence, bounce, respawn/lease).
///  * kCombinerWedge    — sticky variant of kCombinerStall: the combiner
///                        spins at the top of a scan pass without serving
///                        until it is fenced, instead of sleeping once
///                        (livelocked core; same supervisor path, but the
///                        zombie thread stays runnable until fenced).
enum class Kind : std::uint8_t {
  kCombinerStall = 0,
  kDelayedResponse,
  kLostWakeup,
  kSpuriousRetry,
  kSpuriousLockPath,
  kCombinerAbort,
  kCombinerWedge,
};

inline constexpr std::size_t kKindCount = 7;

/// Lifecycle kinds kill (or wedge until fenced) the combiner thread itself
/// rather than perturbing one protocol step. They require the failover
/// supervisor to make progress again, so Config::all() — used by chaos
/// scenarios that expect every enabled kind to be survivable by the
/// transport-level retry machinery alone — leaves them disabled; arm them
/// explicitly in kill-recover scenarios.
inline constexpr bool is_lifecycle(Kind k) noexcept {
  return k == Kind::kCombinerAbort || k == Kind::kCombinerWedge;
}

/// Suffix of the `fault_injected_<kind>` telemetry counters.
inline const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kCombinerStall: return "combiner_stall";
    case Kind::kDelayedResponse: return "delayed_response";
    case Kind::kLostWakeup: return "lost_wakeup";
    case Kind::kSpuriousRetry: return "spurious_retry";
    case Kind::kSpuriousLockPath: return "spurious_lock_path";
    case Kind::kCombinerAbort: return "combiner_abort";
    case Kind::kCombinerWedge: return "combiner_wedge";
  }
  return "unknown";
}

/// Stream id used by host-side hooks that have no partition context
/// (PubSlot::post). Streams are folded modulo kStreamCount.
inline constexpr std::uint32_t kHostStream = 0xFFFFFFFFu;

struct Config {
  std::uint64_t seed = 1;
  double probability[kKindCount] = {};  // per-kind injection probability
  std::uint32_t stall_us = 200;         // kCombinerStall sleep
  std::uint32_t delay_us = 50;          // kDelayedResponse sleep

  Config& enable(Kind k, double p) noexcept {
    probability[static_cast<std::size_t>(k)] = p;
    return *this;
  }

  /// All transport/protocol kinds enabled at probability `p` (chaos-harness
  /// convenience). Lifecycle kinds (see is_lifecycle) stay disabled: they
  /// need the failover supervisor, not just retries, to recover.
  static Config all(std::uint64_t seed, double p) noexcept {
    Config c;
    c.seed = seed;
    for (std::size_t k = 0; k < kKindCount; ++k) {
      if (!is_lifecycle(static_cast<Kind>(k))) c.probability[k] = p;
    }
    return c;
  }
};

#if defined(HYBRIDS_FAULTS)

inline constexpr bool kCompiledIn = true;

/// Process-wide injector. arm()/disarm() are quiescent-only (call them while
/// no runtime threads are inside hooks); fire() is safe from any thread.
class FaultInjector {
 public:
  static void arm(const Config& config);
  static void disarm();
  static bool armed() noexcept;

  /// True if fault `k` should be injected at this call. Draws the next
  /// ticket of the (kind, stream) sequence and bumps the
  /// `fault_injected_<kind>` counter when it fires.
  static bool fire(Kind k, std::uint32_t stream) noexcept;

  /// Sleeps for the configured duration of `k` (stall_us / delay_us).
  static void sleep_for(Kind k) noexcept;
};

/// Convenience: fire-and-sleep for duration faults.
inline void maybe_stall(Kind k, std::uint32_t stream) noexcept {
  if (FaultInjector::fire(k, stream)) FaultInjector::sleep_for(k);
}

#else  // HYBRIDS_FAULTS off: every hook is a no-op the optimizer deletes.

inline constexpr bool kCompiledIn = false;

class FaultInjector {
 public:
  static void arm(const Config&) noexcept {}
  static void disarm() noexcept {}
  static bool armed() noexcept { return false; }
  static bool fire(Kind, std::uint32_t) noexcept { return false; }
  static void sleep_for(Kind) noexcept {}
};

inline void maybe_stall(Kind, std::uint32_t) noexcept {}

#endif  // HYBRIDS_FAULTS

}  // namespace hybrids::nmp::fault
