// HostIndex: the hybrid structures' host-level ordered index behind one
// concrete facade, selecting between the two interchangeable engines at
// construction time:
//
//   - FatSkipList  — cache-line-sized multi-key B-link nodes (default;
//                    fat_skiplist.hpp), one two-line node per level of a
//                    descent,
//   - LfSkipList   — the classic one-key-per-node marked-pointer skiplist
//                    (lockfree_skiplist.hpp), kept as the -DHYBRIDS_NO_FATNODE
//                    fallback and the ablation baseline.
//
// Both engines expose the same per-key Entry record (LfSkipList::Node), so
// everything the hybrid structures pin to entries — NMP counterpart payloads,
// packed (version,value) mirror CAS via LfSkipList::update_versioned, begin
// -node shortcut handles — is identical across layouts; consumers only see
// the Window result of a descent. The layout toggle (set_fatnode_enabled) is
// sampled once per constructed index so benches can A/B under one binary.
#pragma once

#include <cstdint>
#include <optional>

#include "hybrids/ds/fat_skiplist.hpp"
#include "hybrids/ds/lockfree_skiplist.hpp"
#include "hybrids/host/interleave.hpp"
#include "hybrids/types.hpp"

namespace hybrids::ds {

class HostIndex {
 public:
  using Node = LfSkipList::Node;
  static constexpr int kMaxLevels = LfSkipList::kMaxLevels;

  /// What a descent saw at the bottom level. `pred` is the largest-key-below
  /// resident entry (nullptr: `key` precedes everything — begin at the
  /// partition head). In fat mode `leaf`/`leaf_version` identify the
  /// validated fat node backing match/pred, the token shortcut_fresh()
  /// revalidates; the pointer-node engine leaves them null/0 (its entries
  /// are begin-candidates for the structure's lifetime, no revalidation
  /// needed).
  struct Window {
    Node* match = nullptr;
    Node* pred = nullptr;
    void* leaf = nullptr;
    std::uint64_t leaf_version = 0;
  };

  explicit HostIndex(int max_height) {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fatnode_enabled()) {
      fat_.emplace(max_height);
      return;
    }
#endif
    lf_.emplace(max_height);
  }

  /// Which engine this instance was built with.
  bool fat() const {
#if !defined(HYBRIDS_NO_FATNODE)
    return fat_.has_value();
#else
    return false;
#endif
  }

  int max_height() const {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) return fat_->max_height();
#endif
    return lf_->max_height();
  }

  /// Callers that keep using Window entry pointers after the call must hold
  /// their own (reentrant) EbrGuard around the whole window, as with the
  /// underlying engines.
  bool find(Key key, Window& w) {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) {
      FatSkipList::View v;
      const bool hit = fat_->find(key, v);
      w = Window{v.match, v.pred, v.leaf, v.leaf_version};
      return hit;
    }
#endif
    Node* preds[kMaxLevels];
    Node* succs[kMaxLevels];
    const bool hit = lf_->find(key, preds, succs);
    w.match = hit ? succs[0] : nullptr;
    w.pred = preds[0] == lf_->head() ? nullptr : preds[0];
    w.leaf = nullptr;
    w.leaf_version = 0;
    return hit;
  }

#if !defined(HYBRIDS_NO_INTERLEAVE)
  host::CoTask<bool> find_co(Key key, Window* w) {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) {
      FatSkipList::View v;
      const bool hit = co_await fat_->find_co(key, &v);
      *w = Window{v.match, v.pred, v.leaf, v.leaf_version};
      co_return hit;
    }
#endif
    Node* preds[kMaxLevels];
    Node* succs[kMaxLevels];
    const bool hit = co_await lf_->find_co(key, preds, succs);
    w->match = hit ? succs[0] : nullptr;
    w->pred = preds[0] == lf_->head() ? nullptr : preds[0];
    w->leaf = nullptr;
    w->leaf_version = 0;
    co_return hit;
  }
#endif

  Node* get_node(Key key) {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) return fat_->get_node(key);
#endif
    return lf_->get_node(key);
  }

  Node* make_node(Key key, Value value, int height, void* payload = nullptr) {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) return fat_->make_entry(key, value, height, payload);
#endif
    return lf_->make_node(key, value, height, payload);
  }

  void free_unlinked(Node* n) {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) {
      fat_->free_unlinked(n);
      return;
    }
#endif
    lf_->free_unlinked(n);
  }

  bool insert_node(Node* n) {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) return fat_->insert_node(n);
#endif
    return lf_->insert_node(n);
  }

  bool remove(Key key) {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) return fat_->remove(key);
#endif
    return lf_->remove(key);
  }

  /// Bottom-level range scan (both engines stitch sorted runs; the fat
  /// engine additionally prefetches whole leaf runs for MLP).
  std::size_t scan(Key start, std::size_t count, ScanEntry* out) {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) return fat_->scan(start, count, out);
#endif
    return lf_->scan(start, count, out);
  }

  /// Shortcut revalidation: true iff a cached begin handle derived under
  /// (leaf, ver) is still exact. Pointer-node entries never move, so the
  /// engine without leaf tokens always answers fresh.
  bool shortcut_fresh(const void* leaf, std::uint64_t ver) const {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) return fat_->node_version_is(leaf, ver);
#endif
    (void)leaf;
    (void)ver;
    return true;
  }

  std::size_t size() const {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) return fat_->size();
#endif
    return lf_->size();
  }

  bool validate() const {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) return fat_->validate();
#endif
    return lf_->validate();
  }

  std::size_t retired_count() const {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) return fat_->retired_count();
#endif
    return lf_->retired_count();
  }

  std::size_t reclaim_retired() {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) return fat_->reclaim_retired();
#endif
    return lf_->reclaim_retired();
  }

  /// Visits every resident entry in key order; quiescent-state walks only
  /// (validation, teardown).
  template <class F>
  void for_each_entry(F&& f) const {
#if !defined(HYBRIDS_NO_FATNODE)
    if (fat_) {
      fat_->for_each_entry(f);
      return;
    }
#endif
    for (Node* n = lf_->head()->next_ptr(0); n != nullptr; n = n->next_ptr(0)) {
      if (!n->marked_at(0)) f(n);
    }
  }

 private:
  std::optional<LfSkipList> lf_;
#if !defined(HYBRIDS_NO_FATNODE)
  std::optional<FatSkipList> fat_;
#endif
};

}  // namespace hybrids::ds
