// Host-only concurrent B+ tree with sequence locks — the paper's non-NMP
// B+ tree baseline ("the host-only B+ tree uses sequence locks for
// concurrency", §5.1).
//
// Readers traverse optimistically (Listing 4 lines 4-22): they record each
// node's seqnum on the way down, wait out in-progress writes on the child,
// and validate the parent before descending; on validation failure they
// climb back to the lowest unmodified ancestor (or restart from the root).
// Inserts lock the affected suffix of the path bottom-up with seqnum CASes,
// perform the single-threaded split chain, and release; removes and updates
// lock only the leaf. The minimum-occupancy invariant is relaxed for
// removals (free-at-empty, never merge), as in the paper (§3.4).
//
// Memory: nodes come from a sharded slab pool (mem/node_pool.hpp) for
// locality — split siblings land near their neighbors instead of wherever
// malloc puts them. No node is ever freed before the destructor (empty
// leaves stay linked, superseded roots stay reachable as children), so the
// pool needs no grace period here. Descents prefetch the whole child node
// (three cache lines) behind the demand load of its header.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <new>
#include <vector>

#include "hybrids/ds/btree_nodes.hpp"
#include "hybrids/mem/memlayer.hpp"
#include "hybrids/mem/node_pool.hpp"
#include "hybrids/types.hpp"

namespace hybrids::ds {

class SeqLockBTree {
 public:
  SeqLockBTree() {
    root_.store(new_node(0), std::memory_order_release);
  }

  ~SeqLockBTree() { destroy(root_.load(std::memory_order_acquire)); }

  SeqLockBTree(const SeqLockBTree&) = delete;
  SeqLockBTree& operator=(const SeqLockBTree&) = delete;

  /// Builds the tree from strictly ascending (key, value) pairs with
  /// `fill` fraction of slots used per node — 0.5 matches the occupancy the
  /// paper obtains by inserting ~30M items in sorted order. Quiescent only.
  void build_from_sorted(const std::vector<Key>& keys,
                         const std::vector<Value>& values, double fill = 0.5) {
    assert(keys.size() == values.size());
    destroy(root_.exchange(nullptr, std::memory_order_acq_rel));
    int leaf_fill = static_cast<int>(kBTreeLeafSlots * fill);
    if (leaf_fill < 1) leaf_fill = 1;
    int inner_fill = static_cast<int>((kBTreeInnerSlots + 1) * fill);
    if (inner_fill < 2) inner_fill = 2;

    // Build the leaf level.
    std::vector<HostBNode*> level_nodes;
    std::vector<Key> level_maxkeys;
    std::size_t i = 0;
    while (i < keys.size()) {
      HostBNode* leaf = new_node(0);
      int n = 0;
      while (n < leaf_fill && i < keys.size()) {
        leaf->keys[n] = keys[i];
        leaf->values[n] = values[i];
        ++n;
        ++i;
      }
      leaf->slotuse = static_cast<std::uint16_t>(n);
      level_nodes.push_back(leaf);
      level_maxkeys.push_back(leaf->keys[n - 1]);
    }
    if (level_nodes.empty()) {
      HostBNode* leaf = new_node(0);
      level_nodes.push_back(leaf);
      level_maxkeys.push_back(0);
    }
    // Build inner levels until a single root remains.
    std::uint16_t level = 1;
    while (level_nodes.size() > 1) {
      std::vector<HostBNode*> upper;
      std::vector<Key> upper_max;
      std::size_t j = 0;
      while (j < level_nodes.size()) {
        HostBNode* inner = new_node(level);
        int c = 0;
        while (c < inner_fill && j < level_nodes.size()) {
          inner->children[c] = level_nodes[j];
          if (c > 0) inner->keys[c - 1] = level_maxkeys[j - 1];
          ++c;
          ++j;
        }
        // Avoid a trailing 1-child inner node: absorb it here if possible.
        if (j == level_nodes.size() - 1 && c <= kBTreeInnerSlots) {
          inner->children[c] = level_nodes[j];
          inner->keys[c - 1] = level_maxkeys[j - 1];
          ++c;
          ++j;
        }
        inner->slotuse = static_cast<std::uint16_t>(c - 1);
        upper.push_back(inner);
        upper_max.push_back(level_maxkeys[j - 1]);
      }
      level_nodes = std::move(upper);
      level_maxkeys = std::move(upper_max);
      ++level;
    }
    root_.store(level_nodes.front(), std::memory_order_release);
  }

  bool read(Key key, Value& out) const {
    while (true) {
      TraversalFrame frame;
      if (!traverse_to_leaf(key, frame)) continue;
      HostBNode* leaf = frame.path[0];
      const std::uint32_t s = frame.seqs[0];
      const int n = leaf->load_slotuse();
      bool found = false;
      Value v = 0;
      for (int i = 0; i < n; ++i) {
        if (leaf->load_key(i) == key) {
          v = leaf->load_value(i);
          found = true;
          break;
        }
      }
      if (!leaf->seq_unchanged(s)) continue;  // leaf was written meanwhile
      out = v;
      return found;
    }
  }

  bool update(Key key, Value value) {
    while (true) {
      TraversalFrame frame;
      if (!traverse_to_leaf(key, frame)) continue;
      HostBNode* leaf = frame.path[0];
      if (!leaf->try_lock_at(frame.seqs[0])) continue;
      bool found = false;
      const int n = leaf->slotuse;
      for (int i = 0; i < n; ++i) {
        if (leaf->keys[i] == key) {
          leaf->store_value(i, value);
          found = true;
          break;
        }
      }
      leaf->unlock();
      return found;
    }
  }

  bool remove(Key key) {
    while (true) {
      TraversalFrame frame;
      if (!traverse_to_leaf(key, frame)) continue;
      HostBNode* leaf = frame.path[0];
      if (!leaf->try_lock_at(frame.seqs[0])) continue;
      bool found = false;
      const int n = leaf->slotuse;
      for (int i = 0; i < n; ++i) {
        if (leaf->keys[i] == key) {
          for (int j = i; j + 1 < n; ++j) {
            leaf->store_key(j, leaf->keys[j + 1]);
            leaf->store_value(j, leaf->values[j + 1]);
          }
          leaf->store_slotuse(static_cast<std::uint16_t>(n - 1));
          found = true;
          break;
        }
      }
      leaf->unlock();
      return found;  // free-at-empty relaxation: empty leaves stay linked
    }
  }

  bool insert(Key key, Value value) {
    while (true) {
      TraversalFrame frame;
      if (!traverse_to_leaf(key, frame)) continue;
      // Lock the path suffix bottom-up: every node that will split, plus the
      // first non-full ancestor that absorbs the propagated divider.
      int locked_top = -1;
      bool lock_failed = false;
      for (int lvl = 0; lvl <= frame.root_level; ++lvl) {
        HostBNode* node = frame.path[lvl];
        if (!node->try_lock_at(frame.seqs[lvl])) {
          lock_failed = true;
          break;
        }
        locked_top = lvl;
        const int cap = lvl == 0 ? kBTreeLeafSlots : kBTreeInnerSlots;
        if (node->slotuse < cap) break;  // absorbs without splitting
      }
      if (lock_failed) {
        for (int lvl = 0; lvl <= locked_top; ++lvl) frame.path[lvl]->unlock();
        continue;  // retry from root
      }
      // Duplicate check under the leaf lock.
      HostBNode* leaf = frame.path[0];
      bool dup = false;
      for (int i = 0; i < leaf->slotuse; ++i) {
        if (leaf->keys[i] == key) {
          dup = true;
          break;
        }
      }
      std::vector<HostBNode*> created;
      if (!dup) {
        insert_into_locked_path(frame, locked_top, key, value, created);
      }
      for (int lvl = 0; lvl <= locked_top; ++lvl) frame.path[lvl]->unlock();
      for (HostBNode* n : created) n->unlock();  // split-off siblings
      return !dup;
    }
  }

  /// Number of keys (quiescent only).
  std::size_t size() const {
    return count_keys(root_.load(std::memory_order_acquire));
  }

  int height() const {
    return root_.load(std::memory_order_acquire)->level + 1;
  }

  /// Structural invariants (quiescent only): key order within nodes, subtree
  /// key ranges respect dividers, uniform leaf depth, child levels correct.
  bool validate() const {
    HostBNode* root = root_.load(std::memory_order_acquire);
    bool ok = true;
    Key lo = 0;
    bool has_lo = false;
    validate_node(root, lo, has_lo, ~Key{0}, true, ok);
    return ok;
  }

 private:
  struct TraversalFrame {
    HostBNode* path[kBTreeMaxLevels] = {};
    std::uint32_t seqs[kBTreeMaxLevels] = {};
    int root_level = 0;
  };

  /// Optimistic descent recording path + seqnums (Listing 4 lines 4-22).
  /// Returns false to signal "restart from root" (root switched mid-way).
  bool traverse_to_leaf(Key key, TraversalFrame& frame) const {
    HostBNode* root = root_.load(std::memory_order_acquire);
    const std::uint32_t root_seq = root->wait_even_seq();
    // Root may have been superseded while we waited; the stale root is
    // still a valid subtree, but it no longer covers all keys — detect via
    // pointer re-check.
    if (root_.load(std::memory_order_acquire) != root) return false;
    const int root_level = root->level;
    frame.root_level = root_level;
    frame.path[root_level] = root;
    frame.seqs[root_level] = root_seq;

    int lvl = root_level;
    HostBNode* curr = root;
    while (lvl > 0) {
      const int idx = curr->find_child_index(key);
      HostBNode* child = curr->load_child(idx);
      // Stream the child's three lines in behind the validation below; a
      // prefetch never faults, so even a torn child pointer is safe to hint.
      mem::prefetch_object(child, sizeof(HostBNode));
      // Validate before dereferencing child (torn child reads are unusable).
      if (!curr->seq_unchanged(frame.seqs[lvl])) {
        if (!climb(frame, lvl, curr)) return false;
        continue;
      }
      const std::uint32_t child_seq = child->wait_even_seq();
      frame.path[lvl - 1] = child;
      frame.seqs[lvl - 1] = child_seq;
      // Listing 4 line 16: descend only if curr is still unchanged.
      if (curr->seq_unchanged(frame.seqs[lvl])) {
        --lvl;
        curr = child;
      } else {
        if (!climb(frame, lvl, curr)) return false;
      }
    }
    return true;
  }

  /// Moves back up to the lowest ancestor whose seqnum is unchanged
  /// (Listing 4 lines 19-22). Returns false if even the root changed.
  static bool climb(TraversalFrame& frame, int& lvl, HostBNode*& curr) {
    while (lvl <= frame.root_level &&
           !frame.path[lvl]->seq_unchanged(frame.seqs[lvl])) {
      ++lvl;
    }
    if (lvl > frame.root_level) return false;
    curr = frame.path[lvl];
    return true;
  }

  /// Single-threaded insert along a locked path (leaf at path[0] .. absorber
  /// at path[locked_top]); all nodes in that range are seqlocked by the
  /// caller. Split-off siblings are created locked (footnote 3) and appended
  /// to `created` for the caller to unlock.
  void insert_into_locked_path(TraversalFrame& frame, int locked_top, Key key,
                               Value value, std::vector<HostBNode*>& created) {
    HostBNode* leaf = frame.path[0];
    // Insert into leaf, splitting if full.
    Key up_key = 0;
    HostBNode* up_child = nullptr;
    {
      int pos = 0;
      while (pos < leaf->slotuse && leaf->keys[pos] < key) ++pos;
      if (leaf->slotuse < kBTreeLeafSlots) {
        for (int j = leaf->slotuse; j > pos; --j) {
          leaf->store_key(j, leaf->keys[j - 1]);
          leaf->store_value(j, leaf->values[j - 1]);
        }
        leaf->store_key(pos, key);
        leaf->store_value(pos, value);
        leaf->store_slotuse(static_cast<std::uint16_t>(leaf->slotuse + 1));
        return;
      }
      // Split the leaf: distribute the 15 (existing + new) entries.
      Key all_keys[kBTreeLeafSlots + 1];
      Value all_vals[kBTreeLeafSlots + 1];
      int n = 0;
      for (int i = 0; i < leaf->slotuse; ++i) {
        if (i == pos) {
          all_keys[n] = key;
          all_vals[n] = value;
          ++n;
        }
        all_keys[n] = leaf->keys[i];
        all_vals[n] = leaf->values[i];
        ++n;
      }
      if (pos == leaf->slotuse) {
        all_keys[n] = key;
        all_vals[n] = value;
        ++n;
      }
      const int left_n = n / 2;
      HostBNode* right = new_node(0);
      right->seqnum.store(leaf->seqnum.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);  // replicate (locked)
      for (int i = 0; i < left_n; ++i) {
        leaf->store_key(i, all_keys[i]);
        leaf->store_value(i, all_vals[i]);
      }
      leaf->store_slotuse(static_cast<std::uint16_t>(left_n));
      for (int i = left_n; i < n; ++i) {
        right->keys[i - left_n] = all_keys[i];
        right->values[i - left_n] = all_vals[i];
      }
      right->slotuse = static_cast<std::uint16_t>(n - left_n);
      created.push_back(right);
      up_key = all_keys[left_n - 1];  // max key remaining in the left leaf
      up_child = right;
    }
    // Propagate the new (divider, right-child) up locked inner nodes.
    int lvl = 1;
    while (up_child != nullptr) {
      if (lvl > locked_top) {
        // Even the old root split: grow the tree.
        grow_root(frame.path[frame.root_level], up_key, up_child);
        return;
      }
      HostBNode* node = frame.path[lvl];
      int pos = 0;
      while (pos < node->slotuse && node->keys[pos] < up_key) ++pos;
      if (node->slotuse < kBTreeInnerSlots) {
        for (int j = node->slotuse; j > pos; --j) {
          node->store_key(j, node->keys[j - 1]);
          node->store_child(j + 1, node->children[j]);
        }
        node->store_key(pos, up_key);
        node->store_child(pos + 1, up_child);
        node->store_slotuse(static_cast<std::uint16_t>(node->slotuse + 1));
        return;
      }
      // Split the inner node: 15 keys + 16 children -> left, middle, right.
      Key all_keys[kBTreeInnerSlots + 1];
      HostBNode* all_children[kBTreeInnerSlots + 2];
      int n = 0;
      all_children[0] = node->children[0];
      for (int i = 0; i < node->slotuse; ++i) {
        if (i == pos) {
          all_keys[n] = up_key;
          all_children[n + 1] = up_child;
          ++n;
        }
        all_keys[n] = node->keys[i];
        all_children[n + 1] = node->children[i + 1];
        ++n;
      }
      if (pos == node->slotuse) {
        all_keys[n] = up_key;
        all_children[n + 1] = up_child;
        ++n;
      }
      const int mid = n / 2;  // all_keys[mid] moves up
      HostBNode* right = new_node(node->level);
      right->seqnum.store(node->seqnum.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);  // replicate (locked)
      for (int i = 0; i < mid; ++i) {
        node->store_key(i, all_keys[i]);
        node->store_child(i, all_children[i]);
      }
      node->store_child(mid, all_children[mid]);
      node->store_slotuse(static_cast<std::uint16_t>(mid));
      int rn = 0;
      for (int i = mid + 1; i < n; ++i) {
        right->keys[rn] = all_keys[i];
        right->children[rn] = all_children[i];
        ++rn;
      }
      right->children[rn] = all_children[n];
      right->slotuse = static_cast<std::uint16_t>(rn);
      created.push_back(right);
      up_key = all_keys[mid];
      up_child = right;
      ++lvl;
    }
  }

  void grow_root(HostBNode* old_root, Key up_key, HostBNode* right) {
    HostBNode* new_root = new_node(old_root->level + 1);
    new_root->slotuse = 1;
    new_root->keys[0] = up_key;
    new_root->children[0] = old_root;
    new_root->children[1] = right;
    root_.store(new_root, std::memory_order_release);
  }

  static std::size_t count_keys(const HostBNode* node) {
    if (node->is_leaf()) return node->slotuse;
    std::size_t n = 0;
    for (int i = 0; i <= node->slotuse; ++i) n += count_keys(node->children[i]);
    return n;
  }

  void validate_node(const HostBNode* node, Key& last_key, bool& has_last,
                     Key upper, bool upper_inclusive, bool& ok) const {
    if (!ok) return;
    if (node->is_leaf()) {
      for (int i = 0; i < node->slotuse; ++i) {
        const Key k = node->keys[i];
        if (has_last && k <= last_key) { ok = false; return; }
        if (upper_inclusive ? k > upper : k >= upper) { ok = false; return; }
        last_key = k;
        has_last = true;
      }
      return;
    }
    for (int i = 0; i <= node->slotuse; ++i) {
      const HostBNode* child = node->children[i];
      if (child == nullptr || child->level != node->level - 1) { ok = false; return; }
      const Key child_upper = i < node->slotuse ? node->keys[i] : upper;
      const bool child_incl = i < node->slotuse ? true : upper_inclusive;
      validate_node(child, last_key, has_last, child_upper, child_incl, ok);
      if (!ok) return;
    }
  }

  void destroy(HostBNode* node) {
    if (node == nullptr) return;
    if (!node->is_leaf()) {
      for (int i = 0; i <= node->slotuse; ++i) destroy(node->children[i]);
    }
    node->~HostBNode();
    pool_.deallocate(node, sizeof(HostBNode));
  }

  HostBNode* new_node(int level) {
    HostBNode* n = new (pool_.allocate(sizeof(HostBNode))) HostBNode;
    n->level = static_cast<std::uint16_t>(level);
    return n;
  }

  mem::NodePool pool_;  // declared first: destroyed after destroy() runs
  std::atomic<HostBNode*> root_;
};

}  // namespace hybrids::ds
