// NMP-based flat-combining skiplist — the prior-work baseline (Liu et al.
// SPAA'17 [44], Choe et al. SPAA'19 [16]) the paper compares against.
//
// The entire skiplist lives in NMP-capable memory, range-partitioned across
// NMP cores; host threads never traverse nodes. Every operation is offloaded
// through the publication list, and the owning NMP core executes the full
// top-to-bottom traversal from its partition's head sentinel.
//
// With `Config::batching` (default on) the combiner serves each scan pass as
// one key-sorted batch: operations are applied in ascending key order with a
// SeqSkipList::Finger, so each op resumes its predecessor search from the
// previous op's position instead of re-descending from the partition head.
// Finger reuse is counted in the per-partition `nmp.batch_finger_hits`
// telemetry counter.
#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "hybrids/cache/hot_cache.hpp"
#include "hybrids/ds/lockfree_skiplist.hpp"  // random_height
#include "hybrids/ds/seq_skiplist.hpp"
#include "hybrids/host/interleave.hpp"
#include "hybrids/nmp/partition_set.hpp"
#include "hybrids/telemetry/registry.hpp"
#include "hybrids/types.hpp"
#include "hybrids/util/cache_aligned.hpp"
#include "hybrids/util/rng.hpp"

namespace hybrids::ds {

class NmpSkipList {
 public:
  struct Config {
    int total_height = 22;        // skiplist levels (paper: log2 of item count)
    std::uint32_t partitions = 8; // NMP vaults holding data
    Key partition_width = 0;      // key-range width per partition (required)
    std::uint32_t max_threads = 8;
    std::uint32_t slots_per_thread = 4;  // non-blocking in-flight bound
    std::uint64_t seed = 1;
    bool batching = true;  // key-sorted batch apply with a traversal finger
    // NMP runtime watchdog / failover passthrough (see nmp::PartitionConfig).
    std::uint32_t watchdog_interval_ms = 10;
    std::uint32_t watchdog_misses_to_degrade = 5;
    std::uint32_t watchdog_misses_to_recover = 3;
    nmp::FailoverPolicy failover = nmp::FailoverPolicy::kRespawn;
    // Host-side hot-key cache budget in bytes (0 = off). The NMP-only
    // skiplist gets the value tier only: its combiner always descends from
    // the partition head sentinel, so a cached begin-node shortcut has
    // nothing to skip and the whole budget goes to values.
    std::size_t cache_budget_bytes = 0;
  };

  explicit NmpSkipList(const Config& config)
      : config_(config), set_(make_partition_config(config)) {
    lists_.reserve(config.partitions);
    for (std::uint32_t p = 0; p < config.partitions; ++p) {
      lists_.push_back(std::make_unique<SeqSkipList>(config.total_height));
      SeqSkipList* list = lists_.back().get();
      telemetry::LatencyRecorder* scan_len =
          &telemetry::latency(telemetry::names::kScanLen,
                              static_cast<std::int32_t>(p));
      set_.set_handler(
          p, [list, scan_len](const nmp::Request& req, nmp::Response& resp) {
            apply(*list, req, resp);
            if (req.op == nmp::OpCode::kScan) scan_len->record(resp.value);
          });
      if (config.batching) {
        telemetry::Counter* finger_hits = &telemetry::counter(
            telemetry::names::kBatchFingerHits, static_cast<std::int32_t>(p));
        set_.set_batch_handler(
            p, [list, finger_hits, scan_len](nmp::BatchOp* ops, std::size_t n) {
              apply_batch(*list, ops, n, finger_hits);
              for (std::size_t i = 0; i < n; ++i) {
                if (ops[i].req->op == nmp::OpCode::kScan) {
                  scan_len->record(ops[i].resp->value);
                }
              }
            });
      }
    }
    rngs_ = std::vector<util::CacheAligned<util::Xoshiro256>>(config.max_threads);
    for (std::uint32_t t = 0; t < config.max_threads; ++t) {
      *rngs_[t] = util::Xoshiro256(config.seed * 0x9E3779B97F4A7C15ULL + t);
    }
    if (cache::kCacheCompiledIn && cache::cache_enabled() &&
        config.cache_budget_bytes > 0) {
      cache::HotCache::Config cc;
      cc.budget_bytes = config.cache_budget_bytes;
      cc.value_ratio = 1.0;  // no host descent to shortcut past
      cc.partitions = config.partitions;
      cache_ = std::make_unique<cache::HotCache>(cc);
      // One flag per publication slot: set when the slot holds an async
      // write, consumed in retrieve(). Slots are single-owner (see the
      // layout note in partition_set.hpp), so plain bytes suffice.
      async_write_flags_.assign(
          static_cast<std::size_t>(config.partitions) * config.max_threads *
              (1 + config.slots_per_thread),
          0);
    }
    set_.start();
  }

  ~NmpSkipList() { set_.stop(); }

  bool read(Key key, Value& out, std::uint32_t tid) {
    const std::uint32_t part = set_.partition_of(key);
    if (cache_ != nullptr && cache_->lookup_value(key, out)) return true;
    const std::uint64_t gen = cache_gen(part);
    nmp::Response r =
        call_retry(part, tid, make_request(nmp::OpCode::kRead, key, 0, 0));
    out = r.value;
    if (cache_ != nullptr && r.ok) {
      cache_->fill_value(key, part, r.value, r.aux, gen);
    }
    return r.ok;
  }

  bool update(Key key, Value value, std::uint32_t tid) {
    const std::uint32_t part = set_.partition_of(key);
    const std::uint64_t gen = cache_gen(part);
    nmp::Response r =
        call_retry(part, tid, make_request(nmp::OpCode::kUpdate, key, value, 0));
    if (cache_ != nullptr && r.ok) {
      // Invalidate (raises the fill floor past any in-flight stale read
      // fill), then write through at the same version.
      cache_->invalidate_value(key, part, r.aux);
      cache_->fill_value(key, part, value, r.aux, gen);
    }
    return r.ok;
  }

  bool insert(Key key, Value value, std::uint32_t tid) {
    const std::uint32_t part = set_.partition_of(key);
    const int h = random_height(*rngs_[tid], config_.total_height);
    nmp::Response r =
        call_retry(part, tid, make_request(nmp::OpCode::kInsert, key, value, h));
    if (cache_ != nullptr && r.ok) cache_->invalidate_value(key, part, r.aux);
    return r.ok;
  }

  bool remove(Key key, std::uint32_t tid) {
    const std::uint32_t part = set_.partition_of(key);
    nmp::Response r =
        call_retry(part, tid, make_request(nmp::OpCode::kRemove, key, 0, 0));
    if (cache_ != nullptr && r.ok) cache_->invalidate_value(key, part, r.aux);
    return r.ok;
  }

  /// Range scan: fills `out` with up to `count` (key, value) pairs with key
  /// >= `start`, ascending. Issues kScan chunks of at most kScanChunk
  /// entries each, continuing within a partition at the response's
  /// continuation key and hopping to the next partition when one is
  /// exhausted. Returns the number of entries written.
  std::size_t scan(Key start, std::size_t count, ScanEntry* out,
                   std::uint32_t tid) {
    std::size_t filled = 0;
    Key cur = start;
    std::uint32_t p = set_.partition_of(start);
    while (filled < count) {
      const std::size_t want = count - filled < nmp::kScanChunk
                                   ? count - filled
                                   : nmp::kScanChunk;
      nmp::Request r =
          make_request(nmp::OpCode::kScan, cur, static_cast<Value>(want), 0);
      r.host_node = out + filled;
      nmp::Response resp = call_retry(p, tid, r);
      filled += resp.value;
      if (resp.has_more) {
        cur = static_cast<Key>(resp.aux);
        continue;
      }
      if (p + 1 >= config_.partitions) break;
      ++p;
      // Partition p's keys all sit at or above its range base; continuing
      // at max(cur, base) keeps the chunk sequence strictly ascending.
      const Key base = static_cast<Key>(static_cast<std::uint64_t>(p) *
                                        config_.partition_width);
      if (base > cur) cur = base;
    }
    return filled;
  }

#if !defined(HYBRIDS_NO_INTERLEAVE)
  // ----- coroutine-interleaved operations (docs/INTERLEAVING.md) -----------
  //
  // Twins of the blocking operations for callers driving a host::Frame.
  // The NMP-only skiplist has no host descent to interleave, so its only
  // suspension point is the publication round-trip: post async, park on the
  // slot, resume a sibling op meanwhile. Failover semantics match
  // call_retry — a failed_over response re-posts until a live combiner (or
  // lease-holding host) serves the request.

  host::CoTask<nmp::Response> call_retry_co(std::uint32_t p, std::uint32_t tid,
                                            nmp::Request r) {
    while (true) {
      nmp::Response resp;
      nmp::OpHandle h = set_.call_async(p, tid, r);
      if (!h.valid) {
        // No free async slot, or the lane is fenced/leased: the blocking
        // call owns the bounce/lease handling.
        resp = set_.call(p, tid, r);
      } else {
        co_await host::suspend_until_done(set_, h);
        resp = set_.retrieve(h);
      }
      if (!resp.failed_over) co_return resp;
      if (cache_ != nullptr) cache_->bump_generation(p);
      std::this_thread::yield();
    }
  }

  host::CoTask<bool> read_co(Key key, Value* out, std::uint32_t tid) {
    const std::uint32_t part = set_.partition_of(key);
    if (cache_ != nullptr && cache_->lookup_value(key, *out)) {
      co_return true;
    }
    const std::uint64_t gen = cache_gen(part);
    nmp::Response r = co_await call_retry_co(
        part, tid, make_request(nmp::OpCode::kRead, key, 0, 0));
    *out = r.value;
    if (cache_ != nullptr && r.ok) {
      cache_->fill_value(key, part, r.value, r.aux, gen);
    }
    co_return r.ok;
  }

  host::CoTask<bool> update_co(Key key, Value value, std::uint32_t tid) {
    const std::uint32_t part = set_.partition_of(key);
    const std::uint64_t gen = cache_gen(part);
    nmp::Response r = co_await call_retry_co(
        part, tid, make_request(nmp::OpCode::kUpdate, key, value, 0));
    if (cache_ != nullptr && r.ok) {
      cache_->invalidate_value(key, part, r.aux);
      cache_->fill_value(key, part, value, r.aux, gen);
    }
    co_return r.ok;
  }

  host::CoTask<bool> insert_co(Key key, Value value, std::uint32_t tid) {
    const std::uint32_t part = set_.partition_of(key);
    const int h = random_height(*rngs_[tid], config_.total_height);
    nmp::Response r = co_await call_retry_co(
        part, tid, make_request(nmp::OpCode::kInsert, key, value, h));
    if (cache_ != nullptr && r.ok) cache_->invalidate_value(key, part, r.aux);
    co_return r.ok;
  }

  host::CoTask<bool> remove_co(Key key, std::uint32_t tid) {
    const std::uint32_t part = set_.partition_of(key);
    nmp::Response r = co_await call_retry_co(
        part, tid, make_request(nmp::OpCode::kRemove, key, 0, 0));
    if (cache_ != nullptr && r.ok) cache_->invalidate_value(key, part, r.aux);
    co_return r.ok;
  }

  host::CoTask<std::size_t> scan_co(Key start, std::size_t count,
                                    ScanEntry* out, std::uint32_t tid) {
    std::size_t filled = 0;
    Key cur = start;
    std::uint32_t p = set_.partition_of(start);
    while (filled < count) {
      const std::size_t want = count - filled < nmp::kScanChunk
                                   ? count - filled
                                   : nmp::kScanChunk;
      nmp::Request r =
          make_request(nmp::OpCode::kScan, cur, static_cast<Value>(want), 0);
      r.host_node = out + filled;
      nmp::Response resp = co_await call_retry_co(p, tid, r);
      filled += resp.value;
      if (resp.has_more) {
        cur = static_cast<Key>(resp.aux);
        continue;
      }
      if (p + 1 >= config_.partitions) break;
      ++p;
      const Key base = static_cast<Key>(static_cast<std::uint64_t>(p) *
                                        config_.partition_width);
      if (base > cur) cur = base;
    }
    co_return filled;
  }
#endif  // !HYBRIDS_NO_INTERLEAVE

  /// Non-blocking variants (§3.5): returns an invalid handle when `tid`
  /// already has all of its slots in flight on the target partition.
  ///
  /// The raw-handle API cannot express a cached hit (a handle implies a
  /// publication round-trip), so reads bypass the value tier. Async writes
  /// mark their slot and retrieve() conservatively bumps the partition's
  /// cache generation, dropping every cached value and in-flight fill for
  /// it — correct, if blunter than the keyed invalidation the blocking
  /// path does.
  nmp::OpHandle read_async(Key key, std::uint32_t tid) {
    return set_.call_async(set_.partition_of(key), tid,
                           make_request(nmp::OpCode::kRead, key, 0, 0));
  }
  nmp::OpHandle insert_async(Key key, Value value, std::uint32_t tid) {
    const int h = random_height(*rngs_[tid], config_.total_height);
    nmp::OpHandle hd = set_.call_async(set_.partition_of(key), tid,
                                       make_request(nmp::OpCode::kInsert, key,
                                                    value, h));
    mark_async_write(hd);
    return hd;
  }
  nmp::OpHandle remove_async(Key key, std::uint32_t tid) {
    nmp::OpHandle hd = set_.call_async(set_.partition_of(key), tid,
                                       make_request(nmp::OpCode::kRemove, key,
                                                    0, 0));
    mark_async_write(hd);
    return hd;
  }
  bool poll(const nmp::OpHandle& h) { return set_.poll(h); }
  nmp::Response retrieve(const nmp::OpHandle& h) {
    nmp::Response r = set_.retrieve(h);
    if (cache_ != nullptr) {
      const std::size_t i = slot_flag_index(h);
      if (r.failed_over || (r.ok && async_write_flags_[i] != 0)) {
        cache_->bump_generation(h.partition);
      }
      async_write_flags_[i] = 0;
    }
    return r;
  }

  /// The underlying partition set (failover tests use it for
  /// trigger_failover / degraded / failovers).
  nmp::PartitionSet& partition_set() { return set_; }

  /// The hot-key cache, or nullptr when disabled (budget 0, runtime switch
  /// off, or HYBRIDS_NO_CACHE).
  cache::HotCache* hot_cache() { return cache_.get(); }

  /// Quiescent-only helpers for tests.
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& l : lists_) n += l->size();
    return n;
  }
  bool validate() const {
    for (const auto& l : lists_) {
      if (!l->validate()) return false;
    }
    return true;
  }

  /// Combiner-side application of one request. With a non-null `fg` the
  /// predecessor search goes through SeqSkipList::find_finger (key-sorted
  /// batch path); with null it behaves exactly like the one-at-a-time
  /// handler. Public so the batching ablation bench can drive the combiner
  /// work loop directly, without the runtime around it.
  static void apply(SeqSkipList& list, const nmp::Request& req,
                    nmp::Response& resp, SeqSkipList::Finger* fg = nullptr) {
    SeqSkipList::Node* preds[SeqSkipList::kMaxLevels];
    SeqSkipList::Node* succs[SeqSkipList::kMaxLevels];
    auto locate = [&](Key key) {
      return fg != nullptr ? list.find_finger(key, list.head(), preds, succs, *fg)
                           : list.find(key, list.head(), preds, succs);
    };
    switch (req.op) {
      case nmp::OpCode::kRead: {
        SeqSkipList::Node* n = locate(req.key);
        resp.ok = n != nullptr;
        if (n != nullptr) resp.value = n->value;
        // Echo the partition's CURRENT version for cache fills — the
        // partition counter, not the node's own stamp: a never-updated
        // key's node version would sit below the partition fill floor
        // forever and be permanently uncacheable.
        resp.aux = list.current_version();
        break;
      }
      case nmp::OpCode::kUpdate: {
        SeqSkipList::Node* n = locate(req.key);
        resp.ok = n != nullptr;
        if (n != nullptr) {
          n->value = req.value;
          // Same versioning discipline as the hybrid's combiner: monotonic
          // over the list, not per node (stays ordered across re-inserts).
          n->version = list.next_version();
          resp.aux = n->version;
        }
        break;
      }
      case nmp::OpCode::kInsert: {
        SeqSkipList::Node* found = locate(req.key);
        resp.ok = found == nullptr;
        if (found != nullptr) {
          resp.node = found;
        } else {
          SeqSkipList::Node* node =
              list.link(req.key, req.value, static_cast<int>(req.aux), nullptr,
                        preds, succs);
          // Version every successful insert so the host can invalidate any
          // cached miss-turned-hit for this key.
          node->version = list.next_version();
          resp.aux = node->version;
          resp.node = node;
        }
        break;
      }
      case nmp::OpCode::kRemove: {
        SeqSkipList::Node* found = locate(req.key);
        resp.ok = found != nullptr;
        if (found != nullptr) {
          list.unlink(found, preds);
          resp.aux = list.next_version();
        }
        break;
      }
      case nmp::OpCode::kScan: {
        std::uint32_t max = static_cast<std::uint32_t>(req.value);
        if (max > nmp::kScanChunk) max = nmp::kScanChunk;
        Key next = 0;
        bool more = false;
        resp.value = list.scan(req.key, max, list.head(),
                               static_cast<ScanEntry*>(req.host_node), &next,
                               &more, fg);
        resp.aux = next;
        resp.has_more = more;
        resp.ok = true;
        break;
      }
      default:
        resp.ok = false;
        break;
    }
  }

  /// Key-sorted batch apply (NmpCore::BatchHandler): threads one finger
  /// through the whole ascending-key batch and accumulates its reuse count
  /// into `finger_hits` (nullable).
  static void apply_batch(SeqSkipList& list, nmp::BatchOp* ops, std::size_t n,
                          telemetry::Counter* finger_hits) {
    SeqSkipList::Finger fg;
    for (std::size_t i = 0; i < n; ++i) {
      apply(list, *ops[i].req, *ops[i].resp, &fg);
    }
    if (finger_hits != nullptr) finger_hits->add(fg.hits);
  }

 private:
  /// Blocking call that absorbs failover bounces: a failed_over response
  /// means the request was not served (the lane was fenced before a combiner
  /// picked it up, or bounced in flight), so re-post until a live combiner —
  /// or a lease-holding host — serves it.
  nmp::Response call_retry(std::uint32_t p, std::uint32_t tid,
                           const nmp::Request& r) {
    while (true) {
      nmp::Response resp = set_.call(p, tid, r);
      if (!resp.failed_over) return resp;
      // No cached value survives a bounced partition: the takeover path may
      // have served writes this host never saw acks for.
      if (cache_ != nullptr) cache_->bump_generation(p);
      std::this_thread::yield();
    }
  }

  std::uint64_t cache_gen(std::uint32_t part) const {
    return cache_ != nullptr ? cache_->generation(part) : 0;
  }

  void mark_async_write(const nmp::OpHandle& h) {
    if (cache_ != nullptr && h.valid) async_write_flags_[slot_flag_index(h)] = 1;
  }

  std::size_t slot_flag_index(const nmp::OpHandle& h) const {
    return static_cast<std::size_t>(h.partition) * config_.max_threads *
               (1 + config_.slots_per_thread) +
           h.slot;
  }

  static nmp::PartitionConfig make_partition_config(const Config& c) {
    nmp::PartitionConfig pc;
    pc.partitions = c.partitions;
    pc.max_threads = c.max_threads;
    pc.slots_per_thread = c.slots_per_thread;
    pc.partition_width = c.partition_width;
    pc.watchdog_interval_ms = c.watchdog_interval_ms;
    pc.watchdog_misses_to_degrade = c.watchdog_misses_to_degrade;
    pc.watchdog_misses_to_recover = c.watchdog_misses_to_recover;
    pc.failover = c.failover;
    return pc;
  }

  static nmp::Request make_request(nmp::OpCode op, Key key, Value value,
                                   std::uint64_t height) {
    nmp::Request r;
    r.op = op;
    r.key = key;
    r.value = value;
    r.aux = height;
    return r;
  }

  Config config_;
  nmp::PartitionSet set_;
  std::vector<std::unique_ptr<SeqSkipList>> lists_;
  std::vector<util::CacheAligned<util::Xoshiro256>> rngs_;
  std::unique_ptr<cache::HotCache> cache_;
  std::vector<std::uint8_t> async_write_flags_;
};

}  // namespace hybrids::ds
