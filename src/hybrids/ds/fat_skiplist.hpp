// Fat-node host index: a concurrent B-link structure with cache-line-sized
// multi-key nodes, replacing one-key-per-node pointer chasing in the host
// levels (the B-skiplist layout from PAPERS.md's "Bridging Cache-Friendliness
// and Concurrency").
//
// Layout. Every node is two cache lines. Line 0 carries the seqlock word,
// the right-sibling link, packed metadata, the immutable anchor key and a
// sorted run of up to kFatKeys keys; line 1 carries the matching pointer
// slots. Leaf (level 0) slots point at LfSkipList::Node records — the same
// stable per-key entry struct the pointer-node layout uses, so everything
// downstream (NMP payload counterpart, packed (version,value) mirror CAS,
// hot-cache begin handles) is layout-agnostic. Index slots point at child
// fat nodes one level down. Index levels route over *nodes*, not per-entry
// towers: a leaf split promotes the right sibling's anchor into the parent
// level, so fanout is ~kFatKeys and a descent costs one (two-line) node per
// level instead of one line per key.
//
// Readers are lock-free via a per-node seqlock: version bit 0 is the writer
// lock, bit 1 marks a dead (empty, unlinked-or-unlinking) node, and every
// mutation bumps by kVersionStep. A reader snapshots the key run between two
// version reads and retries on mismatch; dead nodes are hopped via `next`.
// B-link invariant: a node owns keys in [anchor, next->anchor), so a reader
// that lands left of its target simply chases `next` — splits never block
// or restart a descent.
//
// Writers lock one node at a time (no hand-over-hand, no deadlock):
//   split    — under the lock: allocate right sibling, move the upper half,
//              publish via n->next; then, lock released, insert the routing
//              entry (right->anchor -> right) into the parent level, and
//              re-check the sibling's dead bit to sweep our own routing if a
//              concurrent remover emptied it meanwhile.
//   death    — removing the last slot kills the node (dead bit) under the
//              same lock, unlinks it from a *locked* live predecessor (an
//              unlocked CAS could race the predecessor's split and re-link
//              the corpse), removes the parent routing entry, then retires.
// Head sentinels per level never die; they may split (the left half stays
// the head).
//
// Reclamation. Entries retire through the familiar epoch-stamped Treiber
// stack back into the pool. Fat nodes also wait out the EBR grace period but
// are recycled through a structure-private freelist that *preserves the
// version word across reuse* (monotonically bumped, dead bit cleared): a
// stale hot-cache shortcut holding (leaf, version) can therefore never
// revalidate against a later incarnation at the same address — the
// fat-layout analogue of the paper's never-reuse rule for tall towers.
// Fat-node memory is only returned to the OS by the destructor.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>

#include "hybrids/ds/lockfree_skiplist.hpp"
#include "hybrids/host/interleave.hpp"
#include "hybrids/mem/ebr.hpp"
#include "hybrids/mem/memlayer.hpp"
#include "hybrids/mem/node_pool.hpp"
#include "hybrids/telemetry/counters.hpp"
#include "hybrids/telemetry/registry.hpp"
#include "hybrids/types.hpp"

namespace hybrids::ds {

#if defined(HYBRIDS_NO_FATNODE)
inline constexpr bool kFatnodeCompiledIn = false;
inline bool fatnode_enabled() noexcept { return false; }
inline void set_fatnode_enabled(bool) noexcept {}
#else
inline constexpr bool kFatnodeCompiledIn = true;

inline std::atomic<bool>& fatnode_flag() noexcept {
  static std::atomic<bool> on{true};
  return on;
}
/// Consulted once per HostIndex construction (ablations flip it between
/// arms); existing structures keep the layout they were built with.
inline bool fatnode_enabled() noexcept {
  return fatnode_flag().load(std::memory_order_relaxed);
}
inline void set_fatnode_enabled(bool on) noexcept {
  fatnode_flag().store(on, std::memory_order_relaxed);
}

class FatSkipList {
 public:
  using Entry = LfSkipList::Node;
  static constexpr int kMaxLevels = LfSkipList::kMaxLevels;
  static constexpr int kFatKeys = 8;

  static constexpr std::uint64_t kLockBit = 1;
  static constexpr std::uint64_t kDeadBit = 2;
  static constexpr std::uint64_t kVersionStep = 4;

  struct alignas(64) FatNode {
    // --- line 0: everything a descent reads ---
    std::atomic<std::uint64_t> version{kVersionStep};
    std::atomic<FatNode*> next{nullptr};
    std::atomic<std::uint32_t> meta{0};  // count | level<<8 | flags<<16
    Key anchor = 0;                      // creation-time key floor, immutable
    std::atomic<Key> keys[kFatKeys] = {};
    FatNode* down_head = nullptr;        // heads only: next level's sentinel
    // --- line 1: pointer slots (leaf: Entry*, index: child FatNode*) ---
    std::atomic<void*> ptrs[kFatKeys] = {};
  };
  static_assert(sizeof(FatNode) == 128, "fat node must stay two lines");
  static_assert(alignof(FatNode) == 64, "fat node must start on a line");
  static_assert(offsetof(FatNode, ptrs) == 64,
                "pointer slots must occupy their own line");
#if defined(__cpp_lib_hardware_interference_size)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
  static_assert(sizeof(FatNode) % std::hardware_destructive_interference_size
                        == 0 ||
                    std::hardware_destructive_interference_size % 64 != 0,
                "fat node is not a whole number of destructive-interference "
                "lines; retune kFatKeys for this target");
#pragma GCC diagnostic pop
#endif

  /// Result of a descent. `match`/`pred` are leaf entries (pred == nullptr
  /// means `key` precedes every resident entry); `leaf`/`leaf_version` name
  /// the validated fat node those slots were read from, the token the
  /// hot-cache shortcut tier revalidates with (node_version_is()).
  struct View {
    Entry* match = nullptr;
    Entry* pred = nullptr;
    void* leaf = nullptr;
    std::uint64_t leaf_version = 0;
  };

  explicit FatSkipList(int max_height)
      : max_height_(max_height),
        splits_(&telemetry::counter(telemetry::names::kMemFatnodeSplits)),
        keys_scanned_(
            &telemetry::counter(telemetry::names::kHostNodeKeysScanned)) {
    assert(max_height >= 1 && max_height <= kMaxLevels);
    for (int lvl = 0; lvl < max_height; ++lvl) {
      heads_[lvl] =
          alloc_fat(lvl, /*head=*/true, 0, lvl > 0 ? heads_[lvl - 1] : nullptr);
    }
  }

  ~FatSkipList() {
    for (Entry* e = retired_entries_.load(std::memory_order_relaxed);
         e != nullptr;) {
      Entry* nx = e->retire_next.load(std::memory_order_relaxed);
      pool_.deallocate(e, entry_bytes());
      e = nx;
    }
    for (FatNode* n = heads_[0]; n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      const int count = count_of(n->meta.load(std::memory_order_relaxed));
      for (int i = 0; i < count; ++i) {
        pool_.deallocate(n->ptrs[i].load(std::memory_order_relaxed),
                         entry_bytes());
      }
    }
    for (int lvl = 0; lvl < max_height_; ++lvl) {
      FatNode* n = heads_[lvl];
      while (n != nullptr) {
        FatNode* nx = n->next.load(std::memory_order_relaxed);
        pool_.deallocate(n, sizeof(FatNode));
        n = nx;
      }
    }
    FatNode* r = retired_fat_.load(std::memory_order_relaxed);
    while (r != nullptr) {
      FatNode* nx =
          static_cast<FatNode*>(r->ptrs[0].load(std::memory_order_relaxed));
      pool_.deallocate(r, sizeof(FatNode));
      r = nx;
    }
    FatNode* f = free_fat_;
    while (f != nullptr) {
      FatNode* nx =
          static_cast<FatNode*>(f->ptrs[0].load(std::memory_order_relaxed));
      pool_.deallocate(f, sizeof(FatNode));
      f = nx;
    }
  }

  FatSkipList(const FatSkipList&) = delete;
  FatSkipList& operator=(const FatSkipList&) = delete;

  int max_height() const { return max_height_; }

  // ----- readers ------------------------------------------------------------

  /// Optimistic descent. Returns true iff an entry with `key` is resident;
  /// fills `out` either way (miss: match == nullptr, pred = largest-key-below
  /// entry for begin-node derivation). Callers that use the returned entry
  /// pointers after this returns must hold their own EbrGuard around the
  /// whole window (guards are reentrant), exactly as with LfSkipList::find.
  bool find(Key key, View& out) {
    mem::EbrGuard guard;
    std::uint64_t scanned = 0;
    const LevelPos pos = descend(key, scanned);
    keys_scanned_->add(scanned);
    return finish_view(pos, key, out);
  }

#if !defined(HYBRIDS_NO_INTERLEAVE)
  /// Coroutine twin: prefetch-and-yield once per visited node (the whole
  /// two-line node, not per key) so sibling traversals in the frame overlap
  /// the line fills. Rightward B-link hops prefetch without yielding — they
  /// are rare (one per concurrent split caught mid-publish).
  host::CoTask<bool> find_co(Key key, View* out) {
    mem::EbrGuard guard;
    std::uint64_t scanned = 0;
    LevelPos pos{};
    FatNode* start = heads_[max_height_ - 1];
    for (int lvl = max_height_ - 1; lvl >= 0; --lvl) {
      co_await host::prefetch_and_yield(start, sizeof(FatNode));
      walk_level(start, lvl, key, pos, scanned);
      if (lvl > 0) {
        start = pos.le.node != nullptr ? static_cast<FatNode*>(pos.le.ptr)
                                       : heads_[lvl - 1];
      }
    }
    keys_scanned_->add(scanned);
    co_return finish_view(pos, key, *out);
  }
#endif

  /// Wait-free-ish point lookup of the resident entry for `key` (nullptr on
  /// miss). The returned pointer is only stable under the caller's EbrGuard.
  Entry* get_node(Key key) {
    View w;
    return find(key, w) ? w.match : nullptr;
  }

  bool get(Key key, Value& out) {
    mem::EbrGuard guard;
    Entry* e = get_node(key);
    if (e == nullptr) return false;
    out = e->value_now();
    return true;
  }

  bool contains(Key key) {
    View w;
    return find(key, w);
  }

  /// Bottom-level range scan: stitch in-node sorted runs, hopping leaves via
  /// the sibling link. Each validated leaf snapshot prefetches every
  /// qualifying entry line before touching the first value, so the entry
  /// reads overlap (the fat layout's scan win is memory-level parallelism,
  /// not fewer entry lines).
  std::size_t scan(Key start, std::size_t count, ScanEntry* out) {
    if (count == 0) return 0;
    mem::EbrGuard guard;
    std::uint64_t scanned = 0;
    const LevelPos pos = descend(start, scanned);
    // owner can transiently be null (walk ended in a dying tail); restart
    // from the best node seen, or the leaf head — the per-node `first`
    // filter below keeps the output exact either way.
    FatNode* n = pos.owner != nullptr
                     ? pos.owner
                     : (pos.le.node != nullptr ? pos.le.node : heads_[0]);
    std::size_t filled = 0;
    Key ks[kFatKeys];
    Entry* es[kFatKeys];
    while (n != nullptr && filled < count) {
      FatNode* nx = nullptr;
      int c;
      for (;;) {
        const std::uint64_t v = n->version.load(std::memory_order_acquire);
        if ((v & kLockBit) != 0) {
          cpu_relax();
          continue;
        }
        nx = n->next.load(std::memory_order_acquire);
        if ((v & kDeadBit) != 0) {
          c = 0;
          break;
        }
        c = count_of(n->meta.load(std::memory_order_relaxed));
        for (int i = 0; i < c; ++i) {
          ks[i] = n->keys[i].load(std::memory_order_relaxed);
          es[i] = static_cast<Entry*>(
              n->ptrs[i].load(std::memory_order_relaxed));
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        if (n->version.load(std::memory_order_relaxed) == v) break;
      }
      if (c > 0) {
        scanned += static_cast<std::uint64_t>(c);
        int first = 0;
        while (first < c && ks[first] < start) ++first;
        for (int i = first; i < c; ++i) mem::prefetch_read(es[i]);
        if (nx != nullptr) mem::prefetch_object(nx, sizeof(FatNode));
        for (int i = first; i < c && filled < count; ++i) {
          out[filled].key = ks[i];
          out[filled].value = es[i]->value_now();
          ++filled;
        }
      }
      n = nx;
    }
    keys_scanned_->add(scanned);
    return filled;
  }

  // ----- writers ------------------------------------------------------------

  /// Allocates an entry record (leaf slot target). Same field contract as
  /// LfSkipList::make_node; `height` is recorded for parity but plays no
  /// structural role in the fat layout.
  Entry* make_entry(Key key, Value value, int height, void* payload = nullptr) {
    void* raw = pool_.allocate(entry_bytes());
    Entry* e = static_cast<Entry*>(raw);
    e->key = key;
    new (&e->value) std::atomic<std::uint64_t>(LfSkipList::pack_value(0, value));
    e->height = static_cast<std::uint16_t>(height);
    e->payload = payload;
    new (&e->retire_next) std::atomic<Entry*>(nullptr);
    e->retire_epoch = 0;
    new (&e->next[0]) std::atomic<std::uintptr_t>(0);
    return e;
  }

  /// Frees an entry that never got linked (lost insert race).
  void free_unlinked(Entry* e) { pool_.deallocate(e, entry_bytes()); }

  /// Links a prepared entry. Returns false (entry untouched, caller frees)
  /// when the key is already resident.
  bool insert_node(Entry* e) {
    mem::EbrGuard guard;
    std::uint64_t scanned = 0;
    const LevelPos pos = descend(e->key, scanned);
    keys_scanned_->add(scanned);
    FatNode* start = pos.owner != nullptr ? pos.owner : heads_[0];
    return insert_slot(0, start, e->key, e, /*overwrite_dup=*/false) ==
           SlotIns::kDone;
  }

  bool insert(Key key, Value value) {
    Entry* e = make_entry(key, value, 1);
    if (insert_node(e)) return true;
    free_unlinked(e);
    return false;
  }

  /// Unlinks the entry for `key`. Returns false when absent (or when the
  /// resident incarnation changed under us and its remover won).
  bool remove(Key key) {
    mem::EbrGuard guard;
    for (;;) {
      View w;
      if (!find(key, w)) return false;
      if (remove_slot(0, key, w.match)) {
        retire_entry(w.match);
        maybe_reclaim();
        return true;
      }
      // Lost to a concurrent remover of this incarnation — unless an insert
      // already replaced it, in which case loop and target the new one.
      View again;
      if (!find(key, again) || again.match == w.match) return false;
    }
  }

  // ----- introspection ------------------------------------------------------

  /// True iff the fat node behind `leaf` still carries the exact seqlock
  /// stamp a View handed out — i.e. not one slot has moved since. Guard-free:
  /// fat-node memory stays mapped for the structure's lifetime and recycled
  /// incarnations continue the version sequence, so a stale token can only
  /// mismatch, never falsely match.
  bool node_version_is(const void* leaf, std::uint64_t ver) const {
    return static_cast<const FatNode*>(leaf)->version.load(
               std::memory_order_acquire) == ver;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const FatNode* f = heads_[0]; f != nullptr;
         f = f->next.load(std::memory_order_acquire)) {
      if ((f->version.load(std::memory_order_acquire) & kDeadBit) != 0)
        continue;
      n += static_cast<std::size_t>(
          count_of(f->meta.load(std::memory_order_acquire)));
    }
    return n;
  }

  /// Visits every resident leaf entry in key order. Quiescent-state only
  /// (validation/teardown walks).
  template <class F>
  void for_each_entry(F&& f) const {
    for (const FatNode* n = heads_[0]; n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      const int count = count_of(n->meta.load(std::memory_order_relaxed));
      for (int i = 0; i < count; ++i) {
        f(static_cast<Entry*>(n->ptrs[i].load(std::memory_order_relaxed)));
      }
    }
  }

  /// Structural invariant check; call quiescent. Verifies per-level sorted
  /// anchors/keys, anchor floors, meta level tags, no locked or dead nodes
  /// left linked, leaf slots matching their keys, and index slots routing to
  /// children whose anchor equals the routing key one level down.
  bool validate() const {
    for (int lvl = 0; lvl < max_height_; ++lvl) {
      Key prev = 0;
      bool have_prev = false;
      for (const FatNode* n = heads_[lvl]; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        const std::uint64_t v = n->version.load(std::memory_order_relaxed);
        if ((v & (kLockBit | kDeadBit)) != 0) return false;
        const std::uint32_t m = n->meta.load(std::memory_order_relaxed);
        const int count = count_of(m);
        if (level_of(m) != lvl || count > kFatKeys) return false;
        if (n != heads_[lvl]) {
          if (is_head(m) || count == 0) return false;
          if (have_prev && n->anchor <= prev) return false;
        }
        for (int i = 0; i < count; ++i) {
          const Key k = n->keys[i].load(std::memory_order_relaxed);
          if (k < n->anchor) return false;
          if (have_prev && k <= prev) return false;
          prev = k;
          have_prev = true;
          const void* p = n->ptrs[i].load(std::memory_order_relaxed);
          if (p == nullptr) return false;
          if (lvl == 0) {
            if (static_cast<const Entry*>(p)->key != k) return false;
          } else {
            const FatNode* child = static_cast<const FatNode*>(p);
            const std::uint32_t cm = child->meta.load(std::memory_order_relaxed);
            if (child->anchor != k || level_of(cm) != lvl - 1) return false;
            if ((child->version.load(std::memory_order_relaxed) & kDeadBit) !=
                0) {
              return false;
            }
          }
        }
      }
    }
    return true;
  }

  std::size_t retired_count() const {
    return retired_entry_count_.load(std::memory_order_relaxed) +
           retired_fat_count_.load(std::memory_order_relaxed);
  }

  /// Drains both retire stacks: entries whose grace period elapsed return to
  /// the pool; fat nodes move to the version-continuing freelist. Returns how
  /// many were reclaimed.
  std::size_t reclaim_retired() {
    if (draining_.exchange(true, std::memory_order_acquire)) return 0;
    mem::Ebr::try_advance();
    std::size_t freed = 0;

    Entry* list = retired_entries_.exchange(nullptr, std::memory_order_acq_rel);
    Entry* keep_head = nullptr;
    Entry* keep_tail = nullptr;
    std::size_t kept = 0;
    while (list != nullptr) {
      Entry* nx = list->retire_next.load(std::memory_order_relaxed);
      if (mem::Ebr::safe(list->retire_epoch)) {
        pool_.deallocate(list, entry_bytes());
        ++freed;
      } else {
        list->retire_next.store(keep_head, std::memory_order_relaxed);
        keep_head = list;
        if (keep_tail == nullptr) keep_tail = list;
        ++kept;
      }
      list = nx;
    }
    if (keep_head != nullptr) splice_entries(keep_head, keep_tail);
    retired_entry_count_.store(kept, std::memory_order_relaxed);

    FatNode* flist = retired_fat_.exchange(nullptr, std::memory_order_acq_rel);
    FatNode* fkeep_head = nullptr;
    FatNode* fkeep_tail = nullptr;
    std::size_t fkept = 0;
    while (flist != nullptr) {
      FatNode* nx =
          static_cast<FatNode*>(flist->ptrs[0].load(std::memory_order_relaxed));
      const auto epoch = reinterpret_cast<std::uint64_t>(
          flist->ptrs[1].load(std::memory_order_relaxed));
      if (mem::Ebr::safe(epoch)) {
        push_free_fat(flist);
        ++freed;
      } else {
        flist->ptrs[0].store(fkeep_head, std::memory_order_relaxed);
        fkeep_head = flist;
        if (fkeep_tail == nullptr) fkeep_tail = flist;
        ++fkept;
      }
      flist = nx;
    }
    if (fkeep_head != nullptr) splice_fat(fkeep_head, fkeep_tail);
    retired_fat_count_.store(fkept, std::memory_order_relaxed);

    draining_.store(false, std::memory_order_release);
    return freed;
  }

  mem::NodePool& pool() { return pool_; }

 private:
  static constexpr int kDrainInterval = 32;

  static int count_of(std::uint32_t meta) {
    return static_cast<int>(meta & 0xFF);
  }
  static int level_of(std::uint32_t meta) {
    return static_cast<int>((meta >> 8) & 0xFF);
  }
  static bool is_head(std::uint32_t meta) { return (meta & (1u << 16)) != 0; }
  static std::uint32_t make_meta(int count, int level, bool head) {
    return static_cast<std::uint32_t>(count) |
           (static_cast<std::uint32_t>(level) << 8) |
           (head ? (1u << 16) : 0u);
  }
  static std::size_t entry_bytes() { return sizeof(Entry); }

  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }

  /// One validated slot observation: the node and seqlock stamp it was read
  /// under, the key, and its pointer payload.
  struct Slot {
    FatNode* node = nullptr;
    std::uint64_t ver = 0;
    Key key = 0;
    void* ptr = nullptr;
  };

  /// Where a level walk ended: the node whose range covers the target
  /// (`owner`) plus the best <= / < slots seen across every node visited —
  /// tracked across nodes because removals can leave the owner without any
  /// key at-or-below the target even though an earlier node had one.
  struct LevelPos {
    FatNode* owner = nullptr;
    std::uint64_t owner_ver = 0;
    Slot le;  // largest key <= target
    Slot lt;  // largest key <  target
  };

  /// Rightward walk from `start` (anchor <= key required, head included).
  void do_walk(FatNode* n, Key key, LevelPos& out,
               std::uint64_t& scanned) const {
    out = LevelPos{};
    for (;;) {
      const std::uint64_t v = n->version.load(std::memory_order_acquire);
      if ((v & kLockBit) != 0) {
        cpu_relax();
        continue;
      }
      if ((v & kDeadBit) != 0) {
        FatNode* nx = n->next.load(std::memory_order_acquire);
        if (nx == nullptr) return;
        n = nx;
        continue;
      }
      FatNode* nx = n->next.load(std::memory_order_acquire);
      const std::uint32_t m = n->meta.load(std::memory_order_relaxed);
      const int count = count_of(m);
      int le = -1;
      int lt = -1;
      Key k_le = 0;
      Key k_lt = 0;
      int looked = 0;
      for (int i = 0; i < count; ++i) {
        const Key k = n->keys[i].load(std::memory_order_relaxed);
        ++looked;
        if (k > key) break;
        le = i;
        k_le = k;
        if (k < key) {
          lt = i;
          k_lt = k;
        }
      }
      void* p_le = le >= 0 ? n->ptrs[le].load(std::memory_order_relaxed)
                           : nullptr;
      void* p_lt = lt >= 0 ? n->ptrs[lt].load(std::memory_order_relaxed)
                           : nullptr;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (n->version.load(std::memory_order_relaxed) != v) continue;
      scanned += static_cast<std::uint64_t>(looked);
      if (le >= 0) out.le = Slot{n, v, k_le, p_le};
      if (lt >= 0) out.lt = Slot{n, v, k_lt, p_lt};
      if (nx == nullptr || nx->anchor > key) {
        out.owner = n;
        out.owner_ver = v;
        return;
      }
      // B-link hop: the target lies right of this node's range. The hop goes
      // through the validated snapshot above on purpose — every key here is
      // < nx->anchor <= target, so this node's last slot is the best
      // predecessor candidate so far and must roll into out.le/out.lt (the
      // owner may have lost all its at-or-below keys to removals).
      mem::prefetch_object(nx, sizeof(FatNode));
      n = nx;
    }
  }

  /// do_walk, retried once from the level head when a non-head start yields
  /// no <=-slot (the start hint's range may have been swallowed by deaths).
  void walk_level(FatNode* start, int lvl, Key key, LevelPos& out,
                  std::uint64_t& scanned) const {
    do_walk(start, key, out, scanned);
    if (out.le.node == nullptr && start != heads_[lvl]) {
      do_walk(heads_[lvl], key, out, scanned);
    }
  }

  LevelPos descend(Key key, std::uint64_t& scanned) const {
    LevelPos pos{};
    FatNode* start = heads_[max_height_ - 1];
    for (int lvl = max_height_ - 1; lvl >= 0; --lvl) {
      mem::prefetch_object(start, sizeof(FatNode));
      walk_level(start, lvl, key, pos, scanned);
      if (lvl > 0) {
        start = pos.le.node != nullptr ? static_cast<FatNode*>(pos.le.ptr)
                                       : heads_[lvl - 1];
      }
    }
    return pos;
  }

  bool finish_view(const LevelPos& pos, Key key, View& out) const {
    if (pos.le.node != nullptr && pos.le.key == key) {
      out.match = static_cast<Entry*>(pos.le.ptr);
      out.pred =
          pos.lt.node != nullptr ? static_cast<Entry*>(pos.lt.ptr) : nullptr;
      out.leaf = pos.le.node;
      out.leaf_version = pos.le.ver;
      return true;
    }
    out.match = nullptr;
    if (pos.le.node != nullptr) {
      out.pred = static_cast<Entry*>(pos.le.ptr);
      out.leaf = pos.le.node;
      out.leaf_version = pos.le.ver;
    } else {
      out.pred = nullptr;
      out.leaf = pos.owner;
      out.leaf_version = pos.owner_ver;
    }
    return false;
  }

  // ----- seqlock ------------------------------------------------------------

  /// Acquires the writer lock; false iff the node died first. On success `v`
  /// holds the pre-lock (even) version.
  bool lock_node(FatNode* n, std::uint64_t& v) {
    for (;;) {
      std::uint64_t cur = n->version.load(std::memory_order_relaxed);
      if ((cur & kDeadBit) != 0) return false;
      if ((cur & kLockBit) != 0) {
        cpu_relax();
        continue;
      }
      if (n->version.compare_exchange_weak(cur, cur | kLockBit,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        // Store-store barrier: without it a weakly-ordered machine could
        // make in-section data stores visible before the odd version word,
        // letting a reader validate a torn snapshot.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        v = cur;
        return true;
      }
    }
  }

  void unlock_node(FatNode* n, std::uint64_t v, bool dirty) {
    n->version.store(dirty ? v + kVersionStep : v, std::memory_order_release);
  }

  /// Terminal unlock: bumps and sets the dead bit (the node is empty and
  /// about to be unlinked). Readers hop it; writers refuse to lock it.
  void kill_node(FatNode* n, std::uint64_t v) {
    n->version.store((v + kVersionStep) | kDeadBit, std::memory_order_release);
  }

  // ----- slot mutation ------------------------------------------------------

  enum class SlotIns { kDone, kExists };

  /// Locked insert of (key -> ptr) at `lvl`, splitting on overflow.
  /// `overwrite_dup` is the index-level mode: a routing key colliding with a
  /// dead child's not-yet-swept entry takes over the slot.
  SlotIns insert_slot(int lvl, FatNode* start, Key key, void* ptr,
                      bool overwrite_dup) {
    mem::EbrGuard guard;
    FatNode* n = start;
    for (;;) {
      if (n == nullptr || n->anchor > key) {
        n = heads_[lvl];
        continue;
      }
      FatNode* nx = n->next.load(std::memory_order_acquire);
      if (nx != nullptr && nx->anchor <= key) {
        n = nx;
        continue;
      }
      std::uint64_t v;
      if (!lock_node(n, v)) {
        n = n->next.load(std::memory_order_acquire);
        continue;
      }
      nx = n->next.load(std::memory_order_relaxed);
      if (nx != nullptr && nx->anchor <= key) {
        unlock_node(n, v, false);  // ownership moved right while we locked
        n = nx;
        continue;
      }
      const std::uint32_t m = n->meta.load(std::memory_order_relaxed);
      const int count = count_of(m);
      int pos = 0;
      while (pos < count && n->keys[pos].load(std::memory_order_relaxed) < key)
        ++pos;
      if (pos < count &&
          n->keys[pos].load(std::memory_order_relaxed) == key) {
        if (overwrite_dup) {
          n->ptrs[pos].store(ptr, std::memory_order_relaxed);
          unlock_node(n, v, true);
          return SlotIns::kDone;
        }
        unlock_node(n, v, false);
        return SlotIns::kExists;
      }
      if (count == kFatKeys) {
        split_locked(n, v, lvl);  // unlocks n
        continue;
      }
      for (int i = count; i > pos; --i) {
        n->keys[i].store(n->keys[i - 1].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        n->ptrs[i].store(n->ptrs[i - 1].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      }
      n->keys[pos].store(key, std::memory_order_relaxed);
      n->ptrs[pos].store(ptr, std::memory_order_relaxed);
      n->meta.store(m + 1, std::memory_order_relaxed);
      unlock_node(n, v, true);
      return SlotIns::kDone;
    }
  }

  /// Splits a full locked node, releasing its lock. The right sibling is
  /// published through n->next first (B-link: immediately reachable), then
  /// routed into the parent level.
  void split_locked(FatNode* n, std::uint64_t v, int lvl) {
    constexpr int kHalf = kFatKeys / 2;
    const Key ranchor = n->keys[kHalf].load(std::memory_order_relaxed);
    FatNode* right = alloc_fat(lvl, /*head=*/false, ranchor, nullptr);
    for (int i = kHalf; i < kFatKeys; ++i) {
      right->keys[i - kHalf].store(n->keys[i].load(std::memory_order_relaxed),
                                   std::memory_order_relaxed);
      right->ptrs[i - kHalf].store(n->ptrs[i].load(std::memory_order_relaxed),
                                   std::memory_order_relaxed);
    }
    right->meta.store(make_meta(kFatKeys - kHalf, lvl, false),
                      std::memory_order_relaxed);
    right->next.store(n->next.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    n->next.store(right, std::memory_order_release);
    n->meta.store(make_meta(kHalf, lvl, is_head(n->meta.load(
                                            std::memory_order_relaxed))),
                  std::memory_order_relaxed);
    unlock_node(n, v, true);
    splits_->inc();
    if (lvl + 1 < max_height_) {
      insert_slot(lvl + 1, heads_[lvl + 1], ranchor, right,
                  /*overwrite_dup=*/true);
      // The sibling may have emptied and died before our routing entry
      // landed, in which case its remover's sweep ran too early — sweep it
      // ourselves. (Its seq_cst kill store and our routing publication are
      // totally ordered, so at least one side observes the other.)
      if ((right->version.load(std::memory_order_acquire) & kDeadBit) != 0) {
        remove_slot(lvl + 1, ranchor, right);
      }
    }
  }

  /// Locked removal of the slot for `key` at `lvl`, only if it still maps to
  /// `expected` (a leaf entry or a routed child — the identity check is what
  /// makes racing removers and routing sweeps safe). Handles node death:
  /// kill, unlink from a locked predecessor, sweep the parent routing entry,
  /// retire.
  bool remove_slot(int lvl, Key key, void* expected) {
    mem::EbrGuard guard;
    FatNode* n = heads_[lvl];
    for (;;) {
      if (n == nullptr || n->anchor > key) {
        n = heads_[lvl];
        continue;
      }
      FatNode* nx = n->next.load(std::memory_order_acquire);
      if (nx != nullptr && nx->anchor <= key) {
        n = nx;
        continue;
      }
      std::uint64_t v;
      if (!lock_node(n, v)) {
        n = n->next.load(std::memory_order_acquire);
        continue;
      }
      nx = n->next.load(std::memory_order_relaxed);
      if (nx != nullptr && nx->anchor <= key) {
        unlock_node(n, v, false);
        n = nx;
        continue;
      }
      const std::uint32_t m = n->meta.load(std::memory_order_relaxed);
      const int count = count_of(m);
      int pos = 0;
      while (pos < count && n->keys[pos].load(std::memory_order_relaxed) < key)
        ++pos;
      if (pos == count ||
          n->keys[pos].load(std::memory_order_relaxed) != key ||
          n->ptrs[pos].load(std::memory_order_relaxed) != expected) {
        unlock_node(n, v, false);
        return false;
      }
      for (int i = pos; i < count - 1; ++i) {
        n->keys[i].store(n->keys[i + 1].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        n->ptrs[i].store(n->ptrs[i + 1].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      }
      n->meta.store(m - 1, std::memory_order_relaxed);
      if (count == 1 && !is_head(m)) {
        kill_node(n, v);
        unlink_dead(n, lvl);
        if (lvl + 1 < max_height_) remove_slot(lvl + 1, n->anchor, n);
        retire_fat(n);
      } else {
        unlock_node(n, v, true);
      }
      return true;
    }
  }

  /// Physically unlinks a dead node. The predecessor must be *locked* for
  /// the swing: a plain CAS could interleave with that predecessor's split
  /// re-reading `next`, resurrecting the corpse in the new sibling.
  void unlink_dead(FatNode* dead, int lvl) {
    for (;;) {
      FatNode* p = heads_[lvl];
      FatNode* nx = p->next.load(std::memory_order_acquire);
      while (nx != nullptr && nx != dead) {
        if (nx->anchor > dead->anchor) return;  // someone already unlinked it
        p = nx;
        nx = p->next.load(std::memory_order_acquire);
      }
      if (nx != dead) return;
      std::uint64_t v;
      if (!lock_node(p, v)) continue;  // pred died too; its killer goes first
      if (p->next.load(std::memory_order_relaxed) != dead) {
        unlock_node(p, v, false);
        continue;
      }
      p->next.store(dead->next.load(std::memory_order_acquire),
                    std::memory_order_release);
      // Shape-only change: p's key run is untouched, so no version bump —
      // shortcut tokens into p stay fresh.
      unlock_node(p, v, false);
      return;
    }
  }

  // ----- allocation / reclamation -------------------------------------------

  FatNode* alloc_fat(int lvl, bool head, Key anchor, FatNode* down_head) {
    FatNode* n = pop_free_fat();
    if (n != nullptr) {
      // Version continuity across reuse (see file header): clear the dead
      // bit, keep climbing.
      const std::uint64_t v = n->version.load(std::memory_order_relaxed);
      n->version.store((v & ~kDeadBit) + kVersionStep,
                       std::memory_order_relaxed);
      n->next.store(nullptr, std::memory_order_relaxed);
      for (int i = 0; i < kFatKeys; ++i) {
        n->keys[i].store(0, std::memory_order_relaxed);
        n->ptrs[i].store(nullptr, std::memory_order_relaxed);
      }
    } else {
      void* raw = pool_.allocate(sizeof(FatNode));
      n = new (raw) FatNode();
    }
    n->meta.store(make_meta(0, lvl, head), std::memory_order_relaxed);
    n->anchor = anchor;
    n->down_head = down_head;
    return n;
  }

  void retire_entry(Entry* e) {
    e->retire_epoch = mem::Ebr::current();
    Entry* head = retired_entries_.load(std::memory_order_relaxed);
    do {
      e->retire_next.store(head, std::memory_order_relaxed);
    } while (!retired_entries_.compare_exchange_weak(
        head, e, std::memory_order_release, std::memory_order_relaxed));
    retired_entry_count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Dead fat nodes keep `next` intact for in-flight hoppers; the retire
  /// link and epoch stamp live in the pointer line, which no reader touches
  /// once the dead bit is up.
  void retire_fat(FatNode* n) {
    n->ptrs[1].store(reinterpret_cast<void*>(mem::Ebr::current()),
                     std::memory_order_relaxed);
    FatNode* head = retired_fat_.load(std::memory_order_relaxed);
    do {
      n->ptrs[0].store(head, std::memory_order_relaxed);
    } while (!retired_fat_.compare_exchange_weak(
        head, n, std::memory_order_release, std::memory_order_relaxed));
    retired_fat_count_.fetch_add(1, std::memory_order_relaxed);
    maybe_reclaim();
  }

  void maybe_reclaim() {
    if (retire_ticks_.fetch_add(1, std::memory_order_relaxed) %
            kDrainInterval ==
        kDrainInterval - 1) {
      reclaim_retired();
    }
  }

  void splice_entries(Entry* head, Entry* tail) {
    Entry* cur = retired_entries_.load(std::memory_order_relaxed);
    do {
      tail->retire_next.store(cur, std::memory_order_relaxed);
    } while (!retired_entries_.compare_exchange_weak(
        cur, head, std::memory_order_release, std::memory_order_relaxed));
  }

  void splice_fat(FatNode* head, FatNode* tail) {
    FatNode* cur = retired_fat_.load(std::memory_order_relaxed);
    do {
      tail->ptrs[0].store(cur, std::memory_order_relaxed);
    } while (!retired_fat_.compare_exchange_weak(
        cur, head, std::memory_order_release, std::memory_order_relaxed));
  }

  void push_free_fat(FatNode* n) {
    while (free_lock_.exchange(true, std::memory_order_acquire)) cpu_relax();
    n->ptrs[0].store(free_fat_, std::memory_order_relaxed);
    free_fat_ = n;
    free_lock_.store(false, std::memory_order_release);
  }

  FatNode* pop_free_fat() {
    while (free_lock_.exchange(true, std::memory_order_acquire)) cpu_relax();
    FatNode* n = free_fat_;
    if (n != nullptr) {
      free_fat_ =
          static_cast<FatNode*>(n->ptrs[0].load(std::memory_order_relaxed));
    }
    free_lock_.store(false, std::memory_order_release);
    return n;
  }

  const int max_height_;
  mem::NodePool pool_;
  FatNode* heads_[kMaxLevels] = {};
  std::atomic<Entry*> retired_entries_{nullptr};
  std::atomic<FatNode*> retired_fat_{nullptr};
  std::atomic<std::size_t> retired_entry_count_{0};
  std::atomic<std::size_t> retired_fat_count_{0};
  std::atomic<std::uint64_t> retire_ticks_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> free_lock_{false};
  FatNode* free_fat_ = nullptr;
  telemetry::Counter* splits_;
  telemetry::Counter* keys_scanned_;
};
#endif  // !HYBRIDS_NO_FATNODE

}  // namespace hybrids::ds
