// Hybrid B+ tree (§3.4) — the paper's primary B+ tree contribution.
//
// The top levels (sized to the last-level cache) form the host-managed
// portion: a seqlock B+ tree whose bottom-level children are tagged pointers
// into NMP partitions (partition id in the low bits of the 64-byte-aligned
// NMP node address). The lower levels are pushed down at construction into
// per-partition B+ subtree forests (NmpBTree), each owned by one NMP core.
//
// Synchronization across the boundary uses the host parent's sequence
// number: offloads carry the seqnum observed during traversal; the NMP side
// compares it with the begin node's recorded parent_seqnum to detect splits
// by earlier-queued operations (retry), or sibling-split staleness (adopt).
// Inserts that would split a partition's top-level node escalate: the NMP
// core keeps the path locked and replies LOCK_PATH; the host seqnum-CAS-locks
// its own path bottom-up and either resumes (RESUME_INSERT completes the NMP
// split chain and hands the new top node + divider back for host linking) or
// rolls back (UNLOCK_PATH) and retries from the root.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "hybrids/cache/hot_cache.hpp"
#include "hybrids/ds/btree_nodes.hpp"
#include "hybrids/ds/nmp_btree.hpp"
#include "hybrids/host/interleave.hpp"
#include "hybrids/mem/memlayer.hpp"
#include "hybrids/mem/node_pool.hpp"
#include "hybrids/nmp/partition_set.hpp"
#include "hybrids/telemetry/registry.hpp"
#include "hybrids/trace/trace.hpp"
#include "hybrids/types.hpp"
#include "hybrids/util/backoff.hpp"
#include "hybrids/util/marked_ptr.hpp"

namespace hybrids::ds {

class HybridBTree {
 public:
  using NmpRef = util::TaggedPtr<NmpBNode, 4>;  // partition id in low bits

  struct Config {
    int nmp_levels = 3;  // levels 0..nmp_levels-1 are NMP-managed
    std::uint32_t partitions = 8;
    std::uint32_t max_threads = 8;
    std::uint32_t slots_per_thread = 4;
    double fill = 0.5;  // initial node occupancy (sorted-load default)
    // NMP-requested retries (parent-seqnum mismatches, injected faults) per
    // operation before the retry budget counts as exhausted. Every retry
    // already retraverses root-down; past the budget the retry loop also
    // backs off exponentially and `host.retry_budget_exhausted` is bumped.
    std::uint32_t retry_budget = 8;
    // Key-sorted batch apply on the combiner (NmpCore::set_batch_handler):
    // each scan pass is served in ascending key order with an NmpBTree
    // traversal finger.
    bool batching = true;
    // NMP runtime watchdog / failover passthrough (see nmp::PartitionConfig
    // for the semantics; chaos tests shrink these to force fast failover).
    std::uint32_t watchdog_interval_ms = 10;
    std::uint32_t watchdog_misses_to_degrade = 5;
    std::uint32_t watchdog_misses_to_recover = 3;
    nmp::FailoverPolicy failover = nmp::FailoverPolicy::kRespawn;
    // Host-side hot-key cache: one byte budget split between the value tier
    // (reads served without touching the tree) and the shortcut tier
    // (begin-subtree refs + their offloaded parent seqnums, skipping the
    // host descent for warm read/update keys). 0 = off; the split is a live
    // knob (HotCache::set_value_ratio). See src/hybrids/cache/hot_cache.hpp.
    std::size_t cache_budget_bytes = 0;
    double cache_value_ratio = 0.5;
  };

  /// Split-point rule (§3.4): the largest host portion whose cumulative top
  /// levels fit in `llc_bytes`. Returns the number of NMP-managed levels.
  static int nmp_levels_for_cache(std::uint64_t initial_keys,
                                  std::size_t llc_bytes, double fill = 0.5,
                                  std::size_t node_bytes = 128) {
    const auto leaf_fill = static_cast<std::uint64_t>(kBTreeLeafSlots * fill);
    const auto inner_fill =
        static_cast<std::uint64_t>((kBTreeInnerSlots + 1) * fill);
    std::vector<std::uint64_t> counts;  // nodes per level, leaves first
    std::uint64_t c = (initial_keys + leaf_fill - 1) / (leaf_fill ? leaf_fill : 1);
    if (c == 0) c = 1;
    counts.push_back(c);
    while (c > 1) {
      c = (c + inner_fill - 1) / (inner_fill ? inner_fill : 2);
      counts.push_back(c);
    }
    const int height = static_cast<int>(counts.size());
    // Take levels from the top while they fit in the cache budget.
    std::uint64_t bytes = 0;
    int host_levels = 0;
    for (int lvl = height - 1; lvl >= 1; --lvl) {  // leaves never host-side
      bytes += counts[static_cast<std::size_t>(lvl)] * node_bytes;
      if (bytes > llc_bytes && host_levels >= 1) break;
      ++host_levels;
    }
    int nmp = height - host_levels;
    if (nmp < 1) nmp = 1;
    if (nmp > height - 1) nmp = height - 1;
    return nmp < 1 ? 1 : nmp;
  }

  /// Constructs the hybrid B+ tree over an existing sorted table (the paper
  /// assumes index construction over an existing database table, §3.4).
  HybridBTree(const Config& config, const std::vector<Key>& keys,
              const std::vector<Value>& values)
      : config_(config),
        last_host_level_(config.nmp_levels),
        set_(make_partition_config(config)) {
    assert(config.nmp_levels >= 1);
    assert(config.partitions >= 1 && config.partitions <= 16);
    namespace tn = telemetry::names;
    host_retry_ = &telemetry::counter(tn::kHostRetryTotal);
    retry_exhausted_ = &telemetry::counter(tn::kRetryBudgetExhausted);
    lock_path_ = &telemetry::counter(tn::kLockPathTotal);
    resume_insert_ = &telemetry::counter(tn::kResumeInsertTotal);
    unlock_path_ = &telemetry::counter(tn::kUnlockPathTotal);
    scan_hops_ = &telemetry::counter(tn::kScanPartitionHops);
    scan_retry_ = &telemetry::counter(tn::kScanRetry);
    if (cache::kCacheCompiledIn && cache::cache_enabled() &&
        config.cache_budget_bytes > 0) {
      cache::HotCache::Config cc;
      cc.budget_bytes = config.cache_budget_bytes;
      cc.value_ratio = config.cache_value_ratio;
      cc.partitions = config.partitions;
      cache_ = std::make_unique<cache::HotCache>(cc);
    }
    partitions_.reserve(config.partitions);
    for (std::uint32_t p = 0; p < config.partitions; ++p) {
      partitions_.push_back(std::make_unique<NmpBTree>(config.nmp_levels - 1));
      NmpBTree* bt = partitions_.back().get();
      // Per-partition retry-cause counter (parent_seqnum mismatch), captured
      // so the combiner hot path never touches the registry map.
      auto* seq_retries = &telemetry::counter(tn::kRetryParentSeqnum,
                                              static_cast<std::int32_t>(p));
      auto* scan_len = &telemetry::latency(tn::kScanLen,
                                           static_cast<std::int32_t>(p));
      set_.set_handler(p, [bt, seq_retries, scan_len](const nmp::Request& req,
                                                      nmp::Response& resp) {
        apply(*bt, *seq_retries, req, resp);
        if (req.op == nmp::OpCode::kScan && !resp.retry) {
          scan_len->record(resp.value);
        }
      });
      if (config.batching) {
        auto* finger_hits = &telemetry::counter(tn::kBatchFingerHits,
                                                static_cast<std::int32_t>(p));
        set_.set_batch_handler(p, [bt, seq_retries, finger_hits, scan_len](
                                      nmp::BatchOp* ops, std::size_t n) {
          NmpBTree::Finger fg;
          for (std::size_t i = 0; i < n; ++i) {
            apply(*bt, *seq_retries, *ops[i].req, *ops[i].resp, &fg);
            if (ops[i].req->op == nmp::OpCode::kScan && !ops[i].resp->retry) {
              scan_len->record(ops[i].resp->value);
            }
          }
          finger_hits->add(fg.hits);
        });
      }
    }
    build(keys, values);
    set_.start();
  }

  ~HybridBTree() {
    set_.stop();
    destroy_host(root_.load(std::memory_order_acquire));
  }

  HybridBTree(const HybridBTree&) = delete;
  HybridBTree& operator=(const HybridBTree&) = delete;

  /// Traversal snapshot: the recorded host path and sequence numbers
  /// (Listing 4's path[] / local_seqnum[]), plus the selected begin node.
  /// Public because non-blocking Tickets carry one.
  struct Frame {
    HostBNode* path[kBTreeMaxLevels] = {};
    std::uint32_t seqs[kBTreeMaxLevels] = {};
    // Inclusive key-range upper bound of path[lvl] (the divider chosen at
    // its parent); bnd[lvl] == false means rightmost spine, no upper bound.
    // Recorded together with seqs[lvl], so the same seqlock validation that
    // vouches for the path vouches for the bounds.
    Key uppers[kBTreeMaxLevels] = {};
    bool bnd[kBTreeMaxLevels] = {};
    int root_level = 0;
    NmpRef begin{};                // begin-NMP-traversal node + partition tag
    std::uint32_t partition = 0;
    Key upper = 0;        // inclusive upper bound of the begin subtree
    bool bounded = false; // false: begin is the rightmost subtree
  };

  // ----- blocking operations ------------------------------------------------

  bool read(Key key, Value& out, std::uint32_t tid) {
    RetryBudget budget(*this);
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kRead);
    if (cache_ != nullptr && cache_->lookup_value(key, out)) {
      // Hot key: served from the value tier, no tree touched at all.
      if (tok.sampled()) {
        const std::uint64_t now = telemetry::now_ns();
        trace::record_instant(tok.id, trace::Phase::kCacheLookup, now, op8, -1);
        trace::end_op(tok, now, op8, -1, /*offloaded=*/false);
      }
      return true;
    }
    while (true) {
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      Frame frame;
      bool from_shortcut = false;
      std::uint32_t part = 0;
      nmp::Request req;
      cache::HotCache::Shortcut sc;
      if (cache_ != nullptr && !budget.exhausted() &&
          cache_->lookup_shortcut(key, sc)) {
        // Warm key: post straight to the cached begin subtree with the
        // parent seqnum observed at fill time. A host-level split since
        // then surfaces as an ordinary parent-seqnum retry; the entry is
        // dropped below and the op falls back to a real descent.
        from_shortcut = true;
        part = sc.partition;
        req.op = nmp::OpCode::kRead;
        req.key = key;
        req.node = sc.node;
        req.aux = sc.aux;
        req.trace_id = tok.id;
        trace::record_instant(tok.id, trace::Phase::kCacheLookup, d0, op8,
                              static_cast<std::int16_t>(part));
      } else {
        if (!traverse(key, frame)) continue;
        part = frame.partition;
        trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                           tok.sampled() ? telemetry::now_ns() : 0, op8,
                           static_cast<std::int16_t>(part));
        req = make_request(nmp::OpCode::kRead, key, 0, frame, tok.id);
      }
      const auto part16 = static_cast<std::int16_t>(part);
      const std::uint64_t gen0 = cache_gen(part);
      nmp::Response r = set_.call(part, tid, req);
      if (must_retry(r)) {
        on_retry_response(r, part, key, from_shortcut);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        continue;
      }
      out = r.value;
      if (cache_ != nullptr && r.ok) {
        // r.aux echoes the partition's current version for reads, ordering
        // this fill against every write version the combiner issued.
        cache_->fill_value(key, part, r.value, r.aux, gen0);
        if (!from_shortcut) {
          cache_->fill_shortcut(key, part, frame.begin.ptr(),
                                frame.seqs[last_host_level_], gen0);
        }
      }
      if (tok.sampled()) {
        trace::end_op(tok, telemetry::now_ns(), op8, part16,
                      /*offloaded=*/true);
      }
      return r.ok;
    }
  }

  bool update(Key key, Value value, std::uint32_t tid) {
    RetryBudget budget(*this);
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kUpdate);
    while (true) {
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      Frame frame;
      bool from_shortcut = false;
      std::uint32_t part = 0;
      nmp::Request req;
      cache::HotCache::Shortcut sc;
      if (cache_ != nullptr && !budget.exhausted() &&
          cache_->lookup_shortcut(key, sc)) {
        // Updates never split, so a cached begin subtree replaces the whole
        // host descent; staleness comes back as a parent-seqnum retry.
        from_shortcut = true;
        part = sc.partition;
        req.op = nmp::OpCode::kUpdate;
        req.key = key;
        req.value = value;
        req.node = sc.node;
        req.aux = sc.aux;
        req.trace_id = tok.id;
        trace::record_instant(tok.id, trace::Phase::kCacheLookup, d0, op8,
                              static_cast<std::int16_t>(part));
      } else {
        if (!traverse(key, frame)) continue;
        part = frame.partition;
        trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                           tok.sampled() ? telemetry::now_ns() : 0, op8,
                           static_cast<std::int16_t>(part));
        req = make_request(nmp::OpCode::kUpdate, key, value, frame, tok.id);
      }
      const auto part16 = static_cast<std::int16_t>(part);
      const std::uint64_t gen0 = cache_gen(part);
      nmp::Response r = set_.call(part, tid, req);
      if (must_retry(r)) {
        on_retry_response(r, part, key, from_shortcut);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        continue;
      }
      if (cache_ != nullptr && r.ok) {
        // Erase + raise the partition fill floor to the write's version
        // (r.aux) BEFORE returning, then write through at that version.
        cache_->invalidate_value(key, part, r.aux);
        cache_->fill_value(key, part, value, r.aux, gen0);
        if (!from_shortcut) {
          cache_->fill_shortcut(key, part, frame.begin.ptr(),
                                frame.seqs[last_host_level_], gen0);
        }
      }
      if (tok.sampled()) {
        trace::end_op(tok, telemetry::now_ns(), op8, part16,
                      /*offloaded=*/true);
      }
      return r.ok;
    }
  }

  bool remove(Key key, std::uint32_t tid) {
    RetryBudget budget(*this);
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kRemove);
    while (true) {
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      Frame frame;
      if (!traverse(key, frame)) continue;
      const auto part16 = static_cast<std::int16_t>(frame.partition);
      trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      nmp::Response r =
          offload(nmp::OpCode::kRemove, key, 0, frame, tid, tok.id);
      if (must_retry(r)) {
        on_retry_response(r, frame.partition, key, false);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        continue;
      }
      if (cache_ != nullptr && r.ok) {
        cache_->invalidate_value(key, frame.partition, r.aux);
      }
      if (tok.sampled()) {
        trace::end_op(tok, telemetry::now_ns(), op8, part16,
                      /*offloaded=*/true);
      }
      return r.ok;
    }
  }

  bool insert(Key key, Value value, std::uint32_t tid) {
    RetryBudget budget(*this);
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kInsert);
    while (true) {
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      Frame frame;
      if (!traverse(key, frame)) continue;
      const auto part16 = static_cast<std::int16_t>(frame.partition);
      trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      nmp::Response r =
          offload(nmp::OpCode::kInsert, key, value, frame, tid, tok.id);
      if (must_retry(r)) {
        on_retry_response(r, frame.partition, key, false);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        continue;
      }
      if (!r.lock_path) {
        if (cache_ != nullptr && r.ok) {
          cache_->invalidate_value(key, frame.partition, r.aux);
        }
        if (tok.sampled()) {
          trace::end_op(tok, telemetry::now_ns(), op8, part16,
                        /*offloaded=*/true);
        }
        return r.ok;
      }
      lock_path_->inc();
      // LOCK_PATH escalation (Listing 4 lines 26-43). The escalation legs
      // (kUnlockPath / kResumeInsert) carry the same trace id, so their
      // transport phases land inside this op's kOp span.
      bool done = false;
      if (complete_escalated_insert(frame, r.node, frame.partition, tid, done,
                                    tok.id)) {
        if (tok.sampled()) {
          trace::end_op(tok, telemetry::now_ns(), op8, part16,
                        /*offloaded=*/true);
        }
        return done;
      }
      // Host-side locking failed; the NMP path was unlocked on our behalf.
    }
  }

  /// Range scan: fills `out` with up to `count` (key, value) pairs with key
  /// >= `start`, ascending. Each kScan chunk traverses the host portion to
  /// the begin subtree covering the current key and offloads with the
  /// observed parent seqnum; a seqnum mismatch (the subtree was split by an
  /// earlier-queued insert) retries the chunk under the usual retry budget.
  /// The chunk exhausts a begin subtree at the continuation key, then the
  /// host stitches onward at the subtree's inclusive upper bound + 1 — the
  /// bound the traversal read under the parent's seqlock, so the next
  /// subtree holds exactly the keys above it.
  ///
  /// Each chunk is individually atomic (combiner-serialized); the stitched
  /// whole is not a snapshot. Chunks cover strictly ascending disjoint key
  /// ranges, so the result is sorted with no duplicates, every key >= start,
  /// and every returned pair was present at some point during the scan.
  /// Returns the number of entries written.
  std::size_t scan(Key start, std::size_t count, ScanEntry* out,
                   std::uint32_t tid) {
    std::size_t filled = 0;
    Key cur = start;
    RetryBudget budget(*this);
    bool have_part = false;
    std::uint32_t last_part = 0;
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kScan);
    bool offloaded = false;
    std::int16_t part16 = -1;
    while (filled < count) {
      const std::uint64_t c0 = tok.sampled() ? telemetry::now_ns() : 0;
      Frame frame;
      if (!traverse(cur, frame)) continue;
      part16 = static_cast<std::int16_t>(frame.partition);
      trace::record_span(tok.id, trace::Phase::kHostDescend, c0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      const std::size_t want = count - filled < nmp::kScanChunk
                                   ? count - filled
                                   : nmp::kScanChunk;
      nmp::Request r = make_request(nmp::OpCode::kScan, cur,
                                    static_cast<Value>(want), frame, tok.id);
      r.host_node = out + filled;
      nmp::Response resp = set_.call(frame.partition, tid, r);
      offloaded = true;
      // One stitched chunk, retries included; the transport phases above
      // nest under it on the timeline.
      trace::record_span(tok.id, trace::Phase::kScanChunk, c0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      if (must_retry(resp)) {
        if (cache_ != nullptr && resp.failed_over) {
          cache_->bump_generation(frame.partition);
        }
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        scan_retry_->inc();
        budget.note_retry();
        continue;
      }
      if (have_part && frame.partition != last_part) scan_hops_->inc();
      have_part = true;
      last_part = frame.partition;
      filled += resp.value;
      if (resp.has_more) {
        cur = static_cast<Key>(resp.aux);
        continue;
      }
      // Begin subtree exhausted: continue right above its key range.
      if (!frame.bounded) break;  // rightmost subtree — nothing further
      if (frame.upper == ~Key{0}) break;
      cur = frame.upper + 1;
    }
    if (tok.sampled()) {
      trace::end_op(tok, telemetry::now_ns(), op8, part16, offloaded);
    }
    return filled;
  }

#if !defined(HYBRIDS_NO_INTERLEAVE)
  // ----- coroutine-interleaved operations (docs/INTERLEAVING.md) -----------
  //
  // Twins of the blocking operations for callers driving a host::Frame: the
  // inner-node descent suspends after each whole-node prefetch
  // (traverse_co) and the publication round-trip parks on
  // suspend_until_done. Semantics match the blocking twins — same seqlock
  // validation/climb, same retry budget and trace spans, same failover
  // handling. The LOCK_PATH escalation of insert_co intentionally stays
  // blocking (complete_escalated_insert): escalations are rare structural
  // changes already serialized by host-side locks, not worth a coroutine
  // variant of the two-phase protocol.

  host::CoTask<bool> read_co(Key key, Value* out, std::uint32_t tid) {
    RetryBudget budget(*this);
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kRead);
    if (cache_ != nullptr && cache_->lookup_value(key, *out)) {
      if (tok.sampled()) {
        const std::uint64_t now = telemetry::now_ns();
        trace::record_instant(tok.id, trace::Phase::kCacheLookup, now, op8, -1);
        trace::end_op(tok, now, op8, -1, /*offloaded=*/false);
      }
      co_return true;
    }
    while (true) {
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      Frame frame;
      bool from_shortcut = false;
      std::uint32_t part = 0;
      nmp::Request req;
      cache::HotCache::Shortcut sc;
      if (cache_ != nullptr && !budget.exhausted() &&
          cache_->lookup_shortcut(key, sc)) {
        from_shortcut = true;
        part = sc.partition;
        req.op = nmp::OpCode::kRead;
        req.key = key;
        req.node = sc.node;
        req.aux = sc.aux;
        req.trace_id = tok.id;
        trace::record_instant(tok.id, trace::Phase::kCacheLookup, d0, op8,
                              static_cast<std::int16_t>(part));
      } else {
        if (!co_await traverse_co(key, frame)) continue;
        part = frame.partition;
        trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                           tok.sampled() ? telemetry::now_ns() : 0, op8,
                           static_cast<std::int16_t>(part));
        req = make_request(nmp::OpCode::kRead, key, 0, frame, tok.id);
      }
      const auto part16 = static_cast<std::int16_t>(part);
      const std::uint64_t gen0 = cache_gen(part);
      nmp::Response r = co_await call_co(part, tid, req);
      if (must_retry(r)) {
        on_retry_response(r, part, key, from_shortcut);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        continue;
      }
      *out = r.value;
      if (cache_ != nullptr && r.ok) {
        cache_->fill_value(key, part, r.value, r.aux, gen0);
        if (!from_shortcut) {
          cache_->fill_shortcut(key, part, frame.begin.ptr(),
                                frame.seqs[last_host_level_], gen0);
        }
      }
      if (tok.sampled()) {
        trace::end_op(tok, telemetry::now_ns(), op8, part16,
                      /*offloaded=*/true);
      }
      co_return r.ok;
    }
  }

  host::CoTask<bool> update_co(Key key, Value value, std::uint32_t tid) {
    RetryBudget budget(*this);
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kUpdate);
    while (true) {
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      Frame frame;
      bool from_shortcut = false;
      std::uint32_t part = 0;
      nmp::Request req;
      cache::HotCache::Shortcut sc;
      if (cache_ != nullptr && !budget.exhausted() &&
          cache_->lookup_shortcut(key, sc)) {
        from_shortcut = true;
        part = sc.partition;
        req.op = nmp::OpCode::kUpdate;
        req.key = key;
        req.value = value;
        req.node = sc.node;
        req.aux = sc.aux;
        req.trace_id = tok.id;
        trace::record_instant(tok.id, trace::Phase::kCacheLookup, d0, op8,
                              static_cast<std::int16_t>(part));
      } else {
        if (!co_await traverse_co(key, frame)) continue;
        part = frame.partition;
        trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                           tok.sampled() ? telemetry::now_ns() : 0, op8,
                           static_cast<std::int16_t>(part));
        req = make_request(nmp::OpCode::kUpdate, key, value, frame, tok.id);
      }
      const auto part16 = static_cast<std::int16_t>(part);
      const std::uint64_t gen0 = cache_gen(part);
      nmp::Response r = co_await call_co(part, tid, req);
      if (must_retry(r)) {
        on_retry_response(r, part, key, from_shortcut);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        continue;
      }
      if (cache_ != nullptr && r.ok) {
        cache_->invalidate_value(key, part, r.aux);
        cache_->fill_value(key, part, value, r.aux, gen0);
        if (!from_shortcut) {
          cache_->fill_shortcut(key, part, frame.begin.ptr(),
                                frame.seqs[last_host_level_], gen0);
        }
      }
      if (tok.sampled()) {
        trace::end_op(tok, telemetry::now_ns(), op8, part16,
                      /*offloaded=*/true);
      }
      co_return r.ok;
    }
  }

  host::CoTask<bool> remove_co(Key key, std::uint32_t tid) {
    RetryBudget budget(*this);
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kRemove);
    while (true) {
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      Frame frame;
      if (!co_await traverse_co(key, frame)) continue;
      const auto part16 = static_cast<std::int16_t>(frame.partition);
      trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      nmp::Response r = co_await call_co(
          frame.partition, tid,
          make_request(nmp::OpCode::kRemove, key, 0, frame, tok.id));
      if (must_retry(r)) {
        on_retry_response(r, frame.partition, key, false);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        continue;
      }
      if (cache_ != nullptr && r.ok) {
        cache_->invalidate_value(key, frame.partition, r.aux);
      }
      if (tok.sampled()) {
        trace::end_op(tok, telemetry::now_ns(), op8, part16,
                      /*offloaded=*/true);
      }
      co_return r.ok;
    }
  }

  host::CoTask<bool> insert_co(Key key, Value value, std::uint32_t tid) {
    RetryBudget budget(*this);
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kInsert);
    while (true) {
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      Frame frame;
      if (!co_await traverse_co(key, frame)) continue;
      const auto part16 = static_cast<std::int16_t>(frame.partition);
      trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      nmp::Response r = co_await call_co(
          frame.partition, tid,
          make_request(nmp::OpCode::kInsert, key, value, frame, tok.id));
      if (must_retry(r)) {
        on_retry_response(r, frame.partition, key, false);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        continue;
      }
      if (!r.lock_path) {
        if (cache_ != nullptr && r.ok) {
          cache_->invalidate_value(key, frame.partition, r.aux);
        }
        if (tok.sampled()) {
          trace::end_op(tok, telemetry::now_ns(), op8, part16,
                        /*offloaded=*/true);
        }
        co_return r.ok;
      }
      lock_path_->inc();
      bool done = false;
      if (complete_escalated_insert(frame, r.node, frame.partition, tid, done,
                                    tok.id)) {
        if (tok.sampled()) {
          trace::end_op(tok, telemetry::now_ns(), op8, part16,
                        /*offloaded=*/true);
        }
        co_return done;
      }
      // Host-side locking failed; the NMP path was unlocked on our behalf.
    }
  }

  /// Coroutine twin of scan(): same chunking, stitching, and retry rules;
  /// the per-chunk descent (including the stitch hop into the next begin
  /// subtree) interleaves via traverse_co and each chunk's round-trip parks
  /// on the publication slot.
  host::CoTask<std::size_t> scan_co(Key start, std::size_t count,
                                    ScanEntry* out, std::uint32_t tid) {
    std::size_t filled = 0;
    Key cur = start;
    RetryBudget budget(*this);
    bool have_part = false;
    std::uint32_t last_part = 0;
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kScan);
    bool offloaded = false;
    std::int16_t part16 = -1;
    while (filled < count) {
      const std::uint64_t c0 = tok.sampled() ? telemetry::now_ns() : 0;
      Frame frame;
      if (!co_await traverse_co(cur, frame)) continue;
      part16 = static_cast<std::int16_t>(frame.partition);
      trace::record_span(tok.id, trace::Phase::kHostDescend, c0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      const std::size_t want = count - filled < nmp::kScanChunk
                                   ? count - filled
                                   : nmp::kScanChunk;
      nmp::Request r = make_request(nmp::OpCode::kScan, cur,
                                    static_cast<Value>(want), frame, tok.id);
      r.host_node = out + filled;
      nmp::Response resp = co_await call_co(frame.partition, tid, r);
      offloaded = true;
      trace::record_span(tok.id, trace::Phase::kScanChunk, c0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      if (must_retry(resp)) {
        if (cache_ != nullptr && resp.failed_over) {
          cache_->bump_generation(frame.partition);
        }
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        scan_retry_->inc();
        budget.note_retry();
        continue;
      }
      if (have_part && frame.partition != last_part) scan_hops_->inc();
      have_part = true;
      last_part = frame.partition;
      filled += resp.value;
      if (resp.has_more) {
        cur = static_cast<Key>(resp.aux);
        continue;
      }
      if (!frame.bounded) break;  // rightmost subtree — nothing further
      if (frame.upper == ~Key{0}) break;
      cur = frame.upper + 1;
    }
    if (tok.sampled()) {
      trace::end_op(tok, telemetry::now_ns(), op8, part16, offloaded);
    }
    co_return filled;
  }
#endif  // !HYBRIDS_NO_INTERLEAVE

  // ----- non-blocking operations (§3.5) --------------------------------------

  struct Ticket {
    enum class State : std::uint8_t { kPending, kRejected, kDone };
    State state = State::kRejected;
    nmp::OpCode op = nmp::OpCode::kNop;
    Key key = 0;
    Value new_value = 0;
    nmp::OpHandle handle{};
    Frame frame{};
    std::uint32_t tid = 0;
    Value cached = 0;              // kDone: value served from the hot cache
    std::uint64_t cache_gen = 0;   // generation captured at posting time
  };

  Ticket op_async(nmp::OpCode op, Key key, Value value, std::uint32_t tid) {
    Ticket t;
    t.op = op;
    t.key = key;
    t.new_value = value;
    t.tid = tid;
    if (op == nmp::OpCode::kRead && cache_ != nullptr &&
        cache_->lookup_value(key, t.cached)) {
      t.state = Ticket::State::kDone;  // hot key: no publication round-trip
      return t;
    }
    // Async ops record their transport phases but no enclosing kOp span:
    // their wall-clock overlaps whatever the host does in between, so an
    // enclosing span would misattribute. A blocking fallback in finish()
    // traces as a fresh op.
    const std::uint64_t trace_id = trace::begin_op().id;
    while (true) {
      if (!traverse(key, t.frame)) continue;
      t.cache_gen = cache_gen(t.frame.partition);
      t.handle = offload_async(op, key, value, t.frame, tid, trace_id);
      t.state = t.handle.valid ? Ticket::State::kPending : Ticket::State::kRejected;
      return t;
    }
  }

  Ticket read_async(Key key, std::uint32_t tid) {
    return op_async(nmp::OpCode::kRead, key, 0, tid);
  }
  Ticket update_async(Key key, Value value, std::uint32_t tid) {
    return op_async(nmp::OpCode::kUpdate, key, value, tid);
  }
  Ticket insert_async(Key key, Value value, std::uint32_t tid) {
    return op_async(nmp::OpCode::kInsert, key, value, tid);
  }
  Ticket remove_async(Key key, std::uint32_t tid) {
    return op_async(nmp::OpCode::kRemove, key, 0, tid);
  }

  bool poll(const Ticket& t) {
    return t.state != Ticket::State::kPending || set_.poll(t.handle);
  }

  /// Completes a non-blocking operation; falls back to the blocking path on
  /// NMP-requested retries, and runs the host half of LOCK_PATH escalations.
  bool finish(Ticket& t, Value* out = nullptr) {
    if (t.state == Ticket::State::kDone) {
      if (out != nullptr) *out = t.cached;
      return true;
    }
    assert(t.state == Ticket::State::kPending);
    nmp::Response r = set_.retrieve(t.handle);
    if (must_retry(r)) {
      if (cache_ != nullptr && r.failed_over) {
        cache_->bump_generation(t.frame.partition);
      }
      host_retry_->inc();
      switch (t.op) {
        case nmp::OpCode::kRead: {
          Value v = 0;
          const bool ok = read(t.key, v, t.tid);
          if (out != nullptr) *out = v;
          return ok;
        }
        case nmp::OpCode::kUpdate:
          return update(t.key, t.new_value, t.tid);
        case nmp::OpCode::kInsert:
          return insert(t.key, t.new_value, t.tid);
        default:
          return remove(t.key, t.tid);
      }
    }
    if (r.lock_path) {
      lock_path_->inc();
      bool done = false;
      if (complete_escalated_insert(t.frame, r.node, t.frame.partition, t.tid, done)) {
        return done;
      }
      return insert(t.key, t.new_value, t.tid);  // locking failed: redo
    }
    if (cache_ != nullptr && r.ok) {
      const std::uint32_t part = t.frame.partition;
      switch (t.op) {
        case nmp::OpCode::kRead:
          cache_->fill_value(t.key, part, r.value, r.aux, t.cache_gen);
          break;
        case nmp::OpCode::kUpdate:
          cache_->invalidate_value(t.key, part, r.aux);
          cache_->fill_value(t.key, part, t.new_value, r.aux, t.cache_gen);
          break;
        default:  // kInsert / kRemove
          cache_->invalidate_value(t.key, part, r.aux);
          break;
      }
    }
    if (out != nullptr) *out = r.value;
    return r.ok;
  }

  // ----- introspection (quiescent-only) --------------------------------------

  const Config& config() const { return config_; }
  int last_host_level() const { return last_host_level_; }

  /// The underlying partition set (failover tests and the availability
  /// bench use it for trigger_failover / degraded / failovers).
  nmp::PartitionSet& partition_set() { return set_; }

  /// The hot-key cache, or nullptr when disabled (budget 0, runtime switch
  /// off, or HYBRIDS_NO_CACHE).
  cache::HotCache* hot_cache() { return cache_.get(); }

  int height() const {
    return root_.load(std::memory_order_acquire)->level + 1;
  }

  std::size_t size() const {
    return count_keys(root_.load(std::memory_order_acquire));
  }

  /// Number of host-side nodes (for split-sizing tests).
  std::size_t host_node_count() const {
    return count_host_nodes(root_.load(std::memory_order_acquire));
  }

  bool validate() const {
    const HostBNode* root = root_.load(std::memory_order_acquire);
    bool ok = true;
    validate_host(root, 0, false, ~Key{0}, false, ok);
    return ok;
  }

 private:
  /// A failover bounce must re-run the op exactly like an NMP-requested
  /// retry: the request may not have executed, and the blocking loops
  /// re-traverse before re-posting. (lock_path is handled separately — the
  /// escalation protocol has its own legs.)
  static bool must_retry(const nmp::Response& r) {
    return r.retry || r.failed_over;
  }

  std::uint64_t cache_gen(std::uint32_t part) const {
    return cache_ != nullptr ? cache_->generation(part) : 0;
  }

  /// Cache bookkeeping for a retried response: a shortcut-derived post that
  /// bounced means the cached begin reference is stale (drop it); a
  /// failover bounce drops the partition's whole cached generation.
  void on_retry_response(const nmp::Response& r, std::uint32_t part, Key key,
                         bool from_shortcut) {
    if (cache_ == nullptr) return;
    if (from_shortcut) cache_->erase_shortcut(key);
    if (r.failed_over) cache_->bump_generation(part);
  }

  static nmp::PartitionConfig make_partition_config(const Config& c) {
    nmp::PartitionConfig pc;
    pc.partitions = c.partitions;
    pc.max_threads = c.max_threads;
    pc.slots_per_thread = c.slots_per_thread;
    pc.partition_width = 1;  // btree routes via tagged pointers, not keys
    pc.watchdog_interval_ms = c.watchdog_interval_ms;
    pc.watchdog_misses_to_degrade = c.watchdog_misses_to_degrade;
    pc.watchdog_misses_to_recover = c.watchdog_misses_to_recover;
    pc.failover = c.failover;
    return pc;
  }

  /// Per-operation retry bookkeeping: counts NMP-requested retries, bumps
  /// `host.retry_budget_exhausted` once when the budget is crossed, and
  /// backs off exponentially past the budget so a partition stuck replying
  /// retry (injected faults, persistent seqnum races) is not hammered.
  class RetryBudget {
   public:
    explicit RetryBudget(HybridBTree& tree) : tree_(tree) {}
    void note_retry() {
      tree_.host_retry_->inc();
      if (++retries_ == tree_.config_.retry_budget) {
        tree_.retry_exhausted_->inc();
      }
      if (retries_ >= tree_.config_.retry_budget) backoff_.wait();
    }
    /// Past the budget the op stops trusting cached shortcuts (a poisoned
    /// entry must not keep feeding the retry loop).
    bool exhausted() const { return retries_ >= tree_.config_.retry_budget; }

   private:
    HybridBTree& tree_;
    util::ExpBackoff backoff_;
    std::uint32_t retries_ = 0;
  };

  // --- traversal -------------------------------------------------------------

  /// Optimistic descent to the last host level, then child-ref selection.
  /// On success, frame.begin / frame.partition identify the offload target
  /// and frame.seqs[last_host_level_] is the offloaded parent seqnum.
  bool traverse(Key key, Frame& frame) const {
    HostBNode* root = root_.load(std::memory_order_acquire);
    const std::uint32_t root_seq = root->wait_even_seq();
    if (root_.load(std::memory_order_acquire) != root) return false;
    frame.root_level = root->level;
    frame.path[root->level] = root;
    frame.seqs[root->level] = root_seq;
    frame.uppers[root->level] = 0;
    frame.bnd[root->level] = false;  // the root covers the whole key space

    int lvl = root->level;
    HostBNode* curr = root;
    while (lvl > last_host_level_) {
      const int idx = curr->find_child_index(key);
      HostBNode* child = curr->load_child(idx);
      // Stream the child's three lines in behind the seqlock validation
      // below; prefetch never faults, so a torn child pointer is safe to
      // hint. Only host levels are hinted — at the boundary the child slots
      // hold tagged NMP refs, not addresses.
      mem::prefetch_object(child, sizeof(HostBNode));
      // Child idx covers (keys[idx-1], keys[idx]]; the rightmost child
      // inherits the parent's bound. Read racily, validated below together
      // with the child pointer by the same seq_unchanged check.
      Key child_upper = frame.uppers[lvl];
      bool child_bnd = frame.bnd[lvl];
      if (idx < curr->load_slotuse()) {
        child_upper = curr->load_key(idx);
        child_bnd = true;
      }
      if (!curr->seq_unchanged(frame.seqs[lvl])) {
        if (!climb(frame, lvl, curr)) return false;
        continue;
      }
      const std::uint32_t child_seq = child->wait_even_seq();
      frame.path[lvl - 1] = child;
      frame.seqs[lvl - 1] = child_seq;
      frame.uppers[lvl - 1] = child_upper;
      frame.bnd[lvl - 1] = child_bnd;
      if (curr->seq_unchanged(frame.seqs[lvl])) {
        --lvl;
        curr = child;
      } else {
        if (!climb(frame, lvl, curr)) return false;
      }
    }
    // Select the NMP child reference under the last host node's seqlock.
    const int idx = curr->find_child_index(key);
    const std::uintptr_t bits = curr->load_child_bits(idx);
    Key sel_upper = frame.uppers[lvl];
    bool sel_bnd = frame.bnd[lvl];
    if (idx < curr->load_slotuse()) {
      sel_upper = curr->load_key(idx);
      sel_bnd = true;
    }
    if (!curr->seq_unchanged(frame.seqs[lvl])) return false;
    frame.begin = NmpRef{};
    frame.begin = ref_from_bits(bits);
    frame.partition = frame.begin.tag();
    frame.upper = sel_upper;
    frame.bounded = sel_bnd;
    return true;
  }

#if !defined(HYBRIDS_NO_INTERLEAVE)
  /// Coroutine twin of traverse(): same optimistic descent, but the
  /// whole-node prefetch of each child becomes a prefetch_and_yield
  /// suspension so a sibling operation runs while the child's three lines
  /// travel. Seqlock validation happens after the resume — a concurrent
  /// split during the suspension is caught by the same seq_unchanged /
  /// climb machinery as in the blocking path (host nodes are pool-recycled,
  /// never unmapped, so the racy child pointer stays safe to touch).
  host::CoTask<bool> traverse_co(Key key, Frame& frame) const {
    HostBNode* root = root_.load(std::memory_order_acquire);
    const std::uint32_t root_seq = root->wait_even_seq();
    if (root_.load(std::memory_order_acquire) != root) co_return false;
    frame.root_level = root->level;
    frame.path[root->level] = root;
    frame.seqs[root->level] = root_seq;
    frame.uppers[root->level] = 0;
    frame.bnd[root->level] = false;

    int lvl = root->level;
    HostBNode* curr = root;
    while (lvl > last_host_level_) {
      const int idx = curr->find_child_index(key);
      HostBNode* child = curr->load_child(idx);
      co_await host::prefetch_and_yield(child, sizeof(HostBNode));
      Key child_upper = frame.uppers[lvl];
      bool child_bnd = frame.bnd[lvl];
      if (idx < curr->load_slotuse()) {
        child_upper = curr->load_key(idx);
        child_bnd = true;
      }
      if (!curr->seq_unchanged(frame.seqs[lvl])) {
        if (!climb(frame, lvl, curr)) co_return false;
        continue;
      }
      const std::uint32_t child_seq = child->wait_even_seq();
      frame.path[lvl - 1] = child;
      frame.seqs[lvl - 1] = child_seq;
      frame.uppers[lvl - 1] = child_upper;
      frame.bnd[lvl - 1] = child_bnd;
      if (curr->seq_unchanged(frame.seqs[lvl])) {
        --lvl;
        curr = child;
      } else {
        if (!climb(frame, lvl, curr)) co_return false;
      }
    }
    const int idx = curr->find_child_index(key);
    const std::uintptr_t bits = curr->load_child_bits(idx);
    Key sel_upper = frame.uppers[lvl];
    bool sel_bnd = frame.bnd[lvl];
    if (idx < curr->load_slotuse()) {
      sel_upper = curr->load_key(idx);
      sel_bnd = true;
    }
    if (!curr->seq_unchanged(frame.seqs[lvl])) co_return false;
    frame.begin = NmpRef{};
    frame.begin = ref_from_bits(bits);
    frame.partition = frame.begin.tag();
    frame.upper = sel_upper;
    frame.bounded = sel_bnd;
    co_return true;
  }

  /// Publication round-trip for the _co ops: post async and park on the
  /// slot, falling back to the blocking call when no async slot is free or
  /// the lane is fenced/leased (call() owns the bounce/lease handling).
  host::CoTask<nmp::Response> call_co(std::uint32_t partition,
                                      std::uint32_t tid, nmp::Request req) {
    nmp::OpHandle h = set_.call_async(partition, tid, req);
    if (!h.valid) co_return set_.call(partition, tid, req);
    co_await host::suspend_until_done(set_, h);
    co_return set_.retrieve(h);
  }
#endif  // !HYBRIDS_NO_INTERLEAVE

  static NmpRef ref_from_bits(std::uintptr_t bits) {
    NmpRef r;
    // TaggedPtr has no public bit constructor taking uintptr_t; rebuild.
    r = NmpRef(reinterpret_cast<NmpBNode*>(bits & ~std::uintptr_t{0xF}),
               static_cast<unsigned>(bits & 0xF));
    return r;
  }

  static bool climb(Frame& frame, int& lvl, HostBNode*& curr) {
    while (lvl <= frame.root_level &&
           !frame.path[lvl]->seq_unchanged(frame.seqs[lvl])) {
      ++lvl;
    }
    if (lvl > frame.root_level) return false;
    curr = frame.path[lvl];
    return true;
  }

  // --- offload ----------------------------------------------------------------

  nmp::Request make_request(nmp::OpCode op, Key key, Value value,
                            const Frame& frame,
                            std::uint64_t trace_id = 0) const {
    nmp::Request r;
    r.op = op;
    r.key = key;
    r.value = value;
    r.node = frame.begin.ptr();
    r.aux = frame.seqs[last_host_level_];  // offloaded parent seqnum
    r.trace_id = trace_id;
    return r;
  }

  nmp::Response offload(nmp::OpCode op, Key key, Value value, const Frame& frame,
                        std::uint32_t tid, std::uint64_t trace_id = 0) {
    return set_.call(frame.partition, tid,
                     make_request(op, key, value, frame, trace_id));
  }

  nmp::OpHandle offload_async(nmp::OpCode op, Key key, Value value,
                              const Frame& frame, std::uint32_t tid,
                              std::uint64_t trace_id = 0) {
    return set_.call_async(frame.partition, tid,
                           make_request(op, key, value, frame, trace_id));
  }

  /// Host half of the LOCK_PATH protocol. Returns true if the insert ran to
  /// completion (sets `done` to the operation result); false if host-side
  /// locking failed and the caller must retry from the root.
  bool complete_escalated_insert(Frame& frame, void* pending_handle,
                                 std::uint32_t partition, std::uint32_t tid,
                                 bool& done, std::uint64_t trace_id = 0) {
    // Lock the host path bottom-up until the first non-full node.
    int locked_top = -1;
    bool locked_all = false;
    for (int lvl = last_host_level_; lvl <= frame.root_level; ++lvl) {
      HostBNode* node = frame.path[lvl];
      if (!node->try_lock_at(frame.seqs[lvl])) break;
      locked_top = lvl;
      if (node->slotuse < kBTreeInnerSlots) {
        locked_all = true;
        break;
      }
    }
    if (!locked_all && locked_top == frame.root_level) {
      locked_all = true;  // whole path incl. root locked: root will split
    }
    if (!locked_all) {
      for (int lvl = last_host_level_; lvl <= locked_top; ++lvl) {
        frame.path[lvl]->unlock();
      }
      nmp::Request r;
      r.op = nmp::OpCode::kUnlockPath;
      r.node = pending_handle;
      r.trace_id = trace_id;
      unlock_path_->inc();
      // A failover bounce does not mean the unlock ran: the pending
      // escalation record survives a combiner respawn, so re-post until a
      // live combiner serves it (otherwise the NMP path stays locked).
      while (set_.call(partition, tid, r).failed_over) {
        std::this_thread::yield();
      }
      return false;
    }
    // All affected host nodes locked: resume. RESUME_INSERT is guaranteed to
    // succeed (Listing 4 line 39). We pass the final (post-unlock) seqnum of
    // the last host node so the NMP side can stamp parent_seqnum (footnote 3).
    nmp::Request rr;
    rr.op = nmp::OpCode::kResumeInsert;
    rr.node = pending_handle;
    rr.aux = frame.seqs[last_host_level_] + 2;
    rr.trace_id = trace_id;
    resume_insert_->inc();
    nmp::Response resp = set_.call(partition, tid, rr);
    while (resp.failed_over) {
      // Failover bounced the post before a combiner served it. The pending
      // escalation record survives the respawn, so re-post instead of
      // falling into the !resp.ok leg below — treating a bounce as "no
      // record" would abandon a half-applied escalated insert.
      std::this_thread::yield();
      resp = set_.call(partition, tid, rr);
    }
    if (!resp.ok) {
      // The NMP side has no record of this escalation: the LOCK_PATH
      // response was spurious (fault injection) or the pending insert was
      // dropped. Release our locks and have the caller retry from the root.
      for (int lvl = last_host_level_; lvl <= locked_top; ++lvl) {
        frame.path[lvl]->unlock();
      }
      return false;
    }
    auto* new_top = static_cast<NmpBNode*>(resp.node);
    const Key up_key = static_cast<Key>(resp.value);
    std::vector<HostBNode*> created;
    link_child_into_locked_path(frame, locked_top, up_key,
                                NmpRef(new_top, partition).bits(), created);
    for (int lvl = last_host_level_; lvl <= locked_top; ++lvl) {
      frame.path[lvl]->unlock();
    }
    for (HostBNode* n : created) n->unlock();
    // The escalated insert committed and rewired begin subtrees:
    // conservatively drop the partition's cached entries. Escalations are
    // rare split events — a generation bump is cheaper than threading a
    // version through the two-phase protocol.
    if (cache_ != nullptr) cache_->bump_generation(partition);
    done = true;
    return true;
  }

  /// Inserts (divider, child-bits) into the locked host path starting at the
  /// last host level, splitting full nodes upward; grows the root if even it
  /// splits. Split-off siblings replicate the (locked) seqnum (footnote 3)
  /// and are returned for unlocking.
  void link_child_into_locked_path(Frame& frame, int locked_top, Key up_key,
                                   std::uintptr_t up_child_bits,
                                   std::vector<HostBNode*>& created) {
    int lvl = last_host_level_;
    while (true) {
      if (lvl > locked_top) {
        grow_root(frame.path[frame.root_level], up_key, up_child_bits);
        return;
      }
      HostBNode* node = frame.path[lvl];
      int pos = 0;
      while (pos < node->slotuse && node->keys[pos] < up_key) ++pos;
      if (node->slotuse < kBTreeInnerSlots) {
        for (int j = node->slotuse; j > pos; --j) {
          node->store_key(j, node->keys[j - 1]);
          node->store_child(j + 1, node->children[j]);
        }
        node->store_key(pos, up_key);
        node->store_child_bits(pos + 1, up_child_bits);
        node->store_slotuse(static_cast<std::uint16_t>(node->slotuse + 1));
        return;
      }
      // Split this inner node.
      Key all_keys[kBTreeInnerSlots + 1];
      std::uintptr_t all_children[kBTreeInnerSlots + 2];
      int n = 0;
      all_children[0] = reinterpret_cast<std::uintptr_t>(node->children[0]);
      for (int i = 0; i < node->slotuse; ++i) {
        if (i == pos) {
          all_keys[n] = up_key;
          all_children[n + 1] = up_child_bits;
          ++n;
        }
        all_keys[n] = node->keys[i];
        all_children[n + 1] = reinterpret_cast<std::uintptr_t>(node->children[i + 1]);
        ++n;
      }
      if (pos == node->slotuse) {
        all_keys[n] = up_key;
        all_children[n + 1] = up_child_bits;
        ++n;
      }
      const int mid = n / 2;
      HostBNode* right = new_host_node(node->level);
      right->seqnum.store(node->seqnum.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      for (int i = 0; i < mid; ++i) {
        node->store_key(i, all_keys[i]);
        node->store_child_bits(i, all_children[i]);
      }
      node->store_child_bits(mid, all_children[mid]);
      node->store_slotuse(static_cast<std::uint16_t>(mid));
      int rn = 0;
      for (int i = mid + 1; i < n; ++i) {
        right->keys[rn] = all_keys[i];
        right->children[rn] = reinterpret_cast<HostBNode*>(all_children[i]);
        ++rn;
      }
      right->children[rn] = reinterpret_cast<HostBNode*>(all_children[n]);
      right->slotuse = static_cast<std::uint16_t>(rn);
      created.push_back(right);
      up_key = all_keys[mid];
      up_child_bits = reinterpret_cast<std::uintptr_t>(right);
      ++lvl;
    }
  }

  void grow_root(HostBNode* old_root, Key up_key, std::uintptr_t right_bits) {
    HostBNode* new_root = new_host_node(old_root->level + 1);
    new_root->slotuse = 1;
    new_root->keys[0] = up_key;
    new_root->children[0] = old_root;
    new_root->children[1] = reinterpret_cast<HostBNode*>(right_bits);
    root_.store(new_root, std::memory_order_release);
  }

  // --- NMP-side dispatch (combiner thread) ------------------------------------

  static void apply(NmpBTree& bt, telemetry::Counter& seq_retries,
                    const nmp::Request& req, nmp::Response& resp,
                    NmpBTree::Finger* fg = nullptr) {
    NmpBTree::OpResult res;
    auto* begin = static_cast<NmpBNode*>(req.node);
    const auto pseq = static_cast<std::uint32_t>(req.aux);
    switch (req.op) {
      case nmp::OpCode::kRead:
        res = bt.read(begin, pseq, req.key, fg);
        break;
      case nmp::OpCode::kUpdate:
        res = bt.update(begin, pseq, req.key, req.value, fg);
        break;
      case nmp::OpCode::kInsert:
        res = bt.insert(begin, pseq, req.key, req.value, fg);
        break;
      case nmp::OpCode::kRemove:
        res = bt.remove(begin, pseq, req.key, fg);
        break;
      case nmp::OpCode::kScan: {
        std::uint32_t max = static_cast<std::uint32_t>(req.value);
        if (max > nmp::kScanChunk) {
          max = static_cast<std::uint32_t>(nmp::kScanChunk);
        }
        res = bt.scan(begin, pseq, req.key, max,
                      static_cast<ScanEntry*>(req.host_node), fg);
        break;
      }
      case nmp::OpCode::kResumeInsert:
        res = bt.resume_insert(req.node, pseq);
        // Completing an escalated split rewires nodes the finger may have
        // cached (the node-count snapshot catches the split, but stay safe).
        if (fg != nullptr) fg->reset();
        break;
      case nmp::OpCode::kUnlockPath:
        res = bt.unlock_path(req.node);
        if (fg != nullptr) fg->reset();
        break;
      default:
        break;
    }
    if (res.retry) seq_retries.inc();
    resp.ok = res.ok;
    resp.retry = res.retry;
    resp.lock_path = res.lock_path;
    resp.has_more = res.has_more;        // kScan continuation
    resp.aux = res.scan_next;
    if (res.lock_path) {
      resp.node = res.handle;
    } else if (res.new_top != nullptr) {
      resp.node = res.new_top;
      resp.value = res.up_key;
    } else {
      resp.value = res.value;
    }
    // Version echoes for the host value cache — point ops only (kScan's aux
    // is the continuation key and must stay untouched). Reads echo the
    // partition's CURRENT version, not a node stamp: a never-updated key
    // would otherwise sit below the partition fill floor forever and be
    // permanently uncacheable.
    if (!res.retry) {
      if (req.op == nmp::OpCode::kRead) {
        resp.aux = bt.current_version();
      } else if (res.ok && !res.lock_path &&
                 (req.op == nmp::OpCode::kUpdate ||
                  req.op == nmp::OpCode::kInsert ||
                  req.op == nmp::OpCode::kRemove)) {
        resp.aux = bt.next_version();
      }
    }
  }

  // --- construction ------------------------------------------------------------

  /// Builds NMP subtrees (levels 0..nmp_levels-1) partition by partition and
  /// host levels on top. Capacity per subtree: leaf_fill * inner_fill^(S).
  void build(const std::vector<Key>& keys, const std::vector<Value>& values) {
    assert(keys.size() == values.size());
    int leaf_fill = static_cast<int>(kBTreeLeafSlots * config_.fill);
    if (leaf_fill < 1) leaf_fill = 1;
    int inner_fill = static_cast<int>((kBTreeInnerSlots + 1) * config_.fill);
    if (inner_fill < 2) inner_fill = 2;

    const int top = config_.nmp_levels - 1;
    std::uint64_t subtree_cap = static_cast<std::uint64_t>(leaf_fill);
    for (int l = 0; l < top; ++l) subtree_cap *= static_cast<std::uint64_t>(inner_fill);

    const std::uint64_t n = keys.size();
    const std::uint64_t subtrees =
        n == 0 ? 1 : (n + subtree_cap - 1) / subtree_cap;
    const std::uint64_t per_part =
        (subtrees + config_.partitions - 1) / config_.partitions;

    struct TopRef {
      std::uintptr_t bits;
      Key max_key;
    };
    std::vector<TopRef> tops;
    std::uint64_t i = 0;
    std::uint64_t built = 0;
    while (built < subtrees) {
      const auto part = static_cast<std::uint32_t>(
          built / (per_part ? per_part : 1));
      const std::uint32_t p = part >= config_.partitions ? config_.partitions - 1 : part;
      const std::uint64_t take =
          n - i < subtree_cap ? n - i : subtree_cap;
      NmpBNode* root = build_nmp_subtree(*partitions_[p], top, keys, values, i,
                                         take, leaf_fill, inner_fill);
      const Key maxk = take > 0 ? keys[i + take - 1] : 0;
      tops.push_back({NmpRef(root, p).bits(), maxk});
      i += take;
      ++built;
    }

    // Host levels over the pushed-down subtrees.
    struct HostRef {
      std::uintptr_t bits;
      Key max_key;
    };
    std::vector<HostRef> level_refs;
    level_refs.reserve(tops.size());
    for (const auto& t : tops) level_refs.push_back({t.bits, t.max_key});
    std::uint16_t level = static_cast<std::uint16_t>(last_host_level_);
    while (true) {
      std::vector<HostRef> upper;
      std::size_t j = 0;
      while (j < level_refs.size()) {
        HostBNode* node = new_host_node(level);
        int c = 0;
        while (c < inner_fill && j < level_refs.size()) {
          node->children[c] = reinterpret_cast<HostBNode*>(level_refs[j].bits);
          if (c > 0) node->keys[c - 1] = level_refs[j - 1].max_key;
          ++c;
          ++j;
        }
        if (j == level_refs.size() - 1 && c <= kBTreeInnerSlots) {
          node->children[c] = reinterpret_cast<HostBNode*>(level_refs[j].bits);
          node->keys[c - 1] = level_refs[j - 1].max_key;
          ++c;
          ++j;
        }
        node->slotuse = static_cast<std::uint16_t>(c - 1);
        upper.push_back({reinterpret_cast<std::uintptr_t>(node),
                         level_refs[j - 1].max_key});
      }
      if (upper.size() == 1) {
        root_.store(reinterpret_cast<HostBNode*>(upper.front().bits),
                    std::memory_order_release);
        return;
      }
      level_refs = std::move(upper);
      ++level;
    }
  }

  NmpBNode* build_nmp_subtree(NmpBTree& bt, int level,
                              const std::vector<Key>& keys,
                              const std::vector<Value>& values,
                              std::uint64_t offset, std::uint64_t count,
                              int leaf_fill, int inner_fill) {
    NmpBNode* node = bt.make_node(level);
    if (level == 0) {
      const int take = static_cast<int>(
          count < static_cast<std::uint64_t>(leaf_fill) ? count : leaf_fill);
      for (int k = 0; k < take; ++k) {
        node->keys[k] = keys[offset + k];
        node->values[k] = values[offset + k];
      }
      node->slotuse = static_cast<std::uint16_t>(take);
      return node;
    }
    std::uint64_t child_cap = static_cast<std::uint64_t>(leaf_fill);
    for (int l = 1; l < level; ++l) child_cap *= static_cast<std::uint64_t>(inner_fill);
    int c = 0;
    std::uint64_t consumed = 0;
    while (consumed < count || c == 0) {
      const std::uint64_t take =
          count - consumed < child_cap ? count - consumed : child_cap;
      NmpBNode* child = build_nmp_subtree(bt, level - 1, keys, values,
                                          offset + consumed, take, leaf_fill,
                                          inner_fill);
      node->children[c] = child;
      if (c > 0) node->keys[c - 1] = keys[offset + consumed - 1];
      consumed += take;
      ++c;
      if (c == kBTreeInnerSlots + 1) break;
    }
    node->slotuse = static_cast<std::uint16_t>(c - 1);
    return node;
  }

  // --- introspection helpers ----------------------------------------------------

  std::size_t count_keys(const HostBNode* node) const {
    if (node->level == last_host_level_) {
      std::size_t n = 0;
      for (int i = 0; i <= node->slotuse; ++i) {
        NmpRef ref = ref_from_bits(node->load_child_bits(i));
        n += partitions_[ref.tag()]->count_keys(ref.ptr());
      }
      return n;
    }
    std::size_t n = 0;
    for (int i = 0; i <= node->slotuse; ++i) n += count_keys(node->children[i]);
    return n;
  }

  std::size_t count_host_nodes(const HostBNode* node) const {
    if (node->level == last_host_level_) return 1;
    std::size_t n = 1;
    for (int i = 0; i <= node->slotuse; ++i) {
      n += count_host_nodes(node->children[i]);
    }
    return n;
  }

  void validate_host(const HostBNode* node, Key lower, bool has_lower,
                     Key upper, bool upper_inclusive, bool& ok) const {
    if (!ok) return;
    if (static_cast<int>(node->level) < last_host_level_) { ok = false; return; }
    for (int i = 1; i < node->slotuse; ++i) {
      if (node->keys[i - 1] >= node->keys[i]) {  // dividers strictly ascend
        ok = false;
        return;
      }
    }
    Key lo = lower;
    bool has_lo = has_lower;
    for (int i = 0; i <= node->slotuse; ++i) {
      const Key child_upper = i < node->slotuse ? node->keys[i] : upper;
      const bool child_incl = i < node->slotuse ? true : upper_inclusive;
      if (static_cast<int>(node->level) == last_host_level_) {
        NmpRef ref = ref_from_bits(node->load_child_bits(i));
        if (ref.ptr() == nullptr || ref.tag() >= partitions_.size()) {
          ok = false;
          return;
        }
        const NmpBTree& bt = *partitions_[ref.tag()];
        if (ref.ptr()->level != bt.top_level()) { ok = false; return; }
        // parent_seqnum can lag the host parent's seqnum (it is refreshed
        // lazily) but must never exceed it.
        if (ref.ptr()->parent_seqnum > node->seqnum.load()) { ok = false; return; }
        if (!bt.validate_subtree(ref.ptr(), has_lo ? lo : 0, child_upper,
                                 child_incl)) {
          ok = false;
          return;
        }
      } else {
        const HostBNode* child = node->children[i];
        if (child == nullptr || child->level != node->level - 1) {
          ok = false;
          return;
        }
        validate_host(child, lo, has_lo, child_upper, child_incl, ok);
        if (!ok) return;
      }
      lo = child_upper;
      has_lo = true;
    }
  }

  void destroy_host(HostBNode* node) {
    if (node == nullptr) return;
    if (static_cast<int>(node->level) > last_host_level_) {
      for (int i = 0; i <= node->slotuse; ++i) destroy_host(node->children[i]);
    }
    node->~HostBNode();
    pool_.deallocate(node, sizeof(HostBNode));
  }

  HostBNode* new_host_node(int level) {
    HostBNode* n = new (pool_.allocate(sizeof(HostBNode))) HostBNode;
    n->level = static_cast<std::uint16_t>(level);
    return n;
  }

  // Host node pool: split siblings and grown roots cluster near their
  // neighbors. Nothing is freed before destroy_host(), so no grace period.
  // Declared before root_ so it outlives the destructor's node walk.
  mem::NodePool pool_;
  Config config_;
  int last_host_level_;
  nmp::PartitionSet set_;
  std::vector<std::unique_ptr<NmpBTree>> partitions_;
  std::atomic<HostBNode*> root_{nullptr};
  // Host-layer telemetry: NMP retry responses and LOCK_PATH protocol legs.
  telemetry::Counter* host_retry_;
  telemetry::Counter* retry_exhausted_;
  telemetry::Counter* lock_path_;
  telemetry::Counter* resume_insert_;
  telemetry::Counter* unlock_path_;
  // Scan stitching: partition changes between chunks and retried chunks.
  telemetry::Counter* scan_hops_;
  telemetry::Counter* scan_retry_;
  std::unique_ptr<cache::HotCache> cache_;
};

}  // namespace hybrids::ds
