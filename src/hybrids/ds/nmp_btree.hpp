// Partition-local NMP-managed portion of the hybrid B+ tree (§3.4).
//
// Each NMP partition holds a forest of B+ subtrees: the subtrees rooted at
// the paper's split level, pushed down from the initially host-built tree.
// Exactly one NMP core (combiner) ever touches a partition, so nodes use
// plain fields; the `locked` flag and `parent_seqnum` exist to coordinate
// *across queued operations* and across the host-NMP boundary:
//
//  * parent_seqnum mirrors the host-side parent's sequence number. An
//    offloaded operation carries the seqnum the host observed; if the
//    recorded value is newer, the begin node was split by an operation that
//    was queued earlier, and the host must retry (Listing 5 lines 2-8).
//  * When an insert would split even the partition's top-level node, the
//    affected path is left locked and the host is told to lock its own path
//    (LOCK_PATH); the insert completes on RESUME_INSERT, or the locks are
//    dropped on UNLOCK_PATH if host-side locking failed.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "hybrids/ds/btree_nodes.hpp"
#include "hybrids/mem/arena.hpp"
#include "hybrids/mem/memlayer.hpp"
#include "hybrids/types.hpp"

namespace hybrids::ds {

/// NMP-side B+ tree node (Listing 3, NMP-managed portion).
struct alignas(64) NmpBNode {
  std::uint32_t parent_seqnum = 0;  // host parent's seqnum (top-level nodes)
  std::uint16_t level = 0;
  bool locked = false;
  std::uint16_t slotuse = 0;
  Key keys[kBTreeInnerSlots] = {};
  union {
    NmpBNode* children[kBTreeInnerSlots + 1];
    Value values[kBTreeLeafSlots];
  };

  NmpBNode() { for (auto& c : children) c = nullptr; }
  NmpBNode(const NmpBNode&) = delete;
  NmpBNode& operator=(const NmpBNode&) = delete;

  bool is_leaf() const { return level == 0; }

  int find_child_index(Key key) const {
    int i = 0;
    while (i < slotuse && keys[i] < key) ++i;
    return i;
  }
};

class NmpBTree {
 public:
  /// `top_level` is the level of the pushed-down subtree roots (the paper's
  /// TOP_NMP_LEVEL); leaves are level 0.
  explicit NmpBTree(int top_level) : top_level_(top_level) {}

  int top_level() const { return top_level_; }

  /// Allocates a node owned by this partition, from the partition's bump
  /// arena (nodes pack into contiguous 64B-aligned chunks — one node is
  /// exactly three cache lines). Node memory is stable for the lifetime of
  /// the partition (host threads hold references); the tree never frees
  /// individual nodes (free-at-empty never merges), so the arena's freelists
  /// are unused here and everything is released by the destructor.
  NmpBNode* make_node(int level) {
    NmpBNode* n = new (arena_.allocate(sizeof(NmpBNode))) NmpBNode;
    n->level = static_cast<std::uint16_t>(level);
    ++node_count_;
    return n;
  }

  std::size_t node_count() const { return node_count_; }

  /// Monotonic per-partition value version, the B+tree twin of
  /// SeqSkipList's counter (combiner-thread only). The hybrid's apply path
  /// bumps it on every successful write and echoes it (or, for reads, the
  /// current value) to the host as the hot-key cache's invalidation token.
  std::uint64_t next_version() { return ++version_counter_; }
  std::uint64_t current_version() const { return version_counter_; }

  /// The partition's arena (test/introspection hook).
  const mem::PartitionArena& arena() const { return arena_; }

  /// Traversal finger for key-sorted batch application: the root-to-leaf
  /// path of the most recent finger-aware operation, with each node's
  /// inclusive key-range upper bound (derived from the separator chosen at
  /// its parent). The next operation for a key >= the remembered key resumes
  /// its descent at the deepest cached node whose range still covers the
  /// key, instead of re-descending from the subtree root.
  ///
  /// Validity: resuming requires the same begin node (a batch may span
  /// several pushed-down subtrees of one partition), an unchanged node count
  /// (any split — including one by the previous batch op — moves keys and
  /// separators, so the cached bounds would lie), and an ascending key.
  /// Removes (free-at-empty, never merge) and non-splitting inserts keep the
  /// cached path exact. The caller must reset() across batches and after
  /// RESUME_INSERT / UNLOCK_PATH.
  struct Finger {
    NmpBNode* path[kBTreeMaxLevels] = {};  // path[l] = visited node, level l
    Key upper[kBTreeMaxLevels] = {};       // inclusive upper bound of path[l]
    bool bounded[kBTreeMaxLevels] = {};    // false: rightmost, no upper bound
    Key key = 0;
    bool valid = false;
    std::size_t nodes = 0;   // node_count() snapshot (split invalidation)
    std::uint64_t hits = 0;  // descents resumed below the subtree root
    void reset() { valid = false; }
  };

  /// Result of applying one offloaded operation.
  struct OpResult {
    bool ok = false;
    bool retry = false;
    bool lock_path = false;
    bool has_more = false;   // kScan: subtree holds further keys >= scan_next
    Value value = 0;         // read result; kScan: entries written
    void* handle = nullptr;  // pending-insert record (LOCK_PATH escalation)
    NmpBNode* new_top = nullptr;  // RESUME_INSERT: split-off top-level node
    Key up_key = 0;               // RESUME_INSERT: divider for the host
    Key scan_next = 0;            // kScan: continuation key (if has_more)
  };

  /// Host-NMP boundary synchronization (Listing 5 lines 2-8). Returns true
  /// if the caller must retry.
  bool boundary_check(NmpBNode* begin, std::uint32_t offloaded_parent_seq) {
    assert(begin->level == top_level_);
    if (begin->parent_seqnum > offloaded_parent_seq) return true;
    if (begin->parent_seqnum < offloaded_parent_seq) {
      // The host parent changed because a *sibling* split; adopt the newer
      // sequence number for consistency.
      begin->parent_seqnum = offloaded_parent_seq;
    }
    return false;
  }

  OpResult read(NmpBNode* begin, std::uint32_t parent_seq, Key key,
                Finger* fg = nullptr) {
    OpResult r;
    if (boundary_check(begin, parent_seq)) { r.retry = true; return r; }
    NmpBNode* leaf = descend(begin, key, fg);
    for (int i = 0; i < leaf->slotuse; ++i) {
      if (leaf->keys[i] == key) {
        r.ok = true;
        r.value = leaf->values[i];
        return r;
      }
    }
    return r;
  }

  OpResult update(NmpBNode* begin, std::uint32_t parent_seq, Key key,
                  Value value, Finger* fg = nullptr) {
    OpResult r;
    if (boundary_check(begin, parent_seq)) { r.retry = true; return r; }
    NmpBNode* leaf = descend(begin, key, fg);
    for (int i = 0; i < leaf->slotuse; ++i) {
      if (leaf->keys[i] == key) {
        leaf->values[i] = value;
        r.ok = true;
        return r;
      }
    }
    return r;
  }

  OpResult remove(NmpBNode* begin, std::uint32_t parent_seq, Key key,
                  Finger* fg = nullptr) {
    OpResult r;
    if (boundary_check(begin, parent_seq)) { r.retry = true; return r; }
    NmpBNode* leaf = descend(begin, key, fg);
    if (leaf->locked) {
      // A pending escalated insert prepared a split around this leaf; the
      // removal would change slotuse under it (§3.4). Abort and retry.
      r.retry = true;
      return r;
    }
    for (int i = 0; i < leaf->slotuse; ++i) {
      if (leaf->keys[i] == key) {
        for (int j = i; j + 1 < leaf->slotuse; ++j) {
          leaf->keys[j] = leaf->keys[j + 1];
          leaf->values[j] = leaf->values[j + 1];
        }
        --leaf->slotuse;  // free-at-empty relaxation: never merge
        r.ok = true;
        return r;
      }
    }
    return r;
  }

  /// kScan chunk: collects up to `max` (key, value) pairs with key >= `start`
  /// from the subtree under `begin`, ascending, walking leaf to leaf via the
  /// finger's cached per-level upper bounds (the next leaf holds exactly the
  /// keys above the current leaf's inclusive bound). Reads mutate nothing, so
  /// locked leaves — a pending escalated insert's path — are safe to visit,
  /// same as read(). `has_more` is exact: when the chunk fills, the walk
  /// peeks ahead for the next matching key and reports it as `scan_next`.
  OpResult scan(NmpBNode* begin, std::uint32_t parent_seq, Key start,
                std::uint32_t max, ScanEntry* out, Finger* fg = nullptr) {
    OpResult r;
    if (boundary_check(begin, parent_seq)) { r.retry = true; return r; }
    Finger local;
    if (fg == nullptr) fg = &local;
    std::uint32_t n = 0;
    Key cur = start;
    for (;;) {
      NmpBNode* leaf = descend(begin, cur, fg);
      for (int i = 0; i < leaf->slotuse; ++i) {
        if (leaf->keys[i] < cur) continue;
        if (n == max) {
          r.has_more = true;
          r.scan_next = leaf->keys[i];
          r.value = n;
          r.ok = true;
          return r;
        }
        out[n].key = leaf->keys[i];
        out[n].value = leaf->values[i];
        ++n;
      }
      // Leaf exhausted. The next leaf's keys start right above this leaf's
      // inclusive upper bound; an unbounded level-0 entry means this was the
      // subtree's rightmost leaf.
      if (!fg->bounded[0]) break;
      const Key upper = fg->upper[0];
      if (upper == static_cast<Key>(~Key{0})) break;  // no keys above max Key
      cur = upper + 1;
    }
    r.value = n;
    r.ok = true;
    return r;
  }

  OpResult insert(NmpBNode* begin, std::uint32_t parent_seq, Key key,
                  Value value, Finger* fg = nullptr) {
    OpResult r;
    if (boundary_check(begin, parent_seq)) { r.retry = true; return r; }
    // Descend recording the path (Listing 5 lines 9-12). With a finger, the
    // recorded root-to-leaf path *is* the locking path below.
    NmpBNode* path[kBTreeMaxLevels];
    NmpBNode* curr;
    if (fg != nullptr) {
      curr = descend(begin, key, fg);
      for (int lvl = 0; lvl <= top_level_; ++lvl) path[lvl] = fg->path[lvl];
    } else {
      curr = begin;
      while (curr->level > 0) {
        path[curr->level] = curr;
        curr = curr->children[curr->find_child_index(key)];
        mem::prefetch_object(curr, sizeof(NmpBNode));
      }
      path[0] = curr;
    }
    // Duplicate check before acquiring anything.
    for (int i = 0; i < curr->slotuse; ++i) {
      if (curr->keys[i] == key) return r;  // ok = false
    }
    // Lock bottom-up while nodes are full (Listing 5 lines 13-24).
    bool locked_all = false;
    int locked_top = -1;
    for (int lvl = 0; lvl <= top_level_; ++lvl) {
      NmpBNode* node = path[lvl];
      if (node->locked) {
        // Conflict with a pending escalated insert: back off.
        for (int u = 0; u < lvl; ++u) path[u]->locked = false;
        r.retry = true;
        return r;
      }
      node->locked = true;
      locked_top = lvl;
      const int cap = lvl == 0 ? kBTreeLeafSlots : kBTreeInnerSlots;
      if (node->slotuse < cap) {
        locked_all = true;
        break;
      }
    }
    if (locked_all) {
      // Entire split chain is contained in this partition: do it now.
      complete_insert(path, locked_top, key, value, /*split_top=*/false, nullptr, nullptr);
      for (int u = 0; u <= locked_top; ++u) path[u]->locked = false;
      r.ok = true;
      return r;
    }
    // Even the top-level node must split: escalate to the host (keep the
    // path locked so concurrent inserts/removes cannot disturb it).
    auto pending = std::make_unique<PendingInsert>();
    for (int lvl = 0; lvl <= top_level_; ++lvl) pending->path[lvl] = path[lvl];
    pending->key = key;
    pending->value = value;
    pending->begin = begin;
    r.lock_path = true;
    r.handle = pending.get();
    pending_.push_back(std::move(pending));
    return r;
  }

  /// RESUME_INSERT: the host holds its side of the path locked; complete the
  /// split chain (the top node *will* split), unlock, and stamp the
  /// parent_seqnum both top-level nodes will have once the host unlocks
  /// (`host_final_seq`, footnote 3).
  OpResult resume_insert(void* handle, std::uint32_t host_final_seq) {
    OpResult r;
    PendingInsert* p = take_pending(handle);
    if (p == nullptr) {
      // Unknown pending-insert record: the LOCK_PATH response the host acted
      // on was spurious (fault injection) or the record was already released.
      // Reply failure so the host unlocks its path and retries from the root.
      return r;
    }
    NmpBNode* new_top = nullptr;
    Key up_key = 0;
    complete_insert(p->path, top_level_, p->key, p->value, /*split_top=*/true,
                    &new_top, &up_key);
    for (int u = 0; u <= top_level_; ++u) p->path[u]->locked = false;
    p->path[top_level_]->parent_seqnum = host_final_seq;
    new_top->parent_seqnum = host_final_seq;
    r.ok = true;
    r.new_top = new_top;
    r.up_key = up_key;
    release_pending(p);
    return r;
  }

  /// UNLOCK_PATH: host-side locking failed; roll back our locks.
  OpResult unlock_path(void* handle) {
    OpResult r;
    PendingInsert* p = take_pending(handle);
    if (p == nullptr) return r;  // spurious LOCK_PATH: nothing to unlock
    for (int u = 0; u <= top_level_; ++u) p->path[u]->locked = false;
    release_pending(p);
    r.ok = true;
    return r;
  }

  /// Quiescent-only structural check of one pushed-down subtree.
  bool validate_subtree(const NmpBNode* root, Key lower, Key upper,
                        bool upper_inclusive) const {
    if (root->locked) return false;
    if (root->is_leaf()) {
      Key prev = lower;
      bool first = lower == 0;
      for (int i = 0; i < root->slotuse; ++i) {
        const Key k = root->keys[i];
        if (!first && k <= prev) return false;
        if (upper_inclusive ? k > upper : k >= upper) return false;
        prev = k;
        first = false;
      }
      return true;
    }
    Key lo = lower;
    for (int i = 0; i <= root->slotuse; ++i) {
      const NmpBNode* child = root->children[i];
      if (child == nullptr || child->level != root->level - 1) return false;
      const Key child_upper = i < root->slotuse ? root->keys[i] : upper;
      const bool child_incl = i < root->slotuse ? true : upper_inclusive;
      if (!validate_subtree(child, lo, child_upper, child_incl)) return false;
      lo = child_upper;
    }
    return true;
  }

  std::size_t count_keys(const NmpBNode* root) const {
    if (root->is_leaf()) return root->slotuse;
    std::size_t n = 0;
    for (int i = 0; i <= root->slotuse; ++i) n += count_keys(root->children[i]);
    return n;
  }

 private:
  struct PendingInsert {
    NmpBNode* path[kBTreeMaxLevels] = {};
    Key key = 0;
    Value value = 0;
    NmpBNode* begin = nullptr;
  };

  NmpBNode* descend(NmpBNode* begin, Key key) const {
    NmpBNode* curr = begin;
    while (curr->level > 0) {
      NmpBNode* child = curr->children[curr->find_child_index(key)];
      // Stream in all three of the child's cache lines behind the demand
      // load of its first, so the key scan never stalls per line.
      mem::prefetch_object(child, sizeof(NmpBNode));
      curr = child;
    }
    return curr;
  }

  /// Finger-aware descent: resumes at the deepest cached node whose key
  /// range still covers `key` (see Finger for the validity conditions),
  /// records the traversed path/bounds into `fg`, and leaves it primed for
  /// the next ascending key. A null `fg` degrades to plain descend().
  NmpBNode* descend(NmpBNode* begin, Key key, Finger* fg) {
    if (fg == nullptr) return descend(begin, key);
    NmpBNode* curr = begin;
    // `begin` covers its whole host-routed range; treat it as unbounded —
    // a key outside that range would have arrived with a different begin.
    Key upper = 0;
    bool bounded = false;
    if (fg->valid && fg->nodes == node_count_ && key >= fg->key &&
        fg->path[top_level_] == begin) {
      int lvl = 0;
      while (lvl < top_level_ && fg->bounded[lvl] && key > fg->upper[lvl]) {
        ++lvl;
      }
      curr = fg->path[lvl];
      upper = fg->upper[lvl];
      bounded = fg->bounded[lvl];
      if (lvl < top_level_) ++fg->hits;
    }
    fg->path[curr->level] = curr;
    fg->upper[curr->level] = upper;
    fg->bounded[curr->level] = bounded;
    while (curr->level > 0) {
      const int i = curr->find_child_index(key);
      if (i < curr->slotuse) {
        upper = curr->keys[i];  // child i covers (keys[i-1], keys[i]]
        bounded = true;
      }
      curr = curr->children[i];
      // The finger bookkeeping below gives the later lines a few cycles of
      // distance before the child's keys are scanned.
      mem::prefetch_object(curr, sizeof(NmpBNode));
      fg->path[curr->level] = curr;
      fg->upper[curr->level] = upper;
      fg->bounded[curr->level] = bounded;
    }
    fg->key = key;
    fg->valid = true;
    fg->nodes = node_count_;
    return curr;
  }

  PendingInsert* take_pending(void* handle) {
    for (auto& p : pending_) {
      if (p.get() == handle) return p.get();
    }
    return nullptr;
  }

  void release_pending(PendingInsert* p) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->get() == p) {
        pending_.erase(it);
        return;
      }
    }
  }

  /// Single-threaded insert along a locked path. If `split_top` is set, the
  /// chain is known to split path[top_level_]; the new sibling and divider
  /// are returned for the host to link. Otherwise path[locked_top] absorbs.
  void complete_insert(NmpBNode* const* path, int locked_top, Key key,
                       Value value, bool split_top, NmpBNode** new_top_out,
                       Key* up_key_out) {
    (void)split_top;   // referenced by assertions only in release builds
    (void)locked_top;
    NmpBNode* leaf = path[0];
    Key up_key = 0;
    NmpBNode* up_child = nullptr;
    {
      int pos = 0;
      while (pos < leaf->slotuse && leaf->keys[pos] < key) ++pos;
      if (leaf->slotuse < kBTreeLeafSlots) {
        for (int j = leaf->slotuse; j > pos; --j) {
          leaf->keys[j] = leaf->keys[j - 1];
          leaf->values[j] = leaf->values[j - 1];
        }
        leaf->keys[pos] = key;
        leaf->values[pos] = value;
        ++leaf->slotuse;
        assert(!split_top);
        return;
      }
      Key all_keys[kBTreeLeafSlots + 1];
      Value all_vals[kBTreeLeafSlots + 1];
      int n = 0;
      for (int i = 0; i < leaf->slotuse; ++i) {
        if (i == pos) { all_keys[n] = key; all_vals[n] = value; ++n; }
        all_keys[n] = leaf->keys[i];
        all_vals[n] = leaf->values[i];
        ++n;
      }
      if (pos == leaf->slotuse) { all_keys[n] = key; all_vals[n] = value; ++n; }
      const int left_n = n / 2;
      NmpBNode* right = make_node(0);
      for (int i = 0; i < left_n; ++i) {
        leaf->keys[i] = all_keys[i];
        leaf->values[i] = all_vals[i];
      }
      leaf->slotuse = static_cast<std::uint16_t>(left_n);
      for (int i = left_n; i < n; ++i) {
        right->keys[i - left_n] = all_keys[i];
        right->values[i - left_n] = all_vals[i];
      }
      right->slotuse = static_cast<std::uint16_t>(n - left_n);
      up_key = all_keys[left_n - 1];
      up_child = right;
      if (top_level_ == 0) {
        // The leaf *is* the top-level node; hand the new sibling up.
        assert(split_top);
        *new_top_out = right;
        *up_key_out = up_key;
        return;
      }
    }
    int lvl = 1;
    while (up_child != nullptr) {
      NmpBNode* node = path[lvl];
      int pos = 0;
      while (pos < node->slotuse && node->keys[pos] < up_key) ++pos;
      if (node->slotuse < kBTreeInnerSlots) {
        for (int j = node->slotuse; j > pos; --j) {
          node->keys[j] = node->keys[j - 1];
          node->children[j + 1] = node->children[j];
        }
        node->keys[pos] = up_key;
        node->children[pos + 1] = up_child;
        ++node->slotuse;
        assert(!split_top || lvl < top_level_ + 1);
        assert(lvl <= locked_top);
        (void)locked_top;
        return;
      }
      Key all_keys[kBTreeInnerSlots + 1];
      NmpBNode* all_children[kBTreeInnerSlots + 2];
      int n = 0;
      all_children[0] = node->children[0];
      for (int i = 0; i < node->slotuse; ++i) {
        if (i == pos) { all_keys[n] = up_key; all_children[n + 1] = up_child; ++n; }
        all_keys[n] = node->keys[i];
        all_children[n + 1] = node->children[i + 1];
        ++n;
      }
      if (pos == node->slotuse) {
        all_keys[n] = up_key;
        all_children[n + 1] = up_child;
        ++n;
      }
      const int mid = n / 2;
      NmpBNode* right = make_node(node->level);
      for (int i = 0; i < mid; ++i) {
        node->keys[i] = all_keys[i];
        node->children[i] = all_children[i];
      }
      node->children[mid] = all_children[mid];
      node->slotuse = static_cast<std::uint16_t>(mid);
      int rn = 0;
      for (int i = mid + 1; i < n; ++i) {
        right->keys[rn] = all_keys[i];
        right->children[rn] = all_children[i];
        ++rn;
      }
      right->children[rn] = all_children[n];
      right->slotuse = static_cast<std::uint16_t>(rn);
      up_key = all_keys[mid];
      up_child = right;
      if (lvl == top_level_) {
        assert(split_top);
        *new_top_out = right;
        *up_key_out = up_key;
        return;
      }
      ++lvl;
    }
  }

  mem::PartitionArena arena_;  // declared before any node allocation use
  int top_level_;
  std::size_t node_count_ = 0;  // drives Finger split-invalidation
  std::uint64_t version_counter_ = 0;
  std::vector<std::unique_ptr<PendingInsert>> pending_;
};

}  // namespace hybrids::ds
