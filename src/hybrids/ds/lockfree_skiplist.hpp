// Lock-free skiplist (Herlihy–Lev–Shavit / Fraser), the paper's non-NMP
// skiplist baseline and the engine behind the hybrid skiplist's host-managed
// levels.
//
// Next pointers are marked pointers updated by CAS: the low bit marks the
// *source node* as logically deleted at that level. find() helps by snipping
// marked nodes; contains()/get() are wait-free traversals.
//
// Reclamation: towers come from a sharded slab pool (mem/node_pool.hpp).
// Removed towers are stamped with the current epoch and pushed on a Treiber
// retire stack; remove() periodically drains the stack, recycling every
// tower whose epoch-based grace period (mem/ebr.hpp) has elapsed back into
// the pool freelists — so the retired set stays bounded under churn instead
// of growing until destruction. Every public operation pins an EbrGuard for
// its pointer-chasing window; callers that keep using returned Node pointers
// after a call returns (the hybrid skiplist's host shortcut derivation) must
// hold their own guard around the whole window — guards are reentrant.
// Chunk memory is only returned to the OS by the destructor.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>

#include "hybrids/host/interleave.hpp"
#include "hybrids/mem/ebr.hpp"
#include "hybrids/mem/memlayer.hpp"
#include "hybrids/mem/node_pool.hpp"
#include "hybrids/types.hpp"
#include "hybrids/util/rng.hpp"

namespace hybrids::ds {

/// Draws a tower height from the paper's distribution: every node appears at
/// level 0; a node at level i appears at level i+1 with probability 1/2.
inline int random_height(util::Xoshiro256& rng, int max_height) {
  int h = 1;
  while (h < max_height && (rng.next() & 1) != 0) ++h;
  return h;
}

class LfSkipList {
 public:
  /// Values are stored packed with a 32-bit version tag. The baseline
  /// skiplist always uses version 0; the hybrid skiplist threads the NMP
  /// partition's per-node update counter through so that host-side value
  /// mirrors converge under concurrent updates (§3.3's insert/update races).
  static std::uint64_t pack_value(std::uint32_t version, Value v) {
    return (static_cast<std::uint64_t>(version) << 32) | v;
  }
  static Value unpack_value(std::uint64_t packed) {
    return static_cast<Value>(packed & 0xFFFFFFFFu);
  }
  static std::uint32_t unpack_version(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed >> 32);
  }

  struct Node {
    Key key;
    std::atomic<std::uint64_t> value;  // packed (version, value)
    std::uint16_t height;
    void* payload;                     // hybrid host levels: nmp_ptr counterpart
    std::atomic<Node*> retire_next;    // Treiber retire-stack link
    std::uint64_t retire_epoch;        // EBR stamp, set once at retire()
    std::atomic<std::uintptr_t> next[1];  // marked-pointer bits, `height` slots

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    Value value_now() const {
      return unpack_value(value.load(std::memory_order_acquire));
    }

    Node* next_ptr(int lvl) const {
      return unmark(next[lvl].load(std::memory_order_acquire));
    }
    bool marked_at(int lvl) const {
      return is_marked(next[lvl].load(std::memory_order_acquire));
    }
  };

  static Node* unmark(std::uintptr_t bits) {
    return reinterpret_cast<Node*>(bits & ~std::uintptr_t{1});
  }
  static bool is_marked(std::uintptr_t bits) { return (bits & 1) != 0; }
  static std::uintptr_t make_bits(Node* ptr, bool marked) {
    return reinterpret_cast<std::uintptr_t>(ptr) | (marked ? 1u : 0u);
  }

  explicit LfSkipList(int max_height) : max_height_(max_height) {
    assert(max_height >= 1 && max_height <= kMaxLevels);
    head_ = alloc_node(0, 0, max_height, nullptr);
    for (int i = 0; i < max_height; ++i) {
      head_->next[i].store(make_bits(nullptr, false), std::memory_order_relaxed);
    }
  }

  ~LfSkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = unmark(n->next[0].load(std::memory_order_relaxed));
      free_node(n);
      n = nx;
    }
    Node* r = retired_.load(std::memory_order_relaxed);
    while (r != nullptr) {
      Node* nx = r->retire_next.load(std::memory_order_relaxed);
      free_node(r);
      r = nx;
    }
  }

  LfSkipList(const LfSkipList&) = delete;
  LfSkipList& operator=(const LfSkipList&) = delete;

  int max_height() const { return max_height_; }
  Node* head() const { return head_; }

  /// Lock-free find with helping: locates the window (preds[l], succs[l])
  /// for `key` at every level, snipping marked nodes along the way. Returns
  /// true iff an unmarked node with `key` is present at the bottom level.
  /// preds/succs must have max_height() slots. The head sentinel may appear
  /// as a pred; succs may be null (tail).
  bool find(Key key, Node** preds, Node** succs) {
    mem::EbrGuard guard;
  retry:
    while (true) {
      Node* pred = head_;
      for (int lvl = max_height_ - 1; lvl >= 0; --lvl) {
        Node* curr = unmark(pred->next[lvl].load(std::memory_order_acquire));
        while (true) {
          if (curr == nullptr) break;
          std::uintptr_t succ_bits = curr->next[lvl].load(std::memory_order_acquire);
          // One-ahead prefetch: pull the successor's line while this node's
          // key compare (and any helping) resolves.
          mem::prefetch_read(unmark(succ_bits));
          while (is_marked(succ_bits)) {
            // curr is logically deleted at lvl: snip it out of pred's chain.
            std::uintptr_t expected = make_bits(curr, false);
            if (!pred->next[lvl].compare_exchange_strong(
                    expected, make_bits(unmark(succ_bits), false),
                    std::memory_order_acq_rel, std::memory_order_acquire)) {
              goto retry;
            }
            curr = unmark(pred->next[lvl].load(std::memory_order_acquire));
            if (curr == nullptr) break;
            succ_bits = curr->next[lvl].load(std::memory_order_acquire);
          }
          if (curr == nullptr) break;
          if (curr->key < key) {
            pred = curr;
            curr = unmark(succ_bits);
          } else {
            break;
          }
        }
        preds[lvl] = pred;
        succs[lvl] = curr;
        // Level-descent prefetch: pred's line is hot, the next level's first
        // successor usually is not yet.
        if (lvl > 0) {
          mem::prefetch_read(
              unmark(pred->next[lvl - 1].load(std::memory_order_relaxed)));
        }
      }
      return succs[0] != nullptr && succs[0]->key == key;
    }
  }

#if !defined(HYBRIDS_NO_INTERLEAVE)
  /// Coroutine twin of find(): same window computation, same helping, but
  /// each prefetch hint becomes a prefetch_and_yield suspension point so a
  /// host::Frame can run a sibling operation while the line is in flight
  /// (docs/INTERLEAVING.md). The EbrGuard is held across the suspensions —
  /// sibling coroutines resume on the same thread, so the reentrant
  /// thread-local pin behaves exactly as in the blocking path. find()'s
  /// `goto retry` on a failed snip becomes a structured restart flag
  /// (jumping backward over a co_await is ill-formed).
  host::CoTask<bool> find_co(Key key, Node** preds, Node** succs) {
    mem::EbrGuard guard;
    while (true) {
      bool restart = false;
      Node* pred = head_;
      for (int lvl = max_height_ - 1; lvl >= 0 && !restart; --lvl) {
        Node* curr = unmark(pred->next[lvl].load(std::memory_order_acquire));
        while (true) {
          if (curr == nullptr) break;
          std::uintptr_t succ_bits =
              curr->next[lvl].load(std::memory_order_acquire);
          // One-ahead prefetch: pull the successor's line and let a sibling
          // op run while it travels.
          co_await host::prefetch_and_yield(unmark(succ_bits));
          while (is_marked(succ_bits)) {
            std::uintptr_t expected = make_bits(curr, false);
            if (!pred->next[lvl].compare_exchange_strong(
                    expected, make_bits(unmark(succ_bits), false),
                    std::memory_order_acq_rel, std::memory_order_acquire)) {
              restart = true;
              break;
            }
            curr = unmark(pred->next[lvl].load(std::memory_order_acquire));
            if (curr == nullptr) break;
            succ_bits = curr->next[lvl].load(std::memory_order_acquire);
          }
          if (restart || curr == nullptr) break;
          if (curr->key < key) {
            pred = curr;
            curr = unmark(succ_bits);
          } else {
            break;
          }
        }
        if (restart) break;
        preds[lvl] = pred;
        succs[lvl] = curr;
        // Level-descent prefetch, again overlapped with sibling work.
        if (lvl > 0) {
          co_await host::prefetch_and_yield(
              unmark(pred->next[lvl - 1].load(std::memory_order_relaxed)));
        }
      }
      if (restart) continue;
      co_return succs[0] != nullptr && succs[0]->key == key;
    }
  }
#endif  // !HYBRIDS_NO_INTERLEAVE

  /// Wait-free lookup (no helping): returns the node for `key` if present
  /// and not marked at the bottom level, else null.
  Node* get_node(Key key) const {
    mem::EbrGuard guard;
    Node* pred = head_;
    Node* curr = nullptr;
    for (int lvl = max_height_ - 1; lvl >= 0; --lvl) {
      curr = unmark(pred->next[lvl].load(std::memory_order_acquire));
      while (curr != nullptr) {
        std::uintptr_t succ_bits = curr->next[lvl].load(std::memory_order_acquire);
        mem::prefetch_read(unmark(succ_bits));
        if (is_marked(succ_bits)) {
          curr = unmark(succ_bits);  // skip logically deleted node
          continue;
        }
        if (curr->key < key) {
          pred = curr;
          curr = unmark(succ_bits);
          continue;
        }
        break;
      }
      if (curr != nullptr && curr->key == key) {
        return curr->marked_at(0) ? nullptr : curr;
      }
    }
    return nullptr;
  }

  bool get(Key key, Value& out) const {
    mem::EbrGuard guard;  // spans the value read after get_node returns
    const Node* n = get_node(key);
    if (n == nullptr) return false;
    out = n->value_now();
    return true;
  }

  bool contains(Key key) const { return get_node(key) != nullptr; }

  /// Bottom-level range scan: descends to the first unmarked node with
  /// key >= start, then walks the level-0 chain with one-ahead prefetch.
  /// Same traversal contract as get(): wait-free, EBR-pinned.
  std::size_t scan(Key start, std::size_t count, ScanEntry* out) const {
    if (count == 0) return 0;
    mem::EbrGuard guard;
    Node* pred = head_;
    for (int lvl = max_height_ - 1; lvl >= 0; --lvl) {
      Node* curr = unmark(pred->next[lvl].load(std::memory_order_acquire));
      while (curr != nullptr) {
        std::uintptr_t succ_bits =
            curr->next[lvl].load(std::memory_order_acquire);
        mem::prefetch_read(unmark(succ_bits));
        if (is_marked(succ_bits) || curr->key < start) {
          if (!is_marked(succ_bits)) pred = curr;
          curr = unmark(succ_bits);
          continue;
        }
        break;
      }
    }
    std::size_t filled = 0;
    Node* curr = unmark(pred->next[0].load(std::memory_order_acquire));
    while (curr != nullptr && filled < count) {
      const std::uintptr_t succ_bits =
          curr->next[0].load(std::memory_order_acquire);
      mem::prefetch_read(unmark(succ_bits));
      if (!is_marked(succ_bits) && curr->key >= start) {
        out[filled].key = curr->key;
        out[filled].value = curr->value_now();
        ++filled;
      }
      curr = unmark(succ_bits);
    }
    return filled;
  }

  /// Allocates a node that is not yet linked. The hybrid skiplist builds the
  /// host node before offloading (Listing 1) so the NMP side can record its
  /// address as host_ptr, then links it with insert_node() after the NMP
  /// portion succeeds. Unlinked nodes are released with free_unlinked().
  Node* make_node(Key key, Value value, int height, void* payload = nullptr) {
    assert(height >= 1 && height <= max_height_);
    return alloc_node(key, value, height, payload);
  }

  /// Releases a node that never became reachable (no grace period needed).
  void free_unlinked(Node* n) { free_node(n); }

  /// Inserts (key, value) with a tower of `height` levels; `payload` is an
  /// opaque per-node pointer fixed before the node becomes reachable (the
  /// hybrid skiplist stores the NMP counterpart here). Fails if present.
  bool insert(Key key, Value value, int height, void* payload = nullptr) {
    Node* node = make_node(key, value, height, payload);
    if (insert_node(node)) return true;
    free_node(node);
    return false;
  }

  /// Links a pre-allocated node. Fails (without freeing `node`) if the key
  /// is already present.
  bool insert_node(Node* node) {
    mem::EbrGuard guard;
    const Key key = node->key;
    const int height = node->height;
    Node* preds[kMaxLevels];
    Node* succs[kMaxLevels];
    while (true) {
      if (find(key, preds, succs)) {
        return false;
      }
      for (int lvl = 0; lvl < height; ++lvl) {
        node->next[lvl].store(make_bits(succs[lvl], false),
                              std::memory_order_relaxed);
      }
      // Linearization: link at the bottom level.
      std::uintptr_t expected = make_bits(succs[0], false);
      if (!preds[0]->next[0].compare_exchange_strong(
              expected, make_bits(node, false), std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        continue;  // window moved; retry from find
      }
      // Link upper levels; helping removals may have marked us meanwhile.
      for (int lvl = 1; lvl < height; ++lvl) {
        while (true) {
          std::uintptr_t own_bits = node->next[lvl].load(std::memory_order_acquire);
          if (is_marked(own_bits)) return true;  // concurrently removed; done
          Node* succ = succs[lvl];
          if (unmark(own_bits) != succ) {
            if (!node->next[lvl].compare_exchange_strong(
                    own_bits, make_bits(succ, false), std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
              continue;  // someone marked us or changed our pointer; recheck
            }
          }
          std::uintptr_t exp = make_bits(succ, false);
          if (preds[lvl]->next[lvl].compare_exchange_strong(
                  exp, make_bits(node, false), std::memory_order_acq_rel,
                  std::memory_order_acquire)) {
            break;
          }
          // Window moved at this level: recompute and try again. If the node
          // vanished (concurrent remove), find() snips and we stop linking.
          if (!find(key, preds, succs) || succs[0] != node) return true;
        }
      }
      return true;
    }
  }

  /// Updates the value for `key` in place; fails if absent.
  bool update(Key key, Value value) {
    mem::EbrGuard guard;  // spans the store after get_node returns
    Node* n = get_node(key);
    if (n == nullptr) return false;
    n->value.store(pack_value(0, value), std::memory_order_release);
    return true;
  }

  /// Versioned value write used by the hybrid skiplist: only installs
  /// (version, value) if the node currently holds an older version, so host
  /// mirrors of NMP values converge regardless of the order in which host
  /// threads complete their update callbacks.
  static void update_versioned(Node* n, std::uint32_t version, Value value) {
    std::uint64_t cur = n->value.load(std::memory_order_acquire);
    const std::uint64_t desired = pack_value(version, value);
    while (unpack_version(cur) < version) {
      if (n->value.compare_exchange_weak(cur, desired, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        return;
      }
    }
  }

  /// Removes `key`. The thread whose CAS marks the bottom level wins; losers
  /// (and absent keys) return false.
  bool remove(Key key) {
    mem::EbrGuard guard;
    Node* preds[kMaxLevels];
    Node* succs[kMaxLevels];
    while (true) {
      if (!find(key, preds, succs)) return false;
      Node* victim = succs[0];
      // Mark upper levels top-down (removals proceed top-to-bottom).
      for (int lvl = victim->height - 1; lvl >= 1; --lvl) {
        std::uintptr_t bits = victim->next[lvl].load(std::memory_order_acquire);
        while (!is_marked(bits)) {
          victim->next[lvl].compare_exchange_weak(bits, bits | 1,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire);
        }
      }
      // Bottom level decides the winner (linearization point of removal).
      std::uintptr_t bits = victim->next[0].load(std::memory_order_acquire);
      while (true) {
        if (is_marked(bits)) return false;  // somebody else won
        if (victim->next[0].compare_exchange_strong(bits, bits | 1,
                                                    std::memory_order_acq_rel,
                                                    std::memory_order_acquire)) {
          (void)find(key, preds, succs);  // snip victim everywhere
          retire(victim);
          maybe_reclaim();
          return true;
        }
      }
    }
  }

  /// Number of unmarked nodes at the bottom level. O(n); quiescent use only.
  std::size_t size() const {
    std::size_t n = 0;
    for (Node* c = unmark(head_->next[0].load(std::memory_order_acquire));
         c != nullptr; c = unmark(c->next[0].load(std::memory_order_acquire))) {
      if (!c->marked_at(0)) ++n;
    }
    return n;
  }

  /// Structural check (quiescent use only): keys strictly ascend per level
  /// and every node linked at level i is linked at level i-1.
  bool validate() const {
    for (int lvl = 0; lvl < max_height_; ++lvl) {
      Key prev = 0;
      bool first = true;
      for (Node* n = unmark(head_->next[lvl].load()); n != nullptr;
           n = unmark(n->next[lvl].load())) {
        if (n->marked_at(lvl)) continue;
        if (!first && n->key <= prev) return false;
        first = false;
        prev = n->key;
        if (lvl > 0) {
          bool seen = false;
          for (Node* m = unmark(head_->next[lvl - 1].load()); m != nullptr;
               m = unmark(m->next[lvl - 1].load())) {
            if (m == n) {
              seen = true;
              break;
            }
          }
          if (!seen) return false;
        }
      }
    }
    return true;
  }

  static constexpr int kMaxLevels = 32;

  /// Retired towers currently awaiting their grace period (approximate under
  /// concurrency; exact when quiescent). Bounded under churn: remove()
  /// drains eligible towers back into the pool every kDrainInterval retires.
  std::size_t retired_count() const {
    return retired_count_.load(std::memory_order_relaxed);
  }

  /// Drains every retired tower whose EBR grace period has elapsed into the
  /// pool freelists; advances the epoch first so steady-state churn makes
  /// progress. Safe to call from any thread (single drainer at a time;
  /// losers return 0). Returns the number of towers recycled.
  std::size_t reclaim_retired() {
    if (draining_.exchange(true, std::memory_order_acquire)) return 0;
    mem::Ebr::try_advance();
    Node* list = retired_.exchange(nullptr, std::memory_order_acq_rel);
    Node* keep_head = nullptr;
    Node* keep_tail = nullptr;
    std::size_t freed = 0;
    while (list != nullptr) {
      Node* nx = list->retire_next.load(std::memory_order_relaxed);
      if (mem::Ebr::safe(list->retire_epoch)) {
        free_node(list);
        ++freed;
      } else {
        list->retire_next.store(keep_head, std::memory_order_relaxed);
        keep_head = list;
        if (keep_tail == nullptr) keep_tail = list;
      }
      list = nx;
    }
    if (keep_head != nullptr) {
      Node* h = retired_.load(std::memory_order_relaxed);
      do {
        keep_tail->retire_next.store(h, std::memory_order_relaxed);
      } while (!retired_.compare_exchange_weak(h, keep_head,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
    }
    retired_count_.fetch_sub(freed, std::memory_order_relaxed);
    draining_.store(false, std::memory_order_release);
    return freed;
  }

  /// The backing pool (test/introspection hook).
  mem::NodePool& pool() { return pool_; }

 private:
  static std::size_t node_bytes(int height) {
    return sizeof(Node) + static_cast<std::size_t>(height - 1) *
                              sizeof(std::atomic<std::uintptr_t>);
  }

  Node* alloc_node(Key key, Value value, int height, void* payload) {
    void* raw = pool_.allocate(node_bytes(height));
    Node* n = static_cast<Node*>(raw);
    n->key = key;
    new (&n->value) std::atomic<std::uint64_t>(pack_value(0, value));
    n->height = static_cast<std::uint16_t>(height);
    n->payload = payload;
    new (&n->retire_next) std::atomic<Node*>(nullptr);
    n->retire_epoch = 0;
    for (int i = 0; i < height; ++i) {
      new (&n->next[i]) std::atomic<std::uintptr_t>(0);
    }
    return n;
  }

  void free_node(Node* n) { pool_.deallocate(n, node_bytes(n->height)); }

  void retire(Node* n) {
    n->retire_epoch = mem::Ebr::current();
    retired_count_.fetch_add(1, std::memory_order_relaxed);
    Node* head = retired_.load(std::memory_order_relaxed);
    do {
      n->retire_next.store(head, std::memory_order_relaxed);
    } while (!retired_.compare_exchange_weak(head, n, std::memory_order_release,
                                             std::memory_order_relaxed));
  }

  /// Amortized reclamation: one drain attempt per kDrainInterval retires.
  void maybe_reclaim() {
    if (retire_ticks_.fetch_add(1, std::memory_order_relaxed) %
            kDrainInterval ==
        kDrainInterval - 1) {
      (void)reclaim_retired();
    }
  }

  static constexpr std::uint32_t kDrainInterval = 32;

  mem::NodePool pool_;  // declared first: destroyed after the node walks
  int max_height_;
  Node* head_;
  std::atomic<Node*> retired_{nullptr};
  std::atomic<std::size_t> retired_count_{0};
  std::atomic<std::uint32_t> retire_ticks_{0};
  std::atomic<bool> draining_{false};
};

}  // namespace hybrids::ds
