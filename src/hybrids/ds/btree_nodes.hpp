// B+ tree node definitions shared by the host-only seqlock B+ tree and the
// host-managed portion of the hybrid B+ tree (Listing 3 of the paper).
//
// Geometry follows the paper's 128-byte OLTP node: leaves hold up to 14
// key-value pairs; non-leaf nodes hold up to 14 dividing keys and 15
// children. (On a 64-bit host the struct is physically larger than 128B;
// the simulator charges the architectural 128B per node access, which is
// what the paper's DRAM-read counts measure.)
//
// Concurrency: every host node carries a sequence lock. Writers make the
// seqnum odd with a CAS, mutate, and release by bumping it to the next even
// value. Readers are optimistic: record an even seqnum, read fields through
// relaxed atomic_refs (no torn reads, no UB), then validate that the seqnum
// is unchanged.
#pragma once

#include <atomic>
#include <cstdint>

#include "hybrids/types.hpp"
#include "hybrids/util/backoff.hpp"

namespace hybrids::ds {

inline constexpr int kBTreeLeafSlots = 14;   // key-value pairs per leaf
inline constexpr int kBTreeInnerSlots = 14;  // dividing keys; children = +1
inline constexpr int kBTreeMaxLevels = 24;

/// Host-side B+ tree node (root / inner / leaf). `level` is 0 for leaves.
/// In the hybrid B+ tree's host portion, nodes at the last host level store
/// tagged pointers to NMP-side nodes in `children` (partition id in the low
/// bits); the node layout is identical.
struct alignas(64) HostBNode {
  std::atomic<std::uint32_t> seqnum{0};  // even = unlocked
  std::uint16_t level = 0;
  std::uint16_t slotuse = 0;  // #keys (leaf) or #dividing keys (inner)
  Key keys[kBTreeInnerSlots] = {};
  union {
    HostBNode* children[kBTreeInnerSlots + 1];
    Value values[kBTreeLeafSlots];
  };

  HostBNode() { for (auto& c : children) c = nullptr; }
  HostBNode(const HostBNode&) = delete;
  HostBNode& operator=(const HostBNode&) = delete;

  bool is_leaf() const { return level == 0; }

  // --- racy-read accessors (validated by the caller via seqnum) -----------
  std::uint16_t load_slotuse() const {
    return std::atomic_ref<const std::uint16_t>(slotuse).load(std::memory_order_relaxed);
  }
  Key load_key(int i) const {
    return std::atomic_ref<const Key>(keys[i]).load(std::memory_order_relaxed);
  }
  HostBNode* load_child(int i) const {
    return std::atomic_ref<HostBNode* const>(children[i]).load(std::memory_order_relaxed);
  }
  std::uintptr_t load_child_bits(int i) const {
    return reinterpret_cast<std::uintptr_t>(load_child(i));
  }
  Value load_value(int i) const {
    return std::atomic_ref<const Value>(values[i]).load(std::memory_order_relaxed);
  }

  // --- writer-side accessors (must hold the node's seqlock) ----------------
  void store_slotuse(std::uint16_t v) {
    std::atomic_ref<std::uint16_t>(slotuse).store(v, std::memory_order_relaxed);
  }
  void store_key(int i, Key k) {
    std::atomic_ref<Key>(keys[i]).store(k, std::memory_order_relaxed);
  }
  void store_child(int i, HostBNode* c) {
    std::atomic_ref<HostBNode*>(children[i]).store(c, std::memory_order_relaxed);
  }
  void store_child_bits(int i, std::uintptr_t bits) {
    store_child(i, reinterpret_cast<HostBNode*>(bits));
  }
  void store_value(int i, Value v) {
    std::atomic_ref<Value>(values[i]).store(v, std::memory_order_relaxed);
  }

  // --- sequence lock --------------------------------------------------------
  std::uint32_t seq() const { return seqnum.load(std::memory_order_acquire); }

  /// Attempts to lock the node, succeeding only if its seqnum still equals
  /// the (even) value the caller recorded during traversal.
  bool try_lock_at(std::uint32_t recorded) {
    std::uint32_t expected = recorded;
    return (recorded % 2 == 0) &&
           seqnum.compare_exchange_strong(expected, recorded + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

  /// Locks unconditionally (spins until the CAS from an even value wins).
  std::uint32_t lock() {
    util::Backoff backoff;
    while (true) {
      std::uint32_t s = seqnum.load(std::memory_order_acquire);
      if (s % 2 == 0 && seqnum.compare_exchange_weak(s, s + 1,
                                                     std::memory_order_acq_rel,
                                                     std::memory_order_acquire)) {
        return s + 1;
      }
      backoff.spin();
    }
  }

  void unlock() {
    const std::uint32_t s = seqnum.load(std::memory_order_relaxed);
    seqnum.store(s + 1, std::memory_order_release);
  }

  /// Spin until the seqnum is even (no writer in the critical section) and
  /// return it.
  std::uint32_t wait_even_seq() const {
    util::Backoff backoff;
    while (true) {
      std::uint32_t s = seqnum.load(std::memory_order_acquire);
      if (s % 2 == 0) return s;
      backoff.spin();
    }
  }

  /// Reader validation: true if the node has not been written since the
  /// caller recorded `s` (issues the acquire fence of the seqlock protocol).
  bool seq_unchanged(std::uint32_t s) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return seqnum.load(std::memory_order_relaxed) == s;
  }

  /// Child index for `key` in an inner node under racy reads: the first slot
  /// whose dividing key is >= key (subtrees left of a divider hold keys <=
  /// divider). Caller validates via seqnum.
  int find_child_index(Key key) const {
    const int n = load_slotuse();
    int i = 0;
    while (i < n && load_key(i) < key) ++i;
    return i;
  }
};

}  // namespace hybrids::ds
