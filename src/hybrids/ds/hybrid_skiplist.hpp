// Hybrid skiplist (§3.3) — the paper's primary skiplist contribution.
//
// The structure is split at a level boundary: the top (total_height -
// nmp_height) levels form the host-managed portion, a lock-free skiplist
// whose working set is sized to fit the last-level cache; the bottom
// nmp_height levels are range-partitioned across NMP partitions, each a
// sequential skiplist owned by one NMP core. A node of tower height h >
// nmp_height exists in both portions (host part + NMP part linked by
// payload/host_ptr cross-references); shorter nodes exist only NMP-side.
//
// The host portion lives behind ds::HostIndex: cache-line-sized fat B-link
// nodes by default (fat_skiplist.hpp — one two-line node per descent level),
// or the classic pointer-node lock-free skiplist under HYBRIDS_NO_FATNODE /
// set_fatnode_enabled(false). Both engines produce the same per-key Entry
// records, so the split-structure protocol below is layout-agnostic; a
// descent's result is a HostIndex::Window (match + pred entries, plus the
// fat leaf/version token the shortcut cache revalidates with).
//
// Host traversals act as shortcuts: the predecessor at the bottom host level
// supplies the begin-NMP-traversal node for the offloaded remainder of the
// operation. Correctness around concurrently removed begin nodes follows the
// paper: the NMP core logically marks remove targets before unlinking and
// never reuses their memory, so a stale begin node is detected and the host
// retries (Listing 2 lines 7-10).
//
// Ordering invariants (§3.3): insertions apply NMP-portion first, then host
// portion; removals apply host portion first, then NMP portion — preserving
// the skiplist property (level i is a subset of level i-1) across the split.
//
// Memory: host towers are pool-backed and recycled through an EBR grace
// period (see lockfree_skiplist.hpp), which adds two rules here. (1) Every
// window that reads fields of a host node returned by find() — deriving the
// begin-node shortcut, serving a cache-hit read — runs under a mem::EbrGuard
// that is dropped *before* the blocking NMP call, so a parked host thread
// never stalls reclamation. (2) The update path must not dereference the
// host-node address echoed back in a response (the tower may have been
// removed and recycled in flight); refresh_mirror() re-finds the live node
// by key and only writes if it is the very tower the combiner saw. Residual
// same-address ABA (tower recycled into a new tower for the same key) is
// harmless because value versions come from the partition's monotonic
// counter: the new incarnation's mirror is seeded strictly above any stale
// in-flight version, so update_versioned() discards the stale write.
#pragma once

#include <cassert>
#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "hybrids/cache/hot_cache.hpp"
#include "hybrids/ds/host_index.hpp"
#include "hybrids/ds/lockfree_skiplist.hpp"
#include "hybrids/ds/seq_skiplist.hpp"
#include "hybrids/host/interleave.hpp"
#include "hybrids/mem/ebr.hpp"
#include "hybrids/nmp/partition_set.hpp"
#include "hybrids/telemetry/registry.hpp"
#include "hybrids/trace/trace.hpp"
#include "hybrids/types.hpp"
#include "hybrids/util/backoff.hpp"
#include "hybrids/util/cache_aligned.hpp"
#include "hybrids/util/rng.hpp"

namespace hybrids::ds {

class HybridSkipList {
 public:
  struct Config {
    int total_height = 22;  // paper: log2(initial item count)
    int nmp_height = 9;     // lower levels in NMP memory (NMP_HEIGHT)
    std::uint32_t partitions = 8;
    Key partition_width = 0;  // key-range width per partition (required)
    std::uint32_t max_threads = 8;
    std::uint32_t slots_per_thread = 4;
    std::uint64_t seed = 1;

    // Adaptive promotion (§7 extension): when a short (NMP-only) key is
    // accessed `promote_threshold` times, it is raised into the host-managed
    // portion, up to `promote_budget` promotions. 0 disables. The budget is
    // a live knob (set_promote_budget) so the cache controller can move the
    // host-managed split online.
    std::uint32_t promote_threshold = 0;
    std::uint32_t promote_budget = 0;

    // Hot-key cache (cache/hot_cache.hpp): shared byte budget for the
    // value + shortcut tiers; 0 disables (also disabled by
    // HYBRIDS_NO_CACHE or cache::set_cache_enabled(false) at construction).
    // The shortcut tier serves read/update descents; insert/remove/scan
    // keep their full host descent (remove's host-portion-first ordering
    // is semantic, inserts need the host window anyway).
    std::size_t cache_budget_bytes = 0;
    double cache_value_ratio = 0.5;

    // Stale-begin-node retries per operation before the budget counts as
    // exhausted. Past the budget the operation backs off exponentially and
    // falls back to a full root-down NMP retraversal (begin node dropped,
    // so the partition head is used — a start that can never be stale), and
    // `host.retry_budget_exhausted` is bumped.
    std::uint32_t retry_budget = 8;

    // NMP runtime watchdog / failover passthrough (see nmp::PartitionConfig
    // for the semantics; chaos tests shrink these to force fast failover).
    std::uint32_t watchdog_interval_ms = 10;
    std::uint32_t watchdog_misses_to_degrade = 5;
    std::uint32_t watchdog_misses_to_recover = 3;
    nmp::FailoverPolicy failover = nmp::FailoverPolicy::kRespawn;

    int host_height() const { return total_height - nmp_height; }
  };

  /// Chooses the host/NMP split so the host-managed portion (the top levels,
  /// expected node count 2^host_levels) fits in `llc_bytes` of cache, per
  /// the paper's sizing rule: 2^x * sizeof(Node) ~ LLC size.
  static int nmp_height_for_cache(std::uint64_t initial_keys,
                                  std::size_t llc_bytes,
                                  std::size_t node_bytes = 128) {
    int total = 1;
    while ((1ull << total) < initial_keys) ++total;
    int host_levels = 1;
    while ((1ull << (host_levels + 1)) * node_bytes <= llc_bytes &&
           host_levels < total - 1) {
      ++host_levels;
    }
    int nmp = total - host_levels;
    return nmp < 1 ? 1 : nmp;
  }

  explicit HybridSkipList(const Config& config)
      : config_(config),
        host_(config.host_height()),
        set_(make_partition_config(config)),
        promote_budget_(config.promote_budget) {
    assert(config.total_height > config.nmp_height);
    assert(config.nmp_height >= 1);
    if (cache::kCacheCompiledIn && cache::cache_enabled() &&
        config.cache_budget_bytes > 0) {
      cache::HotCache::Config cc;
      cc.budget_bytes = config.cache_budget_bytes;
      cc.value_ratio = config.cache_value_ratio;
      cc.partitions = config.partitions;
      cache_ = std::make_unique<cache::HotCache>(cc);
    }
    namespace tn = telemetry::names;
    host_read_hits_ = &telemetry::counter(tn::kHostReadHits);
    host_retry_ = &telemetry::counter(tn::kHostRetryTotal);
    retry_exhausted_ = &telemetry::counter(tn::kRetryBudgetExhausted);
    scan_hops_ = &telemetry::counter(tn::kScanPartitionHops);
    scan_retry_ = &telemetry::counter(tn::kScanRetry);
    lists_.reserve(config.partitions);
    for (std::uint32_t p = 0; p < config.partitions; ++p) {
      lists_.push_back(std::make_unique<SeqSkipList>(config.nmp_height));
      SeqSkipList* list = lists_.back().get();
      const int nmp_height = config.nmp_height;
      const std::uint32_t threshold = config.promote_threshold;
      // Per-partition retry-cause counters, captured by the handler so the
      // combiner hot path never touches the registry map.
      auto* stale = &telemetry::counter(tn::kRetryStaleBeginNode,
                                        static_cast<std::int32_t>(p));
      auto* from_head = &telemetry::counter(tn::kBeginFromHead,
                                            static_cast<std::int32_t>(p));
      auto* scan_len = &telemetry::latency(tn::kScanLen,
                                           static_cast<std::int32_t>(p));
      set_.set_handler(p, [list, nmp_height, threshold, stale, from_head,
                           scan_len](const nmp::Request& req,
                                     nmp::Response& resp) {
        apply(*list, nmp_height, threshold, *stale, *from_head, req, resp);
        if (req.op == nmp::OpCode::kScan && !resp.retry) {
          scan_len->record(resp.value);
        }
      });
    }
    rngs_ = std::vector<util::CacheAligned<util::Xoshiro256>>(config.max_threads);
    for (std::uint32_t t = 0; t < config.max_threads; ++t) {
      *rngs_[t] = util::Xoshiro256(config.seed * 0x9E3779B97F4A7C15ULL + t);
    }
    set_.start();
  }

  ~HybridSkipList() { set_.stop(); }

  // ----- blocking operations ------------------------------------------------

  bool read(Key key, Value& out, std::uint32_t tid) {
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kRead);
    RetryBudget budget(*this);
    const std::uint32_t part = set_.partition_of(key);
    const auto part16 = static_cast<std::int16_t>(part);
    if (cache_ != nullptr && cache_->lookup_value(key, out)) {
      // Hot key: served from the value tier, no structure touched at all.
      if (tok.sampled()) {
        const std::uint64_t now = telemetry::now_ns();
        trace::record_instant(tok.id, trace::Phase::kCacheLookup, now, op8,
                              part16);
        trace::end_op(tok, now, op8, part16, /*offloaded=*/false);
      }
      return true;
    }
    while (true) {
      const std::uint64_t gen0 = cache_gen(part);
      nmp::Request req;
      HostIndex::Window w;
      bool from_shortcut = false;
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      cache::HotCache::Shortcut sc;
      bool have_sc = cache_ != nullptr && !budget.exhausted() &&
                     cache_->lookup_shortcut(key, sc);
      if (have_sc && shortcut_stale(sc)) {
        cache_->erase_shortcut(key);
        have_sc = false;
      }
      if (have_sc) {
        // Warm key: post straight to the partition with the cached begin
        // node, skipping the host descent; a stale target comes back as an
        // ordinary retry and the entry is dropped below.
        from_shortcut = true;
        req.op = nmp::OpCode::kRead;
        req.key = key;
        req.node = sc.node;
        req.trace_id = tok.id;
        trace::record_instant(tok.id, trace::Phase::kCacheLookup, d0, op8,
                              part16);
      } else {
        {
          mem::EbrGuard guard;  // spans find + every Window entry read
          if (host_.find(key, w)) {
            // Tall node: the value is mirrored host-side; serve from cache.
            host_read_hits_->inc();
            out = w.match->value_now();
            if (tok.sampled()) {
              const std::uint64_t now = telemetry::now_ns();
              trace::record_span(tok.id, trace::Phase::kHostDescend, d0, now,
                                 op8, part16);
              trace::end_op(tok, now, op8, part16, /*offloaded=*/false);
            }
            return true;
          }
          req = make_request(nmp::OpCode::kRead, key, 0, 0, w.pred, nullptr,
                             part, budget.exhausted());
          req.trace_id = tok.id;
        }
        trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                           tok.sampled() ? telemetry::now_ns() : 0, op8,
                           part16);
      }
      nmp::Response r = set_.call(part, tid, req);
      if (must_retry(r)) {
        on_retry_response(r, part, key, from_shortcut);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        continue;
      }
      if (r.promote_hint) try_promote(key, tid);
      out = r.value;
      if (cache_ != nullptr && r.ok) {
        // r.aux echoes the partition's current version for reads, so this
        // fill is ordered against every write version the combiner issued.
        cache_->fill_value(key, part, r.value, r.aux, gen0);
        if (!from_shortcut && req.node != nullptr) {
          // Fat layout: the fill carries the backing leaf + seqlock stamp so
          // later hits revalidate before trusting the begin node.
          cache_->fill_shortcut(key, part, req.node, w.leaf_version, gen0,
                                w.leaf);
        }
      }
      if (tok.sampled()) {
        trace::end_op(tok, telemetry::now_ns(), op8, part16,
                      /*offloaded=*/true);
      }
      return r.ok;
    }
  }

  bool update(Key key, Value value, std::uint32_t tid) {
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kUpdate);
    RetryBudget budget(*this);
    const std::uint32_t part = set_.partition_of(key);
    const auto part16 = static_cast<std::int16_t>(part);
    while (true) {
      const std::uint64_t gen0 = cache_gen(part);
      nmp::Request req;
      HostIndex::Window w;
      bool from_shortcut = false;
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      cache::HotCache::Shortcut sc;
      bool have_sc = cache_ != nullptr && !budget.exhausted() &&
                     cache_->lookup_shortcut(key, sc);
      if (have_sc && shortcut_stale(sc)) {
        cache_->erase_shortcut(key);
        have_sc = false;
      }
      if (have_sc) {
        // Updates go through the NMP portion regardless, so a cached begin
        // node replaces the whole host descent.
        from_shortcut = true;
        req.op = nmp::OpCode::kUpdate;
        req.key = key;
        req.value = value;
        req.node = sc.node;
        req.trace_id = tok.id;
        trace::record_instant(tok.id, trace::Phase::kCacheLookup, d0, op8,
                              part16);
      } else {
        {
          mem::EbrGuard guard;
          (void)host_.find(key, w);
          // Updates always go through the NMP portion (the authoritative
          // copy); the response tells us which host mirror to refresh, and
          // with which version, so racing updates converge (§3.3).
          req = make_request(nmp::OpCode::kUpdate, key, value, 0, w.pred,
                             nullptr, part, budget.exhausted());
          req.trace_id = tok.id;
        }
        trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                           tok.sampled() ? telemetry::now_ns() : 0, op8,
                           part16);
      }
      nmp::Response r = set_.call(part, tid, req);
      if (must_retry(r)) {
        on_retry_response(r, part, key, from_shortcut);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        continue;
      }
      if (cache_ != nullptr && r.ok) {
        // Erase + raise the partition fill floor to the write's version
        // (r.aux) BEFORE returning, then write through: the fresh fill
        // carries that same version, so it beats any stale in-flight fill.
        cache_->invalidate_value(key, part, r.aux);
        cache_->fill_value(key, part, value, r.aux, gen0);
        if (!from_shortcut && req.node != nullptr) {
          cache_->fill_shortcut(key, part, req.node, w.leaf_version, gen0,
                                w.leaf);
        }
      }
      if (r.ok) refresh_mirror(key, r, value);
      if (r.promote_hint) try_promote(key, tid);
      if (tok.sampled()) {
        trace::end_op(tok, telemetry::now_ns(), op8, part16,
                      /*offloaded=*/true);
      }
      return r.ok;
    }
  }

  bool insert(Key key, Value value, std::uint32_t tid) {
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kInsert);
    RetryBudget budget(*this);
    const std::uint32_t part = set_.partition_of(key);
    const auto part16 = static_cast<std::int16_t>(part);
    while (true) {
      const int height = random_height(*rngs_[tid], config_.total_height);
      LfSkipList::Node* hnode = nullptr;
      nmp::Request req;
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      {
        mem::EbrGuard guard;
        HostIndex::Window w;
        if (host_.find(key, w)) {  // tall node present
          if (tok.sampled()) {
            const std::uint64_t now = telemetry::now_ns();
            trace::record_span(tok.id, trace::Phase::kHostDescend, d0, now,
                               op8, part16);
            trace::end_op(tok, now, op8, part16, /*offloaded=*/false);
          }
          return false;
        }
        if (height > config_.nmp_height) {
          hnode = host_.make_node(key, value, height - config_.nmp_height);
        }
        req = make_request(nmp::OpCode::kInsert, key, value,
                           static_cast<std::uint64_t>(height), w.pred, hnode,
                           part, budget.exhausted());
        req.trace_id = tok.id;
      }
      trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      // NMP portion first (linearization point: bottom-level link, which
      // lives in the NMP partition).
      nmp::Response r = set_.call(part, tid, req);
      if (must_retry(r)) {
        on_retry_response(r, part, key, /*from_shortcut=*/false);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        if (hnode != nullptr) host_.free_unlinked(hnode);
        continue;
      }
      if (!r.ok) {
        if (hnode != nullptr) host_.free_unlinked(hnode);
        if (tok.sampled()) {
          trace::end_op(tok, telemetry::now_ns(), op8, part16,
                        /*offloaded=*/true);
        }
        return false;  // key already present
      }
      // Inserting a key that was recently removed must kill any cached
      // "old incarnation" value; r.aux carries the insert's fresh version.
      if (cache_ != nullptr) cache_->invalidate_value(key, part, r.aux);
      if (hnode != nullptr) {
        hnode->payload = r.node;  // NMP counterpart (begin-node shortcut)
        // Seed the mirror at the insert-time version (r.aux) before linking:
        // if this tower's memory was previously a removed tower for the same
        // key, any stale in-flight refresh carries a strictly older version
        // and update_versioned discards it.
        LfSkipList::update_versioned(hnode, static_cast<std::uint32_t>(r.aux),
                                     value);
        if (!host_.insert_node(hnode)) {
          // Cannot happen while the NMP insert above owns the key; defensive.
          host_.free_unlinked(hnode);
        }
      }
      if (tok.sampled()) {
        trace::end_op(tok, telemetry::now_ns(), op8, part16,
                      /*offloaded=*/true);
      }
      return true;
    }
  }

  bool remove(Key key, std::uint32_t tid) {
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kRemove);
    RetryBudget budget(*this);
    const std::uint32_t part = set_.partition_of(key);
    const auto part16 = static_cast<std::int16_t>(part);
    while (true) {
      nmp::Request req;
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      {
        mem::EbrGuard guard;
        HostIndex::Window w;
        if (host_.find(key, w)) {
          // Host portion first (removals proceed top-down across the split).
          if (!host_.remove(key)) {
            // A concurrent remover won the host race; it owns the NMP side.
            if (tok.sampled()) {
              const std::uint64_t now = telemetry::now_ns();
              trace::record_span(tok.id, trace::Phase::kHostDescend, d0, now,
                                 op8, part16);
              trace::end_op(tok, now, op8, part16, /*offloaded=*/false);
            }
            return false;
          }
          // Re-derive the begin node: the old pred may have been the
          // victim's neighborhood; a fresh find gives a clean window.
          trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                             tok.sampled() ? telemetry::now_ns() : 0, op8,
                             part16);
          continue;
        }
        req = make_request(nmp::OpCode::kRemove, key, 0, 0, w.pred, nullptr,
                           part, budget.exhausted());
        req.trace_id = tok.id;
      }
      trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      nmp::Response r = set_.call(part, tid, req);
      if (must_retry(r)) {
        on_retry_response(r, part, key, /*from_shortcut=*/false);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        continue;
      }
      // r.aux carries the remove's version on success; the linearization
      // point has passed, so the cached value (if any) is now stale.
      if (cache_ != nullptr && r.ok) cache_->invalidate_value(key, part, r.aux);
      if (tok.sampled()) {
        trace::end_op(tok, telemetry::now_ns(), op8, part16,
                      /*offloaded=*/true);
      }
      return r.ok;
    }
  }

  /// Range scan: fills `out` with up to `count` (key, value) pairs with key
  /// >= `start`, ascending. Each kScan chunk is begun from the host
  /// portion's bottom-level predecessor shortcut (like point operations);
  /// the combiner reports a stale begin node via resp.retry and the chunk is
  /// re-issued under the usual retry budget (force_head once exhausted).
  /// Longer scans continue within a partition at the response's continuation
  /// key and hop to the next partition when one is exhausted.
  ///
  /// Each chunk is individually atomic (combiner-serialized); the stitched
  /// whole is not a snapshot. Guarantees: ascending keys with no duplicates
  /// (chunks cover strictly ascending disjoint key ranges), every returned
  /// key >= start, and every returned (key, value) was present at some point
  /// during the scan. Returns the number of entries written.
  std::size_t scan(Key start, std::size_t count, ScanEntry* out,
                   std::uint32_t tid) {
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kScan);
    bool offloaded = false;
    std::size_t filled = 0;
    Key cur = start;
    std::uint32_t p = set_.partition_of(start);
    RetryBudget budget(*this);
    while (filled < count) {
      const std::size_t want = count - filled < nmp::kScanChunk
                                   ? count - filled
                                   : nmp::kScanChunk;
      const auto part16 = static_cast<std::int16_t>(p);
      const std::uint64_t c0 = tok.sampled() ? telemetry::now_ns() : 0;
      nmp::Request r;
      {
        mem::EbrGuard guard;
        HostIndex::Window w;
        (void)host_.find(cur, w);
        r = make_request(nmp::OpCode::kScan, cur, static_cast<Value>(want), 0,
                         w.pred, nullptr, p, budget.exhausted());
        r.trace_id = tok.id;
      }
      trace::record_span(tok.id, trace::Phase::kHostDescend, c0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      r.host_node = out + filled;
      nmp::Response resp = set_.call(p, tid, r);
      offloaded = true;
      // One stitched chunk (descend + offload round-trip), including
      // retried attempts; the inner phases nest under it in the viewer.
      trace::record_span(tok.id, trace::Phase::kScanChunk, c0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      if (must_retry(resp)) {
        on_retry_response(resp, p, cur, /*from_shortcut=*/false);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        scan_retry_->inc();
        budget.note_retry();
        continue;
      }
      filled += resp.value;
      if (resp.has_more) {
        cur = static_cast<Key>(resp.aux);
        continue;
      }
      if (p + 1 >= config_.partitions) break;
      ++p;
      scan_hops_->inc();
      // Partition p's keys all sit at or above its range base; continuing
      // at max(cur, base) keeps the chunk sequence strictly ascending.
      const Key base = static_cast<Key>(static_cast<std::uint64_t>(p) *
                                        config_.partition_width);
      if (base > cur) cur = base;
    }
    if (tok.sampled()) {
      trace::end_op(tok, telemetry::now_ns(), op8,
                    static_cast<std::int16_t>(p), offloaded);
    }
    return filled;
  }

#if !defined(HYBRIDS_NO_INTERLEAVE)
  // ----- coroutine-interleaved operations (docs/INTERLEAVING.md) -----------
  //
  // Twins of the blocking operations above for callers driving a
  // host::Frame: the host descent suspends at each prefetch
  // (LfSkipList::find_co) and the publication round-trip parks on
  // suspend_until_done instead of spinning into the futex, so sibling
  // operations on the same thread overlap both kinds of dead time.
  // Semantics are identical — same retry budget, same trace spans (each
  // coroutine carries its own OpToken), same failover handling via
  // must_retry — and every EbrGuard closes before the op parks.

  /// Publication round-trip for the _co ops: post async and park on the
  /// slot, falling back to the blocking call when no async slot is free or
  /// the lane is fenced/leased (call() owns the bounce/lease handling).
  /// kPublish/kWake spans are recorded by call_async/retrieve exactly as by
  /// call().
  host::CoTask<nmp::Response> call_co(std::uint32_t p, std::uint32_t tid,
                                      nmp::Request req) {
    nmp::OpHandle h = set_.call_async(p, tid, req);
    if (!h.valid) co_return set_.call(p, tid, req);
    co_await host::suspend_until_done(set_, h);
    co_return set_.retrieve(h);
  }

  host::CoTask<bool> read_co(Key key, Value* out, std::uint32_t tid) {
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kRead);
    RetryBudget budget(*this);
    const std::uint32_t part = set_.partition_of(key);
    const auto part16 = static_cast<std::int16_t>(part);
    if (cache_ != nullptr && cache_->lookup_value(key, *out)) {
      if (tok.sampled()) {
        const std::uint64_t now = telemetry::now_ns();
        trace::record_instant(tok.id, trace::Phase::kCacheLookup, now, op8,
                              part16);
        trace::end_op(tok, now, op8, part16, /*offloaded=*/false);
      }
      co_return true;
    }
    while (true) {
      const std::uint64_t gen0 = cache_gen(part);
      nmp::Request req;
      HostIndex::Window w;
      bool from_shortcut = false;
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      cache::HotCache::Shortcut sc;
      bool have_sc = cache_ != nullptr && !budget.exhausted() &&
                     cache_->lookup_shortcut(key, sc);
      if (have_sc && shortcut_stale(sc)) {
        cache_->erase_shortcut(key);
        have_sc = false;
      }
      if (have_sc) {
        from_shortcut = true;
        req.op = nmp::OpCode::kRead;
        req.key = key;
        req.node = sc.node;
        req.trace_id = tok.id;
        trace::record_instant(tok.id, trace::Phase::kCacheLookup, d0, op8,
                              part16);
      } else {
        {
          mem::EbrGuard guard;  // spans find_co + every Window entry read
          if (co_await host_.find_co(key, &w)) {
            host_read_hits_->inc();
            *out = w.match->value_now();
            if (tok.sampled()) {
              const std::uint64_t now = telemetry::now_ns();
              trace::record_span(tok.id, trace::Phase::kHostDescend, d0, now,
                                 op8, part16);
              trace::end_op(tok, now, op8, part16, /*offloaded=*/false);
            }
            co_return true;
          }
          req = make_request(nmp::OpCode::kRead, key, 0, 0, w.pred, nullptr,
                             part, budget.exhausted());
          req.trace_id = tok.id;
        }
        trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                           tok.sampled() ? telemetry::now_ns() : 0, op8,
                           part16);
      }
      nmp::Response r = co_await call_co(part, tid, req);
      if (must_retry(r)) {
        on_retry_response(r, part, key, from_shortcut);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        continue;
      }
      if (r.promote_hint) try_promote(key, tid);
      *out = r.value;
      if (cache_ != nullptr && r.ok) {
        cache_->fill_value(key, part, r.value, r.aux, gen0);
        if (!from_shortcut && req.node != nullptr) {
          cache_->fill_shortcut(key, part, req.node, w.leaf_version, gen0,
                                w.leaf);
        }
      }
      if (tok.sampled()) {
        trace::end_op(tok, telemetry::now_ns(), op8, part16,
                      /*offloaded=*/true);
      }
      co_return r.ok;
    }
  }

  host::CoTask<bool> update_co(Key key, Value value, std::uint32_t tid) {
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kUpdate);
    RetryBudget budget(*this);
    const std::uint32_t part = set_.partition_of(key);
    const auto part16 = static_cast<std::int16_t>(part);
    while (true) {
      const std::uint64_t gen0 = cache_gen(part);
      nmp::Request req;
      HostIndex::Window w;
      bool from_shortcut = false;
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      cache::HotCache::Shortcut sc;
      bool have_sc = cache_ != nullptr && !budget.exhausted() &&
                     cache_->lookup_shortcut(key, sc);
      if (have_sc && shortcut_stale(sc)) {
        cache_->erase_shortcut(key);
        have_sc = false;
      }
      if (have_sc) {
        from_shortcut = true;
        req.op = nmp::OpCode::kUpdate;
        req.key = key;
        req.value = value;
        req.node = sc.node;
        req.trace_id = tok.id;
        trace::record_instant(tok.id, trace::Phase::kCacheLookup, d0, op8,
                              part16);
      } else {
        {
          mem::EbrGuard guard;
          (void)co_await host_.find_co(key, &w);
          req = make_request(nmp::OpCode::kUpdate, key, value, 0, w.pred,
                             nullptr, part, budget.exhausted());
          req.trace_id = tok.id;
        }
        trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                           tok.sampled() ? telemetry::now_ns() : 0, op8,
                           part16);
      }
      nmp::Response r = co_await call_co(part, tid, req);
      if (must_retry(r)) {
        on_retry_response(r, part, key, from_shortcut);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        continue;
      }
      if (cache_ != nullptr && r.ok) {
        cache_->invalidate_value(key, part, r.aux);
        cache_->fill_value(key, part, value, r.aux, gen0);
        if (!from_shortcut && req.node != nullptr) {
          cache_->fill_shortcut(key, part, req.node, w.leaf_version, gen0,
                                w.leaf);
        }
      }
      if (r.ok) refresh_mirror(key, r, value);
      if (r.promote_hint) try_promote(key, tid);
      if (tok.sampled()) {
        trace::end_op(tok, telemetry::now_ns(), op8, part16,
                      /*offloaded=*/true);
      }
      co_return r.ok;
    }
  }

  host::CoTask<bool> insert_co(Key key, Value value, std::uint32_t tid) {
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kInsert);
    RetryBudget budget(*this);
    const std::uint32_t part = set_.partition_of(key);
    const auto part16 = static_cast<std::int16_t>(part);
    while (true) {
      const int height = random_height(*rngs_[tid], config_.total_height);
      LfSkipList::Node* hnode = nullptr;
      nmp::Request req;
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      {
        mem::EbrGuard guard;
        HostIndex::Window w;
        if (co_await host_.find_co(key, &w)) {  // tall node present
          if (tok.sampled()) {
            const std::uint64_t now = telemetry::now_ns();
            trace::record_span(tok.id, trace::Phase::kHostDescend, d0, now,
                               op8, part16);
            trace::end_op(tok, now, op8, part16, /*offloaded=*/false);
          }
          co_return false;
        }
        if (height > config_.nmp_height) {
          hnode = host_.make_node(key, value, height - config_.nmp_height);
        }
        req = make_request(nmp::OpCode::kInsert, key, value,
                           static_cast<std::uint64_t>(height), w.pred, hnode,
                           part, budget.exhausted());
        req.trace_id = tok.id;
      }
      trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      nmp::Response r = co_await call_co(part, tid, req);
      if (must_retry(r)) {
        on_retry_response(r, part, key, /*from_shortcut=*/false);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        if (hnode != nullptr) host_.free_unlinked(hnode);
        continue;
      }
      if (!r.ok) {
        if (hnode != nullptr) host_.free_unlinked(hnode);
        if (tok.sampled()) {
          trace::end_op(tok, telemetry::now_ns(), op8, part16,
                        /*offloaded=*/true);
        }
        co_return false;  // key already present
      }
      if (cache_ != nullptr) cache_->invalidate_value(key, part, r.aux);
      if (hnode != nullptr) {
        hnode->payload = r.node;
        LfSkipList::update_versioned(hnode, static_cast<std::uint32_t>(r.aux),
                                     value);
        if (!host_.insert_node(hnode)) {
          host_.free_unlinked(hnode);
        }
      }
      if (tok.sampled()) {
        trace::end_op(tok, telemetry::now_ns(), op8, part16,
                      /*offloaded=*/true);
      }
      co_return true;
    }
  }

  host::CoTask<bool> remove_co(Key key, std::uint32_t tid) {
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kRemove);
    RetryBudget budget(*this);
    const std::uint32_t part = set_.partition_of(key);
    const auto part16 = static_cast<std::int16_t>(part);
    while (true) {
      nmp::Request req;
      const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
      {
        mem::EbrGuard guard;
        HostIndex::Window w;
        if (co_await host_.find_co(key, &w)) {
          if (!host_.remove(key)) {
            if (tok.sampled()) {
              const std::uint64_t now = telemetry::now_ns();
              trace::record_span(tok.id, trace::Phase::kHostDescend, d0, now,
                                 op8, part16);
              trace::end_op(tok, now, op8, part16, /*offloaded=*/false);
            }
            co_return false;
          }
          trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                             tok.sampled() ? telemetry::now_ns() : 0, op8,
                             part16);
          continue;
        }
        req = make_request(nmp::OpCode::kRemove, key, 0, 0, w.pred, nullptr,
                           part, budget.exhausted());
        req.trace_id = tok.id;
      }
      trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      nmp::Response r = co_await call_co(part, tid, req);
      if (must_retry(r)) {
        on_retry_response(r, part, key, /*from_shortcut=*/false);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        budget.note_retry();
        continue;
      }
      if (cache_ != nullptr && r.ok) cache_->invalidate_value(key, part, r.aux);
      if (tok.sampled()) {
        trace::end_op(tok, telemetry::now_ns(), op8, part16,
                      /*offloaded=*/true);
      }
      co_return r.ok;
    }
  }

  /// Coroutine twin of scan(): same chunking, stitching, and retry rules;
  /// each chunk's host descent interleaves via find_co and each chunk's
  /// round-trip parks on the publication slot (the scan-continuation hop
  /// into the next partition re-descends through find_co, which is where
  /// its prefetch-and-yield suspensions live).
  host::CoTask<std::size_t> scan_co(Key start, std::size_t count,
                                    ScanEntry* out, std::uint32_t tid) {
    const trace::OpToken tok = trace::begin_op();
    constexpr auto op8 = static_cast<std::uint8_t>(nmp::OpCode::kScan);
    bool offloaded = false;
    std::size_t filled = 0;
    Key cur = start;
    std::uint32_t p = set_.partition_of(start);
    RetryBudget budget(*this);
    while (filled < count) {
      const std::size_t want = count - filled < nmp::kScanChunk
                                   ? count - filled
                                   : nmp::kScanChunk;
      const auto part16 = static_cast<std::int16_t>(p);
      const std::uint64_t c0 = tok.sampled() ? telemetry::now_ns() : 0;
      nmp::Request r;
      {
        mem::EbrGuard guard;
        HostIndex::Window w;
        (void)co_await host_.find_co(cur, &w);
        r = make_request(nmp::OpCode::kScan, cur, static_cast<Value>(want), 0,
                         w.pred, nullptr, p, budget.exhausted());
        r.trace_id = tok.id;
      }
      trace::record_span(tok.id, trace::Phase::kHostDescend, c0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      r.host_node = out + filled;
      nmp::Response resp = co_await call_co(p, tid, r);
      offloaded = true;
      trace::record_span(tok.id, trace::Phase::kScanChunk, c0,
                         tok.sampled() ? telemetry::now_ns() : 0, op8, part16);
      if (must_retry(resp)) {
        on_retry_response(resp, p, cur, /*from_shortcut=*/false);
        trace::record_instant(tok.id, trace::Phase::kRetry,
                              tok.sampled() ? telemetry::now_ns() : 0, op8,
                              part16);
        scan_retry_->inc();
        budget.note_retry();
        continue;
      }
      filled += resp.value;
      if (resp.has_more) {
        cur = static_cast<Key>(resp.aux);
        continue;
      }
      if (p + 1 >= config_.partitions) break;
      ++p;
      scan_hops_->inc();
      const Key base = static_cast<Key>(static_cast<std::uint64_t>(p) *
                                        config_.partition_width);
      if (base > cur) cur = base;
    }
    if (tok.sampled()) {
      trace::end_op(tok, telemetry::now_ns(), op8,
                    static_cast<std::int16_t>(p), offloaded);
    }
    co_return filled;
  }
#endif  // !HYBRIDS_NO_INTERLEAVE

  /// Adaptive promotion (§7 extension): raise `key` — reported hot by its
  /// NMP core — into the host-managed portion. Replaces the short NMP node
  /// with a full-height one and links a host counterpart, making future
  /// reads of the key servable from the host cache. Bounded by
  /// promote_budget; safe to call concurrently (at most one promotion per
  /// key fires, because the hint is raised exactly when the counter crosses
  /// the threshold on the serializing combiner).
  void try_promote(Key key, std::uint32_t tid) {
    const std::uint32_t budget =
        promote_budget_.load(std::memory_order_relaxed);
    if (config_.promote_threshold == 0 || budget == 0) return;
    if (promoted_.fetch_add(1, std::memory_order_relaxed) >= budget) {
      promoted_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    const int host_h = random_height(*rngs_[tid], config_.host_height());
    LfSkipList::Node* hnode = host_.make_node(key, 0, host_h);
    const std::uint32_t part = set_.partition_of(key);
    nmp::Request req;
    {
      mem::EbrGuard guard;
      HostIndex::Window w;
      (void)host_.find(key, w);
      req = make_request(nmp::OpCode::kPromote, key, 0, 0, w.pred, hnode,
                         part, /*force_head=*/false);
    }
    nmp::Response r = set_.call(part, tid, req);
    if (!r.ok) {  // key vanished or was already promoted meanwhile
      host_.free_unlinked(hnode);
      promoted_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    // Seed the host mirror with the value captured at promotion time, then
    // link it; later updates supersede it via versioning (the promote bumped
    // the NMP-side version, so r.aux is strictly newer than any prior update).
    LfSkipList::update_versioned(hnode, static_cast<std::uint32_t>(r.aux),
                                 r.value);
    hnode->payload = r.node;
    if (!host_.insert_node(hnode)) {
      host_.free_unlinked(hnode);
      promoted_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// Number of promotions performed so far (quiescent reads for tests).
  std::uint32_t promoted() const {
    return promoted_.load(std::memory_order_relaxed);
  }

  /// Live promote-budget knob: the cache controller raises it when
  /// partitions are queue-bound (more host-mirrored keys absorb reads
  /// host-side) and lowers it when host levels are pure overhead. Lowering
  /// does not demote already-promoted keys; it only stops further growth.
  void set_promote_budget(std::uint32_t budget) {
    promote_budget_.store(budget, std::memory_order_relaxed);
  }
  std::uint32_t promote_budget() const {
    return promote_budget_.load(std::memory_order_relaxed);
  }

  /// The hot-key cache, or nullptr when disabled (budget 0, runtime flag
  /// off, or HYBRIDS_NO_CACHE). Exposed for the controller and tests.
  cache::HotCache* hot_cache() { return cache_.get(); }

  // ----- non-blocking operations (§3.5) --------------------------------------

  /// A non-blocking operation in flight. Obtain via *_async, complete via
  /// finish(). Operations that complete host-side (cache-hit reads) are
  /// immediate. If the runtime rejects the call (all slots in flight),
  /// state == kRejected and the caller should finish() older tickets first.
  struct Ticket {
    enum class State : std::uint8_t { kImmediate, kPending, kRejected };
    State state = State::kRejected;
    nmp::OpCode op = nmp::OpCode::kNop;
    bool ok = false;            // immediate result
    Value value = 0;            // immediate read result
    Key key = 0;
    Value new_value = 0;
    nmp::OpHandle handle{};
    LfSkipList::Node* hnode = nullptr;  // pre-built host node (insert)
    std::uint32_t tid = 0;
    std::uint64_t cache_gen = 0;  // partition cache generation at post time
  };

  Ticket read_async(Key key, std::uint32_t tid) {
    Ticket t;
    t.op = nmp::OpCode::kRead;
    t.key = key;
    t.tid = tid;
    const std::uint32_t part = set_.partition_of(key);
    if (cache_ != nullptr && cache_->lookup_value(key, t.value)) {
      t.state = Ticket::State::kImmediate;
      t.ok = true;
      return t;
    }
    t.cache_gen = cache_gen(part);
    // Async ops record their transport phases but no enclosing kOp span:
    // the ticket's wall-clock overlaps whatever else the thread interleaves,
    // so it is not a latency. The blocking fallback in finish() traces as a
    // fresh op.
    const trace::OpToken tok = trace::begin_op();
    const std::uint64_t d0 = tok.sampled() ? telemetry::now_ns() : 0;
    nmp::Request req;
    {
      mem::EbrGuard guard;
      HostIndex::Window w;
      if (host_.find(key, w)) {
        host_read_hits_->inc();
        t.state = Ticket::State::kImmediate;
        t.ok = true;
        t.value = w.match->value_now();
        return t;
      }
      req = make_request(nmp::OpCode::kRead, key, 0, 0, w.pred, nullptr,
                         part, /*force_head=*/false);
      req.trace_id = tok.id;
    }
    trace::record_span(tok.id, trace::Phase::kHostDescend, d0,
                       tok.sampled() ? telemetry::now_ns() : 0,
                       static_cast<std::uint8_t>(nmp::OpCode::kRead),
                       static_cast<std::int16_t>(part));
    t.handle = set_.call_async(part, tid, req);
    t.state = t.handle.valid ? Ticket::State::kPending : Ticket::State::kRejected;
    return t;
  }

  Ticket insert_async(Key key, Value value, std::uint32_t tid) {
    Ticket t;
    t.op = nmp::OpCode::kInsert;
    t.key = key;
    t.new_value = value;
    t.tid = tid;
    const std::uint32_t part = set_.partition_of(key);
    nmp::Request req;
    {
      mem::EbrGuard guard;
      HostIndex::Window w;
      if (host_.find(key, w)) {
        t.state = Ticket::State::kImmediate;
        t.ok = false;
        return t;
      }
      const int height = random_height(*rngs_[tid], config_.total_height);
      if (height > config_.nmp_height) {
        t.hnode = host_.make_node(key, value, height - config_.nmp_height);
      }
      req = make_request(nmp::OpCode::kInsert, key, value,
                         static_cast<std::uint64_t>(height), w.pred, t.hnode,
                         part, /*force_head=*/false);
      req.trace_id = trace::begin_op().id;
    }
    t.handle = set_.call_async(part, tid, req);
    if (!t.handle.valid) {
      if (t.hnode != nullptr) host_.free_unlinked(t.hnode);
      t.hnode = nullptr;
      t.state = Ticket::State::kRejected;
    } else {
      t.state = Ticket::State::kPending;
    }
    return t;
  }

  Ticket remove_async(Key key, std::uint32_t tid) {
    Ticket t;
    t.op = nmp::OpCode::kRemove;
    t.key = key;
    t.tid = tid;
    const std::uint32_t part = set_.partition_of(key);
    nmp::Request req;
    {
      mem::EbrGuard guard;
      HostIndex::Window w;
      if (host_.find(key, w)) {
        if (!host_.remove(key)) {
          t.state = Ticket::State::kImmediate;
          t.ok = false;
          return t;
        }
        (void)host_.find(key, w);  // refresh window post-removal
      }
      req = make_request(nmp::OpCode::kRemove, key, 0, 0, w.pred, nullptr,
                         part, /*force_head=*/false);
      req.trace_id = trace::begin_op().id;
    }
    t.handle = set_.call_async(part, tid, req);
    t.state = t.handle.valid ? Ticket::State::kPending : Ticket::State::kRejected;
    return t;
  }

  Ticket update_async(Key key, Value value, std::uint32_t tid) {
    Ticket t;
    t.op = nmp::OpCode::kUpdate;
    t.key = key;
    t.new_value = value;
    t.tid = tid;
    const std::uint32_t part = set_.partition_of(key);
    t.cache_gen = cache_gen(part);
    nmp::Request req;
    {
      mem::EbrGuard guard;
      HostIndex::Window w;
      (void)host_.find(key, w);
      req = make_request(nmp::OpCode::kUpdate, key, value, 0, w.pred,
                         nullptr, part, /*force_head=*/false);
      req.trace_id = trace::begin_op().id;
    }
    t.handle = set_.call_async(part, tid, req);
    t.state = t.handle.valid ? Ticket::State::kPending : Ticket::State::kRejected;
    return t;
  }

  /// True once finish() would not block.
  bool poll(const Ticket& t) {
    return t.state != Ticket::State::kPending || set_.poll(t.handle);
  }

  /// Completes a ticket: waits for the NMP response, applies any host-side
  /// completion work (linking an inserted host node, refreshing a host value
  /// mirror), and transparently re-executes the operation in blocking mode
  /// if the NMP core requested a retry. Returns the operation result;
  /// `out` receives the value for reads (may be null).
  bool finish(Ticket& t, Value* out = nullptr) {
    if (t.state == Ticket::State::kImmediate) {
      if (out != nullptr) *out = t.value;
      return t.ok;
    }
    assert(t.state == Ticket::State::kPending);
    nmp::Response r = set_.retrieve(t.handle);
    // A retry (or a lock_path, which this structure's protocol never issues
    // and therefore treats as a transport anomaly) falls back to the
    // blocking path, which carries its own retry budget.
    const bool retry = must_retry(r);
    if (retry) host_retry_->inc();
    const std::uint32_t part = set_.partition_of(t.key);
    if (cache_ != nullptr && r.failed_over) cache_->bump_generation(part);
    switch (t.op) {
      case nmp::OpCode::kRead:
        if (retry) {
          Value v = 0;
          bool ok = read(t.key, v, t.tid);
          if (out != nullptr) *out = v;
          return ok;
        }
        if (r.promote_hint) try_promote(t.key, t.tid);
        if (cache_ != nullptr && r.ok) {
          cache_->fill_value(t.key, part, r.value, r.aux, t.cache_gen);
        }
        if (out != nullptr) *out = r.value;
        return r.ok;
      case nmp::OpCode::kUpdate:
        if (retry) return update(t.key, t.new_value, t.tid);
        if (cache_ != nullptr && r.ok) {
          cache_->invalidate_value(t.key, part, r.aux);
          cache_->fill_value(t.key, part, t.new_value, r.aux, t.cache_gen);
        }
        if (r.ok) refresh_mirror(t.key, r, t.new_value);
        if (r.promote_hint) try_promote(t.key, t.tid);
        return r.ok;
      case nmp::OpCode::kInsert:
        if (retry) {
          if (t.hnode != nullptr) host_.free_unlinked(t.hnode);
          t.hnode = nullptr;
          return insert(t.key, t.new_value, t.tid);
        }
        if (!r.ok) {
          if (t.hnode != nullptr) host_.free_unlinked(t.hnode);
          t.hnode = nullptr;
          return false;
        }
        if (cache_ != nullptr) cache_->invalidate_value(t.key, part, r.aux);
        if (t.hnode != nullptr) {
          t.hnode->payload = r.node;
          LfSkipList::update_versioned(
              t.hnode, static_cast<std::uint32_t>(r.aux), t.new_value);
          if (!host_.insert_node(t.hnode)) host_.free_unlinked(t.hnode);
          t.hnode = nullptr;
        }
        return true;
      case nmp::OpCode::kRemove:
        if (retry) return remove(t.key, t.tid);
        if (cache_ != nullptr && r.ok) {
          cache_->invalidate_value(t.key, part, r.aux);
        }
        return r.ok;
      default:
        return false;
    }
  }

  // ----- introspection (quiescent-only) --------------------------------------

  const Config& config() const { return config_; }

  /// The underlying NMP runtime, exposed for failover control and health
  /// queries (trigger_failover / degraded / failovers / recoveries).
  nmp::PartitionSet& partition_set() { return set_; }

  /// Item count = bottom-level (NMP) count; host nodes are a strict subset.
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& l : lists_) n += l->size();
    return n;
  }

  /// Validates both portions and their cross-references.
  bool validate() const {
    for (const auto& l : lists_) {
      if (!l->validate()) return false;
    }
    if (!host_.validate()) return false;
    // Every host entry must reference a live NMP counterpart with equal key.
    bool ok = true;
    host_.for_each_entry([&](LfSkipList::Node* n) {
      auto* counterpart = static_cast<SeqSkipList::Node*>(n->payload);
      if (counterpart == nullptr || counterpart->key != n->key ||
          counterpart->marked || counterpart->host_ptr != n) {
        ok = false;
      }
    });
    return ok;
  }

  /// Number of nodes in the host-managed portion (for split-sizing tests).
  std::size_t host_size() const { return host_.size(); }

  /// Host towers awaiting their reclamation grace period (bounded under
  /// churn; see LfSkipList). Tests drain with host_reclaim() — each call
  /// also advances the epoch, so a few quiescent calls empty the set.
  std::size_t host_retired_count() const { return host_.retired_count(); }
  std::size_t host_reclaim() { return host_.reclaim_retired(); }

 private:
  /// Per-operation stale-begin-node retry bookkeeping. Within the budget,
  /// retries re-derive the host shortcut; once exhausted() the operation
  /// backs off exponentially and offloads start from the partition head (a
  /// begin node that can never be stale), guaranteeing progress.
  class RetryBudget {
   public:
    explicit RetryBudget(HybridSkipList& list) : list_(list) {}
    void note_retry() {
      list_.host_retry_->inc();
      if (++retries_ == list_.config_.retry_budget) {
        list_.retry_exhausted_->inc();
      }
      if (exhausted()) backoff_.wait();
    }
    bool exhausted() const { return retries_ >= list_.config_.retry_budget; }

   private:
    HybridSkipList& list_;
    util::ExpBackoff backoff_;
    std::uint32_t retries_ = 0;
  };

  /// True when the host must re-execute: the NMP core asked for a retry, or
  /// the response carries a lock_path escalation, which the skiplist
  /// protocol never issues (it can only appear through fault injection) and
  /// which is therefore treated as "response unusable, re-execute".
  static bool must_retry(const nmp::Response& r) {
    // failed_over: the partition was fenced mid-flight and the op was not
    // applied; re-routing through the ordinary retry loop (with its backoff)
    // rides out the recovery window.
    return r.retry || r.lock_path || r.failed_over;
  }

  /// Partition cache generation at request-build time; 0 when the cache is
  /// disabled (then never compared against anything).
  std::uint64_t cache_gen(std::uint32_t part) const {
    return cache_ != nullptr ? cache_->generation(part) : 0;
  }

  /// Cache upkeep for a response the host must re-execute: a shortcut-
  /// derived begin node that bounced is dropped (the next attempt descends
  /// for real and refills), and a failover bounce invalidates the
  /// partition's whole cached population via its generation.
  void on_retry_response(const nmp::Response& r, std::uint32_t part, Key key,
                         bool from_shortcut) {
    if (cache_ == nullptr) return;
    if (from_shortcut) cache_->erase_shortcut(key);
    if (r.failed_over) cache_->bump_generation(part);
  }

  static nmp::PartitionConfig make_partition_config(const Config& c) {
    nmp::PartitionConfig pc;
    pc.partitions = c.partitions;
    pc.max_threads = c.max_threads;
    pc.slots_per_thread = c.slots_per_thread;
    pc.partition_width = c.partition_width;
    pc.watchdog_interval_ms = c.watchdog_interval_ms;
    pc.watchdog_misses_to_degrade = c.watchdog_misses_to_degrade;
    pc.watchdog_misses_to_recover = c.watchdog_misses_to_recover;
    pc.failover = c.failover;
    return pc;
  }

  /// Refreshes the host-side value mirror named by an NMP update response.
  /// Never dereferences r.node: the tower it names may have been removed and
  /// recycled while the response was in flight. Instead re-find the key's
  /// live host node under a guard and only install the versioned value if it
  /// is the very tower the combiner saw. If the address was recycled into a
  /// *new* tower for the same key, the identity check passes vacuously but
  /// the write is still discarded: the new mirror was seeded at a version
  /// above r.aux (versions are partition-monotonic across re-inserts).
  void refresh_mirror(Key key, const nmp::Response& r, Value value) {
    if (r.node == nullptr) return;
    mem::EbrGuard guard;
    LfSkipList::Node* n = host_.get_node(key);
    if (n == static_cast<LfSkipList::Node*>(r.node)) {
      LfSkipList::update_versioned(n, static_cast<std::uint32_t>(r.aux),
                                   value);
    }
  }

  /// Caller must hold a mem::EbrGuard spanning the host_.find() that
  /// produced `pred0` through this call: the shortcut derivation reads
  /// pred0's key and payload.
  nmp::Request make_request(nmp::OpCode op, Key key, Value value,
                            std::uint64_t aux, LfSkipList::Node* pred0,
                            LfSkipList::Node* hnode, std::uint32_t part,
                            bool force_head) const {
    nmp::Request r;
    r.op = op;
    r.key = key;
    r.value = value;
    r.aux = aux;
    r.host_node = hnode;
    // Begin-NMP-traversal node (Listing 1 lines 14-15): only usable if a
    // host-side predecessor exists (Window::pred is null when the key
    // precedes every host entry) and lives in the same partition as the
    // lookup key, and not suppressed by an exhausted retry budget
    // (force_head).
    if (!force_head && pred0 != nullptr &&
        set_.partition_of(pred0->key) == part) {
      r.node = pred0->payload;
    }
    return r;
  }

  /// Fat-layout shortcuts carry the backing host leaf and its seqlock stamp
  /// in (host, aux); a moved leaf means the cached begin node may already be
  /// unlinked, so drop the entry and descend for real instead of eating a
  /// bounced offload round-trip. Entries with host == nullptr (pointer-node
  /// engine, whose begin candidates never move) are always fresh.
  bool shortcut_stale(const cache::HotCache::Shortcut& sc) const {
    return sc.host != nullptr && !host_.shortcut_fresh(sc.host, sc.aux);
  }

 public:
  /// NMP-side of every operation (runs on the partition's combiner thread;
  /// mirrors Listing 2, plus the §7 adaptive-promotion extension). Public so
  /// protocol unit tests can drive the combiner side deterministically (e.g.
  /// a kScan against a logically-deleted begin node) without the runtime
  /// around it.
  static void apply(SeqSkipList& list, int nmp_height, std::uint32_t threshold,
                    telemetry::Counter& stale_retries,
                    telemetry::Counter& begin_from_head,
                    const nmp::Request& req, nmp::Response& resp) {
    SeqSkipList::Node* begin = list.head();
    if (req.node != nullptr) {
      auto* candidate = static_cast<SeqSkipList::Node*>(req.node);
      if (SeqSkipList::is_stale(candidate)) {
        // Begin node removed by an operation queued earlier: host must retry.
        stale_retries.inc();
        resp.retry = true;
        return;
      }
      begin = candidate;
    } else {
      // No usable host shortcut: traversal starts at the partition head.
      begin_from_head.inc();
    }
    // Exactly one access observes the counter crossing the threshold, so at
    // most one promotion fires per key (the combiner serializes accesses).
    auto note_access = [&](SeqSkipList::Node* n) {
      if (threshold == 0 || n == nullptr) return;
      ++n->hits;
      if (n->hits == threshold && n->host_ptr == nullptr) {
        resp.promote_hint = true;
      }
    };
    switch (req.op) {
      case nmp::OpCode::kRead: {
        SeqSkipList::Node* n = list.read(req.key, begin);
        resp.ok = n != nullptr;
        if (n != nullptr) resp.value = n->value;
        // Echo the partition's CURRENT version (not the node's): the host
        // cache fill must carry a token ordered against every write this
        // combiner has issued, including writes to other keys that raised
        // the fill floor — a never-updated key would otherwise sit below
        // the floor forever and be permanently uncacheable.
        resp.aux = list.current_version();
        note_access(n);
        break;
      }
      case nmp::OpCode::kUpdate: {
        SeqSkipList::Node* n = list.read(req.key, begin);
        resp.ok = n != nullptr;
        if (n != nullptr) {
          n->value = req.value;
          // Partition-monotonic version (not ++n->version): versions for a
          // key stay totally ordered across remove/re-insert, which the host
          // mirror-refresh relies on once towers are pool-recycled.
          n->version = list.next_version();
          resp.node = n->host_ptr;  // host refreshes its mirror (if tall)
          resp.aux = n->version;
        }
        note_access(n);
        break;
      }
      case nmp::OpCode::kPromote: {
        SeqSkipList::Node* n = list.promote(req.key, req.host_node);
        resp.ok = n != nullptr;
        if (n != nullptr) {
          resp.node = n;
          resp.value = n->value;
          resp.aux = n->version;
        }
        break;
      }
      case nmp::OpCode::kInsert: {
        int height = static_cast<int>(req.aux);
        if (height > nmp_height) height = nmp_height;
        auto [node, existed] =
            list.insert(req.key, req.value, height, req.host_node, begin);
        resp.ok = !existed;
        resp.node = node;
        if (!existed) {
          // Stamp a fresh version and echo it on EVERY successful insert
          // (not just host-mirrored ones): the host seeds a tall mirror
          // strictly above any stale in-flight refresh for a previous
          // incarnation of this key, and the hot-key cache uses the same
          // token to invalidate that incarnation's cached value.
          node->version = list.next_version();
          resp.aux = node->version;
        }
        break;
      }
      case nmp::OpCode::kRemove:
        resp.ok = list.remove(req.key, begin);
        // A fresh version for the removal so the host cache's fill floor
        // rises past every read that could still observe the key.
        if (resp.ok) resp.aux = list.next_version();
        break;
      case nmp::OpCode::kScan: {
        std::uint32_t max = static_cast<std::uint32_t>(req.value);
        if (max > nmp::kScanChunk) max = nmp::kScanChunk;
        Key next = 0;
        bool more = false;
        resp.value = list.scan(req.key, max, begin,
                               static_cast<ScanEntry*>(req.host_node), &next,
                               &more);
        resp.aux = next;
        resp.has_more = more;
        resp.ok = true;
        break;
      }
      default:
        resp.ok = false;
        break;
    }
  }

 private:
  Config config_;
  HostIndex host_;
  nmp::PartitionSet set_;
  std::vector<std::unique_ptr<SeqSkipList>> lists_;
  std::vector<util::CacheAligned<util::Xoshiro256>> rngs_;
  std::unique_ptr<cache::HotCache> cache_;  // null when disabled
  std::atomic<std::uint32_t> promoted_{0};
  std::atomic<std::uint32_t> promote_budget_;  // live knob (controller)
  // Host-layer telemetry: reads served from the host cache mirror, and
  // NMP responses that requested a retry (stale begin node).
  telemetry::Counter* host_read_hits_;
  telemetry::Counter* host_retry_;
  telemetry::Counter* retry_exhausted_;
  // Scan stitching: partition hops and per-chunk stale-begin retries.
  telemetry::Counter* scan_hops_;
  telemetry::Counter* scan_retry_;
};

}  // namespace hybrids::ds
