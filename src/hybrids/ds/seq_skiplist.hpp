// Partition-local sequential skiplist — the NMP-managed portion of the
// hybrid skiplist (§3.3) and the per-partition structure of the prior-work
// NMP-based skiplist baseline.
//
// Exactly one NMP core (combiner thread) ever touches an instance, so no
// internal synchronization is needed. What *is* needed is the paper's
// stale-begin-node detection: a removed node is first marked logically
// deleted, so an offloaded operation whose begin-NMP-traversal node was
// removed by an earlier-queued operation can detect the mark and request a
// host retry.
//
// Memory layout: nodes come from a per-partition bump+freelist arena
// (mem/arena.hpp) owned by this instance — single-owner, no locks, towers
// packed into contiguous 64B-aligned chunks. Removed nodes split into two
// retire classes:
//  - host_ptr == nullptr (short nodes): no host thread can ever hold a
//    reference — begin-NMP-traversal candidates are exclusively the payloads
//    of host-managed (tall) nodes — so their memory recycles through the
//    arena freelist immediately.
//  - host_ptr != nullptr (tall nodes): a host thread may still inspect the
//    node for stale-begin detection, so the memory is parked on retired_
//    until destruction, exactly the paper's never-reuse rule. Tall nodes are
//    a ~2^-nmp_height fraction of removals, so the parked set stays small.
//
// Versions are drawn from a per-list monotonic counter (next_version())
// rather than bumped per node: any two versions the host ever compares for
// one key are then totally ordered even across remove/re-insert of that key,
// which the hybrid's host mirror update relies on.
#pragma once

#include <cassert>
#include <cstdlib>
#include <new>
#include <vector>

#include "hybrids/mem/arena.hpp"
#include "hybrids/mem/memlayer.hpp"
#include "hybrids/types.hpp"

namespace hybrids::ds {

class SeqSkipList {
 public:
  static constexpr int kMaxLevels = 32;

  struct Node {
    Key key;
    Value value;
    std::uint32_t version;  // bumped on every update (host mirror ordering)
    std::uint32_t hits;     // accesses observed (adaptive promotion, §7)
    std::uint16_t height;   // number of levels this node is linked at
    bool marked;            // logically deleted (stale-begin detection)
    void* host_ptr;         // host-side counterpart (null for short nodes)
    Node* next[1];         // flexible array: height slots

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;
  };

  /// `max_height` is the number of NMP-managed levels (NMP_HEIGHT in the
  /// paper's pseudocode); for the non-hybrid NMP baseline it is the full
  /// skiplist height. The head sentinel spans all levels and compares below
  /// every key.
  explicit SeqSkipList(int max_height)
      : max_height_(max_height), head_(alloc_node(0, 0, max_height, nullptr)) {
    for (int i = 0; i < max_height; ++i) head_->next[i] = nullptr;
  }

  ~SeqSkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      free_node(n);
      n = next;
    }
    for (Node* r : retired_) free_node(r);
  }

  SeqSkipList(const SeqSkipList&) = delete;
  SeqSkipList& operator=(const SeqSkipList&) = delete;

  int max_height() const { return max_height_; }
  Node* head() const { return head_; }
  std::size_t size() const { return size_; }

  /// Next value version, strictly greater than any previously issued by this
  /// list. Callers (the combiner apply paths) stamp it on every update,
  /// promotion, and host-mirrored insert, so host mirror writes for a key
  /// can never be re-ordered by a remove/re-insert of that key.
  std::uint32_t next_version() { return ++version_counter_; }

  /// Latest issued version (combiner-thread only, like next_version()). Read
  /// ops echo it to the host so cache fills carry a token totally ordered
  /// against every write version of this partition.
  std::uint32_t current_version() const { return version_counter_; }

  /// The partition's arena (test/introspection hook).
  const mem::PartitionArena& arena() const { return arena_; }

  /// True if `node` (a begin-NMP-traversal candidate captured by a host
  /// thread) has since been removed; the caller must then abort with a retry
  /// per §3.3. Only meaningful for nodes owned by this structure.
  static bool is_stale(const Node* node) { return node->marked; }

  /// Finds the node with `key`, starting the traversal at `begin` (which
  /// must span all max_height levels — the head sentinel or the counterpart
  /// of a host-managed node — and satisfy begin->key <= key, begin unmarked).
  /// Fills preds/succs (arrays of max_height entries) like the classic
  /// sequential skiplist find.
  Node* find(Key key, Node* begin, Node** preds, Node** succs) const {
    assert(!begin->marked);
    Node* pred = begin;
    Node* found = nullptr;
    for (int lvl = max_height_ - 1; lvl >= 0; --lvl) {
      Node* curr = pred->next[lvl];
      while (curr != nullptr) {
        // One-ahead prefetch: start pulling the successor's line while the
        // key compare on the current node resolves.
        Node* nxt = curr->next[lvl];
        mem::prefetch_read(nxt);
        if (curr->key >= key) break;
        pred = curr;
        curr = nxt;
      }
      preds[lvl] = pred;
      succs[lvl] = curr;
      if (found == nullptr && curr != nullptr && curr->key == key) found = curr;
      // Level-descent prefetch: pred's line is resident, its next-level
      // successor's is usually not yet.
      if (lvl > 0) mem::prefetch_read(pred->next[lvl - 1]);
    }
    return found;
  }

  /// Traversal finger for key-sorted batch application: the predecessor
  /// array of the most recent find_finger() call. A subsequent find for a
  /// key >= the remembered key resumes each level from the cached
  /// predecessor instead of walking down from `begin` — in an ascending
  /// batch the per-op search distance collapses to the key gap between
  /// consecutive operations.
  ///
  /// Validity: the cached preds all satisfy pred->key < remembered key (or
  /// are `begin`), so for any target key >= remembered key they are legal
  /// level starting points. The caller must apply operations in ascending
  /// key order between resets: ops after the snapshot only touch keys >= the
  /// remembered key, so no cached pred can have been unlinked (a removal's
  /// own preds — which exclude the removed node — overwrite the finger
  /// before any later op runs). find_finger relies on this and adopts
  /// cached preds without inspecting them.
  struct Finger {
    Node* preds[kMaxLevels];
    Key key = 0;
    bool valid = false;
    std::uint64_t hits = 0;  // finds that reused at least one cached pred
    void reset() { valid = false; }
  };

  /// find() variant that consults and then updates `fg`. Identical results
  /// to find(); only the traversal start points differ.
  Node* find_finger(Key key, Node* begin, Node** preds, Node** succs,
                    Finger& fg) const {
    assert(!begin->marked);
    const bool use = fg.valid && key >= fg.key;
    Node* pred = begin;
    Node* found = nullptr;
    bool moved = false;  // walk advanced past the cached position
    bool reused = false;
    for (int lvl = max_height_ - 1; lvl >= 0; --lvl) {
      if (use && !moved) {
        // Until the walk first advances, the carried-down pred is the cached
        // pred of the previous (smaller) key, and the deeper cached pred is
        // at least as close to the target — adopt it without inspecting it
        // (every cached pred is a legal start, see Finger). Once the walk
        // has moved, the carried pred sits at or past the cached key and the
        // cache can no longer help.
        pred = fg.preds[lvl];
        reused |= pred != begin;
      }
      Node* curr = pred->next[lvl];
      while (curr != nullptr) {
        Node* nxt = curr->next[lvl];
        mem::prefetch_read(nxt);
        if (curr->key >= key) break;
        pred = curr;
        curr = nxt;
        moved = true;
      }
      preds[lvl] = pred;
      succs[lvl] = curr;
      if (found == nullptr && curr != nullptr && curr->key == key) found = curr;
      if (lvl > 0) mem::prefetch_read(pred->next[lvl - 1]);
    }
    for (int lvl = 0; lvl < max_height_; ++lvl) fg.preds[lvl] = preds[lvl];
    fg.key = key;
    fg.valid = true;
    if (reused) ++fg.hits;
    return found;
  }

  /// Range scan: collects up to `max` live (key, value) pairs with key >=
  /// `start` into `out`, walking level 0 from the position located by find()
  /// (or find_finger() when `fg` is supplied — the batch path, so an
  /// ascending batch of scans resumes instead of re-descending). Returns the
  /// number of entries written; `*next` receives the first matching key NOT
  /// returned and `*has_more` whether such a key exists. Reachable level-0
  /// nodes are never marked (unlink marks before unlinking), so the walk
  /// only ever reports live keys.
  std::uint32_t scan(Key start, std::uint32_t max, Node* begin, ScanEntry* out,
                     Key* next, bool* has_more, Finger* fg = nullptr) const {
    Node* preds[kMaxLevels];
    Node* succs[kMaxLevels];
    if (fg != nullptr) {
      (void)find_finger(start, begin, preds, succs, *fg);
    } else {
      (void)find(start, begin, preds, succs);
    }
    Node* curr = succs[0];  // first node with key >= start
    std::uint32_t n = 0;
    while (curr != nullptr && n < max) {
      // Scan-continuation prefetch: pull the next level-0 node (and, on the
      // last entry of the chunk, the node the continuation key comes from)
      // while this entry is copied out.
      mem::prefetch_read(curr->next[0]);
      out[n].key = curr->key;
      out[n].value = curr->value;
      ++n;
      curr = curr->next[0];
    }
    *has_more = curr != nullptr;
    *next = curr != nullptr ? curr->key : 0;
    return n;
  }

  /// Read: returns the node holding `key` (or null). The caller extracts
  /// value/host_ptr as needed.
  Node* read(Key key, Node* begin) const {
    Node* pred = begin;
    for (int lvl = max_height_ - 1; lvl >= 0; --lvl) {
      Node* curr = pred->next[lvl];
      while (curr != nullptr) {
        Node* nxt = curr->next[lvl];
        mem::prefetch_read(nxt);
        if (curr->key >= key) break;
        pred = curr;
        curr = nxt;
      }
      if (curr != nullptr && curr->key == key) return curr;
      if (lvl > 0) mem::prefetch_read(pred->next[lvl - 1]);
    }
    return nullptr;
  }

  /// Insert result: `node` is the newly created (or pre-existing) node;
  /// `existed` tells which.
  struct InsertResult {
    Node* node;
    bool existed;
  };

  /// Links a new (key, value) node into position given the preds/succs of a
  /// find for `key` that came back empty. Height is clamped to max_height;
  /// links bottom-up. Shared by insert() and the batch-apply path (which
  /// locates via find_finger).
  Node* link(Key key, Value value, int height, void* host_ptr, Node** preds,
             Node** succs) {
    if (height > max_height_) height = max_height_;
    assert(height >= 1);
    Node* node = alloc_node(key, value, height, host_ptr);
    for (int lvl = 0; lvl < height; ++lvl) {
      node->next[lvl] = succs[lvl];
      preds[lvl]->next[lvl] = node;
    }
    ++size_;
    return node;
  }

  /// Unlinks `found` (located by a find for its key that filled `preds`):
  /// marks it logically deleted first (§3.3 stale-begin detection) and
  /// unlinks every level. Short nodes (host_ptr == nullptr) are recycled
  /// through the arena on the spot — no host thread can hold a reference to
  /// them (see the retire-class note at the top of this file). Tall nodes
  /// are parked on retired_ until destruction so stale host references
  /// remain valid to *inspect*. Shared by remove() and the batch-apply path.
  void unlink(Node* found, Node** preds) {
    found->marked = true;  // logical deletion first (§3.3)
    for (int lvl = found->height - 1; lvl >= 0; --lvl) {
      if (preds[lvl]->next[lvl] == found) preds[lvl]->next[lvl] = found->next[lvl];
    }
    --size_;
    if (found->host_ptr == nullptr) {
      free_node(found);
    } else {
      retired_.push_back(found);
    }
  }

  /// Inserts (key, value) with `height` NMP-side levels (clamped to
  /// max_height), linking bottom-up. `host_ptr` is the host counterpart for
  /// tall nodes (null otherwise).
  InsertResult insert(Key key, Value value, int height, void* host_ptr,
                      Node* begin) {
    Node* preds[kMaxLevels];
    Node* succs[kMaxLevels];
    if (Node* found = find(key, begin, preds, succs)) {
      return {found, true};
    }
    return {link(key, value, height, host_ptr, preds, succs), false};
  }

  /// Removes `key` if present (see unlink for the retire semantics).
  bool remove(Key key, Node* begin) {
    Node* preds[kMaxLevels];
    Node* succs[kMaxLevels];
    Node* found = find(key, begin, preds, succs);
    if (found == nullptr) return false;
    unlink(found, preds);
    return true;
  }

  /// Adaptive promotion (§7 extension): replaces the short node holding
  /// `key` with a full-height node carrying the same value/version/hits, so
  /// that it can gain a host-side counterpart and serve as a valid
  /// begin-NMP-traversal target. The old node is marked (stale-begin
  /// detection) and retired. Returns the new node, or null if the key is
  /// absent or already full height.
  Node* promote(Key key, void* host_ptr) {
    Node* preds[kMaxLevels];
    Node* succs[kMaxLevels];
    Node* found = find(key, head_, preds, succs);
    if (found == nullptr || found->height == max_height_) return nullptr;
    Node* nn = alloc_node(key, found->value, max_height_, host_ptr);
    // Stamp a fresh version so the host can seed its mirror at a version
    // strictly above any pre-promotion update, and future updates strictly
    // above that (next_version() is monotonic over the whole list).
    nn->version = next_version();
    nn->hits = found->hits;
    found->marked = true;
    for (int l = found->height - 1; l >= 0; --l) {
      if (preds[l]->next[l] == found) preds[l]->next[l] = found->next[l];
    }
    for (int l = 0; l < max_height_; ++l) {
      nn->next[l] = l < found->height ? found->next[l] : succs[l];
      preds[l]->next[l] = nn;
    }
    // The replaced node is always short (full-height nodes are not promoted)
    // and so host-unreferenced: recycle it immediately.
    free_node(found);
    return nn;  // size unchanged: one node replaced another
  }

  /// Checks the skiplist property: nodes at level i are a subset of nodes at
  /// level i-1, keys strictly ascend at every level, and no reachable node
  /// is marked. For tests.
  bool validate() const {
    for (int lvl = 0; lvl < max_height_; ++lvl) {
      Key prev = 0;
      bool first = true;
      for (Node* n = head_->next[lvl]; n != nullptr; n = n->next[lvl]) {
        if (n->marked) return false;
        if (n->height <= lvl) return false;
        if (!first && n->key <= prev) return false;
        first = false;
        prev = n->key;
        if (lvl > 0) {
          // Subset property: n must be reachable at lvl-1.
          bool seen = false;
          for (Node* m = head_->next[lvl - 1]; m != nullptr; m = m->next[lvl - 1]) {
            if (m == n) {
              seen = true;
              break;
            }
          }
          if (!seen) return false;
        }
      }
    }
    return true;
  }

 private:
  static std::size_t node_bytes(int height) {
    const std::size_t bytes =
        sizeof(Node) + static_cast<std::size_t>(height - 1) * sizeof(Node*);
    return bytes < sizeof(Node) ? sizeof(Node) : bytes;
  }

  Node* alloc_node(Key key, Value value, int height, void* host_ptr) {
    Node* n = static_cast<Node*>(arena_.allocate(node_bytes(height)));
    n->key = key;
    n->value = value;
    n->version = 0;
    n->hits = 0;
    n->height = static_cast<std::uint16_t>(height);
    n->marked = false;
    n->host_ptr = host_ptr;
    return n;
  }

  void free_node(Node* n) { arena_.deallocate(n, node_bytes(n->height)); }

  mem::PartitionArena arena_;  // declared before head_: alloc_node needs it
  int max_height_;
  Node* head_;
  std::size_t size_ = 0;
  std::uint32_t version_counter_ = 0;
  std::vector<Node*> retired_;
};

}  // namespace hybrids::ds
