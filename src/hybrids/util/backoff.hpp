// Spin-wait primitives tuned for oversubscribed machines.
//
// The software NMP runtime runs one combiner thread per partition; on a
// machine with fewer hardware threads than partitions + host threads, a pure
// spin loop livelocks. Waiters therefore spin briefly with a pause hint and
// then fall back to yielding the CPU.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace hybrids::util {

/// CPU pause hint (no-op on architectures without one).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Adaptive backoff: `spin()` pauses for the first `spin_limit` calls, then
/// yields to the OS scheduler. Reset when the awaited condition makes
/// progress.
class Backoff {
 public:
  explicit Backoff(std::uint32_t spin_limit = 64) noexcept
      : spin_limit_(spin_limit) {}

  void spin() noexcept {
    if (count_ < spin_limit_) {
      ++count_;
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { count_ = 0; }

 private:
  std::uint32_t spin_limit_;
  std::uint32_t count_ = 0;
};

/// Exponential backoff for retry loops (stale-begin-node and parent-seqnum
/// retries in the hybrid structures): each wait() pauses twice as long as
/// the previous one, and past the yield threshold also cedes the CPU, so a
/// burst of correlated retries decays instead of hammering the combiner.
class ExpBackoff {
 public:
  void wait() noexcept {
    for (std::uint32_t i = 0; i < current_; ++i) cpu_relax();
    if (current_ >= kYieldThreshold) std::this_thread::yield();
    if (current_ < kMaxPause) current_ <<= 1;
  }

  void reset() noexcept { current_ = 1; }

 private:
  static constexpr std::uint32_t kMaxPause = 4096;
  static constexpr std::uint32_t kYieldThreshold = 1024;
  std::uint32_t current_ = 1;
};

}  // namespace hybrids::util
