// Deterministic, fast pseudo-random number generators.
//
// Everything in hybrids that needs randomness (workload generation, skiplist
// tower heights, simulator jitter) uses these generators so that experiments
// are exactly reproducible from a seed.
#pragma once

#include <cstdint>

namespace hybrids::util {

/// SplitMix64 — used to expand a single 64-bit seed into well-distributed
/// initial states for other generators (Vigna, 2015).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — general-purpose generator; fast, high quality, and small
/// enough to embed one per simulated thread / host thread.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// UniformRandomBitGenerator interface (usable with <random> distributions).
  constexpr std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform integer in [0, bound). Lemire's multiply-shift reduction
  /// (slightly biased for astronomically large bounds; fine for workloads).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p`.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// FNV-1a 64-bit hash — used by the YCSB "scrambled zipfian" key chooser.
constexpr std::uint64_t fnv1a64(std::uint64_t value) noexcept {
  constexpr std::uint64_t kOffset = 0xCBF29CE484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  std::uint64_t hash = kOffset;
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= kPrime;
  }
  return hash;
}

}  // namespace hybrids::util
