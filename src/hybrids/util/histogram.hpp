// Streaming histogram for latency / count distributions collected by the
// simulator and benches (e.g. per-operation DRAM reads, offload round-trip
// latencies for Table 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hybrids::util {

/// Fixed set of power-of-two-ish buckets plus exact mean/min/max tracking.
/// Single-writer; merge() combines per-thread instances.
class Histogram {
 public:
  void record(double value);
  void merge(const Histogram& other);

  /// Samples recorded since `prev` was captured (both must be cumulative
  /// states of the same instrument, `prev` the earlier one). The interval's
  /// exact min/max aren't recoverable from cumulative state, so quantiles of
  /// the delta clamp against the run-wide range instead. Returns an empty
  /// histogram if `prev` is not a prefix of *this (e.g. after a reset).
  Histogram delta_since(const Histogram& prev) const;

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Approximate quantile from the bucketed distribution. `q` is clamped to
  /// [0,1] (NaN is treated as 0); q == 1.0 returns the exact max().
  double quantile(double q) const;

  std::string summary() const;

  /// Bucket introspection (for exporters). Bucket 0 covers values < 1;
  /// bucket i >= 1 has upper edge bucket_upper(i) = 2^i, matching the edge
  /// quantile() interpolates against.
  static constexpr int kBuckets = 64;
  const std::vector<std::uint64_t>& bucket_counts() const { return buckets_; }
  static double bucket_upper(int i);

 private:
  static int bucket_for(double value);

  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kBuckets, 0);
};

}  // namespace hybrids::util
