// Timed futex wait on a 32-bit atomic.
//
// C++20's std::atomic::wait has no deadline, which is exactly what the
// resilient NMP runtime needs: a host thread parked on a publication slot
// must be able to give up after a window, re-kick a possibly-stalled
// combiner, and re-arm. On Linux we wait on the atomic's own cells with
// FUTEX_WAIT_PRIVATE — the same word libstdc++/libc++ use for notify_one/
// notify_all on a lock-free 4-byte atomic, so wakes from std::atomic
// notifications are observed. Elsewhere we fall back to a sleep-slice poll.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#else
#include <thread>
#endif

namespace hybrids::util {

/// Blocks while `word` still holds `expected`, for at most `timeout`.
/// Returns false iff the full timeout elapsed with no wake and no value
/// change; true on wake, value change, or spurious return (callers must
/// re-check the predicate either way).
inline bool timed_wait(std::atomic<std::uint32_t>& word, std::uint32_t expected,
                       std::chrono::nanoseconds timeout) {
  static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
                "futex wait requires a lock-free 4-byte atomic");
  if (timeout <= std::chrono::nanoseconds::zero()) {
    return word.load(std::memory_order_acquire) != expected;
  }
#if defined(__linux__)
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout.count() / 1000000000);
  ts.tv_nsec = static_cast<long>(timeout.count() % 1000000000);
  const long rc =
      syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
              FUTEX_WAIT_PRIVATE, expected, &ts, nullptr, 0);
  if (rc == -1 && errno == ETIMEDOUT) {
    return word.load(std::memory_order_acquire) != expected;
  }
  return true;
#else
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (word.load(std::memory_order_acquire) == expected) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return true;
#endif
}

}  // namespace hybrids::util
