#include "hybrids/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace hybrids::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::new_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add_cell(std::string value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::add_num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add_cell(os.str());
}

Table& Table::add_int(long long value) { return add_cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace hybrids::util
