// Tagged pointers for lock-free algorithms.
//
// Lock-free skiplists (Herlihy-Lev-Shavit / Fraser) steal the low bit of a
// next-pointer to mark a node as logically deleted, so that the {pointer,
// mark} pair can be updated with a single CAS. The hybrid B+ tree similarly
// steals low bits of 64/128-byte-aligned node pointers to carry the NMP
// partition id (§3.4 of the paper).
#pragma once

#include <cstdint>

namespace hybrids::util {

/// A raw pointer with a boolean mark packed into bit 0.
/// T must have alignment >= 2 (all node types in this library do).
template <typename T>
class MarkedPtr {
 public:
  constexpr MarkedPtr() noexcept = default;
  constexpr MarkedPtr(T* ptr, bool mark) noexcept
      : bits_(reinterpret_cast<std::uintptr_t>(ptr) | (mark ? 1u : 0u)) {}

  static constexpr MarkedPtr from_bits(std::uintptr_t bits) noexcept {
    MarkedPtr p;
    p.bits_ = bits;
    return p;
  }

  constexpr T* ptr() const noexcept {
    return reinterpret_cast<T*>(bits_ & ~std::uintptr_t{1});
  }
  constexpr bool marked() const noexcept { return (bits_ & 1u) != 0; }
  constexpr std::uintptr_t bits() const noexcept { return bits_; }

  friend constexpr bool operator==(MarkedPtr a, MarkedPtr b) noexcept {
    return a.bits_ == b.bits_;
  }

 private:
  std::uintptr_t bits_ = 0;
};

/// Packs a small tag (e.g. an NMP partition id) into the low `Bits` bits of
/// an aligned pointer. Used for host->NMP child references in the hybrid
/// B+ tree, where 128-byte node alignment leaves 7 free bits.
template <typename T, unsigned Bits>
class TaggedPtr {
  static constexpr std::uintptr_t kMask = (std::uintptr_t{1} << Bits) - 1;

 public:
  constexpr TaggedPtr() noexcept = default;
  constexpr TaggedPtr(T* ptr, unsigned tag) noexcept
      : bits_(reinterpret_cast<std::uintptr_t>(ptr) | (tag & kMask)) {}

  constexpr T* ptr() const noexcept { return reinterpret_cast<T*>(bits_ & ~kMask); }
  constexpr unsigned tag() const noexcept { return static_cast<unsigned>(bits_ & kMask); }
  constexpr std::uintptr_t bits() const noexcept { return bits_; }
  constexpr explicit operator bool() const noexcept { return ptr() != nullptr; }

  friend constexpr bool operator==(TaggedPtr a, TaggedPtr b) noexcept {
    return a.bits_ == b.bits_;
  }

 private:
  std::uintptr_t bits_ = 0;
};

}  // namespace hybrids::util
