// Cache-line alignment helpers for concurrency-sensitive data.
#pragma once

#include <cstddef>
#include <new>

namespace hybrids::util {

/// Destructive interference size. `std::hardware_destructive_interference_size`
/// is 64 on the x86-64 toolchains we target; we hard-code 64 to keep struct
/// layouts ABI-stable across compilers that disagree about the constant.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps T so that distinct instances never share a cache line (avoids false
/// sharing between per-thread slots, e.g. publication-list entries).
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

}  // namespace hybrids::util
